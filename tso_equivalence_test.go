// The TSO mode's invisibility contract: store-buffer simulation is a
// strict opt-in, and even when enabled with zero flush latency it is
// indistinguishable from sequential consistency. Every store a thread
// buffers with zero latency commits before any other thread can run, so
// plans, schedules, traces, and outcomes must be byte-identical to a
// plain heap — run for run, sequentially and in parallel. This pins the
// SC suite against regressions from the TSO plumbing: every gated code
// path (view, buffer, commitMature) executes, and none may change an
// observable byte.
package waffle_test

import (
	"bytes"
	"testing"

	"waffle/internal/apps"
	"waffle/internal/core"
	"waffle/internal/memmodel"
)

// exposeProg runs one Waffle session over an explicit program and returns
// the serialized observable result (outcomeBytes from the tuner tests).
func exposeProg(t *testing.T, prog core.Program, seed int64, parallel int) []byte {
	t.Helper()
	tool := core.NewWaffle(core.Options{})
	s := &core.Session{Prog: prog, Tool: tool, MaxRuns: 25, BaseSeed: seed}
	var out *core.Outcome
	if parallel > 1 {
		out = s.ExposeParallel(parallel)
	} else {
		out = s.Expose()
	}
	return outcomeBytes(t, out, tool)
}

// Over every built-in bug input, sequentially and in parallel: a plain
// session and a session whose program runs under TSO with zero-latency
// flushes (FlushMin < 0) produce byte-identical plans, schedules, and
// outcomes.
func TestZeroLatencyTSOByteIdenticalOnAllApps(t *testing.T) {
	for _, test := range apps.AllBugs() {
		sp, ok := test.Prog.(*core.SimProgram)
		if !ok {
			t.Fatalf("%s: built-in test is not a *core.SimProgram", test.Name)
		}
		for _, parallel := range []int{1, 4} {
			mode := map[int]string{1: "sequential", 4: "parallel"}[parallel]
			base := exposeProg(t, test.Prog, 11, parallel)

			cp := *sp
			cp.TSO = &memmodel.TSOConfig{Seed: 1234, FlushMin: -1}
			got := exposeProg(t, &cp, 11, parallel)
			if !bytes.Equal(base, got) {
				t.Errorf("%s %s: zero-latency TSO diverged from SC\nplain:\n%s\ntso:\n%s",
					test.Name, mode, base, got)
			}
		}
	}
}
