package waffle_test

import (
	"bytes"
	"testing"

	"waffle"
)

func TestPrepareAndResumeWorkflow(t *testing.T) {
	s := quickUAF()
	plan := waffle.Prepare(s, waffle.Options{}, 1)
	if len(plan.Pairs) == 0 {
		t.Fatal("preparation found no candidates")
	}
	var buf bytes.Buffer
	if err := plan.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	loaded, err := waffle.LoadPlan(&buf)
	if err != nil {
		t.Fatalf("LoadPlan: %v", err)
	}
	out := waffle.NewWithPlan(loaded, waffle.Options{}).Expose(s, 5, 2)
	if out.Bug == nil {
		t.Fatal("resumed detection found nothing")
	}
	if out.Bug.Run != 1 {
		t.Fatalf("resumed detection run = %d, want 1 (no prep)", out.Bug.Run)
	}
}

func TestLoadPlanRejectsGarbage(t *testing.T) {
	if _, err := waffle.LoadPlan(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("garbage plan accepted")
	}
}

func TestFacadeReplay(t *testing.T) {
	s := quickUAF()
	out := waffle.New(waffle.Options{}).Expose(s, 10, 1)
	if out.Bug == nil {
		t.Fatal("no bug")
	}
	rep := waffle.Replay(s, out.Bug, waffle.Options{})
	if !rep.Reproduced {
		t.Fatalf("replay failed: %v", rep)
	}
}

func TestFacadeRunOnce(t *testing.T) {
	res := waffle.RunOnce(quickUAF(), 1)
	if res.Fault != nil {
		t.Fatalf("uninstrumented run faulted: %v", res.Fault)
	}
	if res.End <= 0 {
		t.Fatal("no time elapsed")
	}
}

func TestFacadeTaskScenario(t *testing.T) {
	s := waffle.Scenario{
		Name: "facade-tasks",
		Body: func(t *waffle.Thread, h *waffle.Heap) {
			obj := h.NewRef("obj")
			obj.Init(t, "setup")
			pool := waffle.NewTaskPool(t, 2, "io")
			task := pool.Submit(t, "use", func(w *waffle.Thread) {
				w.Sleep(1 * waffle.Millisecond)
				obj.Use(w, "task-use")
			})
			t.Sleep(5 * waffle.Millisecond)
			obj.Dispose(t, "teardown")
			task.Wait(t)
			pool.Shutdown(t)
			pool.Join(t)
		},
	}
	out := waffle.New(waffle.Options{}).Expose(s, 6, 1)
	if out.Bug == nil {
		t.Fatal("task race not exposed")
	}
	if out.Bug.Kind() != waffle.UseAfterFree {
		t.Fatalf("kind = %v", out.Bug.Kind())
	}
}

func TestFacadeSyncPrimitivesCompile(t *testing.T) {
	// The re-exported primitive set must be usable from user code.
	recvOK := true
	s := waffle.Scenario{
		Name: "primitives",
		Body: func(t *waffle.Thread, h *waffle.Heap) {
			var (
				mu waffle.Mutex
				rw waffle.RWMutex
				wg waffle.WaitGroup
				ev waffle.Event
				q  waffle.Queue
			)
			cond := waffle.Cond{L: &mu}
			sem := waffle.Semaphore{}
			_ = sem
			wg.Add(t, 1)
			w := t.Spawn("w", func(w *waffle.Thread) {
				mu.Lock(w)
				cond.Signal(w)
				mu.Unlock(w)
				rw.RLock(w)
				rw.RUnlock(w)
				ev.Set(w)
				q.Send(w, 1)
				wg.Done(w)
			})
			ev.Wait(t)
			_, recvOK = q.Recv(t)
			wg.Wait(t)
			t.Join(w)
		},
	}
	if res := waffle.RunOnce(s, 1); res.Err != nil {
		t.Fatalf("primitive scenario failed: %v", res.Err)
	}
	if !recvOK {
		t.Fatal("queue recv failed")
	}
}

func TestFacadeSelect(t *testing.T) {
	s := waffle.Scenario{
		Name: "select",
		Body: func(t *waffle.Thread, h *waffle.Heap) {
			var control, data waffle.Queue
			worker := t.Spawn("worker", func(w *waffle.Thread) {
				for {
					idx, _, ok := waffle.Select(w, 0, &control, &data)
					if !ok || idx == 0 {
						return // control message or shutdown
					}
				}
			})
			t.Sleep(1 * waffle.Millisecond)
			data.Send(t, "payload")
			t.Sleep(1 * waffle.Millisecond)
			control.Send(t, "stop")
			t.Join(worker)
			control.Close(t)
			data.Close(t)
		},
	}
	if res := waffle.RunOnce(s, 1); res.Err != nil {
		t.Fatalf("select scenario failed: %v", res.Err)
	}
}
