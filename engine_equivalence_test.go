// The engine adapters' identity contract: wrapping a detection tool in
// an internal/engine Engine must change nothing. Over every built-in bug
// input, sequentially and in parallel, an Engine's outcome — every run's
// seed, end time, delay intervals, and classification, the bug report,
// and (for Waffle) the final analysis plan — is byte-identical to
// constructing the core.Session by hand, exactly as the pre-engine
// harnesses did. The adapter is a naming layer, not a behavioral fork.
package waffle_test

import (
	"bytes"
	"context"
	"testing"

	"waffle/internal/apps"
	"waffle/internal/core"
	"waffle/internal/engine"
	"waffle/internal/tsvd"
	"waffle/internal/wafflebasic"
)

// directTool constructs the raw tool exactly as the pre-engine callers
// (cmd/waffle, the eval harness) do for each kind.
func directTool(kind string) core.Tool {
	switch kind {
	case engine.KindWaffle:
		return core.NewWaffle(core.Options{})
	case engine.KindWaffleBasic:
		return wafflebasic.New(core.Options{})
	case engine.KindTSVD:
		return engine.NewTSVDTool(tsvd.New(tsvd.Options{}))
	}
	panic("unknown kind " + kind)
}

// directBytes drives a hand-built core.Session over the test program and
// serializes everything observable about the result.
func directBytes(t *testing.T, kind string, test *apps.Test, seed int64, maxRuns, workers int) []byte {
	t.Helper()
	tool := directTool(kind)
	s := &core.Session{Prog: test.Prog, Tool: tool, MaxRuns: maxRuns, BaseSeed: seed}
	var out *core.Outcome
	if workers > 1 {
		out = s.ExposeParallel(workers)
	} else {
		out = s.Expose()
	}
	wt, _ := tool.(*core.Waffle)
	return outcomeBytes(t, out, wt)
}

// engineBytes drives the same search through the engine adapter.
func engineBytes(t *testing.T, kind string, test *apps.Test, seed int64, maxRuns, workers int) []byte {
	t.Helper()
	eng, err := engine.New(engine.Config{Kind: kind})
	if err != nil {
		t.Fatalf("New(%q): %v", kind, err)
	}
	if err := eng.Prepare(engine.Target{Prog: test.Prog, MaxRuns: maxRuns, BaseSeed: seed, Workers: workers}); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	out, err := eng.Expose(context.Background())
	if err != nil {
		t.Fatalf("Expose: %v", err)
	}
	var wt *core.Waffle
	if th, ok := eng.(interface{ Tool() core.Tool }); ok {
		wt, _ = th.Tool().(*core.Waffle)
	}
	return outcomeBytes(t, out, wt)
}

// Over all built-in bugs × every simulated engine kind × sequential and
// parallel drivers: adapter and direct invocation are byte-identical.
// (The live engine is excluded by construction — wall-clock runs are
// nondeterministic; its forwarding behavior is unit-tested in
// internal/engine instead.)
func TestEngineAdaptersByteIdenticalOnAllApps(t *testing.T) {
	kinds := []string{engine.KindWaffle, engine.KindWaffleBasic, engine.KindTSVD}
	for _, test := range apps.AllBugs() {
		for _, kind := range kinds {
			for _, workers := range []int{1, 4} {
				mode := map[int]string{1: "sequential", 4: "parallel"}[workers]
				direct := directBytes(t, kind, test, 13, 25, workers)
				viaEngine := engineBytes(t, kind, test, 13, 25, workers)
				if !bytes.Equal(direct, viaEngine) {
					t.Errorf("%s/%s/%s: engine adapter diverged from direct session\n--- direct ---\n%s\n--- engine ---\n%s",
						test.Name, kind, mode, direct, viaEngine)
				}
			}
		}
	}
}

// Config round-trip: an engine built from a Config with non-default core
// options behaves identically to a session handed the same options —
// the Config plumbing loses nothing.
func TestEngineConfigCarriesOptions(t *testing.T) {
	test := apps.AllBugs()[0]
	opts := core.Options{Decay: 0.25, Alpha: 1.5}
	tool := core.NewWaffle(opts)
	s := &core.Session{Prog: test.Prog, Tool: tool, MaxRuns: 25, BaseSeed: 5}
	direct := outcomeBytes(t, s.Expose(), tool)

	eng, err := engine.New(engine.Config{Kind: engine.KindWaffle, Core: opts})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Prepare(engine.Target{Prog: test.Prog, MaxRuns: 25, BaseSeed: 5}); err != nil {
		t.Fatal(err)
	}
	out, err := eng.Expose(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var wt *core.Waffle
	if th, ok := eng.(interface{ Tool() core.Tool }); ok {
		wt, _ = th.Tool().(*core.Waffle)
	}
	viaEngine := outcomeBytes(t, out, wt)
	if !bytes.Equal(direct, viaEngine) {
		t.Fatalf("Config-carried options diverged:\n--- direct ---\n%s\n--- engine ---\n%s", direct, viaEngine)
	}
}
