// The adaptive controller's invisibility contract: with the controller
// disabled (-adaptive off → nil Tuner, or a Disabled controller handing
// out nil targets), every session must behave byte-identically to a
// session built before the controller existed — same plans, same
// injection schedules, same outcomes, run for run. The tuning seam is a
// pure observation point until a decision is actually made.
package waffle_test

import (
	"bytes"
	"fmt"
	"testing"

	"waffle/internal/apps"
	"waffle/internal/control"
	"waffle/internal/core"
)

// outcomeBytes serializes everything observable about a session outcome:
// every run's seed, end time, delay activity (intervals included), and
// classification, plus the bug report and the tool's final plan.
func outcomeBytes(t *testing.T, out *core.Outcome, tool *core.Waffle) []byte {
	t.Helper()
	var b bytes.Buffer
	fmt.Fprintf(&b, "program=%s tool=%s total=%d base=%d\n",
		out.Program, out.Tool, int64(out.TotalTime), int64(out.BaseTime))
	for _, r := range out.Runs {
		fmt.Fprintf(&b, "run=%d seed=%d end=%d timeout=%v fault=%v outcome=%v count=%d total=%d skipped=%d\n",
			r.Run, r.Seed, int64(r.End), r.TimedOut, r.Fault != nil, r.Outcome,
			r.Stats.Count, int64(r.Stats.Total), r.Stats.Skipped)
		for _, iv := range r.Stats.Intervals {
			fmt.Fprintf(&b, "iv %s %d %d\n", iv.Site, int64(iv.Start), int64(iv.End))
		}
	}
	if out.Bug != nil {
		fmt.Fprintf(&b, "bug run=%d seed=%d site=%s ref=%s\n",
			out.Bug.Run, out.Bug.Seed, out.Bug.NullRef.Site, out.Bug.NullRef.Name)
	}
	fmt.Fprintf(&b, "delayfree=%v\n", out.DelayFreeFaults)
	if tool != nil && tool.Plan() != nil {
		fmt.Fprintf(&b, "plan ")
		if err := tool.Plan().WriteJSON(&b); err != nil {
			t.Fatalf("encode plan: %v", err)
		}
	}
	return b.Bytes()
}

// exposeWith runs one session over test with the given tuner wiring and
// parallelism, returning the serialized observable result.
func exposeWith(t *testing.T, test *apps.Test, seed int64, tuner core.Tuner, parallel int) []byte {
	t.Helper()
	tool := core.NewWaffle(core.Options{})
	s := &core.Session{Prog: test.Prog, Tool: tool, MaxRuns: 25, BaseSeed: seed, Tuner: tuner}
	var out *core.Outcome
	if parallel > 1 {
		out = s.ExposeParallel(parallel)
	} else {
		out = s.Expose()
	}
	return outcomeBytes(t, out, tool)
}

// Over every built-in bug input, sequentially and in parallel: a session
// with no tuner, a session wired exactly as -adaptive=false wires it (a
// Disabled controller's Target is nil, so Tuner stays unset), and a
// session where a typed-nil *control.Target leaked into the Tuner
// interface all produce byte-identical plans, schedules, and outcomes.
func TestDisabledControllerByteIdenticalOnAllApps(t *testing.T) {
	disabled := control.New(control.Config{Disabled: true})
	for _, test := range apps.AllBugs() {
		for _, seed := range []int64{3, 17} {
			for _, parallel := range []int{1, 4} {
				mode := map[int]string{1: "sequential", 4: "parallel"}[parallel]
				base := exposeWith(t, test, seed, nil, parallel)

				// -adaptive=false wiring: a Disabled controller hands out a
				// nil target and the session's Tuner stays unset.
				var tuner core.Tuner
				if tgt := disabled.Target(test.Name + "/waffle"); tgt != nil {
					t.Fatalf("%s: disabled controller handed out a live target", test.Name)
				}
				viaWiring := exposeWith(t, test, seed, tuner, parallel)
				if !bytes.Equal(base, viaWiring) {
					t.Errorf("%s seed %d %s: disabled-controller wiring diverged\nbase:\n%s\nwired:\n%s",
						test.Name, seed, mode, base, viaWiring)
				}

				// Hostile variant: a typed-nil *control.Target assigned into
				// the interface. The nil-safe TuneRun must decide nothing.
				viaNilTarget := exposeWith(t, test, seed, (*control.Target)(nil), parallel)
				if !bytes.Equal(base, viaNilTarget) {
					t.Errorf("%s seed %d %s: typed-nil target diverged\nbase:\n%s\nnil target:\n%s",
						test.Name, seed, mode, base, viaNilTarget)
				}
			}
		}
	}
}
