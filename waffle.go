// Package waffle is a Go reproduction of Waffle (Stoica et al., EuroSys
// '23): an active delay-injection tool that exposes MemOrder bugs —
// use-before-initialization and use-after-free order violations between
// threads — with a delay-free preparation run, offline trace analysis, and
// interference-aware variable-length delay injection.
//
// The package is the public façade over the repository's internal
// packages. A user describes a program under test as a Scenario whose Body
// performs heap-object operations (Init/Use/Dispose) on Refs inside a
// deterministic virtual-time world, then drives a Detector against it:
//
//	scenario := waffle.Scenario{
//	    Name: "quickstart",
//	    Body: func(t *waffle.Thread, h *waffle.Heap) {
//	        obj := h.NewRef("conn")
//	        obj.Init(t, "main.go:10")
//	        worker := t.Spawn("worker", func(w *waffle.Thread) {
//	            w.Sleep(1 * waffle.Millisecond)
//	            obj.Use(w, "worker.go:7") // races the dispose below
//	        })
//	        t.Sleep(3 * waffle.Millisecond)
//	        obj.Dispose(t, "main.go:20")
//	        t.Join(worker)
//	    },
//	}
//	outcome := waffle.New(waffle.Options{}).Expose(scenario, 10, 1)
//	if outcome.Bug != nil {
//	    fmt.Println(outcome.Bug) // use-after-free at worker.go:7, run 2
//	}
//
// The same scenario can be run under the WaffleBasic baseline (NewBasic)
// to compare designs, and Benchmarks exposes the paper's 11-application
// evaluation suite with its 18 planted bugs.
package waffle

import (
	"io"

	"waffle/internal/apps"
	"waffle/internal/core"
	"waffle/internal/memmodel"
	"waffle/internal/sim"
	"waffle/internal/trace"
	"waffle/internal/wafflebasic"
)

// Re-exported types: the full vocabulary needed to write scenarios and
// interpret outcomes, without importing internal packages.
type (
	// Options configures the detector (near-miss window, delay scaling,
	// probability decay, and the Table 7 ablation switches).
	Options = core.Options
	// Outcome is the result of an Expose search.
	Outcome = core.Outcome
	// BugReport describes one manifested MemOrder bug.
	BugReport = core.BugReport
	// RunReport describes one run of a session.
	RunReport = core.RunReport
	// Pair is one candidate location pair {ℓ1, ℓ2} of the candidate set S.
	Pair = core.Pair
	// Plan is the persisted output of trace analysis (S, I, delay
	// lengths, probabilities).
	Plan = core.Plan
	// BugKind distinguishes use-before-init from use-after-free.
	BugKind = core.BugKind

	// Thread is a cooperatively scheduled virtual-time thread.
	Thread = sim.Thread
	// Heap allocates the reference cells scenarios operate on.
	Heap = memmodel.Heap
	// Ref is one instrumented heap reference cell.
	Ref = memmodel.Ref
	// Mutex, WaitGroup, Event, Queue, Semaphore are virtual-time
	// synchronization primitives for scenario bodies.
	Mutex     = sim.Mutex
	WaitGroup = sim.WaitGroup
	Event     = sim.Event
	Queue     = sim.Queue
	Semaphore = sim.Semaphore
	// TaskPool and TaskHandle provide task-oriented scenarios: tasks run
	// on pool worker threads under async-local contexts, and Waffle's
	// fork clocks propagate submit→task exactly as they propagate
	// parent→child threads (§4.1's async-local note).
	TaskPool   = sim.TaskPool
	TaskHandle = sim.TaskHandle
	// RWMutex and Cond complete the virtual-time primitive set.
	RWMutex = sim.RWMutex
	Cond    = sim.Cond

	// Duration and Time are virtual-time measures (microsecond ticks).
	Duration = sim.Duration
	Time     = sim.Time
	// SiteID names a static program location.
	SiteID = trace.SiteID

	// App and Test expose the paper's benchmark suite.
	App  = apps.App
	Test = apps.Test
)

// Virtual-time units for scenario bodies.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Bug kinds.
const (
	UseBeforeInit = core.UseBeforeInit
	UseAfterFree  = core.UseAfterFree
)

// Scenario describes one program under test: a named body executed in a
// fresh virtual-time world per run.
type Scenario struct {
	// Name labels reports.
	Name string
	// Timeout bounds each run's virtual time (0 = unbounded).
	Timeout Duration
	// Jitter is the relative spread on Work durations (default 0.05).
	Jitter float64
	// Body is the program: threads performing instrumented operations.
	Body func(t *Thread, h *Heap)
}

// program adapts a Scenario to the internal Program interface.
func (s Scenario) program() core.Program {
	jitter := s.Jitter
	if jitter == 0 {
		jitter = 0.05
	}
	return &core.SimProgram{Label: s.Name, MaxTime: s.Timeout, Jitter: jitter, Body: s.Body}
}

// Detector drives Waffle (or a baseline) against scenarios.
type Detector struct {
	opts  Options
	basic bool
	plan  *Plan
}

// New returns a Waffle detector. Zero Options mean the paper's defaults
// (δ = 100ms, α = 1.15, λ = 0.1); the Disable* fields select the Table 7
// ablations.
func New(opts Options) *Detector { return &Detector{opts: opts} }

// NewBasic returns the WaffleBasic baseline (§3): TSVD's design
// transplanted onto MemOrder sites — same-run identification, fixed 100ms
// delays, happens-before inference, unrestricted parallel delays.
func NewBasic(opts Options) *Detector { return &Detector{opts: opts, basic: true} }

// Expose searches for a MemOrder bug in the scenario: up to maxRuns runs
// (the preparation run included), seeded from baseSeed. The returned
// Outcome carries per-run reports, the baseline time, and the BugReport if
// one manifested.
func (d *Detector) Expose(s Scenario, maxRuns int, baseSeed int64) *Outcome {
	session := &core.Session{
		Prog:     s.program(),
		Tool:     d.tool(),
		MaxRuns:  maxRuns,
		BaseSeed: baseSeed,
	}
	return session.Expose()
}

// ExposeTest runs the detector against one benchmark-suite test.
func (d *Detector) ExposeTest(t *Test, maxRuns int, baseSeed int64) *Outcome {
	session := &core.Session{
		Prog:     t.Prog,
		Tool:     d.tool(),
		MaxRuns:  maxRuns,
		BaseSeed: baseSeed,
	}
	return session.Expose()
}

func (d *Detector) tool() core.Tool {
	if d.basic {
		return wafflebasic.New(d.opts)
	}
	if d.plan != nil {
		return core.NewWaffleWithPlan(d.plan, d.opts)
	}
	return core.NewWaffle(d.opts)
}

// ExecResult is the outcome of one uninstrumented scenario execution.
type ExecResult = core.ExecResult

// Prepare performs the delay-free preparation run (Figure 3) on the
// scenario and returns the analyzed plan: the candidate set S with
// fork-ordered pairs pruned, per-site delay lengths, and the interference
// set I. The plan round-trips through JSON (Plan.WriteJSON / LoadPlan) so
// detection can resume in a later process, mirroring the paper's on-disk
// bootstrap.
func Prepare(s Scenario, opts Options, seed int64) *Plan {
	opts = opts.WithDefaults()
	rec := trace.NewRecorder(s.Name, seed)
	res := s.program().Execute(seed, core.NewPrepHook(rec, opts))
	return core.Analyze(rec.Finish(res.End), opts)
}

// LoadPlan reads a plan written by Plan.WriteJSON.
func LoadPlan(r io.Reader) (*Plan, error) { return core.ReadPlanJSON(r) }

// NewWithPlan returns a detector bootstrapped from a previously analyzed
// plan: every run is a detection run, and the plan's probabilities decay
// in place across them.
func NewWithPlan(plan *Plan, opts Options) *Detector {
	return &Detector{opts: opts, plan: plan}
}

// NewTaskPool spawns n pool worker threads owned by t. Tasks submitted to
// the pool carry async-local contexts forked from their submitter.
func NewTaskPool(t *Thread, n int, name string) *TaskPool {
	return sim.NewTaskPool(t, n, name)
}

// Select waits on several queues at once (optionally bounded by d; d ≤ 0
// waits forever), returning the delivering queue's index.
func Select(t *Thread, d Duration, queues ...*Queue) (idx int, v any, ok bool) {
	return sim.Select(t, d, queues...)
}

// ReplayResult reports a deterministic reproduction attempt.
type ReplayResult = core.ReplayResult

// Replay turns a probabilistic exposure into a deterministic reproducer:
// it re-runs the scenario at the exposing seed with a minimal, fully
// serialized plan containing only the culprit candidate pair(s), and
// reports whether the same fault fired.
func Replay(s Scenario, bug *BugReport, opts Options) ReplayResult {
	return core.Replay(s.program(), bug, opts)
}

// RunOnce executes the scenario once with no instrumentation and no
// delays — useful for validating a scenario's natural timing before
// running detection, and for hand-crafted delay experiments where the
// body itself models the injection.
func RunOnce(s Scenario, seed int64) ExecResult {
	return s.program().Execute(seed, nil)
}

// Benchmarks returns the paper's 11-application evaluation suite (Table 3)
// with its multi-threaded tests and the 18 planted MemOrder bugs (Table 4).
func Benchmarks() []*App { return apps.Registry() }

// Benchmark returns one suite application by name, or nil.
func Benchmark(name string) *App { return apps.ByName(name) }

// Bugs returns the 18 planted bug tests in Table 4 order.
func Bugs() []*Test { return apps.AllBugs() }
