package waffle_test

import (
	"fmt"

	"waffle"
)

// Example demonstrates the two-run workflow on a minimal use-after-free:
// the preparation run records the near miss, the first detection run
// realizes it.
func Example() {
	scenario := waffle.Scenario{
		Name: "example",
		Body: func(t *waffle.Thread, h *waffle.Heap) {
			conn := h.NewRef("conn")
			conn.Init(t, "main.go:3")
			worker := t.Spawn("worker", func(w *waffle.Thread) {
				w.Sleep(1 * waffle.Millisecond)
				conn.Use(w, "worker.go:7")
			})
			t.Sleep(3 * waffle.Millisecond)
			conn.Dispose(t, "main.go:9")
			t.Join(worker)
		},
	}
	out := waffle.New(waffle.Options{}).Expose(scenario, 10, 1)
	fmt.Println(out.Bug.Kind(), "at", out.Bug.NullRef.Site, "in run", out.Bug.Run)
	// Output: use-after-free at worker.go:7 in run 2
}

// ExamplePrepare shows the separated preparation phase: analyze once,
// inspect the candidate set, then detect from the plan.
func ExamplePrepare() {
	scenario := waffle.Scenario{
		Name: "prepare",
		Body: func(t *waffle.Thread, h *waffle.Heap) {
			obj := h.NewRef("obj")
			user := t.Spawn("user", func(w *waffle.Thread) {
				w.Sleep(3 * waffle.Millisecond)
				obj.Use(w, "use-site")
			})
			t.Sleep(1 * waffle.Millisecond)
			obj.Init(t, "init-site")
			t.Join(user)
		},
	}
	plan := waffle.Prepare(scenario, waffle.Options{}, 1)
	for _, p := range plan.Pairs {
		fmt.Println(p.Kind, "candidate:", p.Delay, "->", p.Target)
	}
	out := waffle.NewWithPlan(plan, waffle.Options{}).Expose(scenario, 5, 2)
	fmt.Println("exposed in detection run", out.Bug.Run)
	// Output:
	// use-before-init candidate: init-site -> use-site
	// exposed in detection run 1
}

// ExampleReplay turns a probabilistic exposure into a deterministic
// reproducer.
func ExampleReplay() {
	scenario := waffle.Scenario{
		Name: "replay",
		Body: func(t *waffle.Thread, h *waffle.Heap) {
			cache := h.NewRef("cache")
			cache.Init(t, "cache.go:10")
			refresher := t.Spawn("refresher", func(w *waffle.Thread) {
				w.Sleep(2 * waffle.Millisecond)
				cache.Use(w, "refresh.go:7")
			})
			t.Sleep(6 * waffle.Millisecond)
			cache.Dispose(t, "shutdown.go:4")
			t.Join(refresher)
		},
	}
	out := waffle.New(waffle.Options{}).Expose(scenario, 10, 1)
	rep := waffle.Replay(scenario, out.Bug, waffle.Options{})
	fmt.Println("reproduced:", rep.Reproduced, "with", rep.Delays.Count, "delay")
	// Output: reproduced: true with 1 delay
}
