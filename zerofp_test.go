// Regression tests for the zero-false-positive contract (§5): a NULL
// reference fault in a run with zero injected delays cannot be a
// consequence of delay injection, so no tool may claim it as an exposed
// bug. The session must instead surface the fault through RunReport.Fault,
// classify the run RunFaultDelayFree, and list it in
// Outcome.DelayFreeFaults — a flaky program-under-test stays visible
// without being falsely credited to the detector.
package waffle_test

import (
	"testing"

	"waffle/internal/core"
	"waffle/internal/memmodel"
	"waffle/internal/sim"
	"waffle/internal/trace"
	"waffle/internal/tsvd"
	"waffle/internal/wafflebasic"
)

// delayFreeFaulter faults on its very first run with no perturbation: the
// reference is used before anyone initializes it, deterministically. Every
// tool's first run injects nothing (preparation, identification, or an
// empty TSV pair set), so the fault always lands in a delay-free run.
func delayFreeFaulter() *core.SimProgram {
	return &core.SimProgram{
		Label: "delay-free-faulter",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			r := h.NewRef("cfg")
			w := root.Spawn("boot", func(th *sim.Thread) {
				th.Sleep(1 * sim.Millisecond)
				r.Use(th, "boot/use") // never initialized: faults unaided
			})
			root.Join(w)
		},
	}
}

// tsvdAsTool adapts the TSVD baseline to core.Tool, mirroring the adapter
// the differential harness uses.
type tsvdAsTool struct{ t *tsvd.Tool }

func (a *tsvdAsTool) Name() string { return "tsvd" }
func (a *tsvdAsTool) HookForRun(run int, prev *core.RunReport) memmodel.Hook {
	a.t.BeginRun()
	return a.t
}
func (a *tsvdAsTool) RunStats() core.DelayStats { return a.t.Stats() }
func (a *tsvdAsTool) Candidates(site trace.SiteID) []core.Pair {
	var out []core.Pair
	for _, pr := range a.t.Pairs() {
		if pr[0] == site || pr[1] == site {
			out = append(out, core.Pair{Delay: pr[0], Target: pr[1]})
		}
	}
	return out
}

func zeroFPTools() map[string]func() core.Tool {
	return map[string]func() core.Tool{
		"waffle":      func() core.Tool { return core.NewWaffle(core.Options{}) },
		"wafflebasic": func() core.Tool { return wafflebasic.New(core.Options{}) },
		"tsvd":        func() core.Tool { return &tsvdAsTool{t: tsvd.New(tsvd.Options{})} },
	}
}

// checkDelayFreeOutcome asserts the contract on one finished search.
func checkDelayFreeOutcome(t *testing.T, out *core.Outcome) {
	t.Helper()
	if out.Bug != nil {
		t.Fatalf("delay-free fault reported as a bug: %v", out.Bug)
	}
	if len(out.Runs) == 0 {
		t.Fatal("no runs recorded")
	}
	last := out.Runs[len(out.Runs)-1]
	if last.Fault == nil {
		t.Fatal("faulting run lost its Fault record")
	}
	if last.Stats.Count != 0 {
		t.Fatalf("run injected %d delays — scenario not delay-free", last.Stats.Count)
	}
	if last.Outcome != core.RunFaultDelayFree {
		t.Fatalf("run outcome = %v, want %v", last.Outcome, core.RunFaultDelayFree)
	}
	if len(out.DelayFreeFaults) != 1 || out.DelayFreeFaults[0] != last.Run {
		t.Fatalf("DelayFreeFaults = %v, want [%d]", out.DelayFreeFaults, last.Run)
	}
}

func TestDelayFreeFaultYieldsNoBugReport(t *testing.T) {
	for name, mk := range zeroFPTools() {
		t.Run(name, func(t *testing.T) {
			s := &core.Session{Prog: delayFreeFaulter(), Tool: mk(), MaxRuns: 6, BaseSeed: 1}
			checkDelayFreeOutcome(t, s.Expose())
		})
	}
}

func TestDelayFreeFaultYieldsNoBugReportParallel(t *testing.T) {
	for name, mk := range zeroFPTools() {
		t.Run(name, func(t *testing.T) {
			s := &core.Session{Prog: delayFreeFaulter(), Tool: mk(), MaxRuns: 6, BaseSeed: 1}
			checkDelayFreeOutcome(t, s.ExposeParallel(4))
		})
	}
}

// A delay-caused fault must still be reported — the contract suppresses
// only faults no delay could have caused, not real exposures.
func TestDelayCausedFaultStillReported(t *testing.T) {
	racy := &core.SimProgram{
		Label: "racy-init-use",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			r := h.NewRef("listener")
			user := root.Spawn("event", func(th *sim.Thread) {
				th.Sleep(3 * sim.Millisecond)
				r.Use(th, "handler.go:8")
			})
			root.Sleep(1 * sim.Millisecond)
			r.Init(root, "ctor.go:2")
			root.Join(user)
		},
	}
	s := &core.Session{Prog: racy, Tool: core.NewWaffle(core.Options{}), MaxRuns: 10, BaseSeed: 1}
	out := s.Expose()
	if out.Bug == nil {
		t.Fatal("delay-caused fault not reported")
	}
	if out.Bug.Delays.Count == 0 {
		t.Fatal("bug report claims an exposure with zero injected delays")
	}
	if rep := out.Runs[len(out.Runs)-1]; rep.Outcome != core.RunFaultBug {
		t.Fatalf("exposing run outcome = %v, want %v", rep.Outcome, core.RunFaultBug)
	}
	if len(out.DelayFreeFaults) != 0 {
		t.Fatalf("DelayFreeFaults = %v on a delay-caused exposure", out.DelayFreeFaults)
	}
}
