// Package live is the public façade over internal/live: WAFFLE against
// real goroutines on the monotonic wall clock.
//
// Where package waffle runs scenarios inside a deterministic virtual-time
// simulator, this package runs them as real concurrent Go code: Spawn
// launches goroutines, Sleep really sleeps, and injected delays are
// physical time.Sleeps — the paper's actual operating regime. The
// pipeline is unchanged: a delay-free preparation run records a
// wall-clock trace, core.Analyze builds the candidate set, and detection
// runs inject variable-length delays with probability decay and
// interference control.
//
// The quickest entry point is the test helper:
//
//	func TestNoMemOrderBugs(t *testing.T) {
//	    live.ExposeT(t, func(root *live.Thread, h *live.Heap) {
//	        conn := h.NewRef("conn")
//	        conn.Init(root, "open")
//	        w := root.Spawn("worker", func(w *live.Thread) {
//	            w.Sleep(5 * time.Millisecond)
//	            conn.Use(w, "send") // races the dispose below
//	        })
//	        root.Sleep(40 * time.Millisecond)
//	        conn.Dispose(root, "close")
//	        root.Join(w)
//	    }, 10)
//	}
//
// Because scheduling is physical, runs are nondeterministic: the seed
// passed to Expose drives only the injector's random stream and cannot
// replay an interleaving. Reports remain zero-false-positive — a bug is
// reported only when the program actually faults.
package live

import (
	"testing"

	"waffle/internal/core"
	ilive "waffle/internal/live"
)

// Re-exported live vocabulary.
type (
	// Thread is a live goroutine participating in a run.
	Thread = ilive.Thread
	// Handle tracks a spawned thread until it finishes.
	Handle = ilive.Handle
	// Heap allocates instrumented reference cells shared between
	// goroutines.
	Heap = ilive.Heap
	// Ref is one instrumented reference cell with an atomic lifecycle.
	Ref = ilive.Ref
	// Options configures a live Detector; all durations are physical.
	Options = ilive.Options
	// Scenario is one live program under test.
	Scenario = ilive.Scenario
	// Detector drives prepare → analyze → detection runs on the wall clock.
	Detector = ilive.Detector
	// Phases accumulates per-phase wall-clock costs.
	Phases = ilive.Phases
	// Demo is a built-in live scenario with a planted bug.
	Demo = ilive.Demo
	// Monitor is the always-on per-request detector for embedding in
	// servers: each request body is sampled, recorded, or injected
	// according to the monitor's options.
	Monitor = ilive.Monitor
	// MonitorStatus is the Monitor's JSON-serializable status payload.
	MonitorStatus = ilive.MonitorStatus
	// RequestReport describes what the Monitor did with one request.
	RequestReport = ilive.RequestReport
	// TuneRequest is a partial, validated retune of a running Monitor.
	TuneRequest = ilive.TuneRequest

	// Outcome, BugReport, RunReport, Plan and Pair are shared with the
	// simulated detector — live runs additionally stamp RunReport.WallStart
	// and RunReport.WallDur.
	Outcome   = core.Outcome
	BugReport = core.BugReport
	RunReport = core.RunReport
	Plan      = core.Plan
	Pair      = core.Pair
)

// New returns a live detector (zero Options mean live defaults: δ=100ms,
// α=1.15, λ=0.1, 30s run timeout).
func New(opts Options) *Detector { return ilive.NewDetector(opts) }

// NewMonitor returns an enabled always-on monitor. Unlike New, the
// monitor amortizes the pipeline across live traffic: per-request
// sampling (Options.SampleRate/ObjectRate), an SLO-derived delay budget
// (Options.SLO), and one prepare→analyze→detect lifecycle per request
// path, advanced one request at a time.
func NewMonitor(seed int64, opts Options) *Monitor { return ilive.NewMonitor(seed, opts) }

// ExposeT runs the live pipeline against body inside a Go test, failing
// the test if a MemOrder bug manifests. See internal/live.ExposeT.
func ExposeT(tb testing.TB, body func(*Thread, *Heap), runs int) *Outcome {
	tb.Helper()
	return ilive.ExposeT(tb, body, runs)
}

// Demos lists the built-in live scenarios with planted bugs.
func Demos() []Demo { return ilive.Demos() }

// FindDemo looks a built-in demo up by name.
func FindDemo(name string) (Demo, bool) { return ilive.FindDemo(name) }
