// Deadlockhunt applies the Waffle recipe to a different bug class — the
// kind of follow-on tool the paper's conclusion (§8) anticipates. A latent
// ABBA lock-order inversion that never manifests under natural timing is
// observed in a delay-free run, promoted to a candidate, and then realized
// by pausing one thread at the exact moment it holds the first lock and
// requests the second.
//
//	go run ./examples/deadlockhunt
package main

import (
	"fmt"
	"os"

	"waffle"
	"waffle/internal/core"
	"waffle/internal/deadlock"
	"waffle/internal/memmodel"
	"waffle/internal/sim"
)

func program() *core.SimProgram {
	return &core.SimProgram{
		Label:  "transfer-service",
		Jitter: 0.02,
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			var accountA, accountB sim.Mutex

			// transfer(A→B): lock A, then B.
			t1 := root.Spawn("transfer-ab", func(t *sim.Thread) {
				accountA.Lock(t)
				t.Work(2 * waffle.Millisecond) // balance checks
				accountB.Lock(t)
				t.Work(1 * waffle.Millisecond)
				accountB.Unlock(t)
				accountA.Unlock(t)
			})
			// transfer(B→A): lock B, then A — 15ms later, so the critical
			// sections never overlap in testing.
			t2 := root.Spawn("transfer-ba", func(t *sim.Thread) {
				t.Sleep(15 * waffle.Millisecond)
				accountB.Lock(t)
				t.Work(2 * waffle.Millisecond)
				accountA.Lock(t)
				t.Work(1 * waffle.Millisecond)
				accountA.Unlock(t)
				accountB.Unlock(t)
			})
			root.Join(t1)
			root.Join(t2)
		},
	}
}

func main() {
	prog := program()

	fmt.Println("natural runs (20 seeds):")
	for seed := int64(1); seed <= 20; seed++ {
		if res := prog.Execute(seed, nil); res.Err != nil {
			fmt.Printf("  seed %d: %v\n", seed, res.Err)
			os.Exit(1)
		}
	}
	fmt.Println("  all clean — the inversion is latent")

	det := deadlock.New(deadlock.Options{})
	rep := det.Expose(prog, 10, 1)
	if rep == nil {
		fmt.Println("no deadlock exposed — unexpected")
		os.Exit(1)
	}
	fmt.Printf("\nexposed: %v\n", rep)
	fmt.Printf("candidates observed: %v\n", det.Candidates())
	fmt.Println("\nthe delay held account A across the other transfer's window;")
	fmt.Println("both threads ended up holding-and-waiting — a real deadlock,")
	fmt.Println("detected by the scheduler, with zero false positives.")
}
