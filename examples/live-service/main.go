// Live service: an HTTP service with always-on sampled memory-ordering
// detection, built to be load-tested.
//
//	go run ./examples/live-service -addr :8080 -metrics-addr :8321 -sample 0.25 -slo 1.0
//
// Every request body runs under a live.Monitor: a fraction (-sample) of
// requests per path are admitted to the WAFFLE pipeline — the first
// admitted request records the path's preparation trace, later ones run
// with active delay injection capped by an SLO-derived budget (-slo, a
// fraction of the baseline p99) — while the rest serve plain. Two
// endpoints carry planted bugs the campaign should expose; two serve the
// generated fault-free workload as the false-positive control.
//
//	GET /checkout  planted use-after-free (a worker's send races a close)
//	GET /profile   planted use-before-init (a reader races a lazy init)
//	GET /browse    clean generated workload (workload.Spec.LiveBody)
//	GET /search    clean generated workload, heavier mix
//	GET /healthz   liveness probe (never monitored)
//
// The metrics listener (-metrics-addr) serves /metrics (the obs snapshot,
// waffle.metrics/v1) and the live control plane:
//
//	POST /v1/live/start | /v1/live/stop | /v1/live/tune
//	GET  /v1/live/status
//
// so detection can be toggled and retuned mid-load without a restart —
// the load-smoke CI job does exactly that.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"waffle/internal/control"
	"waffle/internal/live"
	"waffle/internal/obs"
	"waffle/internal/workload"
)

// service bundles the monitor, its metrics registry, and the two muxes
// (application + metrics/control) so main and the load-smoke test build
// the exact same wiring.
type service struct {
	mon     *live.Monitor
	reg     *obs.Registry
	app     *http.ServeMux
	control *http.ServeMux
}

// checkoutBody plants a use-after-free: the fulfillment worker's send on
// the payment session naturally beats the handler's close by ~4ms — wide
// enough that the delay-free run never faults, narrow enough that an
// injected delay at the use site flips the order quickly.
func checkoutBody(t *live.Thread, h *live.Heap) {
	sess := h.NewRef("payment-session")
	sess.Init(t, "checkout.OpenSession")
	w := t.Spawn("fulfillment", func(w *live.Thread) {
		w.Sleep(1 * time.Millisecond) // assemble the order
		sess.Use(w, "checkout.fulfillment.Charge")
	})
	t.Sleep(5 * time.Millisecond) // confirmation page render
	sess.Dispose(t, "checkout.CloseSession")
	t.Join(w)
}

// profileBody plants the mirror-image use-before-init: the avatar loader
// lazily initializes the cache ~1ms in, the renderer reads it at ~6ms.
// Delaying the init past the read exposes the missing ready-check.
func profileBody(t *live.Thread, h *live.Heap) {
	cache := h.NewRef("avatar-cache")
	w := t.Spawn("loader", func(w *live.Thread) {
		w.Sleep(1 * time.Millisecond) // fetch from blob store
		cache.Init(w, "profile.loader.Fill")
	})
	t.Sleep(6 * time.Millisecond) // template pipeline
	cache.Use(t, "profile.Render")
	t.Join(w)
	cache.Dispose(t, "profile.Evict")
}

// requestResponse is the JSON body every monitored endpoint returns.
type requestResponse struct {
	Path       string `json:"path"`
	Seq        int64  `json:"seq"`
	Admitted   bool   `json:"admitted"`
	SampledOut bool   `json:"sampled_out"`
	Delays     int    `json:"delays"`
	Fault      string `json:"fault,omitempty"`
	DurUS      int64  `json:"dur_us"`
}

func newService(seed int64, opts live.Options) *service {
	if opts.Metrics == nil {
		opts.Metrics = obs.New()
	}
	s := &service{
		mon:     live.NewMonitor(seed, opts),
		reg:     opts.Metrics,
		app:     http.NewServeMux(),
		control: http.NewServeMux(),
	}

	browse := workload.Spec{
		Prefix: "browse", Threads: 2, LocalObjs: 1, LocalOps: 2,
		SharedObjs: 2, SharedUses: 2, PreForkObjs: 1, Spacing: 100,
	}.LiveBody()
	search := workload.Spec{
		Prefix: "search", Threads: 3, LocalObjs: 2, LocalOps: 2,
		SharedObjs: 3, SharedUses: 2, SyncedObjs: 1, Spacing: 100,
	}.LiveBody()

	monitored := func(path string, body func(*live.Thread, *live.Heap)) {
		s.app.HandleFunc("GET "+path, func(w http.ResponseWriter, r *http.Request) {
			rep := s.mon.Do(path, body)
			resp := requestResponse{
				Path: rep.Path, Seq: rep.Seq, Admitted: rep.Admitted,
				SampledOut: rep.SampledOut, Delays: rep.Delays,
				DurUS: rep.Dur.Microseconds(),
			}
			code := http.StatusOK
			if rep.Failed() {
				// The fault IS the finding: the monitor recovered the
				// panic, the request degrades to a 500 instead of
				// crashing the process, and the bug report (if the fault
				// coincided with injected delays) is in /v1/live/status.
				resp.Fault = rep.Fault.Err.Error()
				code = http.StatusInternalServerError
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			_ = json.NewEncoder(w).Encode(resp)
		})
	}
	monitored("/checkout", checkoutBody)
	monitored("/profile", profileBody)
	monitored("/browse", browse)
	monitored("/search", search)
	s.app.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})

	s.control.Handle("/metrics", s.reg.Handler())
	(&control.LivePlane{Mon: s.mon}).Mount(s.control)
	return s
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "application listen address")
		metricsAddr = flag.String("metrics-addr", "127.0.0.1:8321", "metrics + live control-plane listen address")
		sample      = flag.Float64("sample", 0.25, "fraction of requests per path admitted to detection (0,1]")
		slo         = flag.Float64("slo", 1.0, "injected-delay budget as a fraction of baseline p99 latency; <=0 unbounded")
		seed        = flag.Int64("seed", 1, "sampling-admission and injection seed")
	)
	flag.Parse()

	s := newService(*seed, live.Options{SampleRate: *sample, SLO: *slo})
	go func() {
		if err := http.ListenAndServe(*metricsAddr, s.control); err != nil {
			fmt.Fprintf(os.Stderr, "live-service: metrics listener: %v\n", err)
			os.Exit(1)
		}
	}()
	fmt.Printf("live-service: serving on %s (metrics+control on %s), sample=%g slo=%g\n",
		*addr, *metricsAddr, *sample, *slo)
	if err := http.ListenAndServe(*addr, s.app); err != nil {
		fmt.Fprintf(os.Stderr, "live-service: %v\n", err)
		os.Exit(1)
	}
}
