package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"testing"
	"time"

	"waffle/internal/live"
	"waffle/internal/loadgen"
	"waffle/internal/obs"
)

// plantedSites are the only fault sites the service's bugs can manifest
// at; a bug report anywhere else is a false positive and fails the test.
var plantedSites = map[string]bool{
	"checkout.fulfillment.Charge": true, // use-after-free in checkoutBody
	"profile.Render":              true, // use-before-init in profileBody
}

// TestLoadSmoke is the end-to-end always-on experiment: a seeded load
// campaign drives the service while the monitor samples requests into
// detection, the control plane stops and restarts detection mid-load,
// and the campaign must end with both planted bugs exposed, zero false
// positives, and sampled latency inside the SLO bound.
//
// LOADSMOKE_N sets the request count (default 1200; CI runs 5000).
// BENCH_LOAD_OUT, when set, writes the BENCH_load.json artifact with an
// embedded waffle.metrics/v1 snapshot.
func TestLoadSmoke(t *testing.T) {
	n := 1200
	if env := os.Getenv("LOADSMOKE_N"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil || v <= 0 {
			t.Fatalf("bad LOADSMOKE_N=%q", env)
		}
		n = v
	}
	const slo = 1.0
	svc := newService(11, live.Options{SampleRate: 0.25, SLO: slo})
	app := httptest.NewServer(svc.app)
	defer app.Close()
	ctl := httptest.NewServer(svc.control)
	defer ctl.Close()

	post := func(path string) live.MonitorStatus {
		t.Helper()
		resp, err := http.Post(ctl.URL+path, "application/json", nil)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var st live.MonitorStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil || resp.StatusCode != 200 {
			t.Fatalf("POST %s: status %d, decode err %v", path, resp.StatusCode, err)
		}
		return st
	}

	// Mid-load control actions, serialized through the loadgen hook:
	// detection stops a third of the way in and resumes at two thirds.
	// The status captured at the stop must still be reflected after the
	// restart — stop/start retains plans, probabilities, and bugs.
	var atStop live.MonitorStatus
	hook := func(done int) {
		switch done {
		case n / 3:
			atStop = post("/v1/live/stop")
		case 2 * n / 3:
			st := post("/v1/live/start")
			if st.Bugs < atStop.Bugs || st.Recorded < atStop.Recorded {
				t.Errorf("restart lost state: stop had %d bugs / %d recorded, start has %d / %d",
					atStop.Bugs, atStop.Recorded, st.Bugs, st.Recorded)
			}
		}
	}

	rep, err := loadgen.Run(app.URL, loadgen.Options{
		Seed: 7, Requests: n, Concurrency: 8,
		Mix: []loadgen.PathWeight{
			{Path: "/checkout", Weight: 2},
			{Path: "/profile", Weight: 2},
			{Path: "/browse", Weight: 3},
			{Path: "/search", Weight: 1},
		},
		Timeout: time.Minute,
		Hook:    hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != n {
		t.Fatalf("campaign completed %d/%d requests", rep.Requests, n)
	}
	if atStop.Requests == 0 {
		t.Fatal("mid-load stop hook never fired")
	}

	st := svc.mon.Status()
	bugs := svc.mon.Bugs()

	// Both planted bugs exposed, nothing else: every report's fault site
	// is planted and coincides with injected delays (zero-FP contract).
	sitesHit := map[string]bool{}
	for _, b := range bugs {
		if b.NullRef == nil || !plantedSites[string(b.NullRef.Site)] {
			t.Fatalf("false positive: bug at %+v is not a planted site", b.NullRef)
		}
		if b.Delays.Count == 0 {
			t.Fatalf("bug at %s reported without injected delays", b.NullRef.Site)
		}
		sitesHit[string(b.NullRef.Site)] = true
	}
	for site := range plantedSites {
		if !sitesHit[site] {
			t.Errorf("planted bug at %s not exposed in %d requests (status: %+v)", site, n, st)
		}
	}

	// The clean workload paths must stay clean.
	for _, tg := range st.Targets {
		if (tg.Path == "/browse" || tg.Path == "/search") && tg.Bugs != 0 {
			t.Fatalf("false positive on clean path %s: %d bugs", tg.Path, tg.Bugs)
		}
	}

	// Sampling actually sampled: both admitted and sampled-out requests
	// exist, and admission stayed in the neighborhood of SampleRate.
	if st.Admitted == 0 || st.SampledOut == 0 {
		t.Fatalf("sampling degenerate: admitted %d, sampled out %d", st.Admitted, st.SampledOut)
	}

	// SLO bound: the sampled p99 stays within (1 + SLO) × baseline p99
	// plus slack for scheduler noise and histogram bucket granularity.
	if st.BaseP99US <= 0 {
		t.Fatal("no baseline latency recorded")
	}
	if limit := st.BaseP99US*(1+slo) + 15_000; st.SampledP99US > limit {
		t.Errorf("sampled p99 %.0fµs exceeds SLO bound %.0fµs (base %.0fµs)",
			st.SampledP99US, limit, st.BaseP99US)
	}
	if st.BudgetNS <= 0 {
		t.Error("SLO budget never derived from the baseline histogram")
	}

	if out := os.Getenv("BENCH_LOAD_OUT"); out != "" {
		writeBench(t, out, n, rep, st, svc.reg.Snapshot())
	}
}

// writeBench emits the BENCH_load.json artifact: campaign results plus
// the full metrics snapshot, in the embedded-"metrics" wrapper shape
// waffle-bench -validate-metrics accepts.
func writeBench(t *testing.T, path string, n int, rep loadgen.Report, st live.MonitorStatus, snap *obs.Snapshot) {
	t.Helper()
	// The artifact identifier is NOT named "schema": ValidateSnapshotJSON
	// treats any top-level "schema" as a bare snapshot and would reject
	// the wrapper instead of validating the embedded "metrics" section.
	artifact := struct {
		Schema       string             `json:"artifact"`
		Requests     int                `json:"requests"`
		Errors       int                `json:"errors"`
		P50US        int64              `json:"p50_us"`
		P99US        int64              `json:"p99_us"`
		BaseP99US    float64            `json:"base_p99_us"`
		SampledP99US float64            `json:"sampled_p99_us"`
		BudgetNS     int64              `json:"budget_ns"`
		Status       live.MonitorStatus `json:"status"`
		Metrics      *obs.Snapshot      `json:"metrics"`
	}{
		Schema:   "waffle.loadsmoke/v1",
		Requests: n, Errors: rep.Errors,
		P50US: rep.P50.Microseconds(), P99US: rep.P99.Microseconds(),
		BaseP99US: st.BaseP99US, SampledP99US: st.SampledP99US,
		BudgetNS: st.BudgetNS, Status: st, Metrics: snap,
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(artifact); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d bytes)", path, buf.Len())
}
