// Persistedplan demonstrates the paper's on-disk workflow (Figure 3, §5):
// the preparation run and the detection runs are separate tool
// invocations. The plan — candidate set S, interference set I, per-site
// delay lengths, and injection probabilities — is analyzed once, saved as
// JSON, and a later "process" loads it and goes straight to detection,
// with probability decay continuing where it left off.
//
//	go run ./examples/persistedplan
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"waffle"
)

func scenario() waffle.Scenario {
	return waffle.Scenario{
		Name: "pool-reclaim",
		Body: func(t *waffle.Thread, h *waffle.Heap) {
			pool := h.NewRef("connector-pool")
			pool.Init(t, "pool.go:31")
			reader := t.Spawn("reader", func(w *waffle.Thread) {
				w.Sleep(2 * waffle.Millisecond)
				w.Work(300 * waffle.Microsecond)
				pool.Use(w, "command.go:88") // races the reclaim
			})
			t.Sleep(5 * waffle.Millisecond)
			pool.Dispose(t, "pool.go:77") // reclaim
			t.Join(reader)
		},
	}
}

func main() {
	planPath := filepath.Join(os.TempDir(), "waffle-plan.json")

	// ---- invocation 1: preparation + analysis + save ----
	plan := waffle.Prepare(scenario(), waffle.Options{}, 1)
	fmt.Printf("preparation run analyzed: %d candidate pairs, %d injection sites\n",
		len(plan.Pairs), len(plan.InjectionSites()))
	for _, p := range plan.Pairs {
		fmt.Printf("  {%s -> %s} %v, gap %v\n", p.Delay, p.Target, p.Kind, p.Gap)
	}
	f, err := os.Create(planPath)
	if err != nil {
		fail(err)
	}
	if err := plan.WriteJSON(f); err != nil {
		fail(err)
	}
	f.Close()
	fmt.Printf("plan saved to %s\n\n", planPath)

	// ---- invocation 2: load + detect (no preparation run) ----
	g, err := os.Open(planPath)
	if err != nil {
		fail(err)
	}
	loaded, err := waffle.LoadPlan(g)
	g.Close()
	if err != nil {
		fail(err)
	}
	fmt.Println("plan loaded; running detection only...")
	outcome := waffle.NewWithPlan(loaded, waffle.Options{}).Expose(scenario(), 5, 2)
	if outcome.Bug == nil {
		fmt.Println("no bug — unexpected")
		os.Exit(1)
	}
	fmt.Printf("exposed %v at %s in detection run %d (no preparation run needed)\n",
		outcome.Bug.Kind(), outcome.Bug.NullRef.Site, outcome.Bug.Run)
	os.Remove(planPath)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "persistedplan:", err)
	os.Exit(1)
}
