// Live lazyinit: plant a use-before-init between REAL goroutines and
// expose it with the live (wall-clock) detector.
//
//	go run ./examples/live-lazyinit
//
// The main goroutine lazily loads a config ~5ms into the run; a reader
// goroutine consumes it at ~40ms after unrelated warm-up work. Naturally
// the load always wins. The analyzer records the init→use near miss
// (fork-concurrent, inside the 100ms window) and a detection run delays
// the LOAD — pushing initialization past the read, which then faults on
// the still-nil reference.
package main

import (
	"fmt"
	"os"
	"time"

	"waffle/live"
)

// scenario is exported for the example's test, which asserts the bug is
// exposed within 10 detection runs under -race.
var scenario = live.Scenario{
	Name: "live-lazyinit",
	Body: func(t *live.Thread, h *live.Heap) {
		cfg := h.NewRef("config")

		reader := t.Spawn("reader", func(w *live.Thread) {
			w.Sleep(40 * time.Millisecond) // warm caches, open sockets ...
			cfg.Use(w, "reader.Get")
		})

		t.Sleep(5 * time.Millisecond) // fetch the config file
		cfg.Init(t, "main.LoadConfig")
		t.Join(reader)
	},
}

func main() {
	fmt.Println("searching on the wall clock (real goroutines, real sleeps)...")
	outcome := live.New(live.Options{}).Expose(scenario, 11, 1)

	for _, r := range outcome.Runs {
		phase := "detection "
		if r.Run == 1 {
			phase = "preparation"
		}
		fmt.Printf("  run %d (%s): wall %v, %d delays injected\n",
			r.Run, phase, r.WallDur.Round(time.Millisecond), r.Stats.Count)
	}

	if outcome.Bug == nil {
		fmt.Println("no bug found — rerun; wall-clock detection is probabilistic")
		os.Exit(1)
	}
	fmt.Printf("\nexposed %v at %s in run %d:\n  %v\n",
		outcome.Bug.Kind(), outcome.Bug.NullRef.Site, outcome.Bug.Run, outcome.Bug.NullRef)
}
