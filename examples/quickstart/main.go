// Quickstart: plant a use-after-free order violation and expose it with
// Waffle in two runs — a delay-free preparation run plus one detection run.
//
//	go run ./examples/quickstart
//
// The scenario mimics the canonical MemOrder shape (§1, Figure 2): a
// worker thread uses a connection object while the owner disposes it
// shortly after. In every natural execution the use lands safely before
// the dispose; only a targeted delay at the use site inverts the order.
package main

import (
	"fmt"
	"os"

	"waffle"
)

func main() {
	scenario := waffle.Scenario{
		Name: "quickstart",
		Body: func(t *waffle.Thread, h *waffle.Heap) {
			conn := h.NewRef("conn")
			conn.Init(t, "main.go:12")

			// The worker touches the connection 1ms into the run.
			worker := t.Spawn("worker", func(w *waffle.Thread) {
				w.Sleep(1 * waffle.Millisecond)
				w.Work(200 * waffle.Microsecond)
				conn.Use(w, "worker.go:7")
			})

			// The owner disposes it 3ms in — 2ms after the use, inside
			// Waffle's 100ms near-miss window, but never before the use
			// without an injected delay.
			t.Sleep(3 * waffle.Millisecond)
			conn.Dispose(t, "main.go:24")
			t.Join(worker)
		},
	}

	fmt.Println("searching with Waffle (preparation run + detection runs)...")
	outcome := waffle.New(waffle.Options{}).Expose(scenario, 10, 1)

	for _, r := range outcome.Runs {
		phase := "detection "
		if r.Run == 1 {
			phase = "preparation"
		}
		fmt.Printf("  run %d (%s): %v, %d delays injected\n", r.Run, phase, r.End, r.Stats.Count)
	}

	if outcome.Bug == nil {
		fmt.Println("no bug found — unexpected for this scenario")
		os.Exit(1)
	}
	fmt.Printf("\nexposed %v at %s in run %d:\n  %v\n",
		outcome.Bug.Kind(), outcome.Bug.NullRef.Site, outcome.Bug.Run, outcome.Bug.NullRef)
	fmt.Printf("end-to-end slowdown over the uninstrumented input: %.1fx\n", outcome.Slowdown())
}
