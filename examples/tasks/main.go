// Tasks demonstrates Waffle over task-oriented code (§4.1's async-local
// note): work items run on pool worker threads, not dedicated threads, so
// thread-identity-based happens-before tracking would fall apart — but the
// fork clocks ride the async-local context from submitter to task, so
//
//  1. objects initialized *before* a task is submitted are pruned from the
//     candidate set (causally ordered, no wasted delays), while
//
//  2. a genuine race between a task and its submitter's later dispose is
//     kept, delayed, and exposed.
//
//     go run ./examples/tasks
package main

import (
	"fmt"
	"os"

	"waffle"
)

func scenario() waffle.Scenario {
	return waffle.Scenario{
		Name: "task-pipeline",
		Body: func(t *waffle.Thread, h *waffle.Heap) {
			cfg := h.NewRef("config")
			session := h.NewRef("session")

			pool := waffle.NewTaskPool(t, 2, "io")

			// Initialized before any submission: every task use of cfg is
			// fork-ordered through the async-local context — not a
			// candidate, no delays wasted (§4.1).
			cfg.Init(t, "setup.go:5")
			session.Init(t, "setup.go:6")

			task := pool.Submit(t, "flush", func(w *waffle.Thread) {
				cfg.Use(w, "flush.go:3") // ordered: pruned
				w.Sleep(2 * waffle.Millisecond)
				w.Work(300 * waffle.Microsecond)
				session.Use(w, "flush.go:9") // races the teardown below
			})

			// Teardown does NOT wait for the flush task — the bug.
			t.Sleep(8 * waffle.Millisecond)
			session.Dispose(t, "teardown.go:2")

			task.Wait(t)
			pool.Shutdown(t)
			pool.Join(t)
		},
	}
}

func main() {
	plan := waffle.Prepare(scenario(), waffle.Options{}, 1)
	fmt.Printf("candidate set after preparation: %d pair(s)\n", len(plan.Pairs))
	for _, p := range plan.Pairs {
		fmt.Printf("  {%s -> %s} %v (gap %v)\n", p.Delay, p.Target, p.Kind, p.Gap)
	}
	for _, p := range plan.Pairs {
		if p.Delay == "flush.go:3" || p.Target == "flush.go:3" {
			fmt.Println("unexpected: fork-ordered task use was not pruned")
			os.Exit(1)
		}
	}
	fmt.Println("  (the cfg use at flush.go:3 was pruned: ordered through the async-local fork)")

	out := waffle.NewWithPlan(plan, waffle.Options{}).Expose(scenario(), 5, 2)
	if out.Bug == nil {
		fmt.Println("no bug — unexpected")
		os.Exit(1)
	}
	fmt.Printf("\nexposed %v at %s in detection run %d:\n  %v\n",
		out.Bug.Kind(), out.Bug.NullRef.Site, out.Bug.Run, out.Bug.NullRef)
}
