// Telemetry reproduces the ApplicationInsights #1106 shape (Figure 4a,
// "interfering bugs"): a use-before-init candidate (ctor vs event handler)
// and a use-after-free candidate (handler vs dispose) share one object.
// WaffleBasic delays the ctor and the handler in parallel for the same
// fixed duration — the delays cancel — and its happens-before inference
// then misreads the handler's delay-induced stall as synchronization,
// removing the real candidate for good: the bug stays hidden across every
// run. Waffle's interference set serializes the two delays and the
// use-before-init manifests in the first detection run.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"

	"waffle"
)

func scenario() waffle.Scenario {
	return waffle.Scenario{
		Name: "appinsights-style-listener",
		Body: func(t *waffle.Thread, h *waffle.Heap) {
			lstnr := h.NewRef("lstnr")
			buffer := h.NewRef("buffer")
			buffer.Init(t, "app.go:1")

			var handled waffle.Event
			t.Spawn("events", func(w *waffle.Thread) {
				// A benign early access, then the racy OnEventWritten.
				w.Sleep(19 * waffle.Millisecond)
				w.Work(1 * waffle.Millisecond)
				buffer.Use(w, "events.go:3")
				w.Sleep(31 * waffle.Millisecond)
				w.Work(1 * waffle.Millisecond)
				lstnr.Use(w, "events.go:8") // needs lstnr constructed
				handled.Set(w)
			})

			// DiagnosticsListener ctor: naturally ~12ms before the use.
			t.Sleep(39 * waffle.Millisecond)
			t.Work(1 * waffle.Millisecond)
			lstnr.Init(t, "ctor.go:2")

			// Dispose genuinely waits for the handler: the use-after-free
			// candidate is a false near miss no delay can realize.
			handled.Wait(t)
			t.Work(30 * waffle.Millisecond)
			lstnr.Dispose(t, "dispose.go:5")
		},
	}
}

func main() {
	fmt.Println("== Waffle ==")
	w := waffle.New(waffle.Options{}).Expose(scenario(), 50, 5)
	report(w)

	fmt.Println("\n== WaffleBasic (50-run budget, as in §6.2) ==")
	b := waffle.NewBasic(waffle.Options{}).Expose(scenario(), 50, 5)
	report(b)

	switch {
	case w.Bug != nil && b.Bug == nil:
		fmt.Println("\nWaffleBasic missed the Figure 4a bug across its whole budget while Waffle exposed it — the paper's Bug-10 result.")
	case w.Bug == nil:
		fmt.Println("\nunexpected: Waffle missed the bug")
	default:
		fmt.Println("\nunexpected: WaffleBasic exposed the interfering-bugs shape")
	}
}

func report(out *waffle.Outcome) {
	if out.Bug == nil {
		fmt.Printf("no bug in %d runs (delays injected: %d)\n", len(out.Runs), totalDelays(out))
		return
	}
	fmt.Printf("exposed %v at %s in run %d (slowdown %.1fx)\n",
		out.Bug.Kind(), out.Bug.NullRef.Site, out.Bug.Run, out.Slowdown())
}

func totalDelays(out *waffle.Outcome) int {
	n := 0
	for _, r := range out.Runs {
		n += r.Stats.Count
	}
	return n
}
