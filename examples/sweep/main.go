// Sweep regenerates Figure 2's insight as a delay-length sweep: a
// thread-safety violation triggers only inside a *range* of injected delay
// lengths (the two API windows must overlap), while a MemOrder bug
// triggers past a *threshold* (the delayed operation must clear its
// partner). This difference drives every design departure from TSVD.
//
//	go run ./examples/sweep
package main

import (
	"fmt"
	"strings"

	"waffle"
)

const (
	gap    = 20 * waffle.Millisecond // natural distance between the pair
	window = 8 * waffle.Millisecond  // API call execution window
	reps   = 40
)

func main() {
	fmt.Printf("natural gap %v, API window %v, %d seeds per point\n\n", gap, window, reps)
	fmt.Printf("%-12s %-24s %-24s\n", "delay", "TSV trigger rate", "MemOrder trigger rate")
	for _, ms := range []int{0, 5, 10, 14, 18, 22, 26, 30, 40, 60, 90} {
		delay := waffle.Duration(ms) * waffle.Millisecond
		tsv := rate(func(seed int64) bool { return tsvTriggered(seed, delay) })
		mo := rate(func(seed int64) bool { return memOrderTriggered(seed, delay) })
		fmt.Printf("%-12v %-24s %-24s\n", delay, bar(tsv), bar(mo))
	}
	fmt.Println("\nTSV: a range — too short and the windows have not met, too long and the")
	fmt.Println("first window has sailed past. MemOrder: a threshold — any delay longer")
	fmt.Println("than the gap exposes the bug (Figure 2).")
}

func rate(f func(int64) bool) float64 {
	hits := 0
	for seed := int64(0); seed < reps; seed++ {
		if f(seed*31 + 7) {
			hits++
		}
	}
	return float64(hits) / reps
}

func bar(r float64) string {
	n := int(r*20 + 0.5)
	return fmt.Sprintf("%-20s %3.0f%%", strings.Repeat("#", n), r*100)
}

// tsvTriggered injects one fixed delay before API call 1 and reports
// whether the two calls' windows overlapped.
func tsvTriggered(seed int64, delay waffle.Duration) bool {
	var overlapped bool
	s := waffle.Scenario{
		Name: "tsv-shape",
		Body: func(t *waffle.Thread, h *waffle.Heap) {
			dict := h.NewRef("dict")
			other := t.Spawn("caller2", func(w *waffle.Thread) {
				w.Sleep(gap)
				dict.APICall(w, "api2", true, window)
			})
			t.Sleep(delay) // the injected delay before call 1
			dict.APICall(t, "api1", true, window)
			t.Join(other)
			overlapped = len(h.TSVs()) > 0
		},
	}
	waffle.RunOnce(s, seed)
	return overlapped
}

// memOrderTriggered injects one fixed delay before the use and reports
// whether the use-after-free manifested.
func memOrderTriggered(seed int64, delay waffle.Duration) bool {
	s := waffle.Scenario{
		Name: "memorder-shape",
		Body: func(t *waffle.Thread, h *waffle.Heap) {
			obj := h.NewRef("obj")
			obj.Init(t, "init")
			user := t.Spawn("user", func(w *waffle.Thread) {
				w.Sleep(delay) // the injected delay before the use
				obj.Use(w, "use")
			})
			t.Sleep(gap)
			obj.Dispose(t, "dispose")
			t.Join(user)
		},
	}
	res := waffle.RunOnce(s, seed)
	return res.Fault != nil
}
