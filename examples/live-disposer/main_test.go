package main

import (
	"testing"

	"waffle/live"
)

// TestExposedWithinTenDetectionRuns is the live smoke gate CI runs under
// -race -count=3: the planted use-after-free must manifest within 10
// detection runs with real injected sleeps.
func TestExposedWithinTenDetectionRuns(t *testing.T) {
	out := live.New(live.Options{}).Expose(scenario, 11, 1)
	if out.Bug == nil {
		t.Fatalf("no bug exposed in %d runs", len(out.Runs))
	}
	if got := out.Bug.NullRef.Site; got != "worker.Send" {
		t.Fatalf("bug at %s, want worker.Send", got)
	}
}
