// Live disposer: plant a use-after-free between REAL goroutines and
// expose it with the live (wall-clock) detector — the delays here are
// actual time.Sleeps, not virtual ticks.
//
//	go run ./examples/live-disposer
//
// A worker goroutine sends on a shared connection ~5ms into the run; the
// owner disposes it at ~40ms. The natural order holds by a ~35ms margin —
// far above scheduler noise — so the delay-free preparation run never
// faults. The analyzer turns the observed near miss into a candidate
// pair, and a detection run sleeps the worker's use for 1.15x the gap,
// pushing it past the dispose.
package main

import (
	"fmt"
	"os"
	"time"

	"waffle/live"
)

// scenario is exported for the example's test, which asserts the bug is
// exposed within 10 detection runs under -race.
var scenario = live.Scenario{
	Name: "live-disposer",
	Body: func(t *live.Thread, h *live.Heap) {
		conn := h.NewRef("conn")
		conn.Init(t, "pool.Open")

		// A real goroutine: Spawn forks the vector clock and launches
		// body on its own OS-scheduled goroutine.
		worker := t.Spawn("worker", func(w *live.Thread) {
			w.Sleep(5 * time.Millisecond) // assemble the payload
			conn.Use(w, "worker.Send")
		})

		t.Sleep(40 * time.Millisecond) // serve traffic for a while
		conn.Dispose(t, "pool.Close")
		t.Join(worker)
	},
}

func main() {
	fmt.Println("searching on the wall clock (real goroutines, real sleeps)...")
	d := live.New(live.Options{})
	outcome := d.Expose(scenario, 11, 1)

	for _, r := range outcome.Runs {
		phase := "detection "
		if r.Run == 1 {
			phase = "preparation"
		}
		fmt.Printf("  run %d (%s): wall %v, %d delays injected (%v slept)\n",
			r.Run, phase, r.WallDur.Round(time.Millisecond),
			r.Stats.Count, time.Duration(r.Stats.Total).Round(time.Millisecond))
	}

	ph := d.Phases()
	fmt.Printf("phases: prepare %v, analyze %v, detect %v\n",
		ph.Prepare.Round(time.Millisecond), ph.Analyze.Round(time.Microsecond),
		ph.Detect.Round(time.Millisecond))

	if outcome.Bug == nil {
		fmt.Println("no bug found — rerun; wall-clock detection is probabilistic")
		os.Exit(1)
	}
	fmt.Printf("\nexposed %v at %s in run %d:\n  %v\n",
		outcome.Bug.Kind(), outcome.Bug.NullRef.Site, outcome.Bug.Run, outcome.Bug.NullRef)
}
