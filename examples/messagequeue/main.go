// Messagequeue reproduces the NetMQ #814 shape (Figure 4b, "interfering
// dynamic instances"): a broker's cleanup path and a worker both execute
// the same static check site on the shared poller. Under WaffleBasic-style
// unrestricted parallel injection, delays at the two dynamic instances of
// that one site cancel each other; Waffle's interference set holds a
// self-edge for the site and serializes them, exposing the use-after-free
// in its first detection run.
//
//	go run ./examples/messagequeue
package main

import (
	"fmt"

	"waffle"
)

// scenario builds a small broker: a runtime thread that eventually tears
// the poller down, and a worker that processes queued messages through it.
func scenario() waffle.Scenario {
	return waffle.Scenario{
		Name: "netmq-style-broker",
		Body: func(t *waffle.Thread, h *waffle.Heap) {
			poller := h.NewRef("m_poller")
			poller.Init(t, "runtime.go:2")

			var queue waffle.Queue
			queue.Send(t, "msg-0")

			worker := t.Spawn("worker", func(w *waffle.Thread) {
				msg, ok := queue.Recv(w)
				if !ok {
					return
				}
				_ = msg
				w.Work(3 * waffle.Millisecond)
				// TryExecTaskInline: checks the poller before
				// dispatching — the racy use.
				poller.Use(w, "poller.go:11")
			})

			// Cleanup: the connection drops 4.5ms in; the same check site
			// runs here, in a different thread, right before the dispose.
			t.Sleep(4 * waffle.Millisecond)
			if poller.UseIfLive(t, "poller.go:11") {
				t.Work(500 * waffle.Microsecond)
				poller.Dispose(t, "cleanup.go:8")
			}
			t.Join(worker)
		},
	}
}

func main() {
	fmt.Println("== Waffle (interference-aware) ==")
	w := waffle.New(waffle.Options{}).Expose(scenario(), 25, 3)
	report(w)

	fmt.Println("\n== WaffleBasic (unrestricted parallel delays) ==")
	b := waffle.NewBasic(waffle.Options{}).Expose(scenario(), 25, 3)
	report(b)

	if w.Bug != nil && (b.Bug == nil || b.Bug.Run > w.Bug.Run) {
		fmt.Println("\nWaffle beat WaffleBasic on the Figure 4b shape, as in the paper (Bug-11: 2 runs vs 5).")
	}
}

func report(out *waffle.Outcome) {
	if out.Bug == nil {
		fmt.Printf("no bug in %d runs\n", len(out.Runs))
		return
	}
	fmt.Printf("exposed %v at %s in run %d (slowdown %.1fx)\n",
		out.Bug.Kind(), out.Bug.NullRef.Site, out.Bug.Run, out.Slowdown())
	for _, p := range out.Bug.Candidates {
		fmt.Printf("  candidate {%s, %s} %v, gap %v\n", p.Delay, p.Target, p.Kind, p.Gap)
	}
}
