// Bit-identity of the sharded, streaming, and incremental analyzers
// against the sequential one, over the preparation trace of every built-in
// bug input. This is the contract that makes -parallel-analyze (and
// incremental re-analysis between campaigns) safe to enable anywhere: the
// JSON-encoded plans are compared byte for byte.
package waffle_test

import (
	"bytes"
	"testing"

	"waffle/internal/apps"
	"waffle/internal/core"
	"waffle/internal/trace"
)

// prepTraceOf performs one preparation run of a test and returns its trace.
func prepTraceOf(tb testing.TB, test *apps.Test, seed int64) *trace.Trace {
	tb.Helper()
	wf := core.NewWaffle(core.Options{})
	wf.SetLabel(test.Name)
	hook := wf.HookForRun(1, nil)
	res := test.Prog.Execute(seed, hook)
	if res.Err != nil {
		tb.Fatalf("%s: preparation run: %v", test.Name, res.Err)
	}
	wf.FinishPreparation(&core.RunReport{Run: 1, End: res.End})
	tr := wf.PrepTrace()
	if tr == nil {
		tb.Fatalf("%s: no preparation trace", test.Name)
	}
	return tr
}

func encodePlan(tb testing.TB, plan *core.Plan) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := plan.WriteJSON(&buf); err != nil {
		tb.Fatalf("encode plan: %v", err)
	}
	return buf.Bytes()
}

func TestShardedAndStreamingAnalysisBitIdenticalOnAllApps(t *testing.T) {
	for _, test := range apps.AllBugs() {
		tr := prepTraceOf(t, test, 11)
		if !tr.TimeSorted() {
			t.Fatalf("%s: preparation trace not time-sorted", test.Name)
		}
		want := encodePlan(t, core.Analyze(tr, core.Options{}))

		for _, workers := range []int{2, 4, 8} {
			got := encodePlan(t, core.AnalyzeParallel(tr, core.Options{}, workers))
			if !bytes.Equal(got, want) {
				t.Errorf("%s: %d-worker plan diverged from sequential (%d vs %d bytes)",
					test.Name, workers, len(got), len(want))
			}
		}

		var stream bytes.Buffer
		if err := tr.WriteStream(&stream); err != nil {
			t.Fatalf("%s: write stream: %v", test.Name, err)
		}
		plan, err := core.AnalyzeStream(bytes.NewReader(stream.Bytes()), core.Options{})
		if err != nil {
			t.Fatalf("%s: streaming analysis: %v", test.Name, err)
		}
		if got := encodePlan(t, plan); !bytes.Equal(got, want) {
			t.Errorf("%s: streamed plan diverged from sequential (%d vs %d bytes)",
				test.Name, len(got), len(want))
		}

		// Incremental: the bootstrap (no previous campaign) must match the
		// sequential plan, and re-analysis against a second campaign's trace
		// — a fresh preparation run under a different seed — must match a
		// from-scratch Analyze of that trace.
		boot := core.AnalyzeIncremental(nil, nil, tr, core.Options{})
		if got := encodePlan(t, boot); !bytes.Equal(got, want) {
			t.Errorf("%s: incremental bootstrap diverged from sequential (%d vs %d bytes)",
				test.Name, len(got), len(want))
		}
		tr2 := prepTraceOf(t, test, 12)
		want2 := encodePlan(t, core.Analyze(tr2, core.Options{}))
		got2 := encodePlan(t, core.AnalyzeIncremental(boot, tr, tr2, core.Options{}))
		if !bytes.Equal(got2, want2) {
			t.Errorf("%s: incremental re-analysis diverged from sequential (%d vs %d bytes)",
				test.Name, len(got2), len(want2))
		}
	}
}
