// Command waffle-server is the long-running campaign daemon: it accepts
// detection-campaign jobs over HTTP, sweeps each job's generated corpus
// through a pluggable detection engine on a shared worker pool, streams
// incremental results, and journals progress so a killed server resumes
// mid-corpus on restart.
//
//	waffle-server -addr :8080 -journal campaign.jsonl
//
//	curl -s localhost:8080/v1/jobs -d '{"corpus":{"seed":500,"programs":25},"engine":{"kind":"waffle"}}'
//	curl -s localhost:8080/v1/jobs/job-1
//	curl -s 'localhost:8080/v1/jobs/job-1/results?after=0&wait=30s'
//	curl -s localhost:8080/metrics
//
// SIGTERM/SIGINT drain gracefully: in-flight program waves finish, jobs
// park resumable in the journal, the HTTP server shuts down cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"waffle/internal/obs"
	"waffle/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		journal      = flag.String("journal", "", "JSONL journal path (empty: in-memory only, no restart resume)")
		workers      = flag.Int("workers", 0, "global worker slots shared across jobs (0: GOMAXPROCS)")
		maxActive    = flag.Int("max-active", 2, "jobs running concurrently; the rest queue by priority")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "shutdown grace for in-flight waves")
	)
	flag.Parse()

	reg := obs.New()
	mgr, err := server.New(server.Options{
		Journal:   *journal,
		Workers:   *workers,
		MaxActive: *maxActive,
		Metrics:   reg,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "waffle-server: %v\n", err)
		os.Exit(1)
	}

	mux := http.NewServeMux()
	mux.Handle("/", mgr.Handler())
	mux.Handle("/metrics", reg.Handler())

	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "waffle-server: listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("waffle-server: serving http://%s (journal %q)\n", ln.Addr(), *journal)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		fmt.Printf("waffle-server: %v, draining (grace %v)\n", s, *drainTimeout)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "waffle-server: serve: %v\n", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting connections first, then park the jobs: a client that
	// got a 200 before shutdown has its data journaled already.
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "waffle-server: http shutdown: %v\n", err)
	}
	if err := mgr.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "waffle-server: drain: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("waffle-server: drained")
}
