// Command waffle-bench regenerates the paper's evaluation tables and
// figures from the synthetic benchmark suite.
//
// Usage:
//
//	waffle-bench -table 4            # one table (1..7)
//	waffle-bench -figure 2           # one figure (2 or 5)
//	waffle-bench -all                # everything, in paper order
//	waffle-bench -all -max-tests 20 -reps 5   # faster, subsampled
//	waffle-bench -gen 1000,100,mixed # differential oracle over a generated corpus
//
// The output is the measured reproduction; EXPERIMENTS.md places it side
// by side with the paper's numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"waffle/internal/apps"
	"waffle/internal/control"
	"waffle/internal/eval"
	"waffle/internal/genprog"
	"waffle/internal/obs"
	"waffle/internal/report"
)

func main() {
	var (
		table    = flag.Int("table", 0, "render one table (1..7)")
		figure   = flag.Int("figure", 0, "render one figure (2 or 5)")
		all      = flag.Bool("all", false, "render every table and figure")
		maxTests = flag.Int("max-tests", 0, "cap tests per app (0 = full suite)")
		reps     = flag.Int("reps", 15, "repetitions for probabilistic experiments")
		maxRuns  = flag.Int("max-runs", 50, "search bound for bug exposure")
		seed     = flag.Int64("seed", 1, "base seed")
		parallel = flag.Int("parallel", 0, "worker goroutines for independent sessions (0 = GOMAXPROCS; numbers unchanged)")
		panalyze = flag.Int("parallel-analyze", 0, "worker goroutines for each trace analysis (plans bit-identical to sequential)")
		appName  = flag.String("app", "", "restrict suite tables to one app")
		sweep    = flag.String("sweep", "", "sensitivity sweep: window | alpha")
		compare  = flag.Bool("compare", false, "empirical tool comparison across Table 1's design points")
		fullHB   = flag.Bool("fullhb", false, "partial (fork-only) vs full happens-before analysis trade-off")
		format   = flag.String("format", "ascii", "output format: ascii | md")
		gaps     = flag.Bool("gaps", false, "per-bug delay-free time gaps (§4.3's measurement)")
		detail   = flag.Bool("ablation-detail", false, "per-bug runs-to-expose under each Table 7 ablation")
		gen      = flag.String("gen", "", "differential oracle over a generated corpus: seed,count,size (size: small|medium|large|mixed)")
		genOut   = flag.String("gen-out", "BENCH_gen.json", "report file for -gen")
		genTSO   = flag.Bool("tso", false, "with -gen: store-buffer (TSO) corpus of stale-read bugs; gates on 100% waffle exposure with manifest-matching fence proposals")

		adaptive    = flag.Bool("adaptive", false, "with -gen: sweep the corpus twice (fixed, then under the adaptive campaign controller) and gate on exposure parity with strictly fewer runs")
		adaptiveOut = flag.String("adaptive-out", "BENCH_adaptive.json", "report file for -adaptive")
		adaptiveLog = flag.String("adaptive-log", "", "with -adaptive: append every retune decision as a JSONL event to this path; '-' for stderr")

		metricsOut      = flag.String("metrics-out", "", "write the campaign metrics snapshot (JSON, waffle.metrics/v1) to this path")
		validateMetrics = flag.String("validate-metrics", "", "validate a metrics JSON file (bare snapshot or a report with a \"metrics\" section) and exit")
	)
	flag.Parse()
	markdown = *format == "md"

	if *validateMetrics != "" {
		data, err := os.ReadFile(*validateMetrics)
		if err == nil {
			err = obs.ValidateSnapshotJSON(data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "waffle-bench: -validate-metrics %s: %v\n", *validateMetrics, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid %s snapshot\n", *validateMetrics, obs.SchemaVersion)
		return
	}

	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.New()
		defer writeMetrics(reg, *metricsOut)
	}

	if *adaptive && *gen == "" {
		fmt.Fprintln(os.Stderr, "waffle-bench: -adaptive requires -gen")
		os.Exit(2)
	}
	if *adaptiveLog != "" && !*adaptive {
		fmt.Fprintln(os.Stderr, "waffle-bench: -adaptive-log requires -adaptive")
		os.Exit(2)
	}

	if *gen != "" {
		opt, err := parseGen(*gen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "waffle-bench: bad -gen %q: %v\n", *gen, err)
			os.Exit(2)
		}
		opt.MaxRuns = *maxRuns
		opt.Workers = *parallel
		opt.Metrics = reg
		opt.TSO = *genTSO
		if *adaptive {
			err = runGenAdaptive(opt, *adaptiveOut, *adaptiveLog)
		} else {
			err = runGen(opt, *genOut)
		}
		if err != nil {
			if reg != nil {
				writeMetrics(reg, *metricsOut)
			}
			fmt.Fprintf(os.Stderr, "waffle-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if !*all && *table == 0 && *figure == 0 && *sweep == "" && !*compare && !*fullHB && !*gaps && !*detail {
		flag.Usage()
		os.Exit(2)
	}

	suite := func() []eval.SuiteRow {
		var rows []eval.SuiteRow
		for _, a := range apps.Registry() {
			if *appName != "" && a.Name != *appName {
				continue
			}
			if a.Name == "LiteDB" {
				continue // excluded from Tables 2/5/6 (§6.4)
			}
			rows = append(rows, eval.EvalSuite(a, eval.SuiteOptions{Seed: *seed, MaxTests: *maxTests, Parallelism: *parallel, AnalyzeWorkers: *panalyze, Metrics: reg}))
		}
		return rows
	}
	bugOpt := eval.BugOptions{Seed: *seed, Repetitions: *reps, MaxRuns: *maxRuns, Parallelism: *parallel}

	var suiteRows []eval.SuiteRow
	getSuite := func() []eval.SuiteRow {
		if suiteRows == nil {
			suiteRows = suite()
		}
		return suiteRows
	}

	want := func(t int) bool { return *all || *table == t }
	wantFig := func(f int) bool { return *all || *figure == f }

	if want(1) {
		printTable1()
	}
	if wantFig(2) {
		printFigure2(*seed, *reps)
	}
	if want(2) {
		printTable2(getSuite())
	}
	if want(3) {
		printTable3()
	}
	if want(4) {
		printTable4(bugOpt)
	}
	if want(5) {
		printTable5(getSuite())
	}
	if wantFig(5) {
		printFigure5(getSuite())
	}
	if want(6) {
		printTable6(getSuite())
	}
	if want(7) {
		printTable7(bugOpt)
	}
	if *sweep != "" || *all {
		printSweeps(*sweep, eval.SweepOptions{Seed: *seed, Repetitions: min(*reps, 5), MaxRuns: 20})
	}
	if *compare || *all {
		printComparison(eval.BugOptions{Seed: *seed, Repetitions: min(*reps, 7), MaxRuns: *maxRuns})
	}
	if *fullHB || *all {
		printFullHB(eval.FullHBOptions{Seed: *seed, MaxTests: 10})
	}
	if *gaps || *all {
		printGaps(*seed)
	}
	if *detail {
		printAblationDetail(eval.BugOptions{Seed: *seed, Repetitions: min(*reps, 7), MaxRuns: *maxRuns})
	}
}

// writeMetrics snapshots reg to path as indented JSON.
func writeMetrics(reg *obs.Registry, path string) {
	data, err := reg.Snapshot().MarshalIndentJSON()
	if err == nil {
		err = os.WriteFile(path, data, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "waffle-bench: -metrics-out: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("metrics written to %s\n", path)
}

// parseGen parses the "-gen seed,count,size" triple. count and size are
// optional: "1000" means 25 mixed programs from seed 1000.
func parseGen(s string) (eval.DiffOptions, error) {
	var opt eval.DiffOptions
	parts := strings.Split(s, ",")
	if len(parts) > 3 {
		return opt, fmt.Errorf("want seed[,count[,size]]")
	}
	seed, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		return opt, fmt.Errorf("seed: %w", err)
	}
	opt.Seed = seed
	opt.Mixed = true
	if len(parts) > 1 {
		n, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil || n <= 0 {
			return opt, fmt.Errorf("count: want a positive integer, got %q", parts[1])
		}
		opt.Programs = n
	}
	if len(parts) > 2 {
		switch strings.TrimSpace(parts[2]) {
		case "mixed", "":
		case "small":
			opt.Mixed, opt.Size = false, genprog.SizeSmall
		case "medium":
			opt.Mixed, opt.Size = false, genprog.SizeMedium
		case "large":
			opt.Mixed, opt.Size = false, genprog.SizeLarge
		default:
			return opt, fmt.Errorf("size: want small|medium|large|mixed, got %q", parts[2])
		}
	}
	return opt, nil
}

// runGen runs the differential oracle, prints the corpus summary, and
// writes the machine-readable report.
func runGen(opt eval.DiffOptions, out string) error {
	rep := eval.RunDifferential(opt)

	mix := fmt.Sprintf("%d planted bugs: %d UBI + %d UAF", rep.PlantedUBI+rep.PlantedUAF, rep.PlantedUBI, rep.PlantedUAF)
	if opt.TSO {
		mix = fmt.Sprintf("%d planted stale reads, TSO", rep.PlantedStale)
	}
	t := report.NewTable(
		fmt.Sprintf("Differential oracle: %d generated programs (seed %d, %s)",
			rep.Programs, rep.Seed, mix),
		"Tool", "Exposed", "Rate", "Mean runs", "±95% CI", "p50", "p90", "p99", "Delays")
	for _, s := range rep.Tools {
		t.Row(s.Tool, fmt.Sprintf("%d/%d", s.Exposed, s.Sessions),
			fmt.Sprintf("%.0f%%", s.ExposureRate*100),
			fmt.Sprintf("%.2f", s.MeanRuns), fmt.Sprintf("%.2f", s.CI95Runs),
			fmt.Sprintf("%.0f", s.P50Runs), fmt.Sprintf("%.0f", s.P90Runs),
			fmt.Sprintf("%.0f", s.P99Runs), s.Delays)
	}
	render(t)
	fmt.Printf("reproducible: %v; violations: %d\n", rep.ReproOK, len(rep.Violations))
	if ra := rep.Reanalysis; ra != nil {
		fmt.Printf("re-analysis: full %.2fms, incremental %.2fms (%.2fx)\n",
			float64(ra.FullNS)/1e6, float64(ra.IncrementalNS)/1e6, ra.Speedup)
	}
	for _, v := range rep.Violations {
		fmt.Printf("  VIOLATION: %s\n", v)
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	if len(rep.Violations) > 0 {
		return fmt.Errorf("%d oracle violations", len(rep.Violations))
	}
	if opt.TSO {
		// A TSO corpus additionally gates on full exposure: the fence
		// proposals (already manifest-checked per exposure) are only a
		// complete repair map if every planted stale read was exposed.
		if wf, ok := rep.Summary("waffle"); !ok || wf.Missed > 0 {
			return fmt.Errorf("waffle missed %d of %d planted stale reads", wf.Missed, wf.Sessions)
		}
	}
	return nil
}

// runGenAdaptive runs the adaptive-vs-fixed comparison over a generated
// corpus, prints both arms, writes the machine-readable report, and fails
// unless the adaptive arm reached exposure parity with strictly fewer
// runs and no oracle violations.
func runGenAdaptive(opt eval.DiffOptions, out, logPath string) error {
	cfg := control.Config{}
	switch logPath {
	case "":
	case "-":
		cfg.Log = os.Stderr
	default:
		f, err := os.Create(logPath)
		if err != nil {
			return fmt.Errorf("-adaptive-log: %w", err)
		}
		defer f.Close()
		cfg.Log = f
	}
	rep := eval.RunAdaptiveComparison(opt, cfg)

	t := report.NewTable(
		fmt.Sprintf("Adaptive vs fixed: %d generated programs (seed %d)", rep.Programs, rep.Seed),
		"Arm", "Total runs", "Exposed", "Violations")
	t.Row("fixed", rep.Fixed.TotalRuns, rep.Fixed.Exposed, rep.Fixed.Violations)
	t.Row("adaptive", rep.Adaptive.TotalRuns, rep.Adaptive.Exposed, rep.Adaptive.Violations)
	render(t)
	stopped, saved := 0, 0
	for _, tg := range rep.Targets {
		if tg.Stopped {
			stopped++
			saved += tg.SavedRuns
		}
	}
	fmt.Printf("parity: %v; runs saved: %d (%.1f%%); retunes: %d; sessions scaled to zero: %d (%d budgeted runs unspent)\n",
		rep.Parity, rep.RunsSaved,
		100*float64(rep.RunsSaved)/float64(max(rep.Fixed.TotalRuns, 1)),
		len(rep.Retunes), stopped, saved)
	for _, v := range rep.Violations {
		fmt.Printf("  VIOLATION: %s\n", v)
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	switch {
	case len(rep.Violations) > 0:
		return fmt.Errorf("%d violation(s)", len(rep.Violations))
	case !rep.Parity:
		return fmt.Errorf("adaptive arm lost exposures")
	case rep.RunsSaved <= 0:
		return fmt.Errorf("adaptive arm saved no runs (fixed %d, adaptive %d)",
			rep.Fixed.TotalRuns, rep.Adaptive.TotalRuns)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func printAblationDetail(opt eval.BugOptions) {
	rows := eval.EvalAblationDetail(opt)
	t := report.NewTable("Table 7 detail: runs to expose per bug under each ablation (- = missed)",
		"Bug", "Full", "No parent-child", "No prep run", "No custom length", "No interference")
	for _, r := range rows {
		t.Row(r.ID, report.Runs(r.Full), report.Runs(r.NoParentChild), report.Runs(r.NoPrep),
			report.Runs(r.NoCustomLen), report.Runs(r.NoInterference))
	}
	render(t)
}

func printGaps(seed int64) {
	rows := eval.EvalBugGaps(seed)
	t := report.NewTable("§4.3: delay-free time gaps of the 18 bugs (paper: <1ms to ~100ms)",
		"Bug", "Application", "Known", "Gap (ms)")
	for _, r := range rows {
		t.Row(r.ID, r.App, report.YesNo(r.Known), fmt.Sprintf("%.1f", r.GapMS))
	}
	render(t)
}

func printFullHB(opt eval.FullHBOptions) {
	rows := eval.EvalFullHB(opt)
	t := report.NewTable("Extension: partial (fork-only) vs full happens-before analysis (§4.1's trade-off)",
		"App", "Pairs partial", "Pairs full", "Prep % partial", "Prep % full", "Delays partial", "Delays full", "Bugs partial", "Bugs full")
	for _, r := range rows {
		t.Row(r.App, fmt.Sprintf("%.1f", r.PartialPairs), fmt.Sprintf("%.1f", r.FullPairs),
			report.Pct(r.PartialPrepPct), report.Pct(r.FullPrepPct),
			r.PartialDelays, r.FullDelays,
			fmt.Sprintf("%d/%d", r.PartialBugs, r.AppBugs), fmt.Sprintf("%d/%d", r.FullBugs, r.AppBugs))
	}
	render(t)
}

func printComparison(opt eval.BugOptions) {
	rows := eval.EvalToolComparison(opt)
	t := report.NewTable("Extension: Table 1's design points, empirically (18 bugs)",
		"Tool", "Bugs exposed", "Median runs", "Mean runs", "Median slowdown")
	for _, r := range rows {
		t.Row(r.Tool, r.Exposed, fmt.Sprintf("%.0f", r.MedianRuns),
			fmt.Sprintf("%.1f", r.MeanRuns), fmt.Sprintf("%.1fx", r.MedianSlow))
	}
	render(t)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func printSweeps(which string, opt eval.SweepOptions) {
	render := func(title, unit string, points []eval.SweepPoint) {
		t := report.NewTable(title, unit, "Bugs exposed", "Avg runs", "Avg pairs", "Avg slowdown")
		for _, p := range points {
			t.Row(fmt.Sprintf("%g", p.Value), p.Exposed, fmt.Sprintf("%.1f", p.AvgRuns),
				fmt.Sprintf("%.0f", p.AvgPairs), fmt.Sprintf("%.1fx", p.AvgSlowdown))
		}
		t.Render(os.Stdout)
		fmt.Println()
	}
	if which == "window" || which == "" {
		render("Sensitivity: near-miss window δ (paper fixes 100ms)", "δ (ms)",
			eval.EvalWindowSweep(nil, opt))
	}
	if which == "alpha" || which == "" {
		render("Sensitivity: delay multiplier α (paper fixes 1.15)", "α",
			eval.EvalAlphaSweep(nil, opt))
	}
}

// markdown selects the renderer for every table.
var markdown bool

// render draws a table in the selected format.
func render(t *report.Table) {
	if markdown {
		t.RenderMarkdown(os.Stdout)
		return
	}
	t.Render(os.Stdout)
	fmt.Println()
}

func printTable1() {
	t := report.NewTable("Table 1. Design decisions of recent active delay injection tools",
		append([]string{"Design decision"}, eval.Table1Tools...)...)
	for _, row := range eval.Table1() {
		cells := []any{row.Decision}
		for _, tool := range eval.Table1Tools {
			cells = append(cells, row.Values[tool])
		}
		t.Row(cells...)
	}
	render(t)
}

func printFigure2(seed int64, reps int) {
	points := eval.EvalFigure2(eval.Fig2Options{Seed: seed, Reps: reps * 3})
	t := report.NewTable("Figure 2. Trigger rate vs injected delay (TSV: ranged; MemOrder: threshold)",
		"Delay (ms)", "TSV trigger rate", "MemOrder trigger rate")
	for _, p := range points {
		t.Row(p.DelayMS, fmt.Sprintf("%.2f", p.TSVRate), fmt.Sprintf("%.2f", p.MemOrdRate))
	}
	render(t)
}

func printTable2(rows []eval.SuiteRow) {
	t := report.NewTable("Table 2. Average unique static instrumentation and injection sites per test input",
		"App", "Instr TSV", "Instr MO", "Inject TSV", "Inject MO")
	for _, r := range rows {
		if !r.InTable2 {
			continue
		}
		t.Row(r.App, r.TSVInstrSites, r.MOInstrSites, r.TSVInjSites, r.MOInjSites)
	}
	render(t)
}

func printTable3() {
	t := report.NewTable("Table 3. Benchmark applications",
		"Application", "LoC", "# MT tests", "# Stars")
	for _, a := range apps.Registry() {
		t.Row(a.Name, fmt.Sprintf("%.1fK", a.LoCK), a.MTTests, fmt.Sprintf("%.1fK", a.StarsK))
	}
	render(t)
}

func printTable4(opt eval.BugOptions) {
	rows := eval.EvalTable4(opt)
	t := report.NewTable("Table 4. Detection results (runs to expose and end-to-end slowdown)",
		"Bug", "Application", "Issue", "Known", "Base (ms)",
		"Runs Basic", "Runs Waffle", "Slowdown Basic", "Slowdown Waffle")
	for _, r := range rows {
		t.Row(r.ID, r.App, r.IssueID, report.YesNo(r.Known),
			fmt.Sprintf("%.0f", r.BaseMS),
			report.Runs(r.BasicRuns), report.Runs(r.WaffleRuns),
			report.Slow(r.BasicSlowdown), report.Slow(r.WaffleSlowdown))
	}
	t.Render(os.Stdout)
	exposedB, exposedW := 0, 0
	for _, r := range rows {
		if r.BasicRuns > 0 {
			exposedB++
		}
		if r.WaffleRuns > 0 {
			exposedW++
		}
	}
	fmt.Printf("Waffle exposed %d/18 bugs; WaffleBasic exposed %d/18.\n\n", exposedW, exposedB)
}

func printTable5(rows []eval.SuiteRow) {
	t := report.NewTable("Table 5. Average overhead (%) on all test inputs",
		"App", "Base (ms)", "Basic R#1", "Basic R#2", "Waffle R#1", "Waffle R#2")
	for _, r := range rows {
		b1, b2 := report.Pct(r.BasicR1Pct), report.Pct(r.BasicR2Pct)
		if r.BasicTimedOut {
			b1, b2 = "TimeOut", "TimeOut"
		}
		t.Row(r.App, fmt.Sprintf("%.0f", r.BaseMS), b1, b2,
			report.Pct(r.WaffleR1Pct), report.Pct(r.WaffleR2Pct))
	}
	render(t)
}

func printFigure5(rows []eval.SuiteRow) {
	t := report.NewTable("Figure 5 / §3.3. Average delay-overlap ratio per app (1 − projection/total)",
		"App", "TSVD overlap", "WaffleBasic overlap")
	for _, r := range rows {
		t.Row(r.App, fmt.Sprintf("%.1f%%", r.TSVDOverlap*100), fmt.Sprintf("%.1f%%", r.BasicOverlap*100))
	}
	render(t)
}

func printTable6(rows []eval.SuiteRow) {
	t := report.NewTable("Table 6. Cumulative delays injected (one detection run per input)",
		"App", "Basic #", "Basic dur (ms)", "Waffle #", "Waffle dur (ms)")
	for _, r := range rows {
		b1, b2 := fmt.Sprintf("%d", r.BasicDelays), fmt.Sprintf("%.0f", r.BasicDelayDurMS)
		if r.BasicTimedOut {
			b1, b2 = "TimeOut", "TimeOut"
		}
		t.Row(r.App, b1, b2, r.WaffleDelays, fmt.Sprintf("%.0f", r.WaffleDelayDurMS))
	}
	render(t)
}

func printTable7(opt eval.BugOptions) {
	rows := eval.EvalTable7(opt)
	t := report.NewTable("Table 7. Alternative designs: bugs missed and slowdown over full Waffle",
		"Design", "# bugs missed", "Slowdown over Waffle")
	for _, r := range rows {
		t.Row(r.Name, r.BugsMissed, fmt.Sprintf("%.2fx", r.Slowdown))
	}
	render(t)
}
