// Command waffle-repro replays a persisted bug report deterministically —
// the triage flow a CI system runs after a nightly waffle sweep: load the
// JSON report that `waffle -report` wrote, rebuild the minimal plan (the
// culprit candidate pair, probability 1, fully serialized), re-execute the
// named test at the exposing seed, and confirm the same fault fires.
//
// Usage:
//
//	waffle -test SSH.Net/Bug-2 -report bug.json
//	waffle-repro -report bug.json
package main

import (
	"flag"
	"fmt"
	"os"

	"waffle/internal/apps"
	"waffle/internal/core"
)

func main() {
	var (
		reportPath = flag.String("report", "", "bug report JSON written by waffle -report")
		verbose    = flag.Bool("v", false, "print the minimal plan before replaying")
	)
	flag.Parse()
	if *reportPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*reportPath)
	if err != nil {
		fatal(err)
	}
	bug, err := core.ReadBugReportJSON(f)
	f.Close()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", *reportPath, err))
	}

	test := findTest(bug.Program)
	if test == nil {
		fatal(fmt.Errorf("report names unknown test %q", bug.Program))
	}

	fmt.Printf("report:  %s (%s at %s, run %d, seed %d)\n",
		bug.Program, bug.Kind(), bug.NullRef.Site, bug.Run, bug.Seed)
	if *verbose {
		plan := core.MinimalPlan(bug, core.Options{})
		fmt.Printf("minimal plan: %d pair(s)\n", len(plan.Pairs))
		for _, p := range plan.Pairs {
			fmt.Printf("  {%s -> %s} %v, delay %v\n",
				p.Delay, p.Target, p.Kind, plan.DelayLen[p.Delay])
		}
	}

	rep := core.Replay(test.Prog, bug, core.Options{})
	fmt.Printf("replay:  %v\n", rep)
	if !rep.Reproduced {
		os.Exit(3)
	}
}

func findTest(name string) *apps.Test {
	for _, a := range apps.Registry() {
		for _, test := range a.Tests {
			if test.Name == name {
				return test
			}
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "waffle-repro: %v\n", err)
	os.Exit(1)
}
