package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"waffle/internal/obs"
)

// metricsConfig owns the campaign registry and its two outputs: the
// end-of-campaign snapshot file (-metrics) and the HTTP scrape endpoint
// (-metrics-addr, optionally kept alive by -metrics-linger so CI can
// scrape a campaign that finishes faster than its probe arrives). reg is
// nil when no metrics flag was set — every consumer treats a nil registry
// as "instrumentation off".
type metricsConfig struct {
	reg    *obs.Registry
	out    string
	linger time.Duration
	srv    *http.Server
}

// newMetricsConfig builds the registry and starts the HTTP endpoint if
// requested. Exits with a diagnostic when the address cannot be bound.
func newMetricsConfig(out, addr string, linger time.Duration) *metricsConfig {
	mc := &metricsConfig{out: out, linger: linger}
	if out == "" && addr == "" {
		return mc
	}
	mc.reg = obs.New()
	if addr != "" {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "waffle: -metrics-addr: %v\n", err)
			os.Exit(1)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", mc.reg.Handler())
		mux.Handle("/", mc.reg.Handler())
		mc.srv = &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
			IdleTimeout:       60 * time.Second,
		}
		go mc.srv.Serve(ln)
		fmt.Printf("metrics: serving http://%s/metrics\n", ln.Addr())
	}
	return mc
}

// finish writes the snapshot file, honors the linger window, and shuts the
// endpoint down. Call once, before the process exits.
func (mc *metricsConfig) finish() {
	if mc.reg == nil {
		return
	}
	if mc.out != "" {
		snap := mc.reg.Snapshot()
		data, err := snap.MarshalIndentJSON()
		if err == nil && mc.out == "-" {
			os.Stdout.Write(data)
		} else if err == nil {
			err = os.WriteFile(mc.out, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "waffle: -metrics: %v\n", err)
			os.Exit(1)
		}
		if mc.out != "-" {
			fmt.Printf("metrics written to %s\n", mc.out)
		}
	}
	if mc.srv != nil {
		if mc.linger > 0 {
			fmt.Printf("metrics: endpoint lingering %v for scrapes\n", mc.linger)
			time.Sleep(mc.linger)
		}
		// Graceful: let an in-flight scrape finish rather than cutting
		// its connection mid-response.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := mc.srv.Shutdown(ctx); err != nil {
			mc.srv.Close()
		}
	}
}
