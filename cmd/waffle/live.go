package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"waffle/internal/control"
	"waffle/internal/live"
	"waffle/internal/report"
)

// simOnlyFlags are rejected in -live mode: each depends on the
// deterministic virtual-time simulator and would otherwise be silently
// meaningless on the wall clock.
var simOnlyFlags = map[string]string{
	"seed":     "wall-clock scheduling cannot be swept or replayed by seed; live injector seeds derive from the run number",
	"parallel": "speculative parallel re-execution requires deterministic virtual-time runs",
	"replay":   "deterministic replay requires the virtual-time simulator",
	"tool":     "live mode always runs the full waffle pipeline (baselines are simulator-only)",
	"suite":    "the benchmark suite runs in the simulator; use a live demo instead",
	"test":     "benchmark tests run in the simulator; pass a live demo name to -live",
}

// rejectSimOnlyFlags exits with a clear diagnostic when any sim-only flag
// was explicitly set alongside -live (flag.Visit only reports set flags).
func rejectSimOnlyFlags() {
	var bad []string
	flag.Visit(func(f *flag.Flag) {
		if why, ok := simOnlyFlags[f.Name]; ok {
			bad = append(bad, fmt.Sprintf("  -%s: %s", f.Name, why))
		}
	})
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "waffle: flag(s) not valid with -live:\n%s\n", strings.Join(bad, "\n"))
		os.Exit(2)
	}
}

// didSet reports whether a flag was explicitly set on the command line.
func didSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func listDemos() {
	fmt.Println("live demos (real goroutines, wall-clock time):")
	for _, d := range live.Demos() {
		fmt.Printf("  %-10s %v: %s\n", d.Name, d.Kind, d.About)
	}
}

// liveBench is the BENCH_live.json payload: per-phase wall time for one
// live detection session.
type liveBench struct {
	Demo    string      `json:"demo"`
	Exposed bool        `json:"exposed"`
	Runs    int         `json:"runs"`
	Phases  live.Phases `json:"phases"`
}

// runLive drives the live detector against a built-in demo.
func runLive(name string, maxRuns, panalyze int, sample float64, reportPath, planPath, tracePath, benchPath string, mc *metricsConfig, ctrl *control.Controller) {
	demo, ok := live.FindDemo(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "waffle: unknown live demo %q (try -live-list)\n", name)
		os.Exit(1)
	}
	if sample <= 0 || sample > 1 {
		fmt.Fprintf(os.Stderr, "waffle: -live-sample %g out of range (0, 1]\n", sample)
		os.Exit(2)
	}

	opts := live.Options{AnalyzeWorkers: panalyze, SampleRate: sample, Metrics: mc.reg}
	tgt := ctrl.Target(name + "/waffle-live")
	if tgt != nil {
		opts.Tuner = tgt
	}
	d := live.NewDetector(opts)
	out := d.Expose(demo.Scenario, maxRuns, 1)
	tgt.ObserveOutcome(out)

	fmt.Printf("program:  %s (live, wall clock)\n", out.Program)
	fmt.Printf("tool:     %s\n", out.Tool)
	if out.BaseErr != nil {
		fmt.Printf("baseline: unavailable (%v)\n", out.BaseErr)
	} else {
		fmt.Printf("baseline: %v (uninstrumented)\n", time.Duration(out.BaseTime))
	}
	for _, r := range out.Runs {
		kind := "detection"
		if r.Run == 1 {
			kind = "preparation"
		}
		status := "clean"
		switch {
		case r.Err != nil:
			status = "ERROR"
		case r.Fault != nil:
			status = "FAULT"
		case r.TimedOut:
			status = "timeout"
		case r.SampledOut:
			status = "sampled-out"
		}
		fmt.Printf("run %2d (%s, started %s): wall=%v delays=%d (%v total, %d skipped) %s\n",
			r.Run, kind, r.WallStart.Format("15:04:05.000"), r.WallDur,
			r.Stats.Count, time.Duration(r.Stats.Total), r.Stats.Skipped, status)
	}

	fmt.Print(report.RunTimeline(out.Runs, 60))

	if out.Bug == nil {
		fmt.Printf("no MemOrder bug manifested in %d runs\n", len(out.Runs))
	} else {
		b := out.Bug
		fmt.Printf("\nBUG EXPOSED: %s\n", b.Kind())
		fmt.Printf("  input:     %s (run %d)\n", b.Program, b.Run)
		fmt.Printf("  fault:     %v\n", b.NullRef)
		fmt.Printf("  at:        %v into the run\n", time.Duration(b.Fault.T))
		if len(b.Candidates) > 0 {
			fmt.Println("  candidate pairs involved:")
			for _, p := range b.Candidates {
				fmt.Printf("    {%s, %s} %s (gap %v, %d near misses)\n",
					p.Delay, p.Target, p.Kind, time.Duration(p.Gap), p.Count)
			}
		}
		fmt.Printf("  delays in exposing run: %d (%v total)\n", b.Delays.Count, time.Duration(b.Delays.Total))
		if reportPath != "" {
			f, err := os.Create(reportPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "waffle: %v\n", err)
				os.Exit(1)
			}
			if err := b.WriteJSON(f); err != nil {
				fmt.Fprintf(os.Stderr, "waffle: %v\n", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("  report written to %s\n", reportPath)
		}
	}

	if planPath != "" && d.Plan() != nil {
		f, err := os.Create(planPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "waffle: %v\n", err)
			os.Exit(1)
		}
		if err := d.Plan().WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "waffle: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("plan written to %s\n", planPath)
	}
	if tracePath != "" && d.PrepTrace() != nil {
		f, err := os.Create(tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "waffle: %v\n", err)
			os.Exit(1)
		}
		if err := d.PrepTrace().WriteBinary(f); err != nil {
			fmt.Fprintf(os.Stderr, "waffle: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("preparation trace written to %s\n", tracePath)
	}
	if benchPath != "" {
		payload := liveBench{
			Demo: demo.Name, Exposed: out.Bug != nil,
			Runs: len(out.Runs), Phases: d.Phases(),
		}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err == nil {
			err = os.WriteFile(benchPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "waffle: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("live bench written to %s\n", benchPath)
	}
	mc.finish()
	if out.Bug == nil {
		os.Exit(3)
	}
}
