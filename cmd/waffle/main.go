// Command waffle drives the Waffle detector (or the WaffleBasic baseline)
// against a test from the benchmark suite, mirroring the workflow of
// Figure 3: a preparation run, trace analysis, then detection runs until a
// MemOrder bug manifests or the run budget is exhausted.
//
// Usage:
//
//	waffle -list                         # enumerate apps and tests
//	waffle -test SSH.Net/Bug-1           # expose a known bug
//	waffle -test SSH.Net/Bug-1 -tool basic
//	waffle -test NpgSQL/Bug-12 -plan plan.json -trace prep.trace
//
// Live mode runs the detector against real goroutines on the wall clock
// (see package live); scheduling is physical, so sim-only flags such as
// -seed and -parallel are rejected:
//
//	waffle -live-list                    # enumerate live demos
//	waffle -live disposer                # expose a planted use-after-free
//	waffle -live disposer -live-bench BENCH_live.json
package main

import (
	"flag"
	"fmt"
	"os"

	"waffle/internal/apps"
	"waffle/internal/control"
	"waffle/internal/core"
	"waffle/internal/wafflebasic"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list applications and their tests")
		suite    = flag.String("suite", "", "run the detector over every test of one application")
		testName = flag.String("test", "", "test to run, e.g. SSH.Net/Bug-1")
		toolName = flag.String("tool", "waffle", "detector: waffle | basic | waffle-noprep")
		maxRuns  = flag.Int("max-runs", 50, "run budget (preparation included)")
		seed     = flag.Int64("seed", 1, "base seed; run i uses seed+i-1")
		replay   = flag.Bool("replay", false, "after exposing a bug, validate it with a minimal deterministic replay")
		parallel = flag.Int("parallel", 1, "worker goroutines for detection runs (result identical to sequential)")
		panalyze = flag.Int("parallel-analyze", 0, "worker goroutines for trace analysis (plan bit-identical to sequential; 0 or 1 = sequential)")
		jsonOut  = flag.String("report", "", "write the bug report as JSON to this path")
		planOut  = flag.String("plan", "", "write the analyzed plan (candidate set S, interference set I, delay lengths) as JSON")
		traceOut = flag.String("trace", "", "write the preparation-run trace (binary)")

		liveName   = flag.String("live", "", "run the live (wall-clock, real-goroutine) detector against a built-in demo; see -live-list")
		liveList   = flag.Bool("live-list", false, "list the live demos")
		liveBench  = flag.String("live-bench", "", "with -live: write per-phase wall-time JSON (BENCH_live.json) to this path")
		liveSample = flag.Float64("live-sample", 1.0, "with -live: fraction of detection runs admitted by sampling (0, 1]; sampled-out runs execute uninstrumented")

		metricsOut    = flag.String("metrics", "", "write the campaign metrics snapshot (JSON, waffle.metrics/v1) to this path; '-' for stdout")
		metricsAddr   = flag.String("metrics-addr", "", "serve the live metrics snapshot over HTTP at this address during the campaign (e.g. 127.0.0.1:8321)")
		metricsLinger = flag.Duration("metrics-linger", 0, "with -metrics-addr: keep the endpoint up this long after the campaign ends, so external scrapers can catch a short campaign")

		adaptive    = flag.Bool("adaptive", false, "attach the adaptive campaign controller: retune alpha/decay, cap budgets from campaign history, and scale quiet sessions to zero at run boundaries")
		adaptiveLog = flag.String("adaptive-log", "", "with -adaptive: append every retune decision as a JSONL event to this path; '-' for stderr")
	)
	flag.Parse()

	if *metricsLinger > 0 && *metricsAddr == "" {
		fmt.Fprintln(os.Stderr, "waffle: -metrics-linger requires -metrics-addr")
		os.Exit(2)
	}
	if *adaptiveLog != "" && !*adaptive {
		fmt.Fprintln(os.Stderr, "waffle: -adaptive-log requires -adaptive")
		os.Exit(2)
	}
	mc := newMetricsConfig(*metricsOut, *metricsAddr, *metricsLinger)
	ctrl, ctrlDone := newController(*adaptive, *adaptiveLog)

	if *list {
		listTests()
		return
	}
	if *liveList {
		listDemos()
		return
	}
	if *liveName != "" {
		rejectSimOnlyFlags()
		runLive(*liveName, *maxRuns, *panalyze, *liveSample, *jsonOut, *planOut, *traceOut, *liveBench, mc, ctrl)
		ctrlDone()
		return
	}
	if *liveBench != "" {
		fmt.Fprintln(os.Stderr, "waffle: -live-bench requires -live")
		os.Exit(2)
	}
	if didSet("live-sample") {
		fmt.Fprintln(os.Stderr, "waffle: -live-sample requires -live")
		os.Exit(2)
	}
	if *suite != "" {
		runSuite(*suite, *toolName, *maxRuns, *seed, *parallel, *panalyze, mc, ctrl)
		ctrlDone()
		return
	}
	if *testName == "" {
		flag.Usage()
		os.Exit(2)
	}

	test := findTest(*testName)
	if test == nil {
		fmt.Fprintf(os.Stderr, "waffle: unknown test %q (try -list)\n", *testName)
		os.Exit(1)
	}

	var tool core.Tool
	var wtool *core.Waffle
	switch *toolName {
	case "waffle":
		wtool = core.NewWaffle(core.Options{AnalyzeWorkers: *panalyze, Metrics: mc.reg})
		wtool.SetLabel(test.Name)
		tool = wtool
	case "waffle-noprep":
		tool = core.NewWaffle(core.Options{DisablePrepRun: true, AnalyzeWorkers: *panalyze, Metrics: mc.reg})
	case "basic":
		tool = wafflebasic.New(core.Options{Metrics: mc.reg})
	default:
		fmt.Fprintf(os.Stderr, "waffle: unknown tool %q\n", *toolName)
		os.Exit(1)
	}

	session := &core.Session{Prog: test.Prog, Tool: tool, MaxRuns: *maxRuns, BaseSeed: *seed, Metrics: mc.reg}
	tgt := ctrl.Target(test.Name + "/" + *toolName)
	if tgt != nil {
		session.Tuner = tgt
	}
	out := session.ExposeParallel(*parallel)
	tgt.ObserveOutcome(out)

	fmt.Printf("program:  %s\n", out.Program)
	fmt.Printf("tool:     %s\n", out.Tool)
	fmt.Printf("baseline: %v (uninstrumented)\n", out.BaseTime)
	for _, r := range out.Runs {
		kind := "detection"
		if out.Tool == "waffle" && r.Run == 1 {
			kind = "preparation"
		}
		status := "clean"
		switch {
		case r.Err != nil:
			status = "ERROR"
		case r.Fault != nil:
			status = "FAULT"
		case r.TimedOut:
			status = "timeout"
		}
		fmt.Printf("run %2d (%s, seed %d): end=%v delays=%d (%v total, %d skipped) %s\n",
			r.Run, kind, r.Seed, r.End, r.Stats.Count, r.Stats.Total, r.Stats.Skipped, status)
	}
	if errs := out.RunErrs(); len(errs) > 0 {
		fmt.Printf("%d run(s) failed without a verdict:\n", len(errs))
		for _, e := range errs {
			fmt.Printf("  %v\n", e)
		}
	}

	if out.Bug == nil {
		fmt.Printf("no MemOrder bug manifested in %d runs\n", len(out.Runs))
	} else {
		b := out.Bug
		fmt.Printf("\nBUG EXPOSED: %s\n", b.Kind())
		fmt.Printf("  input:     %s (seed %d, run %d)\n", b.Program, b.Seed, b.Run)
		fmt.Printf("  fault:     %v\n", b.Fault.Err)
		if b.Fence != nil {
			fmt.Printf("  repair:    %v\n", b.Fence)
		}
		fmt.Printf("  at:        %v into the run\n", b.Fault.T)
		fmt.Println("  threads:")
		for _, s := range b.Fault.Stacks {
			fmt.Printf("    %s\n", s)
		}
		if len(b.Candidates) > 0 {
			fmt.Println("  candidate pairs involved:")
			for _, p := range b.Candidates {
				fmt.Printf("    {%s, %s} %s (gap %v, %d near misses)\n", p.Delay, p.Target, p.Kind, p.Gap, p.Count)
			}
		}
		fmt.Printf("  delays in exposing run: %d (%v total)\n", b.Delays.Count, b.Delays.Total)
		fmt.Printf("  end-to-end slowdown: %.1fx over the uninstrumented input\n", out.Slowdown())
		if *replay {
			rep := core.Replay(test.Prog, b, core.Options{})
			fmt.Printf("  replay: %v\n", rep)
		}
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "waffle: %v\n", err)
				os.Exit(1)
			}
			if err := b.WriteJSON(f); err != nil {
				fmt.Fprintf(os.Stderr, "waffle: %v\n", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("  report written to %s\n", *jsonOut)
		}
	}

	if wtool != nil && *planOut != "" && wtool.Plan() != nil {
		if err := writePlan(wtool, *planOut); err != nil {
			fmt.Fprintf(os.Stderr, "waffle: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("plan written to %s\n", *planOut)
	}
	if wtool != nil && *traceOut != "" && wtool.PrepTrace() != nil {
		if err := writeTrace(wtool, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "waffle: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("preparation trace written to %s\n", *traceOut)
	}
	ctrlDone()
	mc.finish()
	if out.Bug == nil {
		os.Exit(3)
	}
}

// newController builds the adaptive campaign controller behind -adaptive.
// The returned done function flushes the decision log and prints the
// campaign summary; both are no-ops when the flag is off.
func newController(enabled bool, logPath string) (*control.Controller, func()) {
	if !enabled {
		return nil, func() {}
	}
	cfg := control.Config{}
	var logFile *os.File
	switch logPath {
	case "":
	case "-":
		cfg.Log = os.Stderr
	default:
		f, err := os.Create(logPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "waffle: -adaptive-log: %v\n", err)
			os.Exit(1)
		}
		cfg.Log = f
		logFile = f
	}
	ctrl := control.New(cfg)
	return ctrl, func() {
		stopped, saved := 0, 0
		for _, t := range ctrl.Targets() {
			if t.Stopped {
				stopped++
				saved += t.SavedRuns
			}
		}
		fmt.Printf("adaptive: %d retune decision(s), %d session(s) scaled to zero, %d run(s) saved\n",
			len(ctrl.Events()), stopped, saved)
		if logFile != nil {
			logFile.Close()
		}
	}
}

// runSuite exposes bugs across one application's whole test suite — the
// evaluation's usage mode: "we ran both tools using every multi-threaded
// test case in the test suites of each application" (§6.1).
func runSuite(appName, toolName string, maxRuns int, seed int64, parallel, panalyze int, mc *metricsConfig, ctrl *control.Controller) {
	app := apps.ByName(appName)
	if app == nil {
		fmt.Fprintf(os.Stderr, "waffle: unknown application %q (try -list)\n", appName)
		os.Exit(1)
	}
	mkTool := func() core.Tool {
		switch toolName {
		case "waffle":
			return core.NewWaffle(core.Options{AnalyzeWorkers: panalyze, Metrics: mc.reg})
		case "waffle-noprep":
			return core.NewWaffle(core.Options{DisablePrepRun: true, AnalyzeWorkers: panalyze, Metrics: mc.reg})
		case "basic":
			return wafflebasic.New(core.Options{Metrics: mc.reg})
		default:
			fmt.Fprintf(os.Stderr, "waffle: unknown tool %q\n", toolName)
			os.Exit(1)
			return nil
		}
	}
	fmt.Printf("%s: %d multi-threaded tests, tool %s, budget %d runs/test\n",
		app.Name, len(app.Tests), toolName, maxRuns)
	bugsFound := 0
	for i, test := range app.Tests {
		session := &core.Session{
			Prog: test.Prog, Tool: mkTool(),
			MaxRuns: maxRuns, BaseSeed: seed + int64(i)*101,
			Metrics: mc.reg,
		}
		// One controller across the suite: budget caps learned from early
		// tests' exposures bound the later tests' budgets.
		tgt := ctrl.Target(test.Name + "/" + toolName)
		if tgt != nil {
			session.Tuner = tgt
		}
		out := session.ExposeParallel(parallel)
		tgt.ObserveOutcome(out)
		if out.Bug != nil {
			bugsFound++
			fmt.Printf("  %-32s %v at %s (run %d, slowdown %.1fx)\n",
				test.Name, out.Bug.Kind(), out.Bug.FaultSite(), out.Bug.Run, out.Slowdown())
		}
	}
	fmt.Printf("%d test(s) exposed MemOrder bugs\n", bugsFound)
	mc.finish()
}

func listTests() {
	for _, a := range apps.Registry() {
		fmt.Printf("%s (%d multi-threaded tests)\n", a.Name, len(a.Tests))
		for _, test := range a.Tests {
			if test.Bug != nil {
				fmt.Printf("  %-30s %s issue %s (known=%v)\n", test.Name, test.Bug.ID, test.Bug.IssueID, test.Bug.Known)
			}
		}
	}
	fmt.Println("\n(generated tests are named <App>/test-NNN; bug inputs shown above)")
}

func findTest(name string) *apps.Test {
	for _, a := range apps.Registry() {
		for _, test := range a.Tests {
			if test.Name == name {
				return test
			}
		}
	}
	return nil
}

func writePlan(w *core.Waffle, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return w.Plan().WriteJSON(f)
}

func writeTrace(w *core.Waffle, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return w.PrepTrace().WriteBinary(f)
}
