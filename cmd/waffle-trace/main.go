// Command waffle-trace inspects preparation-run traces and the candidate
// plans Waffle's analyzer derives from them.
//
// Usage:
//
//	waffle-trace -stats prep.trace          # event/site/thread statistics
//	waffle-trace -dump prep.trace | head    # event-per-line listing
//	waffle-trace -analyze prep.trace        # run the trace analyzer, print S and I
//	waffle-trace -analyze prep.trace -parallel-analyze 4   # sharded, same plan
//	waffle-trace -json prep.trace > t.json  # binary → JSON conversion
//	waffle-trace -to-stream prep.trace > prep.wfts         # WFTR → WFTS stream
//	waffle-trace -analyze-stream prep.wfts  # streaming analyzer, bounded memory
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"waffle/internal/core"
	"waffle/internal/report"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

func main() {
	var (
		statsPath   = flag.String("stats", "", "print summary statistics of a trace file")
		dumpPath    = flag.String("dump", "", "print every event of a trace file")
		analyzePath = flag.String("analyze", "", "run Waffle's analyzer on a trace file")
		timePath    = flag.String("timeline", "", "render an ASCII per-thread timeline of a trace file")
		width       = flag.Int("width", 100, "timeline width in columns")
		jsonPath    = flag.String("json", "", "convert a binary trace to JSON on stdout")
		window      = flag.Int("window-ms", 100, "near-miss window δ for -analyze")
		panalyze    = flag.Int("parallel-analyze", 0, "worker goroutines for -analyze (plan bit-identical to sequential)")
		streamOut   = flag.String("to-stream", "", "convert a binary trace to a WFTS event stream on stdout")
		streamPath  = flag.String("analyze-stream", "", "run the streaming analyzer on a WFTS stream file")
	)
	flag.Parse()

	switch {
	case *statsPath != "":
		tr := load(*statsPath)
		printStats(tr)
	case *dumpPath != "":
		tr := load(*dumpPath)
		for _, e := range tr.Events {
			clock := "-"
			if e.Clock != nil {
				clock = e.Clock.String()
			}
			fmt.Printf("%6d  %12v  thd %-3d  %-9s  obj %-5d  %-40s %s\n",
				e.Seq, e.T, e.TID, e.Kind, e.Obj, e.Site, clock)
		}
	case *timePath != "":
		tr := load(*timePath)
		fmt.Print(report.Timeline(tr, *width))
	case *analyzePath != "":
		tr := load(*analyzePath)
		plan := core.Analyze(tr, core.Options{
			Window:         sim.Duration(*window) * sim.Millisecond,
			AnalyzeWorkers: *panalyze,
		})
		printPlan(plan)
	case *streamPath != "":
		f, err := os.Open(*streamPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		plan, err := core.AnalyzeStream(f, core.Options{Window: sim.Duration(*window) * sim.Millisecond})
		if err != nil {
			fatal(err)
		}
		printPlan(plan)
	case *streamOut != "":
		tr := load(*streamOut)
		if err := tr.WriteStream(os.Stdout); err != nil {
			fatal(err)
		}
	case *jsonPath != "":
		tr := load(*jsonPath)
		if err := tr.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func load(path string) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadBinary(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w (expected the binary format written by waffle -trace)", path, err))
	}
	return tr
}

func printStats(tr *trace.Trace) {
	s := tr.ComputeStats()
	fmt.Printf("label:    %s\n", tr.Label)
	fmt.Printf("end:      %v\n", tr.End)
	fmt.Printf("events:   %d (%d init, %d use, %d dispose, %d api)\n",
		s.Events, s.InitEvents, s.UseEvents, s.DisposeEvents, s.APIEvents)
	fmt.Printf("threads:  %d\n", s.Threads)
	fmt.Printf("objects:  %d\n", s.Objects)
	fmt.Printf("sites:    %d MemOrder, %d thread-unsafe API\n", s.MemSites, s.APISites)

	// Dynamic-instance distribution (§3.3: init sites execute ~2×/run).
	instances := tr.DynamicInstances()
	var counts []int
	for _, n := range instances {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	if len(counts) > 0 {
		fmt.Printf("dynamic instances per site: min %d, median %d, max %d\n",
			counts[0], counts[(len(counts)-1)/2], counts[len(counts)-1])
	}
}

func printPlan(plan *core.Plan) {
	fmt.Printf("candidate set S: %d pairs\n", len(plan.Pairs))
	for _, p := range plan.Pairs {
		fmt.Printf("  {%s -> %s} %s gap=%v near-misses=%d\n", p.Delay, p.Target, p.Kind, p.Gap, p.Count)
	}
	sites := plan.InjectionSites()
	fmt.Printf("injection sites: %d\n", len(sites))
	for _, s := range sites {
		fmt.Printf("  %-50s delay=%v\n", s, plan.DelayLen[s])
	}
	edges := 0
	for _, list := range plan.Interfere {
		edges += len(list)
	}
	fmt.Printf("interference set I: %d sites, %d directed edges\n", len(plan.Interfere), edges)
	// Iterate in sorted site order: ranging over the map directly would make
	// the output diff-unstable from run to run.
	froms := make([]trace.SiteID, 0, len(plan.Interfere))
	for a := range plan.Interfere {
		froms = append(froms, a)
	}
	sort.Slice(froms, func(i, j int) bool { return froms[i] < froms[j] })
	for _, a := range froms {
		fmt.Printf("  %s ~ %v\n", a, plan.Interfere[a])
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "waffle-trace: %v\n", err)
	os.Exit(1)
}
