package waffle_test

import (
	"testing"

	"waffle"
)

// quickUAF is a minimal use-after-free scenario for facade tests.
func quickUAF() waffle.Scenario {
	return waffle.Scenario{
		Name: "facade-uaf",
		Body: func(t *waffle.Thread, h *waffle.Heap) {
			obj := h.NewRef("conn")
			obj.Init(t, "main.go:10")
			worker := t.Spawn("worker", func(w *waffle.Thread) {
				w.Sleep(1 * waffle.Millisecond)
				obj.Use(w, "worker.go:7")
			})
			t.Sleep(3 * waffle.Millisecond)
			obj.Dispose(t, "main.go:20")
			t.Join(worker)
		},
	}
}

func TestDetectorExposesScenario(t *testing.T) {
	out := waffle.New(waffle.Options{}).Expose(quickUAF(), 10, 1)
	if out.Bug == nil {
		t.Fatal("no bug exposed")
	}
	if out.Bug.Kind() != waffle.UseAfterFree {
		t.Fatalf("kind = %v", out.Bug.Kind())
	}
	if out.RunsToExpose() != 2 {
		t.Fatalf("runs = %d, want 2", out.RunsToExpose())
	}
	if out.Bug.NullRef.Site != "worker.go:7" {
		t.Fatalf("site = %s", out.Bug.NullRef.Site)
	}
}

func TestBasicDetectorAlsoWorks(t *testing.T) {
	out := waffle.NewBasic(waffle.Options{}).Expose(quickUAF(), 10, 1)
	if out.Bug == nil {
		t.Fatal("WaffleBasic found nothing")
	}
	if out.Tool != "wafflebasic" {
		t.Fatalf("tool = %s", out.Tool)
	}
}

func TestCleanScenarioNoFalsePositive(t *testing.T) {
	clean := waffle.Scenario{
		Name: "clean",
		Body: func(t *waffle.Thread, h *waffle.Heap) {
			obj := h.NewRef("obj")
			obj.Init(t, "a")
			var done waffle.Event
			w := t.Spawn("w", func(w *waffle.Thread) {
				done.Wait(w)
				obj.Use(w, "b")
			})
			t.Sleep(2 * waffle.Millisecond)
			done.Set(t)
			t.Join(w)
			obj.Dispose(t, "c")
		},
	}
	if out := waffle.New(waffle.Options{}).Expose(clean, 6, 9); out.Bug != nil {
		t.Fatalf("false positive: %v", out.Bug)
	}
}

func TestBenchmarksRegistry(t *testing.T) {
	benchApps := waffle.Benchmarks()
	if len(benchApps) != 11 {
		t.Fatalf("apps = %d, want 11", len(benchApps))
	}
	if waffle.Benchmark("NetMQ") == nil {
		t.Fatal("NetMQ missing")
	}
	if waffle.Benchmark("NoSuchApp") != nil {
		t.Fatal("phantom app")
	}
	bugs := waffle.Bugs()
	if len(bugs) != 18 {
		t.Fatalf("bugs = %d, want 18", len(bugs))
	}
}

func TestExposeTestOnBenchmarkBug(t *testing.T) {
	var target *waffle.Test
	for _, b := range waffle.Bugs() {
		if b.Bug.ID == "Bug-2" {
			target = b
		}
	}
	if target == nil {
		t.Fatal("Bug-2 not found")
	}
	out := waffle.New(waffle.Options{}).ExposeTest(target, 10, 1)
	if out.Bug == nil {
		t.Fatal("Bug-2 not exposed")
	}
	if out.Bug.Kind() != waffle.UseBeforeInit {
		t.Fatalf("kind = %v", out.Bug.Kind())
	}
}

func TestScenarioTimeout(t *testing.T) {
	hang := waffle.Scenario{
		Name:    "hang",
		Timeout: 10 * waffle.Millisecond,
		Body: func(t *waffle.Thread, h *waffle.Heap) {
			for {
				t.Sleep(5 * waffle.Millisecond)
			}
		},
	}
	out := waffle.New(waffle.Options{}).Expose(hang, 2, 1)
	if out.Bug != nil {
		t.Fatal("timeout produced a bug")
	}
	for _, r := range out.Runs {
		if !r.TimedOut {
			t.Fatalf("run %d not timed out", r.Run)
		}
	}
}
