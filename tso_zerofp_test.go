// The zero-false-positive contract extended to the stale-read class: a
// StaleReadError in a run with zero injected delays is the program's own
// weak-memory bug manifesting unaided — TSO flush timing alone exposed
// it — so no tool may claim it as a delay-exposed bug. Like delay-free
// NULL-reference faults, it must surface through RunReport.Fault with
// the run classified RunFaultDelayFree.
package waffle_test

import (
	"testing"

	"waffle/internal/core"
	"waffle/internal/memmodel"
	"waffle/internal/sim"
)

// staleReadFaulter faults on its very first run with no perturbation:
// flush latency is pinned at 5ms while the reader probes 1-2ms after the
// cross-thread write, so the store is still buffered — observably stale —
// whenever UseFresh runs, under every tool's delay-free first run.
func staleReadFaulter() *core.SimProgram {
	return &core.SimProgram{
		Label: "stale-read-faulter",
		TSO: &memmodel.TSOConfig{
			Seed:     7,
			FlushMin: 5 * sim.Millisecond,
			FlushMax: 5 * sim.Millisecond,
		},
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			r := h.NewRef("cfg")
			root.Sleep(1 * sim.Millisecond)
			r.Init(root, "boot/init") // buffered: commits 5ms later
			reader := root.Spawn("reader", func(th *sim.Thread) {
				th.Sleep(1 * sim.Millisecond)
				r.UseFresh(th, "reader/use") // init still pending: faults unaided
			})
			root.Join(reader)
		},
	}
}

func TestDelayFreeStaleReadYieldsNoBugReport(t *testing.T) {
	for name, mk := range zeroFPTools() {
		t.Run(name, func(t *testing.T) {
			s := &core.Session{Prog: staleReadFaulter(), Tool: mk(), MaxRuns: 6, BaseSeed: 1}
			out := s.Expose()
			checkDelayFreeOutcome(t, out)
			last := out.Runs[len(out.Runs)-1]
			if _, ok := last.Fault.Err.(*memmodel.StaleReadError); !ok {
				t.Fatalf("fault = %v, want a StaleReadError", last.Fault.Err)
			}
		})
	}
}

func TestDelayFreeStaleReadYieldsNoBugReportParallel(t *testing.T) {
	for name, mk := range zeroFPTools() {
		t.Run(name, func(t *testing.T) {
			s := &core.Session{Prog: staleReadFaulter(), Tool: mk(), MaxRuns: 6, BaseSeed: 1}
			out := s.ExposeParallel(4)
			checkDelayFreeOutcome(t, out)
		})
	}
}
