package apps

import (
	"waffle/internal/sim"
	"waffle/internal/workload"
)

// NewNSubstitute models nsubstitute/NSubstitute: mocking library, many
// private proxy objects, tiny API surface. Targets: 13 MT tests, base
// ≈344ms, MO ≈261/10.7, TSV ≈1.3/0.6.
func NewNSubstitute() *App {
	a := &App{Name: "NSubstitute", LoCK: 17.9, StarsK: 1.7, MTTests: 13, Timeout: 30 * sim.Second, InTable2: true}
	spec := workload.Spec{
		Threads: 3, LocalObjs: 20, LocalOps: 2, SiteFanout: 2,
		SharedObjs: 3, SharedUses: 2,
		Spacing: 5200 * sim.Microsecond,
		APIObjs: 3, APICalls: 2, APISites: 1,
	}
	a.Tests = makeTests(a.Name, a.MTTests-2, spec, a.Timeout, 2)
	replaceFirstGenerated(a, proxyRecorder(a.Name), argumentMatchers(a.Name))
	a.Tests = append(a.Tests, bug3(), bug4())
	return a
}
