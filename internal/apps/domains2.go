package apps

import (
	"fmt"

	"waffle/internal/memmodel"
	"waffle/internal/sim"
)

// A second wave of domain scenarios per application: recovery loops,
// pipelines, leases, and sliding windows. Same discipline as domains.go —
// rich in near misses, free of exposable races.

// samplingFlush models ApplicationInsights' sampling + periodic flush: a
// flusher wakes on a timer or an explicit trigger, draining a buffer whose
// items the producers created.
func samplingFlush(app string) *Test {
	return domainTest(app, "sampling-flush", 30*sim.Second, func(root *sim.Thread, h *memmodel.Heap) {
		var mu sim.Mutex
		var trigger sim.Event
		var stop sim.Event
		buffer := h.NewRef("buffer")
		buffer.Init(root, domainSite(app, "buffer", 7))
		flusher := root.Spawn("flusher", func(t *sim.Thread) {
			for {
				fired := trigger.WaitTimeout(t, 30*sim.Millisecond)
				if stop.IsSet() {
					return
				}
				if fired {
					trigger.Reset()
				}
				mu.Lock(t)
				buffer.Use(t, domainSite(app, "flush", 21))
				mu.Unlock(t)
				t.Work(4 * sim.Millisecond)
			}
		})
		for i := 0; i < 12; i++ {
			root.Work(6 * sim.Millisecond)
			mu.Lock(root)
			buffer.Use(root, domainSite(app, "track", 31))
			mu.Unlock(root)
			if i%4 == 3 {
				trigger.Set(root)
			}
		}
		stop.Set(root)
		trigger.Set(root) // wake the flusher so it observes stop
		root.Join(flusher)
		buffer.Dispose(root, domainSite(app, "buffer", 43))
	})
}

// collectionAssertion models FluentAssertions' parallel deep-equality: a
// task pool compares element pairs; the report assembles afterwards.
func collectionAssertion(app string) *Test {
	return domainTest(app, "collection-assertion", 30*sim.Second, func(root *sim.Thread, h *memmodel.Heap) {
		pool := sim.NewTaskPool(root, 2, "compare")
		expectation := h.NewRef("expectation")
		expectation.Init(root, domainSite(app, "should", 5)) // pre-submit: ordered
		elems := make([]*memmodel.Ref, 8)
		handles := make([]*sim.TaskHandle, len(elems))
		for i := range elems {
			elems[i] = h.NewRef(fmt.Sprintf("elem-%d", i))
			i := i
			handles[i] = pool.Submit(root, "compare", func(t *sim.Thread) {
				t.Work(7 * sim.Millisecond)
				expectation.Use(t, domainSite(app, "equivalency", 17))
				elems[i].Init(t, domainSite(app, "diff", 19))
			})
		}
		for i, hd := range handles {
			hd.Wait(root)
			elems[i].Use(root, domainSite(app, "report", 26))
			elems[i].Dispose(root, domainSite(app, "report", 27))
		}
		pool.Shutdown(root)
		pool.Join(root)
		expectation.Dispose(root, domainSite(app, "should", 33))
	})
}

// leaderElection models Kubernetes.Net's lease-based election: candidates
// contend on a single-permit semaphore; the holder renews a lease object
// it owns, then releases.
func leaderElection(app string) *Test {
	return domainTest(app, "leader-election", 60*sim.Second, func(root *sim.Thread, h *memmodel.Heap) {
		lock := sim.NewSemaphore(1)
		var wg sim.WaitGroup
		for c := 0; c < 3; c++ {
			c := c
			wg.Add(root, 1)
			root.Spawn(fmt.Sprintf("candidate%d", c), func(t *sim.Thread) {
				defer wg.Done(t)
				for term := 0; term < 2; term++ {
					if !lock.AcquireTimeout(t, 200*sim.Millisecond) {
						return // never became leader this term
					}
					lease := h.NewRef(fmt.Sprintf("lease-%d-%d", c, term))
					lease.Init(t, domainSite(app, "acquire", 19))
					for renew := 0; renew < 3; renew++ {
						t.Work(8 * sim.Millisecond)
						lease.Use(t, domainSite(app, "renew", 23))
					}
					lease.Dispose(t, domainSite(app, "release", 26))
					lock.Release(t)
					t.Work(5 * sim.Millisecond)
				}
			})
		}
		wg.Wait(root)
	})
}

// checkpointRecovery models LiteDB's journal + checkpoint: writers append
// journal entries; a checkpointer waits for a quota signal, replays, and
// truncates — all handshaked through events.
func checkpointRecovery(app string) *Test {
	return domainTest(app, "checkpoint-recovery", 30*sim.Second, func(root *sim.Thread, h *memmodel.Heap) {
		journal := h.NewRef("journal")
		journal.Init(root, domainSite(app, "engine", 6))
		var quota, done sim.Event
		var mu sim.Mutex
		checkpointer := root.Spawn("checkpoint", func(t *sim.Thread) {
			quota.Wait(t)
			mu.Lock(t)
			journal.Use(t, domainSite(app, "replay", 18))
			t.Work(9 * sim.Millisecond)
			journal.Use(t, domainSite(app, "truncate", 20))
			mu.Unlock(t)
			done.Set(t)
		})
		for i := 0; i < 10; i++ {
			root.Work(5 * sim.Millisecond)
			mu.Lock(root)
			journal.Use(root, domainSite(app, "append", 28))
			mu.Unlock(root)
			if i == 6 {
				quota.Set(root)
			}
		}
		done.Wait(root)
		root.Join(checkpointer)
		journal.Dispose(root, domainSite(app, "engine", 37))
	})
}

// retainedMessages models MQTT.Net's retained-message store: a publisher
// replaces retained payloads under the write lock while subscribers read
// under the shared lock.
func retainedMessages(app string) *Test {
	return domainTest(app, "retained-messages", 12*sim.Second, func(root *sim.Thread, h *memmodel.Heap) {
		var rw sim.RWMutex
		retained := h.NewRef("retained")
		rw.Lock(root)
		retained.Init(root, domainSite(app, "store", 8))
		rw.Unlock(root)
		var wg sim.WaitGroup
		for sub := 0; sub < 2; sub++ {
			wg.Add(root, 1)
			root.Spawn("subscriber", func(t *sim.Thread) {
				defer wg.Done(t)
				for i := 0; i < 8; i++ {
					t.Work(5 * sim.Millisecond)
					rw.RLock(t)
					retained.Use(t, domainSite(app, "deliver", 21))
					rw.RUnlock(t)
				}
			})
		}
		for i := 0; i < 4; i++ {
			root.Work(9 * sim.Millisecond)
			rw.Lock(root)
			retained.Dispose(root, domainSite(app, "replace", 30))
			retained.Init(root, domainSite(app, "replace", 31))
			rw.Unlock(root)
		}
		wg.Wait(root)
		rw.Lock(root)
		retained.Dispose(root, domainSite(app, "store", 37))
		rw.Unlock(root)
	})
}

// dealerRouter models NetMQ's request/reply: requests flow to a router
// thread, replies flow back, each message handed off through queues.
func dealerRouter(app string) *Test {
	return domainTest(app, "dealer-router", 60*sim.Second, func(root *sim.Thread, h *memmodel.Heap) {
		var requests, replies sim.Queue
		router := root.Spawn("router", func(t *sim.Thread) {
			for {
				v, ok := requests.Recv(t)
				if !ok {
					replies.Close(t)
					return
				}
				req := v.(*memmodel.Ref)
				req.Use(t, domainSite(app, "route", 14))
				t.Work(4 * sim.Millisecond)
				reply := h.NewRef("reply")
				reply.Init(t, domainSite(app, "reply", 17))
				req.Dispose(t, domainSite(app, "route", 18))
				replies.Send(t, reply)
			}
		})
		for i := 0; i < 10; i++ {
			root.Work(6 * sim.Millisecond)
			req := h.NewRef(fmt.Sprintf("req-%d", i))
			req.Init(root, domainSite(app, "dealer", 9))
			requests.Send(root, req)
			if v, ok := replies.RecvTimeout(root, 200*sim.Millisecond); ok {
				reply := v.(*memmodel.Ref)
				reply.Use(root, domainSite(app, "dealer", 27))
				reply.Dispose(root, domainSite(app, "dealer", 28))
			}
		}
		requests.Close(root)
		root.Join(router)
	})
}

// preparedStatements models NpgSQL's statement cache: each worker prepares
// its own statements, executes them, and evicts them — cache metadata
// guarded by a mutex.
func preparedStatements(app string) *Test {
	return domainTest(app, "prepared-statements", 120*sim.Second, func(root *sim.Thread, h *memmodel.Heap) {
		cacheMeta := h.NewRef("cache-meta")
		cacheMeta.Init(root, domainSite(app, "cache", 6))
		var mu sim.Mutex
		var wg sim.WaitGroup
		for w := 0; w < 4; w++ {
			w := w
			wg.Add(root, 1)
			root.Spawn(fmt.Sprintf("session%d", w), func(t *sim.Thread) {
				defer wg.Done(t)
				for i := 0; i < 4; i++ {
					stmt := h.NewRef(fmt.Sprintf("stmt-%d-%d", w, i))
					mu.Lock(t)
					cacheMeta.Use(t, domainSite(app, "lookup", 20))
					mu.Unlock(t)
					stmt.Init(t, domainSite(app, "prepare", 22))
					for e := 0; e < 3; e++ {
						t.Work(4 * sim.Millisecond)
						stmt.Use(t, domainSite(app, "execute", 25))
					}
					stmt.Dispose(t, domainSite(app, "evict", 27))
				}
			})
		}
		wg.Wait(root)
		cacheMeta.Dispose(root, domainSite(app, "cache", 33))
	})
}

// argumentMatchers models NSubstitute's matcher stack: per-call matcher
// objects pushed and popped thread-locally while the shared spec registry
// serves reads under the shared lock.
func argumentMatchers(app string) *Test {
	return domainTest(app, "argument-matchers", 30*sim.Second, func(root *sim.Thread, h *memmodel.Heap) {
		var rw sim.RWMutex
		spec := h.NewRef("spec-registry")
		spec.Init(root, domainSite(app, "spec", 5))
		var wg sim.WaitGroup
		for w := 0; w < 3; w++ {
			w := w
			wg.Add(root, 1)
			root.Spawn("matcher", func(t *sim.Thread) {
				defer wg.Done(t)
				for i := 0; i < 6; i++ {
					t.Work(4 * sim.Millisecond)
					m := h.NewRef(fmt.Sprintf("matcher-%d-%d", w, i))
					m.Init(t, domainSite(app, "arg", 18))
					rw.RLock(t)
					spec.Use(t, domainSite(app, "match", 20))
					rw.RUnlock(t)
					m.Use(t, domainSite(app, "arg", 22))
					m.Dispose(t, domainSite(app, "arg", 23))
				}
			})
		}
		wg.Wait(root)
		rw.Lock(root)
		spec.Dispose(root, domainSite(app, "spec", 29))
		rw.Unlock(root)
	})
}

// clientGeneration models NSwag's pipeline: parse → generate → write over
// queues, one stage per thread, document parts handed along.
func clientGeneration(app string) *Test {
	return domainTest(app, "client-generation", 60*sim.Second, func(root *sim.Thread, h *memmodel.Heap) {
		var parsed, generated sim.Queue
		var wg sim.WaitGroup
		wg.Add(root, 2)
		root.Spawn("generator", func(t *sim.Thread) {
			defer wg.Done(t)
			for {
				v, ok := parsed.Recv(t)
				if !ok {
					generated.Close(t)
					return
				}
				part := v.(*memmodel.Ref)
				part.Use(t, domainSite(app, "generate", 16))
				t.Work(9 * sim.Millisecond)
				generated.Send(t, part)
			}
		})
		root.Spawn("writer", func(t *sim.Thread) {
			defer wg.Done(t)
			for {
				v, ok := generated.Recv(t)
				if !ok {
					return
				}
				part := v.(*memmodel.Ref)
				part.Use(t, domainSite(app, "write", 28))
				t.Work(4 * sim.Millisecond)
				part.Dispose(t, domainSite(app, "write", 30))
			}
		})
		for i := 0; i < 8; i++ {
			root.Work(11 * sim.Millisecond)
			part := h.NewRef(fmt.Sprintf("operation-%d", i))
			part.Init(root, domainSite(app, "parse", 9))
			parsed.Send(root, part)
		}
		parsed.Close(root)
		wg.Wait(root)
	})
}

// reconnectingClient models SignalR's client heartbeat/reconnect loop:
// missed heartbeats tear the connection down and rebuild it; the
// connection object is owned by the client thread throughout.
func reconnectingClient(app string) *Test {
	return domainTest(app, "reconnecting-client", 30*sim.Second, func(root *sim.Thread, h *memmodel.Heap) {
		var heartbeats sim.Queue
		var stopped sim.Event
		client := root.Spawn("client", func(t *sim.Thread) {
			conn := h.NewRef("hub-conn")
			for attempt := 0; attempt < 3; attempt++ {
				conn.Init(t, domainSite(app, "connect", 13))
				for {
					v, ok := heartbeats.RecvTimeout(t, 25*sim.Millisecond)
					if !ok {
						break // missed heartbeat: reconnect
					}
					_ = v
					conn.Use(t, domainSite(app, "pong", 19))
				}
				conn.Dispose(t, domainSite(app, "drop", 22))
				if stopped.IsSet() {
					return
				}
			}
		})
		for i := 0; i < 9; i++ {
			root.Work(8 * sim.Millisecond)
			heartbeats.Send(root, i)
			if i == 3 || i == 6 {
				root.Sleep(40 * sim.Millisecond) // outage: client times out
			}
		}
		stopped.Set(root)
		root.Join(client)
	})
}

// sftpTransfer models SSH.Net's chunked SFTP upload: a sliding window of
// in-flight chunks bounded by a semaphore; acks release window slots.
func sftpTransfer(app string) *Test {
	return domainTest(app, "sftp-transfer", 60*sim.Second, func(root *sim.Thread, h *memmodel.Heap) {
		window := sim.NewSemaphore(3)
		var inflight sim.Queue
		acker := root.Spawn("acker", func(t *sim.Thread) {
			for {
				v, ok := inflight.Recv(t)
				if !ok {
					return
				}
				chunk := v.(*memmodel.Ref)
				t.Work(6 * sim.Millisecond)
				chunk.Use(t, domainSite(app, "ack", 15))
				chunk.Dispose(t, domainSite(app, "ack", 16))
				window.Release(t)
			}
		})
		for i := 0; i < 12; i++ {
			window.Acquire(root)
			chunk := h.NewRef(fmt.Sprintf("chunk-%d", i))
			chunk.Init(root, domainSite(app, "send", 23))
			root.Work(4 * sim.Millisecond)
			chunk.Use(root, domainSite(app, "send", 25))
			inflight.Send(root, chunk)
		}
		inflight.Close(root)
		root.Join(acker)
	})
}
