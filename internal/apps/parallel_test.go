package apps

import (
	"fmt"
	"testing"

	"waffle/internal/core"
)

// TestParallelDetectionMatchesSequentialAcrossRegistry: for every planted
// bug, the parallel orchestrator must report exactly the sequential
// search's result — same exposing run, seed, fault site, and bug kind —
// for both small and large worker counts. This is the reproducibility
// contract that lets EXPERIMENTS.md numbers be collected with -parallel
// without changing any reported metric.
func TestParallelDetectionMatchesSequentialAcrossRegistry(t *testing.T) {
	for _, b := range AllBugs() {
		b := b
		t.Run(b.Bug.ID, func(t *testing.T) {
			t.Parallel()
			seq := (&core.Session{Prog: b.Prog, Tool: core.NewWaffle(core.Options{}), MaxRuns: 25, BaseSeed: 11}).Expose()
			for _, workers := range []int{2, 8} {
				par := (&core.Session{Prog: b.Prog, Tool: core.NewWaffle(core.Options{}), MaxRuns: 25, BaseSeed: 11}).ExposeParallel(workers)
				if err := sameSearchResult(seq, par); err != nil {
					t.Errorf("workers=%d: %v", workers, err)
				}
			}
		})
	}
}

func sameSearchResult(seq, par *core.Outcome) error {
	if len(seq.Runs) != len(par.Runs) {
		return fmt.Errorf("run counts differ: %d vs %d", len(seq.Runs), len(par.Runs))
	}
	for i := range seq.Runs {
		a, b := seq.Runs[i], par.Runs[i]
		if a.Run != b.Run || a.Seed != b.Seed || a.End != b.End ||
			a.Stats.Count != b.Stats.Count || a.Stats.Total != b.Stats.Total {
			return fmt.Errorf("run %d differs: {run %d seed %d end %v delays %d/%v} vs {run %d seed %d end %v delays %d/%v}",
				i+1, a.Run, a.Seed, a.End, a.Stats.Count, a.Stats.Total,
				b.Run, b.Seed, b.End, b.Stats.Count, b.Stats.Total)
		}
	}
	switch {
	case seq.Bug == nil && par.Bug == nil:
		return nil
	case seq.Bug == nil || par.Bug == nil:
		return fmt.Errorf("bug presence differs: %v vs %v", seq.Bug, par.Bug)
	case seq.Bug.Run != par.Bug.Run || seq.Bug.Seed != par.Bug.Seed ||
		seq.Bug.NullRef.Site != par.Bug.NullRef.Site || seq.Bug.Kind() != par.Bug.Kind():
		return fmt.Errorf("bugs differ:\n  sequential: %v\n  parallel:   %v", seq.Bug, par.Bug)
	}
	return nil
}
