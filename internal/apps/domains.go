package apps

import (
	"fmt"

	"waffle/internal/core"
	"waffle/internal/memmodel"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// Hand-written domain scenarios: each application carries, alongside its
// generated tests, one integration-style test whose structure mirrors what
// its real counterpart actually does — telemetry channels, pub/sub
// proxies, connection pools, watch loops, staged handshakes. They exercise
// the richer substrate surface (queues, task pools, reader/writer locks,
// timed waits) and they are deliberately race-free: every cross-thread
// lifecycle is either guarded or genuinely ordered, so the detectors find
// plenty of near misses here and zero bugs — like the overwhelming
// majority of real test inputs.

// domainSite builds a stable static-site label for a domain scenario.
func domainSite(app, fn string, line int) trace.SiteID {
	return trace.SiteID(fmt.Sprintf("%s/%s.go:%d", app, fn, line))
}

// domainTest wraps a body as a suite test.
func domainTest(app, name string, timeout sim.Duration, body func(*sim.Thread, *memmodel.Heap)) *Test {
	full := fmt.Sprintf("%s/%s", app, name)
	return &Test{
		Name: full,
		Prog: &core.SimProgram{Label: full, MaxTime: timeout, Jitter: 0.05, Body: body},
	}
}

// replaceFirstGenerated swaps the app's first generated (non-bug) tests
// for the given domain tests, preserving the Table 3 test count.
func replaceFirstGenerated(a *App, tests ...*Test) {
	j := 0
	for i := range a.Tests {
		if j == len(tests) {
			break
		}
		if a.Tests[i].Bug == nil {
			a.Tests[i] = tests[j]
			j++
		}
	}
}

// telemetryPipeline models ApplicationInsights: a producer emits telemetry
// items into a channel; a sender drains, transmits, and disposes them.
// Queue ordering makes the plain uses safe under any delay.
func telemetryPipeline(app string) *Test {
	return domainTest(app, "telemetry-pipeline", 30*sim.Second, func(root *sim.Thread, h *memmodel.Heap) {
		var channel sim.Queue
		var wg sim.WaitGroup
		wg.Add(root, 1)
		root.Spawn("sender", func(t *sim.Thread) {
			defer wg.Done(t)
			for {
				v, ok := channel.Recv(t)
				if !ok {
					return
				}
				item := v.(*memmodel.Ref)
				t.Work(2 * sim.Millisecond) // transmit
				item.Use(t, domainSite(app, "sender", 44))
				item.Dispose(t, domainSite(app, "sender", 46))
			}
		})
		for i := 0; i < 20; i++ {
			root.Work(3 * sim.Millisecond)
			item := h.NewRef(fmt.Sprintf("telemetry-%d", i))
			item.Init(root, domainSite(app, "producer", 12))
			item.Use(root, domainSite(app, "producer", 13)) // stamp
			channel.Send(root, item)
		}
		channel.Close(root)
		wg.Wait(root)
	})
}

// assertionScope models FluentAssertions: concurrent assertions consult a
// registry initialized before the workers fork (pruned candidates) and
// build private failure scopes.
func assertionScope(app string) *Test {
	return domainTest(app, "assertion-scope", 30*sim.Second, func(root *sim.Thread, h *memmodel.Heap) {
		registry := h.NewRef("formatter-registry")
		registry.Init(root, domainSite(app, "registry", 8))
		var rw sim.RWMutex
		var wg sim.WaitGroup
		for w := 0; w < 3; w++ {
			w := w
			wg.Add(root, 1)
			root.Spawn(fmt.Sprintf("asserter%d", w), func(t *sim.Thread) {
				defer wg.Done(t)
				for i := 0; i < 8; i++ {
					t.Work(8 * sim.Millisecond)
					rw.RLock(t)
					registry.Use(t, domainSite(app, "formatter", 31))
					rw.RUnlock(t)
					scope := h.NewRef(fmt.Sprintf("scope-%d-%d", w, i))
					scope.Init(t, domainSite(app, "scope", 40))
					scope.Use(t, domainSite(app, "scope", 41))
					scope.Dispose(t, domainSite(app, "scope", 43))
				}
			})
		}
		wg.Wait(root)
		registry.Dispose(root, domainSite(app, "registry", 60))
	})
}

// watcherLoop models Kubernetes.Net: a watch thread pulls events with a
// timeout, refreshing a connection object between reconnect cycles while a
// cache serves guarded reads.
func watcherLoop(app string) *Test {
	return domainTest(app, "watcher-loop", 60*sim.Second, func(root *sim.Thread, h *memmodel.Heap) {
		cache := h.NewRef("informer-cache")
		cache.Init(root, domainSite(app, "informer", 5))
		var events sim.Queue
		var done sim.Event
		watcher := root.Spawn("watcher", func(t *sim.Thread) {
			conn := h.NewRef("watch-conn")
			for cycle := 0; cycle < 3; cycle++ {
				conn.Init(t, domainSite(app, "watch", 21)) // (re)connect
				for {
					v, ok := events.RecvTimeout(t, 40*sim.Millisecond)
					if !ok {
						break // idle: reconnect
					}
					_ = v
					conn.Use(t, domainSite(app, "watch", 27))
					cache.UseIfLive(t, domainSite(app, "watch", 28))
					t.Work(5 * sim.Millisecond)
				}
				conn.Dispose(t, domainSite(app, "watch", 33))
			}
			done.Set(t)
		})
		for i := 0; i < 12; i++ {
			root.Work(9 * sim.Millisecond)
			events.Send(root, i)
		}
		done.Wait(root)
		root.Join(watcher)
		cache.Dispose(root, domainSite(app, "informer", 44))
	})
}

// pagedFile models LiteDB: a reader/writer-locked page cache; writers
// recycle pages under the exclusive lock, readers use them under the
// shared lock — lock ordering keeps every lifecycle safe.
func pagedFile(app string) *Test {
	return domainTest(app, "paged-file", 30*sim.Second, func(root *sim.Thread, h *memmodel.Heap) {
		var rw sim.RWMutex
		pages := make([]*memmodel.Ref, 4)
		for i := range pages {
			pages[i] = h.NewRef(fmt.Sprintf("page-%d", i))
			pages[i].Init(root, domainSite(app, "pager", 10))
		}
		var wg sim.WaitGroup
		for r := 0; r < 2; r++ {
			wg.Add(root, 1)
			root.Spawn("reader", func(t *sim.Thread) {
				defer wg.Done(t)
				for i := 0; i < 10; i++ {
					t.Work(6 * sim.Millisecond)
					rw.RLock(t)
					pages[i%len(pages)].Use(t, domainSite(app, "read", 25))
					rw.RUnlock(t)
				}
			})
		}
		wg.Add(root, 1)
		root.Spawn("writer", func(t *sim.Thread) {
			defer wg.Done(t)
			for i := 0; i < 5; i++ {
				t.Work(11 * sim.Millisecond)
				rw.Lock(t)
				pages[i%len(pages)].Dispose(t, domainSite(app, "recycle", 39))
				pages[i%len(pages)].Init(t, domainSite(app, "recycle", 40))
				rw.Unlock(t)
			}
		})
		wg.Wait(root)
		rw.Lock(root)
		for i := range pages {
			pages[i].Dispose(root, domainSite(app, "pager", 52))
		}
		rw.Unlock(root)
	})
}

// brokerSession models MQTT.Net: a client publishes through a session
// while a keep-alive monitor pings with timeouts; teardown happens after
// both loops drain.
func brokerSession(app string) *Test {
	return domainTest(app, "broker-session", 12*sim.Second, func(root *sim.Thread, h *memmodel.Heap) {
		session := h.NewRef("client-session")
		session.Init(root, domainSite(app, "connect", 14))
		var publishes sim.Queue
		var closed sim.Event
		var wg sim.WaitGroup
		wg.Add(root, 2)
		root.Spawn("dispatcher", func(t *sim.Thread) {
			defer wg.Done(t)
			for {
				v, ok := publishes.Recv(t)
				if !ok {
					return
				}
				pkt := v.(*memmodel.Ref)
				pkt.Use(t, domainSite(app, "dispatch", 33))
				t.Work(4 * sim.Millisecond)
				pkt.Dispose(t, domainSite(app, "dispatch", 35))
				session.UseIfLive(t, domainSite(app, "dispatch", 36))
			}
		})
		root.Spawn("keepalive", func(t *sim.Thread) {
			defer wg.Done(t)
			for {
				if closed.WaitTimeout(t, 25*sim.Millisecond) {
					return
				}
				session.UseIfLive(t, domainSite(app, "ping", 47))
			}
		})
		for i := 0; i < 15; i++ {
			root.Work(6 * sim.Millisecond)
			pkt := h.NewRef(fmt.Sprintf("packet-%d", i))
			pkt.Init(root, domainSite(app, "publish", 22))
			publishes.Send(root, pkt)
		}
		publishes.Close(root)
		closed.Set(root)
		wg.Wait(root)
		session.Dispose(root, domainSite(app, "disconnect", 58))
	})
}

// pubSubProxy models NetMQ: publisher → proxy → subscriber over queues;
// message ownership transfers hop by hop, so plain uses stay safe.
func pubSubProxy(app string) *Test {
	return domainTest(app, "pubsub-proxy", 60*sim.Second, func(root *sim.Thread, h *memmodel.Heap) {
		var front, back sim.Queue
		var wg sim.WaitGroup
		wg.Add(root, 2)
		root.Spawn("proxy", func(t *sim.Thread) {
			defer wg.Done(t)
			for {
				v, ok := front.Recv(t)
				if !ok {
					back.Close(t)
					return
				}
				msg := v.(*memmodel.Ref)
				msg.Use(t, domainSite(app, "proxy", 19))
				t.Work(2 * sim.Millisecond)
				back.Send(t, msg)
			}
		})
		root.Spawn("subscriber", func(t *sim.Thread) {
			defer wg.Done(t)
			for {
				v, ok := back.Recv(t)
				if !ok {
					return
				}
				msg := v.(*memmodel.Ref)
				msg.Use(t, domainSite(app, "subscriber", 31))
				t.Work(3 * sim.Millisecond)
				msg.Dispose(t, domainSite(app, "subscriber", 33))
			}
		})
		for i := 0; i < 25; i++ {
			root.Work(5 * sim.Millisecond)
			msg := h.NewRef(fmt.Sprintf("frame-%d", i))
			msg.Init(root, domainSite(app, "publisher", 9))
			front.Send(root, msg)
		}
		front.Close(root)
		wg.Wait(root)
	})
}

// connectionPool models NpgSQL: a semaphore-limited pool of connections;
// workers check one out, run a command, check it back in; the pool drains
// after every worker finishes.
func connectionPool(app string) *Test {
	return domainTest(app, "connection-pool", 120*sim.Second, func(root *sim.Thread, h *memmodel.Heap) {
		const slots = 3
		conns := make([]*memmodel.Ref, slots)
		var free sim.Queue
		for i := range conns {
			conns[i] = h.NewRef(fmt.Sprintf("conn-%d", i))
			conns[i].Init(root, domainSite(app, "pool", 12))
			free.Send(root, i)
		}
		var wg sim.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(root, 1)
			root.Spawn(fmt.Sprintf("client%d", w), func(t *sim.Thread) {
				defer wg.Done(t)
				for i := 0; i < 6; i++ {
					t.Work(4 * sim.Millisecond)
					v, ok := free.Recv(t)
					if !ok {
						return
					}
					slot := v.(int)
					conns[slot].Use(t, domainSite(app, "command", 30))
					t.Work(7 * sim.Millisecond)
					conns[slot].Use(t, domainSite(app, "command", 32))
					free.Send(t, slot)
				}
			})
		}
		wg.Wait(root)
		free.Close(root)
		for i := range conns {
			conns[i].Dispose(root, domainSite(app, "pool", 44))
		}
	})
}

// proxyRecorder models NSubstitute: substitutes record received calls
// under a mutex; the assertion phase enumerates them afterwards.
func proxyRecorder(app string) *Test {
	return domainTest(app, "proxy-recorder", 30*sim.Second, func(root *sim.Thread, h *memmodel.Heap) {
		calls := h.NewRef("received-calls")
		calls.Init(root, domainSite(app, "substitute", 6))
		var mu sim.Mutex
		var wg sim.WaitGroup
		for w := 0; w < 3; w++ {
			wg.Add(root, 1)
			root.Spawn("caller", func(t *sim.Thread) {
				defer wg.Done(t)
				for i := 0; i < 9; i++ {
					t.Work(4 * sim.Millisecond)
					mu.Lock(t)
					calls.Use(t, domainSite(app, "router", 22))
					mu.Unlock(t)
				}
			})
		}
		wg.Wait(root)
		mu.Lock(root)
		calls.Use(root, domainSite(app, "assert", 35))
		mu.Unlock(root)
		calls.Dispose(root, domainSite(app, "substitute", 40))
	})
}

// generatorTasks models NSwag: document sections generated on a task
// pool; the registry is initialized before any submission (async-local
// ordered) and sections assemble after every task completes.
func generatorTasks(app string) *Test {
	return domainTest(app, "generator-tasks", 60*sim.Second, func(root *sim.Thread, h *memmodel.Heap) {
		registry := h.NewRef("schema-registry")
		registry.Init(root, domainSite(app, "generator", 7))
		pool := sim.NewTaskPool(root, 2, "gen")
		sections := make([]*memmodel.Ref, 6)
		handles := make([]*sim.TaskHandle, len(sections))
		for i := range sections {
			sections[i] = h.NewRef(fmt.Sprintf("section-%d", i))
			i := i
			handles[i] = pool.Submit(root, "section", func(t *sim.Thread) {
				t.Work(12 * sim.Millisecond)
				registry.Use(t, domainSite(app, "resolve", 19)) // ordered via submit
				sections[i].Init(t, domainSite(app, "emit", 21))
			})
			root.Work(8 * sim.Millisecond)
		}
		for i, hd := range handles {
			hd.Wait(root)
			sections[i].Use(root, domainSite(app, "assemble", 30))
			sections[i].Dispose(root, domainSite(app, "assemble", 31))
		}
		pool.Shutdown(root)
		pool.Join(root)
		registry.Dispose(root, domainSite(app, "generator", 38))
	})
}

// hubBroadcast models SignalR: a hub broadcasts to client connections
// through per-client queues and tears down after the clients acknowledge.
func hubBroadcast(app string) *Test {
	return domainTest(app, "hub-broadcast", 30*sim.Second, func(root *sim.Thread, h *memmodel.Heap) {
		const clients = 3
		queues := make([]*sim.Queue, clients)
		var wg sim.WaitGroup
		for c := 0; c < clients; c++ {
			queues[c] = &sim.Queue{}
			conn := h.NewRef(fmt.Sprintf("connection-%d", c))
			conn.Init(root, domainSite(app, "hub", 11)) // pre-fork: ordered
			q := queues[c]
			wg.Add(root, 1)
			root.Spawn(fmt.Sprintf("client%d", c), func(t *sim.Thread) {
				defer wg.Done(t)
				for {
					v, ok := q.Recv(t)
					if !ok {
						conn.Dispose(t, domainSite(app, "client", 24))
						return
					}
					_ = v
					conn.Use(t, domainSite(app, "client", 21))
					t.Work(5 * sim.Millisecond)
				}
			})
		}
		for round := 0; round < 8; round++ {
			root.Work(7 * sim.Millisecond)
			for c := 0; c < clients; c++ {
				queues[c].Send(root, round)
			}
		}
		for c := 0; c < clients; c++ {
			queues[c].Close(root)
		}
		wg.Wait(root)
	})
}

// sessionHandshake models SSH.Net: the staged key-exchange → auth →
// channel pipeline, each stage gated on an event, with a keep-alive
// prodding the channel guardedly until teardown.
func sessionHandshake(app string) *Test {
	return domainTest(app, "session-handshake", 60*sim.Second, func(root *sim.Thread, h *memmodel.Heap) {
		transport := h.NewRef("transport")
		channel := h.NewRef("channel")
		transport.Init(root, domainSite(app, "session", 8)) // before the pump forks
		var kexDone, authDone, closed sim.Event
		pump := root.Spawn("message-pump", func(t *sim.Thread) {
			t.Work(10 * sim.Millisecond)
			transport.Use(t, domainSite(app, "kex", 17))
			kexDone.Set(t)
			t.Work(12 * sim.Millisecond)
			transport.Use(t, domainSite(app, "auth", 21))
			authDone.Set(t)
			for {
				if closed.WaitTimeout(t, 20*sim.Millisecond) {
					return
				}
				channel.UseIfLive(t, domainSite(app, "keepalive", 27))
			}
		})
		kexDone.Wait(root)
		authDone.Wait(root)
		channel.Init(root, domainSite(app, "channel", 34))
		for i := 0; i < 10; i++ {
			root.Work(9 * sim.Millisecond)
			channel.Use(root, domainSite(app, "exec", 37))
		}
		closed.Set(root)
		root.Join(pump)
		channel.Dispose(root, domainSite(app, "teardown", 43))
		transport.Dispose(root, domainSite(app, "teardown", 44))
	})
}
