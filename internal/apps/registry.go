package apps

// Registry construction lives in one file per application (see
// applicationinsights.go … sshnet.go); the shared Registry/ByName/AllBugs
// plumbing is in app.go. Structural parameters in each file are calibrated
// against the paper's published per-app numbers: test counts and sizes
// (Table 3), instrumentation/injection site densities (Table 2), and base
// running times (Table 5).
