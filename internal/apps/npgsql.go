package apps

import (
	"waffle/internal/sim"
	"waffle/internal/workload"
)

// NewNpgSQL models npgsql/npgsql: database driver, the most
// allocation-intensive app in the suite; many objects are created in the
// parent before workers fork, which is why parent-child pruning matters
// most here (§4.1: 1.73× without it). Targets: 283 MT tests, base ≈1118ms.
func NewNpgSQL() *App {
	a := &App{Name: "NpgSQL", LoCK: 51.9, StarsK: 2.4, MTTests: 283, Timeout: 120 * sim.Second}
	spec := workload.Spec{
		Threads: 4, LocalObjs: 20, LocalOps: 2, SiteFanout: 2,
		SharedObjs: 44, SharedUses: 3, PreForkObjs: 40, SyncedObjs: 6,
		Spacing: 4800 * sim.Microsecond,
		APIObjs: 4, APICalls: 6, APISites: 4,
	}
	a.Tests = makeTests(a.Name, a.MTTests-1, spec, a.Timeout, 6)
	replaceFirstGenerated(a, connectionPool(a.Name), preparedStatements(a.Name))
	a.Tests = append(a.Tests, bug12())
	return a
}
