package apps

import (
	"waffle/internal/sim"
	"waffle/internal/workload"
)

// NewMQTTNet models dotnet/MQTTnet: protocol broker with very dense shared
// heap traffic — the app whose WaffleBasic runs time out (Tables 5, 6).
// Targets: 126 MT tests, base ≈1768ms, MO ≈544/156.6, TSV ≈23.2/7.9.
func NewMQTTNet() *App {
	a := &App{Name: "MQTT.Net", LoCK: 27.1, StarsK: 2.2, MTTests: 126, Timeout: 8 * sim.Second, InTable2: true}
	spec := workload.Spec{
		Threads: 2, LocalObjs: 45, LocalOps: 1, SiteFanout: 2,
		SharedObjs: 55, SharedUses: 2,
		Spacing: 8300 * sim.Microsecond,
		APIObjs: 2, APICalls: 13, APISites: 12,
	}
	a.Tests = makeTests(a.Name, a.MTTests-2, spec, a.Timeout, 2)
	replaceFirstGenerated(a, brokerSession(a.Name), retainedMessages(a.Name))
	a.Tests = append(a.Tests, bug16(), bug17())
	return a
}
