// Package apps defines the benchmark suite: synthetic stand-ins for the 11
// open-source multi-threaded C# applications of the paper's evaluation
// (Table 3), each with a multi-threaded test suite and, where Table 4
// plants one, a reproduction of its MemOrder bug.
//
// Each application is modelled on its real counterpart's published
// characteristics: test-suite size (Table 3), base running time and
// instrumentation-site densities (Tables 2 and 5), allocation intensity,
// and the structure of its known bugs (Figure 4, §6.2). The goal is not
// line-for-line fidelity to C# sources but fidelity of the variables the
// evaluation discriminates on: timing gaps, site density, dynamic-instance
// counts, fork structure, and delay-interference shape.
package apps

import (
	"fmt"

	"waffle/internal/core"
	"waffle/internal/memmodel"
	"waffle/internal/sim"
	"waffle/internal/workload"
)

// App is one benchmark application.
type App struct {
	Name     string
	LoCK     float64 // lines of code, thousands (Table 3)
	StarsK   float64 // GitHub stars, thousands (Table 3)
	MTTests  int     // number of multi-threaded tests (Table 3)
	Timeout  sim.Duration
	InTable2 bool // the public TSVD could instrument this app (8 of 11)

	Tests []*Test
}

// Test is one multi-threaded test input.
type Test struct {
	Name string
	Prog core.Program
	Bug  *BugSpec // non-nil when this test reproduces a Table 4 bug
}

// BugSpec carries a planted bug's identity and the paper's measurements
// for EXPERIMENTS.md comparisons.
type BugSpec struct {
	ID      string // "Bug-1" … "Bug-18"
	AppName string
	IssueID string
	Known   bool

	PaperBaseMS     float64 // Table 4 "Exec. time w/o instrumentation"
	PaperBasicRuns  int     // Table 4 WaffleBasic runs (0 = missed in 50)
	PaperWaffleRuns int     // Table 4 Waffle runs
	PaperBasicSlow  float64 // Table 4 WaffleBasic slowdown (0 = missed)
	PaperWaffleSlow float64 // Table 4 Waffle slowdown
}

// BugTests returns the app's tests that plant a bug.
func (a *App) BugTests() []*Test {
	var out []*Test
	for _, t := range a.Tests {
		if t.Bug != nil {
			out = append(out, t)
		}
	}
	return out
}

// Registry returns the full benchmark suite in Table 3 order.
func Registry() []*App {
	return []*App{
		NewApplicationInsights(),
		NewFluentAssertions(),
		NewKubernetesNet(),
		NewLiteDB(),
		NewMQTTNet(),
		NewNetMQ(),
		NewNpgSQL(),
		NewNSubstitute(),
		NewNSwag(),
		NewSignalR(),
		NewSSHNet(),
	}
}

// ByName returns the registered app with the given name, or nil.
func ByName(name string) *App {
	for _, a := range Registry() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// AllBugs returns every planted bug test across the suite, ordered Bug-1..18.
func AllBugs() []*Test {
	var out []*Test
	for _, a := range Registry() {
		out = append(out, a.BugTests()...)
	}
	// Order by numeric suffix of the bug ID.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && bugNum(out[j-1].Bug.ID) > bugNum(out[j].Bug.ID); j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func bugNum(id string) int {
	var n int
	fmt.Sscanf(id, "Bug-%d", &n)
	return n
}

// makeTests builds n generated (bug-free) tests from a base spec, varying
// the structural parameters deterministically per index so the suite is
// not n copies of one test. Every apiShareEvery-th test routes API calls
// through shared objects (TSV injection-site material); 0 means never.
func makeTests(app string, n int, base workload.Spec, timeout sim.Duration, apiShareEvery int) []*Test {
	out := make([]*Test, 0, n)
	for i := 0; i < n; i++ {
		spec := base
		spec.Prefix = fmt.Sprintf("%s/t%03d", app, i)
		spec.APIShared = apiShareEvery > 0 && i%apiShareEvery == 0
		// Deterministic ±25% structural variation.
		v := func(x int, k int) int {
			if x <= 0 {
				return x
			}
			d := (i*7+k*13)%max2(1, x/2) - x/4
			if x+d < 1 {
				return 1
			}
			return x + d
		}
		spec.LocalObjs = v(base.LocalObjs, 1)
		spec.SharedObjs = v(base.SharedObjs, 2)
		spec.LocalOps = v(base.LocalOps, 3)
		spec.SharedUses = v(base.SharedUses, 4)
		name := fmt.Sprintf("%s/test-%03d", app, i)
		out = append(out, &Test{
			Name: name,
			Prog: &core.SimProgram{Label: name, MaxTime: timeout, Jitter: 0.05, Body: spec.Body()},
		})
	}
	return out
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// bugTest wraps a bug scenario body plus optional background noise into a
// Test. The noise spec runs concurrently in its own thread subtree, giving
// the bug input the site density of its host application.
func bugTest(spec *BugSpec, timeout sim.Duration, noise *workload.Spec, jitter float64, scenario func(*sim.Thread, *memmodel.Heap)) *Test {
	name := fmt.Sprintf("%s/%s", spec.AppName, spec.ID)
	body := scenario
	if noise != nil {
		ns := *noise
		ns.Prefix = name + "/noise"
		noiseBody := ns.Body()
		body = func(root *sim.Thread, h *memmodel.Heap) {
			driver := root.Spawn("noise-driver", func(t *sim.Thread) { noiseBody(t, h) })
			scenario(root, h)
			root.Join(driver)
		}
	}
	if jitter == 0 {
		jitter = 0.05
	}
	return &Test{
		Name: name,
		Bug:  spec,
		Prog: &core.SimProgram{Label: name, MaxTime: timeout, Jitter: jitter, Body: body},
	}
}
