package apps

import (
	"waffle/internal/sim"
	"waffle/internal/workload"
)

// NewSSHNet models sshnet/SSH.NET: secure-channel client, moderate
// density, rich thread-unsafe API surface. Targets: 117 MT tests, base
// ≈702ms, MO ≈179/13.1, TSV ≈56.3/0.4.
func NewSSHNet() *App {
	a := &App{Name: "SSH.Net", LoCK: 84.4, StarsK: 2.8, MTTests: 117, Timeout: 60 * sim.Second, InTable2: true}
	spec := workload.Spec{
		Threads: 3, LocalObjs: 11, LocalOps: 2, SiteFanout: 2,
		SharedObjs: 4, SharedUses: 1,
		Spacing: 12200 * sim.Microsecond,
		APIObjs: 3, APICalls: 20, APISites: 19,
	}
	a.Tests = makeTests(a.Name, a.MTTests-2, spec, a.Timeout, 24)
	replaceFirstGenerated(a, sessionHandshake(a.Name), sftpTransfer(a.Name))
	a.Tests = append(a.Tests, bug1(), bug2())
	return a
}
