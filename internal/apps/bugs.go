package apps

import (
	"waffle/internal/memmodel"
	"waffle/internal/sim"
	"waffle/internal/workload"
)

// The 18 MemOrder bugs of Table 4. Each bug's scenario reproduces the
// structural mechanism that made it easy or hard for each tool in the
// paper: sparse pairs expose in two runs for both tools; repeating
// dynamic instances let WaffleBasic's same-run design win a run; Figure 4a
// and 4b interference shapes defeat WaffleBasic entirely or mostly; dense
// blanketing noise makes Waffle itself need three or four runs.

const ms = sim.Millisecond

// mkBug assembles the BugSpec + Test.
func mkBug(app string, id, issue string, known bool, baseMS float64,
	basicRuns, waffleRuns int, basicSlow, waffleSlow float64,
	timeout sim.Duration, noise *workload.Spec, jitter float64,
	scenario func(*sim.Thread, *memmodel.Heap)) *Test {
	return bugTest(&BugSpec{
		ID: id, AppName: app, IssueID: issue, Known: known,
		PaperBaseMS: baseMS, PaperBasicRuns: basicRuns, PaperWaffleRuns: waffleRuns,
		PaperBasicSlow: basicSlow, PaperWaffleSlow: waffleSlow,
	}, timeout, noise, jitter, scenario)
}

// lightNoise is a small background workload giving bug inputs their host
// app's ambient candidate density without dominating the run. The
// fork-ordered population (PreForkObjs) is what the parent-child ablation
// of Table 7 pays for: without pruning, its init sites become delay
// candidates on every bug input.
func lightNoise(threads, shared, locals int, spacing sim.Duration) *workload.Spec {
	return &workload.Spec{
		Threads: threads, SharedObjs: shared, SharedUses: 2,
		LocalObjs: locals, LocalOps: 2, PreForkObjs: shared + 2,
		Spacing: spacing, SiteFanout: 1,
	}
}

// Bug-1 — SSH.Net issue 80: a session teardown disposes the channel while
// a keep-alive thread still touches it. Sparse pair, both tools in 2 runs.
func bug1() *Test {
	return mkBug("SSH.Net", "Bug-1", "80", true, 2464, 2, 2, 1.4, 1.2,
		60*sim.Second, lightNoise(2, 2, 3, 8*ms), 0.05,
		useAfterFree(raceCfg{prefix: "ssh/channel", at: 900 * ms, gap: 18 * ms, wobble: 8 * ms, tail: 1500 * ms}))
}

// Bug-2 — SSH.Net issue 453: the message pump starts before the socket
// field is assigned. Sparse use-before-init.
func bug2() *Test {
	return mkBug("SSH.Net", "Bug-2", "453", true, 1042, 2, 2, 1.7, 1.6,
		60*sim.Second, lightNoise(2, 2, 3, 6*ms), 0.05,
		useBeforeInit(raceCfg{prefix: "ssh/socket", at: 400 * ms, gap: 12 * ms, wobble: 6 * ms, tail: 600 * ms}))
}

// Bug-3 — NSubstitute issue 205: a substitute's call router races its
// construction inside a hot invocation loop — repeating dynamic instances,
// so WaffleBasic exposes it in its very first run.
func bug3() *Test {
	return mkBug("NSubstitute", "Bug-3", "205", true, 437, 1, 2, 3.3, 5.1,
		30*sim.Second, lightNoise(2, 3, 4, 5*ms), 0.05,
		repeatingUseBeforeInit(raceCfg{prefix: "nsub/router", at: 120 * ms, gap: 4 * ms, wobble: 3 * ms, tail: 250 * ms}, 6, 30*ms))
}

// Bug-4 — NSubstitute issue 573: received-calls collection disposed while
// the assertion thread enumerates it.
func bug4() *Test {
	return mkBug("NSubstitute", "Bug-4", "573", true, 316, 2, 2, 9.0, 4.4,
		30*sim.Second, lightNoise(3, 4, 4, 4*ms), 0.05,
		useAfterFree(raceCfg{prefix: "nsub/calls", at: 120 * ms, gap: 25 * ms, wobble: 10 * ms, tail: 160 * ms}))
}

// Bug-5 — NSwag issue 3015: the JSON schema resolver is published before
// its reference table is initialized.
func bug5() *Test {
	return mkBug("NSwag", "Bug-5", "3015", true, 887, 2, 2, 2.1, 1.8,
		60*sim.Second, lightNoise(2, 4, 3, 7*ms), 0.05,
		useBeforeInit(raceCfg{prefix: "nswag/resolver", at: 300 * ms, gap: 20 * ms, wobble: 9 * ms, tail: 550 * ms}))
}

// Bug-6 — FluentAssertions issue 664: the formatter registry races its
// first concurrent assertion; the racy pair repeats per assertion.
func bug6() *Test {
	return mkBug("FluentAssertions", "Bug-6", "664", true, 782, 1, 2, 1.4, 2.7,
		30*sim.Second, lightNoise(2, 1, 3, 8*ms), 0.05,
		repeatingUseBeforeInit(raceCfg{prefix: "fluent/formatter", at: 250 * ms, gap: 5 * ms, wobble: 3 * ms, tail: 400 * ms}, 5, 40*ms))
}

// Bug-7 — FluentAssertions issue 862: an equivalency-step list disposed
// mid-comparison. The racy pair sits at the very end of the test, so
// Waffle's detection run pays for nearly the whole input before the fault.
func bug7() *Test {
	return mkBug("FluentAssertions", "Bug-7", "862", true, 831, 2, 2, 1.2, 2.5,
		30*sim.Second, lightNoise(2, 2, 3, 8*ms), 0.05,
		useAfterFree(raceCfg{prefix: "fluent/steps", at: 700 * ms, gap: 15 * ms, wobble: 7 * ms, tail: 60 * ms}))
}

// Bug-8 — LiteDB issue 1028: a use-before-init and a use-after-free on the
// same engine lock object cancel each other — Figure 4a's interfering-bugs
// shape; WaffleBasic misses it in 50 runs.
func bug8() *Test {
	return mkBug("LiteDB", "Bug-8", "1028", true, 495, 0, 2, 0, 4.9,
		30*sim.Second, lightNoise(2, 2, 2, 5*ms), 0.05,
		interferingBugs(raceCfg{prefix: "litedb/lock", at: 150 * ms, gap: 30 * ms, wobble: 10 * ms, tail: 120 * ms}))
}

// Bug-9 — Kubernetes.Net issue 360: the watcher's HTTP stream field races
// callback delivery; callbacks repeat, so WaffleBasic wins a run.
func bug9() *Test {
	return mkBug("Kubernetes.Net", "Bug-9", "360", true, 1955, 1, 2, 1.3, 2.0,
		60*sim.Second, lightNoise(2, 1, 4, 12*ms), 0.05,
		repeatingUseBeforeInit(raceCfg{prefix: "k8s/watcher", at: 600 * ms, gap: 6 * ms, wobble: 4 * ms, tail: 900 * ms}, 5, 50*ms))
}

// Bug-10 — ApplicationInsights issue 1106: Figure 4a verbatim — the
// diagnostics listener's ctor races OnEventWritten while Dispose waits for
// the handler. WaffleBasic blocks both threads in parallel and its
// happens-before inference removes the real candidate; missed in 50 runs.
func bug10() *Test {
	return mkBug("ApplicationInsights", "Bug-10", "1106", true, 143, 0, 2, 0, 4.9,
		30*sim.Second, lightNoise(2, 1, 2, 2*ms), 0.05,
		interferingBugs(raceCfg{prefix: "appins/lstnr", at: 40 * ms, gap: 12 * ms, wobble: 5 * ms, tail: 40 * ms}))
}

// Bug-11 — NetMQ issue 814: Figure 4b verbatim — ChkDisposed executes in
// both the cleanup thread and the worker; parallel delays at the same
// static site cancel with high probability, costing WaffleBasic ~5 runs.
// Waffle keeps both instances delayable concurrently (no self edge) and
// breaks the symmetry through probability decay over a handful of runs.
func bug11() *Test {
	return mkBug("NetMQ", "Bug-11", "814", true, 18503, 5, 2, 5.1, 2.2,
		120*sim.Second, lightNoise(2, 3, 3, 60*ms), 0.05,
		interferingInstances(raceCfg{prefix: "netmq/poller", at: 7000 * ms, gap: 60 * ms, wobble: 20 * ms, tail: 9000 * ms}))
}

// Bug-12 — NpgSQL issue 3247: the connector pool's reclaim races command
// completion under very dense allocation traffic. Blanketing noise delays
// usually cover the productive site, so even Waffle needs ~4 runs;
// WaffleBasic's inference removes the pair and misses entirely.
func bug12() *Test {
	return mkBug("NpgSQL", "Bug-12", "3247", true, 1097, 0, 4, 0, 6.9,
		120*sim.Second, lightNoise(3, 6, 5, 4*ms), 0.05,
		interferingBugsDense(raceCfg{prefix: "npgsql/pool", at: 400 * ms, gap: 30 * ms, wobble: 40 * ms, tail: 300 * ms}, 10*ms, 0))
}

// Bug-13 — SignalR (unreported): hub connection published before its
// transport field is set; the write event races it — interfering-bugs
// shape, previously unknown.
func bug13() *Test {
	return mkBug("SignalR", "Bug-13", "n/a", false, 952, 0, 2, 0, 1.3,
		30*sim.Second, lightNoise(2, 2, 3, 9*ms), 0.05,
		interferingBugs(raceCfg{prefix: "signalr/transport", at: 300 * ms, gap: 25 * ms, wobble: 10 * ms, tail: 450 * ms}))
}

// Bug-14 — ApplicationInsights issue 2261 (unreported at evaluation time):
// the ctor publishes this.buffer.OnFull before the remaining fields are
// initialized; the buffer-full event fires into a half-built object.
func bug14() *Test {
	return mkBug("ApplicationInsights", "Bug-14", "2261", false, 1349, 2, 2, 1.5, 1.3,
		30*sim.Second, lightNoise(2, 1, 3, 10*ms), 0.05,
		useBeforeInit(raceCfg{prefix: "appins/onfull", at: 500 * ms, gap: 15 * ms, wobble: 7 * ms, tail: 700 * ms}))
}

// Bug-15 — NetMQ issue 975 (unreported): the message queue is disposed
// while workers still dequeue; dense queue traffic blankets the productive
// site, costing Waffle ~3 runs and defeating WaffleBasic outright.
func bug15() *Test {
	return mkBug("NetMQ", "Bug-15", "975", false, 593, 0, 3, 0, 12.2,
		60*sim.Second, lightNoise(3, 5, 3, 3*ms), 0.05,
		interferingBugsDense(raceCfg{prefix: "netmq/queue", at: 200 * ms, gap: 30 * ms, wobble: 40 * ms, tail: 150 * ms}, 9*ms, 700*sim.Microsecond))
}

// Bug-16 — MQTT.Net issue 1187 (unreported): the packet dispatcher races
// session teardown under dense publish traffic.
func bug16() *Test {
	return mkBug("MQTT.Net", "Bug-16", "1187", false, 1207, 0, 4, 0, 5.4,
		60*sim.Second, lightNoise(3, 6, 4, 4*ms), 0.05,
		interferingBugsDense(raceCfg{prefix: "mqtt/dispatcher", at: 450 * ms, gap: 30 * ms, wobble: 40 * ms, tail: 350 * ms}, 10*ms, 500*sim.Microsecond))
}

// Bug-17 — MQTT.Net issue 1188 (unreported): the keep-alive monitor
// touches the client channel after disconnect disposes it.
func bug17() *Test {
	return mkBug("MQTT.Net", "Bug-17", "1188", false, 13722, 0, 3, 0, 6.2,
		120*sim.Second, lightNoise(3, 5, 3, 45*ms), 0.05,
		interferingBugsDense(raceCfg{prefix: "mqtt/keepalive", at: 5000 * ms, gap: 30 * ms, wobble: 40 * ms, tail: 6000 * ms}, 8*ms, 0))
}

// Bug-18 — Kubernetes.Net (unreported): the informer cache is disposed
// while a list-watch thread still reads it. Sparse pair.
func bug18() *Test {
	return mkBug("Kubernetes.Net", "Bug-18", "n/a", false, 1494, 2, 2, 2.5, 2.0,
		60*sim.Second, lightNoise(2, 2, 4, 10*ms), 0.05,
		useAfterFree(raceCfg{prefix: "k8s/informer", at: 550 * ms, gap: 20 * ms, wobble: 9 * ms, tail: 800 * ms}))
}
