package apps

import (
	"waffle/internal/memmodel"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// Scenario builders for the 18 Table 4 bugs. Each returns a body that is
// bug-free in delay-free executions — the bug manifests only when a delay
// inverts the racy pair's order, matching the paper's observation that
// none of the 18 bugs manifests in 50 uninstrumented runs (§6.2).
//
// Timing scheme: operations are positioned with an exact Sleep(at) plus a
// jittered Work(wobble). The wobble bounds run-to-run timing spread to
// ±5%·wobble per thread, so scenarios can guarantee that the natural order
// (gap apart) never inverts spontaneously (gap ≫ 0.1·wobble) while still
// controlling how reliably an injected α·gap delay clears the margin:
// a small wobble makes detection deterministic (2-run bugs), a wobble
// comparable to 3·gap makes single detection runs succeed only with
// moderate probability (the 3–4-run bugs of Table 4).

// raceCfg positions one racy pair inside a run.
type raceCfg struct {
	prefix string       // static-site namespace
	at     sim.Duration // when the first racy operation executes (exact)
	gap    sim.Duration // delay-free distance between the pair's operations
	wobble sim.Duration // jittered work at each positioning point
	tail   sim.Duration // trailing work after the racy structure
}

func (c raceCfg) site(s string) trace.SiteID { return trace.SiteID(c.prefix + "/" + s) }

// pos positions the thread at roughly `at` into the scenario: exact sleep
// plus the configured jittered wobble.
func (c raceCfg) pos(t *sim.Thread, at sim.Duration) {
	if at > c.wobble {
		t.Sleep(at - c.wobble)
	}
	if c.wobble > 0 {
		t.Work(c.wobble)
	}
}

// useBeforeInit: the object is initialized `at` into the run; an
// independent thread uses it `gap` later. Delaying the init past the use
// manifests the bug (Figure 2's order-violation timing: delay > gap).
func useBeforeInit(c raceCfg) func(*sim.Thread, *memmodel.Heap) {
	return func(root *sim.Thread, h *memmodel.Heap) {
		r := h.NewRef(c.prefix + "/obj")
		user := root.Spawn("user", func(t *sim.Thread) {
			c.pos(t, c.at+c.gap)
			r.Use(t, c.site("use"))
		})
		c.pos(root, c.at)
		r.Init(root, c.site("init"))
		root.Join(user)
		if c.tail > 0 {
			root.Work(c.tail)
		}
	}
}

// useAfterFree: the object lives before the fork; a worker uses it `at`
// into the run and the owner disposes it `gap` later, with no
// synchronization between use and dispose. Delaying the use past the
// dispose manifests the bug.
func useAfterFree(c raceCfg) func(*sim.Thread, *memmodel.Heap) {
	return func(root *sim.Thread, h *memmodel.Heap) {
		r := h.NewRef(c.prefix + "/obj")
		r.Init(root, c.site("init"))
		worker := root.Spawn("worker", func(t *sim.Thread) {
			c.pos(t, c.at)
			r.Use(t, c.site("use"))
		})
		c.pos(root, c.at+c.gap)
		r.Dispose(root, c.site("dispose"))
		root.Join(worker)
		if c.tail > 0 {
			root.Work(c.tail)
		}
	}
}

// repeatingUseBeforeInit re-executes the racy init/use pair n times on
// fresh objects through the same static sites — the shape that lets
// same-run tools expose the bug in one run: the near miss identified at
// iteration k is injected at iteration k+1 (§2). period must be shorter
// than the fixed delay for the same-run injection to invert the order.
func repeatingUseBeforeInit(c raceCfg, n int, period sim.Duration) func(*sim.Thread, *memmodel.Heap) {
	return func(root *sim.Thread, h *memmodel.Heap) {
		objs := make([]*memmodel.Ref, n)
		for i := range objs {
			objs[i] = h.NewRef(c.prefix + "/obj")
		}
		user := root.Spawn("handler", func(t *sim.Thread) {
			c.pos(t, c.at+c.gap)
			for i := 0; i < n; i++ {
				objs[i].Use(t, c.site("use"))
				if i < n-1 {
					t.Sleep(period)
				}
			}
		})
		c.pos(root, c.at)
		for i := 0; i < n; i++ {
			objs[i].Init(root, c.site("init"))
			if i < n-1 {
				root.Sleep(period)
			}
		}
		root.Join(user)
		if c.tail > 0 {
			root.Work(c.tail)
		}
	}
}

// interferingBugs is Figure 4a (ApplicationInsights #1106): a
// use-before-init and a use-after-free candidate on the same object whose
// delays cancel each other under unrestricted parallel injection, while
// the handler thread's own delay poisons WaffleBasic's happens-before
// inference into removing the real candidate. The dispose genuinely waits
// for the handler, so only the use-before-init bug is real.
func interferingBugs(c raceCfg) func(*sim.Thread, *memmodel.Heap) {
	return func(root *sim.Thread, h *memmodel.Heap) {
		lstnr := h.NewRef(c.prefix + "/lstnr")
		buf := h.NewRef(c.prefix + "/buffer")
		buf.Init(root, c.site("buf-init"))
		var done sim.Event
		root.Spawn("events", func(t *sim.Thread) {
			c.pos(t, c.at/2)
			buf.Use(t, c.site("buf-use")) // early benign access
			c.pos(t, c.at/2+c.gap)
			lstnr.Use(t, c.site("on-event-written")) // the racy use
			done.Set(t)
		})
		c.pos(root, c.at)
		lstnr.Init(root, c.site("ctor")) // naturally gap before the use
		done.Wait(root)
		root.Work(c.gap * 3)
		lstnr.Dispose(root, c.site("dispose"))
		if c.tail > 0 {
			root.Work(c.tail)
		}
	}
}

// interferingInstances is Figure 4b (NetMQ #814): the same static site
// executes in the disposing thread right before the dispose and in the
// worker as the racy use. Parallel delays at both dynamic instances cancel
// each other; probability decay at the shared site eventually delays only
// one instance per run, breaking the symmetry (no self-interference edge —
// the site must stay delayable in both threads at once).
func interferingInstances(c raceCfg) func(*sim.Thread, *memmodel.Heap) {
	return func(root *sim.Thread, h *memmodel.Heap) {
		poller := h.NewRef(c.prefix + "/m_poller")
		poller.Init(root, c.site("runtime-ctor"))
		worker := root.Spawn("worker", func(t *sim.Thread) {
			c.pos(t, c.at)
			poller.Use(t, c.site("chk-disposed")) // TryExecTaskInline
		})
		c.pos(root, c.at+c.gap)
		if poller.UseIfLive(root, c.site("chk-disposed")) { // Cleanup: same site
			root.Work(c.gap / 2)
			poller.Dispose(root, c.site("dispose"))
		}
		root.Join(worker)
		if c.tail > 0 {
			root.Work(c.tail)
		}
	}
}

// interferingBugsDense is the Figure 4a shape buried under dense candidate
// traffic, modelling the allocation-heavy applications whose bugs cost
// even Waffle three or four runs (Table 4: NpgSQL #3247, NetMQ #975,
// MQTT.Net #1187/#1188).
//
// On top of interferingBugs, a pool thread exercises a guarded check site
// on a pool object that the root thread disposes just after the racy ctor.
// The trace analyzer therefore (correctly) records the check site as
// interfering with the ctor — a delay at the check, in flight when the
// root reaches the ctor, would cancel the productive delay. In detection
// runs the check site injects with its own decaying probability and its
// delay covers the ctor's arrival with moderate, wobble-dependent
// probability, so the productive delay is frequently skipped for the first
// couple of detection runs (skips do not decay the productive site).
// WaffleBasic misses the bug through the same misled happens-before
// inference as interferingBugs.
func interferingBugsDense(c raceCfg, chkLead, zdispLag sim.Duration) func(*sim.Thread, *memmodel.Heap) {
	return func(root *sim.Thread, h *memmodel.Heap) {
		lstnr := h.NewRef(c.prefix + "/lstnr")
		buf := h.NewRef(c.prefix + "/buffer")
		zpool := h.NewRef(c.prefix + "/zpool")
		buf.Init(root, c.site("buf-init"))
		var done sim.Event
		root.Spawn("pool", func(t *sim.Thread) {
			zpool.Init(t, c.site("z-init"))
			c.pos(t, c.at-chkLead)
			zpool.UseIfLive(t, c.site("z-chk")) // blankets the ctor when delayed
		})
		root.Spawn("events", func(t *sim.Thread) {
			c.pos(t, c.at/2)
			buf.Use(t, c.site("buf-use")) // early benign access
			c.pos(t, c.at/2+c.gap)
			lstnr.Use(t, c.site("on-event-written")) // the racy use
			done.Set(t)
		})
		c.pos(root, c.at)
		lstnr.Init(root, c.site("ctor")) // naturally gap before the use
		root.Work(zdispLag)
		zpool.Dispose(root, c.site("z-disp")) // closes the z-chk near miss
		done.Wait(root)
		root.Work(c.gap * 3)
		lstnr.Dispose(root, c.site("dispose"))
		if c.tail > 0 {
			root.Work(c.tail)
		}
	}
}
