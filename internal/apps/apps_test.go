package apps

import (
	"testing"

	"waffle/internal/core"
	"waffle/internal/wafflebasic"
)

func TestRegistryShape(t *testing.T) {
	reg := Registry()
	if len(reg) != 11 {
		t.Fatalf("apps = %d, want 11", len(reg))
	}
	seen := map[string]bool{}
	for _, a := range reg {
		if seen[a.Name] {
			t.Fatalf("duplicate app %s", a.Name)
		}
		seen[a.Name] = true
		if len(a.Tests) != a.MTTests {
			t.Errorf("%s: %d tests, declared %d", a.Name, len(a.Tests), a.MTTests)
		}
		if a.Timeout <= 0 {
			t.Errorf("%s: no timeout", a.Name)
		}
		names := map[string]bool{}
		for _, test := range a.Tests {
			if names[test.Name] {
				t.Errorf("%s: duplicate test %s", a.Name, test.Name)
			}
			names[test.Name] = true
		}
	}
	// Table 3's paper totals.
	if ByName("NpgSQL").MTTests != 283 || ByName("LiteDB").MTTests != 7 {
		t.Error("Table 3 test counts drifted")
	}
}

func TestAllBugsOrderedAndComplete(t *testing.T) {
	bugs := AllBugs()
	if len(bugs) != 18 {
		t.Fatalf("bugs = %d, want 18", len(bugs))
	}
	for i, b := range bugs {
		if got := bugNum(b.Bug.ID); got != i+1 {
			t.Fatalf("bug %d has ID %s", i, b.Bug.ID)
		}
		if b.Bug.PaperWaffleRuns == 0 {
			t.Errorf("%s: no paper Waffle runs recorded", b.Bug.ID)
		}
	}
	known := 0
	for _, b := range bugs {
		if b.Bug.Known {
			known++
		}
	}
	if known != 12 {
		t.Fatalf("known bugs = %d, want 12", known)
	}
}

func TestBugsNeverManifestWithoutDelays(t *testing.T) {
	// §6.2: none of the 18 bugs manifests without injection, even over
	// repeated uninstrumented runs.
	for _, b := range AllBugs() {
		for seed := int64(0); seed < 5; seed++ {
			res := b.Prog.Execute(seed*977+1, nil)
			if res.Fault != nil {
				t.Fatalf("%s manifested without delays (seed %d): %v", b.Bug.ID, seed*977+1, res.Fault)
			}
			if res.Err != nil {
				t.Fatalf("%s failed uninstrumented (seed %d): %v", b.Bug.ID, seed*977+1, res.Err)
			}
		}
	}
}

func TestWaffleExposesEveryBug(t *testing.T) {
	for _, b := range AllBugs() {
		s := &core.Session{Prog: b.Prog, Tool: core.NewWaffle(core.Options{}), MaxRuns: 50, BaseSeed: 11}
		out := s.Expose()
		if out.Bug == nil {
			t.Errorf("%s: Waffle missed it in 50 runs", b.Bug.ID)
			continue
		}
		// Bug-11 (Figure 4b) exposes via decay-driven symmetry breaking at
		// its shared site rather than in a fixed run: the analyzer emits no
		// self-interference edge (the same site must stay delayable
		// concurrently), so the 2-run figure from the paper's serializing
		// variant no longer applies — only the 50-run bound above.
		if b.Bug.ID == "Bug-11" {
			continue
		}
		if b.Bug.PaperWaffleRuns == 2 && out.Bug.Run != 2 {
			t.Errorf("%s: exposed in %d runs, paper says 2", b.Bug.ID, out.Bug.Run)
		}
	}
}

func TestWaffleBasicMissesInterferenceBoundBugs(t *testing.T) {
	// The paper's 7 WaffleBasic misses: Bug-8, 10, 12, 13, 15, 16, 17.
	missSet := map[string]bool{
		"Bug-8": true, "Bug-10": true, "Bug-12": true, "Bug-13": true,
		"Bug-15": true, "Bug-16": true, "Bug-17": true,
	}
	for _, b := range AllBugs() {
		if !missSet[b.Bug.ID] {
			continue
		}
		s := &core.Session{Prog: b.Prog, Tool: wafflebasic.New(core.Options{}), MaxRuns: 25, BaseSeed: 7}
		if out := s.Expose(); out.Bug != nil {
			t.Errorf("%s: WaffleBasic exposed it (run %d) but the paper reports a miss", b.Bug.ID, out.Bug.Run)
		}
	}
}

func TestWaffleBasicExposesSparseBugs(t *testing.T) {
	for _, id := range []string{"Bug-1", "Bug-2", "Bug-14", "Bug-18"} {
		var target *Test
		for _, b := range AllBugs() {
			if b.Bug.ID == id {
				target = b
			}
		}
		s := &core.Session{Prog: target.Prog, Tool: wafflebasic.New(core.Options{}), MaxRuns: 10, BaseSeed: 3}
		if out := s.Expose(); out.Bug == nil {
			t.Errorf("%s: WaffleBasic missed a sparse bug", id)
		}
	}
}

func TestGeneratedTestsFaultFree(t *testing.T) {
	// A sample of generated (non-bug) tests per app must be clean both
	// uninstrumented and under full Waffle detection.
	for _, a := range Registry() {
		count := 0
		for _, test := range a.Tests {
			if test.Bug != nil {
				continue
			}
			count++
			if count > 2 {
				break
			}
			if res := test.Prog.Execute(5, nil); res.Fault != nil || res.Err != nil {
				t.Fatalf("%s base run failed: fault=%v err=%v", test.Name, res.Fault, res.Err)
			}
			s := &core.Session{Prog: test.Prog, Tool: core.NewWaffle(core.Options{}), MaxRuns: 3, BaseSeed: 5}
			if out := s.Expose(); out.Bug != nil {
				t.Fatalf("%s: generated test produced a bug: %v", test.Name, out.Bug)
			}
		}
	}
}

func TestBugTestNamesCarryAppAndID(t *testing.T) {
	for _, b := range AllBugs() {
		if b.Name != b.Bug.AppName+"/"+b.Bug.ID {
			t.Errorf("bug test name %q inconsistent with spec %s/%s", b.Name, b.Bug.AppName, b.Bug.ID)
		}
	}
}

func TestEveryBugReportReplays(t *testing.T) {
	// §5: a report carries input, candidate locations, and delay values.
	// The replay harness must turn every probabilistic exposure into a
	// deterministic reproduction with a minimal single-site plan.
	for _, b := range AllBugs() {
		s := &core.Session{Prog: b.Prog, Tool: core.NewWaffle(core.Options{}), MaxRuns: 50, BaseSeed: 11}
		out := s.Expose()
		if out.Bug == nil {
			t.Errorf("%s: not exposed", b.Bug.ID)
			continue
		}
		rep := core.Replay(b.Prog, out.Bug, core.Options{})
		if !rep.Reproduced {
			t.Errorf("%s: replay failed: %v", b.Bug.ID, rep)
		}
	}
}

func TestDomainTestsFaultFreeUnderDetection(t *testing.T) {
	// The hand-written integration scenarios must stay clean under both
	// detectors across seeds: their cross-thread lifecycles are guarded or
	// genuinely ordered, so delays cannot manifest anything.
	for _, a := range Registry() {
		for _, test := range a.Tests {
			if test.Bug != nil || !isDomainTest(test.Name) {
				continue
			}
			for seed := int64(1); seed <= 3; seed++ {
				if res := test.Prog.Execute(seed, nil); res.Fault != nil || res.Err != nil {
					t.Fatalf("%s base run failed (seed %d): fault=%v err=%v", test.Name, seed, res.Fault, res.Err)
				}
			}
			s := &core.Session{Prog: test.Prog, Tool: core.NewWaffle(core.Options{}), MaxRuns: 5, BaseSeed: 2}
			if out := s.Expose(); out.Bug != nil {
				t.Fatalf("%s: Waffle flagged the race-free scenario: %v", test.Name, out.Bug)
			}
			b := &core.Session{Prog: test.Prog, Tool: wafflebasic.New(core.Options{}), MaxRuns: 5, BaseSeed: 2}
			if out := b.Expose(); out.Bug != nil {
				t.Fatalf("%s: WaffleBasic flagged the race-free scenario: %v", test.Name, out.Bug)
			}
		}
	}
}

func isDomainTest(name string) bool {
	for _, suffix := range []string{
		"telemetry-pipeline", "assertion-scope", "watcher-loop", "paged-file",
		"broker-session", "pubsub-proxy", "connection-pool", "proxy-recorder",
		"generator-tasks", "hub-broadcast", "session-handshake",
		"sampling-flush", "collection-assertion", "leader-election",
		"checkpoint-recovery", "retained-messages", "dealer-router",
		"prepared-statements", "argument-matchers", "client-generation",
		"reconnecting-client", "sftp-transfer",
	} {
		if len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix {
			return true
		}
	}
	return false
}

func TestEveryAppHasADomainTest(t *testing.T) {
	for _, a := range Registry() {
		found := false
		for _, test := range a.Tests {
			if isDomainTest(test.Name) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s has no domain scenario", a.Name)
		}
	}
}
