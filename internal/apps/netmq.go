package apps

import (
	"waffle/internal/sim"
	"waffle/internal/workload"
)

// NewNetMQ models zeromq/netmq: message queue, dense shared heap traffic
// across three threads. Targets: 101 MT tests, base ≈1657ms,
// MO ≈619/143.4, TSV ≈49.2/13.5.
func NewNetMQ() *App {
	a := &App{Name: "NetMQ", LoCK: 20.7, StarsK: 2.3, MTTests: 101, Timeout: 60 * sim.Second, InTable2: true}
	spec := workload.Spec{
		Threads: 3, LocalObjs: 30, LocalOps: 1, SiteFanout: 1,
		SharedObjs: 48, SharedUses: 2, SyncedObjs: 4,
		Spacing: 10300 * sim.Microsecond,
		APIObjs: 3, APICalls: 17, APISites: 16,
	}
	a.Tests = makeTests(a.Name, a.MTTests-2, spec, a.Timeout, 2)
	replaceFirstGenerated(a, pubSubProxy(a.Name), dealerRouter(a.Name))
	a.Tests = append(a.Tests, bug11(), bug15())
	return a
}
