package apps

import (
	"waffle/internal/sim"
	"waffle/internal/workload"
)

// NewSignalR models SignalR/SignalR: real-time messaging, short tests
// (the public TSVD cannot instrument it — excluded from Table 2).
// Targets: 52 MT tests, base ≈267ms.
func NewSignalR() *App {
	a := &App{Name: "SignalR", LoCK: 51.8, StarsK: 8.5, MTTests: 52, Timeout: 30 * sim.Second}
	spec := workload.Spec{
		Threads: 2, LocalObjs: 10, LocalOps: 2, SiteFanout: 1,
		SharedObjs: 4, SharedUses: 2,
		Spacing: 6500 * sim.Microsecond,
		APIObjs: 2, APICalls: 4, APISites: 3,
	}
	a.Tests = makeTests(a.Name, a.MTTests-1, spec, a.Timeout, 10)
	replaceFirstGenerated(a, hubBroadcast(a.Name), reconnectingClient(a.Name))
	a.Tests = append(a.Tests, bug13())
	return a
}
