package apps

import (
	"fmt"

	"waffle/internal/core"
	"waffle/internal/sim"
	"waffle/internal/workload"
)

// NewLiteDB models mbdavid/LiteDB: embedded database with a small
// multi-threaded test population (excluded from Tables 2/5 for that
// reason). Targets: 7 MT tests.
func NewLiteDB() *App {
	a := &App{Name: "LiteDB", LoCK: 18.3, StarsK: 6.2, MTTests: 7, Timeout: 30 * sim.Second}
	spec := workload.Spec{
		Threads: 2, LocalObjs: 5, LocalOps: 2, SiteFanout: 1,
		SharedObjs: 2, SharedUses: 2,
		Spacing: 8 * sim.Millisecond,
		APIObjs: 2, APICalls: 4, APISites: 2,
	}
	a.Tests = makeTests(a.Name, a.MTTests-4, spec, a.Timeout, 0)
	// Three of LiteDB's tests exercise the task-oriented substrate (the
	// §4.1 async-local extension): concurrency through a task pool rather
	// than dedicated threads.
	for i := 0; i < 3; i++ {
		ts := workload.TaskSpec{
			Prefix:        fmt.Sprintf("%s/task%d", a.Name, i),
			Workers:       2 + i%2,
			PreSubmitObjs: 2,
			SharedObjs:    3 + i,
			UsesPerObj:    2,
			Spacing:       6 * sim.Millisecond,
		}
		name := fmt.Sprintf("%s/task-test-%d", a.Name, i)
		a.Tests = append(a.Tests, &Test{
			Name: name,
			Prog: &core.SimProgram{Label: name, MaxTime: a.Timeout, Jitter: 0.05, Body: ts.Body()},
		})
	}
	replaceFirstGenerated(a, pagedFile(a.Name), checkpointRecovery(a.Name))
	a.Tests = append(a.Tests, bug8())
	return a
}
