package apps

import (
	"waffle/internal/sim"
	"waffle/internal/workload"
)

// NewKubernetesNet models kubernetes-client/csharp: API machinery with
// long-running watch loops and very many private objects.
// Targets: 21 MT tests, base ≈2051ms, MO ≈338/3.8, TSV ≈5.6/1.5.
func NewKubernetesNet() *App {
	a := &App{Name: "Kubernetes.Net", LoCK: 173.2, StarsK: 0.7, MTTests: 21, Timeout: 60 * sim.Second, InTable2: true}
	spec := workload.Spec{
		Threads: 3, LocalObjs: 27, LocalOps: 2, SiteFanout: 2,
		SharedObjs: 1, SharedUses: 1,
		Spacing: 24 * sim.Millisecond,
		APIObjs: 3, APICalls: 3, APISites: 2,
	}
	a.Tests = makeTests(a.Name, a.MTTests-2, spec, a.Timeout, 3)
	replaceFirstGenerated(a, watcherLoop(a.Name), leaderElection(a.Name))
	a.Tests = append(a.Tests, bug9(), bug18())
	return a
}
