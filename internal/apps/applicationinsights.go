package apps

import (
	"waffle/internal/sim"
	"waffle/internal/workload"
)

// NewApplicationInsights models microsoft/ApplicationInsights-dotnet:
// telemetry pipeline, moderate allocation, very sparse shared state.
// Targets: 156 MT tests, base ≈227ms, MO sites ≈189/3.5, TSV ≈8.7/0.1.
func NewApplicationInsights() *App {
	a := &App{Name: "ApplicationInsights", LoCK: 151.2, StarsK: 0.5, MTTests: 156, Timeout: 30 * sim.Second, InTable2: true}
	spec := workload.Spec{
		Threads: 3, LocalObjs: 15, LocalOps: 2, SiteFanout: 2,
		SharedObjs: 1, SharedUses: 1, SyncedObjs: 1,
		Spacing: 3700 * sim.Microsecond,
		APIObjs: 3, APICalls: 4, APISites: 3,
	}
	a.Tests = makeTests(a.Name, a.MTTests-2, spec, a.Timeout, 24)
	replaceFirstGenerated(a, telemetryPipeline(a.Name), samplingFlush(a.Name))
	a.Tests = append(a.Tests, bug10(), bug14())
	return a
}
