package apps

import (
	"waffle/internal/sim"
	"waffle/internal/workload"
)

// NewFluentAssertions models fluentassertions/fluentassertions: assertion
// library, light threading, heavy thread-unsafe API surface.
// Targets: 41 MT tests, base ≈776ms, MO ≈77/5.9, TSV ≈57.3/0.3.
func NewFluentAssertions() *App {
	a := &App{Name: "FluentAssertions", LoCK: 47.7, StarsK: 2.5, MTTests: 41, Timeout: 30 * sim.Second, InTable2: true}
	spec := workload.Spec{
		Threads: 3, LocalObjs: 7, LocalOps: 2, SiteFanout: 1,
		SharedObjs: 2, SharedUses: 1,
		Spacing: 17500 * sim.Microsecond,
		APIObjs: 3, APICalls: 20, APISites: 19,
	}
	a.Tests = makeTests(a.Name, a.MTTests-2, spec, a.Timeout, 16)
	replaceFirstGenerated(a, assertionScope(a.Name), collectionAssertion(a.Name))
	a.Tests = append(a.Tests, bug6(), bug7())
	return a
}
