package apps

import (
	"waffle/internal/sim"
	"waffle/internal/workload"
)

// NewNSwag models RicoSuter/NSwag: OpenAPI toolchain, moderate size with a
// high fraction of racy shared document state. Targets: 18 MT tests, base
// ≈995ms, MO ≈110/70.8, TSV ≈2.2/0.3.
func NewNSwag() *App {
	a := &App{Name: "NSwag", LoCK: 101.5, StarsK: 4.9, MTTests: 18, Timeout: 60 * sim.Second, InTable2: true}
	spec := workload.Spec{
		Threads: 2, LocalObjs: 2, LocalOps: 2, SiteFanout: 2,
		SharedObjs: 17, SharedUses: 3,
		Spacing: 17500 * sim.Microsecond,
		APIObjs: 2, APICalls: 2, APISites: 1,
	}
	a.Tests = makeTests(a.Name, a.MTTests-1, spec, a.Timeout, 9)
	replaceFirstGenerated(a, generatorTasks(a.Name), clientGeneration(a.Name))
	a.Tests = append(a.Tests, bug5())
	return a
}
