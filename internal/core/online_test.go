package core

import (
	"testing"

	"waffle/internal/memmodel"
	"waffle/internal/sim"
)

// onlineRun drives one program run under the engine and returns it.
func onlineRun(t *testing.T, o *Online, seed int64, body func(*sim.Thread, *memmodel.Heap)) ExecResult {
	t.Helper()
	o.BeginRun()
	prog := &SimProgram{Label: "online", Body: body}
	return prog.Execute(seed, o)
}

// initUseBody is a near-miss init/use pair 2ms apart across two threads.
func initUseBody(root *sim.Thread, h *memmodel.Heap) {
	r := h.NewRef("r")
	user := root.Spawn("user", func(th *sim.Thread) {
		th.Sleep(3 * sim.Millisecond)
		r.Use(th, "use")
	})
	root.Sleep(1 * sim.Millisecond)
	r.Init(root, "init")
	root.Join(user)
}

func TestOnlineIdentifiesNearMissPair(t *testing.T) {
	o := NewOnline(WaffleBasicConfig(Options{}))
	onlineRun(t, o, 1, initUseBody)
	pairs := o.Pairs()
	if len(pairs) != 1 {
		t.Fatalf("pairs = %v", pairs)
	}
	p := pairs[0]
	if p.Delay != "init" || p.Target != "use" || p.Kind != UseBeforeInit {
		t.Fatalf("pair = %+v", p)
	}
	if o.InjectionSiteCount() != 1 {
		t.Fatalf("injection sites = %d", o.InjectionSiteCount())
	}
}

func TestOnlinePersistsAcrossRunsAndInjects(t *testing.T) {
	o := NewOnline(WaffleBasicConfig(Options{}))
	res := onlineRun(t, o, 1, initUseBody)
	if res.Fault != nil {
		t.Fatalf("run 1 faulted: %v", res.Fault)
	}
	if o.Stats().Count != 0 {
		t.Fatal("run 1 injected before identification")
	}
	res2 := onlineRun(t, o, 2, initUseBody)
	if res2.Fault == nil {
		t.Fatal("run 2 did not expose the bug")
	}
	if o.Stats().Count == 0 {
		t.Fatal("run 2 injected nothing")
	}
	if o.Runs() != 2 {
		t.Fatalf("runs = %d", o.Runs())
	}
}

func TestOnlineParentChildPruning(t *testing.T) {
	body := func(root *sim.Thread, h *memmodel.Heap) {
		r := h.NewRef("r")
		r.Init(root, "pre-fork") // before the fork: ordered with child use
		w := root.Spawn("w", func(th *sim.Thread) {
			th.Sleep(1 * sim.Millisecond)
			r.Use(th, "child-use")
		})
		root.Join(w)
	}
	pruning := NewOnline(NoPrepConfig(Options{}))
	onlineRun(t, pruning, 1, body)
	if n := len(pruning.Pairs()); n != 0 {
		t.Fatalf("fork-ordered pair admitted online: %v", pruning.Pairs())
	}
	noPruning := NewOnline(WaffleBasicConfig(Options{}))
	onlineRun(t, noPruning, 1, body)
	if n := len(noPruning.Pairs()); n != 1 {
		t.Fatalf("WaffleBasic config pruned anyway: %v", noPruning.Pairs())
	}
}

func TestOnlineVariableLengths(t *testing.T) {
	o := NewOnline(NoPrepConfig(Options{}))
	onlineRun(t, o, 1, initUseBody) // identify: gap ≈ 2ms
	onlineRun(t, o, 2, initUseBody) // inject variable-length delay
	st := o.Stats()
	if st.Count == 0 {
		t.Fatal("nothing injected")
	}
	for _, iv := range st.Intervals {
		if iv.Dur() >= DefaultFixedDelay {
			t.Fatalf("variable-length delay %v as long as the fixed default", iv.Dur())
		}
	}
}

func TestOnlineDecayReachesZero(t *testing.T) {
	// A near-miss pair that never manifests (target precedes delay-site
	// reversal is impossible because the dispose waits on the use): the
	// site's probability must decay to zero and injection must stop.
	body := func(root *sim.Thread, h *memmodel.Heap) {
		r := h.NewRef("r")
		r.Init(root, "init0")
		var done sim.Event
		w := root.Spawn("w", func(th *sim.Thread) {
			th.Sleep(1 * sim.Millisecond)
			r.Use(th, "use")
			done.Set(th)
		})
		done.Wait(root)
		root.Sleep(1 * sim.Millisecond)
		r.Dispose(root, "disp")
		root.Join(w)
	}
	o := NewOnline(WaffleBasicConfig(Options{Decay: 0.5}))
	injected := 0
	for i := 0; i < 12; i++ {
		res := onlineRun(t, o, int64(i), body)
		if res.Fault != nil {
			t.Fatalf("impossible bug manifested: %v", res.Fault)
		}
		injected += o.Stats().Count
	}
	// With decay 0.5, at most ~2-3 productive injections then silence.
	if injected > 6 {
		t.Fatalf("injected %d delays despite rapid decay", injected)
	}
	last := 0
	for i := 0; i < 3; i++ {
		onlineRun(t, o, int64(100+i), body)
		last += o.Stats().Count
	}
	if last != 0 {
		t.Fatalf("still injecting after decay exhausted: %d", last)
	}
}

func TestOnlineHBInferenceRemovesTrulyOrderedPair(t *testing.T) {
	// The dispose genuinely waits for the use (Event): a delay at "use"
	// propagates to the disposing thread, so WaffleBasic's inference
	// should eventually remove the pair {use, disp}.
	body := func(root *sim.Thread, h *memmodel.Heap) {
		r := h.NewRef("r")
		r.Init(root, "init0")
		var done sim.Event
		w := root.Spawn("w", func(th *sim.Thread) {
			th.Sleep(1 * sim.Millisecond)
			r.Use(th, "use")
			done.Set(th)
		})
		done.Wait(root)
		r.Dispose(root, "disp")
		root.Join(w)
	}
	o := NewOnline(WaffleBasicConfig(Options{}))
	for i := 0; i < 4; i++ {
		res := onlineRun(t, o, int64(i), body)
		if res.Fault != nil {
			t.Fatalf("impossible bug manifested: %v", res.Fault)
		}
	}
	for _, p := range o.Pairs() {
		if p.Delay == "use" && p.Target == "disp" {
			t.Fatalf("HB-ordered pair not removed after %d runs", o.Runs())
		}
	}
}

func TestOnlineInterferenceControlSerializesDelays(t *testing.T) {
	// Figure 4b shape online: same site in two threads. With online
	// interference control the self-edge forms after identification and
	// later runs never hold two "chk" delays concurrently.
	body := func(root *sim.Thread, h *memmodel.Heap) {
		r := h.NewRef("r")
		r.Init(root, "init0")
		w := root.Spawn("w", func(th *sim.Thread) {
			th.Sleep(3 * sim.Millisecond)
			r.Use(th, "chk")
		})
		root.Sleep(4 * sim.Millisecond)
		if r.UseIfLive(root, "chk") {
			root.Sleep(500 * sim.Microsecond)
			r.Dispose(root, "disp")
		}
		root.Join(w)
	}
	o := NewOnline(NoPrepConfig(Options{}))
	for i := 0; i < 10; i++ {
		o.BeginRun()
		prog := &SimProgram{Label: "online", Body: body}
		prog.Execute(int64(i), o)
		ivs := o.Stats().Intervals
		for a := 0; a < len(ivs); a++ {
			for b := a + 1; b < len(ivs); b++ {
				if ivs[a].Site == "chk" && ivs[b].Site == "chk" &&
					ivs[a].Start < ivs[b].End && ivs[b].Start < ivs[a].End {
					t.Fatalf("run %d: two chk delays overlap: %+v %+v", i, ivs[a], ivs[b])
				}
			}
		}
	}
}

func TestOnlineIgnoresAPIKinds(t *testing.T) {
	o := NewOnline(WaffleBasicConfig(Options{}))
	onlineRun(t, o, 1, func(root *sim.Thread, h *memmodel.Heap) {
		r := h.NewRef("dict")
		w := root.Spawn("w", func(th *sim.Thread) {
			th.Sleep(time1ms)
			r.APICall(th, "api2", true, 100*sim.Microsecond)
		})
		r.APICall(root, "api1", true, 100*sim.Microsecond)
		root.Join(w)
	})
	if n := len(o.Pairs()); n != 0 {
		t.Fatalf("API calls formed MemOrder pairs: %v", o.Pairs())
	}
}

const time1ms = 1 * sim.Millisecond

func TestAppendBounded(t *testing.T) {
	var h []histEv
	for i := 0; i < 10; i++ {
		h = appendBounded(h, histEv{t: sim.Time(i)}, 4)
	}
	if len(h) != 4 {
		t.Fatalf("len = %d, want 4", len(h))
	}
	if h[0].t != 6 || h[3].t != 9 {
		t.Fatalf("kept wrong window: %+v", h)
	}
}
