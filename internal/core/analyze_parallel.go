package core

import (
	"context"
	"sort"

	"waffle/internal/sched"
	"waffle/internal/trace"
)

// analyzeShardFactor oversubscribes shards relative to workers so uneven
// per-object and per-instance work rebalances across the pool instead of
// serializing behind the densest shard.
const analyzeShardFactor = 4

// AnalyzeParallel is the sharded trace analyzer: pass 1 is sharded by
// object (near-miss scanning is independent per object) and pass 3 by
// dynamic candidate instance, both executed on the internal/sched wave
// pool. Pass-1 shards merge through pairAccum.mergeFrom (counts sum, gaps
// max); pass-3 shards each produce a partial Plan carrying only
// interference edges, folded in with Plan.MergeFrom. The result is
// bit-identical to analyzeSequential: same pair order, same delay
// lengths, same sorted interference lists.
func AnalyzeParallel(tr *trace.Trace, opts Options, workers int) *Plan {
	opts = opts.WithDefaults()
	if workers <= 1 {
		return analyzeSequential(tr, opts)
	}

	// Pass 1: per-object shards.
	byObject := tr.ByObject()
	shards := shardObjects(byObject, workers*analyzeShardFactor)
	acc := newPairAccum(opts)
	ok := true
	if len(shards) > 0 {
		sched.Run(sched.Pool{Workers: workers}, 0, len(shards)-1,
			func(ctx context.Context, i int) (*pairAccum, error) {
				sacc := newPairAccum(opts)
				for _, obj := range shards[i] {
					sacc.scanObject(tr.Events, byObject[obj])
				}
				return sacc, nil
			},
			func(r sched.Result[*pairAccum]) bool {
				if r.Err != nil {
					ok = false
					return false
				}
				acc.mergeFrom(r.Value)
				return true
			})
	}
	if !ok {
		// A shard panicked (sched converts panics to errors). Analysis is
		// pure, so the sequential path is a safe, identical fallback.
		return analyzeSequential(tr, opts)
	}
	plan := assemblePlan(tr.Label, opts, acc.pairs)

	// Pass 3: contiguous instance chunks. Each job returns a partial Plan
	// holding only its interference edges; MergeFrom unions them (its
	// keep-first pair semantics are moot — the partials carry no pairs).
	injection := injectionSet(plan)
	byThread := buildByThread(tr)
	n := len(acc.instances)
	if n > 0 {
		chunk := (n + workers*analyzeShardFactor - 1) / (workers * analyzeShardFactor)
		nChunks := (n + chunk - 1) / chunk
		sched.Run(sched.Pool{Workers: workers}, 0, nChunks-1,
			func(ctx context.Context, i int) (*Plan, error) {
				lo, hi := i*chunk, (i+1)*chunk
				if hi > n {
					hi = n
				}
				es := make(edgeSet)
				for _, inst := range acc.instances[lo:hi] {
					instanceEdges(tr, byThread, injection, inst, opts.Window, es.add)
				}
				partial := &Plan{Interfere: make(map[trace.SiteID][]trace.SiteID, len(es))}
				for a, set := range es {
					out := make([]trace.SiteID, 0, len(set))
					for b := range set {
						out = append(out, b)
					}
					partial.Interfere[a] = out
				}
				return partial, nil
			},
			func(r sched.Result[*Plan]) bool {
				if r.Err != nil {
					ok = false
					return false
				}
				plan.MergeFrom(r.Value)
				return true
			})
	}
	if !ok {
		return analyzeSequential(tr, opts)
	}
	// MergeFrom unions edge lists in arrival order; canonicalize to the
	// sequential analyzer's sorted form.
	for _, lst := range plan.Interfere {
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
	}
	return plan
}

// shardObjects partitions object ids into at most nShards groups balanced
// by event count (greedy longest-first), deterministically: object order
// never affects the merged result, but a stable partition keeps run-to-run
// scheduling comparable.
func shardObjects(byObject map[trace.ObjID][]int, nShards int) [][]trace.ObjID {
	objs := make([]trace.ObjID, 0, len(byObject))
	for obj := range byObject {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool {
		li, lj := len(byObject[objs[i]]), len(byObject[objs[j]])
		if li != lj {
			return li > lj
		}
		return objs[i] < objs[j]
	})
	if nShards > len(objs) {
		nShards = len(objs)
	}
	if nShards == 0 {
		return nil
	}
	shards := make([][]trace.ObjID, nShards)
	load := make([]int, nShards)
	for _, obj := range objs {
		best := 0
		for s := 1; s < nShards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		shards[best] = append(shards[best], obj)
		load[best] += len(byObject[obj])
	}
	return shards
}
