// Package core implements the paper's primary contribution: the Waffle
// MemOrder bug detector (§4–§5).
//
// Waffle decomposes active delay injection into four design points and
// answers each differently from TSVD:
//
//  1. How to identify candidate locations — near-miss tracking plus a cheap
//     parent→child happens-before analysis over fork-propagated vector
//     clocks, instead of run-time happens-before inference (§4.1).
//  2. When to identify — in a dedicated delay-free preparation run whose
//     trace is analyzed offline, instead of the same run that injects (§4.2).
//  3. How long to delay — per-site variable lengths proportional to the
//     time gap observed in the unperturbed trace, instead of one fixed
//     constant (§4.3).
//  4. When to inject — probability decay plus interference-aware skipping
//     driven by a precomputed interference set, instead of unrestricted
//     parallel delays (§4.4).
//
// The package also houses the shared online identification engine that
// powers the WaffleBasic baseline (§3) and the "no preparation run"
// ablation of Table 7.
package core

import (
	"waffle/internal/obs"
	"waffle/internal/sim"
)

// Options configures a Waffle session. The zero value means "paper
// defaults"; the Disable* flags switch off one design point each, yielding
// the alternative designs evaluated in Table 7.
type Options struct {
	// Window is the near-miss window δ. The paper uses TSVD's default of
	// 100 ms for both Waffle and WaffleBasic (§6.1).
	Window sim.Duration

	// Alpha scales observed time gaps into injected delay lengths:
	// delay(ℓ) = Alpha · len(ℓ). The paper uses 1.15 (§4.3).
	Alpha float64

	// Decay is the probability decay constant λ: every unproductive delay
	// at a site lowers that site's future injection probability by Decay.
	Decay float64

	// FixedDelay is the delay length used when DisableCustomLengths is set
	// (and by WaffleBasic). The paper uses 100 ms (§3.2).
	FixedDelay sim.Duration

	// MinDelay floors computed variable delays so that a tiny observed gap
	// still yields a delay long enough to flip the order.
	MinDelay sim.Duration

	// InstrCost is the virtual cost the instrumentation adds to every
	// instrumented access (the proxy-function overhead).
	InstrCost sim.Duration

	// TraceCost is the additional per-access cost of trace logging during
	// the preparation run.
	TraceCost sim.Duration

	// MaxDetectionRuns bounds Session.Expose. The paper's evaluation caps
	// search at 50 runs (§6.2).
	MaxDetectionRuns int

	// TSO enables weak-memory analysis: programs run with per-thread store
	// buffers (SimProgram.TSO), the analyzer admits fork-ordered
	// write→read pairs as StaleRead candidates — order cannot invert, but
	// a buffered store can still be observed stale — and the injector
	// delays those stores' *visibility* (flush delays) instead of the
	// issuing thread. Off by default; every SC code path is untouched.
	TSO bool

	// AnalyzeWorkers shards trace analysis across this many workers (the
	// per-object pass-1 shards and per-instance pass-3 shards of
	// AnalyzeParallel). Zero or one means sequential analysis; the sharded
	// result is bit-identical either way.
	AnalyzeWorkers int

	// Metrics receives campaign observability counters (delays injected and
	// skipped, decay floors, pairs pruned, phase spans). Nil disables all
	// instrumentation at effectively zero cost: hooks hold nil handles whose
	// methods no-op. Instruments only observe — they never consume
	// randomness or feed back into decisions — so plans and injection
	// schedules are byte-identical with and without a registry.
	Metrics *obs.Registry

	// Ablations (Table 7). Each disables exactly one §4 design point.

	// DisableParentChild skips the fork-clock pruning of §4.1, keeping
	// causally ordered pairs in the candidate set.
	DisableParentChild bool

	// DisablePrepRun abandons the dedicated preparation run of §4.2 and
	// identifies candidates online, in the same runs that inject.
	DisablePrepRun bool

	// DisableCustomLengths replaces §4.3's variable delays with FixedDelay.
	DisableCustomLengths bool

	// DisableInterferenceControl drops §4.4's interference set: delays are
	// injected even while an interfering delay is in flight.
	DisableInterferenceControl bool
}

// Paper-default parameter values.
const (
	DefaultWindow     = 100 * sim.Millisecond
	DefaultAlpha      = 1.15
	DefaultDecay      = 0.1
	DefaultFixedDelay = 100 * sim.Millisecond
	DefaultMinDelay   = 100 * sim.Microsecond
	DefaultInstrCost  = 700 * sim.Microsecond
	DefaultTraceCost  = 250 * sim.Microsecond
	DefaultMaxRuns    = 50
)

// WithDefaults returns o with every unset numeric field replaced by the
// paper's default value.
func (o Options) WithDefaults() Options {
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	if o.Alpha <= 0 {
		o.Alpha = DefaultAlpha
	}
	if o.Decay <= 0 {
		o.Decay = DefaultDecay
	}
	if o.FixedDelay <= 0 {
		o.FixedDelay = DefaultFixedDelay
	}
	if o.MinDelay <= 0 {
		o.MinDelay = DefaultMinDelay
	}
	if o.InstrCost < 0 {
		o.InstrCost = 0
	} else if o.InstrCost == 0 {
		o.InstrCost = DefaultInstrCost
	}
	if o.TraceCost < 0 {
		o.TraceCost = 0
	} else if o.TraceCost == 0 {
		o.TraceCost = DefaultTraceCost
	}
	if o.MaxDetectionRuns <= 0 {
		o.MaxDetectionRuns = DefaultMaxRuns
	}
	if o.AnalyzeWorkers < 0 {
		o.AnalyzeWorkers = 0
	}
	return o
}

// delayFor computes the delay to inject at a site whose recorded gap length
// is gapLen, honoring the DisableCustomLengths ablation.
func (o Options) delayFor(gapLen sim.Duration) sim.Duration {
	if o.DisableCustomLengths {
		return o.FixedDelay
	}
	d := sim.Duration(float64(gapLen) * o.Alpha)
	if d < o.MinDelay {
		d = o.MinDelay
	}
	return d
}
