package core

import (
	"sync"

	"waffle/internal/obs"
	"waffle/internal/sim"
	"waffle/internal/trace"
	"waffle/internal/vclock"
)

// OnlineConfig selects which design points the online engine applies.
// WaffleBasic (§3) is the TSVD-faithful configuration: same-run
// identification and injection, fixed-length delays, happens-before
// inference, no parent-child pruning, no interference control. The
// "no preparation run" ablation of Table 7 is the Waffle-featured
// configuration: variable lengths, fork-clock pruning, and online
// interference control — but identification still happens in the runs
// that inject.
type OnlineConfig struct {
	Options

	// VariableLengths injects α·gap delays instead of FixedDelay.
	VariableLengths bool
	// ParentChildPruning applies the fork-clock filter while identifying
	// candidates online.
	ParentChildPruning bool
	// InterferenceControl builds the interference relation online and
	// skips delays whose partners are in flight.
	InterferenceControl bool
	// HBInference removes candidate pairs when a delay at ℓ1 appears to
	// propagate as a stall of ℓ2's thread (§2). This inference turns
	// unreliable under delay overlap (§4.1) — the engine models that
	// failure mode faithfully by trusting the stall signal unconditionally.
	HBInference bool
	// HistoryDepth bounds the per-object access history consulted by
	// near-miss tracking. Zero means DefaultHistoryDepth.
	HistoryDepth int
}

// DefaultHistoryDepth bounds per-object histories in the online engine.
const DefaultHistoryDepth = 32

// WaffleBasicConfig returns the configuration described in §3: TSVD's
// design transplanted onto MemOrder instrumentation sites.
func WaffleBasicConfig(opts Options) OnlineConfig {
	return OnlineConfig{Options: opts, HBInference: true}
}

// NoPrepConfig returns the Table 7 "no preparation run" ablation: Waffle's
// other three design points, applied online.
func NoPrepConfig(opts Options) OnlineConfig {
	return OnlineConfig{
		Options:             opts,
		VariableLengths:     true,
		ParentChildPruning:  true,
		InterferenceControl: true,
	}
}

// histEv is one remembered access.
type histEv struct {
	site  trace.SiteID
	tid   int
	t     sim.Time
	kind  trace.Kind
	clock *vclock.Clock
}

// delayRec is the last completed delay at a site, kept for HB inference.
type delayRec struct {
	start, end sim.Time
	tid        int
	valid      bool
}

// Online is the same-run identification + injection engine. Candidate
// pairs, per-site gaps, probabilities, interference edges, and
// HB-inference removals persist across runs (call BeginRun between runs);
// per-run histories reset.
//
// Like the Injector, the engine is clock-agnostic (it runs against any
// Exec) and mutex-guarded so concurrent live goroutines can share it; the
// lock is never held across an injected sleep.
type Online struct {
	cfg OnlineConfig

	mu sync.Mutex // guards all mutable state below

	// Persistent across runs.
	pairs     map[pairKey]*Pair
	bySite    map[trace.SiteID][]*Pair // pairs keyed by delay site
	byTarget  map[trace.SiteID][]*Pair // pairs keyed by target site
	lens      map[trace.SiteID]sim.Duration
	probs     map[trace.SiteID]float64
	interfere map[trace.SiteID]map[trace.SiteID]bool
	removed   map[pairKey]bool
	runs      int

	// Per-run state.
	objHist    map[trace.ObjID][]histEv
	threadHist map[int][]histEv
	lastAccess map[int]sim.Time
	seenAccess map[int]bool
	lastDelay  map[trace.SiteID]delayRec
	active     map[trace.SiteID]int
	activeTot  int
	stats      DelayStats

	met        injectMetrics
	mHBRemoved *obs.Counter // online.pairs_removed_hb
}

// NewOnline returns an engine with empty persistent state. Call BeginRun
// before each run.
func NewOnline(cfg OnlineConfig) *Online {
	cfg.Options = cfg.Options.WithDefaults()
	if cfg.HistoryDepth <= 0 {
		cfg.HistoryDepth = DefaultHistoryDepth
	}
	return &Online{
		cfg:        cfg,
		pairs:      make(map[pairKey]*Pair),
		bySite:     make(map[trace.SiteID][]*Pair),
		byTarget:   make(map[trace.SiteID][]*Pair),
		lens:       make(map[trace.SiteID]sim.Duration),
		probs:      make(map[trace.SiteID]float64),
		interfere:  make(map[trace.SiteID]map[trace.SiteID]bool),
		removed:    make(map[pairKey]bool),
		met:        newInjectMetrics(cfg.Metrics),
		mHBRemoved: cfg.Metrics.Counter("online.pairs_removed_hb"),
	}
}

// BeginRun resets per-run state, keeping the learned candidate set.
func (o *Online) BeginRun() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.runs++
	o.objHist = make(map[trace.ObjID][]histEv)
	o.threadHist = make(map[int][]histEv)
	o.lastAccess = make(map[int]sim.Time)
	o.seenAccess = make(map[int]bool)
	o.lastDelay = make(map[trace.SiteID]delayRec)
	o.active = make(map[trace.SiteID]int)
	o.activeTot = 0
	o.stats = DelayStats{}
}

// Stats returns the current run's injection activity. The returned copy
// owns its Intervals slice — callers may read it while the engine keeps
// recording (live runs leak delayed goroutines past their timeout).
func (o *Online) Stats() DelayStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats.Clone()
}

// CurrentOptions implements Retunable.
func (o *Online) CurrentOptions() Options {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.cfg.Options
}

// SetOptions implements Retunable: swaps the numeric engine options
// (alpha, decay, window, costs) under the engine lock. The design-point
// flags in OnlineConfig and the metrics wiring are fixed at construction:
// instrument handles were resolved then, so a different Metrics registry
// in opts is ignored.
func (o *Online) SetOptions(opts Options) {
	o.mu.Lock()
	defer o.mu.Unlock()
	opts = opts.WithDefaults()
	opts.Metrics = o.cfg.Metrics
	o.cfg.Options = opts
}

// LiveSites implements SiteProber: delay sites that still have an
// un-removed candidate pair and positive probability.
func (o *Online) LiveSites() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for site, p := range o.probs {
		if p > 0 && o.siteLive(site) {
			n++
		}
	}
	return n
}

// Runs reports how many runs have begun.
func (o *Online) Runs() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.runs
}

// Pairs returns a snapshot of the live candidate set S.
func (o *Online) Pairs() []Pair {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]Pair, 0, len(o.pairs))
	for k, p := range o.pairs {
		if !o.removed[k] {
			out = append(out, *p)
		}
	}
	return out
}

// InjectionSiteCount reports the number of distinct delay sites ever
// admitted to S (Table 2's "Injection Sites" metric).
func (o *Online) InjectionSiteCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.lens)
}

// OnAccess implements memmodel.Hook — the simulator entry point.
func (o *Online) OnAccess(t *sim.Thread, site trace.SiteID, obj trace.ObjID, kind trace.Kind, dur sim.Duration) {
	o.Access(t, site, obj, kind, dur)
}

// Access is the clock-agnostic hook body. Order of duties mirrors
// WaffleBasic: instrumentation cost, HB-inference bookkeeping, the
// delay-or-not decision for already-known candidate sites, then near-miss
// identification using the post-delay timestamp.
func (o *Online) Access(e Exec, site trace.SiteID, obj trace.ObjID, kind trace.Kind, dur sim.Duration) {
	if o.cfg.InstrCost > 0 {
		e.Sleep(o.cfg.InstrCost)
	}
	if !kind.IsMemOrder() {
		// Thread-unsafe API calls are outside the MemOrder engine's domain.
		o.mu.Lock()
		o.noteAccess(e, site, obj, kind)
		o.mu.Unlock()
		return
	}
	o.maybeDelay(e, site)
	o.mu.Lock()
	if o.cfg.HBInference {
		// The propagation check happens when ℓ2 actually executes — after
		// any delay injected at ℓ2 itself. That is precisely why overlap
		// blinds the heuristic (§4.1): a thread stalled by its own delay
		// is indistinguishable from one stalled by synchronization.
		o.inferHappensBefore(e, site)
	}
	o.identify(e, site, obj, kind)
	o.noteAccess(e, site, obj, kind)
	o.mu.Unlock()
}

// maybeDelay runs the delay-or-not decision for one access. The engine
// lock is dropped across the sleep itself.
func (o *Online) maybeDelay(e Exec, site trace.SiteID) {
	o.mu.Lock()
	if !o.siteLive(site) {
		o.mu.Unlock()
		return
	}
	p := o.probs[site]
	if p <= 0 {
		o.mu.Unlock()
		return
	}
	if e.Rand() >= p {
		o.mu.Unlock()
		return
	}
	if o.cfg.InterferenceControl && o.interferenceLive(site) {
		o.stats.Skipped++
		o.mu.Unlock()
		o.met.skipped.Inc()
		return
	}
	var d sim.Duration
	if o.cfg.VariableLengths {
		d = o.cfg.delayFor(o.lens[site])
	} else {
		d = o.cfg.FixedDelay
	}
	start := e.Now()
	o.active[site]++
	o.activeTot++
	o.mu.Unlock()
	// Release and record via defer: a bug-exposing delay tears this thread
	// down mid-Sleep, and a leaked counter would keep interference control
	// skipping injections at partner sites until the run state resets. The
	// interval is recorded here too, with the end clamped to the time
	// actually slept — recording [start, start+d] up front overcounts
	// Table 6's cumulative delay when a fault or cancel truncates the
	// sleep (e.Now() during the unwind reflects the teardown point).
	defer func() {
		end := e.Now()
		if lim := start.Add(d); end > lim {
			end = lim
		}
		if end < start {
			end = start
		}
		iv := Interval{Site: site, Start: start, End: end}
		o.mu.Lock()
		o.active[site]--
		o.activeTot--
		o.stats.add(iv)
		o.mu.Unlock()
		o.met.observeDelay(iv)
	}()
	e.Sleep(d)

	np := p - o.cfg.Decay
	if np < 0 {
		np = 0
	}
	if np == 0 && p > 0 {
		o.met.floorHits.Inc()
	}
	o.mu.Lock()
	o.lastDelay[site] = delayRec{start: start, end: start.Add(d), tid: e.ID(), valid: true}
	o.probs[site] = np
	o.mu.Unlock()
}

// siteLive reports whether site still delays for at least one live pair.
// Callers hold o.mu.
func (o *Online) siteLive(site trace.SiteID) bool {
	for _, p := range o.bySite[site] {
		if !o.removed[p.key()] {
			return true
		}
	}
	return false
}

// interferenceLive reports in-flight interference. Callers hold o.mu.
func (o *Online) interferenceLive(site trace.SiteID) bool {
	if o.activeTot == 0 {
		return false
	}
	for other := range o.interfere[site] {
		if o.active[other] > 0 {
			return true
		}
	}
	return false
}

// inferHappensBefore implements the TSVD-style heuristic (§2): if a delay
// injected at ℓ1 was followed by this thread staying silent for the whole
// delay window and then arriving at ℓ2 with {ℓ1,ℓ2} ∈ S, infer a
// happens-before edge and remove the pair. Under overlapping delays the
// stall may actually be another delay — the heuristic cannot tell (§4.1) —
// so pairs are removed spuriously; that is WaffleBasic's documented
// failure mode, reproduced here mechanically. Callers hold o.mu.
func (o *Online) inferHappensBefore(e Exec, site trace.SiteID) {
	now := e.Now()
	for _, p := range o.byTarget[site] {
		k := p.key()
		if o.removed[k] {
			continue
		}
		ld := o.lastDelay[p.Delay]
		if !ld.valid || ld.tid == e.ID() {
			continue
		}
		// The delay must have completed recently, and this thread must
		// have been silent across its whole window.
		if ld.end > now || now.Sub(ld.end) > o.cfg.Window {
			continue
		}
		if !o.seenAccess[e.ID()] {
			continue // a thread with no history cannot be judged stalled
		}
		if o.lastAccess[e.ID()] < ld.start {
			o.removed[k] = true
			o.mHBRemoved.Inc()
		}
	}
}

// identify is online near-miss tracking: match the current access against
// the object's recent history (§3.1), updating S, gaps, probabilities, and
// (when enabled) interference edges. Callers hold o.mu.
func (o *Online) identify(e Exec, site trace.SiteID, obj trace.ObjID, kind trace.Kind) {
	if kind != trace.KindUse && kind != trace.KindDispose {
		return
	}
	now := e.Now()
	var clk *vclock.Clock
	if o.cfg.ParentChildPruning {
		clk = execClock(e)
	}
	for _, h := range o.objHist[obj] {
		gap := now.Sub(h.t)
		if gap < 0 || gap >= o.cfg.Window {
			continue
		}
		if h.tid == e.ID() {
			continue
		}
		var bk BugKind
		switch {
		case h.kind == trace.KindInit && kind == trace.KindUse:
			bk = UseBeforeInit
		case h.kind == trace.KindUse && kind == trace.KindDispose:
			bk = UseAfterFree
		default:
			continue
		}
		if o.cfg.ParentChildPruning && vclock.Ordered(h.clock, clk) {
			continue
		}
		o.admit(e, h.site, site, bk, gap, h.t, now)
	}
}

// admit adds or refreshes a candidate pair discovered online. Callers hold
// o.mu.
func (o *Online) admit(e Exec, delaySite, targetSite trace.SiteID, bk BugKind, gap sim.Duration, t1, t2 sim.Time) {
	k := pairKey{delay: delaySite, target: targetSite, kind: bk}
	if o.removed[k] {
		return
	}
	p, ok := o.pairs[k]
	if !ok {
		p = &Pair{Delay: delaySite, Target: targetSite, Kind: bk}
		o.pairs[k] = p
		o.bySite[delaySite] = append(o.bySite[delaySite], p)
		o.byTarget[targetSite] = append(o.byTarget[targetSite], p)
		if _, seen := o.probs[delaySite]; !seen {
			o.probs[delaySite] = 1.0
		}
	}
	p.Count++
	if gap > p.Gap {
		p.Gap = gap
	}
	if gap > o.lens[delaySite] {
		o.lens[delaySite] = gap
	}
	if o.cfg.InterferenceControl {
		// Current thread is ℓ2's thread: any candidate site it exercised
		// in [τ1−δ, τ2) interferes with ℓ1 (§4.4, applied online).
		lo := t1.Add(-o.cfg.Window)
		for _, h := range o.threadHist[e.ID()] {
			if h.t < lo || h.t > t2 {
				continue
			}
			if _, isInj := o.lens[h.site]; isInj {
				o.addInterference(delaySite, h.site)
			}
		}
	}
}

func (o *Online) addInterference(a, b trace.SiteID) {
	if o.interfere[a] == nil {
		o.interfere[a] = make(map[trace.SiteID]bool)
	}
	if o.interfere[b] == nil {
		o.interfere[b] = make(map[trace.SiteID]bool)
	}
	o.interfere[a][b] = true
	o.interfere[b][a] = true
}

// noteAccess appends the access to the object and thread histories.
// Callers hold o.mu.
func (o *Online) noteAccess(e Exec, site trace.SiteID, obj trace.ObjID, kind trace.Kind) {
	now := e.Now()
	ev := histEv{site: site, tid: e.ID(), t: now, kind: kind, clock: execClock(e)}
	o.objHist[obj] = appendBounded(o.objHist[obj], ev, o.cfg.HistoryDepth)
	o.threadHist[e.ID()] = appendBounded(o.threadHist[e.ID()], ev, o.cfg.HistoryDepth)
	o.lastAccess[e.ID()] = now
	o.seenAccess[e.ID()] = true
}

// appendBounded appends keeping at most depth entries (oldest dropped).
func appendBounded(h []histEv, ev histEv, depth int) []histEv {
	h = append(h, ev)
	if len(h) > depth {
		copy(h, h[1:])
		h = h[:len(h)-1]
	}
	return h
}
