package core

import (
	"encoding/json"
	"io"

	"waffle/internal/memmodel"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// Machine-readable bug reports: §5 says the runtime records "the relevant
// run-time context (i.e., faulty input, candidate locations involved,
// stack traces for all threads, and delay value information) as part of
// the bug report". This is that artifact as JSON, consumed by CI
// integrations and by the replay harness.

type bugReportJSON struct {
	Program string `json:"program"`
	Tool    string `json:"tool"`
	Kind    string `json:"kind"`
	Run     int    `json:"run"`
	Seed    int64  `json:"seed"`

	Fault struct {
		Error    string   `json:"error"`
		Thread   int      `json:"thread"`
		Name     string   `json:"thread_name"`
		AtUS     int64    `json:"at_us"`
		Op       string   `json:"op"`
		Stacks   []string `json:"stacks"`
		Site     string   `json:"site"`
		Object   int64    `json:"object"`
		ObjName  string   `json:"object_name"`
		RefState string   `json:"ref_state"`
	} `json:"fault"`

	Candidates []Pair `json:"candidates"`

	Delays struct {
		Count   int   `json:"count"`
		TotalUS int64 `json:"total_us"`
		Skipped int   `json:"skipped"`
	} `json:"delays"`
}

// WriteJSON serializes the report.
func (b *BugReport) WriteJSON(w io.Writer) error {
	var out bugReportJSON
	out.Program = b.Program
	out.Tool = b.Tool
	out.Kind = b.Kind().String()
	out.Run = b.Run
	out.Seed = b.Seed
	if b.Fault != nil {
		out.Fault.Error = b.Fault.Err.Error()
		out.Fault.Thread = b.Fault.Thread
		out.Fault.Name = b.Fault.Name
		out.Fault.AtUS = int64(b.Fault.T)
		out.Fault.Op = b.Fault.Op
		out.Fault.Stacks = b.Fault.Stacks
	}
	if b.NullRef != nil {
		out.Fault.Site = string(b.NullRef.Site)
		out.Fault.Object = int64(b.NullRef.Obj)
		out.Fault.ObjName = b.NullRef.Name
		out.Fault.RefState = b.NullRef.State.String()
	}
	out.Candidates = b.Candidates
	out.Delays.Count = b.Delays.Count
	out.Delays.TotalUS = int64(b.Delays.Total)
	out.Delays.Skipped = b.Delays.Skipped

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadBugReportJSON loads a report written by WriteJSON. The fault is
// reconstructed to the fidelity the wire format carries (enough for
// replay: seed, site, object, kind, candidates).
func ReadBugReportJSON(r io.Reader) (*BugReport, error) {
	var in bugReportJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	b := &BugReport{
		Program:    in.Program,
		Tool:       in.Tool,
		Run:        in.Run,
		Seed:       in.Seed,
		Candidates: in.Candidates,
	}
	state := memmodel.StateNil
	if in.Fault.RefState == memmodel.StateDisposed.String() {
		state = memmodel.StateDisposed
	}
	b.NullRef = &memmodel.NullRefError{
		Obj:   trace.ObjID(in.Fault.Object),
		Name:  in.Fault.ObjName,
		Site:  trace.SiteID(in.Fault.Site),
		State: state,
	}
	b.Fault = &sim.Fault{
		Err:    b.NullRef,
		Thread: in.Fault.Thread,
		Name:   in.Fault.Name,
		T:      sim.Time(in.Fault.AtUS),
		Op:     in.Fault.Op,
		Stacks: in.Fault.Stacks,
	}
	b.Delays = DelayStats{
		Count:   in.Delays.Count,
		Total:   sim.Duration(in.Delays.TotalUS),
		Skipped: in.Delays.Skipped,
	}
	return b, nil
}
