package core

import (
	"encoding/json"
	"io"

	"waffle/internal/memmodel"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// Machine-readable bug reports: §5 says the runtime records "the relevant
// run-time context (i.e., faulty input, candidate locations involved,
// stack traces for all threads, and delay value information) as part of
// the bug report". This is that artifact as JSON, consumed by CI
// integrations and by the replay harness.

type bugReportJSON struct {
	Program string `json:"program"`
	Tool    string `json:"tool"`
	Kind    string `json:"kind"`
	Run     int    `json:"run"`
	Seed    int64  `json:"seed"`

	Fault struct {
		Error    string   `json:"error"`
		Thread   int      `json:"thread"`
		Name     string   `json:"thread_name"`
		AtUS     int64    `json:"at_us"`
		Op       string   `json:"op"`
		Stacks   []string `json:"stacks"`
		Site     string   `json:"site"`
		Object   int64    `json:"object"`
		ObjName  string   `json:"object_name"`
		RefState string   `json:"ref_state"`

		// Stale-read extras (TSO mode only; absent on SC reports, keeping
		// the sequential-consistency wire form byte-identical).
		CoherentState string `json:"coherent_state,omitempty"`
		PendingSite   string `json:"pending_site,omitempty"`
		PendingKind   string `json:"pending_kind,omitempty"`
		PendingTID    int    `json:"pending_tid,omitempty"`
		VisibleAtUS   int64  `json:"visible_at_us,omitempty"`
	} `json:"fault"`

	// Fence is the stale-read repair proposal (TSO mode only).
	Fence *FenceProposal `json:"fence,omitempty"`

	Candidates []Pair `json:"candidates"`

	Delays struct {
		Count   int   `json:"count"`
		TotalUS int64 `json:"total_us"`
		Skipped int   `json:"skipped"`
	} `json:"delays"`
}

// WriteJSON serializes the report.
func (b *BugReport) WriteJSON(w io.Writer) error {
	var out bugReportJSON
	out.Program = b.Program
	out.Tool = b.Tool
	out.Kind = b.Kind().String()
	out.Run = b.Run
	out.Seed = b.Seed
	if b.Fault != nil {
		out.Fault.Error = b.Fault.Err.Error()
		out.Fault.Thread = b.Fault.Thread
		out.Fault.Name = b.Fault.Name
		out.Fault.AtUS = int64(b.Fault.T)
		out.Fault.Op = b.Fault.Op
		out.Fault.Stacks = b.Fault.Stacks
	}
	if b.NullRef != nil {
		out.Fault.Site = string(b.NullRef.Site)
		out.Fault.Object = int64(b.NullRef.Obj)
		out.Fault.ObjName = b.NullRef.Name
		out.Fault.RefState = b.NullRef.State.String()
	}
	if b.Stale != nil {
		out.Fault.Site = string(b.Stale.Site)
		out.Fault.Object = int64(b.Stale.Obj)
		out.Fault.ObjName = b.Stale.Name
		out.Fault.RefState = b.Stale.Observed.String()
		out.Fault.CoherentState = b.Stale.Coherent.String()
		out.Fault.PendingSite = string(b.Stale.PendingSite)
		out.Fault.PendingKind = b.Stale.PendingKind.String()
		out.Fault.PendingTID = b.Stale.PendingTID
		out.Fault.VisibleAtUS = int64(b.Stale.VisibleAt)
	}
	out.Fence = b.Fence
	out.Candidates = b.Candidates
	out.Delays.Count = b.Delays.Count
	out.Delays.TotalUS = int64(b.Delays.Total)
	out.Delays.Skipped = b.Delays.Skipped

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadBugReportJSON loads a report written by WriteJSON. The fault is
// reconstructed to the fidelity the wire format carries (enough for
// replay: seed, site, object, kind, candidates).
func ReadBugReportJSON(r io.Reader) (*BugReport, error) {
	var in bugReportJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	b := &BugReport{
		Program:    in.Program,
		Tool:       in.Tool,
		Run:        in.Run,
		Seed:       in.Seed,
		Candidates: in.Candidates,
	}
	var faultErr error
	if in.Kind == StaleRead.String() {
		b.Stale = &memmodel.StaleReadError{
			Obj:         trace.ObjID(in.Fault.Object),
			Name:        in.Fault.ObjName,
			Site:        trace.SiteID(in.Fault.Site),
			Observed:    stateFromString(in.Fault.RefState),
			Coherent:    stateFromString(in.Fault.CoherentState),
			PendingSite: trace.SiteID(in.Fault.PendingSite),
			PendingKind: kindFromString(in.Fault.PendingKind),
			PendingTID:  in.Fault.PendingTID,
			VisibleAt:   sim.Time(in.Fault.VisibleAtUS),
		}
		b.Fence = in.Fence
		faultErr = b.Stale
	} else {
		b.NullRef = &memmodel.NullRefError{
			Obj:   trace.ObjID(in.Fault.Object),
			Name:  in.Fault.ObjName,
			Site:  trace.SiteID(in.Fault.Site),
			State: stateFromString(in.Fault.RefState),
		}
		faultErr = b.NullRef
	}
	b.Fault = &sim.Fault{
		Err:    faultErr,
		Thread: in.Fault.Thread,
		Name:   in.Fault.Name,
		T:      sim.Time(in.Fault.AtUS),
		Op:     in.Fault.Op,
		Stacks: in.Fault.Stacks,
	}
	b.Delays = DelayStats{
		Count:   in.Delays.Count,
		Total:   sim.Duration(in.Delays.TotalUS),
		Skipped: in.Delays.Skipped,
	}
	return b, nil
}

// stateFromString parses a lifecycle state rendered by State.String.
func stateFromString(s string) memmodel.State {
	switch s {
	case memmodel.StateLive.String():
		return memmodel.StateLive
	case memmodel.StateDisposed.String():
		return memmodel.StateDisposed
	default:
		return memmodel.StateNil
	}
}

// kindFromString parses an access kind rendered by Kind.String.
func kindFromString(s string) trace.Kind {
	for k := trace.KindInit; k <= trace.KindAPIWrite; k++ {
		if k.String() == s {
			return k
		}
	}
	return trace.KindInit
}
