package core

import (
	"bytes"
	"testing"
	"time"

	"waffle/internal/sim"
	"waffle/internal/trace"
)

// shiftTrace returns a copy of tr with every timestamp offset by base —
// turning virtual-scale ticks into the absolute wall-clock-nanosecond
// magnitudes a live runtime could stamp.
func shiftTrace(tr *trace.Trace, base sim.Time) *trace.Trace {
	out := &trace.Trace{Label: tr.Label, Seed: tr.Seed, End: tr.End + base}
	out.Events = append([]trace.Event(nil), tr.Events...)
	for i := range out.Events {
		out.Events[i].T += base
	}
	return out
}

// The analyzer consumes only time differences, so a trace shifted to
// wall-clock magnitude must produce the byte-identical plan — in memory
// and through the WFTS stream path. This pins the live-mode contract:
// nothing in analysis or the codecs truncates, wraps, or rescales large
// int64 timestamps.
func TestAnalyzeWallClockMagnitudeTimestamps(t *testing.T) {
	base := sim.Time(time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC).UnixNano())
	for seed := int64(1); seed <= 5; seed++ {
		tr := genTrace(seed, 100)
		want := planBytes(t, Analyze(tr, Options{}))

		shifted := shiftTrace(tr, base)
		if got := planBytes(t, Analyze(shifted, Options{})); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: wall-clock shift changed the plan:\n%s\nvs\n%s", seed, got, want)
		}
		if got := planBytes(t, Analyze(shifted, Options{AnalyzeWorkers: 4})); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: sharded analysis of shifted trace diverged", seed)
		}
		plan, err := AnalyzeStream(streamOf(t, shifted), Options{})
		if err != nil {
			t.Fatalf("seed %d: AnalyzeStream on shifted trace: %v", seed, err)
		}
		if got := planBytes(t, plan); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: AnalyzeStream of shifted trace diverged:\n%s\nvs\n%s", seed, got, want)
		}
	}
}
