package core

import (
	"testing"

	"waffle/internal/sim"
	"waffle/internal/trace"
	"waffle/internal/vclock"
)

// Regression: evictBefore used to copy survivors down but leave the
// evicted tail of the backing array populated, so stale Events — and the
// vector clocks they point to — stayed reachable for the life of the
// stream. The tail past the returned length must be zeroed.
func TestEvictBeforeClearsTail(t *testing.T) {
	clk := vclock.New(1)
	buf := make([]trace.Event, 0, 8)
	for i := 0; i < 6; i++ {
		buf = append(buf, trace.Event{Seq: i, T: sim.Time(10 * (i + 1)), TID: 1, Site: "a.go:1", Clock: clk})
	}
	backing := buf[:cap(buf)]

	out := evictBefore(buf, sim.Time(40)) // evicts the first 4 events
	if len(out) != 2 {
		t.Fatalf("evictBefore kept %d events, want 2", len(out))
	}
	if out[0].T != 50 || out[1].T != 60 {
		t.Fatalf("wrong survivors: T=%d,%d", out[0].T, out[1].T)
	}
	for i := len(out); i < len(backing); i++ {
		if backing[i] != (trace.Event{}) {
			t.Fatalf("backing[%d] not zeroed: %+v (pins its clock)", i, backing[i])
		}
	}
}

// evictBefore with nothing to evict must leave the buffer untouched.
func TestEvictBeforeNoop(t *testing.T) {
	buf := []trace.Event{{Seq: 0, T: 100, TID: 1}}
	out := evictBefore(buf, 50)
	if len(out) != 1 || out[0].T != 100 {
		t.Fatalf("no-op eviction changed the buffer: %+v", out)
	}
}
