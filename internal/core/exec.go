package core

import (
	"waffle/internal/sim"
	"waffle/internal/vclock"
)

// Exec abstracts the executing thread from the injection engines' point of
// view: a clock to read, a sleeper to park on, a per-run random stream, and
// a thread identity. The simulator's *sim.Thread implements it on virtual
// time; internal/live implements it on the monotonic wall clock with real
// time.Sleep delays. Everything the Injector and Online engines do is
// phrased against this interface, so "what time means" is a property of the
// program under test, not of the detection algorithm.
//
// Timestamps and durations keep the sim.Time/sim.Duration types — they are
// opaque int64 ticks to the engines, which only ever subtract, compare, and
// scale them. The simulator's tick is one virtual microsecond; the live
// runtime's tick is one wall-clock nanosecond.
type Exec interface {
	// ID identifies the executing thread within its run.
	ID() int
	// Now reads the clock, in the implementation's ticks.
	Now() sim.Time
	// Sleep parks the thread for d ticks — the delay-injection primitive.
	Sleep(d sim.Duration)
	// Rand returns a float64 in [0,1) from the run's seeded stream. The
	// engines call it under their own locks, so implementations shared
	// between threads need no additional ordering guarantees beyond being
	// safe for serialized use.
	Rand() float64
}

// ClockedExec is an Exec that carries its fork vector clock explicitly.
// Live threads implement it — they have no sim TLS for vclock.Of to read.
type ClockedExec interface {
	Exec
	// ForkClock returns the thread's current fork clock snapshot (nil if
	// the runtime does not track one).
	ForkClock() *vclock.Clock
}

// execClock extracts the fork clock of an executing thread: sim threads
// carry it in TLS, live threads implement ClockedExec.
func execClock(e Exec) *vclock.Clock {
	switch x := e.(type) {
	case *sim.Thread:
		return vclock.Of(x)
	case ClockedExec:
		return x.ForkClock()
	}
	return nil
}
