package core

import (
	"fmt"

	"waffle/internal/memmodel"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// Replay support: a BugReport carries everything needed to reproduce the
// exposure deterministically — the run's seed and the candidate pairs
// whose delays manifested the fault. Replay re-executes with a minimal
// plan (only the culprit site, probability 1, no decay) and confirms the
// same fault fires: the validation step that turns a probabilistic search
// hit into a deterministic reproducer a developer can iterate on.

// ReplayResult reports one replay attempt.
type ReplayResult struct {
	Reproduced bool
	Fault      *sim.Fault
	NullRef    *memmodel.NullRefError
	Stale      *memmodel.StaleReadError // set when the replayed fault is a stale read
	Delays     DelayStats
	End        sim.Time
}

// MinimalPlan derives the smallest plan that can reproduce the report: the
// candidate pairs involving the faulting site, with injection pinned to
// probability 1 at their delay sites.
func MinimalPlan(bug *BugReport, opts Options) *Plan {
	opts = opts.WithDefaults()
	plan := &Plan{
		Label:     bug.Program + "/replay",
		Window:    opts.Window,
		DelayLen:  make(map[trace.SiteID]sim.Duration),
		Interfere: make(map[trace.SiteID][]trace.SiteID),
		Probs:     make(map[trace.SiteID]float64),
	}
	for _, p := range bug.Candidates {
		// Keep only the pairs that produced this fault. For a
		// use-after-free the delayed operation is the faulting access
		// itself; for a use-before-init the faulting access is the target
		// of a delayed initialization. Keeping any other involved pair
		// would reintroduce the very delay interference (Figure 4a) the
		// exposing run avoided.
		switch bug.Kind() {
		case UseAfterFree:
			if p.Kind != UseAfterFree || p.Delay != bug.FaultSite() {
				continue
			}
		case UseBeforeInit:
			if p.Kind != UseBeforeInit || p.Target != bug.FaultSite() {
				continue
			}
		case StaleRead:
			// The faulting access is the stale read — the target of the
			// candidate pair whose delay site is the buffered store the
			// proposal fences.
			if p.Kind != StaleRead || p.Target != bug.FaultSite() {
				continue
			}
		}
		plan.Pairs = append(plan.Pairs, p)
		if p.Gap > plan.DelayLen[p.Delay] {
			plan.DelayLen[p.Delay] = p.Gap
		}
		plan.Probs[p.Delay] = 1.0
	}
	// Fully serialize: at most one delay in flight during replay,
	// including across dynamic instances of one site — the Figure 4b
	// self-interference case, where delaying both instances of the
	// culprit site cancels the reproduction.
	var sites []trace.SiteID
	for s := range plan.Probs {
		sites = append(sites, s)
	}
	for _, s := range sites {
		plan.Interfere[s] = append([]trace.SiteID(nil), sites...)
	}
	return plan
}

// Replay re-runs the program under the minimal plan at the exposing seed.
func Replay(prog Program, bug *BugReport, opts Options) ReplayResult {
	opts = opts.WithDefaults()
	// Replay is deterministic: no decay, injection always fires.
	opts.Decay = 1e-9
	plan := MinimalPlan(bug, opts)
	inj := NewInjector(plan, opts)
	res := prog.Execute(bug.Seed, inj)
	out := ReplayResult{Fault: res.Fault, Delays: inj.Stats(), End: res.End}
	if res.Fault != nil {
		if nre, ok := faultNullRef(res.Fault); ok {
			out.NullRef = nre
			out.Reproduced = nre.Site == bug.FaultSite()
		} else if sre, ok := res.Fault.Err.(*memmodel.StaleReadError); ok {
			out.Stale = sre
			out.Reproduced = sre.Site == bug.FaultSite()
		}
	}
	return out
}

// faultNullRef extracts the NullRefError from a fault, if present.
func faultNullRef(f *sim.Fault) (*memmodel.NullRefError, bool) {
	nre, ok := f.Err.(*memmodel.NullRefError)
	return nre, ok
}

// String renders the replay verdict.
func (r ReplayResult) String() string {
	if r.Reproduced {
		var ferr error = r.NullRef
		if r.Stale != nil {
			ferr = r.Stale
		}
		return fmt.Sprintf("reproduced: %v after %d delay(s) (%v total)", ferr, r.Delays.Count, r.Delays.Total)
	}
	if r.Fault != nil {
		return fmt.Sprintf("different fault: %v", r.Fault)
	}
	return "not reproduced: run completed cleanly"
}
