package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"waffle/internal/obs"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// perturbTrace derives a successor campaign's trace: a random subset of
// objects goes dirty (events dropped or their site/kind rewritten), the
// rest keep their projections untouched, and a few fresh events are
// appended at the tail. Timestamps stay nondecreasing and clock pointers
// are shared with the source trace, like a real re-recording of a mostly
// unchanged program.
func perturbTrace(prev *trace.Trace, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	sites := []trace.SiteID{"s0", "s1", "s2", "s3", "s4", "s5"}
	kinds := []trace.Kind{trace.KindInit, trace.KindUse, trace.KindUse, trace.KindDispose}
	dirty := map[trace.ObjID]bool{}
	for o := trace.ObjID(1); o <= 4; o++ {
		if rng.Intn(2) == 0 {
			dirty[o] = true
		}
	}
	tr := &trace.Trace{Label: prev.Label, Seed: prev.Seed}
	for _, e := range prev.Events {
		if dirty[e.Obj] {
			switch rng.Intn(4) {
			case 0:
				continue // drop the event
			case 1:
				e.Site = sites[rng.Intn(len(sites))]
			case 2:
				e.Kind = kinds[rng.Intn(len(kinds))]
			}
		}
		e.Seq = len(tr.Events)
		tr.Events = append(tr.Events, e)
	}
	end := prev.End
	if len(prev.Events) > 0 {
		for i := 0; i < rng.Intn(10); i++ {
			src := prev.Events[rng.Intn(len(prev.Events))]
			end = end.Add(sim.Duration(rng.Intn(30_000)))
			tr.Events = append(tr.Events, trace.Event{
				Seq:   len(tr.Events),
				T:     end,
				TID:   src.TID,
				Site:  sites[rng.Intn(len(sites))],
				Obj:   trace.ObjID(1 + rng.Intn(4)),
				Kind:  kinds[rng.Intn(len(kinds))],
				Clock: src.Clock,
			})
		}
	}
	tr.End = end
	return tr
}

// Bootstrap (no previous campaign) must already match the sequential
// analyzer byte for byte.
func TestAnalyzeIncrementalBootstrapMatchesSequential(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		tr := genTrace(seed, 120)
		want := planBytes(t, Analyze(tr, Options{}))
		got := planBytes(t, AnalyzeIncremental(nil, nil, tr, Options{}))
		if !bytes.Equal(got, want) {
			t.Fatalf("seed %d: bootstrap incremental plan differs from Analyze", seed)
		}
	}
}

// Property: across chained campaigns with arbitrary per-object churn, the
// incremental analyzer stays bit-identical to a from-scratch Analyze of
// each trace — with and without parent-child pruning.
func TestAnalyzeIncrementalBitIdenticalProperty(t *testing.T) {
	err := quick.Check(func(rawSeed uint32, rawN uint8, noPC bool) bool {
		opts := Options{DisableParentChild: noPC}
		prevTrace := genTrace(int64(rawSeed), 10+int(rawN)%120)
		prev := AnalyzeIncremental(nil, nil, prevTrace, opts)
		if !bytes.Equal(planBytes(t, prev), planBytes(t, Analyze(prevTrace, opts))) {
			return false
		}
		// Chain three campaigns, each perturbing the previous trace.
		for hop := int64(0); hop < 3; hop++ {
			tr := perturbTrace(prevTrace, int64(rawSeed)*7+hop)
			got := AnalyzeIncremental(prev, prevTrace, tr, opts)
			if !bytes.Equal(planBytes(t, got), planBytes(t, Analyze(tr, opts))) {
				return false
			}
			prev, prevTrace = got, tr
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

// An unchanged trace must take the reuse path for every object and
// instance: no dirty rescans, and still the identical plan.
func TestAnalyzeIncrementalIdenticalTraceReusesEverything(t *testing.T) {
	tr := genTrace(11, 150)
	reg := obs.New()
	opts := Options{Metrics: reg}
	prev := AnalyzeIncremental(nil, nil, tr, opts)

	// Re-record the same run: same content, fresh slice.
	tr2 := &trace.Trace{Label: tr.Label, Seed: tr.Seed, End: tr.End, Events: append([]trace.Event(nil), tr.Events...)}
	before := reg.Counter("analyze.objects_dirty").Value()
	got := AnalyzeIncremental(prev, tr, tr2, opts)

	if !bytes.Equal(planBytes(t, got), planBytes(t, Analyze(tr2, Options{}))) {
		t.Fatal("clean re-analysis produced a different plan")
	}
	if d := reg.Counter("analyze.objects_dirty").Value() - before; d != 0 {
		t.Fatalf("clean re-analysis rescanned %d objects", d)
	}
	if reg.Counter("analyze.objects_clean").Value() == 0 {
		t.Fatal("no objects took the clean path")
	}
	if len(prev.Pairs) > 0 && reg.Counter("analyze.instances_reused").Value() == 0 {
		t.Fatal("no instances took the reuse path")
	}
}

// Decayed injection probabilities (what detection runs do to a plan) must
// not disturb the reuse machinery: analysis resets Probs anyway.
func TestAnalyzeIncrementalAfterProbabilityDecay(t *testing.T) {
	tr := genTrace(13, 150)
	prev := AnalyzeIncremental(nil, nil, tr, Options{})
	for s := range prev.Probs {
		prev.Probs[s] *= 0.25
	}
	tr2 := perturbTrace(tr, 99)
	got := AnalyzeIncremental(prev, tr, tr2, Options{})
	if !bytes.Equal(planBytes(t, got), planBytes(t, Analyze(tr2, Options{}))) {
		t.Fatal("incremental after decay differs from fresh Analyze")
	}
}

// Changed analysis options invalidate the cache: the call must fall back
// to a full scan under the new options rather than mixing regimes.
func TestAnalyzeIncrementalOptionsMismatchFallsBack(t *testing.T) {
	tr := genTrace(17, 120)
	prev := AnalyzeIncremental(nil, nil, tr, Options{Window: 20 * sim.Millisecond})
	tr2 := perturbTrace(tr, 5)

	for _, opts := range []Options{
		{Window: 120 * sim.Millisecond},
		{DisableParentChild: true},
	} {
		got := AnalyzeIncremental(prev, tr, tr2, opts)
		if !bytes.Equal(planBytes(t, got), planBytes(t, Analyze(tr2, opts))) {
			t.Fatalf("options %+v: fallback plan differs from fresh Analyze", opts)
		}
	}
}

// A plan that went through the JSON codec carries no cache; incremental
// analysis over it must still be exact (full-scan fallback).
func TestAnalyzeIncrementalAfterJSONRoundTrip(t *testing.T) {
	tr := genTrace(19, 120)
	prev := AnalyzeIncremental(nil, nil, tr, Options{})
	var buf bytes.Buffer
	if err := prev.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadPlanJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tr2 := perturbTrace(tr, 23)
	got := AnalyzeIncremental(loaded, tr, tr2, Options{})
	if !bytes.Equal(planBytes(t, got), planBytes(t, Analyze(tr2, Options{}))) {
		t.Fatal("incremental over a JSON-loaded plan differs from fresh Analyze")
	}
}
