package core

import (
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// Interval records one injected delay: where it was injected and the
// virtual-time span the thread slept. Intervals feed Table 6 (count and
// cumulative duration) and the §3.3 overlap metric.
type Interval struct {
	Site  trace.SiteID
	Start sim.Time
	End   sim.Time
}

// Dur returns the interval's length.
func (iv Interval) Dur() sim.Duration { return iv.End.Sub(iv.Start) }

// DelayStats aggregates one run's injection activity.
type DelayStats struct {
	Count     int          // delays injected
	Total     sim.Duration // cumulative delay duration
	Skipped   int          // injections suppressed by interference control
	Intervals []Interval   // every injected delay
}

// add records one completed delay.
func (s *DelayStats) add(iv Interval) {
	s.Count++
	s.Total += iv.Dur()
	s.Intervals = append(s.Intervals, iv)
}

// Injector is Waffle's detection-run hook (§5, component 3). It injects
// delays at the plan's candidate sites using per-site variable lengths,
// probability decay, and interference-aware skipping. Probabilities decay
// in place on the shared Plan, which the Session persists between runs.
type Injector struct {
	opts  Options
	plan  *Plan
	stats DelayStats

	// active counts in-flight delays per site; interference control
	// consults it before injecting.
	active map[trace.SiteID]int
	// activeTotal avoids scanning when nothing is in flight.
	activeTotal int
}

// NewInjector returns a detection hook for plan. The plan's Probs map is
// mutated by probability decay as the run proceeds.
func NewInjector(plan *Plan, opts Options) *Injector {
	return &Injector{
		opts:   opts.WithDefaults(),
		plan:   plan,
		active: make(map[trace.SiteID]int),
	}
}

// Stats returns the injection activity recorded so far.
func (in *Injector) Stats() DelayStats { return in.stats }

// OnAccess implements memmodel.Hook: charge instrumentation overhead, then
// decide whether to pause the thread before the access executes.
func (in *Injector) OnAccess(t *sim.Thread, site trace.SiteID, obj trace.ObjID, kind trace.Kind, dur sim.Duration) {
	if in.opts.InstrCost > 0 {
		t.Sleep(in.opts.InstrCost)
	}
	gapLen, isCandidate := in.plan.DelayLen[site]
	if !isCandidate {
		return
	}
	p := in.plan.Probs[site]
	if p <= 0 {
		return
	}
	if t.World().Rand() >= p {
		return
	}
	if !in.opts.DisableInterferenceControl && in.interferenceLive(site) {
		// §4.4: a delay planned for this site is skipped — not decayed —
		// while an interfering delay is ongoing in another thread.
		in.stats.Skipped++
		return
	}

	d := in.opts.delayFor(gapLen)
	start := t.Now()
	in.active[site]++
	in.activeTotal++
	// Release and record via defer: a bug-exposing delay tears this thread
	// down mid-Sleep (the teardown unwinds through this frame). A counter
	// that stays live would make every other thread treat the faulted
	// site's delay as ongoing, spuriously skipping injections — and an
	// interval recorded up front as [start, start+d] would overcount
	// Table 6's cumulative delay and the §3.3 overlap metric when the
	// sleep is truncated by a fault or a RunBudget cancel. During the
	// unwind t.Now() reflects the teardown point, so clamping to
	// [start, start+d] charges exactly the virtual time actually slept.
	defer func() {
		in.active[site]--
		in.activeTotal--
		end := t.Now()
		if lim := start.Add(d); end > lim {
			end = lim
		}
		if end < start {
			end = start
		}
		in.stats.add(Interval{Site: site, Start: start, End: end})
	}()
	t.Sleep(d)

	// The delay completed without the world faulting (a fault would have
	// torn this thread down mid-sleep): this attempt failed to expose a
	// bug, so the site's future injection probability decays (§2, §4.4).
	np := p - in.opts.Decay
	if np < 0 {
		np = 0
	}
	in.plan.Probs[site] = np
}

// interferenceLive reports whether any site interfering with site has a
// delay currently in flight.
func (in *Injector) interferenceLive(site trace.SiteID) bool {
	if in.activeTotal == 0 {
		return false
	}
	for _, other := range in.plan.Interfere[site] {
		if in.active[other] > 0 {
			return true
		}
	}
	return false
}

// PrepHook is the preparation-run hook: it records the trace and charges
// instrumentation plus logging overhead, but never injects (§4.2).
type PrepHook struct {
	rec  *trace.Recorder
	cost sim.Duration
}

// NewPrepHook wraps rec with the configured preparation-run overhead.
func NewPrepHook(rec *trace.Recorder, opts Options) *PrepHook {
	opts = opts.WithDefaults()
	return &PrepHook{rec: rec, cost: opts.InstrCost + opts.TraceCost}
}

// OnAccess implements memmodel.Hook.
func (p *PrepHook) OnAccess(t *sim.Thread, site trace.SiteID, obj trace.ObjID, kind trace.Kind, dur sim.Duration) {
	if p.cost > 0 {
		t.Sleep(p.cost)
	}
	p.rec.Record(t, site, obj, kind, dur)
}
