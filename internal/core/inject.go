package core

import (
	"sync"

	"waffle/internal/memmodel"
	"waffle/internal/obs"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// Interval records one injected delay: where it was injected and the
// time span the thread slept (virtual ticks under the simulator, wall-clock
// nanoseconds under the live runtime). Intervals feed Table 6 (count and
// cumulative duration) and the §3.3 overlap metric.
type Interval struct {
	Site  trace.SiteID
	Start sim.Time
	End   sim.Time
}

// Dur returns the interval's length.
func (iv Interval) Dur() sim.Duration { return iv.End.Sub(iv.Start) }

// DelayStats aggregates one run's injection activity.
type DelayStats struct {
	Count     int          // delays injected
	Total     sim.Duration // cumulative delay duration
	Skipped   int          // injections suppressed by interference control
	Intervals []Interval   // every injected delay
}

// add records one completed delay.
func (s *DelayStats) add(iv Interval) {
	s.Count++
	s.Total += iv.Dur()
	s.Intervals = append(s.Intervals, iv)
}

// Clone returns a copy whose Intervals slice shares nothing with the
// receiver. Stats accessors must hand this out rather than a shallow copy:
// the live runtime reads stats after a timed-out run while leaked
// goroutines keep appending to the engine's backing array, so an aliased
// slice is a data race and can even surface foreign intervals in the copy
// when the append grows in place.
func (s DelayStats) Clone() DelayStats {
	s.Intervals = append([]Interval(nil), s.Intervals...)
	return s
}

// injectMetrics are the injection-engine instrument handles, resolved once
// at engine construction. All fields are nil without a registry — every
// emit is then a single nil-check (the benchmarked disabled fast path).
type injectMetrics struct {
	injected   *obs.Counter   // inject.delays_injected
	ticksTotal *obs.Counter   // inject.delay_ticks_total
	skipped    *obs.Counter   // inject.delays_skipped_interference
	floorHits  *obs.Counter   // inject.decay_floor_hits
	delayTicks *obs.Histogram // inject.delay_ticks
}

func newInjectMetrics(r *obs.Registry) injectMetrics {
	return injectMetrics{
		injected:   r.Counter("inject.delays_injected"),
		ticksTotal: r.Counter("inject.delay_ticks_total"),
		skipped:    r.Counter("inject.delays_skipped_interference"),
		floorHits:  r.Counter("inject.decay_floor_hits"),
		delayTicks: r.Histogram("inject.delay_ticks", obs.DelayBuckets),
	}
}

// observeDelay records one completed delay interval.
func (m *injectMetrics) observeDelay(iv Interval) {
	m.injected.Inc()
	m.ticksTotal.Add(int64(iv.Dur()))
	m.delayTicks.Observe(int64(iv.Dur()))
}

// Injector is Waffle's detection-run hook (§5, component 3). It injects
// delays at the plan's candidate sites using per-site variable lengths,
// probability decay, and interference-aware skipping. Probabilities decay
// in place on the shared Plan, which the Session persists between runs.
//
// The injector is clock-agnostic: it runs against any Exec, so the same
// engine drives simulated threads on virtual time and live goroutines on
// the wall clock. Its mutable state is mutex-guarded — the lock is held
// only around decisions and bookkeeping, never across the injected sleep,
// so concurrent live threads delay in parallel exactly as the paper's
// threads do. Under the single-batoned simulator the lock is uncontended
// and the behavior is bit-identical to a lock-free engine.
type Injector struct {
	opts Options
	mu   sync.Mutex // guards plan.Probs, stats, active, activeTotal
	plan *Plan

	stats DelayStats
	met   injectMetrics

	// active counts in-flight delays per site; interference control
	// consults it before injecting.
	active map[trace.SiteID]int
	// activeTotal avoids scanning when nothing is in flight.
	activeTotal int

	// flushSites are the delay sites of the plan's StaleRead pairs: stores
	// whose *visibility* is delayed (memmodel.AddFlushDelay) instead of
	// the issuing thread. Empty outside TSO mode.
	flushSites map[trace.SiteID]bool
}

// NewInjector returns a detection hook for plan. The plan's Probs map is
// mutated by probability decay as the run proceeds.
func NewInjector(plan *Plan, opts Options) *Injector {
	opts = opts.WithDefaults()
	in := &Injector{
		opts:   opts,
		plan:   plan,
		met:    newInjectMetrics(opts.Metrics),
		active: make(map[trace.SiteID]int),
	}
	for _, p := range plan.Pairs {
		if p.Kind == StaleRead {
			if in.flushSites == nil {
				in.flushSites = make(map[trace.SiteID]bool)
			}
			in.flushSites[p.Delay] = true
		}
	}
	return in
}

// Stats returns the injection activity recorded so far. The returned copy
// owns its Intervals slice — callers may read it while the injector keeps
// recording (live runs leak delayed goroutines past their timeout).
func (in *Injector) Stats() DelayStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats.Clone()
}

// OnAccess implements memmodel.Hook — the simulator entry point. Stores at
// a StaleRead candidate site take the flush-delay path: the delay lands on
// the store's commit, not on the thread, because every StaleRead pair is
// fork-ordered — sleeping the writer would shift the whole forked subtree
// (reader included) and never widen the stale window.
func (in *Injector) OnAccess(t *sim.Thread, site trace.SiteID, obj trace.ObjID, kind trace.Kind, dur sim.Duration) {
	if len(in.flushSites) > 0 && (kind == trace.KindInit || kind == trace.KindDispose) && in.flushSites[site] {
		in.flushAccess(t, site)
		return
	}
	in.Access(t, site, obj, kind, dur)
}

// flushAccess injects a visibility delay: the thread's next buffered store
// (the very access being hooked) commits opts.Alpha·gap later than its
// drawn latency. Probability decays immediately — the sleep-path decay
// waits out the delay to learn whether it exposed, but a flush delay never
// blocks this thread, so there is nothing to wait for; a run it exposes
// ends the search before the decayed value is ever consulted. Flush delays
// skip interference bookkeeping: they occupy no thread time, so they
// cannot cancel (or be cancelled by) any concurrent delay — §4.4's
// blocked-thread hazard has no analog here.
func (in *Injector) flushAccess(t *sim.Thread, site trace.SiteID) {
	if in.opts.InstrCost > 0 {
		t.Sleep(in.opts.InstrCost)
	}
	in.mu.Lock()
	gapLen, isCandidate := in.plan.DelayLen[site]
	if !isCandidate {
		in.mu.Unlock()
		return
	}
	p := in.plan.Probs[site]
	if p <= 0 {
		in.mu.Unlock()
		return
	}
	if t.Rand() >= p {
		in.mu.Unlock()
		return
	}
	d := in.opts.delayFor(gapLen)
	now := t.Now()
	iv := Interval{Site: site, Start: now, End: now.Add(d)}
	in.stats.add(iv)
	np := p - in.opts.Decay
	if np < 0 {
		np = 0
	}
	if np == 0 && p > 0 {
		in.met.floorHits.Inc()
	}
	in.plan.Probs[site] = np
	in.mu.Unlock()
	in.met.observeDelay(iv)
	memmodel.AddFlushDelay(t, d)
}

// Access is the clock-agnostic hook body: charge instrumentation overhead,
// then decide whether to pause the thread before the access executes.
func (in *Injector) Access(e Exec, site trace.SiteID, obj trace.ObjID, kind trace.Kind, dur sim.Duration) {
	if in.opts.InstrCost > 0 {
		e.Sleep(in.opts.InstrCost)
	}
	in.mu.Lock()
	gapLen, isCandidate := in.plan.DelayLen[site]
	if !isCandidate {
		in.mu.Unlock()
		return
	}
	p := in.plan.Probs[site]
	if p <= 0 {
		in.mu.Unlock()
		return
	}
	if e.Rand() >= p {
		in.mu.Unlock()
		return
	}
	if !in.opts.DisableInterferenceControl && in.interferenceLive(site) {
		// §4.4: a delay planned for this site is skipped — not decayed —
		// while an interfering delay is ongoing in another thread.
		in.stats.Skipped++
		in.mu.Unlock()
		in.met.skipped.Inc()
		return
	}

	d := in.opts.delayFor(gapLen)
	start := e.Now()
	in.active[site]++
	in.activeTotal++
	in.mu.Unlock()
	// Release and record via defer: a bug-exposing delay tears this thread
	// down mid-Sleep (the teardown unwinds through this frame). A counter
	// that stays live would make every other thread treat the faulted
	// site's delay as ongoing, spuriously skipping injections — and an
	// interval recorded up front as [start, start+d] would overcount
	// Table 6's cumulative delay and the §3.3 overlap metric when the
	// sleep is truncated by a fault or a RunBudget cancel. During the
	// unwind e.Now() reflects the teardown point, so clamping to
	// [start, start+d] charges exactly the time actually slept.
	defer func() {
		end := e.Now()
		if lim := start.Add(d); end > lim {
			end = lim
		}
		if end < start {
			end = start
		}
		iv := Interval{Site: site, Start: start, End: end}
		in.mu.Lock()
		in.active[site]--
		in.activeTotal--
		in.stats.add(iv)
		in.mu.Unlock()
		in.met.observeDelay(iv)
	}()
	e.Sleep(d)

	// The delay completed without the run faulting in this thread (a fault
	// would have torn it down mid-sleep): this attempt failed to expose a
	// bug, so the site's future injection probability decays (§2, §4.4).
	np := p - in.opts.Decay
	if np < 0 {
		np = 0
	}
	if np == 0 && p > 0 {
		in.met.floorHits.Inc()
	}
	in.mu.Lock()
	in.plan.Probs[site] = np
	in.mu.Unlock()
}

// interferenceLive reports whether any site interfering with site has a
// delay currently in flight. Callers hold in.mu.
func (in *Injector) interferenceLive(site trace.SiteID) bool {
	if in.activeTotal == 0 {
		return false
	}
	for _, other := range in.plan.Interfere[site] {
		if in.active[other] > 0 {
			return true
		}
	}
	return false
}

// PrepHook is the preparation-run hook: it records the trace and charges
// instrumentation plus logging overhead, but never injects (§4.2).
type PrepHook struct {
	rec  *trace.Recorder
	cost sim.Duration
}

// NewPrepHook wraps rec with the configured preparation-run overhead.
func NewPrepHook(rec *trace.Recorder, opts Options) *PrepHook {
	opts = opts.WithDefaults()
	return &PrepHook{rec: rec, cost: opts.InstrCost + opts.TraceCost}
}

// OnAccess implements memmodel.Hook.
func (p *PrepHook) OnAccess(t *sim.Thread, site trace.SiteID, obj trace.ObjID, kind trace.Kind, dur sim.Duration) {
	if p.cost > 0 {
		t.Sleep(p.cost)
	}
	p.rec.Record(t, site, obj, kind, dur)
}
