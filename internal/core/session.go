package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"waffle/internal/memmodel"
	"waffle/internal/obs"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// Program is one program-under-test plus one test input: something that can
// be executed repeatedly under different seeds and instrumentation hooks.
// Implementations build a fresh world and heap per call (a detection tool
// never reuses program state across runs).
type Program interface {
	// Name identifies the program/test for reports.
	Name() string
	// Execute runs the program once. hook may be nil (uninstrumented
	// baseline). The seed controls scheduling and jitter.
	Execute(seed int64, hook memmodel.Hook) ExecResult
}

// ExecResult is the outcome of one program execution.
type ExecResult struct {
	End      sim.Time   // virtual end time of the run
	Fault    *sim.Fault // unhandled exception, if the run crashed
	TimedOut bool       // the run exceeded its virtual-time budget
	Err      error      // any other abnormal termination (deadlock, limits)
	TSVs     int        // thread-safety violations that manifested (§2)
}

// Tool is a delay-injection detector driven run by run: Waffle,
// WaffleBasic, or an ablation. Tools are stateful across runs (candidate
// sets, probabilities, plans persist).
type Tool interface {
	// Name identifies the tool for reports.
	Name() string
	// HookForRun returns the instrumentation hook for run (1-based).
	// prev is the report of the previous run, nil for run 1.
	HookForRun(run int, prev *RunReport) memmodel.Hook
	// RunStats reports the delay activity of the hook returned last.
	RunStats() DelayStats
	// Candidates returns the live candidate pairs involving site, used to
	// attribute a manifested fault back to the plan.
	Candidates(site trace.SiteID) []Pair
}

// RunOutcome classifies how one run ended, distinguishing in particular a
// NULL reference fault that followed an injected delay (a reportable bug,
// §5's zero-false-positive contract) from one that manifested with no
// delay injected (a flaky program fault Waffle must NOT claim credit for).
type RunOutcome int

const (
	// RunClean: the run finished normally without a fault.
	RunClean RunOutcome = iota
	// RunFaultBug: a NULL reference fault manifested after at least one
	// injected delay — the run produced a BugReport.
	RunFaultBug
	// RunFaultDelayFree: a NULL reference fault manifested in a run with
	// zero injected delays. The fault cannot be a consequence of delay
	// injection, so no BugReport is produced; the fault itself is surfaced
	// via RunReport.Fault and Outcome.DelayFreeFaults.
	RunFaultDelayFree
	// RunFaultOther: the run faulted with something other than a NULL
	// reference error (e.g. a harness assertion).
	RunFaultOther
	// RunTimedOut: the run exceeded its time budget.
	RunTimedOut
	// RunError: the run ended abnormally without a fault (deadlock, event
	// limit, cancellation).
	RunError
)

// String renders the outcome for reports and the JSONL run sink.
func (ro RunOutcome) String() string {
	switch ro {
	case RunClean:
		return "clean"
	case RunFaultBug:
		return "fault-bug"
	case RunFaultDelayFree:
		return "fault-delay-free"
	case RunFaultOther:
		return "fault-other"
	case RunTimedOut:
		return "timeout"
	case RunError:
		return "error"
	default:
		return fmt.Sprintf("RunOutcome(%d)", int(ro))
	}
}

// RunReport describes one completed run of a session.
type RunReport struct {
	Run int // 1-based run number
	// Seed is the seed used for the run. Under the simulator it is the
	// world seed and makes the run bit-for-bit reproducible. On live
	// (wall-clock) runs it only drives the injector's RNG — physical
	// scheduling is nondeterministic, so the same seed does not replay
	// the same interleaving.
	Seed     int64
	End      sim.Time   // end time in run ticks (virtual µs; wall-clock ns duration on live runs)
	TimedOut bool       // run hit its time budget
	Fault    *sim.Fault // fault that ended the run, if any
	Err      error      // abnormal termination without a fault: deadlock, limits, cancellation
	Stats    DelayStats // delay activity during the run
	Outcome  RunOutcome // how the run ended (distinguishes delay-free faults)

	// SampledOut marks a live detection run that sampling admission left
	// uninstrumented: the body executed plain, with no recording and no
	// injection, so the run can observe a delay-free fault but can never
	// produce a BugReport.
	SampledOut bool

	// WallStart and WallDur stamp the run's physical start time and
	// duration. They are set only by the live runtime, where latencies are
	// wall-clock real; simulated runs leave them zero.
	WallStart time.Time
	WallDur   time.Duration
}

// FenceProposal is the machine-checkable repair emitted with every
// confirmed stale-read bug: a full fence (store-buffer drain) placed
// after the buffered write and ordered before the stale read forbids the
// exposing schedule — and every schedule like it — outright. The pair is
// derived from the exposing run itself: the StaleReadError names the
// still-buffered store the faulting read observed around, so (After,
// Before) is exactly the ordering edge the program is missing ("Don't sit
// on the fence"'s placement question answered by the witness schedule).
type FenceProposal struct {
	// After is the store site whose buffered value went stale: the fence
	// goes immediately after this write.
	After trace.SiteID `json:"after"`
	// Before is the read site that observed the stale state: the fence
	// must order the committed write before it.
	Before trace.SiteID `json:"before"`
}

// String renders the proposal as an actionable edit.
func (f *FenceProposal) String() string {
	return fmt.Sprintf("insert fence after %s (orders the write before %s)", f.After, f.Before)
}

// BugReport is emitted when a delay-injection run manifests a NULL
// reference fault (§5: faulty input, candidate locations involved, stack
// traces, and delay information) — or, in TSO mode, a stale-read fault.
// Exactly one of NullRef and Stale is set.
type BugReport struct {
	Program    string
	Tool       string
	Run        int   // run that exposed the bug (1-based, prep included)
	Seed       int64 // seed of the exposing run
	Fault      *sim.Fault
	NullRef    *memmodel.NullRefError
	Stale      *memmodel.StaleReadError // TSO stale-read manifestation
	Fence      *FenceProposal           // repair proposal; set iff Stale is
	Candidates []Pair                   // plan pairs involving the faulting site
	Delays     DelayStats               // delays injected in the exposing run
}

// Kind reports the bug class, derived from the fault.
func (b *BugReport) Kind() BugKind {
	if b.Stale != nil {
		return StaleRead
	}
	if b.NullRef != nil && b.NullRef.State == memmodel.StateDisposed {
		return UseAfterFree
	}
	return UseBeforeInit
}

// ObjName returns the faulting object's declared name, whichever fault
// class manifested.
func (b *BugReport) ObjName() string {
	if b.Stale != nil {
		return b.Stale.Name
	}
	if b.NullRef != nil {
		return b.NullRef.Name
	}
	return ""
}

// FaultSite returns the site of the faulting access, whichever fault class
// manifested.
func (b *BugReport) FaultSite() trace.SiteID {
	if b.Stale != nil {
		return b.Stale.Site
	}
	if b.NullRef != nil {
		return b.NullRef.Site
	}
	return ""
}

// String renders a one-line summary.
func (b *BugReport) String() string {
	s := fmt.Sprintf("%s: %s exposed %s at %s in run %d (seed %d)",
		b.Program, b.Tool, b.Kind(), b.FaultSite(), b.Run, b.Seed)
	if b.Fence != nil {
		s += " — " + b.Fence.String()
	}
	return s
}

// Outcome is the result of a full Expose search.
type Outcome struct {
	Program   string
	Tool      string
	Bug       *BugReport  // nil when no bug manifested within MaxRuns
	Runs      []RunReport // every run performed, in order
	TotalTime sim.Duration
	BaseTime  sim.Duration // uninstrumented single-run time; zero when the baseline was abnormal

	// BaseErr reports an abnormal (faulted or timed-out) uninstrumented
	// baseline run. When set, BaseTime is zero and Slowdown returns 0
	// rather than a ratio over a truncated denominator. Only runtimes
	// that execute a real baseline set it (the live detector does; the
	// simulator's baseline is deterministic and cannot fail this way).
	BaseErr error

	// DelayFreeFaults lists runs (1-based) that raised a NULL reference
	// fault with zero injected delays. Per the zero-false-positive contract
	// (§5) such faults cannot be attributed to delay injection and produce
	// no BugReport; they are surfaced here (and via RunReport.Fault /
	// RunReport.Outcome) so a flaky program-under-test is visible rather
	// than silently swallowed or falsely claimed.
	DelayFreeFaults []int
}

// RunErrs aggregates the abnormal terminations across the outcome's runs:
// one error per run whose world ended in a deadlock, a limit kill, or a
// cancellation rather than a clean finish or a fault. A search that
// silently loses these records a deadlocked run as a normal one, which
// understates both the bug surface and the time spent.
func (o *Outcome) RunErrs() []error {
	var errs []error
	for _, r := range o.Runs {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("run %d (seed %d): %w", r.Run, r.Seed, r.Err))
		}
	}
	return errs
}

// RunsToExpose reports the number of runs used to expose the bug
// (preparation run included), or 0 if no bug was exposed. This is the
// "# of detection runs" metric of Table 4.
func (o *Outcome) RunsToExpose() int {
	if o.Bug == nil {
		return 0
	}
	return o.Bug.Run
}

// Slowdown reports end-to-end detection time over the uninstrumented
// base run time (Table 4's "Detection slowdown").
func (o *Outcome) Slowdown() float64 {
	if o.BaseTime <= 0 {
		return 0
	}
	return float64(o.TotalTime) / float64(o.BaseTime)
}

// Session drives one Tool against one Program until a bug manifests or the
// run budget is exhausted.
type Session struct {
	Prog     Program
	Tool     Tool
	MaxRuns  int   // total run budget, preparation included
	BaseSeed int64 // run i uses seed BaseSeed+i-1

	// RunBudget, when positive, bounds each detection run's wall-clock
	// time in ExposeParallel: a run still going when the budget lapses is
	// canceled and recorded with an ErrCanceled run error. Virtual-time
	// limits (SimProgram.MaxTime) cannot catch a run stuck without
	// advancing virtual time; this can. Zero means no budget.
	RunBudget time.Duration

	// Metrics receives session-level campaign counters (runs, faults,
	// bugs exposed, runs/sec) and per-run JSONL events. Nil disables all
	// session instrumentation. Independent of the engines' Options.Metrics
	// so a caller can meter sessions without metering injectors, though
	// normally both point at the same registry.
	Metrics *obs.Registry

	// Tuner, when non-nil, is consulted at every run boundary and may
	// retune the tool's options, change the budget, or stop the session
	// (see tune.go). Nil — the default — costs one nil check per run and
	// leaves the search byte-identical to a session without the field.
	Tuner Tuner

	// PoolTune, when non-nil, is forwarded to sched.Pool.Tune by
	// ExposeParallel: consulted between waves with (wave, committed), a
	// positive return adjusts the worker cap for the next wave.
	PoolTune func(wave, committed int) int
}

// Expose performs up to MaxRuns runs, returning the outcome. A run that
// raises a NULL reference fault ends the search with a BugReport; faults
// of other types (assertion failures in the harness itself) surface as the
// final RunReport without a BugReport.
func (s *Session) Expose() *Outcome {
	return s.ExposeCtx(context.Background())
}

// ExposeCtx is Expose under a caller context: the search stops at the
// first run boundary after ctx is done, returning the runs committed so
// far, and the run in flight aborts early when the program honors
// cancellation (ContextProgram). With a Background context the search is
// byte-identical to Expose — Background's Done channel is nil, so the
// simulator sees exactly the cancel-free configuration.
func (s *Session) ExposeCtx(ctx context.Context) *Outcome {
	out := &Outcome{Program: s.Prog.Name(), Tool: s.Tool.Name()}
	defer s.trackRate(out)()
	out.BaseTime = s.Baseline()
	var prev *RunReport
	maxRuns := s.MaxRuns
	if maxRuns <= 0 {
		maxRuns = DefaultMaxRuns
	}

	// Phase spans: runs before the plan exists are "prepare", the rest
	// "detect". Tools without a preparation phase (online identification)
	// spend the whole search in "detect". stopSpan is a no-op without a
	// registry — the clock is never read.
	firstDetection := 1
	if pd, ok := s.Tool.(PlanDriven); ok && pd.PrepRunCount() >= 0 {
		firstDetection = 1 + pd.PrepRunCount()
	}
	stopSpan := func() {}
	if firstDetection > 1 {
		stopSpan = s.Metrics.Span("phase.prepare").Time()
	}
	defer func() { stopSpan() }()

	for run := 1; run <= maxRuns; run++ {
		if ctx.Err() != nil {
			return out
		}
		if s.Tuner != nil {
			var stop bool
			maxRuns, stop = s.tuneBoundary(out, run, maxRuns, prev, run > firstDetection)
			if stop {
				return out
			}
		}
		if run == firstDetection {
			stopSpan()
			stopSpan = s.Metrics.Span("phase.detect").Time()
		}
		seed := s.BaseSeed + int64(run) - 1
		hook := s.Tool.HookForRun(run, prev)
		res := s.execute(ctx, seed, hook)
		rep, faulted := s.appendRun(out, run, seed, res, s.Tool.RunStats())
		prev = rep
		if faulted {
			return out
		}
	}
	return out
}

// execute performs one run, routing through the program's cancellable
// entry point only when the context can actually fire (Done non-nil). An
// uncancellable context — Background, the wrappers' default — takes the
// plain Execute path, so Expose/ExposeParallel keep their exact historic
// behavior even for programs whose ExecuteCtx differs from Execute.
func (s *Session) execute(ctx context.Context, seed int64, hook memmodel.Hook) ExecResult {
	if cp, ok := s.Prog.(ContextProgram); ok && ctx.Done() != nil {
		return cp.ExecuteCtx(ctx, seed, hook)
	}
	return s.Prog.Execute(seed, hook)
}

// trackRate returns a stop function that publishes the session's
// wall-clock run throughput to the session.runs_per_sec gauge. With no
// registry the clock is never read.
func (s *Session) trackRate(out *Outcome) func() {
	if s.Metrics == nil {
		return func() {}
	}
	g := s.Metrics.Gauge("session.runs_per_sec")
	t0 := time.Now()
	return func() {
		if el := time.Since(t0).Seconds(); el > 0 {
			g.Set(float64(len(out.Runs)) / el)
		}
	}
}

// appendRun folds one execution into the outcome: it records the run
// report — including abnormal terminations, which must not be silently
// dropped — and assembles the BugReport when the run manifested a NULL
// reference fault that is attributable to delay injection. A NullRef
// fault in a run with zero injected delays cannot be a consequence of a
// delay (§5's zero-false-positive contract), so it yields no BugReport:
// the fault is classified RunFaultDelayFree and listed in
// out.DelayFreeFaults instead. Any fault still ends the search — the
// program is crashing under the tool's feet either way. It reports
// whether the fault ends the search.
func (s *Session) appendRun(out *Outcome, run int, seed int64, res ExecResult, stats DelayStats) (rep *RunReport, faulted bool) {
	r := RunReport{
		Run: run, Seed: seed, End: res.End,
		TimedOut: res.TimedOut, Fault: res.Fault,
		Stats: stats,
	}
	if res.Fault == nil && !res.TimedOut {
		// Deadlocks, event-limit kills, and cancellations have no Fault and
		// no dedicated field: without this the run would read as normal.
		r.Err = res.Err
	}
	switch {
	case res.Fault != nil:
		r.Outcome = RunFaultOther // refined below for NullRef faults
	case res.TimedOut:
		r.Outcome = RunTimedOut
	case r.Err != nil:
		r.Outcome = RunError
	}
	out.Runs = append(out.Runs, r)
	out.TotalTime += sim.Duration(res.End)
	rep = &out.Runs[len(out.Runs)-1]

	if res.Fault != nil {
		// report assembles the BugReport skeleton when the fault is
		// attributable to delay injection (stats.Count counts flush delays
		// too — a visibility delay is an injection like any other); a fault
		// in a delay-free run takes the zero-false-positive path whichever
		// fault class it belongs to.
		report := func(site trace.SiteID) *BugReport {
			if stats.Count == 0 {
				rep.Outcome = RunFaultDelayFree
				out.DelayFreeFaults = append(out.DelayFreeFaults, run)
				return nil
			}
			rep.Outcome = RunFaultBug
			return &BugReport{
				Program:    s.Prog.Name(),
				Tool:       s.Tool.Name(),
				Run:        run,
				Seed:       seed,
				Fault:      res.Fault,
				Candidates: s.Tool.Candidates(site),
				Delays:     rep.Stats,
			}
		}
		var nre *memmodel.NullRefError
		var sre *memmodel.StaleReadError
		switch {
		case errors.As(res.Fault.Err, &nre):
			if b := report(nre.Site); b != nil {
				b.NullRef = nre
				out.Bug = b
			}
		case errors.As(res.Fault.Err, &sre):
			if b := report(sre.Site); b != nil {
				b.Stale = sre
				b.Fence = &FenceProposal{After: sre.PendingSite, Before: sre.Site}
				out.Bug = b
			}
		}
		s.meterRun(out, rep)
		return rep, true
	}
	s.meterRun(out, rep)
	return rep, false
}

// meterRun publishes one completed run to the session registry: aggregate
// counters plus the opt-in per-run JSONL event. No-op without a registry.
func (s *Session) meterRun(out *Outcome, rep *RunReport) {
	m := s.Metrics
	if m == nil {
		return
	}
	m.Counter("session.runs").Inc()
	switch rep.Outcome {
	case RunFaultBug:
		m.Counter("session.faults").Inc()
		m.Counter("session.bugs_exposed").Inc()
		m.Histogram("session.runs_to_exposure", obs.RunBuckets).Observe(int64(rep.Run))
	case RunFaultDelayFree:
		m.Counter("session.faults").Inc()
		m.Counter("session.delay_free_faults").Inc()
	case RunFaultOther:
		m.Counter("session.faults").Inc()
	case RunTimedOut:
		m.Counter("session.runs_timed_out").Inc()
	case RunError:
		m.Counter("session.run_errors").Inc()
	}
	m.EmitRun(obs.RunEvent{
		Program:    out.Program,
		Tool:       out.Tool,
		Run:        rep.Run,
		Seed:       rep.Seed,
		EndTicks:   int64(rep.End),
		Delays:     rep.Stats.Count,
		DelayTicks: int64(rep.Stats.Total),
		Skipped:    rep.Stats.Skipped,
		Outcome:    rep.Outcome.String(),
	})
}

// Baseline measures the program's uninstrumented single-run time at the
// session's base seed.
func (s *Session) Baseline() sim.Duration {
	res := s.Prog.Execute(s.BaseSeed, nil)
	return sim.Duration(res.End)
}
