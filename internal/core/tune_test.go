package core

import (
	"testing"

	"waffle/internal/memmodel"
	"waffle/internal/sim"
)

// recordingTuner scripts decisions per run number and records the
// contexts it saw.
type recordingTuner struct {
	decisions map[int]TuneDecision
	seen      []TuneContext
}

func (rt *recordingTuner) TuneRun(ctx TuneContext) TuneDecision {
	rt.seen = append(rt.seen, ctx)
	return rt.decisions[ctx.Run]
}

// cleanProg never faults, so sessions exhaust whatever budget the tuner
// leaves them.
func cleanProg() *SimProgram {
	return &SimProgram{
		Label: "tune-clean",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			r := h.NewRef("r")
			r.Init(root, "init.go:1")
			w := root.Spawn("w", func(th *sim.Thread) {
				th.Sleep(1 * sim.Millisecond)
				r.Use(th, "use.go:1")
			})
			root.Join(w)
		},
	}
}

func TestTunerStopEndsSession(t *testing.T) {
	rt := &recordingTuner{decisions: map[int]TuneDecision{3: {Stop: true}}}
	s := &Session{Prog: cleanProg(), Tool: NewWaffle(Options{}), MaxRuns: 10, BaseSeed: 1, Tuner: rt}
	out := s.Expose()
	if len(out.Runs) != 2 {
		t.Fatalf("performed %d runs, want 2 (stopped before run 3)", len(out.Runs))
	}
	// Boundary contexts: run 1 has no prev and prep pending; run 2's prev
	// is the preparation run (not a detection run); run 3's prev is run 2,
	// a detection run.
	if len(rt.seen) != 3 {
		t.Fatalf("tuner consulted %d times, want 3", len(rt.seen))
	}
	if rt.seen[0].Prev != nil || rt.seen[0].PrevDetection {
		t.Error("run-1 boundary should have nil Prev and PrevDetection=false")
	}
	if rt.seen[1].Prev == nil || rt.seen[1].PrevDetection {
		t.Error("run-2 boundary: Prev is the prep run, PrevDetection must be false")
	}
	if !rt.seen[2].PrevDetection {
		t.Error("run-3 boundary: Prev is a detection run, PrevDetection must be true")
	}
	if !rt.seen[2].Retunable {
		t.Error("Waffle must report Retunable")
	}
	if rt.seen[0].LiveSites != -1 {
		t.Errorf("pre-plan LiveSites = %d, want -1 (unknown)", rt.seen[0].LiveSites)
	}
	if rt.seen[2].LiveSites < 0 {
		t.Errorf("post-plan LiveSites = %d, want >= 0", rt.seen[2].LiveSites)
	}
}

func TestTunerShrinksBudget(t *testing.T) {
	rt := &recordingTuner{decisions: map[int]TuneDecision{2: {MaxRuns: 4}}}
	s := &Session{Prog: cleanProg(), Tool: NewWaffle(Options{}), MaxRuns: 20, BaseSeed: 1, Tuner: rt}
	out := s.Expose()
	if len(out.Runs) != 4 {
		t.Fatalf("performed %d runs, want 4 after budget shrink", len(out.Runs))
	}
}

func TestTunerRetunesOptionsAtBoundary(t *testing.T) {
	tool := NewWaffle(Options{})
	want := tool.CurrentOptions()
	want.Alpha = 1.99
	want.Decay = 0.33
	rt := &recordingTuner{decisions: map[int]TuneDecision{3: {Opts: &want}}}
	s := &Session{Prog: cleanProg(), Tool: tool, MaxRuns: 4, BaseSeed: 1, Tuner: rt}
	s.Expose()
	got := tool.CurrentOptions()
	if got.Alpha != 1.99 || got.Decay != 0.33 {
		t.Fatalf("options after retune: alpha=%v decay=%v, want 1.99/0.33", got.Alpha, got.Decay)
	}
	// The boundary after the retune must see the new options.
	last := rt.seen[len(rt.seen)-1]
	if last.Opts.Alpha != 1.99 {
		t.Fatalf("boundary after retune saw alpha=%v", last.Opts.Alpha)
	}
}

// Parallel sessions honor budget shrinks exactly: commits discard indices
// past the shrunk budget like a sequential break.
func TestTunerShrinksBudgetParallel(t *testing.T) {
	rt := &recordingTuner{decisions: map[int]TuneDecision{3: {MaxRuns: 5}}}
	s := &Session{Prog: cleanProg(), Tool: NewWaffle(Options{}), MaxRuns: 40, BaseSeed: 1, Tuner: rt}
	out := s.ExposeParallel(4)
	if len(out.Runs) != 5 {
		t.Fatalf("performed %d runs, want 5 after parallel budget shrink", len(out.Runs))
	}
}

// A stop decision in parallel mode halts the engine at the boundary.
func TestTunerStopParallel(t *testing.T) {
	rt := &recordingTuner{decisions: map[int]TuneDecision{4: {Stop: true}}}
	s := &Session{Prog: cleanProg(), Tool: NewWaffle(Options{}), MaxRuns: 40, BaseSeed: 1, Tuner: rt}
	out := s.ExposeParallel(4)
	if len(out.Runs) != 3 {
		t.Fatalf("performed %d runs, want 3 (stopped before run 4)", len(out.Runs))
	}
}

// A tuner that decides nothing must not change what the session finds or
// how many runs it takes.
func TestPassiveTunerPreservesOutcome(t *testing.T) {
	base := &Session{Prog: racyInitUse(), Tool: NewWaffle(Options{}), MaxRuns: 10, BaseSeed: 1}
	want := base.Expose()
	tuned := &Session{Prog: racyInitUse(), Tool: NewWaffle(Options{}), MaxRuns: 10, BaseSeed: 1,
		Tuner: &recordingTuner{}}
	got := tuned.Expose()
	if got.RunsToExpose() != want.RunsToExpose() {
		t.Fatalf("runs-to-expose %d with passive tuner, %d without", got.RunsToExpose(), want.RunsToExpose())
	}
	if (got.Bug == nil) != (want.Bug == nil) {
		t.Fatal("bug presence differs under passive tuner")
	}
	if got.Bug != nil && got.Bug.Seed != want.Bug.Seed {
		t.Fatalf("exposing seed %d with passive tuner, %d without", got.Bug.Seed, want.Bug.Seed)
	}
}
