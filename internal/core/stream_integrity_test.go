package core

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"waffle/internal/trace"
)

// switchReader hands out one byte stream until the caller rewinds with
// Seek(0, io.SeekStart), then hands out a different one — the adversarial
// shape AnalyzeStream's two passes must survive: the io.ReadSeeker is
// caller-controlled, and nothing guarantees the bytes after a rewind match
// the bytes read before it (a file truncated and rewritten between passes,
// a decompressor with nondeterministic framing, a deliberate attack).
type switchReader struct {
	cur  *bytes.Reader
	next []byte
}

func (s *switchReader) Read(p []byte) (int, error) { return s.cur.Read(p) }

func (s *switchReader) Seek(off int64, whence int) (int64, error) {
	if off == 0 && whence == io.SeekStart && s.next != nil {
		s.cur = bytes.NewReader(s.next)
		s.next = nil
		return 0, nil
	}
	return s.cur.Seek(off, whence)
}

// Pass B re-reads the stream after Seek(0) and must apply the same
// timestamp-order check as pass A: a reader that returns sorted bytes on
// the first pass and unsorted bytes on the second must fail loudly with
// ErrUnsortedStream, not silently drop interference edges via the
// sliding-buffer early break.
func TestAnalyzeStreamRejectsUnsortedSecondPass(t *testing.T) {
	sorted := mkTrace(
		ev(0, 0, 1, "ctor", 1, trace.KindInit),
		ev(1, 50, 2, "use", 1, trace.KindUse),
	)
	unsorted := mkTrace(
		ev(0, 50, 2, "use", 1, trace.KindUse),
		ev(1, 0, 1, "ctor", 1, trace.KindInit),
	)

	// Sanity: the first pass alone must find a candidate pair, otherwise
	// AnalyzeStream returns before pass B ever touches the reader.
	if plan, err := AnalyzeStream(streamOf(t, sorted), Options{}); err != nil || len(plan.Pairs) == 0 {
		t.Fatalf("sorted trace: plan=%v err=%v, want a candidate pair and no error", plan, err)
	}

	r := &switchReader{cur: streamOf(t, sorted), next: streamBytes(t, unsorted)}
	_, err := AnalyzeStream(r, Options{})
	if !errors.Is(err, ErrUnsortedStream) {
		t.Fatalf("err = %v, want ErrUnsortedStream from the interference pass", err)
	}
}

// streamBytes serializes a trace to its WFTS wire bytes.
func streamBytes(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteStream(&buf); err != nil {
		t.Fatalf("write stream: %v", err)
	}
	return buf.Bytes()
}
