package core

import (
	"testing"

	"waffle/internal/memmodel"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// faultMidDelay runs a scenario in which the hook delays the Init at
// ctor.go:2 long enough for a second thread's Use to fault while that
// delay is still in flight — the exposing schedule, which tears the
// delayed thread down mid-Sleep.
func faultMidDelay(t *testing.T, hook memmodel.Hook) {
	t.Helper()
	h := memmodel.NewHeap()
	h.SetHook(hook)
	w := sim.NewWorld(sim.Config{Seed: 1})
	err := w.Run(func(root *sim.Thread) {
		r := h.NewRef("listener")
		user := root.Spawn("event", func(th *sim.Thread) {
			th.Sleep(1 * sim.Millisecond)
			r.Use(th, "handler.go:8")
		})
		r.Init(root, "ctor.go:2")
		root.Join(user)
	})
	if err == nil {
		t.Fatal("scenario did not fault: the delay never exposed the bug")
	}
}

func TestInjectorReleasesCountersOnMidDelayFault(t *testing.T) {
	plan := planWith("ctor.go:2", 10*sim.Millisecond)
	inj := NewInjector(plan, Options{InstrCost: -1})
	faultMidDelay(t, inj)
	if inj.activeTotal != 0 {
		t.Fatalf("activeTotal = %d after the world drained, want 0", inj.activeTotal)
	}
	for site, n := range inj.active {
		if n != 0 {
			t.Fatalf("active[%s] = %d after the world drained, want 0", site, n)
		}
	}
	if got := inj.Stats().Count; got != 1 {
		t.Fatalf("delays recorded = %d, want 1 (the exposing delay)", got)
	}
}

func TestOnlineReleasesCountersOnMidDelayFault(t *testing.T) {
	o := NewOnline(WaffleBasicConfig(Options{InstrCost: -1}))
	p := &Pair{Delay: "ctor.go:2", Target: "handler.go:8", Kind: UseBeforeInit, Gap: 5 * sim.Millisecond}
	o.pairs[p.key()] = p
	o.bySite[p.Delay] = []*Pair{p}
	o.lens[p.Delay] = p.Gap
	o.probs[p.Delay] = 1.0
	o.BeginRun()
	faultMidDelay(t, o)
	if o.activeTot != 0 {
		t.Fatalf("activeTot = %d after the world drained, want 0", o.activeTot)
	}
	for site, n := range o.active {
		if n != 0 {
			t.Fatalf("active[%s] = %d after the world drained, want 0", site, n)
		}
	}
}

// TestInterferenceNotSpuriouslyLiveAfterFault drives a full Waffle session
// twice over an input whose first detection run faults mid-delay, then
// checks the injector the exposing run used reports no in-flight delay —
// the precondition for interference control in any later consumer of the
// same injector state.
func TestInterferenceControlSeesNoLeakedDelayAcrossRuns(t *testing.T) {
	site := trace.SiteID("ctor.go:2")
	plan := planWith(site, 10*sim.Millisecond)
	plan.Interfere = map[trace.SiteID][]trace.SiteID{
		"other": {site}, site: {"other"},
	}
	inj := NewInjector(plan, Options{InstrCost: -1})
	faultMidDelay(t, inj)
	if inj.interferenceLive("other") {
		t.Fatal("leaked counter: faulted site's delay still reads as live")
	}
}

func TestInjectorClampsTruncatedDelayInterval(t *testing.T) {
	// The exposing fault lands 1ms into an 11.5ms delay. The recorded
	// interval must cover only the virtual time actually slept — recording
	// [start, start+d] up front would overcount Table 6's cumulative delay
	// and the §3.3 overlap metric by the truncated 10.5ms remainder.
	plan := planWith("ctor.go:2", 10*sim.Millisecond)
	inj := NewInjector(plan, Options{InstrCost: -1})
	faultMidDelay(t, inj)
	st := inj.Stats()
	if len(st.Intervals) != 1 {
		t.Fatalf("intervals = %d, want 1", len(st.Intervals))
	}
	iv := st.Intervals[0]
	// 1ms of user-thread sleep plus memmodel's 1µs intrinsic op cost.
	if want := 1001 * sim.Microsecond; iv.Dur() != want {
		t.Fatalf("interval length = %v, want %v (virtual time until the fault)", iv.Dur(), want)
	}
	if st.Total != iv.Dur() {
		t.Fatalf("Total = %v, want %v", st.Total, iv.Dur())
	}
}

func TestOnlineClampsTruncatedDelayInterval(t *testing.T) {
	o := NewOnline(WaffleBasicConfig(Options{InstrCost: -1}))
	p := &Pair{Delay: "ctor.go:2", Target: "handler.go:8", Kind: UseBeforeInit, Gap: 5 * sim.Millisecond}
	o.pairs[p.key()] = p
	o.bySite[p.Delay] = []*Pair{p}
	o.lens[p.Delay] = p.Gap
	o.probs[p.Delay] = 1.0
	o.BeginRun()
	faultMidDelay(t, o)
	st := o.Stats()
	if len(st.Intervals) != 1 {
		t.Fatalf("intervals = %d, want 1", len(st.Intervals))
	}
	if want := 1001 * sim.Microsecond; st.Intervals[0].Dur() != want {
		t.Fatalf("interval length = %v, want %v (the fixed 100ms delay was cut short)", st.Intervals[0].Dur(), want)
	}
}
