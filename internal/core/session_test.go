package core

import (
	"testing"

	"waffle/internal/memmodel"
	"waffle/internal/sim"
)

// racyInitUse is the canonical use-before-init scenario: the init naturally
// lands before the use with a small gap, so only an injected delay at the
// init site can expose the bug.
func racyInitUse() *SimProgram {
	return &SimProgram{
		Label: "racy-init-use",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			r := h.NewRef("listener")
			user := root.Spawn("event", func(th *sim.Thread) {
				th.Sleep(3 * sim.Millisecond)
				r.Use(th, "handler.go:8")
			})
			root.Sleep(1 * sim.Millisecond)
			r.Init(root, "ctor.go:2")
			root.Join(user)
		},
	}
}

// racyUseDispose is the canonical use-after-free scenario.
func racyUseDispose() *SimProgram {
	return &SimProgram{
		Label: "racy-use-dispose",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			r := h.NewRef("poller")
			r.Init(root, "ctor.go:2")
			worker := root.Spawn("worker", func(th *sim.Thread) {
				th.Sleep(1 * sim.Millisecond)
				r.Use(th, "worker.go:11")
			})
			root.Sleep(3 * sim.Millisecond)
			r.Dispose(root, "cleanup.go:8")
			root.Join(worker)
		},
	}
}

func TestWaffleExposesUseBeforeInitInTwoRuns(t *testing.T) {
	s := &Session{Prog: racyInitUse(), Tool: NewWaffle(Options{}), MaxRuns: 10, BaseSeed: 1}
	out := s.Expose()
	if out.Bug == nil {
		t.Fatal("no bug exposed")
	}
	if out.Bug.Kind() != UseBeforeInit {
		t.Fatalf("kind = %v", out.Bug.Kind())
	}
	if out.RunsToExpose() != 2 {
		t.Fatalf("runs = %d, want 2 (prep + 1 detection)", out.RunsToExpose())
	}
	if out.Bug.NullRef.Site != "handler.go:8" {
		t.Fatalf("fault site = %s", out.Bug.NullRef.Site)
	}
	if len(out.Bug.Candidates) == 0 {
		t.Fatal("bug report lacks candidate pairs")
	}
	if out.Bug.Delays.Count == 0 {
		t.Fatal("bug report lacks delay stats")
	}
}

func TestWaffleExposesUseAfterFreeInTwoRuns(t *testing.T) {
	s := &Session{Prog: racyUseDispose(), Tool: NewWaffle(Options{}), MaxRuns: 10, BaseSeed: 1}
	out := s.Expose()
	if out.Bug == nil {
		t.Fatal("no bug exposed")
	}
	if out.Bug.Kind() != UseAfterFree {
		t.Fatalf("kind = %v", out.Bug.Kind())
	}
	if out.RunsToExpose() != 2 {
		t.Fatalf("runs = %d, want 2", out.RunsToExpose())
	}
}

func TestWaffleNoFalsePositivesOnCleanProgram(t *testing.T) {
	clean := &SimProgram{
		Label: "clean",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			r := h.NewRef("r")
			r.Init(root, "init")
			var done sim.Event
			worker := root.Spawn("w", func(th *sim.Thread) {
				done.Wait(th) // use strictly after the signal
				r.Use(th, "use")
			})
			root.Sleep(2 * sim.Millisecond)
			done.Set(root)
			root.Join(worker)
			r.Dispose(root, "disp")
		},
	}
	s := &Session{Prog: clean, Tool: NewWaffle(Options{}), MaxRuns: 8, BaseSeed: 3}
	out := s.Expose()
	if out.Bug != nil {
		t.Fatalf("false positive: %v", out.Bug)
	}
	if len(out.Runs) != 8 {
		t.Fatalf("runs = %d, want all 8", len(out.Runs))
	}
}

func TestWaffleParentChildPruningRemovesForkOrderedPairs(t *testing.T) {
	// Init in the parent before the fork: causally ordered with every use
	// in the child, so Waffle must not even consider it a candidate.
	ordered := &SimProgram{
		Label: "fork-ordered",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			r := h.NewRef("r")
			r.Init(root, "pre-fork-init")
			worker := root.Spawn("w", func(th *sim.Thread) {
				th.Sleep(1 * sim.Millisecond)
				r.Use(th, "child-use")
			})
			root.Join(worker)
		},
	}
	tool := NewWaffle(Options{})
	s := &Session{Prog: ordered, Tool: tool, MaxRuns: 5, BaseSeed: 1}
	out := s.Expose()
	if out.Bug != nil {
		t.Fatalf("fork-ordered pair exposed as bug: %v", out.Bug)
	}
	if n := len(tool.Plan().Pairs); n != 0 {
		t.Fatalf("plan has %d pairs, want 0 (pruned)", n)
	}

	// Ablation keeps the pair in S (it still cannot manifest, since no
	// delay can push the init after the fork — the run stays clean).
	tool2 := NewWaffle(Options{DisableParentChild: true})
	s2 := &Session{Prog: ordered, Tool: tool2, MaxRuns: 3, BaseSeed: 1}
	out2 := s2.Expose()
	if out2.Bug != nil {
		t.Fatalf("ablation manifested an impossible bug: %v", out2.Bug)
	}
	if n := len(tool2.Plan().Pairs); n == 0 {
		t.Fatal("ablation pruned the pair anyway")
	}
}

func TestWaffleBaselineAndSlowdown(t *testing.T) {
	s := &Session{Prog: racyInitUse(), Tool: NewWaffle(Options{}), MaxRuns: 10, BaseSeed: 1}
	out := s.Expose()
	if out.BaseTime <= 0 {
		t.Fatal("no baseline measured")
	}
	if out.Slowdown() <= 0 {
		t.Fatal("no slowdown computed")
	}
	// Two runs of a program whose detection run halts early: the
	// slowdown must stay well under 4×.
	if out.Slowdown() > 4 {
		t.Fatalf("slowdown = %.2f, unexpectedly high", out.Slowdown())
	}
}

func TestWaffleDeterministicAcrossIdenticalSessions(t *testing.T) {
	run := func() (int, int64) {
		s := &Session{Prog: racyInitUse(), Tool: NewWaffle(Options{}), MaxRuns: 10, BaseSeed: 7}
		out := s.Expose()
		if out.Bug == nil {
			return 0, 0
		}
		return out.Bug.Run, int64(out.TotalTime)
	}
	r1, t1 := run()
	r2, t2 := run()
	if r1 != r2 || t1 != t2 {
		t.Fatalf("identical sessions diverged: (%d,%d) vs (%d,%d)", r1, t1, r2, t2)
	}
}

func TestWaffleNoPrepAblationStillFindsEasyBug(t *testing.T) {
	// Without a preparation run, identification happens online; the init
	// site executes once per run, so the earliest exposure is run 2.
	s := &Session{Prog: racyInitUse(), Tool: NewWaffle(Options{DisablePrepRun: true}), MaxRuns: 20, BaseSeed: 1}
	out := s.Expose()
	if out.Bug == nil {
		t.Fatal("no-prep ablation found nothing")
	}
	if out.Bug.Run < 2 {
		t.Fatalf("bug in run %d — impossible for a once-per-run init site", out.Bug.Run)
	}
	if out.Tool != "waffle(no-prep)" {
		t.Fatalf("tool name = %s", out.Tool)
	}
}

func TestSessionRunReportsAccumulate(t *testing.T) {
	s := &Session{Prog: racyInitUse(), Tool: NewWaffle(Options{}), MaxRuns: 10, BaseSeed: 1}
	out := s.Expose()
	if len(out.Runs) != out.Bug.Run {
		t.Fatalf("runs recorded = %d, exposed at %d", len(out.Runs), out.Bug.Run)
	}
	for i, r := range out.Runs {
		if r.Run != i+1 {
			t.Fatalf("run %d numbered %d", i, r.Run)
		}
		if r.Seed != s.BaseSeed+int64(i) {
			t.Fatalf("run %d seed = %d", i, r.Seed)
		}
	}
	// Prep run injects nothing.
	if out.Runs[0].Stats.Count != 0 {
		t.Fatalf("prep run injected %d delays", out.Runs[0].Stats.Count)
	}
}

func TestBugReportString(t *testing.T) {
	s := &Session{Prog: racyUseDispose(), Tool: NewWaffle(Options{}), MaxRuns: 10, BaseSeed: 1}
	out := s.Expose()
	if out.Bug == nil {
		t.Fatal("no bug")
	}
	str := out.Bug.String()
	if str == "" {
		t.Fatal("empty report string")
	}
}
