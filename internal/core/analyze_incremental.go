package core

import (
	"waffle/internal/sim"
	"waffle/internal/trace"
	"waffle/internal/vclock"
)

// AnalyzeIncremental re-analyzes a trace by diffing it against the previous
// campaign's trace and reusing the previous plan's per-object analysis for
// everything that did not change.
//
// The dirtiness rule: an object is *clean* when its event projection — the
// (T, TID, Site, Kind, Dur, Clock) sequence of its accesses — is identical
// in both traces. Pass 1 (near-miss candidate pairs) is a per-object scan,
// so a clean object's pairs are folded straight from the cache; only dirty
// objects are rescanned. Pass 3 (interference edges) additionally depends
// on the event stream of the target event's thread and on the plan's
// injection-site set, so a cached instance's edges are replayed only when
// its object is clean, that thread's (T, Site, Obj, Kind) stream is
// unchanged, and the new plan's injection sites equal the cached set;
// otherwise the instance is re-scanned with instanceEdges. Every reuse
// condition implies the from-scratch scan would have made exactly the same
// observations, so the assembled plan is bit-identical to Analyze's — the
// equivalence suite byte-compares the two on every built-in trace and on
// generated corpora.
//
// prev is the plan returned by a previous AnalyzeIncremental over
// prevTrace. When prev carries no usable cache — nil plan, a plan loaded
// from JSON, a nil prevTrace, or analysis options (Window,
// DisableParentChild) that differ from the cached ones — the call degrades
// to a full scan that seeds the cache for next time. Bootstrapping is
// therefore just AnalyzeIncremental(nil, nil, tr, opts). Incremental
// analysis is single-threaded; opts.AnalyzeWorkers is ignored here.
func AnalyzeIncremental(prev *Plan, prevTrace, tr *trace.Trace, opts Options) *Plan {
	opts = opts.WithDefaults()
	defer opts.Metrics.Span("phase.analyze").Time()()
	opts.Metrics.Counter("analyze.trace_events").Add(int64(len(tr.Events)))
	var st *incState
	var pt *trace.Trace
	if prev != nil && prev.inc != nil && prevTrace != nil &&
		prev.inc.window == opts.Window && prev.inc.noPC == opts.DisableParentChild {
		st, pt = prev.inc, prevTrace
	}
	plan := analyzeWithState(tr, opts, st, pt)
	meterPlan(opts.Metrics, plan)
	return plan
}

// incState is the analysis cache AnalyzeIncremental threads between
// campaigns, carried on the plan it returns. It is immutable once built.
type incState struct {
	window sim.Duration // Options.Window the cache was built under
	noPC   bool         // Options.DisableParentChild ditto

	// injection is the plan's injection-site set at analysis time. Pass-3
	// reuse compares against this rather than the live Probs map, which
	// detection runs decay and MergeFrom extends.
	injection map[trace.SiteID]bool

	// interfere is pass 3's finished output (sorted per-site lists). When
	// every object and thread is clean and the injection set is unchanged,
	// the whole pass is skipped and these lists are copied into the new
	// plan — rebuilding the edge set from per-instance adds costs as much
	// as pass 3 itself, so the fully-clean fast path must not touch it.
	interfere map[trace.SiteID][]trace.SiteID

	// byObj and byThread index the cached trace, so re-analysis does not
	// rebuild the previous campaign's groupings just to diff against them.
	byObj    map[trace.ObjID][]int
	byThread map[int][]int

	objs map[trace.ObjID]*objState
}

// objState caches one object's analysis output.
type objState struct {
	pairs []Pair      // pass-1 pairs restricted to this object's accesses
	insts []instState // the object's dynamic candidate instances
}

// instState is one dynamic candidate instance, positioned relative to its
// object's event projection so it stays valid while other objects churn.
type instState struct {
	key    pairKey
	p1, p2 int // positions within the object's projection
	tid    int // e2's thread (the one pass 3 scans)

	// edges replays this instance's pass-3 contribution: the exact add
	// calls instanceEdges made when the instance was last scanned.
	edges [][2]trace.SiteID
}

// analyzeWithState runs the three analysis passes, reusing prev's cached
// per-object results where the dirtiness rule allows, and attaches a fresh
// cache to the returned plan. A nil prev runs a full scan (the bootstrap
// path). Invariant on return: every cached instState.edges reflects the
// current trace, so chained incremental calls stay exact.
func analyzeWithState(tr *trace.Trace, opts Options, prev *incState, prevTrace *trace.Trace) *Plan {
	next := &incState{
		window: opts.Window,
		noPC:   opts.DisableParentChild,
		objs:   make(map[trace.ObjID]*objState),
	}
	byObj := tr.ByObject()
	next.byObj = byObj
	var prevByObj map[trace.ObjID][]int
	if prev != nil {
		prevByObj = prev.byObj
	}
	cleanCtr := opts.Metrics.Counter("analyze.objects_clean")
	dirtyCtr := opts.Metrics.Counter("analyze.objects_dirty")

	// Pass 1: fold clean objects' cached pairs, rescan dirty ones. The
	// global pair map merges per-object aggregates commutatively (counts
	// sum, gaps max), so object iteration order cannot affect the result.
	globalPairs := make(map[pairKey]*Pair)
	allObjsClean := prev != nil && len(byObj) == len(prevByObj)
	cleanObj := make(map[trace.ObjID]bool, len(byObj))
	for obj, idxs := range byObj {
		if prev != nil {
			if os := prev.objs[obj]; os != nil && objProjectionEqual(prevTrace, prevByObj[obj], tr, idxs) {
				cleanObj[obj] = true
				cleanCtr.Inc()
				foldPairs(globalPairs, os.pairs)
				insts := make([]instState, len(os.insts))
				copy(insts, os.insts)
				next.objs[obj] = &objState{pairs: os.pairs, insts: insts}
				continue
			}
		}
		allObjsClean = false
		dirtyCtr.Inc()
		oacc := newPairAccum(opts)
		oacc.scanObject(tr.Events, idxs)
		os := &objState{pairs: flattenPairs(oacc.pairs)}
		foldPairs(globalPairs, os.pairs)
		pos := make(map[int]int, len(idxs))
		for p, gi := range idxs {
			pos[gi] = p
		}
		os.insts = make([]instState, len(oacc.instances))
		for i, in := range oacc.instances {
			os.insts[i] = instState{
				key: in.key,
				p1:  pos[in.e1],
				p2:  pos[in.e2],
				tid: tr.Events[in.e2].TID,
			}
		}
		next.objs[obj] = os
	}
	plan := assemblePlan(tr.Label, opts, globalPairs)

	// Pass 3: replay cached edges where the reuse conditions hold,
	// re-scan otherwise.
	injection := injectionSet(plan)
	next.injection = injection
	byThread := buildByThread(tr)
	next.byThread = byThread
	sameInj := prev != nil && siteSetEqual(injection, prev.injection)
	var prevByThread map[int][]int
	if sameInj {
		prevByThread = prev.byThread
	}
	cleanThr := make(map[int]bool)
	threadClean := func(tid int) bool {
		v, ok := cleanThr[tid]
		if !ok {
			v = threadStreamEqual(prevTrace, prevByThread[tid], tr, byThread[tid])
			cleanThr[tid] = v
		}
		return v
	}
	reusedCtr := opts.Metrics.Counter("analyze.instances_reused")

	// Fully-clean fast path: no object changed, no thread's stream changed,
	// and the injection-site set is the same — every instance's scan would
	// repeat verbatim, so the previous campaign's finished interference
	// lists are the answer. Copying them (rather than replaying per-instance
	// adds into a fresh edge set) is what makes repeated-corpus campaigns
	// cheap: the edge-set rebuild costs as much as the scans themselves.
	if sameInj && allObjsClean && threadsAllClean(byThread, prevByThread, threadClean) {
		for s, list := range prev.interfere {
			cp := make([]trace.SiteID, len(list))
			copy(cp, list)
			plan.Interfere[s] = cp
		}
		next.interfere = prev.interfere
		for _, os := range next.objs {
			reusedCtr.Add(int64(len(os.insts)))
		}
		plan.inc = next
		return plan
	}

	es := make(edgeSet)
	for obj, os := range next.objs {
		idxs := byObj[obj]
		for i := range os.insts {
			in := &os.insts[i]
			// Clean-object instances were copied from the cache, so their
			// recorded edges are exactly what a scan of the previous trace
			// produced; with the thread stream and injection set unchanged,
			// a scan of this trace would repeat them verbatim.
			if sameInj && cleanObj[obj] && threadClean(in.tid) {
				for _, e := range in.edges {
					es.add(e[0], e[1])
				}
				reusedCtr.Inc()
				continue
			}
			cur := instance{key: in.key, e1: idxs[in.p1], e2: idxs[in.p2]}
			var edges [][2]trace.SiteID
			instanceEdges(tr, byThread, injection, cur, opts.Window, func(a, b trace.SiteID) {
				es.add(a, b)
				edges = append(edges, [2]trace.SiteID{a, b})
			})
			in.edges = edges
		}
	}
	es.fill(plan)
	// Cache the finished lists. The map is copied but the slices are
	// shared: nothing mutates an interference list in place (Plan.MergeFrom
	// appends, and fill builds the lists at exact capacity, so any append
	// reallocates rather than scribbling on the cached backing array).
	next.interfere = make(map[trace.SiteID][]trace.SiteID, len(plan.Interfere))
	for s, list := range plan.Interfere {
		next.interfere[s] = list
	}
	plan.inc = next
	return plan
}

// threadsAllClean reports whether the two campaigns saw the same thread
// population with identical per-thread streams.
func threadsAllClean(byThread, prevByThread map[int][]int, threadClean func(int) bool) bool {
	if len(byThread) != len(prevByThread) {
		return false
	}
	for tid := range byThread {
		if !threadClean(tid) {
			return false
		}
	}
	return true
}

// flattenPairs copies a pass-1 pair map into a value slice (any order: the
// consumers fold commutatively or sort).
func flattenPairs(m map[pairKey]*Pair) []Pair {
	out := make([]Pair, 0, len(m))
	for _, p := range m {
		out = append(out, *p)
	}
	return out
}

// foldPairs merges per-object pair aggregates into the global pass-1 map
// with pairAccum.mergeFrom's semantics: counts sum, gaps max-merge.
func foldPairs(dst map[pairKey]*Pair, pairs []Pair) {
	for _, p := range pairs {
		k := p.key()
		if q, ok := dst[k]; ok {
			q.Count += p.Count
			if p.Gap > q.Gap {
				q.Gap = p.Gap
			}
		} else {
			cp := p
			dst[k] = &cp
		}
	}
}

// objProjectionEqual reports whether an object's event projection is
// identical in both traces across every field pass 1 reads (timestamps,
// threads, sites, kinds, durations, and fork-clock contents).
func objProjectionEqual(pt *trace.Trace, pIdxs []int, nt *trace.Trace, nIdxs []int) bool {
	if len(pIdxs) != len(nIdxs) {
		return false
	}
	for i := range nIdxs {
		a, b := &pt.Events[pIdxs[i]], &nt.Events[nIdxs[i]]
		if a.T != b.T || a.TID != b.TID || a.Site != b.Site || a.Kind != b.Kind || a.Dur != b.Dur {
			return false
		}
		if !vclock.Equal(a.Clock, b.Clock) {
			return false
		}
	}
	return true
}

// threadStreamEqual reports whether a thread executed the same (T, Site,
// Obj, Kind) event stream in both traces — everything pass 3's windowed
// scan of that thread can observe.
func threadStreamEqual(pt *trace.Trace, pIdxs []int, nt *trace.Trace, nIdxs []int) bool {
	if len(pIdxs) != len(nIdxs) {
		return false
	}
	for i := range nIdxs {
		a, b := &pt.Events[pIdxs[i]], &nt.Events[nIdxs[i]]
		if a.T != b.T || a.Site != b.Site || a.Obj != b.Obj || a.Kind != b.Kind {
			return false
		}
	}
	return true
}

// siteSetEqual reports set equality of two site-membership maps.
func siteSetEqual(a, b map[trace.SiteID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for s := range a {
		if !b[s] {
			return false
		}
	}
	return true
}
