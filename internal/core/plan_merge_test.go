package core

import (
	"reflect"
	"testing"

	"waffle/internal/sim"
	"waffle/internal/trace"
)

// mergePlan builds a plan from compact literals for the merge tables.
func mergePlan(pairs []Pair, probs map[trace.SiteID]float64, lens map[trace.SiteID]sim.Duration, interfere map[trace.SiteID][]trace.SiteID) *Plan {
	return &Plan{
		Label: "merge/test", Window: sim.Millisecond,
		Pairs: pairs, Probs: probs, DelayLen: lens, Interfere: interfere,
	}
}

func TestPlanCloneIsDeepAndIndependent(t *testing.T) {
	p := mergePlan(
		[]Pair{{Delay: "a", Target: "b", Kind: UseBeforeInit, Gap: 5, Count: 2}},
		map[trace.SiteID]float64{"a": 1.0},
		map[trace.SiteID]sim.Duration{"a": 5},
		map[trace.SiteID][]trace.SiteID{"a": {"c"}},
	)
	c := p.Clone()
	if !reflect.DeepEqual(p, c) {
		t.Fatalf("clone differs: %+v vs %+v", p, c)
	}
	// Mutating the clone must not leak into the original.
	c.Probs["a"] = 0.3
	c.DelayLen["a"] = 9
	c.Interfere["a"][0] = "z"
	c.Pairs[0].Count = 99
	if p.Probs["a"] != 1.0 || p.DelayLen["a"] != 5 || p.Interfere["a"][0] != "c" || p.Pairs[0].Count != 2 {
		t.Fatalf("clone shares state with original: %+v", p)
	}
}

func TestPlanMergeFromTable(t *testing.T) {
	base := func() *Plan {
		return mergePlan(
			[]Pair{{Delay: "a", Target: "b", Kind: UseBeforeInit, Gap: 5}},
			map[trace.SiteID]float64{"a": 0.8, "b": 0.5},
			map[trace.SiteID]sim.Duration{"a": 5},
			map[trace.SiteID][]trace.SiteID{"a": {"b"}},
		)
	}
	cases := []struct {
		name      string
		other     *Plan
		wantProbs map[trace.SiteID]float64
		wantLens  map[trace.SiteID]sim.Duration
		wantPairs int
		wantIntf  map[trace.SiteID][]trace.SiteID
	}{
		{
			name: "min-merge probs, keep unmentioned sites",
			other: mergePlan(nil,
				map[trace.SiteID]float64{"a": 0.3}, nil, nil),
			wantProbs: map[trace.SiteID]float64{"a": 0.3, "b": 0.5},
			wantLens:  map[trace.SiteID]sim.Duration{"a": 5},
			wantPairs: 1,
			wantIntf:  map[trace.SiteID][]trace.SiteID{"a": {"b"}},
		},
		{
			name: "higher prob in other loses",
			other: mergePlan(nil,
				map[trace.SiteID]float64{"a": 0.9}, nil, nil),
			wantProbs: map[trace.SiteID]float64{"a": 0.8, "b": 0.5},
			wantLens:  map[trace.SiteID]sim.Duration{"a": 5},
			wantPairs: 1,
			wantIntf:  map[trace.SiteID][]trace.SiteID{"a": {"b"}},
		},
		{
			name: "max-merge delay lens, union pairs and interference",
			other: mergePlan(
				[]Pair{
					{Delay: "a", Target: "b", Kind: UseBeforeInit, Gap: 5}, // dup: dropped
					{Delay: "c", Target: "d", Kind: UseAfterFree, Gap: 7},  // new
				},
				map[trace.SiteID]float64{"c": 1.0},
				map[trace.SiteID]sim.Duration{"a": 9, "c": 7},
				map[trace.SiteID][]trace.SiteID{"a": {"b", "c"}, "c": {"a"}},
			),
			wantProbs: map[trace.SiteID]float64{"a": 0.8, "b": 0.5, "c": 1.0},
			wantLens:  map[trace.SiteID]sim.Duration{"a": 9, "c": 7},
			wantPairs: 2,
			wantIntf:  map[trace.SiteID][]trace.SiteID{"a": {"b", "c"}, "c": {"a"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base()
			p.MergeFrom(tc.other)
			if !reflect.DeepEqual(p.Probs, tc.wantProbs) {
				t.Errorf("probs = %v, want %v", p.Probs, tc.wantProbs)
			}
			if !reflect.DeepEqual(p.DelayLen, tc.wantLens) {
				t.Errorf("lens = %v, want %v", p.DelayLen, tc.wantLens)
			}
			if len(p.Pairs) != tc.wantPairs {
				t.Errorf("pairs = %d, want %d", len(p.Pairs), tc.wantPairs)
			}
			if !reflect.DeepEqual(p.Interfere, tc.wantIntf) {
				t.Errorf("interfere = %v, want %v", p.Interfere, tc.wantIntf)
			}

			// Idempotence: merging the same clone twice changes nothing.
			before := p.Clone()
			p.MergeFrom(tc.other)
			if !reflect.DeepEqual(p.Probs, before.Probs) || !reflect.DeepEqual(p.DelayLen, before.DelayLen) ||
				len(p.Pairs) != len(before.Pairs) || !reflect.DeepEqual(p.Interfere, before.Interfere) {
				t.Errorf("merge not idempotent: %+v vs %+v", p, before)
			}
		})
	}
}

func TestPlanMergeFromCommutative(t *testing.T) {
	// Two workers' decayed clones must fold back in either order with the
	// same resulting probabilities and delay lengths.
	a := mergePlan(
		[]Pair{{Delay: "a", Target: "b", Kind: UseBeforeInit, Gap: 5}},
		map[trace.SiteID]float64{"a": 0.6, "b": 0.5},
		map[trace.SiteID]sim.Duration{"a": 5},
		map[trace.SiteID][]trace.SiteID{"a": {"b"}},
	)
	b := mergePlan(
		[]Pair{{Delay: "c", Target: "d", Kind: UseAfterFree, Gap: 3}},
		map[trace.SiteID]float64{"a": 0.4, "c": 0.9},
		map[trace.SiteID]sim.Duration{"a": 8, "c": 3},
		map[trace.SiteID][]trace.SiteID{"c": {"d"}},
	)
	ab := a.Clone()
	ab.MergeFrom(b)
	ba := b.Clone()
	ba.MergeFrom(a)
	if !reflect.DeepEqual(ab.Probs, ba.Probs) {
		t.Errorf("probs not commutative: %v vs %v", ab.Probs, ba.Probs)
	}
	if !reflect.DeepEqual(ab.DelayLen, ba.DelayLen) {
		t.Errorf("lens not commutative: %v vs %v", ab.DelayLen, ba.DelayLen)
	}
	if len(ab.Pairs) != 2 || len(ba.Pairs) != 2 {
		t.Errorf("pair union sizes: %d and %d, want 2", len(ab.Pairs), len(ba.Pairs))
	}
}
