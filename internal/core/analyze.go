package core

import (
	"sort"

	"waffle/internal/obs"
	"waffle/internal/sim"
	"waffle/internal/trace"
	"waffle/internal/vclock"
)

// Analyze implements Waffle's trace analyzer (§5, component 2): from one
// unperturbed preparation-run trace it constructs the candidate set S
// (near-miss pairs surviving parent-child pruning), the per-site delay
// lengths, and the interference set I.
//
// With Options.AnalyzeWorkers > 1 the analysis is sharded across a worker
// pool (see AnalyzeParallel); the result is bit-identical to the
// sequential analyzer either way.
func Analyze(tr *trace.Trace, opts Options) *Plan {
	opts = opts.WithDefaults()
	defer opts.Metrics.Span("phase.analyze").Time()()
	opts.Metrics.Counter("analyze.trace_events").Add(int64(len(tr.Events)))
	var plan *Plan
	if opts.AnalyzeWorkers > 1 {
		plan = AnalyzeParallel(tr, opts, opts.AnalyzeWorkers)
	} else {
		plan = analyzeSequential(tr, opts)
	}
	meterPlan(opts.Metrics, plan)
	return plan
}

// meterPlan publishes a finished plan's shape: candidate pairs admitted to
// S and (symmetric, counted once per unordered pair) interference edges.
func meterPlan(r *obs.Registry, plan *Plan) {
	if r == nil {
		return
	}
	r.Counter("analyze.candidate_pairs").Add(int64(len(plan.Pairs)))
	var edges int64
	for a, others := range plan.Interfere {
		for _, b := range others {
			if a <= b {
				edges++
			}
		}
	}
	r.Counter("analyze.interference_edges").Add(edges)
}

// instance is one dynamic occurrence of a candidate pair: the pair it
// instantiates plus the Seq positions of its two events. Instances drive
// pass 3, which inspects the trace around each occurrence.
type instance struct {
	key    pairKey
	e1, e2 int // event indexes into the trace
}

// nearMiss applies the §3.1/§4.1 candidate rules to an ordered event pair
// (e1 precedes e2 in the trace): a use within δ after another thread's
// initialization is a use-before-init candidate, a disposal within δ after
// another thread's use is a use-after-free candidate, and pairs ordered by
// fork-propagated vector clocks are pruned unless the parent-child
// ablation is active.
func nearMiss(e1, e2 *trace.Event, opts Options) (BugKind, bool) {
	return nearMissCounted(e1, e2, opts, nil)
}

// nearMissCounted is nearMiss with an optional counter for dynamic
// near-miss instances rejected by the fork-clock pruning rule — pairs that
// would have entered S without §4.1's parent-child analysis. The counter
// only observes; a nil counter restores plain nearMiss.
func nearMissCounted(e1, e2 *trace.Event, opts Options, pruned *obs.Counter) (BugKind, bool) {
	var kind BugKind
	staleOnly := false // pair shape exists only as a TSO stale-read candidate
	switch {
	case e1.Kind == trace.KindInit && e2.Kind == trace.KindUse:
		kind = UseBeforeInit
	case e1.Kind == trace.KindUse && e2.Kind == trace.KindDispose:
		kind = UseAfterFree
	case opts.TSO && e1.Kind == trace.KindDispose && e2.Kind == trace.KindUse:
		kind = StaleRead
		staleOnly = true
	default:
		return 0, false
	}
	if e1.TID == e2.TID {
		return 0, false
	}
	inWindow := func() bool {
		gap := e2.T.Sub(e1.T)
		return gap >= 0 && gap < opts.Window
	}
	if !opts.DisableParentChild && vclock.Ordered(e1.Clock, e2.Clock) {
		// Fork-ordered pairs cannot reorder, so they are never UBI/UAF
		// candidates — but under TSO an ordered cross-thread store→read
		// within the window is exactly where a buffered store can be
		// observed stale: the write commits late, not the write executes
		// late. (Use→Dispose stays pruned: the first access is a read;
		// there is no store whose visibility a flush delay could hold back.)
		if opts.TSO && kind != UseAfterFree && inWindow() {
			return StaleRead, true
		}
		// Count only instances the remaining rules would have admitted, so
		// the metric reads as "work the pruning rule actually saved".
		if !staleOnly && inWindow() {
			pruned.Inc()
		}
		return 0, false
	}
	if staleOnly || !inWindow() {
		// Unordered dispose→use is a plain race the SC rules already
		// model; the TSO shape is only meaningful on ordered pairs.
		return 0, false
	}
	return kind, true
}

// pairAccum accumulates pass-1 output: the candidate pairs (keyed for
// merging across shards) and the dynamic instances feeding pass 3. The
// sequential, sharded, and streaming analyzers all funnel through it so
// their candidate sets are identical.
type pairAccum struct {
	opts  Options
	pairs map[pairKey]*Pair
	// pruned counts near-miss instances rejected by fork-clock ordering
	// (analyze.pairs_pruned); nil without a registry.
	pruned *obs.Counter
	// noInstances drops instance bookkeeping — the streaming analyzer's
	// first pass only needs the pairs and re-derives instances on its
	// second pass, so buffering every occurrence would defeat the point.
	noInstances bool
	instances   []instance
}

func newPairAccum(opts Options) *pairAccum {
	return &pairAccum{
		opts:   opts,
		pairs:  make(map[pairKey]*Pair),
		pruned: opts.Metrics.Counter("analyze.pairs_pruned"),
	}
}

// observe feeds one ordered event pair through the near-miss rules.
func (pa *pairAccum) observe(e1, e2 *trace.Event) {
	kind, ok := nearMissCounted(e1, e2, pa.opts, pa.pruned)
	if !ok {
		return
	}
	k := pairKey{delay: e1.Site, target: e2.Site, kind: kind}
	p, ok := pa.pairs[k]
	if !ok {
		p = &Pair{Delay: e1.Site, Target: e2.Site, Kind: kind}
		pa.pairs[k] = p
	}
	p.Count++
	if gap := e2.T.Sub(e1.T); gap > p.Gap {
		p.Gap = gap
	}
	if !pa.noInstances {
		pa.instances = append(pa.instances, instance{key: k, e1: e1.Seq, e2: e2.Seq})
	}
}

// scanObject runs pass 1 over one object's event-index list. The list must
// be time-sorted (Recorder output is, by construction): the inner loop
// breaks out at the first event past the window, so an out-of-order list
// would hide later in-window pairs behind an early far-future event.
func (pa *pairAccum) scanObject(events []trace.Event, idxs []int) {
	for i, i1 := range idxs {
		e1 := &events[i1]
		if !e1.Kind.IsMemOrder() {
			continue
		}
		for _, i2 := range idxs[i+1:] {
			e2 := &events[i2]
			if e2.T.Sub(e1.T) >= pa.opts.Window {
				break
			}
			pa.observe(e1, e2)
		}
	}
}

// mergeFrom folds another shard's accumulator in: counts sum, gaps
// max-merge, instances concatenate. (Plan.MergeFrom cannot serve here —
// it unions pairs keeping the first copy, the right semantics for
// detection-run clones that share one plan but wrong for shards that each
// saw a disjoint slice of the same pair's occurrences.)
func (pa *pairAccum) mergeFrom(o *pairAccum) {
	for k, op := range o.pairs {
		p, ok := pa.pairs[k]
		if !ok {
			cp := *op
			pa.pairs[k] = &cp
			continue
		}
		p.Count += op.Count
		if op.Gap > p.Gap {
			p.Gap = op.Gap
		}
	}
	pa.instances = append(pa.instances, o.instances...)
}

// assemblePlan builds the plan skeleton shared by every analyzer variant:
// the sorted candidate set S, then pass 2's per-site delay lengths and
// initial injection probabilities.
func assemblePlan(label string, opts Options, pairs map[pairKey]*Pair) *Plan {
	plan := &Plan{
		Label:     label,
		Window:    opts.Window,
		DelayLen:  make(map[trace.SiteID]sim.Duration),
		Interfere: make(map[trace.SiteID][]trace.SiteID),
		Probs:     make(map[trace.SiteID]float64),
	}
	for _, p := range pairs {
		plan.Pairs = append(plan.Pairs, *p)
	}
	sort.Slice(plan.Pairs, func(i, j int) bool {
		a, b := plan.Pairs[i], plan.Pairs[j]
		if a.Delay != b.Delay {
			return a.Delay < b.Delay
		}
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		return a.Kind < b.Kind
	})

	// Pass 2: per-site delay lengths — len(ℓ1) is the largest gap among
	// pairs delaying at ℓ1 (§4.3) — and initial injection probabilities.
	// The DelayLen entry is created even when the largest gap is zero
	// (simultaneous timestamps): the injector treats map membership as
	// "is a candidate", and delayFor floors the injected delay at
	// MinDelay, so a zero-gap candidate still receives a delay long
	// enough to flip the order instead of silently never being injected.
	for _, p := range plan.Pairs {
		if cur, ok := plan.DelayLen[p.Delay]; !ok || p.Gap > cur {
			plan.DelayLen[p.Delay] = p.Gap
		}
		plan.Probs[p.Delay] = 1.0
	}
	return plan
}

// injectionSet returns the plan's delay sites as a membership set.
func injectionSet(plan *Plan) map[trace.SiteID]bool {
	injection := make(map[trace.SiteID]bool, len(plan.Probs))
	for s := range plan.Probs {
		injection[s] = true
	}
	return injection
}

// buildByThread groups event indexes by thread, preserving trace order.
func buildByThread(tr *trace.Trace) map[int][]int {
	byThread := make(map[int][]int)
	for i, e := range tr.Events {
		byThread[e.TID] = append(byThread[e.TID], i)
	}
	return byThread
}

// edgeSet accumulates the symmetric interference relation I.
type edgeSet map[trace.SiteID]map[trace.SiteID]bool

func (es edgeSet) add(a, b trace.SiteID) {
	if es[a] == nil {
		es[a] = make(map[trace.SiteID]bool)
	}
	if es[b] == nil {
		es[b] = make(map[trace.SiteID]bool)
	}
	es[a][b] = true
	es[b][a] = true
}

// fill converts the edge set into the plan's sorted-list form.
func (es edgeSet) fill(plan *Plan) {
	for a, set := range es {
		out := make([]trace.SiteID, 0, len(set))
		for b := range set {
			out = append(out, b)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		plan.Interfere[a] = out
	}
}

// instanceEdges runs pass 3 (§4.4) for one dynamic candidate instance
// (ℓ1 at τ1, ℓ2 at τ2): any injection site ℓ* exercised by ℓ2's thread in
// [τ1−δ, τ2] would, if delayed, block that thread and cancel a delay at
// ℓ1 — record (ℓ1, ℓ*) symmetrically. ℓ* == ℓ1 is excluded: another
// thread reaching the same site is the concurrency being provoked, not a
// cancellation, and a self-edge would make interferenceLive forbid
// concurrent delays at one site across threads — a restriction the
// paper's Fig. 5 window does not call for.
func instanceEdges(tr *trace.Trace, byThread map[int][]int, injection map[trace.SiteID]bool, inst instance, window sim.Duration, add func(a, b trace.SiteID)) {
	e1, e2 := &tr.Events[inst.e1], &tr.Events[inst.e2]
	lo := e1.T.Add(-window)
	tidEvents := byThread[e2.TID]
	// Binary search the first event of ℓ2's thread at or after lo.
	start := sort.Search(len(tidEvents), func(i int) bool {
		return tr.Events[tidEvents[i]].T >= lo
	})
	for _, ei := range tidEvents[start:] {
		es := &tr.Events[ei]
		if es.Seq >= e2.Seq {
			break
		}
		if es.Site != inst.key.delay && injection[es.Site] {
			add(inst.key.delay, es.Site)
		}
	}
}

// analyzeSequential is the single-threaded analyzer all sharded variants
// are checked against.
func analyzeSequential(tr *trace.Trace, opts Options) *Plan {
	// Pass 1: near-miss candidate pairs per object (§3.1, §4.1).
	acc := newPairAccum(opts)
	for _, idxs := range tr.ByObject() {
		acc.scanObject(tr.Events, idxs)
	}
	plan := assemblePlan(tr.Label, opts, acc.pairs)

	// Pass 3: the interference set I (§4.4).
	injection := injectionSet(plan)
	byThread := buildByThread(tr)
	es := make(edgeSet)
	for _, inst := range acc.instances {
		instanceEdges(tr, byThread, injection, inst, opts.Window, es.add)
	}
	es.fill(plan)
	return plan
}
