package core

import (
	"sort"

	"waffle/internal/sim"
	"waffle/internal/trace"
	"waffle/internal/vclock"
)

// Analyze implements Waffle's trace analyzer (§5, component 2): from one
// unperturbed preparation-run trace it constructs the candidate set S
// (near-miss pairs surviving parent-child pruning), the per-site delay
// lengths, and the interference set I.
func Analyze(tr *trace.Trace, opts Options) *Plan {
	opts = opts.WithDefaults()
	plan := &Plan{
		Label:     tr.Label,
		Window:    opts.Window,
		DelayLen:  make(map[trace.SiteID]sim.Duration),
		Interfere: make(map[trace.SiteID][]trace.SiteID),
		Probs:     make(map[trace.SiteID]float64),
	}

	// Pass 1: near-miss candidate pairs per object (§3.1, §4.1).
	//
	// A use at ℓ2 within δ after an initialization at ℓ1, from a different
	// thread, is a use-before-init candidate (delay the init). A disposal
	// at ℓ2 within δ after a use at ℓ1, from a different thread, is a
	// use-after-free candidate (delay the use). Pairs whose two events are
	// ordered by fork-propagated vector clocks are pruned unless the
	// parent-child ablation is active.
	pairs := make(map[pairKey]*Pair)
	type instance struct {
		key    pairKey
		e1, e2 int // event indexes into tr.Events
	}
	var instances []instance

	addPair := func(e1, e2 *trace.Event, kind BugKind) {
		if e1.TID == e2.TID {
			return
		}
		if !opts.DisableParentChild && vclock.Ordered(e1.Clock, e2.Clock) {
			return
		}
		gap := e2.T.Sub(e1.T)
		if gap < 0 || gap >= opts.Window {
			return
		}
		k := pairKey{delay: e1.Site, target: e2.Site, kind: kind}
		p, ok := pairs[k]
		if !ok {
			p = &Pair{Delay: e1.Site, Target: e2.Site, Kind: kind}
			pairs[k] = p
		}
		p.Count++
		if gap > p.Gap {
			p.Gap = gap
		}
		instances = append(instances, instance{key: k, e1: e1.Seq, e2: e2.Seq})
	}

	for _, idxs := range tr.ByObject() {
		for i, i1 := range idxs {
			e1 := &tr.Events[i1]
			if !e1.Kind.IsMemOrder() {
				continue
			}
			for _, i2 := range idxs[i+1:] {
				e2 := &tr.Events[i2]
				if e2.T.Sub(e1.T) >= opts.Window {
					break
				}
				switch {
				case e1.Kind == trace.KindInit && e2.Kind == trace.KindUse:
					addPair(e1, e2, UseBeforeInit)
				case e1.Kind == trace.KindUse && e2.Kind == trace.KindDispose:
					addPair(e1, e2, UseAfterFree)
				}
			}
		}
	}

	for _, p := range pairs {
		plan.Pairs = append(plan.Pairs, *p)
	}
	sort.Slice(plan.Pairs, func(i, j int) bool {
		a, b := plan.Pairs[i], plan.Pairs[j]
		if a.Delay != b.Delay {
			return a.Delay < b.Delay
		}
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		return a.Kind < b.Kind
	})

	// Pass 2: per-site delay lengths — len(ℓ1) is the largest gap among
	// pairs delaying at ℓ1 (§4.3) — and initial injection probabilities.
	for _, p := range plan.Pairs {
		if p.Gap > plan.DelayLen[p.Delay] {
			plan.DelayLen[p.Delay] = p.Gap
		}
		plan.Probs[p.Delay] = 1.0
	}

	// Pass 3: the interference set I (§4.4). For every dynamic candidate
	// instance (ℓ1 at τ1, ℓ2 at τ2): any injection site ℓ* exercised by
	// ℓ2's thread in [τ1−δ, τ2] would, if delayed, block that thread and
	// cancel a delay at ℓ1 — record (ℓ1, ℓ*) symmetrically.
	injection := make(map[trace.SiteID]bool, len(plan.Probs))
	for s := range plan.Probs {
		injection[s] = true
	}
	byThread := make(map[int][]int)
	for i, e := range tr.Events {
		byThread[e.TID] = append(byThread[e.TID], i)
	}
	interfere := make(map[trace.SiteID]map[trace.SiteID]bool)
	addEdge := func(a, b trace.SiteID) {
		if interfere[a] == nil {
			interfere[a] = make(map[trace.SiteID]bool)
		}
		if interfere[b] == nil {
			interfere[b] = make(map[trace.SiteID]bool)
		}
		interfere[a][b] = true
		interfere[b][a] = true
	}
	for _, inst := range instances {
		e1, e2 := &tr.Events[inst.e1], &tr.Events[inst.e2]
		lo := e1.T.Add(-opts.Window)
		tidEvents := byThread[e2.TID]
		// Binary search the first event of ℓ2's thread at or after lo.
		start := sort.Search(len(tidEvents), func(i int) bool {
			return tr.Events[tidEvents[i]].T >= lo
		})
		for _, ei := range tidEvents[start:] {
			es := &tr.Events[ei]
			if es.Seq >= e2.Seq {
				break
			}
			if injection[es.Site] {
				addEdge(inst.key.delay, es.Site)
			}
		}
	}
	for a, set := range interfere {
		out := make([]trace.SiteID, 0, len(set))
		for b := range set {
			out = append(out, b)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		plan.Interfere[a] = out
	}
	return plan
}
