package core

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"waffle/internal/sim"
	"waffle/internal/trace"
)

// ErrUnsortedStream reports a streamed trace whose events are not in
// nondecreasing timestamp order. The streaming analyzer's sliding-window
// buffers (like the materialized analyzer's early break) assume time
// order; streamed traces can arrive out of order, so the violation is
// checked explicitly instead of silently dropping pairs.
var ErrUnsortedStream = errors.New("core: streamed trace events out of time order")

// AnalyzeStream runs the trace analyzer over a WFTS event stream without
// ever materializing the trace, producing a plan bit-identical to
// Analyze on the same events. It reads the stream twice (hence the
// io.ReadSeeker): pass A discovers the candidate pairs with per-object
// sliding buffers, pass B replays the stream against the pass-A injection
// sites to build the interference set with per-thread sliding buffers.
//
// Memory is bounded by the plan plus the events in flight inside the
// analysis windows — per-object buffers hold at most δ of MemOrder events
// and per-thread buffers at most 2δ of events (an interference scan for a
// pair (τ1, τ2) reaches back to τ1−δ > τ2−2δ) — never the whole trace.
func AnalyzeStream(r io.ReadSeeker, opts Options) (*Plan, error) {
	opts = opts.WithDefaults()
	defer opts.Metrics.Span("phase.analyze").Time()()
	events := opts.Metrics.Counter("analyze.trace_events")

	// Pass A: near-miss candidate pairs per object (§3.1, §4.1). Each
	// arriving event is paired against the object's buffered earlier
	// events, which eviction keeps strictly inside the δ window.
	sr, err := trace.NewStreamReader(r)
	if err != nil {
		return nil, err
	}
	acc := newPairAccum(opts)
	acc.noInstances = true
	objBuf := make(map[trace.ObjID][]trace.Event)
	var prevT sim.Time
	first := true
	for {
		ev, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if !first && ev.T < prevT {
			return nil, fmt.Errorf("%w: event %d at %v after %v", ErrUnsortedStream, ev.Seq, ev.T, prevT)
		}
		prevT, first = ev.T, false
		events.Inc()
		buf := evictBefore(objBuf[ev.Obj], ev.T.Add(-opts.Window))
		if ev.Kind.IsMemOrder() {
			for i := range buf {
				acc.observe(&buf[i], &ev)
			}
			buf = append(buf, ev)
		}
		objBuf[ev.Obj] = buf
	}
	plan := assemblePlan(sr.Label(), opts, acc.pairs)

	// Pass 2 happened inside assemblePlan; pass B below is pass 3. With no
	// candidates there is nothing to interfere.
	if len(acc.pairs) == 0 {
		meterPlan(opts.Metrics, plan)
		return plan, nil
	}

	// Pass B: the interference set I (§4.4). Replay the stream; every
	// arriving event that completes a candidate instance scans its own
	// thread's buffered history over [τ1−δ, τ2). The thread buffers retain
	// 2δ of events, which covers every reachable scan window.
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("core: rewind stream for interference pass: %w", err)
	}
	sr2, err := trace.NewStreamReader(r)
	if err != nil {
		return nil, err
	}
	injection := injectionSet(plan)
	es := make(edgeSet)
	objBuf = make(map[trace.ObjID][]trace.Event)
	thrBuf := make(map[int][]trace.Event)
	prevT, first = 0, true
	for {
		ev, err := sr2.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		// Re-check time order from scratch: the ReadSeeker is under the
		// caller's control, and nothing guarantees the bytes served after
		// Seek(0) match pass A's. An unsorted replay would silently corrupt
		// the sliding thread buffers (and thus the interference set) if it
		// were trusted on the strength of pass A's validation alone.
		if !first && ev.T < prevT {
			return nil, fmt.Errorf("%w: event %d at %v after %v (interference pass)", ErrUnsortedStream, ev.Seq, ev.T, prevT)
		}
		prevT, first = ev.T, false
		obuf := evictBefore(objBuf[ev.Obj], ev.T.Add(-opts.Window))
		tbuf := evictBefore(thrBuf[ev.TID], ev.T.Add(-2*opts.Window))
		if ev.Kind.IsMemOrder() {
			for i := range obuf {
				e1 := &obuf[i]
				if _, ok := nearMiss(e1, &ev, opts); !ok {
					continue
				}
				// One dynamic instance (ℓ1 = e1.Site at τ1, ℓ2 at τ2 = now).
				// The thread buffer holds exactly the events with Seq < ev.Seq
				// still inside 2δ, so scanning from the first event ≥ τ1−δ
				// mirrors the materialized pass 3, self-edges excluded.
				lo := e1.T.Add(-opts.Window)
				start := sort.Search(len(tbuf), func(j int) bool { return tbuf[j].T >= lo })
				for j := start; j < len(tbuf); j++ {
					if s := tbuf[j].Site; s != e1.Site && injection[s] {
						es.add(e1.Site, s)
					}
				}
			}
			obuf = append(obuf, ev)
		}
		objBuf[ev.Obj] = obuf
		thrBuf[ev.TID] = append(tbuf, ev)
	}
	es.fill(plan)
	meterPlan(opts.Metrics, plan)
	return plan, nil
}

// evictBefore drops the buffer prefix whose timestamps are at or before
// cutoff. The survivors are copied down so the backing array is reused at
// its windowed size instead of growing with the stream.
func evictBefore(buf []trace.Event, cutoff sim.Time) []trace.Event {
	i := 0
	for i < len(buf) && buf[i].T <= cutoff {
		i++
	}
	if i == 0 {
		return buf
	}
	n := copy(buf, buf[i:])
	// Zero the evicted tail: the slots past n stay reachable from the
	// backing array for the life of the stream, and a stale Event there
	// pins its vector clock (and whatever the clock's map references)
	// against collection on multi-GB traces.
	clear(buf[n:])
	return buf[:n]
}
