package core

import (
	"fmt"
	"math/rand"
	"testing"

	"waffle/internal/memmodel"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// randomGuardedProgram builds a random guarded program (same family as the
// stress tests) for exercising the online engine's persistent state.
func randomGuardedProgram(seed int64) *SimProgram {
	rng := rand.New(rand.NewSource(seed))
	threads := 2 + rng.Intn(2)
	objs := 2 + rng.Intn(3)
	spacing := sim.Duration(300+rng.Intn(1500)) * sim.Microsecond
	return &SimProgram{
		Label:  fmt.Sprintf("online-prop-%d", seed),
		Jitter: 0.05,
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			shared := make([]*memmodel.Ref, objs)
			for i := range shared {
				shared[i] = h.NewRef(fmt.Sprintf("s%d", i))
			}
			var wg sim.WaitGroup
			for ti := 0; ti < threads; ti++ {
				ti := ti
				wg.Add(root, 1)
				root.Spawn(fmt.Sprintf("w%d", ti), func(t *sim.Thread) {
					defer wg.Done(t)
					for oi := 0; oi < objs; oi++ {
						owner := oi%threads == ti
						if owner {
							t.Work(spacing)
							shared[oi].Init(t, siteOf("init", ti, oi))
						}
						t.Work(spacing)
						shared[oi].UseIfLive(t, siteOf("use", ti, oi))
						if owner {
							t.Work(spacing)
							shared[oi].Dispose(t, siteOf("disp", ti, oi))
						}
					}
				})
			}
			wg.Wait(root)
		},
	}
}

func siteOf(kind string, ti, oi int) trace.SiteID {
	return trace.SiteID(fmt.Sprintf("%s/%d/%d", kind, ti, oi))
}

// pairSet snapshots the live pair keys.
func pairSet(o *Online) map[pairKey]bool {
	out := make(map[pairKey]bool)
	for _, p := range o.Pairs() {
		out[p.key()] = true
	}
	return out
}

// TestOnlinePersistentStateInvariants drives the online engine across many
// runs of random programs and checks the cross-run invariants:
//
//   - injection-site count never decreases (sites are never forgotten),
//   - per-site probabilities never increase,
//   - a pair removed by happens-before inference never reappears.
func TestOnlinePersistentStateInvariants(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		prog := randomGuardedProgram(seed * 13)
		o := NewOnline(WaffleBasicConfig(Options{}))

		prevSites := 0
		removedEver := make(map[pairKey]bool)
		prevProbs := map[string]float64{}

		for run := 1; run <= 6; run++ {
			o.BeginRun()
			res := prog.Execute(seed*100+int64(run), o)
			if res.Fault != nil {
				t.Fatalf("seed %d run %d: guarded program faulted: %v", seed, run, res.Fault)
			}

			if got := o.InjectionSiteCount(); got < prevSites {
				t.Fatalf("seed %d run %d: injection sites shrank %d → %d", seed, run, prevSites, got)
			} else {
				prevSites = got
			}

			live := pairSet(o)
			for k := range removedEver {
				if live[k] {
					t.Fatalf("seed %d run %d: removed pair %v resurrected", seed, run, k)
				}
			}
			// Track removals: pairs that were live before and are not now.
			for k := range prevLive(o, live, removedEver) {
				removedEver[k] = true
			}

			for site, p := range o.probs {
				if prev, ok := prevProbs[string(site)]; ok && p > prev+1e-12 {
					t.Fatalf("seed %d run %d: probability rose at %s: %v → %v", seed, run, site, prev, p)
				}
				prevProbs[string(site)] = p
			}
		}
	}
}

// prevLive computes pairs currently marked removed by the engine.
func prevLive(o *Online, live map[pairKey]bool, already map[pairKey]bool) map[pairKey]bool {
	out := make(map[pairKey]bool)
	for k, gone := range o.removed {
		if gone && !already[k] {
			out[k] = true
		}
	}
	_ = live
	return out
}

// TestOnlineRunCounterAdvances guards the bookkeeping the session relies on.
func TestOnlineRunCounterAdvances(t *testing.T) {
	o := NewOnline(WaffleBasicConfig(Options{}))
	prog := randomGuardedProgram(3)
	for i := 1; i <= 3; i++ {
		o.BeginRun()
		prog.Execute(int64(i), o)
		if o.Runs() != i {
			t.Fatalf("Runs() = %d after %d BeginRun calls", o.Runs(), i)
		}
	}
}
