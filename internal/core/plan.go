package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"waffle/internal/sim"
	"waffle/internal/trace"
)

// BugKind classifies a MemOrder bug candidate.
type BugKind uint8

const (
	// UseBeforeInit: an access may execute before the object's
	// initialization if the initialization is delayed.
	UseBeforeInit BugKind = iota
	// UseAfterFree: an access may execute after the object's disposal if
	// the access is delayed.
	UseAfterFree
	// StaleRead: a TSO-mode candidate — the pair is fork-ordered, so the
	// accesses can never reorder, but the first access is a store whose
	// buffered value the second access may observe stale if the store's
	// commit is delayed. Delay injects into the store's visibility, not
	// the thread (see Options.TSO).
	StaleRead
)

// String names the bug kind.
func (k BugKind) String() string {
	switch k {
	case UseBeforeInit:
		return "use-before-init"
	case UseAfterFree:
		return "use-after-free"
	case StaleRead:
		return "stale-read"
	default:
		return fmt.Sprintf("bugkind(%d)", uint8(k))
	}
}

// Pair is one MemOrder bug candidate {ℓ1, ℓ2} ∈ S. Delay is ℓ1 — the site
// that receives injected delays: the initialization site of a
// use-before-init candidate, or the use site of a use-after-free candidate
// (§3.1). Target is ℓ2, the operation the delay tries to push ℓ1 past.
type Pair struct {
	Delay  trace.SiteID `json:"delay"`
	Target trace.SiteID `json:"target"`
	Kind   BugKind      `json:"kind"`
	Gap    sim.Duration `json:"gap_us"` // largest observed |τ2−τ1|
	Count  int          `json:"count"`  // dynamic near-miss instances seen
}

// pairKey identifies a Pair for set membership.
type pairKey struct {
	delay, target trace.SiteID
	kind          BugKind
}

func (p Pair) key() pairKey { return pairKey{p.Delay, p.Target, p.Kind} }

// Plan is the output of trace analysis and the persistent state threaded
// between detection runs (Figure 3's "Candidate Set S" artifact plus the
// interference set I, per-site delay lengths, and per-site probabilities).
type Plan struct {
	Label  string       // program the plan was prepared for
	Window sim.Duration // near-miss δ used during analysis
	Pairs  []Pair       // the candidate set S

	// DelayLen maps each injection site ℓ1 to len(ℓ1), the largest gap
	// over all pairs delaying at ℓ1 (§4.3).
	DelayLen map[trace.SiteID]sim.Duration

	// Interfere is the symmetric interference relation I (§4.4): no delay
	// is injected at a site while a delay is in flight at any site it maps
	// to.
	Interfere map[trace.SiteID][]trace.SiteID

	// Probs carries each injection site's current injection probability,
	// decayed across detection runs and persisted between them (§5).
	Probs map[trace.SiteID]float64

	// inc is AnalyzeIncremental's per-object analysis cache. It is
	// immutable once built, shared (not copied) by Clone, and deliberately
	// absent from the JSON wire form: a plan loaded from disk simply
	// re-analyzes from scratch on its first incremental call.
	inc *incState
}

// InjectionSites returns the distinct delay sites of the plan, sorted.
func (p *Plan) InjectionSites() []trace.SiteID {
	set := make(map[trace.SiteID]bool, len(p.Pairs))
	for _, pr := range p.Pairs {
		set[pr.Delay] = true
	}
	out := make([]trace.SiteID, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PairsAt returns the candidate pairs whose delay or target site is site.
func (p *Plan) PairsAt(site trace.SiteID) []Pair {
	var out []Pair
	for _, pr := range p.Pairs {
		if pr.Delay == site || pr.Target == site {
			out = append(out, pr)
		}
	}
	return out
}

// InterferesWith reports whether sites a and b are in the interference
// relation.
func (p *Plan) InterferesWith(a, b trace.SiteID) bool {
	for _, s := range p.Interfere[a] {
		if s == b {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the plan. Detection workers running
// concurrently each inject from their own snapshot, so probability decay
// in one run never races with another run reading the shared plan.
func (p *Plan) Clone() *Plan {
	c := &Plan{
		Label:     p.Label,
		Window:    p.Window,
		Pairs:     append([]Pair(nil), p.Pairs...),
		DelayLen:  make(map[trace.SiteID]sim.Duration, len(p.DelayLen)),
		Interfere: make(map[trace.SiteID][]trace.SiteID, len(p.Interfere)),
		Probs:     make(map[trace.SiteID]float64, len(p.Probs)),
		inc:       p.inc,
	}
	for k, v := range p.DelayLen {
		c.DelayLen[k] = v
	}
	for k, v := range p.Interfere {
		c.Interfere[k] = append([]trace.SiteID(nil), v...)
	}
	for k, v := range p.Probs {
		c.Probs[k] = v
	}
	return c
}

// MergeFrom folds the state of a clone back into p after its runs
// completed. Probabilities only ever decay (§5), so min-merge recovers the
// furthest-decayed value per site; delay lengths only ever widen, so
// max-merge keeps the widest. Pairs and interference edges are unioned.
// The merge is idempotent and commutative, which lets concurrent workers'
// clones fold back in any order with the same result.
func (p *Plan) MergeFrom(o *Plan) {
	seen := make(map[pairKey]bool, len(p.Pairs))
	for _, pr := range p.Pairs {
		seen[pr.key()] = true
	}
	for _, pr := range o.Pairs {
		if !seen[pr.key()] {
			seen[pr.key()] = true
			p.Pairs = append(p.Pairs, pr)
		}
	}
	for k, v := range o.DelayLen {
		if cur, ok := p.DelayLen[k]; !ok || v > cur {
			if p.DelayLen == nil {
				p.DelayLen = make(map[trace.SiteID]sim.Duration)
			}
			p.DelayLen[k] = v
		}
	}
	for k, others := range o.Interfere {
		have := make(map[trace.SiteID]bool, len(p.Interfere[k]))
		for _, s := range p.Interfere[k] {
			have[s] = true
		}
		for _, s := range others {
			if !have[s] {
				if p.Interfere == nil {
					p.Interfere = make(map[trace.SiteID][]trace.SiteID)
				}
				p.Interfere[k] = append(p.Interfere[k], s)
			}
		}
	}
	for k, v := range o.Probs {
		if cur, ok := p.Probs[k]; !ok || v < cur {
			if p.Probs == nil {
				p.Probs = make(map[trace.SiteID]float64)
			}
			p.Probs[k] = v
		}
	}
}

// planJSON is the wire form of Plan.
type planJSON struct {
	Label     string              `json:"label"`
	Window    int64               `json:"window_us"`
	Pairs     []Pair              `json:"pairs"`
	DelayLen  map[string]int64    `json:"delay_len_us"`
	Interfere map[string][]string `json:"interfere"`
	Probs     map[string]float64  `json:"probs"`
}

// WriteJSON persists the plan — the paper saves S, I, the delay lengths,
// and the decayed probabilities to disk between runs (§4.4, §5).
func (p *Plan) WriteJSON(w io.Writer) error {
	pj := planJSON{
		Label:     p.Label,
		Window:    int64(p.Window),
		Pairs:     p.Pairs,
		DelayLen:  make(map[string]int64, len(p.DelayLen)),
		Interfere: make(map[string][]string, len(p.Interfere)),
		Probs:     make(map[string]float64, len(p.Probs)),
	}
	for k, v := range p.DelayLen {
		pj.DelayLen[string(k)] = int64(v)
	}
	for k, v := range p.Interfere {
		ss := make([]string, len(v))
		for i, s := range v {
			ss[i] = string(s)
		}
		sort.Strings(ss)
		pj.Interfere[string(k)] = ss
	}
	for k, v := range p.Probs {
		pj.Probs[string(k)] = v
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pj)
}

// ReadPlanJSON loads a plan written by WriteJSON.
func ReadPlanJSON(r io.Reader) (*Plan, error) {
	var pj planJSON
	if err := json.NewDecoder(r).Decode(&pj); err != nil {
		return nil, fmt.Errorf("core: decode plan: %w", err)
	}
	p := &Plan{
		Label:     pj.Label,
		Window:    sim.Duration(pj.Window),
		Pairs:     pj.Pairs,
		DelayLen:  make(map[trace.SiteID]sim.Duration, len(pj.DelayLen)),
		Interfere: make(map[trace.SiteID][]trace.SiteID, len(pj.Interfere)),
		Probs:     make(map[trace.SiteID]float64, len(pj.Probs)),
	}
	for k, v := range pj.DelayLen {
		p.DelayLen[trace.SiteID(k)] = sim.Duration(v)
	}
	for k, v := range pj.Interfere {
		ss := make([]trace.SiteID, len(v))
		for i, s := range v {
			ss[i] = trace.SiteID(s)
		}
		p.Interfere[trace.SiteID(k)] = ss
	}
	for k, v := range pj.Probs {
		p.Probs[trace.SiteID(k)] = v
	}
	return p, nil
}
