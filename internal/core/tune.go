package core

// This file is the run-boundary control seam: an optional Tuner consulted
// by Session.Expose / Session.ExposeParallel between runs, able to retune
// engine options, shrink or extend the run budget, or stop a session
// early so its remaining budget can go to livelier targets.
//
// Two rules make retuning safe:
//
//   - Run-boundary only. A Tuner is never consulted while a run is in
//     flight. Injectors copy their Options at construction (NewInjector)
//     and each detection run builds a fresh injector, so an applied
//     retune affects exactly the runs that start after it — an in-flight
//     (or, on live runtimes, a leaked timed-out) run keeps the options it
//     started with.
//   - Nil is free. A session with no Tuner takes a single nil check per
//     run and behaves byte-identically to one that never had the field —
//     the disabled-controller equivalence property tested in
//     adaptive_equivalence_test.go.
//
// In ExposeParallel the boundary is the commit loop: waves fully complete
// (sched.runWave's WaitGroup) before commits run single-threaded, so a
// retune applied there cannot race a worker. Parallel sessions honor
// budget shrinks exactly (later indices are discarded like a sequential
// break) but apply option changes at wave granularity — the wave that was
// speculated under the old options still commits under them.

// TuneContext is what a Tuner sees at one run boundary.
type TuneContext struct {
	Program string
	Tool    string
	// Run is the 1-based number of the run about to start.
	Run int
	// MaxRuns is the session's current total budget (preparation included).
	MaxRuns int
	// Prev is the completed previous run's report, nil before run 1.
	Prev *RunReport
	// PrevDetection reports whether Prev was a detection run — one that
	// could have injected delays — rather than a preparation run. Dry-spell
	// accounting must ignore preparation runs: they inject nothing by
	// design.
	PrevDetection bool
	// LiveSites is the number of injection sites whose probability is
	// still positive (the tool's SiteProber), or -1 when the tool cannot
	// report it. Zero means the plan has fully decayed: no future run of
	// this session can inject, so no future run can expose (§5 requires a
	// delay to attribute a fault to).
	LiveSites int
	// Opts is the tool's current engine options; the zero Options when the
	// tool is not Retunable.
	Opts Options
	// Retunable reports whether the tool accepts SetOptions (so a returned
	// TuneDecision.Opts would take effect).
	Retunable bool
}

// TuneDecision is a Tuner's verdict for the boundary. The zero value
// changes nothing.
type TuneDecision struct {
	// Stop ends the session before the run executes; the Outcome keeps
	// the runs already performed.
	Stop bool
	// Opts, when non-nil, is applied to the tool (Retunable.SetOptions)
	// before the run starts. Ignored for tools that are not Retunable.
	Opts *Options
	// MaxRuns, when positive, replaces the session's total budget.
	// Sequential sessions honor both growth and shrink; parallel sessions
	// honor shrink only (the fan-out range is fixed when the pool starts).
	// A budget below the current run number stops the session.
	MaxRuns int
}

// Tuner is consulted at every run boundary of a Session that carries one.
// Implementations must be cheap — they run on the session's hot path —
// and must not retain ctx.Prev past the call.
type Tuner interface {
	TuneRun(ctx TuneContext) TuneDecision
}

// Retunable is an optional Tool capability: engines whose numeric options
// (alpha, decay, window) can be replaced between runs. Implementations
// guarantee that already-constructed injectors are unaffected — options
// must be copied at injector construction, never referenced.
type Retunable interface {
	// CurrentOptions returns the options the next run would use.
	CurrentOptions() Options
	// SetOptions replaces them for all runs that start afterwards.
	SetOptions(Options)
}

// SiteProber is an optional Tool capability: engines that can report how
// many injection sites remain live (probability > 0). It is the
// scale-to-zero signal — a plan-driven tool with zero live sites can
// never inject again, hence never expose again.
type SiteProber interface {
	// LiveSites returns the live-site count, or -1 when unknown.
	LiveSites() int
}

// tuneBoundary consults the session's Tuner (if any) before run executes,
// applying its decision. It returns the possibly-updated budget and
// whether the session must stop before the run.
func (s *Session) tuneBoundary(out *Outcome, run, maxRuns int, prev *RunReport, prevDetection bool) (newMax int, stop bool) {
	if s.Tuner == nil {
		return maxRuns, false
	}
	tc := TuneContext{
		Program: out.Program, Tool: out.Tool,
		Run: run, MaxRuns: maxRuns,
		Prev: prev, PrevDetection: prevDetection,
		LiveSites: -1,
	}
	if sp, ok := s.Tool.(SiteProber); ok {
		tc.LiveSites = sp.LiveSites()
	}
	rt, retunable := s.Tool.(Retunable)
	if retunable {
		tc.Opts = rt.CurrentOptions()
		tc.Retunable = true
	}
	d := s.Tuner.TuneRun(tc)
	if d.Opts != nil && retunable {
		rt.SetOptions(*d.Opts)
	}
	if d.MaxRuns > 0 {
		maxRuns = d.MaxRuns
	}
	if d.Stop || run > maxRuns {
		return maxRuns, true
	}
	return maxRuns, false
}
