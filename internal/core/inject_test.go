package core

import (
	"testing"

	"waffle/internal/memmodel"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// planWith builds a minimal plan with one injection site.
func planWith(site trace.SiteID, gap sim.Duration) *Plan {
	return &Plan{
		Window:    DefaultWindow,
		Pairs:     []Pair{{Delay: site, Target: "target", Kind: UseBeforeInit, Gap: gap, Count: 1}},
		DelayLen:  map[trace.SiteID]sim.Duration{site: gap},
		Interfere: map[trace.SiteID][]trace.SiteID{},
		Probs:     map[trace.SiteID]float64{site: 1.0},
	}
}

// hookRun executes body with the hook installed and returns the world time.
func hookRun(t *testing.T, hook memmodel.Hook, body func(*sim.Thread, *memmodel.Heap)) sim.Time {
	t.Helper()
	h := memmodel.NewHeap()
	h.SetHook(hook)
	w := sim.NewWorld(sim.Config{Seed: 1})
	if err := w.Run(func(root *sim.Thread) { body(root, h) }); err != nil {
		t.Fatalf("run: %v", err)
	}
	return w.Now()
}

func TestInjectorDelaysCandidateSiteOnly(t *testing.T) {
	plan := planWith("hot", 10*sim.Millisecond)
	inj := NewInjector(plan, Options{InstrCost: -1}) // no instr cost
	hookRun(t, inj, func(th *sim.Thread, h *memmodel.Heap) {
		r := h.NewRef("r")
		r.Init(th, "cold") // not a candidate: no delay
		if th.Now() > sim.Time(10*sim.Microsecond) {
			t.Errorf("cold site delayed: now=%v", th.Now())
		}
		r.Use(th, "hot") // candidate: α·10ms delay
	})
	st := inj.Stats()
	if st.Count != 1 {
		t.Fatalf("delays = %d, want 1", st.Count)
	}
	want := sim.Duration(float64(10*sim.Millisecond) * DefaultAlpha)
	if st.Total != want {
		t.Fatalf("total delay = %v, want %v", st.Total, want)
	}
}

func TestInjectorProbabilityDecay(t *testing.T) {
	plan := planWith("s", 5*sim.Millisecond)
	inj := NewInjector(plan, Options{InstrCost: -1, Decay: 0.25})
	hookRun(t, inj, func(th *sim.Thread, h *memmodel.Heap) {
		r := h.NewRef("r")
		r.Init(th, "init")
		r.Use(th, "s")
	})
	if got := plan.Probs["s"]; got != 0.75 {
		t.Fatalf("prob after one failed delay = %v, want 0.75", got)
	}
}

func TestInjectorStopsAtZeroProbability(t *testing.T) {
	plan := planWith("s", 5*sim.Millisecond)
	plan.Probs["s"] = 0
	inj := NewInjector(plan, Options{InstrCost: -1})
	hookRun(t, inj, func(th *sim.Thread, h *memmodel.Heap) {
		r := h.NewRef("r")
		r.Init(th, "init")
		r.Use(th, "s")
	})
	if inj.Stats().Count != 0 {
		t.Fatal("site with zero probability was delayed")
	}
}

func TestInjectorFixedLengthAblation(t *testing.T) {
	plan := planWith("s", 5*sim.Millisecond)
	inj := NewInjector(plan, Options{InstrCost: -1, DisableCustomLengths: true})
	hookRun(t, inj, func(th *sim.Thread, h *memmodel.Heap) {
		r := h.NewRef("r")
		r.Init(th, "init")
		r.Use(th, "s")
	})
	if got := inj.Stats().Total; got != DefaultFixedDelay {
		t.Fatalf("fixed-mode delay = %v, want %v", got, DefaultFixedDelay)
	}
}

func TestInjectorInterferenceSkip(t *testing.T) {
	// Two sites that interfere: while a delay at "a" is in flight, the
	// planned delay at "b" is skipped (and not decayed).
	plan := &Plan{
		Window: DefaultWindow,
		Pairs: []Pair{
			{Delay: "a", Target: "x", Kind: UseBeforeInit, Gap: 20 * sim.Millisecond},
			{Delay: "b", Target: "y", Kind: UseAfterFree, Gap: 20 * sim.Millisecond},
		},
		DelayLen:  map[trace.SiteID]sim.Duration{"a": 20 * sim.Millisecond, "b": 20 * sim.Millisecond},
		Interfere: map[trace.SiteID][]trace.SiteID{"a": {"b"}, "b": {"a"}},
		Probs:     map[trace.SiteID]float64{"a": 1.0, "b": 1.0},
	}
	inj := NewInjector(plan, Options{InstrCost: -1})
	hookRun(t, inj, func(root *sim.Thread, h *memmodel.Heap) {
		r := h.NewRef("r")
		r.Init(root, "init")
		other := root.Spawn("t2", func(th *sim.Thread) {
			th.Sleep(5 * sim.Millisecond) // lands inside a's delay
			r.Use(th, "b")
		})
		r.Use(root, "a")
		root.Join(other)
	})
	st := inj.Stats()
	if st.Count != 1 {
		t.Fatalf("delays = %d, want 1 (b skipped)", st.Count)
	}
	if st.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", st.Skipped)
	}
	if plan.Probs["b"] != 1.0 {
		t.Fatalf("skipped site decayed: %v", plan.Probs["b"])
	}
	if plan.Probs["a"] != 1.0-DefaultDecay {
		t.Fatalf("delayed site not decayed: %v", plan.Probs["a"])
	}
}

func TestInjectorInterferenceAblationAllowsOverlap(t *testing.T) {
	plan := &Plan{
		Window: DefaultWindow,
		Pairs: []Pair{
			{Delay: "a", Target: "x", Kind: UseBeforeInit, Gap: 20 * sim.Millisecond},
			{Delay: "b", Target: "y", Kind: UseAfterFree, Gap: 20 * sim.Millisecond},
		},
		DelayLen:  map[trace.SiteID]sim.Duration{"a": 20 * sim.Millisecond, "b": 20 * sim.Millisecond},
		Interfere: map[trace.SiteID][]trace.SiteID{"a": {"b"}, "b": {"a"}},
		Probs:     map[trace.SiteID]float64{"a": 1.0, "b": 1.0},
	}
	inj := NewInjector(plan, Options{InstrCost: -1, DisableInterferenceControl: true})
	hookRun(t, inj, func(root *sim.Thread, h *memmodel.Heap) {
		r := h.NewRef("r")
		r.Init(root, "init")
		other := root.Spawn("t2", func(th *sim.Thread) {
			th.Sleep(5 * sim.Millisecond)
			r.Use(th, "b")
		})
		r.Use(root, "a")
		root.Join(other)
	})
	if got := inj.Stats().Count; got != 2 {
		t.Fatalf("delays = %d, want 2 under the ablation", got)
	}
}

func TestInjectorInstrumentationCost(t *testing.T) {
	plan := &Plan{DelayLen: map[trace.SiteID]sim.Duration{}, Probs: map[trace.SiteID]float64{}, Interfere: map[trace.SiteID][]trace.SiteID{}}
	inj := NewInjector(plan, Options{InstrCost: 50 * sim.Microsecond})
	h := memmodel.NewHeap()
	h.SetOpCost(0)
	h.SetHook(inj)
	w := sim.NewWorld(sim.Config{Seed: 1})
	err := w.Run(func(th *sim.Thread) {
		r := h.NewRef("r")
		r.Init(th, "s1")
		r.Use(th, "s2")
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got, want := w.Now(), sim.Time(100*sim.Microsecond); got != want {
		t.Fatalf("time = %v, want %v (2 × instr cost)", got, want)
	}
}

func TestPrepHookRecordsWithoutInjecting(t *testing.T) {
	rec := trace.NewRecorder("p", 1)
	hook := NewPrepHook(rec, Options{})
	end := hookRun(t, hook, func(th *sim.Thread, h *memmodel.Heap) {
		r := h.NewRef("r")
		r.Init(th, "s1")
		r.Use(th, "s2")
		r.Dispose(th, "s3")
	})
	tr := rec.Finish(end)
	if len(tr.Events) != 3 {
		t.Fatalf("recorded %d events, want 3", len(tr.Events))
	}
	// Only instrumentation+logging cost, never a 100ms-scale delay.
	if end > sim.Time(3*(DefaultInstrCost+DefaultTraceCost)+sim.Millisecond) {
		t.Fatalf("prep run took %v — a delay was injected?", end)
	}
	kinds := []trace.Kind{trace.KindInit, trace.KindUse, trace.KindDispose}
	for i, e := range tr.Events {
		if e.Kind != kinds[i] {
			t.Fatalf("event %d kind = %v", i, e.Kind)
		}
	}
}

func TestIntervalDur(t *testing.T) {
	iv := Interval{Site: "s", Start: 10, End: 250}
	if iv.Dur() != 240 {
		t.Fatalf("Dur = %v", iv.Dur())
	}
}
