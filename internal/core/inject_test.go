package core

import (
	"testing"

	"waffle/internal/memmodel"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// planWith builds a minimal plan with one injection site.
func planWith(site trace.SiteID, gap sim.Duration) *Plan {
	return &Plan{
		Window:    DefaultWindow,
		Pairs:     []Pair{{Delay: site, Target: "target", Kind: UseBeforeInit, Gap: gap, Count: 1}},
		DelayLen:  map[trace.SiteID]sim.Duration{site: gap},
		Interfere: map[trace.SiteID][]trace.SiteID{},
		Probs:     map[trace.SiteID]float64{site: 1.0},
	}
}

// hookRun executes body with the hook installed and returns the world time.
func hookRun(t *testing.T, hook memmodel.Hook, body func(*sim.Thread, *memmodel.Heap)) sim.Time {
	t.Helper()
	h := memmodel.NewHeap()
	h.SetHook(hook)
	w := sim.NewWorld(sim.Config{Seed: 1})
	if err := w.Run(func(root *sim.Thread) { body(root, h) }); err != nil {
		t.Fatalf("run: %v", err)
	}
	return w.Now()
}

func TestInjectorDelaysCandidateSiteOnly(t *testing.T) {
	plan := planWith("hot", 10*sim.Millisecond)
	inj := NewInjector(plan, Options{InstrCost: -1}) // no instr cost
	hookRun(t, inj, func(th *sim.Thread, h *memmodel.Heap) {
		r := h.NewRef("r")
		r.Init(th, "cold") // not a candidate: no delay
		if th.Now() > sim.Time(10*sim.Microsecond) {
			t.Errorf("cold site delayed: now=%v", th.Now())
		}
		r.Use(th, "hot") // candidate: α·10ms delay
	})
	st := inj.Stats()
	if st.Count != 1 {
		t.Fatalf("delays = %d, want 1", st.Count)
	}
	want := sim.Duration(float64(10*sim.Millisecond) * DefaultAlpha)
	if st.Total != want {
		t.Fatalf("total delay = %v, want %v", st.Total, want)
	}
}

func TestInjectorProbabilityDecay(t *testing.T) {
	plan := planWith("s", 5*sim.Millisecond)
	inj := NewInjector(plan, Options{InstrCost: -1, Decay: 0.25})
	hookRun(t, inj, func(th *sim.Thread, h *memmodel.Heap) {
		r := h.NewRef("r")
		r.Init(th, "init")
		r.Use(th, "s")
	})
	if got := plan.Probs["s"]; got != 0.75 {
		t.Fatalf("prob after one failed delay = %v, want 0.75", got)
	}
}

func TestInjectorStopsAtZeroProbability(t *testing.T) {
	plan := planWith("s", 5*sim.Millisecond)
	plan.Probs["s"] = 0
	inj := NewInjector(plan, Options{InstrCost: -1})
	hookRun(t, inj, func(th *sim.Thread, h *memmodel.Heap) {
		r := h.NewRef("r")
		r.Init(th, "init")
		r.Use(th, "s")
	})
	if inj.Stats().Count != 0 {
		t.Fatal("site with zero probability was delayed")
	}
}

func TestInjectorFixedLengthAblation(t *testing.T) {
	plan := planWith("s", 5*sim.Millisecond)
	inj := NewInjector(plan, Options{InstrCost: -1, DisableCustomLengths: true})
	hookRun(t, inj, func(th *sim.Thread, h *memmodel.Heap) {
		r := h.NewRef("r")
		r.Init(th, "init")
		r.Use(th, "s")
	})
	if got := inj.Stats().Total; got != DefaultFixedDelay {
		t.Fatalf("fixed-mode delay = %v, want %v", got, DefaultFixedDelay)
	}
}

func TestInjectorInterferenceSkip(t *testing.T) {
	// Two sites that interfere: while a delay at "a" is in flight, the
	// planned delay at "b" is skipped (and not decayed).
	plan := &Plan{
		Window: DefaultWindow,
		Pairs: []Pair{
			{Delay: "a", Target: "x", Kind: UseBeforeInit, Gap: 20 * sim.Millisecond},
			{Delay: "b", Target: "y", Kind: UseAfterFree, Gap: 20 * sim.Millisecond},
		},
		DelayLen:  map[trace.SiteID]sim.Duration{"a": 20 * sim.Millisecond, "b": 20 * sim.Millisecond},
		Interfere: map[trace.SiteID][]trace.SiteID{"a": {"b"}, "b": {"a"}},
		Probs:     map[trace.SiteID]float64{"a": 1.0, "b": 1.0},
	}
	inj := NewInjector(plan, Options{InstrCost: -1})
	hookRun(t, inj, func(root *sim.Thread, h *memmodel.Heap) {
		r := h.NewRef("r")
		r.Init(root, "init")
		other := root.Spawn("t2", func(th *sim.Thread) {
			th.Sleep(5 * sim.Millisecond) // lands inside a's delay
			r.Use(th, "b")
		})
		r.Use(root, "a")
		root.Join(other)
	})
	st := inj.Stats()
	if st.Count != 1 {
		t.Fatalf("delays = %d, want 1 (b skipped)", st.Count)
	}
	if st.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", st.Skipped)
	}
	if plan.Probs["b"] != 1.0 {
		t.Fatalf("skipped site decayed: %v", plan.Probs["b"])
	}
	if plan.Probs["a"] != 1.0-DefaultDecay {
		t.Fatalf("delayed site not decayed: %v", plan.Probs["a"])
	}
}

func TestInjectorInterferenceAblationAllowsOverlap(t *testing.T) {
	plan := &Plan{
		Window: DefaultWindow,
		Pairs: []Pair{
			{Delay: "a", Target: "x", Kind: UseBeforeInit, Gap: 20 * sim.Millisecond},
			{Delay: "b", Target: "y", Kind: UseAfterFree, Gap: 20 * sim.Millisecond},
		},
		DelayLen:  map[trace.SiteID]sim.Duration{"a": 20 * sim.Millisecond, "b": 20 * sim.Millisecond},
		Interfere: map[trace.SiteID][]trace.SiteID{"a": {"b"}, "b": {"a"}},
		Probs:     map[trace.SiteID]float64{"a": 1.0, "b": 1.0},
	}
	inj := NewInjector(plan, Options{InstrCost: -1, DisableInterferenceControl: true})
	hookRun(t, inj, func(root *sim.Thread, h *memmodel.Heap) {
		r := h.NewRef("r")
		r.Init(root, "init")
		other := root.Spawn("t2", func(th *sim.Thread) {
			th.Sleep(5 * sim.Millisecond)
			r.Use(th, "b")
		})
		r.Use(root, "a")
		root.Join(other)
	})
	if got := inj.Stats().Count; got != 2 {
		t.Fatalf("delays = %d, want 2 under the ablation", got)
	}
}

func TestInjectorInstrumentationCost(t *testing.T) {
	plan := &Plan{DelayLen: map[trace.SiteID]sim.Duration{}, Probs: map[trace.SiteID]float64{}, Interfere: map[trace.SiteID][]trace.SiteID{}}
	inj := NewInjector(plan, Options{InstrCost: 50 * sim.Microsecond})
	h := memmodel.NewHeap()
	h.SetOpCost(0)
	h.SetHook(inj)
	w := sim.NewWorld(sim.Config{Seed: 1})
	err := w.Run(func(th *sim.Thread) {
		r := h.NewRef("r")
		r.Init(th, "s1")
		r.Use(th, "s2")
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got, want := w.Now(), sim.Time(100*sim.Microsecond); got != want {
		t.Fatalf("time = %v, want %v (2 × instr cost)", got, want)
	}
}

func TestPrepHookRecordsWithoutInjecting(t *testing.T) {
	rec := trace.NewRecorder("p", 1)
	hook := NewPrepHook(rec, Options{})
	end := hookRun(t, hook, func(th *sim.Thread, h *memmodel.Heap) {
		r := h.NewRef("r")
		r.Init(th, "s1")
		r.Use(th, "s2")
		r.Dispose(th, "s3")
	})
	tr := rec.Finish(end)
	if len(tr.Events) != 3 {
		t.Fatalf("recorded %d events, want 3", len(tr.Events))
	}
	// Only instrumentation+logging cost, never a 100ms-scale delay.
	if end > sim.Time(3*(DefaultInstrCost+DefaultTraceCost)+sim.Millisecond) {
		t.Fatalf("prep run took %v — a delay was injected?", end)
	}
	kinds := []trace.Kind{trace.KindInit, trace.KindUse, trace.KindDispose}
	for i, e := range tr.Events {
		if e.Kind != kinds[i] {
			t.Fatalf("event %d kind = %v", i, e.Kind)
		}
	}
}

func TestIntervalDur(t *testing.T) {
	iv := Interval{Site: "s", Start: 10, End: 250}
	if iv.Dur() != 240 {
		t.Fatalf("Dur = %v", iv.Dur())
	}
}

func TestSameSiteDelaysRunConcurrently(t *testing.T) {
	// Figure 4b regression: two threads reaching one candidate site while
	// a delay is in flight there must BOTH be delayed. The analyzer emits
	// no self-interference edge, so neither injection is skipped — a self
	// edge would serialize them and the racing schedule could never form.
	tr := mkTrace(
		ev(0, 0, 1, "ctor", 1, trace.KindInit),
		ev(1, 3, 2, "chk", 1, trace.KindUse),
		ev(2, 4, 1, "chk", 1, trace.KindUse),
		ev(3, 4.5, 1, "disp", 1, trace.KindDispose),
	)
	plan := Analyze(tr, Options{})
	inj := NewInjector(plan, Options{InstrCost: -1})
	hookRun(t, inj, func(root *sim.Thread, h *memmodel.Heap) {
		r := h.NewRef("r")
		r.Init(root, "boot") // not a candidate site
		a := root.Spawn("a", func(th *sim.Thread) { r.Use(th, "chk") })
		b := root.Spawn("b", func(th *sim.Thread) {
			th.Sleep(500 * sim.Microsecond) // arrives while a's delay is live
			r.Use(th, "chk")
		})
		root.Join(a)
		root.Join(b)
	})
	st := inj.Stats()
	if st.Count != 2 || st.Skipped != 0 {
		t.Fatalf("count=%d skipped=%d, want both same-site delays injected (0 skips)", st.Count, st.Skipped)
	}
	if len(st.Intervals) != 2 {
		t.Fatalf("intervals = %d, want 2", len(st.Intervals))
	}
	a, b := st.Intervals[0], st.Intervals[1]
	if !(a.Start < b.End && b.Start < a.End) {
		t.Fatalf("delays did not overlap: %+v vs %+v", a, b)
	}
}

func TestZeroGapCandidateStillExposesBug(t *testing.T) {
	// A near miss whose two events share one virtual instant (gap 0) must
	// still be delayable: the DelayLen entry is materialized with gap 0
	// and delayFor floors the injected delay at MinDelay, which is enough
	// to flip the order and expose the bug.
	tr := mkTrace(
		ev(0, 1, 1, "ctor.go:1", 1, trace.KindInit),
		ev(1, 1, 2, "use.go:1", 1, trace.KindUse),
	)
	plan := Analyze(tr, Options{})
	if len(plan.Pairs) != 1 || plan.Pairs[0].Gap != 0 {
		t.Fatalf("pairs = %+v, want exactly the zero-gap candidate", plan.Pairs)
	}

	// Detection: the user's access trails the init by 50µs in the benign
	// schedule, so only the MinDelay-floored (100µs) delay at the init lets
	// the user run first against the uninitialized reference. A zero-length
	// delay — the old behavior, where the gap-0 pair never materialized a
	// DelayLen entry — would leave the run fault-free.
	inj := NewInjector(plan, Options{InstrCost: -1})
	h := memmodel.NewHeap()
	h.SetHook(inj)
	w := sim.NewWorld(sim.Config{Seed: 1})
	err := w.Run(func(root *sim.Thread) {
		r := h.NewRef("r")
		user := root.Spawn("user", func(th *sim.Thread) {
			th.Sleep(50 * sim.Microsecond)
			r.Use(th, "use.go:1")
		})
		r.Init(root, "ctor.go:1")
		root.Join(user)
	})
	if err == nil {
		t.Fatal("zero-gap candidate never exposed its bug: the site was not delayed")
	}
	if got := inj.Stats().Count; got != 1 {
		t.Fatalf("delays = %d, want 1 (the MinDelay-floored injection)", got)
	}
}
