package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestBugReportJSONRoundTrip(t *testing.T) {
	prog := racyUseDispose()
	s := &Session{Prog: prog, Tool: NewWaffle(Options{}), MaxRuns: 10, BaseSeed: 1}
	out := s.Expose()
	if out.Bug == nil {
		t.Fatal("no bug")
	}
	var buf bytes.Buffer
	if err := out.Bug.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	for _, want := range []string{"use-after-free", "worker.go:11", "stacks", "candidates"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("report JSON missing %q:\n%s", want, buf.String())
		}
	}
	back, err := ReadBugReportJSON(&buf)
	if err != nil {
		t.Fatalf("ReadBugReportJSON: %v", err)
	}
	if back.Kind() != out.Bug.Kind() || back.Seed != out.Bug.Seed || back.Run != out.Bug.Run {
		t.Fatalf("identity changed: %+v", back)
	}
	if back.NullRef.Site != out.Bug.NullRef.Site {
		t.Fatalf("fault site changed: %s", back.NullRef.Site)
	}
	if len(back.Candidates) != len(out.Bug.Candidates) {
		t.Fatalf("candidates lost: %d vs %d", len(back.Candidates), len(out.Bug.Candidates))
	}
}

func TestBugReportJSONSupportsReplay(t *testing.T) {
	// A report loaded from JSON must drive the replay harness: the wire
	// format carries seed, fault identity, and candidate pairs.
	prog := racyInitUse()
	s := &Session{Prog: prog, Tool: NewWaffle(Options{}), MaxRuns: 10, BaseSeed: 5}
	out := s.Expose()
	if out.Bug == nil {
		t.Fatal("no bug")
	}
	var buf bytes.Buffer
	if err := out.Bug.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadBugReportJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep := Replay(prog, loaded, Options{})
	if !rep.Reproduced {
		t.Fatalf("replay from persisted report failed: %v", rep)
	}
}

func TestReadBugReportJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadBugReportJSON(strings.NewReader("{oops")); err == nil {
		t.Fatal("garbage accepted")
	}
}
