package core

import (
	"errors"
	"testing"

	"waffle/internal/memmodel"
	"waffle/internal/sim"
)

// deadlocker is a program whose every run deadlocks: the worker blocks on
// a mutex the root holds while the root joins the worker.
func deadlocker() *SimProgram {
	return &SimProgram{
		Label: "deadlocker",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			r := h.NewRef("conn")
			r.Init(root, "ctor.go:1")
			var mu sim.Mutex
			mu.Lock(root)
			worker := root.Spawn("worker", func(th *sim.Thread) {
				r.Use(th, "worker.go:3")
				mu.Lock(th) // root never unlocks: both block forever
			})
			root.Join(worker)
		},
	}
}

func TestExposeRecordsDeadlockErrors(t *testing.T) {
	s := &Session{Prog: deadlocker(), Tool: NewWaffle(Options{}), MaxRuns: 3, BaseSeed: 1}
	out := s.Expose()
	if out.Bug != nil {
		t.Fatalf("unexpected bug: %v", out.Bug)
	}
	if len(out.Runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(out.Runs))
	}
	for _, r := range out.Runs {
		if r.Err == nil {
			t.Fatalf("run %d: deadlock lost — Err is nil", r.Run)
		}
		if !errors.Is(r.Err, sim.ErrDeadlock) {
			t.Fatalf("run %d: Err = %v, want ErrDeadlock", r.Run, r.Err)
		}
	}
	errs := out.RunErrs()
	if len(errs) != 3 {
		t.Fatalf("RunErrs = %d entries, want 3", len(errs))
	}
	for _, e := range errs {
		if !errors.Is(e, sim.ErrDeadlock) {
			t.Fatalf("aggregate error %v does not wrap ErrDeadlock", e)
		}
	}
}

func TestExposeKeepsFaultAndTimeoutOutOfErr(t *testing.T) {
	// A faulting run must report through Fault, not Err.
	s := &Session{Prog: racyInitUse(), Tool: NewWaffle(Options{}), MaxRuns: 10, BaseSeed: 1}
	out := s.Expose()
	if out.Bug == nil {
		t.Fatal("no bug exposed")
	}
	last := out.Runs[len(out.Runs)-1]
	if last.Fault == nil || last.Err != nil {
		t.Fatalf("faulting run: Fault=%v Err=%v, want fault only", last.Fault, last.Err)
	}
	if errs := out.RunErrs(); len(errs) != 0 {
		t.Fatalf("RunErrs = %v, want none", errs)
	}
}
