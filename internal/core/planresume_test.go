package core

import (
	"bytes"
	"testing"

	"waffle/internal/memmodel"
	"waffle/internal/sim"
)

// cleanNearMissBody has one near-miss pair that can never manifest: the
// dispose genuinely waits for the use, so every injected delay fails and
// probabilities only decay.
func cleanNearMissBody(root *sim.Thread, h *memmodel.Heap) {
	r := h.NewRef("r")
	r.Init(root, "init0")
	var done sim.Event
	w := root.Spawn("w", func(th *sim.Thread) {
		th.Sleep(1 * sim.Millisecond)
		r.Use(th, "use")
		done.Set(th)
	})
	done.Wait(root)
	root.Sleep(1 * sim.Millisecond)
	r.Dispose(root, "disp")
	root.Join(w)
}

// TestPlanBootstrapSkipsPrep: a tool constructed from an existing plan
// treats run 1 as a detection run — the paper's on-disk resume.
func TestPlanBootstrapSkipsPrep(t *testing.T) {
	prog := racyInitUse()

	// Produce the plan via a normal session's first run.
	orig := NewWaffle(Options{})
	hook := orig.HookForRun(1, nil)
	res := prog.Execute(1, hook)
	orig.HookForRun(2, &RunReport{Run: 1, End: res.End}) // forces analysis
	plan := orig.Plan()
	if plan == nil || len(plan.Pairs) == 0 {
		t.Fatal("no plan produced")
	}

	// Round-trip through JSON, as the paper's runtime does between runs.
	var buf bytes.Buffer
	if err := plan.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadPlanJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	resumed := NewWaffleWithPlan(loaded, Options{})
	s := &Session{Prog: prog, Tool: resumed, MaxRuns: 5, BaseSeed: 2}
	out := s.Expose()
	if out.Bug == nil {
		t.Fatal("resumed detection found nothing")
	}
	if out.Bug.Run != 1 {
		t.Fatalf("resumed detection exposed in run %d, want 1 (no prep run)", out.Bug.Run)
	}
	if out.Runs[0].Stats.Count == 0 {
		t.Fatal("first resumed run injected nothing")
	}
}

// TestPlanProbabilitiesDecayAcrossResumedRuns: decayed probabilities are
// visible in the shared plan after detection runs, ready to persist.
func TestPlanProbabilitiesDecayAcrossResumedRuns(t *testing.T) {
	// A clean program whose candidate never manifests: delays always fail,
	// so probabilities must fall run over run.
	prog := &SimProgram{
		Label: "decaying",
		Body:  cleanNearMissBody,
	}
	w := NewWaffle(Options{})
	s := &Session{Prog: prog, Tool: w, MaxRuns: 4, BaseSeed: 1}
	s.Expose()
	plan := w.Plan()
	if plan == nil {
		t.Fatal("no plan")
	}
	decayed := false
	for _, p := range plan.Probs {
		if p < 1.0 {
			decayed = true
		}
	}
	if !decayed {
		t.Fatalf("no probability decayed: %v", plan.Probs)
	}

	// Resume from the decayed plan: remaining probability budget shrinks
	// further.
	before := make(map[string]float64)
	for k, v := range plan.Probs {
		before[string(k)] = v
	}
	resumed := NewWaffleWithPlan(plan, Options{})
	s2 := &Session{Prog: prog, Tool: resumed, MaxRuns: 2, BaseSeed: 9}
	s2.Expose()
	dropped := false
	for k, v := range plan.Probs {
		if v < before[string(k)] {
			dropped = true
		}
	}
	if !dropped {
		t.Fatal("resumed runs did not decay the shared plan further")
	}
}
