// Regression tests for satellite "thread context through ExposeParallel":
// a cancelled session must stop at the next boundary and commit no run
// from a wave that was in flight when the context died.
package core_test

import (
	"context"
	"sync/atomic"
	"testing"

	"waffle/internal/core"
	"waffle/internal/genprog"
	"waffle/internal/memmodel"
)

// cancelAfter wraps a ContextProgram and fires cancel when execution
// number trigger starts, counting every execution (committed or not).
type cancelAfter struct {
	inner   core.ContextProgram
	trigger int32
	execs   atomic.Int32
	cancel  context.CancelFunc
}

func (c *cancelAfter) Name() string { return c.inner.Name() }

func (c *cancelAfter) Execute(seed int64, hook memmodel.Hook) core.ExecResult {
	return c.inner.Execute(seed, hook)
}

func (c *cancelAfter) ExecuteCtx(ctx context.Context, seed int64, hook memmodel.Hook) core.ExecResult {
	if c.execs.Add(1) == c.trigger {
		c.cancel()
	}
	return c.inner.ExecuteCtx(ctx, seed, hook)
}

// disarmedProg builds a generated program that never faults, so a session
// always spends its full budget — the setting where cancellation matters.
func disarmedProg(t *testing.T) core.ContextProgram {
	t.Helper()
	p := genprog.Generate(genprog.SizeConfig(42, genprog.SizeSmall))
	return p.DisarmAll().Prog()
}

// Cancel mid-wave: the wave in flight is discarded, so the outcome holds
// strictly fewer runs than executions started, every committed run is a
// contiguous prefix, and nothing commits after the trigger's wave.
func TestExposeParallelCtxCancelMidWaveCommitsNothingFurther(t *testing.T) {
	const maxRuns, workers, trigger = 40, 4, 10
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	prog := &cancelAfter{inner: disarmedProg(t), trigger: trigger, cancel: cancel}
	s := &core.Session{
		Prog:     prog,
		Tool:     core.NewWaffle(core.Options{}),
		MaxRuns:  maxRuns,
		BaseSeed: 7,
	}
	out := s.ExposeParallelCtx(ctx, workers)

	execs := int(prog.execs.Load())
	if execs < trigger {
		t.Fatalf("cancel never fired: %d executions", execs)
	}
	if len(out.Runs) >= maxRuns {
		t.Fatalf("cancelled search still committed the full budget (%d runs)", len(out.Runs))
	}
	// The trigger's wave was in flight at cancellation and must have been
	// discarded: at least that execution can never appear in the outcome.
	if len(out.Runs) >= execs {
		t.Fatalf("committed %d runs out of %d executions — the in-flight wave leaked into the outcome",
			len(out.Runs), execs)
	}
	for i, r := range out.Runs {
		if r.Run != i+1 {
			t.Fatalf("committed runs are not a contiguous prefix: run %d at position %d", r.Run, i)
		}
		if r.Err != nil {
			t.Fatalf("run %d committed with error %v — cancelled runs must not commit", r.Run, r.Err)
		}
	}
}

// Sequential ExposeCtx stops at the first boundary after the cancel; the
// run the cancel interrupted is the last one recorded (as a run error),
// and no later run starts.
func TestExposeCtxCancelStopsAtBoundary(t *testing.T) {
	const maxRuns, trigger = 40, 5
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	prog := &cancelAfter{inner: disarmedProg(t), trigger: trigger, cancel: cancel}
	s := &core.Session{
		Prog:     prog,
		Tool:     core.NewWaffle(core.Options{}),
		MaxRuns:  maxRuns,
		BaseSeed: 7,
	}
	out := s.ExposeCtx(ctx)
	if got := int(prog.execs.Load()); got != trigger {
		t.Fatalf("sequential search executed %d runs after a cancel at %d", got, trigger)
	}
	if len(out.Runs) != trigger {
		t.Fatalf("outcome has %d runs, want %d (the interrupted run included)", len(out.Runs), trigger)
	}
	last := out.Runs[len(out.Runs)-1]
	if last.Err == nil {
		t.Fatalf("interrupted run %d recorded no error", last.Run)
	}
}

// A Background context leaves both searches byte-identical to the
// context-free entry points (the wrappers literally call the Ctx
// variants, so this pins the wrapper direction too).
func TestExposeCtxBackgroundMatchesExpose(t *testing.T) {
	mk := func() *core.Session {
		return &core.Session{
			Prog:     disarmedProg(t),
			Tool:     core.NewWaffle(core.Options{}),
			MaxRuns:  12,
			BaseSeed: 7,
		}
	}
	a := mk().Expose()
	b := mk().ExposeCtx(context.Background())
	if len(a.Runs) != len(b.Runs) {
		t.Fatalf("run counts diverged: %d vs %d", len(a.Runs), len(b.Runs))
	}
	for i := range a.Runs {
		ra, rb := a.Runs[i], b.Runs[i]
		if ra.Run != rb.Run || ra.Seed != rb.Seed || ra.End != rb.End ||
			ra.Stats.Count != rb.Stats.Count || ra.Stats.Total != rb.Stats.Total ||
			ra.Outcome != rb.Outcome {
			t.Fatalf("run %d diverged between Expose and ExposeCtx(Background)", ra.Run)
		}
	}
}
