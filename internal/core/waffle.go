package core

import (
	"waffle/internal/memmodel"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// Waffle is the paper's tool as a Session-drivable Tool: run 1 is the
// delay-free preparation run whose trace is analyzed into a Plan; every
// subsequent run injects according to that plan, with probabilities
// decaying in place between runs (Figure 3). Setting
// Options.DisablePrepRun switches the whole tool to the online engine
// (same-run identification), which is Table 7's "no preparation run"
// ablation.
type Waffle struct {
	opts Options

	rec    *trace.Recorder
	prepTr *trace.Trace
	plan   *Plan
	inj    *Injector
	online *Online
	label  string
}

// NewWaffle returns a fresh Waffle tool.
func NewWaffle(opts Options) *Waffle {
	w := &Waffle{opts: opts.WithDefaults()}
	if w.opts.DisablePrepRun {
		w.online = NewOnline(NoPrepConfig(w.opts))
	}
	return w
}

// NewWaffleWithPlan returns a Waffle tool bootstrapped from a previously
// analyzed plan, skipping the preparation run entirely — the paper's
// on-disk workflow, where S, I, the delay lengths, and the decayed
// probabilities persist between detection runs and across tool invocations
// (§4.4, §5). Every run of the returned tool is a detection run; the
// plan's probabilities continue to decay in place.
func NewWaffleWithPlan(plan *Plan, opts Options) *Waffle {
	return &Waffle{opts: opts.WithDefaults(), plan: plan}
}

// Name implements Tool.
func (w *Waffle) Name() string {
	if w.opts.DisablePrepRun {
		return "waffle(no-prep)"
	}
	return "waffle"
}

// Plan exposes the analyzed plan (nil before the preparation run finishes
// or when running in no-prep mode).
func (w *Waffle) Plan() *Plan { return w.plan }

// PrepTrace exposes the preparation-run trace (nil before analysis or in
// no-prep mode).
func (w *Waffle) PrepTrace() *trace.Trace { return w.prepTr }

// SetLabel names the plan produced by analysis.
func (w *Waffle) SetLabel(label string) { w.label = label }

// HookForRun implements Tool.
func (w *Waffle) HookForRun(run int, prev *RunReport) memmodel.Hook {
	if w.opts.DisablePrepRun {
		w.online.BeginRun()
		return w.online
	}
	if run == 1 && w.plan == nil {
		w.rec = trace.NewRecorder(w.label, 0)
		return NewPrepHook(w.rec, w.opts)
	}
	if w.plan == nil {
		w.FinishPreparation(prev)
	}
	w.inj = NewInjector(w.plan, w.opts)
	return w.inj
}

// FinishPreparation turns the recorded preparation trace into the plan.
// prev is the preparation run's report (its End stamps the trace). Called
// lazily by HookForRun before the first detection run; exposed so the
// parallel orchestrator can finalize the plan without building a hook.
func (w *Waffle) FinishPreparation(prev *RunReport) {
	var end sim.Time
	if prev != nil {
		end = prev.End
	}
	w.prepTr = w.rec.Finish(end)
	w.plan = Analyze(w.prepTr, w.opts)
}

// PrepRunCount implements PlanDriven: -1 in online mode (detection is not
// plan-driven there), 0 when bootstrapped from a plan, 1 when run 1 must
// record the preparation trace.
func (w *Waffle) PrepRunCount() int {
	switch {
	case w.opts.DisablePrepRun:
		return -1
	case w.plan != nil:
		return 0
	default:
		return 1
	}
}

// DetectionPlan implements PlanDriven.
func (w *Waffle) DetectionPlan(prev *RunReport) *Plan {
	if w.plan == nil {
		w.FinishPreparation(prev)
	}
	return w.plan
}

// NewDetectionInjector implements PlanDriven.
func (w *Waffle) NewDetectionInjector(plan *Plan) *Injector {
	return NewInjector(plan, w.opts)
}

// CurrentOptions implements Retunable.
func (w *Waffle) CurrentOptions() Options { return w.opts }

// SetOptions implements Retunable: replaces the options used by every
// injector constructed from now on. NewInjector copies Options at
// construction, so in-flight runs (including leaked timed-out live runs)
// keep the options they started with; callers apply retunes only at run
// boundaries (Session.Tuner does). Identity-defining flags are pinned to
// their constructed values — a retune must not change what tool this is.
func (w *Waffle) SetOptions(opts Options) {
	opts.DisablePrepRun = w.opts.DisablePrepRun
	w.opts = opts.WithDefaults()
	if w.online != nil {
		w.online.SetOptions(w.opts)
	}
}

// LiveSites implements SiteProber: the number of injection sites whose
// probability is still positive — zero means no future run of this tool
// can inject, hence (§5) no future run can expose. -1 before the plan
// exists.
func (w *Waffle) LiveSites() int {
	if w.opts.DisablePrepRun {
		return w.online.LiveSites()
	}
	if w.plan == nil {
		return -1
	}
	n := 0
	for _, p := range w.plan.Probs {
		if p > 0 {
			n++
		}
	}
	return n
}

// RunStats implements Tool.
func (w *Waffle) RunStats() DelayStats {
	switch {
	case w.opts.DisablePrepRun:
		return w.online.Stats()
	case w.inj != nil:
		return w.inj.Stats()
	default:
		return DelayStats{} // preparation run injects nothing
	}
}

// Candidates implements Tool.
func (w *Waffle) Candidates(site trace.SiteID) []Pair {
	if w.opts.DisablePrepRun {
		var out []Pair
		for _, p := range w.online.Pairs() {
			if p.Delay == site || p.Target == site {
				out = append(out, p)
			}
		}
		return out
	}
	if w.plan == nil {
		return nil
	}
	return w.plan.PairsAt(site)
}
