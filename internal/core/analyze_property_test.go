package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"waffle/internal/sim"
	"waffle/internal/trace"
	"waffle/internal/vclock"
)

// genTrace builds a random but well-formed trace: monotone timestamps,
// threads 1..nThreads, a small object and site universe, and clocks from a
// random fork tree so parent-child pruning has real material to act on.
func genTrace(seed int64, nEvents int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	nThreads := 2 + rng.Intn(3)

	// Fork tree: thread 1 forks the rest in order; clocks follow the
	// fork protocol via FromSnapshot construction.
	clocks := make([]*vclock.Clock, nThreads+1)
	parentCtr := int64(1)
	clocks[1] = vclock.FromSnapshot(1, []vclock.Entry{{TID: 1, Counter: parentCtr}})
	for tid := 2; tid <= nThreads; tid++ {
		entries := []vclock.Entry{{TID: 1, Counter: parentCtr}, {TID: tid, Counter: 1}}
		clocks[tid] = vclock.FromSnapshot(tid, entries)
		parentCtr++
		clocks[1] = vclock.FromSnapshot(1, []vclock.Entry{{TID: 1, Counter: parentCtr}})
	}

	sites := []trace.SiteID{"s0", "s1", "s2", "s3", "s4", "s5"}
	kinds := []trace.Kind{trace.KindInit, trace.KindUse, trace.KindUse, trace.KindDispose}

	tr := &trace.Trace{Label: "gen"}
	t := sim.Time(0)
	for i := 0; i < nEvents; i++ {
		t = t.Add(sim.Duration(rng.Intn(30_000))) // 0-30ms steps
		tid := 1 + rng.Intn(nThreads)
		tr.Events = append(tr.Events, trace.Event{
			Seq:   i,
			T:     t,
			TID:   tid,
			Site:  sites[rng.Intn(len(sites))],
			Obj:   trace.ObjID(1 + rng.Intn(4)),
			Kind:  kinds[rng.Intn(len(kinds))],
			Clock: clocks[tid],
		})
	}
	tr.End = t
	return tr
}

// Property: every candidate pair respects the analyzer's contract — gap
// within [0, δ), delay site kind matches the bug kind, and the pair's
// events exist cross-thread on a shared object.
func TestAnalyzePairContractProperty(t *testing.T) {
	err := quick.Check(func(rawSeed uint32, rawN uint8) bool {
		tr := genTrace(int64(rawSeed), 10+int(rawN)%120)
		opts := Options{}.WithDefaults()
		plan := Analyze(tr, Options{})
		for _, p := range plan.Pairs {
			if p.Gap < 0 || p.Gap >= opts.Window {
				return false
			}
			if p.Count <= 0 {
				return false
			}
			if p.Kind != UseBeforeInit && p.Kind != UseAfterFree {
				return false
			}
			if plan.DelayLen[p.Delay] < p.Gap {
				return false // delay length is the max gap at the site
			}
			if plan.Probs[p.Delay] != 1.0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: pruning is monotone — the parent-child-pruned candidate set is
// a subset of the unpruned one, pair by pair.
func TestAnalyzePruningMonotoneProperty(t *testing.T) {
	err := quick.Check(func(rawSeed uint32, rawN uint8) bool {
		tr := genTrace(int64(rawSeed), 10+int(rawN)%120)
		pruned := Analyze(tr, Options{})
		unpruned := Analyze(tr, Options{DisableParentChild: true})
		idx := make(map[pairKey]Pair, len(unpruned.Pairs))
		for _, p := range unpruned.Pairs {
			idx[p.key()] = p
		}
		for _, p := range pruned.Pairs {
			up, ok := idx[p.key()]
			if !ok {
				return false // pruning invented a pair
			}
			if p.Count > up.Count || p.Gap > up.Gap {
				return false // pruning inflated a pair
			}
		}
		return len(pruned.Pairs) <= len(unpruned.Pairs)
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: the interference relation is symmetric and only mentions
// injection sites on the delay side of the relation's origin.
func TestAnalyzeInterferenceSymmetricProperty(t *testing.T) {
	err := quick.Check(func(rawSeed uint32, rawN uint8) bool {
		tr := genTrace(int64(rawSeed), 10+int(rawN)%120)
		plan := Analyze(tr, Options{})
		for a, list := range plan.Interfere {
			for _, b := range list {
				if !plan.InterferesWith(b, a) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: widening δ never loses candidate pairs.
func TestAnalyzeWindowMonotoneProperty(t *testing.T) {
	err := quick.Check(func(rawSeed uint32, rawN uint8) bool {
		tr := genTrace(int64(rawSeed), 10+int(rawN)%120)
		narrow := Analyze(tr, Options{Window: 20 * sim.Millisecond})
		wide := Analyze(tr, Options{Window: 120 * sim.Millisecond})
		idx := make(map[pairKey]bool, len(wide.Pairs))
		for _, p := range wide.Pairs {
			idx[p.key()] = true
		}
		for _, p := range narrow.Pairs {
			if !idx[p.key()] {
				return false
			}
		}
		return len(narrow.Pairs) <= len(wide.Pairs)
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: plans survive the JSON round trip for arbitrary analyzed
// traces (not just hand-built ones).
func TestAnalyzePlanRoundTripProperty(t *testing.T) {
	err := quick.Check(func(rawSeed uint32, rawN uint8) bool {
		tr := genTrace(int64(rawSeed), 10+int(rawN)%120)
		plan := Analyze(tr, Options{})
		var buf bytes.Buffer
		if err := plan.WriteJSON(&buf); err != nil {
			return false
		}
		back, err := ReadPlanJSON(&buf)
		if err != nil {
			return false
		}
		if len(back.Pairs) != len(plan.Pairs) {
			return false
		}
		for i := range plan.Pairs {
			if back.Pairs[i] != plan.Pairs[i] {
				return false
			}
		}
		for s, d := range plan.DelayLen {
			if back.DelayLen[s] != d {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}
