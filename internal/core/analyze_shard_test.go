package core

import (
	"bytes"
	"errors"
	"sort"
	"testing"
	"testing/quick"

	"waffle/internal/trace"
)

// planBytes renders a plan to its canonical JSON encoding, the byte-level
// identity the sharded and streaming analyzers are held to.
func planBytes(t *testing.T, plan *Plan) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := plan.WriteJSON(&buf); err != nil {
		t.Fatalf("encode plan: %v", err)
	}
	return buf.Bytes()
}

// streamOf serializes a trace to the WFTS wire format for AnalyzeStream.
func streamOf(t *testing.T, tr *trace.Trace) *bytes.Reader {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteStream(&buf); err != nil {
		t.Fatalf("write stream: %v", err)
	}
	return bytes.NewReader(buf.Bytes())
}

// Property: the sharded analyzer is bit-identical to the sequential one at
// every worker count, on random traces. This is the contract that lets
// -parallel-analyze default on without perturbing any downstream result.
func TestAnalyzeParallelMatchesSequentialProperty(t *testing.T) {
	err := quick.Check(func(rawSeed uint32, rawN uint8) bool {
		tr := genTrace(int64(rawSeed), 10+int(rawN)%120)
		want := planBytes(t, analyzeSequential(tr, Options{}.WithDefaults()))
		for _, workers := range []int{2, 3, 4, 8} {
			got := planBytes(t, AnalyzeParallel(tr, Options{}, workers))
			if !bytes.Equal(got, want) {
				t.Logf("workers=%d diverged:\n%s\nvs sequential:\n%s", workers, got, want)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: the streaming analyzer is bit-identical to the sequential one
// after a WFTS round trip of the same random traces.
func TestAnalyzeStreamMatchesSequentialProperty(t *testing.T) {
	err := quick.Check(func(rawSeed uint32, rawN uint8) bool {
		tr := genTrace(int64(rawSeed), 10+int(rawN)%120)
		want := planBytes(t, analyzeSequential(tr, Options{}.WithDefaults()))
		plan, aerr := AnalyzeStream(streamOf(t, tr), Options{})
		if aerr != nil {
			t.Logf("stream analyze: %v", aerr)
			return false
		}
		return bytes.Equal(planBytes(t, plan), want)
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

// The Analyze dispatcher routes through the sharded path when the options
// ask for workers; the result must still be the sequential bytes.
func TestAnalyzeDispatchesOnAnalyzeWorkers(t *testing.T) {
	tr := genTrace(99, 100)
	want := planBytes(t, Analyze(tr, Options{}))
	got := planBytes(t, Analyze(tr, Options{AnalyzeWorkers: 4}))
	if !bytes.Equal(got, want) {
		t.Fatalf("AnalyzeWorkers=4 plan diverged from sequential:\n%s\nvs\n%s", got, want)
	}
}

// shardObjects must partition the object universe exactly: every list
// appears in exactly one shard, and shard assignment is deterministic.
func TestShardObjectsPartition(t *testing.T) {
	tr := genTrace(7, 150)
	byObject := tr.ByObject()
	shards := shardObjects(byObject, 4)
	seen := map[trace.ObjID]int{}
	for _, shard := range shards {
		for _, obj := range shard {
			seen[obj]++
		}
	}
	if len(seen) != len(byObject) {
		t.Fatalf("shards cover %d objects, trace has %d", len(seen), len(byObject))
	}
	for obj, n := range seen {
		if n != 1 {
			t.Fatalf("object %d assigned to %d shards", obj, n)
		}
	}
	again := shardObjects(byObject, 4)
	for i := range shards {
		if len(shards[i]) != len(again[i]) {
			t.Fatalf("shard %d not deterministic", i)
		}
		for j := range shards[i] {
			if shards[i][j] != again[i][j] {
				t.Fatalf("shard %d not deterministic", i)
			}
		}
	}
}

// Pass 1's inner loop breaks as soon as a partner is a full window ahead —
// which is only sound because ByObject lists inherit the trace's time
// order. This test documents the dependency: on an out-of-order trace the
// early break silently drops a genuine near miss, and TimeSorted is the
// guard callers of externally loaded traces must use.
func TestAnalyzeEarlyBreakRequiresTimeSortedTrace(t *testing.T) {
	unsorted := mkTrace(
		ev(0, 0, 1, "ctor", 1, trace.KindInit),
		ev(1, 200, 2, "far", 1, trace.KindUse), // a full window ahead: breaks the scan
		ev(2, 50, 2, "use", 1, trace.KindUse),  // in-window partner hidden behind it
	)
	if unsorted.TimeSorted() {
		t.Fatal("trace unexpectedly time-sorted")
	}
	if plan := Analyze(unsorted, Options{}); len(plan.Pairs) != 0 {
		t.Fatalf("unsorted trace produced %d pairs; the early break was expected to drop them", len(plan.Pairs))
	}

	sorted := mkTrace(unsorted.Events...)
	sort.Slice(sorted.Events, func(i, j int) bool { return sorted.Events[i].T < sorted.Events[j].T })
	for i := range sorted.Events {
		sorted.Events[i].Seq = i
	}
	if !sorted.TimeSorted() {
		t.Fatal("sorted trace not time-sorted")
	}
	plan := Analyze(sorted, Options{})
	if len(plan.Pairs) != 1 || plan.Pairs[0].Delay != "ctor" || plan.Pairs[0].Target != "use" {
		t.Fatalf("sorted trace pairs = %+v, want the recovered ctor→use near miss", plan.Pairs)
	}
}

// AnalyzeStream must reject out-of-order streams loudly instead of
// silently dropping pairs the way the materialized early break would.
func TestAnalyzeStreamRejectsUnsorted(t *testing.T) {
	unsorted := mkTrace(
		ev(0, 0, 1, "ctor", 1, trace.KindInit),
		ev(1, 200, 2, "far", 1, trace.KindUse),
		ev(2, 50, 2, "use", 1, trace.KindUse),
	)
	_, err := AnalyzeStream(streamOf(t, unsorted), Options{})
	if !errors.Is(err, ErrUnsortedStream) {
		t.Fatalf("err = %v, want ErrUnsortedStream", err)
	}
}

// The zero-gap candidate survives sharding and streaming too: a DelayLen
// entry with gap 0 must appear in every analyzer's plan.
func TestAnalyzeZeroGapBitIdenticalAcrossAnalyzers(t *testing.T) {
	tr := mkTrace(
		ev(0, 1, 1, "ctor", 1, trace.KindInit),
		ev(1, 1, 2, "use", 1, trace.KindUse),
	)
	want := planBytes(t, Analyze(tr, Options{}))
	if got := planBytes(t, AnalyzeParallel(tr, Options{}, 4)); !bytes.Equal(got, want) {
		t.Fatalf("sharded zero-gap plan diverged:\n%s\nvs\n%s", got, want)
	}
	plan, err := AnalyzeStream(streamOf(t, tr), Options{})
	if err != nil {
		t.Fatalf("stream analyze: %v", err)
	}
	if got := planBytes(t, plan); !bytes.Equal(got, want) {
		t.Fatalf("streamed zero-gap plan diverged:\n%s\nvs\n%s", got, want)
	}
	if gap, ok := plan.DelayLen["ctor"]; !ok || gap != 0 {
		t.Fatalf("DelayLen[ctor] = %v,%v, want materialized zero gap", gap, ok)
	}
}
