package core_test

import (
	"fmt"
	"strings"
	"testing"

	"waffle/internal/apps"
	"waffle/internal/core"
	"waffle/internal/sim"
	"waffle/internal/trace"
	"waffle/internal/vclock"
)

// simExecView routes a *sim.Thread through the generic Exec/ClockedExec
// seam: the same adapter shape internal/live uses for goroutines, here
// wrapping a simulated thread so the injector cannot take the *sim.Thread
// TLS fast path.
type simExecView struct{ t *sim.Thread }

func (e simExecView) ID() int                  { return e.t.ID() }
func (e simExecView) Now() sim.Time            { return e.t.Now() }
func (e simExecView) Sleep(d sim.Duration)     { e.t.Sleep(d) }
func (e simExecView) Rand() float64            { return e.t.Rand() }
func (e simExecView) ForkClock() *vclock.Clock { return vclock.Of(e.t) }

// seamHook drives the injector through the generic seam instead of the
// legacy *sim.Thread OnAccess entry point.
type seamHook struct{ in *core.Injector }

func (h seamHook) OnAccess(t *sim.Thread, site trace.SiteID, obj trace.ObjID, kind trace.Kind, dur sim.Duration) {
	h.in.Access(simExecView{t}, site, obj, kind, dur)
}

// scheduleBytes canonicalizes one detection run's injection schedule —
// every interval in injection order plus the decayed per-site
// probabilities — for byte comparison.
func scheduleBytes(stats core.DelayStats, plan *core.Plan) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "count=%d total=%d skipped=%d\n", stats.Count, stats.Total, stats.Skipped)
	for _, iv := range stats.Intervals {
		fmt.Fprintf(&sb, "%s [%d,%d]\n", iv.Site, iv.Start, iv.End)
	}
	for _, site := range plan.InjectionSites() {
		fmt.Fprintf(&sb, "p[%s]=%v\n", site, plan.Probs[site])
	}
	return sb.String()
}

// TestInjectionScheduleEquivalentAcrossExecSeam pins the clock-abstraction
// refactor on the simulator: for every built-in bug input, a detection run
// whose injector is entered through the legacy *sim.Thread hook and one
// entered through the generic Exec seam (the adapter shape live threads
// use) must produce byte-identical injection schedules — same intervals in
// the same order, same skips, same decayed probabilities, same run end.
// Simulated runs are deterministic per seed, so any divergence is the
// seam's doing.
func TestInjectionScheduleEquivalentAcrossExecSeam(t *testing.T) {
	bugs := apps.AllBugs()
	if testing.Short() {
		bugs = bugs[:4]
	}
	for _, bt := range bugs {
		bt := bt
		t.Run(bt.Bug.ID, func(t *testing.T) {
			t.Parallel()

			rec := trace.NewRecorder(bt.Name, 1)
			res := bt.Prog.Execute(1, core.NewPrepHook(rec, core.Options{}))
			if res.Fault != nil {
				t.Fatalf("delay-free preparation run faulted: %v", res.Fault.Err)
			}
			base := core.Analyze(rec.Finish(res.End), core.Options{})
			if len(base.Pairs) == 0 {
				t.Fatalf("preparation produced no candidate pairs")
			}

			for run := 0; run < 3; run++ {
				seed := int64(100 + 7*run)
				planA, planB := base.Clone(), base.Clone()
				injA := core.NewInjector(planA, core.Options{})
				injB := core.NewInjector(planB, core.Options{})

				resA := bt.Prog.Execute(seed, injA)
				resB := bt.Prog.Execute(seed, seamHook{injB})

				if resA.End != resB.End || (resA.Fault == nil) != (resB.Fault == nil) {
					t.Fatalf("run %d (seed %d) diverged: legacy end=%v fault=%v, seam end=%v fault=%v",
						run, seed, resA.End, resA.Fault, resB.End, resB.Fault)
				}
				a, b := scheduleBytes(injA.Stats(), planA), scheduleBytes(injB.Stats(), planB)
				if a != b {
					t.Fatalf("run %d (seed %d) injection schedules differ:\nlegacy:\n%s\nseam:\n%s", run, seed, a, b)
				}
				// Carry the decay forward so later iterations also compare
				// behavior on partially decayed probabilities.
				base.MergeFrom(planA)
			}
		})
	}
}
