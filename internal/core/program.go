package core

import (
	"context"
	"errors"

	"waffle/internal/memmodel"
	"waffle/internal/sim"
	"waffle/internal/vclock"
)

// ContextProgram is an optional Program capability: executions that honor
// a wall-clock cancellation context. The parallel orchestrator uses it to
// enforce per-run budgets; programs without it simply run to completion.
type ContextProgram interface {
	Program
	// ExecuteCtx runs the program once, aborting with an ErrCanceled-style
	// Err when ctx is done before the run finishes.
	ExecuteCtx(ctx context.Context, seed int64, hook memmodel.Hook) ExecResult
}

// SimProgram adapts a scenario body to the Program interface: each Execute
// builds a fresh world and heap, attaches a root vector clock (the TLS
// analog the instrumenter plants in every thread), installs the tool's
// hook, and runs the body.
type SimProgram struct {
	// Label names the program/test in reports.
	Label string
	// MaxTime is the per-run virtual-time budget; runs exceeding it are
	// reported TimedOut (Table 5/6's "TimeOut" entries). Zero = no limit.
	MaxTime sim.Duration
	// Jitter is the relative duration spread applied to Work calls,
	// modelling run-to-run timing variation.
	Jitter float64
	// OpCost overrides the heap's intrinsic per-access cost when nonzero.
	OpCost sim.Duration
	// SyncObs, when set, is installed as the world's synchronization
	// observer for every run — the hook lock-order tools ride. Mutually
	// exclusive with FullHB (which installs its own observer).
	SyncObs sim.SyncObserver
	// TSO, when non-nil, runs every execution under store-buffer (TSO)
	// semantics: the heap buffers Init/Dispose transitions per thread with
	// seeded flush timing. The flush RNG is seeded TSO.Seed⊕f(run seed) so
	// commit latencies vary across runs like scheduling does, while equal
	// (config, seed) pairs stay bit-reproducible.
	TSO *memmodel.TSOConfig
	// FullHB installs complete happens-before tracking for the run: the
	// simulator's release/acquire edges (locks, queues, events, joins)
	// fold into the thread clocks, so recorded traces carry the full
	// relation instead of just fork edges. This is the expensive analysis
	// §4.1 weighs against Waffle's partial one; the eval package uses it
	// to quantify the trade-off.
	FullHB bool
	// Body is the scenario: application threads performing instrumented
	// object operations against the heap.
	Body func(t *sim.Thread, h *memmodel.Heap)
}

// Name implements Program.
func (p *SimProgram) Name() string { return p.Label }

// Execute implements Program.
func (p *SimProgram) Execute(seed int64, hook memmodel.Hook) ExecResult {
	return p.execute(nil, seed, hook)
}

// ExecuteCtx implements ContextProgram: the world aborts with ErrCanceled
// at the next scheduler event after ctx is done.
func (p *SimProgram) ExecuteCtx(ctx context.Context, seed int64, hook memmodel.Hook) ExecResult {
	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}
	return p.execute(cancel, seed, hook)
}

func (p *SimProgram) execute(cancel <-chan struct{}, seed int64, hook memmodel.Hook) ExecResult {
	w := sim.NewWorld(sim.Config{Seed: seed, Jitter: p.Jitter, MaxTime: p.MaxTime, Cancel: cancel})
	switch {
	case p.FullHB:
		tracker := vclock.NewSyncTracker()
		w.SetSyncObserver(tracker.Observe)
	case p.SyncObs != nil:
		w.SetSyncObserver(p.SyncObs)
	}
	h := memmodel.NewHeap()
	if p.OpCost > 0 {
		h.SetOpCost(p.OpCost)
	}
	if p.TSO != nil {
		c := *p.TSO
		c.Seed ^= seed * 0x9E3779B9
		h.EnableTSO(c)
	}
	h.SetHook(hook)
	err := w.Run(func(root *sim.Thread) {
		vclock.Attach(root)
		p.Body(root, h)
	})
	res := ExecResult{End: w.Now(), Err: err, TSVs: len(h.TSVs())}
	if err != nil {
		res.Fault = w.Fault()
		if errors.Is(err, sim.ErrTimeout) {
			res.TimedOut = true
		}
	}
	return res
}
