package core

import (
	"math/rand"
	"testing"

	"waffle/internal/obs"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// benchExec is a minimal Exec for driving Access without a simulator:
// Sleep advances a private virtual clock, Rand draws from a seeded stream.
type benchExec struct {
	now sim.Time
	rnd *rand.Rand
}

func (e *benchExec) ID() int              { return 1 }
func (e *benchExec) Now() sim.Time        { return e.now }
func (e *benchExec) Sleep(d sim.Duration) { e.now = e.now.Add(d) }
func (e *benchExec) Rand() float64        { return e.rnd.Float64() }

// benchmarkAccess measures Injector.Access at site under reg. The plan has
// one candidate ("hot"); benchmarking "cold" exercises the dominant
// non-candidate path, "hot" the full inject-and-record path. The injector
// is recreated periodically on the hot path so the interval slice does not
// grow without bound across b.N.
func benchmarkAccess(b *testing.B, reg *obs.Registry, site trace.SiteID) {
	mkInj := func() *Injector {
		plan := &Plan{
			DelayLen: map[trace.SiteID]sim.Duration{"hot": sim.Millisecond},
			Probs:    map[trace.SiteID]float64{"hot": 1},
		}
		// A vanishing decay keeps the hot site's probability at ~1 so every
		// hot-path iteration takes the inject branch.
		return NewInjector(plan, Options{Metrics: reg, Decay: 1e-12})
	}
	inj := mkInj()
	e := &benchExec{rnd: rand.New(rand.NewSource(1))}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if site == "hot" && i%(1<<16) == 1<<16-1 {
			b.StopTimer()
			inj = mkInj()
			b.StartTimer()
		}
		inj.Access(e, site, 1, trace.KindUse, 0)
	}
}

// The disabled fast path: with a nil registry every metric emission is a
// single nil check, so these must not be measurably slower than the
// pre-observability injector. Compare against the WithRegistry variants:
//
//	go test ./internal/core -bench BenchmarkInjectorAccess -benchmem
func BenchmarkInjectorAccessMissNilRegistry(b *testing.B)  { benchmarkAccess(b, nil, "cold") }
func BenchmarkInjectorAccessMissWithRegistry(b *testing.B) { benchmarkAccess(b, obs.New(), "cold") }
func BenchmarkInjectorAccessHotNilRegistry(b *testing.B)   { benchmarkAccess(b, nil, "hot") }
func BenchmarkInjectorAccessHotWithRegistry(b *testing.B)  { benchmarkAccess(b, obs.New(), "hot") }
