package core

import "testing"

func TestReplayReproducesExposure(t *testing.T) {
	prog := racyInitUse()
	s := &Session{Prog: prog, Tool: NewWaffle(Options{}), MaxRuns: 10, BaseSeed: 1}
	out := s.Expose()
	if out.Bug == nil {
		t.Fatal("no bug to replay")
	}
	rep := Replay(prog, out.Bug, Options{})
	if !rep.Reproduced {
		t.Fatalf("replay failed: %v", rep)
	}
	if rep.NullRef.Site != out.Bug.NullRef.Site {
		t.Fatalf("replay faulted at %s, original at %s", rep.NullRef.Site, out.Bug.NullRef.Site)
	}
}

func TestMinimalPlanStripsUnrelatedPairs(t *testing.T) {
	prog := racyUseDispose()
	s := &Session{Prog: prog, Tool: NewWaffle(Options{}), MaxRuns: 10, BaseSeed: 1}
	out := s.Expose()
	if out.Bug == nil {
		t.Fatal("no bug")
	}
	plan := MinimalPlan(out.Bug, Options{})
	if len(plan.Pairs) == 0 {
		t.Fatal("minimal plan empty")
	}
	for _, p := range plan.Pairs {
		if p.Delay != out.Bug.NullRef.Site && p.Target != out.Bug.NullRef.Site {
			t.Fatalf("unrelated pair kept: %+v", p)
		}
	}
	for site, prob := range plan.Probs {
		if prob != 1.0 {
			t.Fatalf("site %s has probability %v, want pinned 1.0", site, prob)
		}
	}
}

func TestReplayIsDeterministic(t *testing.T) {
	prog := racyUseDispose()
	s := &Session{Prog: prog, Tool: NewWaffle(Options{}), MaxRuns: 10, BaseSeed: 5}
	out := s.Expose()
	if out.Bug == nil {
		t.Fatal("no bug")
	}
	r1 := Replay(prog, out.Bug, Options{})
	r2 := Replay(prog, out.Bug, Options{})
	if !r1.Reproduced || !r2.Reproduced {
		t.Fatalf("replays failed: %v / %v", r1, r2)
	}
	if r1.End != r2.End || r1.Delays.Count != r2.Delays.Count {
		t.Fatalf("replays diverged: %v vs %v", r1, r2)
	}
}

func TestReplayCleanOnWrongSeedStillReports(t *testing.T) {
	// Replaying with a tampered seed may or may not reproduce (margins are
	// jitter-dependent); the result must simply be well-formed either way.
	prog := racyInitUse()
	s := &Session{Prog: prog, Tool: NewWaffle(Options{}), MaxRuns: 10, BaseSeed: 1}
	out := s.Expose()
	if out.Bug == nil {
		t.Fatal("no bug")
	}
	tampered := *out.Bug
	tampered.Seed = out.Bug.Seed + 1000
	rep := Replay(prog, &tampered, Options{})
	if rep.String() == "" {
		t.Fatal("empty verdict")
	}
}
