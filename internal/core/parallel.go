package core

import (
	"context"
	"fmt"

	"waffle/internal/memmodel"
	"waffle/internal/sched"
	"waffle/internal/trace"
)

// PlanDriven is an optional Tool capability: tools whose detection runs
// are fully determined by an immutable-structure Plan plus its mutable
// per-site probabilities. Such tools can run detection runs concurrently —
// each run injects from a private Plan snapshot — while the orchestrator
// keeps the shared plan's decay state exactly as a sequential search would
// have left it.
type PlanDriven interface {
	Tool
	// PrepRunCount reports how many leading runs prepare the plan before
	// detection can start: 0 when the tool was bootstrapped with a plan,
	// 1 when run 1 is the delay-free preparation run, and -1 when the tool
	// is not plan-driven at all (e.g. online same-run identification),
	// which disables parallel detection.
	PrepRunCount() int
	// DetectionPlan returns the shared plan detection runs snapshot from,
	// finalizing preparation (trace analysis) first if needed. prev is the
	// report of the last preparation run, nil when PrepRunCount is 0.
	DetectionPlan(prev *RunReport) *Plan
	// NewDetectionInjector returns a fresh injection hook reading from and
	// decaying the given plan (normally a clone of DetectionPlan's result).
	NewDetectionInjector(plan *Plan) *Injector
}

// specRun is one speculative detection run: the probability state it
// injected from, the clone it decayed, and what happened.
type specRun struct {
	start map[trace.SiteID]float64 // shared plan's Probs when the run began
	plan  *Plan                    // the run's private snapshot, post-decay
	res   ExecResult
	stats DelayStats
}

// ExposeParallel is Expose with detection runs fanned over a bounded
// worker pool. The outcome is bit-identical to Expose for the same
// session: run numbers, seeds, per-run stats, and the winning BugReport
// all match the sequential search.
//
// How: workers speculate from clones of the shared plan. Results commit
// strictly in run order between waves; a speculative run is accepted only
// if the shared plan's probabilities still equal the snapshot it injected
// from — the injector's behavior depends on nothing else that mutates —
// otherwise the run re-executes on the spot from the now-authoritative
// plan. Accepted clones fold back via Plan.MergeFrom (probabilities only
// decay, so min-merge reproduces the sequential state exactly). The first
// committed fault wins and, as in Expose, ends the search.
//
// Speculation pays off once probabilities stop changing — notably after
// they decay to zero — when every speculative run validates. Early runs,
// whose decays invalidate their wave-mates, degrade toward sequential
// cost but never change the result.
//
// Tools that are not plan-driven (and worker counts below 2) fall back to
// the sequential search.
func (s *Session) ExposeParallel(workers int) *Outcome {
	return s.ExposeParallelCtx(context.Background(), workers)
}

// ExposeParallelCtx is ExposeParallel under a caller context: preparation
// stops at the first run boundary after ctx is done, detection stops at
// the next wave boundary (a wave in flight when ctx dies is discarded —
// its runs never commit, so a cancelled search's outcome holds exactly
// the runs a sequential search would have completed before the cancel).
// With a Background context the search is byte-identical to
// ExposeParallel.
func (s *Session) ExposeParallelCtx(ctx context.Context, workers int) *Outcome {
	pd, ok := s.Tool.(PlanDriven)
	if !ok || pd.PrepRunCount() < 0 || workers <= 1 {
		return s.ExposeCtx(ctx)
	}
	maxRuns := s.MaxRuns
	if maxRuns <= 0 {
		maxRuns = DefaultMaxRuns
	}

	out := &Outcome{Program: s.Prog.Name(), Tool: s.Tool.Name()}
	defer s.trackRate(out)()
	out.BaseTime = s.Baseline()

	// Preparation runs are inherently sequential: the plan does not exist
	// until they finish.
	var prev *RunReport
	firstDetection := 1 + pd.PrepRunCount()
	stopSpan := func() {}
	if firstDetection > 1 {
		stopSpan = s.Metrics.Span("phase.prepare").Time()
	}
	defer func() { stopSpan() }()
	curMax := maxRuns
	for run := 1; run < firstDetection && run <= curMax; run++ {
		if ctx.Err() != nil {
			return out
		}
		if s.Tuner != nil {
			var stop bool
			curMax, stop = s.tuneBoundary(out, run, curMax, prev, false)
			if stop {
				return out
			}
		}
		seed := s.BaseSeed + int64(run) - 1
		hook := s.Tool.HookForRun(run, prev)
		res := s.execute(ctx, seed, hook)
		rep, faulted := s.appendRun(out, run, seed, res, s.Tool.RunStats())
		prev = rep
		if faulted {
			return out
		}
	}
	if ctx.Err() != nil {
		return out
	}
	// Boundary before the first detection run: the last chance to retune
	// (or stop) before workers start speculating.
	if s.Tuner != nil {
		var stop bool
		curMax, stop = s.tuneBoundary(out, firstDetection, curMax, prev, false)
		if stop {
			return out
		}
	}
	if firstDetection > curMax {
		return out
	}
	stopSpan()
	stopSpan = s.Metrics.Span("phase.detect").Time()

	// The shared plan. Mutated only inside commit (single-threaded,
	// between waves); workers read it only through Clone at job start.
	plan := pd.DetectionPlan(prev)

	job := func(ctx context.Context, run int) (specRun, error) {
		snap := plan.Clone()
		inj := pd.NewDetectionInjector(snap)
		res := s.executeDetection(ctx, s.BaseSeed+int64(run)-1, inj)
		return specRun{start: copyProbs(plan.Probs), plan: snap, res: res, stats: inj.Stats()}, nil
	}

	respec := s.Metrics.Counter("parallel.respeculations")
	commit := func(r sched.Result[specRun]) bool {
		run := r.Index
		if run > curMax {
			// The budget shrank below this index at an earlier boundary;
			// results are committed in order, so every later run is out of
			// budget too — stop the engine.
			return false
		}
		seed := s.BaseSeed + int64(run) - 1
		v := r.Value
		if r.Err != nil || !probsEqual(plan.Probs, v.start) {
			// The speculation is unusable: either the job itself died, or
			// an earlier run's decay means this run injected with
			// probabilities a sequential search would not have used.
			// Re-execute from the authoritative plan.
			respec.Inc()
			v = s.authoritativeRun(pd, plan, seed)
		}
		plan.MergeFrom(v.plan)
		rep, faulted := s.appendRun(out, run, seed, v.res, v.stats)
		if faulted {
			return false
		}
		if s.Tuner != nil {
			// Boundary before run+1. Commits run single-threaded after the
			// wave's WaitGroup, so a retune applied here cannot race a
			// worker; it takes effect for the next wave's injectors.
			var stop bool
			curMax, stop = s.tuneBoundary(out, run+1, curMax, rep, true)
			if stop {
				return false
			}
		}
		return true
	}

	sched.RunCtx(ctx, sched.Pool{Workers: workers, Budget: s.RunBudget, Metrics: s.Metrics, Tune: s.PoolTune}, firstDetection, curMax, job, commit)
	return out
}

// authoritativeRun performs one detection run synchronously against a
// fresh clone of the shared plan — the sequential search's behavior for
// that run, used when a speculative result failed validation.
func (s *Session) authoritativeRun(pd PlanDriven, plan *Plan, seed int64) specRun {
	ctx := context.Background()
	if s.RunBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.RunBudget)
		defer cancel()
	}
	snap := plan.Clone()
	inj := pd.NewDetectionInjector(snap)
	res := s.executeDetection(ctx, seed, inj)
	return specRun{start: copyProbs(plan.Probs), plan: snap, res: res, stats: inj.Stats()}
}

// executeDetection runs the program once, honoring the context when the
// program supports cancellation and converting panics out of the simulated
// world into run errors so one crashing run cannot take down the search.
func (s *Session) executeDetection(ctx context.Context, seed int64, hook memmodel.Hook) (res ExecResult) {
	defer func() {
		if r := recover(); r != nil {
			res = ExecResult{Err: fmt.Errorf("core: run panicked: %v", r)}
		}
	}()
	if cp, ok := s.Prog.(ContextProgram); ok {
		return cp.ExecuteCtx(ctx, seed, hook)
	}
	return s.Prog.Execute(seed, hook)
}

func copyProbs(m map[trace.SiteID]float64) map[trace.SiteID]float64 {
	out := make(map[trace.SiteID]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// probsEqual compares probability maps exactly: decay is deterministic
// arithmetic, so equal starting points yield bitwise-equal values.
func probsEqual(a, b map[trace.SiteID]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}
