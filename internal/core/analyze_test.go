package core

import (
	"bytes"
	"testing"

	"waffle/internal/sim"
	"waffle/internal/trace"
	"waffle/internal/vclock"
)

// ev builds a trace event at millisecond timestamp ms.
func ev(seq int, ms float64, tid int, site trace.SiteID, obj trace.ObjID, kind trace.Kind) trace.Event {
	return trace.Event{
		Seq: seq, T: sim.Time(ms * float64(sim.Millisecond)),
		TID: tid, Site: site, Obj: obj, Kind: kind,
	}
}

func mkTrace(events ...trace.Event) *trace.Trace {
	var end sim.Time
	for i := range events {
		events[i].Seq = i
		if events[i].T > end {
			end = events[i].T
		}
	}
	return &trace.Trace{Label: "test", Events: events, End: end}
}

func TestAnalyzeFindsUseBeforeInitPair(t *testing.T) {
	tr := mkTrace(
		ev(0, 1, 1, "ctor", 1, trace.KindInit),
		ev(1, 3, 2, "handler", 1, trace.KindUse),
	)
	plan := Analyze(tr, Options{})
	if len(plan.Pairs) != 1 {
		t.Fatalf("pairs = %v", plan.Pairs)
	}
	p := plan.Pairs[0]
	if p.Delay != "ctor" || p.Target != "handler" || p.Kind != UseBeforeInit {
		t.Fatalf("pair = %+v", p)
	}
	if p.Gap != 2*sim.Millisecond {
		t.Fatalf("gap = %v, want 2ms", p.Gap)
	}
	if plan.DelayLen["ctor"] != 2*sim.Millisecond {
		t.Fatalf("delay len = %v", plan.DelayLen["ctor"])
	}
	if plan.Probs["ctor"] != 1.0 {
		t.Fatalf("prob = %v", plan.Probs["ctor"])
	}
}

func TestAnalyzeFindsUseAfterFreePair(t *testing.T) {
	tr := mkTrace(
		ev(0, 0, 1, "ctor", 1, trace.KindInit),
		ev(1, 2, 2, "worker", 1, trace.KindUse),
		ev(2, 5, 1, "cleanup", 1, trace.KindDispose),
	)
	plan := Analyze(tr, Options{})
	var uaf *Pair
	for i := range plan.Pairs {
		if plan.Pairs[i].Kind == UseAfterFree {
			uaf = &plan.Pairs[i]
		}
	}
	if uaf == nil {
		t.Fatalf("no UAF pair in %v", plan.Pairs)
	}
	if uaf.Delay != "worker" || uaf.Target != "cleanup" {
		t.Fatalf("pair = %+v", uaf)
	}
	if uaf.Gap != 3*sim.Millisecond {
		t.Fatalf("gap = %v", uaf.Gap)
	}
}

func TestAnalyzeIgnoresSameThread(t *testing.T) {
	tr := mkTrace(
		ev(0, 1, 1, "ctor", 1, trace.KindInit),
		ev(1, 2, 1, "same", 1, trace.KindUse),
	)
	plan := Analyze(tr, Options{})
	if len(plan.Pairs) != 0 {
		t.Fatalf("same-thread pair admitted: %v", plan.Pairs)
	}
}

func TestAnalyzeIgnoresDifferentObjects(t *testing.T) {
	tr := mkTrace(
		ev(0, 1, 1, "ctor", 1, trace.KindInit),
		ev(1, 2, 2, "use", 2, trace.KindUse),
	)
	plan := Analyze(tr, Options{})
	if len(plan.Pairs) != 0 {
		t.Fatalf("cross-object pair admitted: %v", plan.Pairs)
	}
}

func TestAnalyzeRespectsWindow(t *testing.T) {
	tr := mkTrace(
		ev(0, 0, 1, "ctor", 1, trace.KindInit),
		ev(1, 150, 2, "use", 1, trace.KindUse), // 150ms > δ=100ms
	)
	plan := Analyze(tr, Options{})
	if len(plan.Pairs) != 0 {
		t.Fatalf("out-of-window pair admitted: %v", plan.Pairs)
	}
	// Shrinking the window further excludes closer pairs too.
	tr2 := mkTrace(
		ev(0, 0, 1, "ctor", 1, trace.KindInit),
		ev(1, 5, 2, "use", 1, trace.KindUse),
	)
	if got := len(Analyze(tr2, Options{Window: 2 * sim.Millisecond}).Pairs); got != 0 {
		t.Fatalf("pair admitted outside custom window")
	}
	if got := len(Analyze(tr2, Options{Window: 10 * sim.Millisecond}).Pairs); got != 1 {
		t.Fatalf("pair missing inside custom window")
	}
}

func TestAnalyzeMaxGapAcrossInstances(t *testing.T) {
	tr := mkTrace(
		ev(0, 0, 1, "ctor", 1, trace.KindInit),
		ev(1, 2, 2, "use", 1, trace.KindUse),
		ev(2, 10, 1, "ctor", 2, trace.KindInit),
		ev(3, 18, 2, "use", 2, trace.KindUse),
	)
	plan := Analyze(tr, Options{})
	if len(plan.Pairs) != 1 {
		t.Fatalf("pairs = %v", plan.Pairs)
	}
	if plan.Pairs[0].Count != 2 {
		t.Fatalf("count = %d, want 2", plan.Pairs[0].Count)
	}
	if plan.DelayLen["ctor"] != 8*sim.Millisecond {
		t.Fatalf("len = %v, want the max gap 8ms", plan.DelayLen["ctor"])
	}
}

// clockEv builds an event carrying a fork clock.
func clockEv(ms float64, tid int, site trace.SiteID, obj trace.ObjID, kind trace.Kind, clk *vclock.Clock) trace.Event {
	e := ev(0, ms, tid, site, obj, kind)
	e.Clock = clk
	return e
}

func TestAnalyzeParentChildPruning(t *testing.T) {
	// Thread 1 initializes before forking thread 2; the fork orders the
	// events, so the pair must be pruned — unless the ablation is active.
	parentPre := vclock.FromSnapshot(1, []vclock.Entry{{TID: 1, Counter: 1}})
	child := vclock.FromSnapshot(2, []vclock.Entry{{TID: 1, Counter: 1}, {TID: 2, Counter: 1}})
	tr := mkTrace(
		clockEv(1, 1, "ctor", 1, trace.KindInit, parentPre),
		clockEv(3, 2, "use", 1, trace.KindUse, child),
	)
	if got := len(Analyze(tr, Options{}).Pairs); got != 0 {
		t.Fatalf("fork-ordered pair admitted")
	}
	if got := len(Analyze(tr, Options{DisableParentChild: true}).Pairs); got != 1 {
		t.Fatalf("ablation did not keep the pair")
	}

	// Post-fork parent events are concurrent with the child: kept.
	parentPost := vclock.FromSnapshot(1, []vclock.Entry{{TID: 1, Counter: 2}})
	tr2 := mkTrace(
		clockEv(1, 1, "ctor", 1, trace.KindInit, parentPost),
		clockEv(3, 2, "use", 1, trace.KindUse, child),
	)
	if got := len(Analyze(tr2, Options{}).Pairs); got != 1 {
		t.Fatalf("concurrent pair pruned")
	}
}

func TestAnalyzeInterferenceSet(t *testing.T) {
	// Figure 5's shape: pair {ctor,use2} plus a candidate site "chk"
	// exercised by use2's thread inside [τ1−δ, τ2].
	tr := mkTrace(
		ev(0, 0, 1, "initA", 2, trace.KindInit), // makes chk's pair below
		ev(1, 1, 1, "ctor", 1, trace.KindInit),
		ev(2, 2, 2, "chk", 2, trace.KindUse), // chk is an injection site (pair with dispose below)
		ev(3, 3, 2, "use2", 1, trace.KindUse),
		ev(4, 4, 1, "disp", 2, trace.KindDispose),
	)
	plan := Analyze(tr, Options{})
	// chk delays for {chk, disp}; ctor delays for {ctor, use2}.
	if _, ok := plan.DelayLen["chk"]; !ok {
		t.Fatalf("chk not an injection site; pairs=%v", plan.Pairs)
	}
	if !plan.InterferesWith("ctor", "chk") || !plan.InterferesWith("chk", "ctor") {
		t.Fatalf("interference edge missing: %v", plan.Interfere)
	}
}

func TestAnalyzeExcludesSelfInterference(t *testing.T) {
	// Figure 4b: the same static site executes in both threads. The
	// interference relation must NOT contain the self edge — another
	// thread reaching the delay site is exactly the concurrency being
	// provoked, not a delay cancellation, and a self edge would make the
	// injector forbid concurrent delays at one site across threads.
	// Cross-site edges in the same window must survive.
	tr := mkTrace(
		ev(0, 0, 1, "ctor", 1, trace.KindInit),
		ev(1, 3, 2, "chk", 1, trace.KindUse), // thd2's use: pair {chk, disp}
		ev(2, 4, 1, "chk", 1, trace.KindUse), // thd1 exercises chk too
		ev(3, 4.5, 1, "disp", 1, trace.KindDispose),
	)
	plan := Analyze(tr, Options{})
	if plan.InterferesWith("chk", "chk") {
		t.Fatalf("self-interference edge present: %v", plan.Interfere)
	}
	if !plan.InterferesWith("chk", "ctor") || !plan.InterferesWith("ctor", "chk") {
		t.Fatalf("cross-site interference lost: %v", plan.Interfere)
	}
}

func TestAnalyzeZeroGapPairIsCandidate(t *testing.T) {
	// Simultaneous timestamps are a legal near miss (gap 0 < δ). The
	// injector treats DelayLen membership as "is a candidate", so the
	// entry must exist even though the recorded gap is zero; delayFor
	// floors the injected delay at MinDelay.
	tr := mkTrace(
		ev(0, 1, 1, "ctor", 1, trace.KindInit),
		ev(1, 1, 2, "use", 1, trace.KindUse), // same instant, other thread
	)
	plan := Analyze(tr, Options{})
	if len(plan.Pairs) != 1 || plan.Pairs[0].Gap != 0 {
		t.Fatalf("pairs = %+v, want one zero-gap pair", plan.Pairs)
	}
	gap, ok := plan.DelayLen["ctor"]
	if !ok {
		t.Fatalf("zero-gap pair has no DelayLen entry: %v (site silently never injected)", plan.DelayLen)
	}
	if gap != 0 {
		t.Fatalf("DelayLen[ctor] = %v, want 0", gap)
	}
	if plan.Probs["ctor"] != 1.0 {
		t.Fatalf("probs = %v, want ctor at 1.0", plan.Probs)
	}
}

func TestAnalyzeInjectionSitesSorted(t *testing.T) {
	tr := mkTrace(
		ev(0, 0, 1, "z", 1, trace.KindInit),
		ev(1, 1, 2, "y", 1, trace.KindUse),
		ev(2, 2, 1, "b", 2, trace.KindInit),
		ev(3, 3, 2, "a", 2, trace.KindUse),
	)
	plan := Analyze(tr, Options{})
	sites := plan.InjectionSites()
	if len(sites) != 2 || sites[0] != "b" || sites[1] != "z" {
		t.Fatalf("sites = %v", sites)
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	tr := mkTrace(
		ev(0, 0, 1, "initA", 2, trace.KindInit),
		ev(1, 1, 1, "ctor", 1, trace.KindInit),
		ev(2, 2, 2, "chk", 2, trace.KindUse),
		ev(3, 3, 2, "use2", 1, trace.KindUse),
		ev(4, 4, 1, "disp", 2, trace.KindDispose),
	)
	plan := Analyze(tr, Options{})
	plan.Probs["ctor"] = 0.7 // decayed state must survive persistence

	var buf bytes.Buffer
	if err := plan.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadPlanJSON(&buf)
	if err != nil {
		t.Fatalf("ReadPlanJSON: %v", err)
	}
	if back.Label != plan.Label || back.Window != plan.Window {
		t.Fatalf("metadata changed: %+v", back)
	}
	if len(back.Pairs) != len(plan.Pairs) {
		t.Fatalf("pairs = %d, want %d", len(back.Pairs), len(plan.Pairs))
	}
	for i := range plan.Pairs {
		if back.Pairs[i] != plan.Pairs[i] {
			t.Fatalf("pair %d changed: %+v vs %+v", i, back.Pairs[i], plan.Pairs[i])
		}
	}
	if back.Probs["ctor"] != 0.7 {
		t.Fatalf("probs lost: %v", back.Probs)
	}
	for site := range plan.DelayLen {
		if back.DelayLen[site] != plan.DelayLen[site] {
			t.Fatalf("delay len changed for %s", site)
		}
	}
	for a, list := range plan.Interfere {
		for _, b := range list {
			if !back.InterferesWith(a, b) {
				t.Fatalf("interference edge (%s,%s) lost", a, b)
			}
		}
	}
}

func TestReadPlanJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadPlanJSON(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.Window != DefaultWindow || o.Alpha != DefaultAlpha || o.Decay != DefaultDecay {
		t.Fatalf("defaults = %+v", o)
	}
	if o.FixedDelay != DefaultFixedDelay || o.MaxDetectionRuns != DefaultMaxRuns {
		t.Fatalf("defaults = %+v", o)
	}
	// Explicit values survive.
	o2 := Options{Window: sim.Millisecond, Alpha: 2}.WithDefaults()
	if o2.Window != sim.Millisecond || o2.Alpha != 2 {
		t.Fatalf("explicit values overridden: %+v", o2)
	}
}

func TestDelayForVariableAndFixed(t *testing.T) {
	o := Options{}.WithDefaults()
	if got := o.delayFor(10 * sim.Millisecond); got != sim.Duration(float64(10*sim.Millisecond)*DefaultAlpha) {
		t.Fatalf("variable delay = %v", got)
	}
	if got := o.delayFor(1 * sim.Microsecond); got != DefaultMinDelay {
		t.Fatalf("tiny gap not floored: %v", got)
	}
	of := Options{DisableCustomLengths: true}.WithDefaults()
	if got := of.delayFor(10 * sim.Millisecond); got != DefaultFixedDelay {
		t.Fatalf("fixed delay = %v", got)
	}
}

func TestBugKindString(t *testing.T) {
	if UseBeforeInit.String() != "use-before-init" || UseAfterFree.String() != "use-after-free" {
		t.Fatal("bug kind names wrong")
	}
}
