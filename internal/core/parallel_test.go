package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"waffle/internal/memmodel"
	"waffle/internal/sim"
)

// equalOutcomes compares everything a sequential-equivalence claim covers:
// run numbers, seeds, end times, timeout/error flags, per-run delay stats
// interval-for-interval, and the winning bug's identity.
func equalOutcomes(t *testing.T, seq, par *Outcome) {
	t.Helper()
	if len(seq.Runs) != len(par.Runs) {
		t.Fatalf("run counts differ: sequential %d, parallel %d", len(seq.Runs), len(par.Runs))
	}
	for i := range seq.Runs {
		a, b := seq.Runs[i], par.Runs[i]
		if a.Run != b.Run || a.Seed != b.Seed || a.End != b.End || a.TimedOut != b.TimedOut {
			t.Fatalf("run %d differs: %+v vs %+v", i+1, a, b)
		}
		if (a.Err == nil) != (b.Err == nil) {
			t.Fatalf("run %d err differs: %v vs %v", i+1, a.Err, b.Err)
		}
		if (a.Fault == nil) != (b.Fault == nil) {
			t.Fatalf("run %d fault differs: %v vs %v", i+1, a.Fault, b.Fault)
		}
		if a.Stats.Count != b.Stats.Count || a.Stats.Total != b.Stats.Total || a.Stats.Skipped != b.Stats.Skipped {
			t.Fatalf("run %d stats differ: %+v vs %+v", i+1, a.Stats, b.Stats)
		}
		if !reflect.DeepEqual(a.Stats.Intervals, b.Stats.Intervals) {
			t.Fatalf("run %d intervals differ: %v vs %v", i+1, a.Stats.Intervals, b.Stats.Intervals)
		}
	}
	if seq.TotalTime != par.TotalTime {
		t.Fatalf("total time differs: %v vs %v", seq.TotalTime, par.TotalTime)
	}
	switch {
	case seq.Bug == nil && par.Bug == nil:
	case seq.Bug == nil || par.Bug == nil:
		t.Fatalf("bug presence differs: %v vs %v", seq.Bug, par.Bug)
	case seq.Bug.Run != par.Bug.Run || seq.Bug.Seed != par.Bug.Seed ||
		seq.Bug.NullRef.Site != par.Bug.NullRef.Site || seq.Bug.Kind() != par.Bug.Kind():
		t.Fatalf("bugs differ:\n  sequential: %v\n  parallel:   %v", seq.Bug, par.Bug)
	}
}

func TestExposeParallelMatchesSequential(t *testing.T) {
	progs := []func() *SimProgram{racyInitUse, racyUseDispose, deadlocker}
	for _, mk := range progs {
		for _, workers := range []int{2, 8} {
			prog := mk()
			t.Run(fmt.Sprintf("%s/w%d", prog.Label, workers), func(t *testing.T) {
				seq := (&Session{Prog: mk(), Tool: NewWaffle(Options{}), MaxRuns: 10, BaseSeed: 1}).Expose()
				par := (&Session{Prog: mk(), Tool: NewWaffle(Options{}), MaxRuns: 10, BaseSeed: 1}).ExposeParallel(workers)
				equalOutcomes(t, seq, par)
			})
		}
	}
}

func TestExposeParallelMatchesSequentialWithPlanBootstrap(t *testing.T) {
	// NewWaffleWithPlan skips preparation: every run is a detection run, so
	// the whole search parallelizes. The plan must end in the same decayed
	// state either way.
	// Build the plan once from a prep-only session, then clone it per mode.
	prepTool := NewWaffle(Options{})
	prep := (&Session{Prog: racyInitUse(), Tool: prepTool, MaxRuns: 1, BaseSeed: 1}).Expose()
	base := prepTool.DetectionPlan(&prep.Runs[0])
	seqTool := NewWaffleWithPlan(base.Clone(), Options{})
	parTool := NewWaffleWithPlan(base.Clone(), Options{})
	seq := (&Session{Prog: racyInitUse(), Tool: seqTool, MaxRuns: 8, BaseSeed: 21}).Expose()
	par := (&Session{Prog: racyInitUse(), Tool: parTool, MaxRuns: 8, BaseSeed: 21}).ExposeParallel(4)
	equalOutcomes(t, seq, par)
	if !probsEqual(seqTool.Plan().Probs, parTool.Plan().Probs) {
		t.Fatalf("plan probabilities diverged: %v vs %v", seqTool.Plan().Probs, parTool.Plan().Probs)
	}
}

func TestExposeParallelFallsBackWithoutPlanDrivenTool(t *testing.T) {
	// The online ablation is not plan-driven: ExposeParallel must still
	// work by running sequentially.
	s := &Session{Prog: racyInitUse(), Tool: NewWaffle(Options{DisablePrepRun: true}), MaxRuns: 20, BaseSeed: 1}
	out := s.ExposeParallel(8)
	if out.Bug == nil {
		t.Fatal("fallback search found nothing")
	}
}

// panicOnSeed wraps a program to panic on one specific seed's execution —
// a stand-in for a harness bug inside the simulated world.
type panicOnSeed struct {
	Program
	seed int64
}

func (p *panicOnSeed) Execute(seed int64, hook memmodel.Hook) ExecResult {
	if seed == p.seed {
		panic("injected harness failure")
	}
	return p.Program.Execute(seed, hook)
}

func TestExposeParallelRecoversRunPanics(t *testing.T) {
	// Seed 11 is run 2 (BaseSeed 10): the first detection run, which would
	// otherwise expose the bug. Its panic must land in that run's report,
	// and a later run must still expose the bug.
	prog := &panicOnSeed{Program: racyInitUse(), seed: 11}
	s := &Session{Prog: prog, Tool: NewWaffle(Options{}), MaxRuns: 6, BaseSeed: 10}
	out := s.ExposeParallel(4)
	if out.Bug == nil {
		t.Fatal("search stopped instead of surviving the panicked run")
	}
	var panicked *RunReport
	for i := range out.Runs {
		if out.Runs[i].Seed == 11 {
			panicked = &out.Runs[i]
		}
	}
	if panicked == nil {
		t.Fatal("panicked run missing from the outcome")
	}
	if panicked.Err == nil || !strings.Contains(panicked.Err.Error(), "panicked") {
		t.Fatalf("panicked run err = %v", panicked.Err)
	}
	if len(out.RunErrs()) != 1 {
		t.Fatalf("RunErrs = %v, want exactly the panicked run", out.RunErrs())
	}
}

// stuckProgram never finishes a detection run unless canceled. The clean
// Execute path (used for the baseline and preparation) completes normally.
type stuckProgram struct {
	inner *SimProgram
}

func (p *stuckProgram) Name() string { return p.inner.Label }

func (p *stuckProgram) Execute(seed int64, hook memmodel.Hook) ExecResult {
	return p.inner.Execute(seed, hook)
}

func (p *stuckProgram) ExecuteCtx(ctx context.Context, seed int64, hook memmodel.Hook) ExecResult {
	<-ctx.Done()
	return ExecResult{Err: fmt.Errorf("run budget: %w", sim.ErrCanceled)}
}

func TestExposeParallelHonorsRunBudget(t *testing.T) {
	s := &Session{
		Prog:      &stuckProgram{inner: racyInitUse()},
		Tool:      NewWaffle(Options{}),
		MaxRuns:   3,
		BaseSeed:  1,
		RunBudget: 5 * time.Millisecond,
	}
	done := make(chan *Outcome, 1)
	go func() { done <- s.ExposeParallel(2) }()
	select {
	case out := <-done:
		// Runs 2 and 3 are stuck detection runs freed by the budget.
		if errs := out.RunErrs(); len(errs) != 2 {
			t.Fatalf("RunErrs = %v, want 2 budget cancellations", errs)
		}
		for _, e := range out.RunErrs() {
			if !errors.Is(e, sim.ErrCanceled) {
				t.Fatalf("budget error %v does not wrap ErrCanceled", e)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ExposeParallel hung: run budget not enforced")
	}
}
