package core

import (
	"fmt"
	"math/rand"
	"testing"

	"waffle/internal/memmodel"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// Randomized stress: generate arbitrary guarded multithreaded programs and
// assert the detector's two core guarantees across them:
//
//  1. No false positives — a program whose every cross-thread access is
//     guarded (or genuinely synchronized) never yields a BugReport, no
//     matter what the injector does (§6.4 "False positives: Waffle has
//     none").
//  2. Exposure — planting one unguarded racy pair with an in-window gap
//     makes Waffle expose it in the vast majority of generated programs.

// stressProgram builds a random program: `threads` workers churn a shared
// object population with guarded uses and owner-only lifecycles. When
// plant is true, one extra unguarded use/dispose race is inserted.
func stressProgram(seed int64, plant bool) *SimProgram {
	rng := rand.New(rand.NewSource(seed))
	threads := 2 + rng.Intn(3)
	objs := 2 + rng.Intn(4)
	ops := 2 + rng.Intn(4)
	spacing := sim.Duration(200+rng.Intn(2000)) * sim.Microsecond
	plantAt := sim.Duration(2+rng.Intn(8)) * sim.Millisecond
	plantGap := sim.Duration(1+rng.Intn(20)) * sim.Millisecond

	label := fmt.Sprintf("stress-%d-plant-%v", seed, plant)
	return &SimProgram{
		Label:  label,
		Jitter: 0.03,
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			shared := make([]*memmodel.Ref, objs)
			for i := range shared {
				shared[i] = h.NewRef(fmt.Sprintf("s%d", i))
			}
			var racy *memmodel.Ref
			if plant {
				racy = h.NewRef("racy")
				racy.Init(root, "plant/init")
			}
			var wg sim.WaitGroup
			for ti := 0; ti < threads; ti++ {
				ti := ti
				wg.Add(root, 1)
				root.Spawn(fmt.Sprintf("w%d", ti), func(t *sim.Thread) {
					defer wg.Done(t)
					for oi := 0; oi < objs; oi++ {
						owner := oi%threads == ti
						if owner {
							t.Work(spacing)
							shared[oi].Init(t, site("stress", ti, oi, "init"))
						}
						for op := 0; op < ops; op++ {
							t.Work(spacing)
							shared[oi].UseIfLive(t, site("stress", ti, oi, op))
						}
						if owner {
							t.Work(spacing)
							shared[oi].Dispose(t, site("stress", ti, oi, "disp"))
						}
					}
				})
			}
			if plant {
				user := root.Spawn("planted-user", func(t *sim.Thread) {
					t.Sleep(plantAt)
					racy.Use(t, "plant/use") // unguarded: the real bug
				})
				root.Sleep(plantAt + plantGap)
				racy.Dispose(root, "plant/disp")
				root.Join(user)
			}
			wg.Wait(root)
		},
	}
}

func site(parts ...any) trace.SiteID {
	s := ""
	for _, p := range parts {
		s += fmt.Sprintf("/%v", p)
	}
	return trace.SiteID(s)
}

func TestStressNoFalsePositives(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		prog := stressProgram(seed*37+1, false)
		s := &Session{Prog: prog, Tool: NewWaffle(Options{}), MaxRuns: 4, BaseSeed: seed + 100}
		if out := s.Expose(); out.Bug != nil {
			t.Fatalf("false positive on guarded program (seed %d): %v", seed, out.Bug)
		}
	}
}

func TestStressNoFalsePositivesUnderBasic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		prog := stressProgram(seed*53+7, false)
		s := &Session{Prog: prog, Tool: NewOnlineTool(), MaxRuns: 4, BaseSeed: seed + 5}
		if out := s.Expose(); out.Bug != nil {
			t.Fatalf("false positive under online engine (seed %d): %v", seed, out.Bug)
		}
	}
}

// NewOnlineTool adapts the WaffleBasic-configured engine to Tool for the
// stress harness without importing the wafflebasic package (cycle).
func NewOnlineTool() Tool { return &onlineTool{engine: NewOnline(WaffleBasicConfig(Options{}))} }

type onlineTool struct{ engine *Online }

func (o *onlineTool) Name() string { return "online" }
func (o *onlineTool) HookForRun(run int, prev *RunReport) memmodel.Hook {
	o.engine.BeginRun()
	return o.engine
}
func (o *onlineTool) RunStats() DelayStats { return o.engine.Stats() }
func (o *onlineTool) Candidates(s trace.SiteID) []Pair {
	var out []Pair
	for _, p := range o.engine.Pairs() {
		if p.Delay == s || p.Target == s {
			out = append(out, p)
		}
	}
	return out
}

func TestStressPlantedBugsExposed(t *testing.T) {
	exposed := 0
	const total = 30
	for seed := int64(0); seed < total; seed++ {
		prog := stressProgram(seed*41+3, true)
		s := &Session{Prog: prog, Tool: NewWaffle(Options{}), MaxRuns: 8, BaseSeed: seed + 11}
		out := s.Expose()
		if out.Bug != nil {
			exposed++
			if out.Bug.NullRef.Site != "plant/use" {
				t.Fatalf("seed %d: fault at %s, want the planted site", seed, out.Bug.NullRef.Site)
			}
		}
	}
	// Gaps are random in (1, 20]ms — always inside δ=100ms, so nearly
	// every planted program must be exposed.
	if exposed < total*9/10 {
		t.Fatalf("exposed only %d/%d planted bugs", exposed, total)
	}
}
