package core

import (
	"testing"

	"waffle/internal/memmodel"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// TestOnlineOfflineIdentificationAgree: on the same delay-free execution,
// the online near-miss engine (§3.1) and the offline trace analyzer (§4.1,
// without pruning — WaffleBasic has none) must identify the same candidate
// pairs. The online engine is configured with a vanishing delay length so
// its injections cannot perturb the timing it identifies from.
func TestOnlineOfflineIdentificationAgree(t *testing.T) {
	body := func(root *sim.Thread, h *memmodel.Heap) {
		a := h.NewRef("a")
		b := h.NewRef("b")
		w1 := root.Spawn("w1", func(th *sim.Thread) {
			th.Sleep(1 * sim.Millisecond)
			a.Init(th, "w1/a-init")
			th.Sleep(2 * sim.Millisecond)
			b.UseIfLive(th, "w1/b-use")
		})
		w2 := root.Spawn("w2", func(th *sim.Thread) {
			th.Sleep(2 * sim.Millisecond)
			a.UseIfLive(th, "w2/a-use")
			b.Init(th, "w2/b-init")
			th.Sleep(3 * sim.Millisecond)
			a.UseIfLive(th, "w2/a-use2")
		})
		root.Join(w1)
		root.Join(w2)
		a.Dispose(root, "root/a-disp")
		b.Dispose(root, "root/b-disp")
	}
	prog := &SimProgram{Label: "equiv", Body: body}

	// Offline: record then analyze, no pruning (the online engine in
	// WaffleBasic configuration has none either).
	wf := NewWaffle(Options{DisableParentChild: true})
	r1 := runOnceWith(t, prog, wf, 1, nil)
	wf.HookForRun(2, &r1)
	offline := wf.Plan()

	// Online: identification with delays effectively disabled.
	cfg := WaffleBasicConfig(Options{FixedDelay: 1, InstrCost: -1})
	// Match the offline run's instrumentation timing: the offline prep run
	// used InstrCost+TraceCost, so give the online engine the same cost.
	cfg.InstrCost = DefaultInstrCost + DefaultTraceCost
	online := NewOnline(cfg)
	online.BeginRun()
	prog.Execute(1, online)

	offlineKeys := make(map[pairKey]bool)
	for _, p := range offline.Pairs {
		offlineKeys[p.key()] = true
	}
	onlineKeys := make(map[pairKey]bool)
	for _, p := range online.Pairs() {
		onlineKeys[p.key()] = true
	}
	for k := range offlineKeys {
		if !onlineKeys[k] {
			t.Errorf("offline pair %v missing online", k)
		}
	}
	for k := range onlineKeys {
		if !offlineKeys[k] {
			t.Errorf("online pair %v missing offline", k)
		}
	}
}

// runOnceWith executes one tool-driven run and returns its report.
func runOnceWith(t *testing.T, prog Program, tool Tool, seed int64, prev *RunReport) RunReport {
	t.Helper()
	run := 1
	if prev != nil {
		run = prev.Run + 1
	}
	hook := tool.HookForRun(run, prev)
	res := prog.Execute(seed, hook)
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	return RunReport{Run: run, Seed: seed, End: res.End, Stats: tool.RunStats()}
}

// TestOnlineIdentificationPerturbedByOwnDelays is the converse: with real
// fixed delays the online engine identifies a DIFFERENT (usually smaller
// or shifted) candidate set than the unperturbed analyzer — §4.2's
// "delays interfere with candidate location identification".
func TestOnlineIdentificationPerturbedByOwnDelays(t *testing.T) {
	// Dense shape: several objects whose init/use pairs sit near the
	// window boundary, so 100ms delays push later pairs out of range.
	body := func(root *sim.Thread, h *memmodel.Heap) {
		refs := make([]*memmodel.Ref, 6)
		for i := range refs {
			refs[i] = h.NewRef("r")
		}
		w := root.Spawn("w", func(th *sim.Thread) {
			for i := range refs {
				th.Sleep(30 * sim.Millisecond)
				refs[i].UseIfLive(th, trace.SiteID("use")) // same static site
			}
		})
		for i := range refs {
			root.Sleep(25 * sim.Millisecond)
			refs[i].Init(root, trace.SiteID("init"))
		}
		root.Join(w)
	}
	prog := &SimProgram{Label: "perturb", Body: body}

	wf := NewWaffle(Options{DisableParentChild: true})
	r1 := runOnceWith(t, prog, wf, 1, nil)
	wf.HookForRun(2, &r1)
	unperturbedCount := 0
	for _, p := range wf.Plan().Pairs {
		unperturbedCount += p.Count
	}

	online := NewOnline(WaffleBasicConfig(Options{}))
	online.BeginRun()
	prog.Execute(1, online) // run 1: identify (no delays yet at first instances)
	online.BeginRun()
	prog.Execute(2, online) // run 2: 100ms delays now perturb identification
	perturbedCount := 0
	for _, p := range online.Pairs() {
		perturbedCount += p.Count
	}
	// Run 2's near misses stretch past δ, so cumulative online instance
	// counts grow slower than twice the unperturbed count.
	if perturbedCount >= 2*unperturbedCount {
		t.Fatalf("online identification unaffected by its own delays: %d vs unperturbed %d",
			perturbedCount, unperturbedCount)
	}
}
