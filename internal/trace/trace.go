// Package trace defines the execution-trace model shared by every tool in
// this repository: the events Waffle's instrumenter emits during the
// preparation run, the recorder that captures them, and codecs that persist
// traces between the preparation and detection phases (§4.2, Figure 3).
//
// An event is one instrumented operation on a heap object: who (thread),
// where (static site), what (object id + access kind), and when (virtual
// timestamp plus the thread's fork vector clock). The trace analyzer in
// internal/core consumes exactly this stream.
package trace

import (
	"fmt"

	"waffle/internal/sim"
	"waffle/internal/vclock"
)

// SiteID names a static program location — the analog of an instrumented
// IL offset in the paper's Mono.Cecil instrumenter. Applications label
// their access sites with stable strings such as "netmq/poller.go:11".
type SiteID string

// ObjID identifies one heap object (reference cell) instance.
type ObjID int64

// Kind classifies an instrumented operation per §3.1: an operation turning
// a reference from NULL to non-NULL is an initialization; non-NULL to NULL
// (or an explicit Dispose call) is a disposal; member-field access or
// member-method call is a use. API kinds mark call sites of thread-unsafe
// APIs, the locations TSVD instruments (§2).
type Kind uint8

const (
	// KindInit marks an object initialization (NULL → non-NULL).
	KindInit Kind = iota
	// KindUse marks a field access or member-method call.
	KindUse
	// KindDispose marks a disposal (non-NULL → NULL or Dispose()).
	KindDispose
	// KindAPIRead marks a thread-unsafe API call that only reads.
	KindAPIRead
	// KindAPIWrite marks a thread-unsafe API call that mutates.
	KindAPIWrite
)

// IsMemOrder reports whether the kind participates in MemOrder analysis.
func (k Kind) IsMemOrder() bool { return k <= KindDispose }

// IsAPI reports whether the kind is a thread-unsafe API call (TSVD's domain).
func (k Kind) IsAPI() bool { return k == KindAPIRead || k == KindAPIWrite }

// String returns the kind's wire name.
func (k Kind) String() string {
	switch k {
	case KindInit:
		return "init"
	case KindUse:
		return "use"
	case KindDispose:
		return "dispose"
	case KindAPIRead:
		return "api-read"
	case KindAPIWrite:
		return "api-write"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// KindFromString parses the wire name produced by Kind.String.
func KindFromString(s string) (Kind, error) {
	switch s {
	case "init":
		return KindInit, nil
	case "use":
		return KindUse, nil
	case "dispose":
		return KindDispose, nil
	case "api-read":
		return KindAPIRead, nil
	case "api-write":
		return KindAPIWrite, nil
	}
	return 0, fmt.Errorf("trace: unknown kind %q", s)
}

// Event is one instrumented operation.
type Event struct {
	Seq   int           // position in the trace, dense from 0
	T     sim.Time      // virtual timestamp at the start of the operation
	TID   int           // executing thread
	Site  SiteID        // static location
	Obj   ObjID         // object operated on
	Kind  Kind          // operation class
	Dur   sim.Duration  // execution window (nonzero for API calls)
	Clock *vclock.Clock // thread's fork clock at the event, may be nil
}

// Trace is an ordered event sequence plus run metadata.
type Trace struct {
	Label  string   // free-form: app/test name
	Seed   int64    // world seed of the recorded run
	End    sim.Time // virtual end time of the run
	Events []Event
}

// Recorder accumulates events during a run. It implements the hook half of
// the preparation phase: no delays, just logging. The zero value is ready.
//
// Events are buffered in per-thread chunked Shards rather than one
// append-grown slice, so the recording hot path performs no per-event
// allocation after each thread's first chunk is warm (and never re-copies
// the recorded history the way slice doubling does). Every event is stamped
// with a dense global Seq before it reaches its shard; Finish scatters the
// shards back into Seq order, so the merged trace is byte-identical —
// through every codec — to what a single append-order recorder would have
// produced.
type Recorder struct {
	label string
	seed  int64

	n      int            // events recorded so far; also the next Seq
	shards map[int]*Shard // per-thread chunk buffers, keyed by TID

	// last caches the shard of the most recent event's thread: runs are
	// bursts of same-thread activity, so this skips the map lookup on the
	// common path. Valid only when non-nil.
	last    *Shard
	lastTID int

	finished bool
}

// NewRecorder returns a Recorder with metadata filled in.
func NewRecorder(label string, seed int64) *Recorder {
	return &Recorder{label: label, seed: seed}
}

// Record captures one event from a sim thread, stamping Seq, timestamp, and
// the thread's current fork clock. It panics if the recorder was Finished.
func (r *Recorder) Record(t *sim.Thread, site SiteID, obj ObjID, kind Kind, dur sim.Duration) {
	r.RecordEvent(Event{
		T:     t.Now(),
		TID:   t.ID(),
		Site:  site,
		Obj:   obj,
		Kind:  kind,
		Dur:   dur,
		Clock: vclock.Of(t),
	})
}

// RecordEvent is the raw recording hot path: it stamps e.Seq with the next
// global position and appends e to its thread's shard. Callers that are not
// sim threads (tests, fuzz-seed builders) fill the remaining fields
// themselves. It panics if the recorder was Finished.
func (r *Recorder) RecordEvent(e Event) {
	if r.finished {
		panic("trace: Record after Finish — a finished Recorder must not be reused")
	}
	e.Seq = r.n
	r.n++
	s := r.last
	if s == nil || e.TID != r.lastTID {
		if s = r.shards[e.TID]; s == nil {
			if r.shards == nil {
				r.shards = make(map[int]*Shard)
			}
			s = new(Shard)
			r.shards[e.TID] = s
		}
		r.last, r.lastTID = s, e.TID
	}
	s.Append(e)
}

// Finish merges the per-thread shards into one Seq-ordered event slice,
// stamps the run's end time, and returns the completed trace. The recorder
// must not be reused afterwards: a second Finish, or any Record after
// Finish, panics.
func (r *Recorder) Finish(end sim.Time) *Trace {
	if r.finished {
		panic("trace: Finish called twice — a finished Recorder must not be reused")
	}
	r.finished = true
	var evs []Event
	if r.n > 0 {
		evs = make([]Event, r.n)
		for _, s := range r.shards {
			s.scatter(evs)
		}
	}
	r.shards, r.last = nil, nil
	return &Trace{Label: r.label, Seed: r.seed, End: end, Events: evs}
}

// Len reports the number of recorded events so far.
func (r *Recorder) Len() int { return r.n }

// Stats summarizes a trace for reports and Table 2-style site counting.
type Stats struct {
	Events       int
	Threads      int
	Objects      int
	MemSites     int // unique static sites with MemOrder kinds
	APISites     int // unique static sites with API kinds
	InitEvents    int
	UseEvents     int
	DisposeEvents int
	APIEvents     int
	End          sim.Time
}

// ComputeStats scans the trace once and aggregates Stats.
func (t *Trace) ComputeStats() Stats {
	s := Stats{Events: len(t.Events), End: t.End}
	threads := map[int]bool{}
	objects := map[ObjID]bool{}
	memSites := map[SiteID]bool{}
	apiSites := map[SiteID]bool{}
	for _, e := range t.Events {
		threads[e.TID] = true
		objects[e.Obj] = true
		switch {
		case e.Kind.IsMemOrder():
			memSites[e.Site] = true
		case e.Kind.IsAPI():
			apiSites[e.Site] = true
		}
		switch e.Kind {
		case KindInit:
			s.InitEvents++
		case KindUse:
			s.UseEvents++
		case KindDispose:
			s.DisposeEvents++
		case KindAPIRead, KindAPIWrite:
			s.APIEvents++
		}
	}
	s.Threads = len(threads)
	s.Objects = len(objects)
	s.MemSites = len(memSites)
	s.APISites = len(apiSites)
	return s
}

// TimeSorted reports whether the events appear in nondecreasing timestamp
// order. Recorder output is sorted by construction; externally loaded or
// streamed traces may not be, and the analyzer's windowed scans rely on
// sortedness to stop early.
func (t *Trace) TimeSorted() bool {
	for i := 1; i < len(t.Events); i++ {
		if t.Events[i].T < t.Events[i-1].T {
			return false
		}
	}
	return true
}

// ByObject groups event indexes by object id, preserving trace order.
func (t *Trace) ByObject() map[ObjID][]int {
	out := make(map[ObjID][]int)
	for i, e := range t.Events {
		out[e.Obj] = append(out[e.Obj], i)
	}
	return out
}

// DynamicInstances counts, per static site, how many times it executed.
// §3.3: the median for initialization sites is ~2 per run, which is why
// same-run identification cannot help MemOrder bugs.
func (t *Trace) DynamicInstances() map[SiteID]int {
	out := make(map[SiteID]int)
	for _, e := range t.Events {
		out[e.Site]++
	}
	return out
}
