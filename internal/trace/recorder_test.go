package trace

import (
	"bytes"
	"testing"

	"waffle/internal/sim"
	"waffle/internal/vclock"
)

// chunkCrossingTrace records enough interleaved multi-thread events that
// every shard seals at least one chunk and the merge has to interleave
// chunks from three shards. Used both by the merge tests and as a fuzz
// corpus seed for the codecs.
func chunkCrossingTrace() *Trace {
	rec := NewRecorder("chunked/merge", 9)
	clocks := map[int]*vclock.Clock{1: vclock.New(1), 2: vclock.New(2), 3: vclock.New(3)}
	sites := []SiteID{"a.go:1", "b.go:2", "c.go:3", "d.go:4"}
	n := 3*shardChunkEvents + 37 // ≥1 sealed chunk per shard, ragged tail
	for i := 0; i < n; i++ {
		tid := 1 + i%3
		rec.RecordEvent(Event{
			T:     sim.Time(i),
			TID:   tid,
			Site:  sites[i%len(sites)],
			Obj:   ObjID(i % 5),
			Kind:  Kind(i % 5),
			Dur:   sim.Duration(i % 3),
			Clock: clocks[tid],
		})
	}
	return rec.Finish(sim.Time(n))
}

// The chunked recorder must reproduce the exact event sequence a single
// append-grown recorder would have: same order, dense Seq, same bytes
// through the codecs.
func TestRecorderChunkMergePreservesRecordOrder(t *testing.T) {
	clocks := map[int]*vclock.Clock{1: vclock.New(1), 2: vclock.New(2), 3: vclock.New(3)}
	sites := []SiteID{"a.go:1", "b.go:2", "c.go:3", "d.go:4"}
	n := 3*shardChunkEvents + 37

	rec := NewRecorder("chunked/merge", 9)
	want := &Trace{Label: "chunked/merge", Seed: 9, End: sim.Time(n)}
	for i := 0; i < n; i++ {
		tid := 1 + i%3
		e := Event{
			T:     sim.Time(i),
			TID:   tid,
			Site:  sites[i%len(sites)],
			Obj:   ObjID(i % 5),
			Kind:  Kind(i % 5),
			Dur:   sim.Duration(i % 3),
			Clock: clocks[tid],
		}
		rec.RecordEvent(e)
		e.Seq = len(want.Events) // the old recorder's append-order stamping
		want.Events = append(want.Events, e)
	}
	if got := rec.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	got := rec.Finish(sim.Time(n))
	if !equalTraces(got, want) {
		t.Fatal("merged trace differs from append-order reference")
	}
	for i, e := range got.Events {
		if e.Seq != i {
			t.Fatalf("event %d has Seq %d", i, e.Seq)
		}
	}

	var a, b bytes.Buffer
	if err := got.WriteBinary(&a); err != nil {
		t.Fatal(err)
	}
	if err := want.WriteBinary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("binary encoding differs from append-order reference")
	}
	a.Reset()
	b.Reset()
	if err := got.WriteStream(&a); err != nil {
		t.Fatal(err)
	}
	if err := want.WriteStream(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("stream encoding differs from append-order reference")
	}
}

func TestRecorderFinishEmpty(t *testing.T) {
	got := NewRecorder("empty", 1).Finish(0)
	if got.Events != nil {
		t.Fatalf("empty recorder produced non-nil Events (len %d)", len(got.Events))
	}
	if got.Label != "empty" || got.Seed != 1 {
		t.Fatalf("metadata lost: %+v", got)
	}
}

func TestRecorderRecordAfterFinishPanics(t *testing.T) {
	rec := NewRecorder("reuse", 1)
	rec.RecordEvent(Event{T: 1, TID: 1, Site: "a.go:1"})
	rec.Finish(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Record after Finish did not panic")
		}
	}()
	rec.RecordEvent(Event{T: 3, TID: 1, Site: "a.go:1"})
}

func TestRecorderFinishTwicePanics(t *testing.T) {
	rec := NewRecorder("reuse", 1)
	rec.Finish(1)
	defer func() {
		if recover() == nil {
			t.Fatal("second Finish did not panic")
		}
	}()
	rec.Finish(2)
}

// The recording hot path must not allocate per event: only a fresh chunk
// every shardChunkEvents appends, which amortizes to ~0.001 allocs/event.
func TestRecorderHotPathZeroAllocs(t *testing.T) {
	rec := NewRecorder("alloc", 1)
	clk := vclock.New(1)
	ev := Event{T: 0, TID: 1, Site: "a.go:1", Obj: 1, Kind: KindUse, Clock: clk}
	rec.RecordEvent(ev) // warm-up: shard map, shard, first chunk
	const runs = 2000
	avg := testing.AllocsPerRun(runs, func() {
		ev.T++
		rec.RecordEvent(ev)
	})
	// runs events can seal at most ⌈runs/chunk⌉+1 chunks.
	if limit := float64(runs/shardChunkEvents+1) / runs; avg > limit {
		t.Fatalf("hot path allocates %.4f allocs/event, want ≤ %.4f", avg, limit)
	}
}

func TestShardAppendTo(t *testing.T) {
	var s Shard
	n := shardChunkEvents + 3
	for i := 0; i < n; i++ {
		s.Append(Event{Seq: i, T: sim.Time(i), TID: 1, Obj: ObjID(i)})
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	out := s.AppendTo(nil)
	if len(out) != n {
		t.Fatalf("AppendTo yielded %d events, want %d", len(out), n)
	}
	for i, e := range out {
		if e.Seq != i || e.Obj != ObjID(i) {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
	}
}
