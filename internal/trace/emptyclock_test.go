package trace

import (
	"bufio"
	"bytes"
	"testing"

	"waffle/internal/sim"
	"waffle/internal/vclock"
)

// Regression tests for the empty-snapshot clock desync: the version-1
// codecs wrote "uvarint n, entries, owner" for every non-nil clock but
// skipped the owner on read when n == 0, so an event carrying an
// empty-but-non-nil clock shifted every later field by one varint. The
// version-2 encoding (0 = nil, n+1 = n entries then owner) is
// self-delimiting for every clock shape; these tests pin that down.

// emptyClockTrace builds a trace whose first event carries an
// empty-but-non-nil clock, followed by ordinary events that would decode
// as garbage if the clock field desynced the stream.
func emptyClockTrace() *Trace {
	return &Trace{
		Label: "empty/clock",
		Seed:  11,
		End:   sim.Time(9 * sim.Millisecond),
		Events: []Event{
			{Seq: 0, T: sim.Time(1 * sim.Millisecond), TID: 1, Site: "a.go:1", Obj: 1, Kind: KindInit,
				Clock: vclock.FromSnapshot(7, nil)},
			{Seq: 1, T: sim.Time(2 * sim.Millisecond), TID: 2, Site: "a.go:2", Obj: 1, Kind: KindUse,
				Clock: vclock.FromSnapshot(2, []vclock.Entry{{TID: 1, Counter: 2}, {TID: 2, Counter: 1}})},
			{Seq: 2, T: sim.Time(3 * sim.Millisecond), TID: 1, Site: "a.go:3", Obj: 1, Kind: KindDispose,
				Clock: nil},
		},
	}
}

func TestBinaryRoundTripEmptyClockSnapshot(t *testing.T) {
	want := emptyClockTrace()
	var buf bytes.Buffer
	if err := want.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !equalTraces(want, got) {
		t.Fatal("empty-clock trace did not round-trip event-for-event")
	}
	// The empty snapshot must survive as non-nil with its owner — not be
	// collapsed into "no clock".
	if got.Events[0].Clock == nil {
		t.Fatal("empty-but-non-nil clock decoded as nil")
	}
	if own := got.Events[0].Clock.Owner(); own != 7 {
		t.Fatalf("empty clock owner = %d, want 7", own)
	}
	if n := got.Events[0].Clock.Len(); n != 0 {
		t.Fatalf("empty clock has %d entries", n)
	}
}

// emptyClockStreamBytes assembles a minimal valid stream whose single
// event carries an empty-but-non-nil clock, as a fuzz corpus seed. Writes
// to a bytes.Buffer cannot fail, so errors are ignored.
func emptyClockStreamBytes() []byte {
	var buf bytes.Buffer
	bw := &binWriter{w: bufio.NewWriter(&buf)}
	bw.w.WriteString(streamMagic)
	bw.uvarint(streamVersion)
	bw.str("empty/clock")
	bw.varint(5)
	bw.w.WriteByte(frameSite)
	bw.uvarint(0)
	bw.str("a.go:1")
	bw.w.WriteByte(frameEvent)
	bw.uvarint(0)
	bw.varint(int64(sim.Millisecond))
	bw.varint(1)
	bw.varint(1)
	bw.w.WriteByte(byte(KindInit))
	bw.varint(0)
	bw.clock(vclock.FromSnapshot(7, nil))
	bw.w.WriteByte(frameEnd)
	bw.varint(int64(2 * sim.Millisecond))
	bw.w.Flush()
	return buf.Bytes()
}

// rawStream hand-assembles stream bytes so tests can exercise clock shapes
// the live recorder never produces (vclock.Attach always seeds the owner's
// own tuple).
func rawStream(t *testing.T, version uint64, frames func(bw *binWriter)) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := &binWriter{w: bufio.NewWriter(&buf)}
	if _, err := bw.w.WriteString(streamMagic); err != nil {
		t.Fatal(err)
	}
	mustOK(t, bw.uvarint(version))
	mustOK(t, bw.str("raw/stream"))
	mustOK(t, bw.varint(5))
	frames(bw)
	mustOK(t, bw.w.WriteByte(frameEnd))
	mustOK(t, bw.varint(int64(9*sim.Millisecond)))
	mustOK(t, bw.w.Flush())
	return buf.Bytes()
}

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// eventFrame writes one event frame the way StreamRecorder does, with an
// explicit clock.
func eventFrame(t *testing.T, bw *binWriter, siteIdx uint64, at sim.Time, tid int, kind Kind, clk *vclock.Clock) {
	t.Helper()
	mustOK(t, bw.w.WriteByte(frameEvent))
	mustOK(t, bw.uvarint(siteIdx))
	mustOK(t, bw.varint(int64(at)))
	mustOK(t, bw.varint(int64(tid)))
	mustOK(t, bw.varint(1)) // obj
	mustOK(t, bw.w.WriteByte(byte(kind)))
	mustOK(t, bw.varint(0)) // dur
	mustOK(t, bw.clock(clk))
}

func TestStreamRoundTripEmptyClockSnapshot(t *testing.T) {
	raw := rawStream(t, streamVersion, func(bw *binWriter) {
		mustOK(t, bw.w.WriteByte(frameSite))
		mustOK(t, bw.uvarint(0))
		mustOK(t, bw.str("a.go:1"))
		eventFrame(t, bw, 0, sim.Time(1*sim.Millisecond), 1, KindInit, vclock.FromSnapshot(7, nil))
		// A second event after the empty-clock one: it only decodes
		// correctly if the empty clock field was self-delimiting.
		eventFrame(t, bw, 0, sim.Time(2*sim.Millisecond), 2, KindUse,
			vclock.FromSnapshot(2, []vclock.Entry{{TID: 1, Counter: 2}, {TID: 2, Counter: 1}}))
	})
	tr, err := ReadStream(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadStream: %v", err)
	}
	if len(tr.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(tr.Events))
	}
	first := tr.Events[0]
	if first.Clock == nil || first.Clock.Owner() != 7 || first.Clock.Len() != 0 {
		t.Fatalf("empty clock decoded as %v (owner %v)", first.Clock, first.Clock.Owner())
	}
	second := tr.Events[1]
	if second.TID != 2 || second.Kind != KindUse || second.T != sim.Time(2*sim.Millisecond) {
		t.Fatalf("event after empty clock desynced: %+v", second)
	}
	if second.Clock == nil || second.Clock.Get(1) != 2 || second.Clock.Get(2) != 1 {
		t.Fatalf("second clock corrupted: %v", second.Clock)
	}
	if tr.End != sim.Time(9*sim.Millisecond) {
		t.Fatalf("trailer end = %v", tr.End)
	}
}

// legacyClock writes a clock with the version-1 encoding: raw entry count,
// entries, then owner for any non-nil clock (nil clocks wrote 0 and no
// owner — which is why empty snapshots desynced).
func legacyClock(t *testing.T, bw *binWriter, clk *vclock.Clock) {
	t.Helper()
	if clk == nil {
		mustOK(t, bw.uvarint(0))
		return
	}
	snap := clk.Snapshot()
	mustOK(t, bw.uvarint(uint64(len(snap))))
	for _, e := range snap {
		mustOK(t, bw.varint(int64(e.TID)))
		mustOK(t, bw.varint(e.Counter))
	}
	mustOK(t, bw.varint(int64(clk.Owner())))
}

func TestStreamReadsLegacyVersion1(t *testing.T) {
	clk := vclock.FromSnapshot(1, []vclock.Entry{{TID: 1, Counter: 3}})
	raw := rawStream(t, streamVersionLegacy, func(bw *binWriter) {
		mustOK(t, bw.w.WriteByte(frameSite))
		mustOK(t, bw.uvarint(0))
		mustOK(t, bw.str("a.go:1"))
		// Legacy event frame: same fields, version-1 clock encoding.
		mustOK(t, bw.w.WriteByte(frameEvent))
		mustOK(t, bw.uvarint(0))
		mustOK(t, bw.varint(int64(1*sim.Millisecond)))
		mustOK(t, bw.varint(1))
		mustOK(t, bw.varint(1))
		mustOK(t, bw.w.WriteByte(byte(KindInit)))
		mustOK(t, bw.varint(0))
		legacyClock(t, bw, clk)
		// Nil clock in legacy form.
		mustOK(t, bw.w.WriteByte(frameEvent))
		mustOK(t, bw.uvarint(0))
		mustOK(t, bw.varint(int64(2*sim.Millisecond)))
		mustOK(t, bw.varint(1))
		mustOK(t, bw.varint(1))
		mustOK(t, bw.w.WriteByte(byte(KindUse)))
		mustOK(t, bw.varint(0))
		legacyClock(t, bw, nil)
	})
	tr, err := ReadStream(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("legacy stream rejected: %v", err)
	}
	if len(tr.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(tr.Events))
	}
	if c := tr.Events[0].Clock; c == nil || c.Owner() != 1 || c.Get(1) != 3 {
		t.Fatalf("legacy clock decoded as %v", tr.Events[0].Clock)
	}
	if tr.Events[1].Clock != nil {
		t.Fatalf("legacy nil clock decoded as %v", tr.Events[1].Clock)
	}
}

func TestBinaryReadsLegacyVersion1(t *testing.T) {
	// Hand-assemble a version-1 binary trace: header, one site, one event
	// with a populated clock and one with a nil clock.
	var buf bytes.Buffer
	bw := &binWriter{w: bufio.NewWriter(&buf)}
	mustWrite := func(err error) { mustOK(t, err) }
	if _, err := bw.w.WriteString(binaryMagic); err != nil {
		t.Fatal(err)
	}
	mustWrite(bw.uvarint(binaryVersionLegacy))
	mustWrite(bw.str("legacy/bin"))
	mustWrite(bw.varint(3))                      // seed
	mustWrite(bw.varint(int64(sim.Millisecond))) // end
	mustWrite(bw.uvarint(1))                     // one site
	mustWrite(bw.str("a.go:1"))
	mustWrite(bw.uvarint(2)) // two events
	writeEvt := func(kind Kind, clk *vclock.Clock) {
		mustWrite(bw.uvarint(0)) // site index
		mustWrite(bw.varint(int64(1 * sim.Millisecond)))
		mustWrite(bw.varint(1)) // tid
		mustWrite(bw.varint(1)) // obj
		mustWrite(bw.w.WriteByte(byte(kind)))
		mustWrite(bw.varint(0)) // dur
		legacyClock(t, bw, clk)
	}
	writeEvt(KindInit, vclock.FromSnapshot(1, []vclock.Entry{{TID: 1, Counter: 1}}))
	writeEvt(KindUse, nil)
	mustWrite(bw.w.Flush())

	tr, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("legacy binary rejected: %v", err)
	}
	if len(tr.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(tr.Events))
	}
	if c := tr.Events[0].Clock; c == nil || c.Get(1) != 1 {
		t.Fatalf("legacy clock decoded as %v", c)
	}
	if tr.Events[1].Clock != nil {
		t.Fatalf("legacy nil clock decoded as %v", tr.Events[1].Clock)
	}
}
