package trace

import (
	"bytes"
	"testing"
)

// Fuzz targets for the trace codecs: arbitrary byte streams must never
// panic the readers, and every valid stream the writers produce must
// round-trip. Run with `go test -fuzz=FuzzReadBinary ./internal/trace` for
// coverage-guided exploration; in normal test mode the seed corpus runs.

func binarySeed(t *testing.T) []byte {
	t.Helper()
	tr, err := makeSample(7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzReadBinary(f *testing.F) {
	if tr, err := makeSample(7); err == nil {
		var buf bytes.Buffer
		_ = tr.WriteBinary(&buf)
		f.Add(buf.Bytes())
	}
	// Empty-but-non-nil clock snapshots once desynced the decoder (the
	// version-1 owner-skip bug); keep the shape in the corpus.
	{
		var buf bytes.Buffer
		_ = emptyClockTrace().WriteBinary(&buf)
		f.Add(buf.Bytes())
	}
	// A multi-shard trace crossing chunk boundaries keeps the chunked
	// recorder's merge path in the corpus.
	{
		var buf bytes.Buffer
		_ = chunkCrossingTrace().WriteBinary(&buf)
		f.Add(buf.Bytes())
	}
	f.Add([]byte("WFTR"))
	f.Add([]byte{})
	f.Add([]byte("garbage that is definitely not a trace"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Anything accepted must re-encode and re-decode stably.
		var out bytes.Buffer
		if err := got.WriteBinary(&out); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		back, err := ReadBinary(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(back.Events) != len(got.Events) {
			t.Fatalf("event count drifted: %d vs %d", len(back.Events), len(got.Events))
		}
	})
}

func FuzzReadStream(f *testing.F) {
	f.Add([]byte("WFTS"))
	f.Add([]byte{})
	f.Add([]byte("WFTS\x01\x00\x00Z\x00"))
	f.Add(emptyClockStreamBytes())
	{
		var buf bytes.Buffer
		_ = chunkCrossingTrace().WriteStream(&buf)
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadStream(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted streams must be internally consistent.
		for i, e := range tr.Events {
			if e.Seq != i {
				t.Fatalf("event %d has Seq %d", i, e.Seq)
			}
		}
	})
}

func FuzzReadJSON(f *testing.F) {
	if tr, err := makeSample(3); err == nil {
		var buf bytes.Buffer
		_ = tr.WriteJSON(&buf)
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{"label":"x","events":[{"kind":"bogus"}]}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.WriteJSON(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}

// TestBinaryFuzzSeedRoundTrips keeps a deterministic guard on the seed
// input independent of fuzz mode.
func TestBinaryFuzzSeedRoundTrips(t *testing.T) {
	data := binarySeed(t)
	got, err := ReadBinary(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("seed rejected: %v", err)
	}
	if len(got.Events) == 0 {
		t.Fatal("seed trace empty")
	}
}
