package trace

// shardChunkEvents is the fixed chunk size of a Shard. At 1024 events a
// chunk is ~72 KiB on 64-bit platforms: large enough that the amortized
// allocation cost of recording drops to ~1/1024 allocs per event, small
// enough that a short run does not over-commit memory.
const shardChunkEvents = 1024

// Shard is a single-writer chunked event buffer: the per-thread building
// block of the Recorder and of the live runtime's per-goroutine trace
// shards. Events are appended into fixed-size chunks; once a chunk fills it
// is sealed and a fresh one is allocated, so the steady-state cost of
// Append is one slot store — no per-event allocation and no grow-by-copy of
// previously recorded events (the failure mode of a single append-grown
// slice, which re-copies the whole history every doubling).
//
// Clock pointers are stored as-is: vclock.Clock is immutable, so sharing
// the pointer across every event a thread records between two forks is
// safe and keeps chunks compact.
//
// A Shard must only be appended to by one writer at a time; merging
// (AppendTo) may happen on another thread once the writer has stopped. The
// zero value is an empty shard ready for use.
type Shard struct {
	full [][]Event // sealed chunks, each exactly shardChunkEvents long
	cur  []Event   // open chunk being filled; cap is shardChunkEvents
}

// Append records one event. Amortized zero-allocation: only every
// shardChunkEvents-th call allocates (a fresh chunk).
func (s *Shard) Append(e Event) {
	if len(s.cur) == cap(s.cur) {
		if s.cur != nil {
			s.full = append(s.full, s.cur)
		}
		s.cur = make([]Event, 0, shardChunkEvents)
	}
	s.cur = append(s.cur, e)
}

// Len reports the number of events appended so far.
func (s *Shard) Len() int {
	return len(s.full)*shardChunkEvents + len(s.cur)
}

// AppendTo flushes the shard's events, in append order, onto dst and
// returns the extended slice. The shard itself is not modified.
func (s *Shard) AppendTo(dst []Event) []Event {
	for _, c := range s.full {
		dst = append(dst, c...)
	}
	return append(dst, s.cur...)
}

// scatter places every buffered event at dst[e.Seq]. The Recorder stamps
// Seq in global record order before the event reaches its shard, so
// scattering all shards into one pre-sized slice reconstructs the exact
// interleaved order a single append-grown recorder would have produced —
// which is what keeps merged traces byte-identical through the codecs.
func (s *Shard) scatter(dst []Event) {
	for _, c := range s.full {
		for i := range c {
			dst[c[i].Seq] = c[i]
		}
	}
	for i := range s.cur {
		dst[s.cur[i].Seq] = s.cur[i]
	}
}
