package trace

import "sync/atomic"

// shardChunkEvents is the fixed chunk size of a Shard. At 1024 events a
// chunk is ~72 KiB on 64-bit platforms: large enough that the amortized
// allocation cost of recording drops to ~1/1024 allocs per event, small
// enough that a short run does not over-commit memory.
const shardChunkEvents = 1024

// Shard is a single-writer chunked event buffer: the per-thread building
// block of the Recorder and of the live runtime's per-goroutine trace
// shards. Events are appended into fixed-size chunks; once a chunk fills it
// is sealed and a fresh one is allocated, so the steady-state cost of
// Append is one slot store — no per-event allocation and no grow-by-copy of
// previously recorded events (the failure mode of a single append-grown
// slice, which re-copies the whole history every doubling).
//
// Clock pointers are stored as-is: vclock.Clock is immutable, so sharing
// the pointer across every event a thread records between two forks is
// safe and keeps chunks compact.
//
// A Shard must only be appended to by one writer at a time; merging
// (AppendTo) may happen on another thread once the writer has stopped. The
// zero value is an empty shard ready for use.
//
// Two optional extensions serve streaming consumers (the live runtime's
// continuous merge pipeline):
//
//   - OnChunk, when set before the first Append, receives each filled
//     chunk instead of the shard retaining it — the handoff point into a
//     ring buffer feeding a merger goroutine. Flush emits the final,
//     partially filled chunk once the writer has stopped.
//   - Seal marks the shard closed from ANY goroutine: the writer's
//     subsequent Appends are dropped (counted via OnDrop) instead of
//     recorded. This is the abandonment fence for timed-out live runs,
//     whose leaked goroutines cannot be killed but must not keep feeding
//     events into a shard the detector has walked away from.
type Shard struct {
	full [][]Event // sealed chunks, each exactly shardChunkEvents long
	cur  []Event   // open chunk being filled; cap is shardChunkEvents

	// OnChunk, when non-nil, receives every filled chunk in append order
	// (called from the writer goroutine); the shard retains nothing. Set
	// it before the first Append and never change it afterwards.
	OnChunk func(chunk []Event)

	// OnDrop, when non-nil, is called once per event dropped after Seal
	// (from the — possibly leaked — writer goroutine). Set it before the
	// shard is shared and never change it afterwards.
	OnDrop func()

	// sealed is the cross-goroutine abandonment flag; dropped counts the
	// appends that arrived after it was raised.
	sealed  atomic.Bool
	dropped atomic.Int64
}

// Append records one event. Amortized zero-allocation: only every
// shardChunkEvents-th call allocates (a fresh chunk). It reports whether
// the event was recorded — false once the shard has been Sealed, in which
// case the event is dropped and counted instead.
func (s *Shard) Append(e Event) bool {
	if s.sealed.Load() {
		s.dropped.Add(1)
		if s.OnDrop != nil {
			s.OnDrop()
		}
		return false
	}
	if len(s.cur) == cap(s.cur) {
		if s.cur != nil {
			if s.OnChunk != nil {
				s.OnChunk(s.cur)
			} else {
				s.full = append(s.full, s.cur)
			}
		}
		s.cur = make([]Event, 0, shardChunkEvents)
	}
	s.cur = append(s.cur, e)
	return true
}

// Seal closes the shard: every later Append is dropped (and counted)
// rather than recorded. Unlike every other method, Seal is safe to call
// from a goroutine other than the writer — it is the abandonment fence a
// timed-out run's detector raises while the run's leaked goroutines may
// still be executing. An in-flight Append racing the Seal may still land;
// sealing guarantees only that the drop window opens within one event.
func (s *Shard) Seal() { s.sealed.Store(true) }

// Sealed reports whether the shard has been sealed.
func (s *Shard) Sealed() bool { return s.sealed.Load() }

// Dropped reports how many appends were dropped after Seal.
func (s *Shard) Dropped() int64 { return s.dropped.Load() }

// Flush emits the open, partially filled chunk through OnChunk and resets
// it. Writer-side only (or strictly after the writer has stopped): it
// touches the same state as Append. A no-op without OnChunk or when the
// open chunk is empty.
func (s *Shard) Flush() {
	if s.OnChunk == nil || len(s.cur) == 0 {
		return
	}
	s.OnChunk(s.cur)
	s.cur = nil
}

// Len reports the number of events currently retained by the shard (with
// OnChunk set, filled chunks are handed off and no longer counted here).
func (s *Shard) Len() int {
	return len(s.full)*shardChunkEvents + len(s.cur)
}

// AppendTo flushes the shard's retained events, in append order, onto dst
// and returns the extended slice. The shard itself is not modified.
func (s *Shard) AppendTo(dst []Event) []Event {
	for _, c := range s.full {
		dst = append(dst, c...)
	}
	return append(dst, s.cur...)
}

// scatter places every buffered event at dst[e.Seq]. The Recorder stamps
// Seq in global record order before the event reaches its shard, so
// scattering all shards into one pre-sized slice reconstructs the exact
// interleaved order a single append-grown recorder would have produced —
// which is what keeps merged traces byte-identical through the codecs.
func (s *Shard) scatter(dst []Event) {
	for _, c := range s.full {
		for i := range c {
			dst[c[i].Seq] = c[i]
		}
	}
	for i := range s.cur {
		dst[s.cur[i].Seq] = s.cur[i]
	}
}
