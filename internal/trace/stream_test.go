package trace

import (
	"bytes"
	"strings"
	"testing"

	"waffle/internal/sim"
	"waffle/internal/vclock"
)

// streamSample runs a small world recording through a StreamRecorder.
func streamSample(t *testing.T, seed int64) (*Trace, []byte) {
	t.Helper()
	var buf bytes.Buffer
	rec, err := NewStreamRecorder(&buf, "stream/test", seed)
	if err != nil {
		t.Fatalf("NewStreamRecorder: %v", err)
	}
	memRec := NewRecorder("stream/test", seed)
	w := sim.NewWorld(sim.Config{Seed: seed})
	runErr := w.Run(func(root *sim.Thread) {
		vclock.Attach(root)
		record := func(th *sim.Thread, site SiteID, obj ObjID, kind Kind) {
			rec.Record(th, site, obj, kind, 0)
			memRec.Record(th, site, obj, kind, 0)
		}
		record(root, "a.go:1", 1, KindInit)
		c := root.Spawn("worker", func(c *sim.Thread) {
			c.Sleep(2 * sim.Millisecond)
			record(c, "a.go:2", 1, KindUse)
			record(c, "a.go:2", 2, KindUse) // repeated site: one table entry
		})
		root.Sleep(4 * sim.Millisecond)
		record(root, "a.go:3", 1, KindDispose)
		root.Join(c)
	})
	if runErr != nil {
		t.Fatalf("Run: %v", runErr)
	}
	if err := rec.Close(w.Now()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return memRec.Finish(w.Now()), buf.Bytes()
}

func TestStreamRoundTripMatchesInMemoryRecorder(t *testing.T) {
	want, raw := streamSample(t, 3)
	got, err := ReadStream(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadStream: %v", err)
	}
	if !equalTraces(want, got) {
		t.Fatalf("stream trace differs from in-memory trace")
	}
	if got.Label != "stream/test" || got.Seed != 3 {
		t.Fatalf("metadata = %q/%d", got.Label, got.Seed)
	}
}

func TestStreamRecorderLen(t *testing.T) {
	_, raw := streamSample(t, 1)
	tr, err := ReadStream(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 4 {
		t.Fatalf("events = %d, want 4", len(tr.Events))
	}
}

func TestStreamRejectsTruncation(t *testing.T) {
	_, raw := streamSample(t, 1)
	// Drop the trailer and some bytes: must be reported as truncated.
	if _, err := ReadStream(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Fatal("truncated stream accepted")
	}
	if _, err := ReadStream(strings.NewReader("WFTSgarbage")); err == nil {
		t.Fatal("garbage stream accepted")
	}
	if _, err := ReadStream(strings.NewReader("NOPE")); err == nil {
		t.Fatal("wrong magic accepted")
	}
}

func TestStreamAnalyzableByCore(t *testing.T) {
	// The streamed trace must be functionally identical for consumers:
	// grouping, stats, instances.
	want, raw := streamSample(t, 9)
	got, err := ReadStream(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	ws, gs := want.ComputeStats(), got.ComputeStats()
	if ws != gs {
		t.Fatalf("stats differ: %+v vs %+v", ws, gs)
	}
	if len(want.ByObject()) != len(got.ByObject()) {
		t.Fatal("object grouping differs")
	}
}
