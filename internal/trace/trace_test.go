package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"waffle/internal/sim"
	"waffle/internal/vclock"
)

// sample builds a small but representative trace by running a real world.
func sample(t *testing.T, seed int64) *Trace {
	t.Helper()
	tr, err := makeSample(seed)
	if err != nil {
		t.Fatalf("makeSample: %v", err)
	}
	return tr
}

// makeSample is the test-independent form, shared with the fuzz seeds.
func makeSample(seed int64) (*Trace, error) {
	rec := NewRecorder("app/test", seed)
	w := sim.NewWorld(sim.Config{Seed: seed})
	err := w.Run(func(root *sim.Thread) {
		vclock.Attach(root)
		rec.Record(root, "a.go:1", 1, KindInit, 0)
		c := root.Spawn("worker", func(c *sim.Thread) {
			c.Sleep(2 * sim.Millisecond)
			rec.Record(c, "a.go:2", 1, KindUse, 0)
			rec.Record(c, "b.go:9", 2, KindAPIWrite, 300*sim.Microsecond)
		})
		root.Sleep(5 * sim.Millisecond)
		rec.Record(root, "a.go:3", 1, KindDispose, 0)
		rec.Record(root, "b.go:9", 2, KindAPIRead, 200*sim.Microsecond)
		root.Join(c)
	})
	if err != nil {
		return nil, err
	}
	return rec.Finish(w.Now()), nil
}

func TestRecorderCapturesOrderAndClocks(t *testing.T) {
	tr := sample(t, 1)
	if len(tr.Events) != 5 {
		t.Fatalf("events = %d, want 5", len(tr.Events))
	}
	for i, e := range tr.Events {
		if e.Seq != i {
			t.Errorf("event %d has Seq %d", i, e.Seq)
		}
		if e.Clock == nil {
			t.Errorf("event %d missing clock", i)
		}
		if i > 0 && e.T < tr.Events[i-1].T {
			t.Errorf("timestamps regress at %d", i)
		}
	}
	if tr.End < tr.Events[len(tr.Events)-1].T {
		t.Error("End precedes last event")
	}
	// The init (pre-fork, root) must be fork-ordered before the child use.
	var initEv, useEv *Event
	for i := range tr.Events {
		switch tr.Events[i].Kind {
		case KindInit:
			initEv = &tr.Events[i]
		case KindUse:
			useEv = &tr.Events[i]
		}
	}
	if !vclock.Ordered(initEv.Clock, useEv.Clock) {
		t.Error("pre-fork init not ordered with child use")
	}
}

func TestComputeStats(t *testing.T) {
	tr := sample(t, 1)
	s := tr.ComputeStats()
	if s.Events != 5 || s.Threads != 2 || s.Objects != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MemSites != 3 || s.APISites != 1 {
		t.Fatalf("site counts = %d mem, %d api", s.MemSites, s.APISites)
	}
	if s.InitEvents != 1 || s.UseEvents != 1 || s.DisposeEvents != 1 || s.APIEvents != 2 {
		t.Fatalf("kind counts = %+v", s)
	}
}

func TestByObjectGrouping(t *testing.T) {
	tr := sample(t, 1)
	groups := tr.ByObject()
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if got := len(groups[1]); got != 3 {
		t.Fatalf("object 1 has %d events, want 3", got)
	}
	for _, idxs := range groups {
		for i := 1; i < len(idxs); i++ {
			if idxs[i] <= idxs[i-1] {
				t.Fatal("group indexes out of order")
			}
		}
	}
}

func TestDynamicInstances(t *testing.T) {
	tr := sample(t, 1)
	di := tr.DynamicInstances()
	if di["b.go:9"] != 2 {
		t.Fatalf("b.go:9 instances = %d, want 2", di["b.go:9"])
	}
	if di["a.go:1"] != 1 {
		t.Fatalf("a.go:1 instances = %d, want 1", di["a.go:1"])
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := KindInit; k <= KindAPIWrite; k++ {
		back, err := KindFromString(k.String())
		if err != nil {
			t.Fatalf("KindFromString(%q): %v", k.String(), err)
		}
		if back != k {
			t.Fatalf("round trip %v -> %v", k, back)
		}
	}
	if _, err := KindFromString("bogus"); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

func TestKindClassification(t *testing.T) {
	for _, k := range []Kind{KindInit, KindUse, KindDispose} {
		if !k.IsMemOrder() || k.IsAPI() {
			t.Errorf("%v misclassified", k)
		}
	}
	for _, k := range []Kind{KindAPIRead, KindAPIWrite} {
		if k.IsMemOrder() || !k.IsAPI() {
			t.Errorf("%v misclassified", k)
		}
	}
}

func equalTraces(a, b *Trace) bool {
	if a.Label != b.Label || a.Seed != b.Seed || a.End != b.End || len(a.Events) != len(b.Events) {
		return false
	}
	for i := range a.Events {
		x, y := a.Events[i], b.Events[i]
		if x.Seq != y.Seq || x.T != y.T || x.TID != y.TID || x.Site != y.Site ||
			x.Obj != y.Obj || x.Kind != y.Kind || x.Dur != y.Dur {
			return false
		}
		switch {
		case x.Clock == nil && y.Clock == nil:
		case x.Clock == nil || y.Clock == nil:
			return false
		case x.Clock.Owner() != y.Clock.Owner() || !x.Clock.Leq(y.Clock) || !y.Clock.Leq(x.Clock):
			return false
		}
	}
	return true
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sample(t, 3)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if !equalTraces(tr, back) {
		t.Fatal("JSON round trip changed the trace")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sample(t, 3)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !equalTraces(tr, back) {
		t.Fatal("binary round trip changed the trace")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a trace at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated valid prefix.
	tr := sample(t, 1)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestBinarySmallerThanJSON(t *testing.T) {
	tr := sample(t, 5)
	var jb, bb bytes.Buffer
	if err := tr.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteBinary(&bb); err != nil {
		t.Fatal(err)
	}
	if bb.Len() >= jb.Len() {
		t.Fatalf("binary (%d) not smaller than JSON (%d)", bb.Len(), jb.Len())
	}
}

// Property: arbitrary synthetic traces survive both codecs byte-exactly.
func TestCodecRoundTripProperty(t *testing.T) {
	gen := func(raw []uint32, label string) *Trace {
		tr := &Trace{Label: label, Seed: 42, End: sim.Time(len(raw)) * 100}
		for i, r := range raw {
			ev := Event{
				Seq:  i,
				T:    sim.Time(r % 1_000_000),
				TID:  int(r%7) + 1,
				Site: SiteID([]string{"x.go:1", "y.go:2", "z.go:3"}[r%3]),
				Obj:  ObjID(r % 13),
				Kind: Kind(r % 5),
				Dur:  sim.Duration(r % 500),
			}
			if r%2 == 0 {
				ev.Clock = vclock.FromSnapshot(ev.TID, []vclock.Entry{{TID: ev.TID, Counter: int64(r%9) + 1}})
			}
			tr.Events = append(tr.Events, ev)
		}
		return tr
	}
	err := quick.Check(func(raw []uint32, label string) bool {
		tr := gen(raw, label)
		var jb, bb bytes.Buffer
		if err := tr.WriteJSON(&jb); err != nil {
			return false
		}
		fromJSON, err := ReadJSON(&jb)
		if err != nil {
			return false
		}
		if err := tr.WriteBinary(&bb); err != nil {
			return false
		}
		fromBin, err := ReadBinary(&bb)
		if err != nil {
			return false
		}
		return equalTraces(tr, fromJSON) && equalTraces(tr, fromBin)
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}
