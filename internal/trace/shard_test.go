package trace

import (
	"sync"
	"testing"
)

// TestShardSealDropsAppends checks the abandonment fence: after Seal,
// appends are dropped, counted, and reported through OnDrop; events
// recorded before the seal stay intact.
func TestShardSealDropsAppends(t *testing.T) {
	var s Shard
	var dropped int
	s.OnDrop = func() { dropped++ }

	for i := 0; i < 10; i++ {
		if !s.Append(Event{Seq: i}) {
			t.Fatalf("Append %d rejected before seal", i)
		}
	}
	if s.Sealed() {
		t.Fatal("shard sealed before Seal()")
	}
	s.Seal()
	if !s.Sealed() {
		t.Fatal("Sealed() = false after Seal()")
	}
	for i := 0; i < 7; i++ {
		if s.Append(Event{Seq: 100 + i}) {
			t.Fatalf("Append %d accepted after seal", i)
		}
	}
	if got := s.Dropped(); got != 7 {
		t.Fatalf("Dropped() = %d, want 7", got)
	}
	if dropped != 7 {
		t.Fatalf("OnDrop fired %d times, want 7", dropped)
	}
	if got := s.Len(); got != 10 {
		t.Fatalf("Len() = %d after sealed appends, want 10", got)
	}
	evs := s.AppendTo(nil)
	for i, e := range evs {
		if e.Seq != i {
			t.Fatalf("event %d has Seq %d — post-seal event leaked in", i, e.Seq)
		}
	}
}

// TestShardSealRace runs a writer appending flat-out while another
// goroutine seals the shard mid-stream. Under -race this is the regression
// test for the leaked-goroutine abandonment fence: the sealer and the
// writer only share atomics, so the race detector must stay quiet, and
// every recorded event must predate (or at most overlap by the one
// documented in-flight append) the seal.
func TestShardSealRace(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		var s Shard
		start := make(chan struct{})
		done := make(chan struct{})
		var accepted int
		go func() {
			defer close(done)
			<-start
			for i := 0; ; i++ {
				if !s.Append(Event{Seq: i}) {
					return // sealed: leaked writer gives up
				}
				accepted++
			}
		}()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			s.Seal()
		}()
		close(start)
		wg.Wait()
		<-done
		if got := s.Len(); got != accepted {
			t.Fatalf("iter %d: Len() = %d, writer recorded %d", iter, got, accepted)
		}
		if s.Dropped() != 1 {
			t.Fatalf("iter %d: Dropped() = %d, want exactly 1 (the append that observed the seal)", iter, s.Dropped())
		}
	}
}

// TestShardOnChunkStreaming checks the streaming handoff: filled chunks
// are emitted through OnChunk in append order instead of being retained,
// Flush emits the final partial chunk, and the concatenation of the
// emitted chunks equals what a batch AppendTo would have produced.
func TestShardOnChunkStreaming(t *testing.T) {
	const n = shardChunkEvents*3 + 17

	var batch Shard
	for i := 0; i < n; i++ {
		batch.Append(Event{Seq: i, TID: 7})
	}
	want := batch.AppendTo(nil)

	var s Shard
	var got []Event
	var chunks int
	s.OnChunk = func(c []Event) {
		chunks++
		got = append(got, c...)
	}
	for i := 0; i < n; i++ {
		s.Append(Event{Seq: i, TID: 7})
	}
	if chunks != 3 {
		t.Fatalf("OnChunk fired %d times before Flush, want 3", chunks)
	}
	if got := s.Len(); got != 17 {
		t.Fatalf("Len() = %d with OnChunk set, want 17 (only the open chunk)", got)
	}
	s.Flush()
	if chunks != 4 {
		t.Fatalf("OnChunk fired %d times after Flush, want 4", chunks)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: streamed %+v, want %+v", i, got[i], want[i])
		}
	}
	// Flush on an empty open chunk is a no-op.
	s.Flush()
	if chunks != 4 {
		t.Fatalf("Flush on empty open chunk emitted a chunk")
	}
}
