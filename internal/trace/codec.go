package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"waffle/internal/sim"
	"waffle/internal/vclock"
)

// The on-disk trace formats. JSON is the human-auditable interchange form;
// the binary form is the compact one the preparation run writes by default
// (traces can reach millions of events on NpgSQL-like workloads).

// jsonTrace mirrors Trace with encodable clock snapshots.
type jsonTrace struct {
	Label  string      `json:"label"`
	Seed   int64       `json:"seed"`
	End    int64       `json:"end_us"`
	Events []jsonEvent `json:"events"`
}

type jsonEvent struct {
	Seq   int            `json:"seq"`
	T     int64          `json:"t_us"`
	TID   int            `json:"tid"`
	Site  string         `json:"site"`
	Obj   int64          `json:"obj"`
	Kind  string         `json:"kind"`
	Dur   int64          `json:"dur_us,omitempty"`
	Own   int            `json:"own,omitempty"`
	Clock []vclock.Entry `json:"clock,omitempty"`
}

// WriteJSON encodes the trace as a single JSON document.
func (t *Trace) WriteJSON(w io.Writer) error {
	jt := jsonTrace{Label: t.Label, Seed: t.Seed, End: int64(t.End), Events: make([]jsonEvent, len(t.Events))}
	for i, e := range t.Events {
		je := jsonEvent{
			Seq: e.Seq, T: int64(e.T), TID: e.TID, Site: string(e.Site),
			Obj: int64(e.Obj), Kind: e.Kind.String(), Dur: int64(e.Dur),
		}
		if e.Clock != nil {
			je.Own = e.Clock.Owner()
			je.Clock = e.Clock.Snapshot()
		}
		jt.Events[i] = je
	}
	enc := json.NewEncoder(w)
	return enc.Encode(jt)
}

// ReadJSON decodes a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var jt jsonTrace
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("trace: decode json: %w", err)
	}
	tr := &Trace{Label: jt.Label, Seed: jt.Seed, End: sim.Time(jt.End), Events: make([]Event, len(jt.Events))}
	for i, je := range jt.Events {
		kind, err := KindFromString(je.Kind)
		if err != nil {
			return nil, err
		}
		ev := Event{
			Seq: je.Seq, T: sim.Time(je.T), TID: je.TID, Site: SiteID(je.Site),
			Obj: ObjID(je.Obj), Kind: kind, Dur: sim.Duration(je.Dur),
		}
		if len(je.Clock) > 0 {
			ev.Clock = vclock.FromSnapshot(je.Own, je.Clock)
		}
		tr.Events[i] = ev
	}
	return tr, nil
}

// Binary format:
//
//	magic "WFTR" | u16 version | label | i64 seed | i64 end
//	u32 nSites | sites...            (string table, varint-framed)
//	u32 nEvents | events...
//
// Each event: uvarint site-index, varints for t/tid/obj, byte kind,
// varint dur, clock (uvarint n, then tid/ctr varint pairs, owner varint).
// Integers use binary varint encoding; strings are uvarint length + bytes.

const (
	binaryMagic = "WFTR"
	// binaryVersion 2 changed the clock encoding: version 1 wrote
	// "uvarint n, entries, owner" for every non-nil clock but readers
	// skipped the owner when n == 0, so an empty-but-non-nil snapshot
	// desynced the stream and every later record decoded as garbage.
	// Version 2 writes 0 for a nil clock and n+1 for a clock with n
	// entries (owner always follows), which is self-delimiting for every
	// clock shape. Readers still accept version 1.
	binaryVersion       = 2
	binaryVersionLegacy = 1
)

// ErrBadFormat reports a corrupt or foreign binary trace stream.
var ErrBadFormat = errors.New("trace: bad binary format")

type binWriter struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
}

func (bw *binWriter) uvarint(v uint64) error {
	n := binary.PutUvarint(bw.buf[:], v)
	_, err := bw.w.Write(bw.buf[:n])
	return err
}

func (bw *binWriter) varint(v int64) error {
	n := binary.PutVarint(bw.buf[:], v)
	_, err := bw.w.Write(bw.buf[:n])
	return err
}

func (bw *binWriter) str(s string) error {
	if err := bw.uvarint(uint64(len(s))); err != nil {
		return err
	}
	_, err := bw.w.WriteString(s)
	return err
}

// clock encodes clk with the version-2 scheme: 0 for nil, count+1 then
// the entries then the owner otherwise. Empty-but-non-nil snapshots stay
// representable and self-delimiting.
func (bw *binWriter) clock(clk *vclock.Clock) error {
	if clk == nil {
		return bw.uvarint(0)
	}
	snap := clk.Snapshot()
	if err := bw.uvarint(uint64(len(snap)) + 1); err != nil {
		return err
	}
	for _, entry := range snap {
		if err := bw.varint(int64(entry.TID)); err != nil {
			return err
		}
		if err := bw.varint(entry.Counter); err != nil {
			return err
		}
	}
	return bw.varint(int64(clk.Owner()))
}

// readClock decodes a clock field written by the given format version.
// Version 1 streams cannot represent empty-but-non-nil clocks (that was
// the desync bug this scheme replaced); their 0 means nil.
func readClock(br *bufio.Reader, version uint64) (*vclock.Clock, error) {
	nClock, err := binary.ReadUvarint(br)
	if err != nil || nClock > math.MaxInt16 {
		return nil, fmt.Errorf("%w: clock size", ErrBadFormat)
	}
	if nClock == 0 {
		return nil, nil
	}
	n := int(nClock)
	if version >= 2 {
		n-- // version 2 stores count+1 so that 0 is unambiguously "no clock"
	}
	entries := make([]vclock.Entry, n)
	for j := range entries {
		etid, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: clock tid", ErrBadFormat)
		}
		ctr, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: clock ctr", ErrBadFormat)
		}
		entries[j] = vclock.Entry{TID: int(etid), Counter: ctr}
	}
	owner, err := binary.ReadVarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: clock owner", ErrBadFormat)
	}
	return vclock.FromSnapshot(int(owner), entries), nil
}

// WriteBinary encodes the trace in the compact binary format.
func (t *Trace) WriteBinary(w io.Writer) error {
	bw := &binWriter{w: bufio.NewWriter(w)}
	if _, err := bw.w.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := bw.uvarint(binaryVersion); err != nil {
		return err
	}
	if err := bw.str(t.Label); err != nil {
		return err
	}
	if err := bw.varint(t.Seed); err != nil {
		return err
	}
	if err := bw.varint(int64(t.End)); err != nil {
		return err
	}

	// Site string table.
	siteIdx := make(map[SiteID]uint64)
	var sites []SiteID
	for _, e := range t.Events {
		if _, ok := siteIdx[e.Site]; !ok {
			siteIdx[e.Site] = uint64(len(sites))
			sites = append(sites, e.Site)
		}
	}
	if err := bw.uvarint(uint64(len(sites))); err != nil {
		return err
	}
	for _, s := range sites {
		if err := bw.str(string(s)); err != nil {
			return err
		}
	}

	if err := bw.uvarint(uint64(len(t.Events))); err != nil {
		return err
	}
	for _, e := range t.Events {
		if err := bw.uvarint(siteIdx[e.Site]); err != nil {
			return err
		}
		if err := bw.varint(int64(e.T)); err != nil {
			return err
		}
		if err := bw.varint(int64(e.TID)); err != nil {
			return err
		}
		if err := bw.varint(int64(e.Obj)); err != nil {
			return err
		}
		if err := bw.w.WriteByte(byte(e.Kind)); err != nil {
			return err
		}
		if err := bw.varint(int64(e.Dur)); err != nil {
			return err
		}
		if err := bw.clock(e.Clock); err != nil {
			return err
		}
	}
	return bw.w.Flush()
}

// ReadBinary decodes a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil || (version != binaryVersion && version != binaryVersionLegacy) {
		return nil, fmt.Errorf("%w: version %d", ErrBadFormat, version)
	}
	label, err := readStr(br)
	if err != nil {
		return nil, err
	}
	seed, err := binary.ReadVarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: seed: %v", ErrBadFormat, err)
	}
	end, err := binary.ReadVarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: end: %v", ErrBadFormat, err)
	}

	nSites, err := binary.ReadUvarint(br)
	if err != nil || nSites > math.MaxInt32 {
		return nil, fmt.Errorf("%w: site count", ErrBadFormat)
	}
	// Never preallocate from untrusted counts: grow as entries actually
	// decode, so a forged header cannot demand gigabytes up front.
	sites := make([]SiteID, 0, clampCap(nSites))
	for i := uint64(0); i < nSites; i++ {
		s, err := readStr(br)
		if err != nil {
			return nil, err
		}
		sites = append(sites, SiteID(s))
	}

	nEvents, err := binary.ReadUvarint(br)
	if err != nil || nEvents > math.MaxInt32 {
		return nil, fmt.Errorf("%w: event count", ErrBadFormat)
	}
	tr := &Trace{Label: label, Seed: seed, End: sim.Time(end), Events: make([]Event, 0, clampCap(nEvents))}
	for i := 0; i < int(nEvents); i++ {
		siteIdx, err := binary.ReadUvarint(br)
		if err != nil || siteIdx >= nSites {
			return nil, fmt.Errorf("%w: event %d site", ErrBadFormat, i)
		}
		tv, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: event %d time", ErrBadFormat, i)
		}
		tid, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: event %d tid", ErrBadFormat, i)
		}
		obj, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: event %d obj", ErrBadFormat, i)
		}
		kindByte, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: event %d kind", ErrBadFormat, i)
		}
		if Kind(kindByte) > KindAPIWrite {
			return nil, fmt.Errorf("%w: event %d kind %d", ErrBadFormat, i, kindByte)
		}
		dur, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: event %d dur", ErrBadFormat, i)
		}
		clk, err := readClock(br, version)
		if err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		tr.Events = append(tr.Events, Event{
			Seq: i, T: sim.Time(tv), TID: int(tid), Site: sites[siteIdx],
			Obj: ObjID(obj), Kind: Kind(kindByte), Dur: sim.Duration(dur), Clock: clk,
		})
	}
	return tr, nil
}

// clampCap bounds untrusted preallocation hints.
func clampCap(n uint64) int {
	const maxHint = 4096
	if n > maxHint {
		return maxHint
	}
	return int(n)
}

func readStr(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil || n > maxStringLen {
		return "", fmt.Errorf("%w: string length", ErrBadFormat)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", fmt.Errorf("%w: string body: %v", ErrBadFormat, err)
	}
	return string(buf), nil
}

// maxStringLen bounds label and site strings — far above anything the
// writers emit, far below anything that could stress the allocator.
const maxStringLen = 1 << 20
