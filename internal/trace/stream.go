package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"waffle/internal/sim"
	"waffle/internal/vclock"
)

// Streaming trace format: events are written incrementally as they occur,
// so a preparation run over an allocation-heavy input (NpgSQL-class traces
// run to hundreds of thousands of events) never buffers the whole trace in
// memory. The stream is a header followed by self-delimiting frames:
//
//	magic "WFTS" | uvarint version | label | varint seed
//	frame 'S': uvarint index, string          (site-table entry)
//	frame 'E': event fields (site by index)   (one instrumented access)
//	frame 'Z': varint end-time                (trailer; ends the stream)
//
// Site-table entries are interleaved on first use, so the writer needs no
// second pass and the reader needs no seeking.

const (
	streamMagic = "WFTS"
	// streamVersion 2 adopted the self-delimiting clock encoding (see
	// binaryVersion): version 1 wrote the clock owner after the entry
	// list even when a non-nil clock snapshot was empty, while the reader
	// skipped the owner for zero-entry clocks — the frame boundary slid
	// by one varint and every subsequent frame decoded as garbage.
	// Readers still accept version 1.
	streamVersion       = 2
	streamVersionLegacy = 1

	frameSite  = 'S'
	frameEvent = 'E'
	frameEnd   = 'Z'
)

// StreamRecorder writes events to w as they happen. It is a drop-in
// alternative to Recorder for hooks that should not hold the trace in
// memory; pair it with ReadStream to load the trace back.
type StreamRecorder struct {
	bw    *binWriter
	sites map[SiteID]uint64
	n     int
	err   error
}

// NewStreamRecorder writes the stream header and returns the recorder.
func NewStreamRecorder(w io.Writer, label string, seed int64) (*StreamRecorder, error) {
	bw := &binWriter{w: bufio.NewWriter(w)}
	if _, err := bw.w.WriteString(streamMagic); err != nil {
		return nil, err
	}
	if err := bw.uvarint(streamVersion); err != nil {
		return nil, err
	}
	if err := bw.str(label); err != nil {
		return nil, err
	}
	if err := bw.varint(seed); err != nil {
		return nil, err
	}
	return &StreamRecorder{bw: bw, sites: make(map[SiteID]uint64)}, nil
}

// Record appends one event frame (and a site frame on first use of a
// site). Errors are sticky and surfaced by Close.
func (r *StreamRecorder) Record(t *sim.Thread, site SiteID, obj ObjID, kind Kind, dur sim.Duration) {
	if r.err != nil {
		return
	}
	idx, ok := r.sites[site]
	if !ok {
		idx = uint64(len(r.sites))
		r.sites[site] = idx
		r.err = r.writeSiteFrame(idx, site)
		if r.err != nil {
			return
		}
	}
	r.err = r.writeEventFrame(t, idx, obj, kind, dur)
	if r.err == nil {
		r.n++
	}
}

// Len reports the number of events recorded so far.
func (r *StreamRecorder) Len() int { return r.n }

// Close writes the trailer and flushes. The recorder must not be used
// afterwards.
func (r *StreamRecorder) Close(end sim.Time) error {
	if r.err != nil {
		return r.err
	}
	if err := r.bw.w.WriteByte(frameEnd); err != nil {
		return err
	}
	if err := r.bw.varint(int64(end)); err != nil {
		return err
	}
	return r.bw.w.Flush()
}

func (r *StreamRecorder) writeSiteFrame(idx uint64, site SiteID) error {
	return writeStreamSite(r.bw, idx, site)
}

func (r *StreamRecorder) writeEventFrame(t *sim.Thread, siteIdx uint64, obj ObjID, kind Kind, dur sim.Duration) error {
	return writeStreamEvent(r.bw, siteIdx, t.Now(), t.ID(), obj, kind, dur, vclock.Of(t))
}

// writeStreamHeader emits the WFTS magic, version, and run metadata.
func writeStreamHeader(bw *binWriter, label string, seed int64) error {
	if _, err := bw.w.WriteString(streamMagic); err != nil {
		return err
	}
	if err := bw.uvarint(streamVersion); err != nil {
		return err
	}
	if err := bw.str(label); err != nil {
		return err
	}
	return bw.varint(seed)
}

// writeStreamSite emits one site-table frame.
func writeStreamSite(bw *binWriter, idx uint64, site SiteID) error {
	if err := bw.w.WriteByte(frameSite); err != nil {
		return err
	}
	if err := bw.uvarint(idx); err != nil {
		return err
	}
	return bw.str(string(site))
}

// writeStreamEvent emits one event frame.
func writeStreamEvent(bw *binWriter, siteIdx uint64, tm sim.Time, tid int, obj ObjID, kind Kind, dur sim.Duration, clk *vclock.Clock) error {
	if err := bw.w.WriteByte(frameEvent); err != nil {
		return err
	}
	if err := bw.uvarint(siteIdx); err != nil {
		return err
	}
	if err := bw.varint(int64(tm)); err != nil {
		return err
	}
	if err := bw.varint(int64(tid)); err != nil {
		return err
	}
	if err := bw.varint(int64(obj)); err != nil {
		return err
	}
	if err := bw.w.WriteByte(byte(kind)); err != nil {
		return err
	}
	if err := bw.varint(int64(dur)); err != nil {
		return err
	}
	return bw.clock(clk)
}

// WriteStream encodes an already-materialized trace in the streaming WFTS
// format, so stream-based consumers (incremental analysis, conversion
// tooling) can be fed from any trace source. Site-table frames are
// interleaved on first use, exactly as StreamRecorder writes them.
func (t *Trace) WriteStream(w io.Writer) error {
	bw := &binWriter{w: bufio.NewWriter(w)}
	if err := writeStreamHeader(bw, t.Label, t.Seed); err != nil {
		return err
	}
	sites := make(map[SiteID]uint64)
	for i := range t.Events {
		e := &t.Events[i]
		idx, ok := sites[e.Site]
		if !ok {
			idx = uint64(len(sites))
			sites[e.Site] = idx
			if err := writeStreamSite(bw, idx, e.Site); err != nil {
				return err
			}
		}
		if err := writeStreamEvent(bw, idx, e.T, e.TID, e.Obj, e.Kind, e.Dur, e.Clock); err != nil {
			return err
		}
	}
	if err := bw.w.WriteByte(frameEnd); err != nil {
		return err
	}
	if err := bw.varint(int64(t.End)); err != nil {
		return err
	}
	return bw.w.Flush()
}

// StreamReader decodes a WFTS stream incrementally: Next returns one event
// at a time, so a consumer's memory is bounded by its own working set
// instead of the trace size. A stream without a trailer (e.g. the run
// crashed) is reported as truncated when Next reaches the end.
type StreamReader struct {
	br      *bufio.Reader
	version uint64
	label   string
	seed    int64
	sites   []SiteID
	n       int // events decoded so far; assigns Seq
	end     sim.Time
	done    bool
}

// NewStreamReader parses the stream header and returns a reader positioned
// at the first frame.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(streamMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != streamMagic {
		return nil, fmt.Errorf("%w: bad stream magic %q", ErrBadFormat, magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil || (version != streamVersion && version != streamVersionLegacy) {
		return nil, fmt.Errorf("%w: stream version %d", ErrBadFormat, version)
	}
	label, err := readStr(br)
	if err != nil {
		return nil, err
	}
	seed, err := binary.ReadVarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: seed", ErrBadFormat)
	}
	return &StreamReader{br: br, version: version, label: label, seed: seed}, nil
}

// Label returns the stream's run label.
func (sr *StreamReader) Label() string { return sr.label }

// Seed returns the stream's world seed.
func (sr *StreamReader) Seed() int64 { return sr.seed }

// End returns the run's virtual end time; it is meaningful only after Next
// has returned io.EOF (the trailer carries it).
func (sr *StreamReader) End() sim.Time { return sr.end }

// Next returns the next event, transparently consuming interleaved
// site-table frames. io.EOF signals the trailer was reached; any other
// error means the stream is corrupt or truncated.
func (sr *StreamReader) Next() (Event, error) {
	for {
		if sr.done {
			return Event{}, io.EOF
		}
		tag, err := sr.br.ReadByte()
		if err != nil {
			return Event{}, fmt.Errorf("%w: truncated stream (no trailer)", ErrBadFormat)
		}
		switch tag {
		case frameSite:
			idx, err := binary.ReadUvarint(sr.br)
			if err != nil || idx != uint64(len(sr.sites)) {
				return Event{}, fmt.Errorf("%w: site frame index", ErrBadFormat)
			}
			s, err := readStr(sr.br)
			if err != nil {
				return Event{}, err
			}
			sr.sites = append(sr.sites, SiteID(s))
		case frameEvent:
			ev, err := readStreamEvent(sr.br, sr.sites, sr.version)
			if err != nil {
				return Event{}, err
			}
			ev.Seq = sr.n
			sr.n++
			return ev, nil
		case frameEnd:
			end, err := binary.ReadVarint(sr.br)
			if err != nil {
				return Event{}, fmt.Errorf("%w: trailer", ErrBadFormat)
			}
			sr.end = sim.Time(end)
			sr.done = true
			return Event{}, io.EOF
		default:
			return Event{}, fmt.Errorf("%w: unknown frame %q", ErrBadFormat, tag)
		}
	}
}

// ReadStream loads a whole trace written by StreamRecorder (or
// WriteStream). A stream without a trailer is rejected as truncated.
func ReadStream(r io.Reader) (*Trace, error) {
	sr, err := NewStreamReader(r)
	if err != nil {
		return nil, err
	}
	tr := &Trace{Label: sr.Label(), Seed: sr.Seed()}
	for {
		ev, err := sr.Next()
		if err == io.EOF {
			tr.End = sr.End()
			return tr, nil
		}
		if err != nil {
			return nil, err
		}
		tr.Events = append(tr.Events, ev)
	}
}

func readStreamEvent(br *bufio.Reader, sites []SiteID, version uint64) (Event, error) {
	var ev Event
	siteIdx, err := binary.ReadUvarint(br)
	if err != nil || siteIdx >= uint64(len(sites)) {
		return ev, fmt.Errorf("%w: event site index", ErrBadFormat)
	}
	ev.Site = sites[siteIdx]
	tv, err := binary.ReadVarint(br)
	if err != nil {
		return ev, fmt.Errorf("%w: event time", ErrBadFormat)
	}
	ev.T = sim.Time(tv)
	tid, err := binary.ReadVarint(br)
	if err != nil {
		return ev, fmt.Errorf("%w: event tid", ErrBadFormat)
	}
	ev.TID = int(tid)
	obj, err := binary.ReadVarint(br)
	if err != nil {
		return ev, fmt.Errorf("%w: event obj", ErrBadFormat)
	}
	ev.Obj = ObjID(obj)
	kindByte, err := br.ReadByte()
	if err != nil || Kind(kindByte) > KindAPIWrite {
		return ev, fmt.Errorf("%w: event kind", ErrBadFormat)
	}
	ev.Kind = Kind(kindByte)
	dur, err := binary.ReadVarint(br)
	if err != nil {
		return ev, fmt.Errorf("%w: event dur", ErrBadFormat)
	}
	ev.Dur = sim.Duration(dur)
	clk, err := readClock(br, version)
	if err != nil {
		return ev, err
	}
	ev.Clock = clk
	return ev, nil
}
