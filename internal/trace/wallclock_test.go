package trace

import (
	"bytes"
	"math"
	"testing"
	"time"

	"waffle/internal/sim"
	"waffle/internal/vclock"
)

// The live runtime stamps events with wall-clock nanoseconds — values far
// beyond any sim.Time the virtual suite produces (a UnixNano is ~1.7e18;
// a long virtual run is ~1e9 ticks). These tests pin that the full int64
// range survives every trace codec unchanged: the varint encodings are
// range-complete by construction, and this keeps them that way.

// wallClockTimes spans the magnitudes that must round-trip: virtual-scale
// ticks, wall-clock durations, absolute UnixNano stamps, the int64
// extremes, and negatives (a clock that steps backwards must corrupt
// nothing even though analyzers reject unsorted traces).
func wallClockTimes() []sim.Time {
	return []sim.Time{
		0,
		1,
		sim.Time(100 * time.Millisecond),
		sim.Time(time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC).UnixNano()),
		math.MaxInt64 - 1,
		math.MaxInt64,
		-1,
		math.MinInt64 + 1,
		math.MinInt64,
	}
}

// wallClockTrace builds one event per extreme timestamp. Events are in
// slice order (deliberately NOT time-sorted — codecs must not reorder or
// clamp), with clocks on alternating events to cover both arms of the
// clock encoding.
func wallClockTrace() *Trace {
	times := wallClockTimes()
	tr := &Trace{Label: "wallclock", Seed: math.MinInt64, End: math.MaxInt64}
	clk := vclock.New(1)
	for i, ts := range times {
		e := Event{Seq: i, T: ts, TID: 1 + i%2, Site: SiteID("s"), Obj: 1, Kind: KindUse}
		if i%2 == 0 {
			e.Clock = clk
		}
		tr.Events = append(tr.Events, e)
	}
	return tr
}

func assertTimesIntact(t *testing.T, codec string, got *Trace) {
	t.Helper()
	times := wallClockTimes()
	if len(got.Events) != len(times) {
		t.Fatalf("%s: %d events, want %d", codec, len(got.Events), len(times))
	}
	if got.End != math.MaxInt64 {
		t.Errorf("%s: End = %d, want MaxInt64", codec, int64(got.End))
	}
	if got.Seed != math.MinInt64 {
		t.Errorf("%s: Seed = %d, want MinInt64", codec, got.Seed)
	}
	for i, want := range times {
		if got.Events[i].T != want {
			t.Errorf("%s: event %d timestamp = %d, want %d", codec, i, int64(got.Events[i].T), int64(want))
		}
	}
}

func TestWallClockTimestampsSurviveBinary(t *testing.T) {
	tr := wallClockTrace()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	assertTimesIntact(t, "binary", got)
}

func TestWallClockTimestampsSurviveJSON(t *testing.T) {
	tr := wallClockTrace()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	assertTimesIntact(t, "json", got)
}

func TestWallClockTimestampsSurviveStream(t *testing.T) {
	tr := wallClockTrace()
	var buf bytes.Buffer
	if err := tr.WriteStream(&buf); err != nil {
		t.Fatalf("WriteStream: %v", err)
	}
	got, err := ReadStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadStream: %v", err)
	}
	assertTimesIntact(t, "stream", got)
}

// FuzzWallClockTimestamps drives the binary codec with arbitrary int64
// timestamp/end pairs: whatever the values, encode→decode must be the
// identity on them.
func FuzzWallClockTimestamps(f *testing.F) {
	f.Add(int64(0), int64(0))
	f.Add(int64(math.MaxInt64), int64(math.MinInt64))
	f.Add(time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC).UnixNano(), int64(1))
	f.Add(int64(-1), int64(math.MaxInt64))
	f.Fuzz(func(t *testing.T, ts, end int64) {
		tr := &Trace{
			Label: "fz", Seed: ts ^ end, End: sim.Time(end),
			Events: []Event{
				{Seq: 0, T: sim.Time(ts), TID: 1, Site: "s", Obj: 1, Kind: KindInit},
				{Seq: 1, T: sim.Time(end), TID: 2, Site: "u", Obj: 1, Kind: KindUse, Clock: vclock.New(2)},
			},
		}
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			t.Fatalf("WriteBinary(%d, %d): %v", ts, end, err)
		}
		got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadBinary(%d, %d): %v", ts, end, err)
		}
		if got.Events[0].T != sim.Time(ts) || got.Events[1].T != sim.Time(end) {
			t.Fatalf("timestamps drifted: got (%d, %d), want (%d, %d)",
				int64(got.Events[0].T), int64(got.Events[1].T), ts, end)
		}
		if got.End != sim.Time(end) || got.Seed != ts^end {
			t.Fatalf("metadata drifted: end %d seed %d", int64(got.End), got.Seed)
		}

		var sbuf bytes.Buffer
		if err := tr.WriteStream(&sbuf); err != nil {
			t.Fatalf("WriteStream(%d, %d): %v", ts, end, err)
		}
		sgot, err := ReadStream(bytes.NewReader(sbuf.Bytes()))
		if err != nil {
			t.Fatalf("ReadStream(%d, %d): %v", ts, end, err)
		}
		if sgot.Events[0].T != sim.Time(ts) || sgot.Events[1].T != sim.Time(end) {
			t.Fatalf("stream timestamps drifted: got (%d, %d), want (%d, %d)",
				int64(sgot.Events[0].T), int64(sgot.Events[1].T), ts, end)
		}
	})
}
