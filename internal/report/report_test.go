package report

import (
	"strings"
	"testing"

	"waffle/internal/sim"
	"waffle/internal/trace"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "App", "Value")
	tb.Row("NetMQ", 12.5)
	tb.Row("A-much-longer-name", 3)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "Title") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "A-much-longer-name") {
		t.Fatal("row missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, rule, header, rule, 2 rows, rule.
	if len(lines) != 7 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// Columns align: both data rows start their second column at the same
	// byte offset.
	idx1 := strings.Index(lines[4], "12.5")
	idx2 := strings.Index(lines[5], "3")
	if idx1 != idx2 {
		t.Fatalf("columns misaligned: %d vs %d\n%s", idx1, idx2, out)
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tb := NewTable("", "X")
	tb.Row("y")
	var sb strings.Builder
	tb.Render(&sb)
	if strings.HasPrefix(sb.String(), "\n") {
		t.Fatal("leading blank line for empty title")
	}
}

func TestFloatTrimming(t *testing.T) {
	tb := NewTable("", "V")
	tb.Row(2.0)
	tb.Row(2.5)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "\n2\n") && !strings.Contains(out, "2  ") && !strings.Contains(out, "\n2") {
		t.Fatalf("integral float not trimmed: %q", out)
	}
	if !strings.Contains(out, "2.5") {
		t.Fatalf("fractional float lost: %q", out)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(12.4) != "12" {
		t.Errorf("Pct = %q", Pct(12.4))
	}
	if Slow(2.34) != "2.3x" {
		t.Errorf("Slow = %q", Slow(2.34))
	}
	if Slow(0) != "-" {
		t.Errorf("Slow(0) = %q", Slow(0))
	}
	if Runs(3) != "3" || Runs(0) != "-" {
		t.Errorf("Runs cells wrong")
	}
	if YesNo(true) != "yes" || YesNo(false) != "no" {
		t.Errorf("YesNo cells wrong")
	}
}

func TestUnicodeWidths(t *testing.T) {
	tb := NewTable("", "Décision", "V")
	tb.Row("§4.1 — prune", 1)
	var sb strings.Builder
	tb.Render(&sb)
	if !strings.Contains(sb.String(), "§4.1 — prune") {
		t.Fatal("unicode cell mangled")
	}
}

func TestTimelineRendering(t *testing.T) {
	tr := &trace.Trace{
		Label: "tl",
		End:   sim.Time(100 * sim.Millisecond),
		Events: []trace.Event{
			{Seq: 0, T: 0, TID: 1, Site: "a", Obj: 1, Kind: trace.KindInit},
			{Seq: 1, T: sim.Time(50 * sim.Millisecond), TID: 2, Site: "b", Obj: 1, Kind: trace.KindUse},
			{Seq: 2, T: sim.Time(99 * sim.Millisecond), TID: 1, Site: "c", Obj: 1, Kind: trace.KindDispose},
		},
	}
	out := Timeline(tr, 40)
	if !strings.Contains(out, "thd 1") || !strings.Contains(out, "thd 2") {
		t.Fatalf("lanes missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	var lane1, lane2 string
	for _, l := range lines {
		if strings.HasPrefix(l, "thd 1") {
			lane1 = l
		}
		if strings.HasPrefix(l, "thd 2") {
			lane2 = l
		}
	}
	if !strings.Contains(lane1, "I") || !strings.Contains(lane1, "D") {
		t.Fatalf("thread 1 markers missing: %s", lane1)
	}
	if !strings.Contains(lane2, "U") {
		t.Fatalf("thread 2 marker missing: %s", lane2)
	}
	// Init at t=0 must be in the first bucket, dispose in the last.
	bar1 := lane1[strings.Index(lane1, "|")+1 : strings.LastIndex(lane1, "|")]
	if bar1[0] != 'I' || bar1[len(bar1)-1] != 'D' {
		t.Fatalf("bucketing wrong: %q", bar1)
	}
}

func TestTimelineEmptyTrace(t *testing.T) {
	out := Timeline(&trace.Trace{Label: "empty"}, 40)
	if !strings.Contains(out, "empty trace") {
		t.Fatalf("unexpected: %q", out)
	}
}

func TestTimelineMarkerPrecedence(t *testing.T) {
	// Init and use in the same bucket: the init must win.
	tr := &trace.Trace{
		Label: "prec",
		End:   sim.Time(10 * sim.Millisecond),
		Events: []trace.Event{
			{Seq: 0, T: 0, TID: 1, Site: "a", Obj: 1, Kind: trace.KindUse},
			{Seq: 1, T: 1, TID: 1, Site: "a", Obj: 1, Kind: trace.KindInit},
		},
	}
	out := Timeline(tr, 10)
	if !strings.Contains(out, "I") {
		t.Fatalf("init lost precedence:\n%s", out)
	}
}

func TestRenderMarkdown(t *testing.T) {
	tb := NewTable("My Table", "App", "Value")
	tb.Row("NetMQ", 2.5)
	tb.Row("has|pipe", 1)
	var sb strings.Builder
	tb.RenderMarkdown(&sb)
	out := sb.String()
	if !strings.Contains(out, "### My Table") {
		t.Fatalf("title missing:\n%s", out)
	}
	if !strings.Contains(out, "| App | Value |") {
		t.Fatalf("header row missing:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- |") {
		t.Fatalf("separator missing:\n%s", out)
	}
	if !strings.Contains(out, `has\|pipe`) {
		t.Fatalf("pipe not escaped:\n%s", out)
	}
}
