package report

import (
	"fmt"
	"sort"
	"strings"

	"waffle/internal/sim"
	"waffle/internal/trace"
)

// Timeline renders an ASCII view of a trace: one lane per thread, time
// bucketed into width columns, one marker per bucket showing the most
// significant event executed there (I=init, D=dispose, U=use, A=API call).
// Initialization and disposal dominate a bucket because they are the
// operations MemOrder analysis pivots on.
func Timeline(tr *trace.Trace, width int) string {
	if width <= 0 {
		width = 80
	}
	if len(tr.Events) == 0 {
		return "(empty trace)\n"
	}
	end := tr.End
	if end <= 0 {
		end = tr.Events[len(tr.Events)-1].T + 1
	}
	// Anchor the axis at the earliest event so traces stamped with absolute
	// wall-clock nanoseconds still spread across the width, and bucket in
	// float64 — at that magnitude int64(t)*width overflows and would
	// scatter markers randomly.
	origin := tr.Events[0].T
	for _, e := range tr.Events {
		if e.T < origin {
			origin = e.T
		}
	}
	if origin > end {
		origin = 0
	}
	span := end.Sub(origin)
	if span <= 0 {
		span = 1
	}
	bucket := func(t sim.Time) int {
		b := int(float64(t.Sub(origin)) / float64(span) * float64(width))
		if b >= width {
			b = width - 1
		}
		if b < 0 {
			b = 0
		}
		return b
	}

	lanes := map[int][]byte{}
	var tids []int
	for _, e := range tr.Events {
		lane, ok := lanes[e.TID]
		if !ok {
			lane = []byte(strings.Repeat(".", width))
			lanes[e.TID] = lane
			tids = append(tids, e.TID)
		}
		marker := markerFor(e.Kind)
		b := bucket(e.T)
		if rank(marker) > rank(lane[b]) {
			lane[b] = marker
		}
	}
	sort.Ints(tids)

	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline: %s, %d events over %v (I=init U=use D=dispose A=api)\n",
		tr.Label, len(tr.Events), span)
	for _, tid := range tids {
		fmt.Fprintf(&sb, "thd %-4d |%s|\n", tid, lanes[tid])
	}
	pad := width - len(span.String()) - 1
	if pad < 0 {
		pad = 0
	}
	fmt.Fprintf(&sb, "          0%s+%v\n", strings.Repeat(" ", pad), span)
	return sb.String()
}

func markerFor(k trace.Kind) byte {
	switch k {
	case trace.KindInit:
		return 'I'
	case trace.KindDispose:
		return 'D'
	case trace.KindAPIRead, trace.KindAPIWrite:
		return 'A'
	default:
		return 'U'
	}
}

// rank orders markers by significance within one bucket.
func rank(m byte) int {
	switch m {
	case 'I', 'D':
		return 3
	case 'A':
		return 2
	case 'U':
		return 1
	default:
		return 0
	}
}
