// Package report renders evaluation results as aligned ASCII tables
// matching the layouts of the paper's tables.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them column-aligned.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// Row appends one row; cells are stringified with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// trimFloat renders floats compactly (1 decimal unless integral).
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.1f", v)
	return strings.TrimSuffix(s, ".0")
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	totalWidth := 0
	for _, wd := range widths {
		totalWidth += wd + 2
	}
	if t.title != "" {
		fmt.Fprintln(w, t.title)
	}
	line := strings.Repeat("-", totalWidth)
	fmt.Fprintln(w, line)
	printRow := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len([]rune(cell))
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", pad+2))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.headers)
	fmt.Fprintln(w, line)
	for _, row := range t.rows {
		printRow(row)
	}
	fmt.Fprintln(w, line)
}

// Pct formats an overhead percentage cell (integer percent).
func Pct(v float64) string { return fmt.Sprintf("%.0f", v) }

// Slow formats a slowdown cell like the paper's "2.5×"; zero renders "-"
// (missed).
func Slow(v float64) string {
	if v <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", v)
}

// Runs formats a runs-to-expose cell; zero renders "-" (missed).
func Runs(v int) string {
	if v <= 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

// YesNo renders a boolean as the paper's check/cross cells.
func YesNo(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}

// RenderMarkdown writes the table as GitHub-flavored markdown.
func (t *Table) RenderMarkdown(w io.Writer) {
	if t.title != "" {
		fmt.Fprintf(w, "### %s\n\n", t.title)
	}
	writeRow := func(cells []string) {
		fmt.Fprint(w, "|")
		for _, c := range cells {
			fmt.Fprintf(w, " %s |", strings.ReplaceAll(c, "|", "\\|"))
		}
		fmt.Fprintln(w)
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.rows {
		// Pad short rows so the markdown table stays rectangular.
		cells := make([]string, len(t.headers))
		copy(cells, row)
		writeRow(cells)
	}
	fmt.Fprintln(w)
}
