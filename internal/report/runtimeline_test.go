package report

import (
	"strings"
	"testing"
	"time"

	"waffle/internal/core"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

func TestRunTimelineLive(t *testing.T) {
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	runs := []core.RunReport{
		{Run: 1, End: sim.Time(40 * time.Millisecond), WallStart: base, WallDur: 40 * time.Millisecond},
		{Run: 2, End: sim.Time(47 * time.Millisecond), WallStart: base.Add(45 * time.Millisecond),
			WallDur: 47 * time.Millisecond,
			Stats:   core.DelayStats{Count: 1},
			Fault:   &sim.Fault{Thread: 2}},
	}
	out := RunTimeline(runs, 40)
	if !strings.Contains(out, "wall clock") {
		t.Errorf("live session not labeled wall clock:\n%s", out)
	}
	if !strings.Contains(out, "start=+0s") || !strings.Contains(out, "start=+45ms") {
		t.Errorf("wall start offsets missing:\n%s", out)
	}
	if !strings.Contains(out, "F") {
		t.Errorf("fault marker missing:\n%s", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "=") {
		t.Errorf("delay/no-delay spans missing:\n%s", out)
	}
}

func TestRunTimelineSim(t *testing.T) {
	runs := []core.RunReport{
		{Run: 1, End: 1000},
		{Run: 2, End: 3000, TimedOut: true},
	}
	out := RunTimeline(runs, 40)
	if !strings.Contains(out, "virtual clock") {
		t.Errorf("sim session not labeled virtual clock:\n%s", out)
	}
	if strings.Contains(out, "start=+") {
		t.Errorf("sim session must not render wall offsets:\n%s", out)
	}
	if !strings.Contains(out, "T") {
		t.Errorf("timeout marker missing:\n%s", out)
	}
}

func TestRunTimelineEmpty(t *testing.T) {
	if got := RunTimeline(nil, 40); got != "(no runs)\n" {
		t.Errorf("empty session rendered %q", got)
	}
}

// TestTimelineWallClockScale pins the overflow guard: UnixNano-scale
// timestamps (the live runtime's natural magnitude if absolute stamps
// ever flow in) must bucket monotonically instead of overflowing
// int64(t)*width.
func TestTimelineWallClockScale(t *testing.T) {
	base := sim.Time(time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC).UnixNano())
	tr := &trace.Trace{
		Label: "wall",
		End:   base + sim.Time(100*time.Millisecond),
		Events: []trace.Event{
			{Seq: 0, T: base, TID: 1, Site: "a", Obj: 1, Kind: trace.KindInit},
			{Seq: 1, T: base + sim.Time(99*time.Millisecond), TID: 2, Site: "b", Obj: 1, Kind: trace.KindUse},
		},
	}
	out := Timeline(tr, 40)
	lines := strings.Split(out, "\n")
	var lane1, lane2 string
	for _, l := range lines {
		if strings.HasPrefix(l, "thd 1") {
			lane1 = l
		}
		if strings.HasPrefix(l, "thd 2") {
			lane2 = l
		}
	}
	if lane1 == "" || lane2 == "" {
		t.Fatalf("lanes missing:\n%s", out)
	}
	// Both events sit in the last ~1% and ~100% of the axis: the init must
	// land in the final bucket region, not wrap to a random column.
	if !strings.Contains(lane1, "I") || !strings.Contains(lane2, "U") {
		t.Fatalf("markers missing:\n%s", out)
	}
	iCol := strings.IndexByte(lane1, 'I')
	uCol := strings.IndexByte(lane2, 'U')
	if iCol >= uCol {
		t.Errorf("init column %d not left of use column %d:\n%s", iCol, uCol, out)
	}
	if uCol < len(lane2)-8 {
		t.Errorf("use at column %d, want near the right edge:\n%s", uCol, out)
	}
}
