package report

import (
	"fmt"
	"strings"
	"time"

	"waffle/internal/core"
)

// RunTimeline renders a session's runs as one lane each. For live
// (wall-clock) sessions — recognizable by the stamped RunReport.WallStart
// and WallDur — lanes are positioned on physical time relative to the
// first run's start, so gaps between runs (analysis, scheduling) are
// visible; simulated sessions, which carry no wall stamps, are laid out
// end to end on cumulative virtual time. Markers: '#' delay-injecting
// span, '=' delay-free span, 'F' fault, 'T' timeout.
func RunTimeline(runs []core.RunReport, width int) string {
	if width <= 0 {
		width = 60
	}
	if len(runs) == 0 {
		return "(no runs)\n"
	}

	live := false
	for _, r := range runs {
		if r.WallDur > 0 {
			live = true
			break
		}
	}

	// Per-run [start, end) offsets on a common axis, in nanoseconds.
	starts := make([]time.Duration, len(runs))
	durs := make([]time.Duration, len(runs))
	var total time.Duration
	if live {
		base := runs[0].WallStart
		for _, r := range runs {
			if r.WallStart.Before(base) {
				base = r.WallStart
			}
		}
		for i, r := range runs {
			starts[i] = r.WallStart.Sub(base)
			durs[i] = r.WallDur
			if end := starts[i] + durs[i]; end > total {
				total = end
			}
		}
	} else {
		var cursor time.Duration
		for i, r := range runs {
			starts[i] = cursor
			// Sim ticks are virtual microseconds; live End values (wall
			// nanoseconds) never reach this branch.
			durs[i] = time.Duration(r.End) * time.Microsecond
			cursor += durs[i]
		}
		total = cursor
	}
	if total <= 0 {
		total = 1
	}
	bucket := func(d time.Duration) int {
		b := int(float64(d) / float64(total) * float64(width))
		if b >= width {
			b = width - 1
		}
		if b < 0 {
			b = 0
		}
		return b
	}

	clock := "virtual"
	if live {
		clock = "wall"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "runs: %d over %v (%s clock; #=delays ==no delays F=fault T=timeout)\n",
		len(runs), total, clock)
	for i, r := range runs {
		lane := []byte(strings.Repeat(".", width))
		span := byte('=')
		if r.Stats.Count > 0 {
			span = '#'
		}
		lo, hi := bucket(starts[i]), bucket(starts[i]+durs[i])
		for b := lo; b <= hi; b++ {
			lane[b] = span
		}
		switch {
		case r.Fault != nil:
			lane[hi] = 'F'
		case r.TimedOut:
			lane[hi] = 'T'
		}
		note := fmt.Sprintf("dur=%v delays=%d", durs[i].Round(time.Microsecond), r.Stats.Count)
		if live {
			note = fmt.Sprintf("start=+%v %s", starts[i].Round(time.Microsecond), note)
		}
		fmt.Fprintf(&sb, "run %-3d |%s| %s\n", r.Run, lane, note)
	}
	return sb.String()
}
