package deadlock

import (
	"fmt"
	"math/rand"
	"testing"

	"waffle/internal/core"
	"waffle/internal/memmodel"
	"waffle/internal/sim"
)

// abba builds the canonical lock-order inversion: thread 1 locks A then B,
// thread 2 locks B then A — but staggered so the windows never overlap
// naturally (a classic latent deadlock that testing never trips).
func abba(stagger sim.Duration) *core.SimProgram {
	return &core.SimProgram{
		Label:  "abba",
		Jitter: 0.02,
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			var a, b sim.Mutex
			t1 := root.Spawn("t1", func(t *sim.Thread) {
				a.Lock(t)
				t.Work(2 * sim.Millisecond)
				b.Lock(t)
				t.Work(sim.Millisecond)
				b.Unlock(t)
				a.Unlock(t)
			})
			t2 := root.Spawn("t2", func(t *sim.Thread) {
				t.Sleep(stagger) // naturally after t1 has finished
				b.Lock(t)
				t.Work(2 * sim.Millisecond)
				a.Lock(t)
				t.Work(sim.Millisecond)
				a.Unlock(t)
				b.Unlock(t)
			})
			root.Join(t1)
			root.Join(t2)
		},
	}
}

func TestLatentDeadlockNeverManifestsNaturally(t *testing.T) {
	prog := abba(10 * sim.Millisecond)
	for seed := int64(1); seed <= 20; seed++ {
		if res := prog.Execute(seed, nil); res.Err != nil {
			t.Fatalf("seed %d: natural run failed: %v", seed, res.Err)
		}
	}
}

func TestDetectorExposesABBA(t *testing.T) {
	prog := abba(10 * sim.Millisecond)
	det := New(Options{})
	rep := det.Expose(prog, 10, 1)
	if rep == nil {
		t.Fatal("latent deadlock not exposed in 10 runs")
	}
	if rep.Run < 2 {
		t.Fatalf("exposed in run %d — observation run must not inject", rep.Run)
	}
	if len(det.Candidates()) == 0 {
		t.Fatal("no candidates recorded")
	}
}

func TestDetectorCleanOnConsistentOrder(t *testing.T) {
	// Both threads lock A then B: no inversion, no candidates, no report.
	prog := &core.SimProgram{
		Label: "consistent",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			var a, b sim.Mutex
			for i := 0; i < 2; i++ {
				i := i
				w := root.Spawn(fmt.Sprintf("t%d", i), func(t *sim.Thread) {
					t.Sleep(sim.Duration(i) * sim.Millisecond)
					a.Lock(t)
					b.Lock(t)
					t.Work(sim.Millisecond)
					b.Unlock(t)
					a.Unlock(t)
				})
				defer root.Join(w)
			}
		},
	}
	det := New(Options{})
	if rep := det.Expose(prog, 8, 1); rep != nil {
		t.Fatalf("false positive: %v", rep)
	}
	if len(det.Candidates()) != 0 {
		t.Fatalf("consistent ordering produced candidates: %v", det.Candidates())
	}
}

func TestDetectorSingleThreadReentrantOrderIsNotACandidate(t *testing.T) {
	// One thread uses both orders at different times: inversion within a
	// single thread cannot deadlock and must not become a candidate.
	prog := &core.SimProgram{
		Label: "single-thread",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			var a, b sim.Mutex
			a.Lock(root)
			b.Lock(root)
			b.Unlock(root)
			a.Unlock(root)
			b.Lock(root)
			a.Lock(root)
			a.Unlock(root)
			b.Unlock(root)
		},
	}
	det := New(Options{})
	if rep := det.Expose(prog, 5, 1); rep != nil {
		t.Fatalf("single-thread inversion exposed: %v", rep)
	}
	if len(det.Candidates()) != 0 {
		t.Fatalf("single-thread inversion became a candidate: %v", det.Candidates())
	}
}

func TestDetectorThreeLockCycleAcrossRuns(t *testing.T) {
	// A wider inversion: (A,B) vs (B,C) vs (C,A). Pairwise inversions do
	// not exist, but the detector's pairwise model won't see this cycle —
	// document the limitation by asserting no candidates form.
	prog := &core.SimProgram{
		Label: "ring",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			var a, b, c sim.Mutex
			locks := []*sim.Mutex{&a, &b, &c}
			for i := 0; i < 3; i++ {
				i := i
				w := root.Spawn(fmt.Sprintf("t%d", i), func(t *sim.Thread) {
					t.Sleep(sim.Duration(i*5) * sim.Millisecond)
					first, second := locks[i], locks[(i+1)%3]
					first.Lock(t)
					t.Work(sim.Millisecond)
					second.Lock(t)
					second.Unlock(t)
					first.Unlock(t)
				})
				defer root.Join(w)
			}
		},
	}
	det := New(Options{})
	if rep := det.Expose(prog, 6, 1); rep != nil {
		t.Fatalf("pairwise detector unexpectedly exposed a 3-cycle: %v", rep)
	}
	if len(det.Candidates()) != 0 {
		t.Fatalf("3-cycle formed pairwise candidates: %v", det.Candidates())
	}
}

func TestDetectorProbabilityDecays(t *testing.T) {
	// An inversion whose deadlock cannot manifest (a guard mutex excludes
	// the two critical sections entirely): delays fail, probability decays.
	prog := &core.SimProgram{
		Label: "guarded-inversion",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			var guard, a, b sim.Mutex
			t1 := root.Spawn("t1", func(t *sim.Thread) {
				guard.Lock(t)
				a.Lock(t)
				b.Lock(t)
				b.Unlock(t)
				a.Unlock(t)
				guard.Unlock(t)
			})
			t2 := root.Spawn("t2", func(t *sim.Thread) {
				t.Sleep(sim.Millisecond)
				guard.Lock(t)
				b.Lock(t)
				a.Lock(t)
				a.Unlock(t)
				b.Unlock(t)
				guard.Unlock(t)
			})
			root.Join(t1)
			root.Join(t2)
		},
	}
	det := New(Options{Decay: 0.5})
	if rep := det.Expose(prog, 8, 1); rep != nil {
		t.Fatalf("guarded inversion deadlocked: %v", rep)
	}
	// After several failed injections the probabilities must be exhausted.
	for e, p := range det.probs {
		if p > 0.51 {
			t.Fatalf("probability at %v still %v after failures", e, p)
		}
	}
}

func TestReportListsParticipants(t *testing.T) {
	det := New(Options{})
	rep := det.Expose(abba(10*sim.Millisecond), 10, 1)
	if rep == nil {
		t.Fatal("not exposed")
	}
	if len(rep.Threads) != 2 {
		t.Fatalf("participants = %v, want 2 threads", rep.Threads)
	}
}

// randomLockGraph builds a program whose workers take random ascending
// 2-lock sequences from a small lock set (deadlock-free by lock ordering),
// staggered so critical sections rarely overlap. plant adds one worker
// taking a descending pair — a guaranteed latent ABBA inversion.
func randomLockGraph(seed int64, plant bool) *core.SimProgram {
	rng := rand.New(rand.NewSource(seed))
	nLocks := 3 + rng.Intn(3)
	nWorkers := 2 + rng.Intn(3)
	type take struct{ first, second, offsetMS int }
	var plan []take
	for w := 0; w < nWorkers; w++ {
		a, b := rng.Intn(nLocks), rng.Intn(nLocks)
		if a == b {
			b = (b + 1) % nLocks
		}
		if a > b {
			a, b = b, a // ascending: safe order discipline
		}
		plan = append(plan, take{first: a, second: b, offsetMS: 4 * w})
	}
	if plant {
		// One descending taker, far from everyone else in time.
		plan = append(plan, take{first: 1, second: 0, offsetMS: 4*nWorkers + 10})
	}
	return &core.SimProgram{
		Label:  fmt.Sprintf("lockgraph-%d", seed),
		Jitter: 0.02,
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			locks := make([]*sim.Mutex, nLocks)
			for i := range locks {
				locks[i] = &sim.Mutex{}
			}
			var wg sim.WaitGroup
			for wi, tk := range plan {
				tk := tk
				wg.Add(root, 1)
				root.Spawn(fmt.Sprintf("w%d", wi), func(t *sim.Thread) {
					defer wg.Done(t)
					t.Sleep(sim.Duration(tk.offsetMS) * sim.Millisecond)
					locks[tk.first].Lock(t)
					t.Work(sim.Millisecond)
					locks[tk.second].Lock(t)
					t.Work(500 * sim.Microsecond)
					locks[tk.second].Unlock(t)
					locks[tk.first].Unlock(t)
				})
			}
			wg.Wait(root)
		},
	}
}

func TestRandomLockGraphs(t *testing.T) {
	planted, exposed := 0, 0
	for seed := int64(1); seed <= 15; seed++ {
		// Unplanted graphs follow the ascending-order discipline: the
		// detector must stay silent.
		clean := randomLockGraph(seed*7, false)
		if rep := New(Options{}).Expose(clean, 6, seed); rep != nil {
			t.Fatalf("seed %d: false positive on ordered lock graph: %v", seed, rep)
		}
		// Planted graphs carry one descending taker racing the ascending
		// takers of locks 0 and 1 — expose it when such a taker exists.
		hasInverse := false
		prog := randomLockGraph(seed*7, true)
		probe := New(Options{})
		probe.Expose(prog, 1, seed) // observation only
		if len(probe.Candidates()) > 0 {
			hasInverse = true
		}
		if !hasInverse {
			continue // random plan had no (0,1) ascending taker to invert
		}
		planted++
		if rep := New(Options{}).Expose(prog, 12, seed); rep != nil {
			exposed++
		}
	}
	if planted == 0 {
		t.Skip("no seeds produced an invertible plant")
	}
	if exposed*2 < planted {
		t.Fatalf("exposed only %d of %d planted inversions", exposed, planted)
	}
}
