// Package deadlock applies Waffle's recipe — delay-free observation,
// near-miss candidates, targeted delay injection, manifestation-only
// reporting — to a different concurrency bug class: lock-order deadlocks.
// It is the kind of "other resource-conscious active delay injection tool"
// the paper's conclusion (§8) hopes its experience enables.
//
// The analogy maps cleanly:
//
//	MemOrder bug                      Lock-order deadlock
//	─────────────────────────────     ──────────────────────────────────
//	heap accesses (init/use/dispose)  lock requests/acquisitions/releases
//	near-miss pair {ℓ1, ℓ2}           inverse order pair {A→B, B→A}
//	delay before ℓ1 inverts order     delay at the request of the second
//	                                  lock extends the hold of the first
//	NULL-reference fault              scheduler-detected deadlock
//
// An observation run records, per thread, which locks were held at each
// exclusive-lock acquisition, yielding an order graph. Inverse edges
// observed in different threads form candidate pairs. Detection runs pause
// a thread at the moment it requests the second lock of a candidate —
// while it already holds the first — widening the window in which the
// other thread can take the locks in the opposite order. If the cycle is
// real, both threads end up holding-and-waiting and the virtual-time
// scheduler reports the deadlock (sim.ErrDeadlock): zero false positives,
// exactly like Waffle's manifestation oracle.
package deadlock

import (
	"errors"
	"fmt"
	"sort"

	"waffle/internal/core"
	"waffle/internal/sim"
)

// Options configures the detector.
type Options struct {
	// Delay is the pause injected at a candidate request. Lock holds are
	// short, so the fixed default is modest.
	Delay sim.Duration
	// Decay lowers a candidate's injection probability after each
	// unproductive delay.
	Decay float64
}

func (o Options) withDefaults() Options {
	if o.Delay <= 0 {
		o.Delay = 20 * sim.Millisecond
	}
	if o.Decay <= 0 {
		o.Decay = 0.1
	}
	return o
}

// edge is an observed lock ordering: acquired `to` while holding `from`.
type edge struct{ from, to int }

// Report describes one manifested deadlock.
type Report struct {
	Run     int   // run in which the deadlock manifested (1-based)
	Seed    int64 // seed of that run
	Threads []string
	// Cycle is the candidate pair realized, as lock ids.
	Cycle [2]edge
}

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("deadlock in run %d (seed %d): lock %d ↔ lock %d across %d threads",
		r.Run, r.Seed, r.Cycle[0].from, r.Cycle[0].to, len(r.Threads))
}

// Detector finds lock-order deadlocks over a core.Program. State persists
// across runs (the order graph, candidates, probabilities); per-run hold
// sets reset.
type Detector struct {
	opts Options

	lockIDs map[any]int
	orders  map[edge][]int // edge -> threads that exhibited it
	cands   map[edge]bool  // candidate edges (an inverse exists elsewhere)
	probs   map[edge]float64

	// Per-run state.
	held    map[int][]int // thread -> ordered held lock ids
	injects int
	lastHit *Report
}

// New returns a Detector.
func New(opts Options) *Detector {
	return &Detector{
		opts:    opts.withDefaults(),
		lockIDs: make(map[any]int),
		orders:  make(map[edge][]int),
		cands:   make(map[edge]bool),
		probs:   make(map[edge]float64),
	}
}

// BeginRun resets per-run state. Lock identities are interned afresh by
// first-appearance order: runs build new lock objects, so pointer identity
// cannot persist — but the deterministic scheduler makes the appearance
// order stable across runs, giving locks the same role static sites play
// for Waffle.
func (d *Detector) BeginRun() {
	d.held = make(map[int][]int)
	d.lockIDs = make(map[any]int)
	d.injects = 0
}

// Injected reports the delays injected in the current run.
func (d *Detector) Injected() int { return d.injects }

// Candidates returns the live candidate edges, sorted.
func (d *Detector) Candidates() []string {
	var out []string
	for e := range d.cands {
		out = append(out, fmt.Sprintf("%d->%d", e.from, e.to))
	}
	sort.Strings(out)
	return out
}

// observe handles one synchronization event. inject selects observation
// mode (false) or detection mode (true).
func (d *Detector) observe(t *sim.Thread, op sim.SyncOp, key any, inject bool) {
	switch op {
	case sim.SyncRequest:
		id := d.lockID(key)
		heldSet := d.held[t.ID()]
		for _, h := range heldSet {
			if h == id {
				continue
			}
			e := edge{from: h, to: id}
			d.noteOrder(e, t.ID())
			if inject && d.cands[e] {
				p := d.probs[e]
				if p > 0 && t.World().Rand() < p {
					d.injects++
					t.SetOp(fmt.Sprintf("deadlock-probe: holding %d, requesting %d", h, id))
					t.Sleep(d.opts.Delay)
					np := p - d.opts.Decay
					if np < 0 {
						np = 0
					}
					d.probs[e] = np
				}
			}
		}
	case sim.SyncAcquire:
		if id, ok := d.lockIDs[key]; ok || d.isLockKey(key) {
			if !ok {
				id = d.lockID(key)
			}
			d.held[t.ID()] = append(d.held[t.ID()], id)
		}
	case sim.SyncRelease:
		if id, ok := d.lockIDs[key]; ok {
			d.held[t.ID()] = removeLast(d.held[t.ID()], id)
		}
	}
}

// isLockKey limits hold tracking to exclusive locks (the primitives that
// emit SyncRequest).
func (d *Detector) isLockKey(key any) bool {
	switch key.(type) {
	case *sim.Mutex, *sim.RWMutex:
		return true
	}
	return false
}

// lockID interns a lock's identity.
func (d *Detector) lockID(key any) int {
	if id, ok := d.lockIDs[key]; ok {
		return id
	}
	id := len(d.lockIDs) + 1
	d.lockIDs[key] = id
	return id
}

// noteOrder records an order edge and promotes inverse pairs to candidates.
func (d *Detector) noteOrder(e edge, tid int) {
	tids := d.orders[e]
	seen := false
	for _, id := range tids {
		if id == tid {
			seen = true
		}
	}
	if !seen {
		d.orders[e] = append(tids, tid)
	}
	inv := edge{from: e.to, to: e.from}
	if invTids, ok := d.orders[inv]; ok {
		// The inverse order must come from a different thread.
		for _, other := range invTids {
			if other != tid {
				if !d.cands[e] {
					d.cands[e] = true
					d.probs[e] = 1.0
				}
				if !d.cands[inv] {
					d.cands[inv] = true
					d.probs[inv] = 1.0
				}
				return
			}
		}
	}
}

// Expose drives observation + detection runs until a deadlock manifests
// or maxRuns is exhausted. Run 1 observes without injecting (the
// preparation run); later runs inject at candidate requests.
func (d *Detector) Expose(prog core.Program, maxRuns int, baseSeed int64) *Report {
	for run := 1; run <= maxRuns; run++ {
		d.BeginRun()
		inject := run > 1
		seed := baseSeed + int64(run) - 1
		res := d.executeObserved(prog, seed, inject)
		if res.Err != nil && errors.Is(res.Err, sim.ErrDeadlock) {
			rep := &Report{Run: run, Seed: seed}
			for e := range d.cands {
				rep.Cycle = [2]edge{e, {from: e.to, to: e.from}}
				break
			}
			// The threads still holding locks at the deadlock are the
			// participants.
			var tids []int
			for tid, locks := range d.held {
				if len(locks) > 0 {
					tids = append(tids, tid)
				}
			}
			sort.Ints(tids)
			for _, tid := range tids {
				rep.Threads = append(rep.Threads, fmt.Sprintf("thread %d holding %v", tid, d.held[tid]))
			}
			d.lastHit = rep
			return rep
		}
	}
	return nil
}

// executeObserved runs the program with the detector attached as the
// world's sync observer. The program must be a SimProgram (the suite's
// concrete type); other Programs run unobserved.
func (d *Detector) executeObserved(prog core.Program, seed int64, inject bool) core.ExecResult {
	sp, ok := prog.(*core.SimProgram)
	if !ok {
		return prog.Execute(seed, nil)
	}
	cp := *sp
	cp.SyncObs = func(t *sim.Thread, op sim.SyncOp, key any) {
		d.observe(t, op, key, inject)
	}
	return cp.Execute(seed, nil)
}

// removeLast removes the last occurrence of id.
func removeLast(ids []int, id int) []int {
	for i := len(ids) - 1; i >= 0; i-- {
		if ids[i] == id {
			copy(ids[i:], ids[i+1:])
			return ids[:len(ids)-1]
		}
	}
	return ids
}
