package obs

import (
	"expvar"
	"net/http"
)

// Handler serves the registry's current snapshot as JSON — the scrape
// endpoint for long-running live campaigns (cmd/waffle -metrics-addr).
// A nil registry serves an empty valid snapshot so probes don't 500.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s := r.Snapshot()
		if s == nil {
			s = &Snapshot{
				Schema:     SchemaVersion,
				Counters:   map[string]int64{},
				Gauges:     map[string]float64{},
				Histograms: map[string]HistView{},
				Spans:      map[string]SpanView{},
			}
		}
		b, err := s.MarshalIndentJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
}

// PublishExpvar exposes the registry under name on the process-wide
// expvar namespace (/debug/vars), so campaigns embedded in services that
// already serve expvar get metrics for free. Publishing the same name
// twice is a no-op (expvar itself panics on duplicates). No-op on a nil
// registry.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
