package obs

import (
	"math"
	"testing"
)

// The quantile accessor is what the adaptive controller steers budgets
// on, so its nearest-rank convention must match stats.Percentile's: the
// first bucket bound with at least ⌈p/100·n⌉ observations at or below it.
func TestHistViewQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("q", []int64{1, 2, 3, 5, 10})
	// 10 observations: 1,1,2,2,2,3,4,5,7,12 (12 overflows past 10).
	for _, v := range []int64{1, 1, 2, 2, 2, 3, 4, 5, 7, 12} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	hv := snap.Histograms["q"]

	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1},    // rank clamps to 1 → first bucket
		{10, 1},   // rank 1
		{20, 1},   // rank 2, two observations ≤ 1
		{50, 2},   // rank 5, cumulative hits 5 in the ≤2 bucket
		{60, 3},   // rank 6
		{70, 5},   // rank 7 → the (3,5] bucket (value 4) reports bound 5
		{90, 10},  // rank 9 → the (5,10] bucket
		{99, math.Inf(1)}, // rank 10 lands in the overflow bucket
		{100, math.Inf(1)},
	}
	for _, c := range cases {
		got, ok := hv.Quantile(c.p)
		if !ok {
			t.Fatalf("Quantile(%g): not ok on populated histogram", c.p)
		}
		if got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}

	if v, ok := snap.HistogramQuantile("q", 50); !ok || v != 2 {
		t.Errorf("HistogramQuantile(q, 50) = %g, %v; want 2, true", v, ok)
	}
	if _, ok := snap.HistogramQuantile("absent", 50); ok {
		t.Error("HistogramQuantile reported ok for an absent histogram")
	}
	var empty HistView
	if _, ok := empty.Quantile(50); ok {
		t.Error("Quantile reported ok for an empty histogram")
	}
	if _, ok := (*Snapshot)(nil).HistogramQuantile("q", 50); ok {
		t.Error("nil snapshot reported ok")
	}
}

// Every observation at or below the first bound: quantiles never leave
// the first bucket, and a histogram with only overflow observations is
// +Inf at every rank.
func TestHistViewQuantileEdges(t *testing.T) {
	r := New()
	lo := r.Histogram("lo", []int64{10, 20})
	lo.Observe(1)
	lo.Observe(2)
	hi := r.Histogram("hi", []int64{10, 20})
	hi.Observe(100)
	snap := r.Snapshot()

	if v, ok := snap.Histograms["lo"].Quantile(99); !ok || v != 10 {
		t.Errorf("lo p99 = %g, %v; want 10, true", v, ok)
	}
	if v, ok := snap.Histograms["hi"].Quantile(1); !ok || !math.IsInf(v, 1) {
		t.Errorf("hi p1 = %g, %v; want +Inf, true", v, ok)
	}
}
