package obs

import (
	"testing"
)

// The quantile accessor is what the adaptive controller steers budgets
// on, so its nearest-rank convention must match stats.Percentile's: the
// first bucket bound with at least ⌈p/100·n⌉ observations at or below it.
func TestHistViewQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("q", []int64{1, 2, 3, 5, 10})
	// 10 observations: 1,1,2,2,2,3,4,5,7,12 (12 overflows past 10).
	for _, v := range []int64{1, 1, 2, 2, 2, 3, 4, 5, 7, 12} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	hv := snap.Histograms["q"]

	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1},    // rank clamps to 1 → first bucket
		{10, 1},   // rank 1
		{20, 1},   // rank 2, two observations ≤ 1
		{50, 2},   // rank 5, cumulative hits 5 in the ≤2 bucket
		{60, 3},   // rank 6
		{70, 5},   // rank 7 → the (3,5] bucket (value 4) reports bound 5
		{90, 10},  // rank 9 → the (5,10] bucket
		{99, 10},  // rank 10 lands in the overflow bucket → saturates to 10
		{100, 10}, // same saturation
	}
	for _, c := range cases {
		got, ok := hv.Quantile(c.p)
		if !ok {
			t.Fatalf("Quantile(%g): not ok on populated histogram", c.p)
		}
		if got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}

	// Saturation is only reported for ranks in the overflow bucket.
	if _, sat, ok := hv.QuantileInfo(90); !ok || sat {
		t.Errorf("QuantileInfo(90) saturated=%v ok=%v; want false, true", sat, ok)
	}
	if v, sat, ok := hv.QuantileInfo(99); !ok || !sat || v != 10 {
		t.Errorf("QuantileInfo(99) = %g, sat=%v, ok=%v; want 10, true, true", v, sat, ok)
	}

	if v, ok := snap.HistogramQuantile("q", 50); !ok || v != 2 {
		t.Errorf("HistogramQuantile(q, 50) = %g, %v; want 2, true", v, ok)
	}
	if v, sat, ok := snap.HistogramQuantileInfo("q", 99); !ok || !sat || v != 10 {
		t.Errorf("HistogramQuantileInfo(q, 99) = %g, sat=%v, ok=%v; want 10, true, true", v, sat, ok)
	}
	if _, ok := snap.HistogramQuantile("absent", 50); ok {
		t.Error("HistogramQuantile reported ok for an absent histogram")
	}
	if _, _, ok := snap.HistogramQuantileInfo("absent", 50); ok {
		t.Error("HistogramQuantileInfo reported ok for an absent histogram")
	}
	var empty HistView
	if _, ok := empty.Quantile(50); ok {
		t.Error("Quantile reported ok for an empty histogram")
	}
	if _, ok := (*Snapshot)(nil).HistogramQuantile("q", 50); ok {
		t.Error("nil snapshot reported ok")
	}
	if _, _, ok := (*Snapshot)(nil).HistogramQuantileInfo("q", 50); ok {
		t.Error("nil snapshot QuantileInfo reported ok")
	}
}

// Overflow-bucket edges: every observation at or below the first bound
// keeps quantiles in the first bucket; a histogram whose observations all
// overflowed saturates every rank to the last finite bound (with the
// saturated flag raised) rather than reporting +Inf, so SLO budget math
// never inherits an unbounded p99.
func TestHistViewQuantileEdges(t *testing.T) {
	r := New()
	lo := r.Histogram("lo", []int64{10, 20})
	lo.Observe(1)
	lo.Observe(2)
	hi := r.Histogram("hi", []int64{10, 20})
	hi.Observe(100)
	mixed := r.Histogram("mixed", []int64{10, 20})
	mixed.Observe(5)
	mixed.Observe(100)
	snap := r.Snapshot()

	if v, ok := snap.Histograms["lo"].Quantile(99); !ok || v != 10 {
		t.Errorf("lo p99 = %g, %v; want 10, true", v, ok)
	}
	if _, sat, _ := snap.Histograms["lo"].QuantileInfo(99); sat {
		t.Error("lo p99 reported saturated with nothing in overflow")
	}

	// Entirely-overflow histogram: every rank saturates.
	for _, p := range []float64{0, 1, 50, 99, 100} {
		v, sat, ok := snap.Histograms["hi"].QuantileInfo(p)
		if !ok || !sat || v != 20 {
			t.Errorf("hi p%g = %g, sat=%v, ok=%v; want 20, true, true", p, v, sat, ok)
		}
	}

	// Mixed: low ranks resolve finitely, high ranks saturate.
	if v, sat, ok := snap.Histograms["mixed"].QuantileInfo(50); !ok || sat || v != 10 {
		t.Errorf("mixed p50 = %g, sat=%v, ok=%v; want 10, false, true", v, sat, ok)
	}
	if v, sat, ok := snap.Histograms["mixed"].QuantileInfo(99); !ok || !sat || v != 20 {
		t.Errorf("mixed p99 = %g, sat=%v, ok=%v; want 20, true, true", v, sat, ok)
	}

	// A histogram with no finite bounds at all has nothing to saturate
	// to: not ok, never a panic.
	only := HistView{Bounds: nil, Counts: []int64{3}, Count: 3}
	if _, _, ok := only.QuantileInfo(50); ok {
		t.Error("bounds-free histogram reported ok")
	}
}
