package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// RunEvent is one per-run record for the JSONL event sink: everything a
// campaign dashboard needs to reconstruct a session's trajectory without
// holding the full Outcome in memory. Fields carry engine ticks (virtual
// µs under the simulator, wall-clock ns live) and deliberately no wall
// timestamps, so sink output for a simulated campaign is deterministic.
type RunEvent struct {
	Program    string `json:"program"`
	Tool       string `json:"tool"`
	Run        int    `json:"run"`
	Seed       int64  `json:"seed"`
	EndTicks   int64  `json:"end_ticks"`
	Delays     int    `json:"delays"`
	DelayTicks int64  `json:"delay_ticks"`
	Skipped    int    `json:"skipped"`
	Outcome    string `json:"outcome"`
}

// runSink serializes RunEvents as JSONL under a mutex.
type runSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// SetRunSink directs per-run records to w as JSON lines (one event per
// line). Pass nil to detach. No-op on a nil registry. The writer is used
// under an internal mutex; it does not need its own locking.
func (r *Registry) SetRunSink(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if w == nil {
		r.sink = nil
		return
	}
	r.sink = &runSink{enc: json.NewEncoder(w)}
}

// EmitRun writes one per-run record to the sink, if one is attached.
// No-op on a nil registry or with no sink — per-run emission stays off
// the campaign's critical path unless explicitly opted in.
func (r *Registry) EmitRun(ev RunEvent) {
	if r == nil {
		return
	}
	r.mu.Lock()
	sink := r.sink
	r.mu.Unlock()
	if sink == nil {
		return
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	_ = sink.enc.Encode(ev) // best-effort: a failed sink write never fails a run
}
