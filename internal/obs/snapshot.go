package obs

import (
	"encoding/json"
	"fmt"
	"math"
)

// SchemaVersion identifies the snapshot wire schema. Consumers (CI's
// schema validation, dashboards) key on it; bump it only with an
// accompanying DESIGN.md §9 update.
const SchemaVersion = "waffle.metrics/v1"

// HistView is a histogram's snapshot form.
type HistView struct {
	// Bounds are the inclusive upper bucket bounds, ascending. The last
	// bucket (counts[len(bounds)]) is the overflow bucket.
	Bounds []int64 `json:"bounds"`
	// Counts has len(Bounds)+1 entries.
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// SpanView is a span's snapshot form (all durations in nanoseconds).
type SpanView struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
	MinNS   int64 `json:"min_ns"`
	MaxNS   int64 `json:"max_ns"`
}

// Snapshot is a point-in-time copy of a registry, marshaling to the
// stable JSON schema validated by ValidateSnapshot. Map keys marshal
// sorted (encoding/json), so equal registries produce equal bytes.
type Snapshot struct {
	Schema     string              `json:"schema"`
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]float64  `json:"gauges"`
	Histograms map[string]HistView `json:"histograms"`
	Spans      map[string]SpanView `json:"spans"`
}

// Snapshot copies the registry's current values. Nil on a nil registry.
// Instruments updated concurrently are read atomically per field; the
// snapshot as a whole is not a consistent cut, which is fine for the
// aggregate counters it carries.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Schema:     SchemaVersion,
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistView, len(r.hists)),
		Spans:      make(map[string]SpanView, len(r.spans)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hv := HistView{
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.count.Load(),
			Sum:    h.sum.Load(),
		}
		for i := range h.counts {
			hv.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hv
	}
	for name, sp := range r.spans {
		s.Spans[name] = SpanView{
			Count:   sp.count.Load(),
			TotalNS: sp.total.Load(),
			MinNS:   sp.min.Load(),
			MaxNS:   sp.max.Load(),
		}
	}
	return s
}

// Quantile returns the p-th percentile (0 ≤ p ≤ 100) of the histogram's
// observations by nearest bucket rank: the inclusive upper bound of the
// first bucket at which the cumulative count reaches ⌈p/100·count⌉. The
// convention matches stats.Percentile — no interpolation, so the result
// is always a bucket boundary that at least rank observations are ≤ to.
//
// Saturation semantics: a rank that lands in the unbounded overflow
// bucket has no finite upper bound to report, so Quantile saturates to
// the last finite bound with ok == true. The result is then a LOWER
// bound on the true quantile, not an upper bound — a deliberate
// under-report. Consumers that derive budgets from quantiles (the live
// SLO delay budget, the adaptive controller's delay cap) prefer a finite
// floor over +Inf, which would silently disable any cap derived from
// it; consumers that must distinguish saturation use QuantileInfo. A
// histogram with no finite bounds at all, or an empty one, reports ok ==
// false (and value 0).
func (h HistView) Quantile(p float64) (value float64, ok bool) {
	value, _, ok = h.QuantileInfo(p)
	return value, ok
}

// QuantileInfo is Quantile with the saturation signal exposed: saturated
// is true when the requested rank landed in the unbounded overflow
// bucket and the returned value is the last finite bound (a lower bound
// on the true quantile) rather than an exact bucket answer.
func (h HistView) QuantileInfo(p float64) (value float64, saturated, ok bool) {
	if h.Count <= 0 || len(h.Counts) != len(h.Bounds)+1 || len(h.Bounds) == 0 {
		return 0, false, false
	}
	rank := int64(math.Ceil(p / 100 * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.Count {
		rank = h.Count
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			if i == len(h.Bounds) {
				break // overflow bucket: saturate below
			}
			return float64(h.Bounds[i]), false, true
		}
	}
	return float64(h.Bounds[len(h.Bounds)-1]), true, true
}

// HistogramQuantile reads a quantile from the named histogram in the
// snapshot — the accessor the adaptive campaign controller steers on
// (p50/p99 runs-to-exposure, per-run delay overhead). ok is false when
// the histogram is absent or empty.
func (s *Snapshot) HistogramQuantile(name string, p float64) (value float64, ok bool) {
	if s == nil {
		return 0, false
	}
	h, present := s.Histograms[name]
	if !present {
		return 0, false
	}
	return h.Quantile(p)
}

// HistogramQuantileInfo is HistogramQuantile with the overflow-bucket
// saturation signal (see HistView.QuantileInfo).
func (s *Snapshot) HistogramQuantileInfo(name string, p float64) (value float64, saturated, ok bool) {
	if s == nil {
		return 0, false, false
	}
	h, present := s.Histograms[name]
	if !present {
		return 0, false, false
	}
	return h.QuantileInfo(p)
}

// MarshalIndentJSON renders the snapshot as indented JSON with a trailing
// newline — the -metrics / -metrics-out file format.
func (s *Snapshot) MarshalIndentJSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ValidateSnapshot checks a snapshot's structural invariants: schema
// version, non-negative counters, histogram bucket layout (ascending
// bounds, len(counts) == len(bounds)+1, bucket counts summing to count),
// and span ordering (min <= max when populated).
func ValidateSnapshot(s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("obs: nil snapshot")
	}
	if s.Schema != SchemaVersion {
		return fmt.Errorf("obs: schema %q, want %q", s.Schema, SchemaVersion)
	}
	for name, v := range s.Counters {
		if v < 0 {
			return fmt.Errorf("obs: counter %s negative: %d", name, v)
		}
	}
	for name, h := range s.Histograms {
		if len(h.Counts) != len(h.Bounds)+1 {
			return fmt.Errorf("obs: histogram %s has %d buckets for %d bounds", name, len(h.Counts), len(h.Bounds))
		}
		for i := 1; i < len(h.Bounds); i++ {
			if h.Bounds[i] <= h.Bounds[i-1] {
				return fmt.Errorf("obs: histogram %s bounds not ascending at %d", name, i)
			}
		}
		var total int64
		for i, c := range h.Counts {
			if c < 0 {
				return fmt.Errorf("obs: histogram %s bucket %d negative", name, i)
			}
			total += c
		}
		if total != h.Count {
			return fmt.Errorf("obs: histogram %s bucket sum %d != count %d", name, total, h.Count)
		}
	}
	for name, sp := range s.Spans {
		if sp.Count < 0 || sp.TotalNS < 0 {
			return fmt.Errorf("obs: span %s negative count/total", name)
		}
		if sp.Count > 0 && sp.MinNS > sp.MaxNS {
			return fmt.Errorf("obs: span %s min %d > max %d", name, sp.MinNS, sp.MaxNS)
		}
	}
	return nil
}

// ValidateSnapshotJSON validates raw snapshot JSON. It accepts either a
// bare snapshot or any JSON object embedding one under a "metrics" key
// (the BENCH_*.json convention), so CI can point it at every artifact
// shape we emit.
func ValidateSnapshotJSON(data []byte) error {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err == nil && s.Schema != "" {
		return ValidateSnapshot(&s)
	}
	var wrapper struct {
		Metrics *Snapshot `json:"metrics"`
	}
	if err := json.Unmarshal(data, &wrapper); err != nil {
		return fmt.Errorf("obs: not a metrics snapshot or wrapper: %w", err)
	}
	if wrapper.Metrics == nil {
		return fmt.Errorf("obs: no metrics section found")
	}
	return ValidateSnapshot(wrapper.Metrics)
}
