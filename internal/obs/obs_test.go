package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRegistryIsInert pins the disabled fast path: a nil registry
// hands out nil handles, and every operation on them is a no-op rather
// than a panic.
func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", DelayBuckets)
	s := r.Span("x")
	if c != nil || g != nil || h != nil || s != nil {
		t.Fatal("nil registry returned non-nil handles")
	}
	c.Inc()
	c.Add(5)
	g.Set(1.5)
	h.Observe(42)
	s.Observe(time.Second)
	s.Time()()
	r.EmitRun(RunEvent{})
	r.SetRunSink(&bytes.Buffer{})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || s.Total() != 0 {
		t.Fatal("nil handles accumulated state")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry produced a snapshot")
	}
}

// TestHandlesAreStable checks that repeated lookups return the same
// instrument, so handle-at-construction wiring observes later increments.
func TestHandlesAreStable(t *testing.T) {
	r := New()
	c1 := r.Counter("inject.delays_injected")
	c1.Inc()
	if got := r.Counter("inject.delays_injected").Value(); got != 1 {
		t.Fatalf("second lookup sees %d, want 1", got)
	}
	h1 := r.Histogram("h", []int64{10, 100})
	h2 := r.Histogram("h", []int64{999}) // later bounds ignored
	if h1 != h2 {
		t.Fatal("histogram lookup returned a different instance")
	}
}

// TestHistogramBuckets checks bucket assignment including the overflow
// bucket and the sum/count invariants ValidateSnapshot enforces.
func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("d", []int64{10, 100})
	for _, v := range []int64{5, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	s := r.Snapshot()
	hv := s.Histograms["d"]
	want := []int64{2, 2, 2} // <=10, <=100, overflow
	for i, c := range hv.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, c, want[i], hv.Counts)
		}
	}
	if hv.Count != 6 || hv.Sum != 5+10+11+100+101+5000 {
		t.Fatalf("count/sum = %d/%d", hv.Count, hv.Sum)
	}
	if err := ValidateSnapshot(s); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}
}

// TestSpanMinMax exercises the CAS min/max under concurrency.
func TestSpanMinMax(t *testing.T) {
	r := New()
	sp := r.Span("phase.detect")
	var wg sync.WaitGroup
	for i := 1; i <= 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp.Observe(time.Duration(i) * time.Millisecond)
		}(i)
	}
	wg.Wait()
	v := r.Snapshot().Spans["phase.detect"]
	if v.Count != 64 {
		t.Fatalf("count = %d", v.Count)
	}
	if v.MinNS != int64(time.Millisecond) || v.MaxNS != int64(64*time.Millisecond) {
		t.Fatalf("min/max = %d/%d", v.MinNS, v.MaxNS)
	}
	if v.TotalNS != int64(64*65/2)*int64(time.Millisecond) {
		t.Fatalf("total = %d", v.TotalNS)
	}
}

// TestSnapshotJSONStable checks that equal registries marshal to equal
// bytes — the property the determinism tests and CI diffing rest on.
func TestSnapshotJSONStable(t *testing.T) {
	mk := func() []byte {
		r := New()
		r.Counter("b").Add(2)
		r.Counter("a").Inc()
		r.Gauge("g").Set(3.5)
		r.Histogram("h", []int64{1, 2}).Observe(1)
		r.Span("s").Observe(time.Millisecond)
		b, err := r.Snapshot().MarshalIndentJSON()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	if !bytes.Equal(mk(), mk()) {
		t.Fatal("equal registries marshaled differently")
	}
}

// TestValidateSnapshotJSON covers the three artifact shapes: a bare
// snapshot, a wrapper with a metrics section, and garbage.
func TestValidateSnapshotJSON(t *testing.T) {
	r := New()
	r.Counter("session.runs").Add(3)
	raw, err := r.Snapshot().MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSnapshotJSON(raw); err != nil {
		t.Fatalf("bare snapshot: %v", err)
	}
	wrapped, _ := json.Marshal(map[string]any{"seed": 1, "metrics": json.RawMessage(raw)})
	if err := ValidateSnapshotJSON(wrapped); err != nil {
		t.Fatalf("wrapped snapshot: %v", err)
	}
	if err := ValidateSnapshotJSON([]byte(`{"seed": 1}`)); err == nil {
		t.Fatal("object without metrics validated")
	}
	if err := ValidateSnapshotJSON([]byte(`{"schema":"bogus/v9"}`)); err == nil {
		t.Fatal("wrong schema version validated")
	}
	bad := &Snapshot{Schema: SchemaVersion, Histograms: map[string]HistView{
		"h": {Bounds: []int64{1, 2}, Counts: []int64{1}, Count: 1},
	}}
	if err := ValidateSnapshot(bad); err == nil {
		t.Fatal("malformed histogram validated")
	}
}

// TestRunSinkJSONL checks one-event-per-line encoding and detachment.
func TestRunSinkJSONL(t *testing.T) {
	r := New()
	var buf bytes.Buffer
	r.SetRunSink(&buf)
	r.EmitRun(RunEvent{Program: "p", Tool: "waffle", Run: 1, Seed: 7, Delays: 2, Outcome: "clean"})
	r.EmitRun(RunEvent{Program: "p", Tool: "waffle", Run: 2, Seed: 8, Outcome: "bug"})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var ev RunEvent
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	if ev.Run != 2 || ev.Outcome != "bug" {
		t.Fatalf("round-tripped event = %+v", ev)
	}
	r.SetRunSink(nil)
	r.EmitRun(RunEvent{Run: 3})
	if strings.Count(buf.String(), "\n") != 2 {
		t.Fatal("detached sink still wrote")
	}
}

// TestHandlerServesSnapshot scrapes the HTTP endpoint and validates the
// payload against the schema — the same check CI's live-smoke performs.
func TestHandlerServesSnapshot(t *testing.T) {
	r := New()
	r.Counter("inject.delays_injected").Add(4)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if err := ValidateSnapshotJSON(body.Bytes()); err != nil {
		t.Fatalf("scraped payload invalid: %v\n%s", err, body.String())
	}
	var s Snapshot
	if err := json.Unmarshal(body.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["inject.delays_injected"] != 4 {
		t.Fatalf("scraped counters = %v", s.Counters)
	}

	// A nil registry's handler must serve an empty valid snapshot.
	var nilReg *Registry
	srv2 := httptest.NewServer(nilReg.Handler())
	defer srv2.Close()
	resp2, err := srv2.Client().Get(srv2.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var body2 bytes.Buffer
	body2.ReadFrom(resp2.Body)
	if err := ValidateSnapshotJSON(body2.Bytes()); err != nil {
		t.Fatalf("nil-registry payload invalid: %v", err)
	}
}

// TestPublishExpvarIdempotent checks double publication doesn't panic.
func TestPublishExpvarIdempotent(t *testing.T) {
	r := New()
	r.PublishExpvar("waffle.test.metrics")
	r.PublishExpvar("waffle.test.metrics")
	var nilReg *Registry
	nilReg.PublishExpvar("waffle.test.metrics.nil")
}
