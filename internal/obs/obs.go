// Package obs is the campaign observability layer: dependency-free
// counters, gauges, fixed-bucket histograms, and phase spans behind a
// Registry whose Snapshot marshals to a stable JSON schema.
//
// Delay-injection campaigns are statistical — a detector fleet's health is
// only interpretable through aggregate counters (delays injected and
// skipped, decay floors hit, pairs pruned, runs per second), which the
// engines would otherwise throw away after every run. The registry is
// wired through the injectors, the analyzers, the session drivers, the
// run orchestrator, and the live detector; cmd/waffle and cmd/waffle-bench
// surface it via -metrics / -metrics-out, and long-running live campaigns
// can serve it over HTTP (Registry.Handler) or expvar.
//
// Two properties are load-bearing:
//
//   - Off the hot path when disabled. Every instrument is a typed handle
//     (*Counter, *Gauge, *Histogram, *Span) whose methods no-op on a nil
//     receiver, and a nil *Registry hands out nil handles. Instrumented
//     code resolves handles once at construction and pays one predictable
//     nil-check per event afterwards (benchmarked in internal/core).
//   - No effect on determinism. Instruments only observe — they never
//     consume randomness, never sleep, and never feed back into any
//     decision — so plans and injection schedules are byte-identical with
//     and without a registry attached (property-tested over every built-in
//     bug in inject_equivalence_test.go).
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. All methods are
// safe on a nil receiver (the disabled fast path).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value reads the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64. Safe on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts integer observations into fixed buckets. Bounds are
// inclusive upper bounds in ascending order; observations above the last
// bound land in an implicit overflow bucket, so len(counts) ==
// len(bounds)+1. Safe on a nil receiver.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reads the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Span accumulates wall-clock phase durations: count, total, min, and max.
// Safe on a nil receiver.
type Span struct {
	count atomic.Int64
	total atomic.Int64 // nanoseconds
	min   atomic.Int64 // nanoseconds; valid when count > 0
	max   atomic.Int64 // nanoseconds
}

// Observe records one duration. Negative durations clamp to zero (the
// monotonic clock can't go backwards, but callers may subtract).
func (s *Span) Observe(d time.Duration) {
	if s == nil {
		return
	}
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	if s.count.Add(1) == 1 {
		s.min.Store(ns)
	} else {
		for {
			cur := s.min.Load()
			if ns >= cur || s.min.CompareAndSwap(cur, ns) {
				break
			}
		}
	}
	for {
		cur := s.max.Load()
		if ns <= cur || s.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	s.total.Add(ns)
}

// Time starts timing a phase and returns the stop function that records
// it. On a nil span the clock is never read.
func (s *Span) Time() (stop func()) {
	if s == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { s.Observe(time.Since(t0)) }
}

// Total reads the accumulated duration (0 on nil).
func (s *Span) Total() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.total.Load())
}

// Registry owns a namespace of instruments. The zero value is not usable;
// create with New. A nil *Registry is the disabled mode: every lookup
// returns a nil handle and every emit is a no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    map[string]*Span

	sink *runSink
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		spans:    make(map[string]*Span),
	}
}

// Counter returns the named counter, creating it on first use. Nil on a
// nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with bounds on first
// use (later calls ignore bounds — the first registration wins, keeping
// bucket layouts stable across a campaign). Bounds must be ascending;
// they are defensively copied. Nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := append([]int64(nil), bounds...)
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Span returns the named span, creating it on first use. Nil on a nil
// registry.
func (r *Registry) Span(name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.spans[name]
	if !ok {
		s = &Span{}
		r.spans[name] = s
	}
	return s
}

// DelayBuckets is the standard bucket layout for injected-delay-length
// histograms, in engine ticks (virtual µs under the simulator, wall ns
// live): decades from 100 ticks to 1e9 ticks.
var DelayBuckets = []int64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000}

// LatencyBuckets is the standard bucket layout for request-latency
// histograms, in microseconds: roughly log-spaced from 50µs to 5s, dense
// through the single-digit-millisecond range where live-service handlers
// sit, so HistView.Quantile resolves a p99 tight enough to derive
// injection budgets from.
var LatencyBuckets = []int64{
	50, 100, 200, 300, 500, 750,
	1_000, 1_500, 2_000, 3_000, 5_000, 7_500,
	10_000, 15_000, 20_000, 30_000, 50_000, 75_000,
	100_000, 200_000, 500_000, 1_000_000, 2_000_000, 5_000_000,
}

// RunBuckets is the standard bucket layout for run-count histograms
// (session.runs_to_exposure): fine at the head, where nearly all
// exposures land, and wide enough at the tail to cover any practical
// MaxRuns budget, so HistView.Quantile reads p50/p99 at single-run
// resolution where it matters.
var RunBuckets = []int64{1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 25, 32, 40, 50, 64, 100}
