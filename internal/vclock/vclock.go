// Package vclock implements the fork-propagated vector clocks that Waffle
// (§4.1) piggybacks on inheritable thread-local storage.
//
// The paper's mechanism: each thread stores in its TLS a vector clock — a
// set of (thread id, counter) tuples. When a thread forks a child, the TLS
// region is copied to the child; the clock's fork hook then (1) appends a
// fresh (childTID, 1) tuple to the child's copy and (2) increments the
// parent's own counter. Only fork edges are tracked — locks, queues, and
// joins deliberately are not — which is exactly the partial happens-before
// analysis Table 1 marks "!*": cheap, and sufficient to prune the dominant
// class of pre-ordered MemOrder candidates (objects allocated in a parent
// before its workers exist).
//
// Clocks are immutable snapshots: a thread's clock value changes only at
// forks, so every event a thread performs between two forks can share one
// clock pointer, which keeps traces compact.
package vclock

import (
	"fmt"
	"sort"
	"strings"

	"waffle/internal/sim"
)

// Key is the TLS slot under which a thread's clock lives.
const Key sim.TLSKey = "waffle.vclock"

// Clock is an immutable vector-clock snapshot. The zero value is unusable;
// obtain clocks via Attach/Of.
type Clock struct {
	own  int           // the thread this clock belongs to
	vals map[int]int64 // thread id -> counter (includes own)
}

// holder is the mutable TLS cell; its ForkTLS hook implements the paper's
// copy-then-append-then-bump protocol.
type holder struct {
	clock *Clock
}

// ForkTLS implements sim.TLSForker. It runs at Spawn: the child receives a
// copy of the parent's tuples plus its own (childTID, 1) entry, and the
// parent's own counter is incremented (so parent events after the fork are
// concurrent with the child).
func (h *holder) ForkTLS(parent, child *sim.Thread) any {
	return h.fork(child.ID())
}

// ForkTask implements sim.TaskForker: the same protocol applies when a
// task is submitted to a pool — the task's async-local context receives
// the forked clock keyed by the task's fresh id, so submit-before events
// order before everything the task does regardless of which worker thread
// executes it (§4.1's async-local note).
func (h *holder) ForkTask(submitter *sim.Thread, taskID int) any {
	return h.fork(taskID)
}

// fork performs the copy-append-bump protocol shared by thread forks and
// task submissions.
func (h *holder) fork(childID int) *holder {
	p := h.clock
	childVals := make(map[int]int64, len(p.vals)+1)
	for tid, c := range p.vals {
		childVals[tid] = c
	}
	childVals[childID] = 1

	parentVals := make(map[int]int64, len(p.vals))
	for tid, c := range p.vals {
		parentVals[tid] = c
	}
	parentVals[p.own]++
	h.clock = &Clock{own: p.own, vals: parentVals}

	return &holder{clock: &Clock{own: childID, vals: childVals}}
}

// New returns a root clock for thread own with its own counter at 1 — the
// explicit-clock analog of Attach for runtimes without sim TLS (the live
// wall-clock runtime attaches clocks to its threads directly).
func New(own int) *Clock {
	return &Clock{own: own, vals: map[int]int64{own: 1}}
}

// Fork applies the copy-append-bump protocol to explicit clocks: child is
// the parent's tuples plus a fresh (childID, 1) entry, and advanced is the
// parent's clock with its own counter incremented (so parent events after
// the fork are concurrent with the child). The live runtime calls this at
// Spawn, where no TLS-forking machinery exists; the returned clocks are
// immutable snapshots exactly like the TLS-managed ones.
func Fork(parent *Clock, childID int) (child, advanced *Clock) {
	h := &holder{clock: parent}
	ch := h.fork(childID)
	return ch.clock, h.clock
}

// Attach installs a root clock on t. Call once on the root thread before
// any instrumented activity; children inherit automatically via TLS.
func Attach(t *sim.Thread) {
	t.SetTLS(Key, &holder{clock: New(t.ID())})
}

// Of returns the current clock snapshot of t, or nil if none was attached
// anywhere on t's ancestry.
func Of(t *sim.Thread) *Clock {
	h, _ := t.TLS(Key).(*holder)
	if h == nil {
		return nil
	}
	return h.clock
}

// Owner reports the thread id this clock belongs to.
func (c *Clock) Owner() int { return c.own }

// Get returns the counter for tid (0 when absent).
func (c *Clock) Get(tid int) int64 { return c.vals[tid] }

// Len reports the number of tuples in the clock.
func (c *Clock) Len() int { return len(c.vals) }

// Leq reports whether c happens-before-or-equals other: every component of
// c is ≤ the corresponding component of other (absent components read 0).
func (c *Clock) Leq(other *Clock) bool {
	for tid, v := range c.vals {
		if v > other.vals[tid] {
			return false
		}
	}
	return true
}

// Ordered reports whether the two clocks are comparable in either
// direction — i.e. the events they stamp are causally ordered by fork
// edges. Waffle's near-miss filter drops candidate pairs whose clocks are
// Ordered.
func Ordered(a, b *Clock) bool {
	if a == nil || b == nil {
		return false
	}
	return a.Leq(b) || b.Leq(a)
}

// Equal reports whether two clocks carry identical tuples and owner. Nil
// clocks are equal only to nil. The pointer fast path matters in practice:
// clocks are immutable and shared across every event a thread records
// between two forks, so comparisons between a trace and a re-recording of
// it usually short-circuit without touching the maps.
func Equal(a, b *Clock) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.own != b.own || len(a.vals) != len(b.vals) {
		return false
	}
	for tid, v := range a.vals {
		if w, ok := b.vals[tid]; !ok || w != v {
			return false
		}
	}
	return true
}

// Concurrent reports the negation of Ordered for two non-nil clocks.
func Concurrent(a, b *Clock) bool {
	if a == nil || b == nil {
		return true
	}
	return !Ordered(a, b)
}

// Snapshot returns the clock's tuples as a sorted, self-contained slice,
// suitable for trace encoding.
func (c *Clock) Snapshot() []Entry {
	out := make([]Entry, 0, len(c.vals))
	for tid, v := range c.vals {
		out = append(out, Entry{TID: tid, Counter: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TID < out[j].TID })
	return out
}

// FromSnapshot rebuilds a clock from encoded tuples.
func FromSnapshot(own int, entries []Entry) *Clock {
	vals := make(map[int]int64, len(entries))
	for _, e := range entries {
		vals[e.TID] = e.Counter
	}
	return &Clock{own: own, vals: vals}
}

// Entry is one (thread id, counter) tuple of a clock snapshot.
type Entry struct {
	TID     int   `json:"tid"`
	Counter int64 `json:"ctr"`
}

// String renders the clock as {tid:ctr, ...} in tid order.
func (c *Clock) String() string {
	if c == nil {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range c.Snapshot() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d:%d", e.TID, e.Counter)
	}
	b.WriteByte('}')
	return b.String()
}
