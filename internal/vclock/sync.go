package vclock

import "waffle/internal/sim"

// Full happens-before tracking: a SyncTracker listens to the simulator's
// release/acquire edges and folds them into the thread clocks that ride
// the TLS. With a tracker installed, recorded clocks capture the complete
// happens-before relation (forks, joins, locks, queues, events,
// semaphores), not just the fork edges Waffle's partial analysis keeps —
// the expensive alternative §4.1 weighs and rejects. The repository uses
// it to quantify that trade-off (see internal/eval's full-HB experiment).

// SyncTracker maintains per-object clocks under release-acquire semantics
// (FastTrack-style): a release joins the thread's clock into the object's
// and advances the thread's own component; an acquire joins the object's
// clock into the thread's.
type SyncTracker struct {
	clocks map[any]*Clock
	edges  int
}

// NewSyncTracker returns an empty tracker.
func NewSyncTracker() *SyncTracker {
	return &SyncTracker{clocks: make(map[any]*Clock)}
}

// Edges reports how many release/acquire events were observed — the count
// a real implementation would pay instrumentation cost for.
func (st *SyncTracker) Edges() int { return st.edges }

// Observe implements sim.SyncObserver (method value: tracker.Observe).
func (st *SyncTracker) Observe(t *sim.Thread, op sim.SyncOp, key any) {
	h, _ := t.TLS(Key).(*holder)
	if h == nil {
		return
	}
	st.edges++
	switch op {
	case sim.SyncRelease:
		st.clocks[key] = Join(st.clocks[key], h.clock)
		h.clock = h.clock.bumpOwn()
	case sim.SyncAcquire:
		if obj := st.clocks[key]; obj != nil {
			h.clock = Join(h.clock, obj).withOwner(h.clock.own)
		}
	}
}

// Join returns the component-wise maximum of two clocks. A nil operand
// acts as the zero clock. The result's owner comes from the first non-nil
// operand.
func Join(a, b *Clock) *Clock {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	vals := make(map[int]int64, len(a.vals)+len(b.vals))
	for tid, v := range a.vals {
		vals[tid] = v
	}
	for tid, v := range b.vals {
		if v > vals[tid] {
			vals[tid] = v
		}
	}
	return &Clock{own: a.own, vals: vals}
}

// bumpOwn returns a copy with the owner's component incremented — events
// after a release must not appear ordered before the acquirer's.
func (c *Clock) bumpOwn() *Clock {
	vals := make(map[int]int64, len(c.vals))
	for tid, v := range c.vals {
		vals[tid] = v
	}
	vals[c.own]++
	return &Clock{own: c.own, vals: vals}
}

// withOwner returns a copy owned by own (Join keeps the first operand's
// owner; acquire must keep the thread's).
func (c *Clock) withOwner(own int) *Clock {
	if c.own == own {
		return c
	}
	return &Clock{own: own, vals: c.vals}
}
