package vclock

import (
	"testing"

	"waffle/internal/sim"
)

// TestSubmitBeforeOrdersTask: events before a task's submission are
// causally ordered with the task's events, regardless of which worker
// thread runs it — the §4.1 async-local property.
func TestSubmitBeforeOrdersTask(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 1})
	var preSubmit, inTask *Clock
	err := w.Run(func(main *sim.Thread) {
		Attach(main)
		pool := sim.NewTaskPool(main, 2, "pool")
		preSubmit = Of(main)
		h := pool.Submit(main, "task", func(th *sim.Thread) {
			inTask = Of(th)
		})
		h.Wait(main)
		pool.Shutdown(main)
		pool.Join(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if inTask == nil {
		t.Fatal("no clock inside the task — async-local propagation broken")
	}
	if !preSubmit.Leq(inTask) {
		t.Fatalf("pre-submit %v not ≤ task %v", preSubmit, inTask)
	}
}

// TestSubmitAfterConcurrentWithTask: submitter events after the submission
// are concurrent with the task.
func TestSubmitAfterConcurrentWithTask(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 1})
	var postSubmit, inTask *Clock
	err := w.Run(func(main *sim.Thread) {
		Attach(main)
		pool := sim.NewTaskPool(main, 1, "pool")
		h := pool.Submit(main, "task", func(th *sim.Thread) { inTask = Of(th) })
		postSubmit = Of(main)
		h.Wait(main)
		pool.Shutdown(main)
		pool.Join(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if Ordered(postSubmit, inTask) {
		t.Fatalf("post-submit %v ordered with task %v", postSubmit, inTask)
	}
}

// TestSiblingTasksConcurrent: two tasks submitted by the same thread are
// concurrent with each other, even when one worker runs both.
func TestSiblingTasksConcurrent(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 1})
	var c1, c2 *Clock
	err := w.Run(func(main *sim.Thread) {
		Attach(main)
		pool := sim.NewTaskPool(main, 1, "pool") // single worker runs both
		h1 := pool.Submit(main, "t1", func(th *sim.Thread) { c1 = Of(th) })
		h2 := pool.Submit(main, "t2", func(th *sim.Thread) { c2 = Of(th) })
		h1.Wait(main)
		h2.Wait(main)
		pool.Shutdown(main)
		pool.Join(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if Ordered(c1, c2) {
		t.Fatalf("sibling tasks ordered: %v vs %v", c1, c2)
	}
}

// TestNestedTaskInheritsChain: a task submitted from inside a task is
// ordered after its submitting task's pre-submit events and after the
// original root's pre-submit events.
func TestNestedTaskInheritsChain(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 1})
	var rootPre, parentPre, childClock *Clock
	err := w.Run(func(main *sim.Thread) {
		Attach(main)
		pool := sim.NewTaskPool(main, 2, "pool")
		rootPre = Of(main)
		var childH *sim.TaskHandle
		parent := pool.Submit(main, "parent", func(th *sim.Thread) {
			parentPre = Of(th)
			childH = pool.Submit(th, "child", func(c *sim.Thread) {
				childClock = Of(c)
			})
		})
		parent.Wait(main)
		childH.Wait(main)
		pool.Shutdown(main)
		pool.Join(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rootPre.Leq(childClock) {
		t.Fatalf("root pre-submit %v not ≤ nested task %v", rootPre, childClock)
	}
	if !parentPre.Leq(childClock) {
		t.Fatalf("parent task %v not ≤ nested task %v", parentPre, childClock)
	}
}

// TestWorkerThreadClockUnpolluted: after running a task, the worker
// thread's own clock is its original spawn-time clock, not the task's.
func TestWorkerThreadClockUnpolluted(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 1})
	err := w.Run(func(main *sim.Thread) {
		Attach(main)
		pool := sim.NewTaskPool(main, 1, "pool")
		worker := pool.Workers()[0]
		h := pool.Submit(main, "t", func(th *sim.Thread) {})
		h.Wait(main)
		main.Sleep(sim.Millisecond) // let the worker finish restoring
		got := Of(worker)
		if got == nil {
			t.Fatal("worker lost its clock")
		}
		if got.Owner() != worker.ID() {
			t.Fatalf("worker clock owned by %d, want %d (task context leaked)", got.Owner(), worker.ID())
		}
		pool.Shutdown(main)
		pool.Join(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
