package vclock

import (
	"testing"

	"waffle/internal/sim"
)

// fullHBWorld runs main with a root clock and a SyncTracker installed.
func fullHBWorld(t *testing.T, seed int64, main func(*sim.Thread)) *SyncTracker {
	t.Helper()
	st := NewSyncTracker()
	w := sim.NewWorld(sim.Config{Seed: seed})
	w.SetSyncObserver(st.Observe)
	err := w.Run(func(root *sim.Thread) {
		Attach(root)
		main(root)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return st
}

func TestMutexOrdersCriticalSections(t *testing.T) {
	var clockInA, clockAfterB *Clock
	fullHBWorld(t, 1, func(root *sim.Thread) {
		var m sim.Mutex
		done := false
		a := root.Spawn("a", func(th *sim.Thread) {
			m.Lock(th)
			clockInA = Of(th)
			done = true
			m.Unlock(th)
		})
		root.Sleep(2 * sim.Millisecond) // a holds and releases first
		m.Lock(root)
		if !done {
			t.Error("lock ordering broke")
		}
		clockAfterB = Of(root)
		m.Unlock(root)
		root.Join(a)
	})
	if !clockInA.Leq(clockAfterB) {
		t.Fatalf("critical section A %v not ≤ later section B %v", clockInA, clockAfterB)
	}
}

func TestEventOrdersSetBeforeWait(t *testing.T) {
	var beforeSet, afterWait *Clock
	fullHBWorld(t, 1, func(root *sim.Thread) {
		var e sim.Event
		w := root.Spawn("waiter", func(th *sim.Thread) {
			e.Wait(th)
			afterWait = Of(th)
		})
		root.Sleep(sim.Millisecond)
		beforeSet = Of(root)
		e.Set(root)
		root.Join(w)
	})
	if !beforeSet.Leq(afterWait) {
		t.Fatalf("pre-Set %v not ≤ post-Wait %v", beforeSet, afterWait)
	}
}

func TestQueueOrdersSendBeforeRecv(t *testing.T) {
	var beforeSend, afterRecv *Clock
	fullHBWorld(t, 1, func(root *sim.Thread) {
		var q sim.Queue
		c := root.Spawn("consumer", func(th *sim.Thread) {
			if _, ok := q.Recv(th); ok {
				afterRecv = Of(th)
			}
		})
		root.Sleep(sim.Millisecond)
		beforeSend = Of(root)
		q.Send(root, "x")
		root.Join(c)
	})
	if !beforeSend.Leq(afterRecv) {
		t.Fatalf("pre-Send %v not ≤ post-Recv %v", beforeSend, afterRecv)
	}
}

func TestJoinOrdersChildBeforeParent(t *testing.T) {
	// With full HB (unlike the partial fork-only analysis), Join creates
	// an edge: child events ≤ parent events after the join.
	var childClock, afterJoin *Clock
	fullHBWorld(t, 1, func(root *sim.Thread) {
		c := root.Spawn("c", func(th *sim.Thread) {
			th.Sleep(sim.Millisecond)
			childClock = Of(th)
		})
		root.Join(c)
		afterJoin = Of(root)
	})
	if !childClock.Leq(afterJoin) {
		t.Fatalf("child %v not ≤ post-join parent %v (full HB should order joins)", childClock, afterJoin)
	}
}

func TestReleaseBumpKeepsPostReleaseConcurrent(t *testing.T) {
	// Events after a release are NOT ordered before the acquirer.
	var afterRelease, afterAcquire *Clock
	fullHBWorld(t, 1, func(root *sim.Thread) {
		var e sim.Event
		w := root.Spawn("waiter", func(th *sim.Thread) {
			e.Wait(th)
			afterAcquire = Of(th)
			th.Sleep(2 * sim.Millisecond)
		})
		root.Sleep(sim.Millisecond)
		e.Set(root)
		afterRelease = Of(root) // post-release: concurrent with waiter
		root.Join(w)
	})
	if afterRelease.Leq(afterAcquire) {
		t.Fatalf("post-release %v ordered before acquirer %v", afterRelease, afterAcquire)
	}
}

func TestTrackerCountsEdges(t *testing.T) {
	st := fullHBWorld(t, 1, func(root *sim.Thread) {
		var m sim.Mutex
		m.Lock(root)
		m.Unlock(root)
	})
	// Lock acquire + unlock release + root-thread finish release ≥ 3.
	if st.Edges() < 3 {
		t.Fatalf("edges = %d", st.Edges())
	}
}

func TestJoinFunctionProperties(t *testing.T) {
	a := FromSnapshot(1, []Entry{{TID: 1, Counter: 3}, {TID: 2, Counter: 1}})
	b := FromSnapshot(2, []Entry{{TID: 1, Counter: 2}, {TID: 2, Counter: 5}})
	j := Join(a, b)
	if j.Get(1) != 3 || j.Get(2) != 5 {
		t.Fatalf("join = %v", j)
	}
	if j.Owner() != 1 {
		t.Fatalf("join owner = %d", j.Owner())
	}
	if !a.Leq(j) || !b.Leq(j) {
		t.Fatal("join not an upper bound")
	}
	if Join(nil, a) != a || Join(a, nil) != a {
		t.Fatal("nil identity broken")
	}
}
