package vclock

import (
	"testing"
	"testing/quick"

	"waffle/internal/sim"
)

// runWorld executes main in a fresh world with a root clock attached and
// fails the test on any run error.
func runWorld(t *testing.T, seed int64, main func(*sim.Thread)) {
	t.Helper()
	w := sim.NewWorld(sim.Config{Seed: seed})
	err := w.Run(func(root *sim.Thread) {
		Attach(root)
		main(root)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestParentBeforeForkOrderedWithChild(t *testing.T) {
	runWorld(t, 1, func(root *sim.Thread) {
		before := Of(root) // parent clock before fork
		var childClock *Clock
		c := root.Spawn("child", func(c *sim.Thread) {
			childClock = Of(c)
		})
		root.Join(c)
		if !before.Leq(childClock) {
			t.Errorf("pre-fork parent %v not ≤ child %v", before, childClock)
		}
		if !Ordered(before, childClock) {
			t.Error("pre-fork parent and child report concurrent")
		}
	})
}

func TestParentAfterForkConcurrentWithChild(t *testing.T) {
	runWorld(t, 1, func(root *sim.Thread) {
		var childClock *Clock
		c := root.Spawn("child", func(c *sim.Thread) {
			childClock = Of(c)
		})
		after := Of(root) // parent clock after fork: own counter bumped
		root.Join(c)
		if Ordered(after, childClock) {
			t.Errorf("post-fork parent %v ordered with child %v", after, childClock)
		}
	})
}

func TestSiblingsConcurrent(t *testing.T) {
	runWorld(t, 1, func(root *sim.Thread) {
		var c1Clock, c2Clock *Clock
		c1 := root.Spawn("c1", func(c *sim.Thread) { c1Clock = Of(c) })
		c2 := root.Spawn("c2", func(c *sim.Thread) { c2Clock = Of(c) })
		root.Join(c1)
		root.Join(c2)
		if Ordered(c1Clock, c2Clock) {
			t.Errorf("siblings ordered: %v vs %v", c1Clock, c2Clock)
		}
	})
}

func TestGrandchildInheritsAncestry(t *testing.T) {
	runWorld(t, 1, func(root *sim.Thread) {
		rootPre := Of(root)
		var grandClock *Clock
		c := root.Spawn("child", func(c *sim.Thread) {
			childPre := Of(c)
			g := c.Spawn("grandchild", func(g *sim.Thread) {
				grandClock = Of(g)
			})
			c.Join(g)
			if !childPre.Leq(grandClock) {
				t.Errorf("child pre-fork %v not ≤ grandchild %v", childPre, grandClock)
			}
		})
		root.Join(c)
		if !rootPre.Leq(grandClock) {
			t.Errorf("root pre-fork %v not ≤ grandchild %v", rootPre, grandClock)
		}
	})
}

func TestJoinDoesNotOrder(t *testing.T) {
	// Waffle tracks only fork edges; a child's final clock stays concurrent
	// with parent events after Join. This is the deliberate partial
	// analysis of Table 1.
	runWorld(t, 1, func(root *sim.Thread) {
		var childClock *Clock
		c := root.Spawn("child", func(c *sim.Thread) { childClock = Of(c) })
		root.Join(c)
		after := Of(root)
		if childClock.Leq(after) {
			t.Errorf("join created an edge: child %v ≤ parent %v", childClock, after)
		}
	})
}

func TestOfWithoutAttachIsNil(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 1})
	err := w.Run(func(root *sim.Thread) {
		if Of(root) != nil {
			t.Error("Of on unattached thread != nil")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestNilClockComparisons(t *testing.T) {
	c := FromSnapshot(1, []Entry{{TID: 1, Counter: 1}})
	if Ordered(nil, c) || Ordered(c, nil) || Ordered(nil, nil) {
		t.Error("nil clocks must compare unordered")
	}
	if !Concurrent(nil, c) {
		t.Error("Concurrent(nil, c) = false")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	runWorld(t, 1, func(root *sim.Thread) {
		var clk *Clock
		c := root.Spawn("c", func(c *sim.Thread) {
			g := c.Spawn("g", func(*sim.Thread) {})
			c.Join(g)
			clk = Of(c)
		})
		root.Join(c)
		snap := clk.Snapshot()
		back := FromSnapshot(clk.Owner(), snap)
		if !clk.Leq(back) || !back.Leq(clk) {
			t.Errorf("round trip changed clock: %v vs %v", clk, back)
		}
		for i := 1; i < len(snap); i++ {
			if snap[i-1].TID >= snap[i].TID {
				t.Errorf("snapshot not sorted: %v", snap)
			}
		}
	})
}

func TestStringRendering(t *testing.T) {
	c := FromSnapshot(2, []Entry{{TID: 2, Counter: 3}, {TID: 1, Counter: 5}})
	if got, want := c.String(), "{1:5, 2:3}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	var nilClock *Clock
	if nilClock.String() != "{}" {
		t.Errorf("nil String = %q", nilClock.String())
	}
}

// buildForkTree spawns a deterministic tree of threads (shape driven by
// spec) and returns every (clock, forkOrderIndex, ancestorSet) triple.
type clockSample struct {
	clock     *Clock
	ancestors map[int]bool // thread ids on the spawn path, self included
	tid       int
}

func gatherTree(t *testing.T, seed int64, fanout, depth int) []clockSample {
	t.Helper()
	var samples []clockSample
	w := sim.NewWorld(sim.Config{Seed: seed})
	var build func(th *sim.Thread, anc map[int]bool, d int)
	build = func(th *sim.Thread, anc map[int]bool, d int) {
		mine := make(map[int]bool, len(anc)+1)
		for k := range anc {
			mine[k] = true
		}
		mine[th.ID()] = true
		samples = append(samples, clockSample{clock: Of(th), ancestors: mine, tid: th.ID()})
		if d == 0 {
			return
		}
		for i := 0; i < fanout; i++ {
			c := th.Spawn("n", func(c *sim.Thread) { build(c, mine, d-1) })
			th.Join(c)
		}
	}
	err := w.Run(func(root *sim.Thread) {
		Attach(root)
		build(root, nil, depth)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return samples
}

// Property: for thread-creation clocks in a fork tree, sample A is ≤ sample
// B exactly when A's thread is an ancestor of (or equal to) B's thread.
// (Creation clocks are taken before any further forks by that thread, so
// ancestor-creation ≤ descendant-creation must hold, and nothing else.)
func TestForkTreeOrderMatchesAncestryProperty(t *testing.T) {
	err := quick.Check(func(rawSeed uint16, rawFan, rawDepth uint8) bool {
		fanout := 1 + int(rawFan)%3
		depth := 1 + int(rawDepth)%3
		samples := gatherTree(t, int64(rawSeed), fanout, depth)
		for _, a := range samples {
			for _, b := range samples {
				if a.tid == b.tid {
					continue
				}
				ordered := a.clock.Leq(b.clock)
				isAncestor := b.ancestors[a.tid]
				if ordered != isAncestor {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: Leq is reflexive and antisymmetric on distinct tree clocks.
func TestLeqPartialOrderProperty(t *testing.T) {
	samples := gatherTree(t, 7, 2, 3)
	for _, a := range samples {
		if !a.clock.Leq(a.clock) {
			t.Fatalf("Leq not reflexive for %v", a.clock)
		}
	}
	for _, a := range samples {
		for _, b := range samples {
			if a.tid != b.tid && a.clock.Leq(b.clock) && b.clock.Leq(a.clock) {
				t.Fatalf("antisymmetry violated: %v and %v", a.clock, b.clock)
			}
		}
	}
	// Transitivity.
	for _, a := range samples {
		for _, b := range samples {
			for _, c := range samples {
				if a.clock.Leq(b.clock) && b.clock.Leq(c.clock) && !a.clock.Leq(c.clock) {
					t.Fatalf("transitivity violated: %v ≤ %v ≤ %v", a.clock, b.clock, c.clock)
				}
			}
		}
	}
}
