// Package wafflebasic implements WaffleBasic (§3): TSVD's active delay
// injection design transplanted onto MemOrder instrumentation sites.
//
// WaffleBasic keeps all four of TSVD's design decisions: candidate
// identification in the same runs that inject, fixed 100 ms delays,
// probability decay, run-time happens-before inference, and unrestricted
// parallel delays. Its candidate set, probabilities, and inferred
// removals persist across runs, exactly like TSVD's. The engine itself is
// core.Online configured TSVD-faithfully; this package gives it the Tool
// face the detection harness drives.
package wafflebasic

import (
	"waffle/internal/core"
	"waffle/internal/memmodel"
	"waffle/internal/trace"
)

// Tool is the WaffleBasic detector. Create with New; drive with
// core.Session.
type Tool struct {
	engine *core.Online
}

// New returns a WaffleBasic tool with the paper's defaults filled in (the
// same δ and fixed delay length as TSVD, §6.1).
func New(opts core.Options) *Tool {
	return &Tool{engine: core.NewOnline(core.WaffleBasicConfig(opts))}
}

// Name implements core.Tool.
func (t *Tool) Name() string { return "wafflebasic" }

// HookForRun implements core.Tool: every run identifies and injects.
func (t *Tool) HookForRun(run int, prev *core.RunReport) memmodel.Hook {
	t.engine.BeginRun()
	return t.engine
}

// RunStats implements core.Tool.
func (t *Tool) RunStats() core.DelayStats { return t.engine.Stats() }

// CurrentOptions implements core.Retunable (pass-through to the engine).
func (t *Tool) CurrentOptions() core.Options { return t.engine.CurrentOptions() }

// SetOptions implements core.Retunable (pass-through to the engine).
func (t *Tool) SetOptions(opts core.Options) { t.engine.SetOptions(opts) }

// LiveSites implements core.SiteProber (pass-through to the engine).
func (t *Tool) LiveSites() int { return t.engine.LiveSites() }

// Candidates implements core.Tool.
func (t *Tool) Candidates(site trace.SiteID) []core.Pair {
	var out []core.Pair
	for _, p := range t.engine.Pairs() {
		if p.Delay == site || p.Target == site {
			out = append(out, p)
		}
	}
	return out
}

// InjectionSiteCount reports the distinct delay sites admitted to the
// candidate set so far (Table 2's MO "Injection Sites" metric).
func (t *Tool) InjectionSiteCount() int { return t.engine.InjectionSiteCount() }
