package wafflebasic

import (
	"testing"

	"waffle/internal/core"
	"waffle/internal/memmodel"
	"waffle/internal/sim"
)

// racyInitUse: init naturally 2ms before the racy use; only an injected
// delay at the init site can expose the use-before-init bug. The init site
// executes once per run, so WaffleBasic needs one run to identify and a
// second to inject (§3.3: "too few dynamic instances").
func racyInitUse() *core.SimProgram {
	return &core.SimProgram{
		Label: "racy-init-use",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			r := h.NewRef("listener")
			user := root.Spawn("event", func(th *sim.Thread) {
				th.Sleep(3 * sim.Millisecond)
				r.Use(th, "handler.go:8")
			})
			root.Sleep(1 * sim.Millisecond)
			r.Init(root, "ctor.go:2")
			root.Join(user)
		},
	}
}

func TestWaffleBasicExposesSimpleBugInTwoRuns(t *testing.T) {
	s := &core.Session{Prog: racyInitUse(), Tool: New(core.Options{}), MaxRuns: 10, BaseSeed: 1}
	out := s.Expose()
	if out.Bug == nil {
		t.Fatal("no bug exposed")
	}
	if out.Bug.Run != 2 {
		t.Fatalf("exposed in run %d, want 2 (identify, then inject)", out.Bug.Run)
	}
	if out.Bug.Kind() != core.UseBeforeInit {
		t.Fatalf("kind = %v", out.Bug.Kind())
	}
}

// guardedInitUse is racyInitUse with the racy access behind an IsDisposed
// check: the schedule and candidate pair are identical, but no schedule
// faults, so every injected delay runs to completion.
func guardedInitUse() *core.SimProgram {
	return &core.SimProgram{
		Label: "guarded-init-use",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			r := h.NewRef("listener")
			user := root.Spawn("event", func(th *sim.Thread) {
				th.Sleep(3 * sim.Millisecond)
				r.UseIfLive(th, "handler.go:8")
			})
			root.Sleep(1 * sim.Millisecond)
			r.Init(root, "ctor.go:2")
			root.Join(user)
		},
	}
}

func TestWaffleBasicUsesFixedDelays(t *testing.T) {
	// Completed delays are exactly the fixed 100ms length (TSVD's default,
	// no per-site variable lengths). The guarded program never faults, so
	// every delay completes.
	s := &core.Session{Prog: guardedInitUse(), Tool: New(core.Options{}), MaxRuns: 4, BaseSeed: 1}
	out := s.Expose()
	if out.Bug != nil {
		t.Fatalf("guarded program faulted: %v", out.Bug)
	}
	completed := 0
	for _, run := range out.Runs {
		for _, iv := range run.Stats.Intervals {
			completed++
			if iv.Dur() != core.DefaultFixedDelay {
				t.Fatalf("delay = %v, want fixed %v", iv.Dur(), core.DefaultFixedDelay)
			}
		}
	}
	if completed == 0 {
		t.Fatal("no delays were injected")
	}

	// An exposing delay is torn down by the fault mid-sleep; its interval
	// records only the virtual time actually slept, never the planned
	// 100ms. Here the init is delayed at 1ms and the racy use faults at
	// 3ms (plus memmodel's 1µs op cost).
	s2 := &core.Session{Prog: racyInitUse(), Tool: New(core.Options{}), MaxRuns: 10, BaseSeed: 1}
	out2 := s2.Expose()
	if out2.Bug == nil {
		t.Fatal("no bug")
	}
	ivs := out2.Bug.Delays.Intervals
	if len(ivs) != 1 {
		t.Fatalf("intervals in exposing run = %d, want 1", len(ivs))
	}
	if want := 2001 * sim.Microsecond; ivs[0].Dur() != want {
		t.Fatalf("exposing delay interval = %v, want the %v actually slept", ivs[0].Dur(), want)
	}
}

// interferingBugs is Figure 4a (ApplicationInsights #1106): a
// use-before-init candidate and a use-after-free candidate on the same
// object whose delays cancel each other. WaffleBasic delays both the ctor
// and the handler in parallel, preserving their order; its happens-before
// inference then misreads the handler thread's delay-induced stall as
// synchronization and removes the UBI pair for good. The UAF candidate is
// a false near-miss (the dispose genuinely waits for the handler), so it
// only decays. Waffle's interference set serializes the two delays and the
// UBI bug manifests in its first detection run.
func interferingBugs() *core.SimProgram {
	return &core.SimProgram{
		Label: "interfering-bugs",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			lstnr := h.NewRef("lstnr")
			buf := h.NewRef("buffer")
			buf.Init(root, "app.go:1") // pre-fork: fork-ordered with all child uses
			var done sim.Event
			root.Spawn("events", func(th *sim.Thread) {
				th.Sleep(500 * sim.Microsecond)
				buf.Use(th, "events.go:3") // benign early access
				th.Sleep(1500 * sim.Microsecond)
				lstnr.Use(th, "events.go:8") // OnEventWritten: the racy use
				done.Set(th)
			})
			root.Sleep(1 * sim.Millisecond)
			lstnr.Init(root, "ctor.go:2") // naturally 1ms before the use
			done.Wait(root)
			root.Sleep(3 * sim.Millisecond)
			lstnr.Dispose(root, "dispose.go:5") // always after the use
		},
	}
}

// interferingInstances is Figure 4b (NetMQ #814): the same static site
// ("chk") executes in the disposing thread right before the dispose and in
// the worker thread as the racy use. Delaying both dynamic instances in
// parallel preserves their relative order, so symmetric injection cancels
// itself. Waffle keeps both instances delayable concurrently (no self
// edge) and relies on probability decay to break the symmetry: once the
// shared site's probability drops below 1, a run eventually delays only
// one instance and the racing schedule forms.
func interferingInstances() *core.SimProgram {
	return &core.SimProgram{
		Label: "interfering-instances",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			poller := h.NewRef("m_poller")
			poller.Init(root, "runtime.go:2")
			worker := root.Spawn("worker", func(th *sim.Thread) {
				th.Sleep(3 * sim.Millisecond)
				poller.Use(th, "poller.go:11") // TryExecTaskInline's check
			})
			root.Sleep(4 * sim.Millisecond)
			if poller.UseIfLive(root, "poller.go:11") { // Cleanup's check: same site
				root.Sleep(500 * sim.Microsecond)
				poller.Dispose(root, "cleanup.go:8")
			}
			root.Join(worker)
		},
	}
}

// exposeRuns runs one session and reports the exposing run (0 = missed).
func exposeRuns(prog func() *core.SimProgram, tool core.Tool, maxRuns int, seed int64) int {
	s := &core.Session{Prog: prog(), Tool: tool, MaxRuns: maxRuns, BaseSeed: seed}
	out := s.Expose()
	return out.RunsToExpose()
}

func TestInterferingBugsWaffleBasicMissesWaffleCatches(t *testing.T) {
	const attempts = 15
	basicMisses, waffleTwoRuns := 0, 0
	for i := 0; i < attempts; i++ {
		seed := int64(100 + i*1000)
		if exposeRuns(interferingBugs, New(core.Options{}), 20, seed) == 0 {
			basicMisses++
		}
		if r := exposeRuns(interferingBugs, core.NewWaffle(core.Options{}), 20, seed); r == 2 {
			waffleTwoRuns++
		}
	}
	// The paper reports WaffleBasic cannot trigger Figure 4a's bug in 50
	// runs; our reproduction requires it to miss in (at least) the vast
	// majority of attempts, and Waffle to need exactly two runs in the
	// majority of attempts (§6.2's 10-of-15 criterion).
	if basicMisses < attempts-1 {
		t.Errorf("WaffleBasic missed only %d/%d attempts", basicMisses, attempts)
	}
	if waffleTwoRuns < 10 {
		t.Errorf("Waffle exposed in 2 runs only %d/%d attempts", waffleTwoRuns, attempts)
	}
}

func TestInterferingInstancesSameSiteDelaysConcurrently(t *testing.T) {
	// Two regressions guarded here. First, Waffle must never emit a
	// self-interference edge: both dynamic instances of "poller.go:11" are
	// delayed in the same run (interference control would otherwise skip
	// the second and the site could never race against itself across
	// threads). Second, Waffle must still expose Figure 4b's bug reliably
	// — decay-driven symmetry breaking takes a handful of runs per seed.
	const attempts = 15
	basicFound := 0
	for i := 0; i < attempts; i++ {
		seed := int64(7_000 + i*911)

		s := &core.Session{Prog: interferingInstances(), Tool: core.NewWaffle(core.Options{}), MaxRuns: 50, BaseSeed: seed}
		out := s.Expose()
		if out.Bug == nil {
			t.Errorf("seed %d: Waffle missed the Figure 4b bug in 50 runs", seed)
			continue
		}
		// Run 2 is the first detection run: both instances arrive at full
		// probability and must both be delayed, neither skipped.
		r2 := out.Runs[1]
		if r2.Stats.Count != 2 || r2.Stats.Skipped != 0 {
			t.Errorf("seed %d run 2: count=%d skipped=%d, want both same-site delays injected",
				seed, r2.Stats.Count, r2.Stats.Skipped)
		}

		if exposeRuns(interferingInstances, New(core.Options{}), 50, seed) > 0 {
			basicFound++
		}
	}
	// WaffleBasic eventually finds this one too (Bug-11 took it 5 runs in
	// the paper) — the Figure 4b contrast is about interference-bound
	// cancellation, not a hard miss.
	if basicFound < 10 {
		t.Errorf("WaffleBasic found the bug only %d/%d attempts", basicFound, attempts)
	}
}

func TestWaffleBasicCandidatesAndSiteCount(t *testing.T) {
	tool := New(core.Options{})
	s := &core.Session{Prog: interferingInstances(), Tool: tool, MaxRuns: 3, BaseSeed: 42}
	s.Expose()
	if tool.InjectionSiteCount() == 0 {
		t.Fatal("no injection sites admitted")
	}
	if got := tool.Candidates("poller.go:11"); len(got) == 0 {
		t.Fatal("no candidates recorded at the racy site")
	}
}

func TestWaffleBasicNoFalsePositives(t *testing.T) {
	clean := &core.SimProgram{
		Label: "clean",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			r := h.NewRef("r")
			r.Init(root, "init")
			var done sim.Event
			w := root.Spawn("w", func(th *sim.Thread) {
				done.Wait(th)
				r.Use(th, "use")
			})
			root.Sleep(time2ms)
			done.Set(root)
			root.Join(w)
			r.Dispose(root, "disp")
		},
	}
	s := &core.Session{Prog: clean, Tool: New(core.Options{}), MaxRuns: 10, BaseSeed: 5}
	if out := s.Expose(); out.Bug != nil {
		t.Fatalf("false positive: %v", out.Bug)
	}
}

const time2ms = 2 * sim.Millisecond
