package wafflebasic

import (
	"testing"

	"waffle/internal/core"
	"waffle/internal/memmodel"
	"waffle/internal/sim"
)

// racyInitUse: init naturally 2ms before the racy use; only an injected
// delay at the init site can expose the use-before-init bug. The init site
// executes once per run, so WaffleBasic needs one run to identify and a
// second to inject (§3.3: "too few dynamic instances").
func racyInitUse() *core.SimProgram {
	return &core.SimProgram{
		Label: "racy-init-use",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			r := h.NewRef("listener")
			user := root.Spawn("event", func(th *sim.Thread) {
				th.Sleep(3 * sim.Millisecond)
				r.Use(th, "handler.go:8")
			})
			root.Sleep(1 * sim.Millisecond)
			r.Init(root, "ctor.go:2")
			root.Join(user)
		},
	}
}

func TestWaffleBasicExposesSimpleBugInTwoRuns(t *testing.T) {
	s := &core.Session{Prog: racyInitUse(), Tool: New(core.Options{}), MaxRuns: 10, BaseSeed: 1}
	out := s.Expose()
	if out.Bug == nil {
		t.Fatal("no bug exposed")
	}
	if out.Bug.Run != 2 {
		t.Fatalf("exposed in run %d, want 2 (identify, then inject)", out.Bug.Run)
	}
	if out.Bug.Kind() != core.UseBeforeInit {
		t.Fatalf("kind = %v", out.Bug.Kind())
	}
}

func TestWaffleBasicUsesFixedDelays(t *testing.T) {
	tool := New(core.Options{})
	s := &core.Session{Prog: racyInitUse(), Tool: tool, MaxRuns: 10, BaseSeed: 1}
	out := s.Expose()
	if out.Bug == nil {
		t.Fatal("no bug")
	}
	for _, iv := range out.Bug.Delays.Intervals {
		if iv.Dur() != core.DefaultFixedDelay {
			t.Fatalf("delay = %v, want fixed %v", iv.Dur(), core.DefaultFixedDelay)
		}
	}
}

// interferingBugs is Figure 4a (ApplicationInsights #1106): a
// use-before-init candidate and a use-after-free candidate on the same
// object whose delays cancel each other. WaffleBasic delays both the ctor
// and the handler in parallel, preserving their order; its happens-before
// inference then misreads the handler thread's delay-induced stall as
// synchronization and removes the UBI pair for good. The UAF candidate is
// a false near-miss (the dispose genuinely waits for the handler), so it
// only decays. Waffle's interference set serializes the two delays and the
// UBI bug manifests in its first detection run.
func interferingBugs() *core.SimProgram {
	return &core.SimProgram{
		Label: "interfering-bugs",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			lstnr := h.NewRef("lstnr")
			buf := h.NewRef("buffer")
			buf.Init(root, "app.go:1") // pre-fork: fork-ordered with all child uses
			var done sim.Event
			root.Spawn("events", func(th *sim.Thread) {
				th.Sleep(500 * sim.Microsecond)
				buf.Use(th, "events.go:3") // benign early access
				th.Sleep(1500 * sim.Microsecond)
				lstnr.Use(th, "events.go:8") // OnEventWritten: the racy use
				done.Set(th)
			})
			root.Sleep(1 * sim.Millisecond)
			lstnr.Init(root, "ctor.go:2") // naturally 1ms before the use
			done.Wait(root)
			root.Sleep(3 * sim.Millisecond)
			lstnr.Dispose(root, "dispose.go:5") // always after the use
		},
	}
}

// interferingInstances is Figure 4b (NetMQ #814): the same static site
// ("chk") executes in the disposing thread right before the dispose and in
// the worker thread as the racy use. WaffleBasic delays both dynamic
// instances in parallel and cancels itself with significant probability;
// Waffle's self-interference edge serializes them.
func interferingInstances() *core.SimProgram {
	return &core.SimProgram{
		Label: "interfering-instances",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			poller := h.NewRef("m_poller")
			poller.Init(root, "runtime.go:2")
			worker := root.Spawn("worker", func(th *sim.Thread) {
				th.Sleep(3 * sim.Millisecond)
				poller.Use(th, "poller.go:11") // TryExecTaskInline's check
			})
			root.Sleep(4 * sim.Millisecond)
			if poller.UseIfLive(root, "poller.go:11") { // Cleanup's check: same site
				root.Sleep(500 * sim.Microsecond)
				poller.Dispose(root, "cleanup.go:8")
			}
			root.Join(worker)
		},
	}
}

// exposeRuns runs one session and reports the exposing run (0 = missed).
func exposeRuns(prog func() *core.SimProgram, tool core.Tool, maxRuns int, seed int64) int {
	s := &core.Session{Prog: prog(), Tool: tool, MaxRuns: maxRuns, BaseSeed: seed}
	out := s.Expose()
	return out.RunsToExpose()
}

func TestInterferingBugsWaffleBasicMissesWaffleCatches(t *testing.T) {
	const attempts = 15
	basicMisses, waffleTwoRuns := 0, 0
	for i := 0; i < attempts; i++ {
		seed := int64(100 + i*1000)
		if exposeRuns(interferingBugs, New(core.Options{}), 20, seed) == 0 {
			basicMisses++
		}
		if r := exposeRuns(interferingBugs, core.NewWaffle(core.Options{}), 20, seed); r == 2 {
			waffleTwoRuns++
		}
	}
	// The paper reports WaffleBasic cannot trigger Figure 4a's bug in 50
	// runs; our reproduction requires it to miss in (at least) the vast
	// majority of attempts, and Waffle to need exactly two runs in the
	// majority of attempts (§6.2's 10-of-15 criterion).
	if basicMisses < attempts-1 {
		t.Errorf("WaffleBasic missed only %d/%d attempts", basicMisses, attempts)
	}
	if waffleTwoRuns < 10 {
		t.Errorf("Waffle exposed in 2 runs only %d/%d attempts", waffleTwoRuns, attempts)
	}
}

func TestInterferingInstancesWaffleFasterThanBasic(t *testing.T) {
	const attempts = 15
	var basicRuns, waffleRuns []int
	basicFound, waffleTwoRuns := 0, 0
	for i := 0; i < attempts; i++ {
		seed := int64(7_000 + i*911)
		if r := exposeRuns(interferingInstances, New(core.Options{}), 50, seed); r > 0 {
			basicFound++
			basicRuns = append(basicRuns, r)
		}
		if r := exposeRuns(interferingInstances, core.NewWaffle(core.Options{}), 50, seed); r == 2 {
			waffleTwoRuns++
		}
		waffleRuns = append(waffleRuns, 2)
	}
	if waffleTwoRuns < 10 {
		t.Errorf("Waffle needed >2 runs too often: 2-run rate %d/%d", waffleTwoRuns, attempts)
	}
	// WaffleBasic eventually finds this one (Bug-11 took it 5 runs), but
	// slower than Waffle on average.
	if basicFound == 0 {
		t.Fatal("WaffleBasic never exposed the Figure 4b bug")
	}
	sum := 0
	for _, r := range basicRuns {
		sum += r
	}
	if avg := float64(sum) / float64(len(basicRuns)); avg <= 2.0 {
		t.Errorf("WaffleBasic average runs = %.1f, expected clearly more than Waffle's 2", avg)
	}
}

func TestWaffleBasicCandidatesAndSiteCount(t *testing.T) {
	tool := New(core.Options{})
	s := &core.Session{Prog: interferingInstances(), Tool: tool, MaxRuns: 3, BaseSeed: 42}
	s.Expose()
	if tool.InjectionSiteCount() == 0 {
		t.Fatal("no injection sites admitted")
	}
	if got := tool.Candidates("poller.go:11"); len(got) == 0 {
		t.Fatal("no candidates recorded at the racy site")
	}
}

func TestWaffleBasicNoFalsePositives(t *testing.T) {
	clean := &core.SimProgram{
		Label: "clean",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			r := h.NewRef("r")
			r.Init(root, "init")
			var done sim.Event
			w := root.Spawn("w", func(th *sim.Thread) {
				done.Wait(th)
				r.Use(th, "use")
			})
			root.Sleep(time2ms)
			done.Set(root)
			root.Join(w)
			r.Dispose(root, "disp")
		},
	}
	s := &core.Session{Prog: clean, Tool: New(core.Options{}), MaxRuns: 10, BaseSeed: 5}
	if out := s.Expose(); out.Bug != nil {
		t.Fatalf("false positive: %v", out.Bug)
	}
}

const time2ms = 2 * sim.Millisecond
