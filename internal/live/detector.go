package live

import (
	"errors"
	"fmt"
	"time"

	"waffle/internal/core"
	"waffle/internal/memmodel"
	"waffle/internal/obs"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// Scenario is one live program-under-test: a body that receives the root
// thread and a fresh heap. The detector executes it repeatedly — every
// run gets a new Heap and new Threads, so bodies must allocate all shared
// state inside the body (captured refs from a previous run would escape
// the oracle).
type Scenario struct {
	Name string
	Body func(*Thread, *Heap)
}

// Phases accumulates the wall-clock cost of each pipeline phase across a
// detector's lifetime — the live counterpart of the virtual-time Table 4
// metrics, and the payload of the CI live benchmark artifact.
type Phases struct {
	Prepare    time.Duration `json:"prepare_ns"`      // delay-free preparation runs
	Analyze    time.Duration `json:"analyze_ns"`      // offline trace analysis
	Detect     time.Duration `json:"detect_ns"`       // delay-injecting detection runs
	PrepRuns   int           `json:"prep_runs"`       // preparation runs performed
	DetectRuns int           `json:"detect_runs"`     // detection runs performed
	Events     int           `json:"trace_events"`    // events in the recorded trace
	Pairs      int           `json:"candidate_pairs"` // candidate set size |S|
}

// Detector drives the full Waffle pipeline against live scenarios:
// preparation run → trace analysis → detection runs. Like core.Session's
// Tool, a Detector is stateful across runs — the plan's per-site
// probabilities decay monotonically over its lifetime, so reusing one
// Detector across Expose calls continues the same search.
type Detector struct {
	opts   Options
	plan   *core.Plan
	prep   *trace.Trace
	phases Phases

	// Baseline state, measured once per Detector lifetime: the
	// uninstrumented run is an overhead denominator, not part of the
	// search, so reusing a Detector across Expose calls must not repeat
	// it.
	baseDone bool
	baseTime sim.Duration
	baseErr  error
}

// NewDetector returns a detector with opts (zero value = live defaults).
func NewDetector(opts Options) *Detector {
	return &Detector{opts: opts.withDefaults()}
}

// Plan returns the analysis plan, nil before the first successful
// preparation run.
func (d *Detector) Plan() *core.Plan { return d.plan }

// PrepTrace returns the recorded preparation trace, nil before the first
// successful preparation run.
func (d *Detector) PrepTrace() *trace.Trace { return d.prep }

// Phases returns the accumulated per-phase wall-clock costs.
func (d *Detector) Phases() Phases { return d.phases }

// recordAccess is the preparation-run hook: append to the accessing
// thread's own shard — no locks, no cross-goroutine state.
func recordAccess(t *Thread, site trace.SiteID, obj trace.ObjID, kind trace.Kind) {
	t.events.Append(trace.Event{
		T: t.rt.now(), TID: t.id, Site: site, Obj: obj, Kind: kind, Clock: t.clock,
	})
}

// Expose searches for a MemOrder bug in s using at most maxRuns runs
// (preparation included; <= 0 means Options.MaxRuns), mirroring
// core.Session.Expose. Run 1 is the delay-free preparation run, analyzed
// into the plan; subsequent runs inject with decaying probabilities. The
// base seed offsets per-run injector seeds; on the wall clock it does not
// (cannot) replay scheduling. The uninstrumented baseline run behind
// Outcome.BaseTime executes once per Detector and is reused by later
// Expose calls; an abnormal baseline is reported in Outcome.BaseErr.
func (d *Detector) Expose(s Scenario, maxRuns int, baseSeed int64) *core.Outcome {
	out := &core.Outcome{Program: s.Name, Tool: "waffle-live"}
	copts := d.opts.coreOptions()
	if maxRuns <= 0 {
		maxRuns = d.opts.MaxRuns
	}
	defer d.trackRate(out)()

	if !d.baseDone {
		// A faulted or timed-out baseline is no overhead denominator: its
		// truncated duration would understate BaseTime and inflate every
		// overhead ratio, so record nothing and surface the abnormality.
		base := execRun(runSpec{
			label: s.Name, seed: baseSeed, body: s.Body,
			timeout: d.opts.RunTimeout, metrics: d.opts.Metrics,
		})
		d.baseDone = true
		switch {
		case base.timedOut:
			d.baseErr = fmt.Errorf("live: uninstrumented baseline run timed out after %v", base.wallDur)
		case base.fault != nil:
			d.baseErr = fmt.Errorf("live: uninstrumented baseline run faulted: %w", base.fault.Err)
		default:
			d.baseTime = sim.Duration(base.end)
		}
	}
	out.BaseTime = d.baseTime
	out.BaseErr = d.baseErr

	m := d.opts.Metrics
	var prevRep *core.RunReport
	prevDetection := false
	for run := 1; run <= maxRuns; run++ {
		// Run-boundary tuning, mirroring core.Session: the tuner sees the
		// previous run and the current live-site count, and may stop the
		// search, shrink the budget, or replace the options used to build
		// the NEXT injector. In-flight injectors copied their options at
		// NewInjector, so goroutines leaked by a timed-out run are
		// unaffected by any retune.
		if d.opts.Tuner != nil {
			dec := d.opts.Tuner.TuneRun(core.TuneContext{
				Program: s.Name, Tool: out.Tool, Run: run, MaxRuns: maxRuns,
				Prev: prevRep, PrevDetection: prevDetection,
				LiveSites: d.liveSites(), Opts: copts, Retunable: true,
			})
			if dec.Opts != nil {
				mm := copts.Metrics
				copts = *dec.Opts
				copts.Metrics = mm
			}
			if dec.MaxRuns > 0 {
				maxRuns = dec.MaxRuns
			}
			if dec.Stop || run > maxRuns {
				return out
			}
		}
		isDetection := d.plan != nil
		seed := baseSeed + int64(run) - 1
		var res runResult
		var stats core.DelayStats
		sampledOut := false
		switch {
		case d.plan == nil:
			// Preparation: record, never inject. A prep run that faults or
			// times out yields no usable trace; the plan stays nil and the
			// next iteration prepares again. Preparation is never sampled
			// out — without it there is no plan to sample against.
			res = execRun(runSpec{
				label: s.Name, seed: seed, body: s.Body,
				access: recordAccess, recording: true,
				timeout: d.opts.RunTimeout, metrics: m,
			})
			d.phases.Prepare += res.wallDur
			d.phases.PrepRuns++
			m.Span("phase.prepare").Observe(res.wallDur)
			if res.trace != nil && res.fault == nil {
				t0 := time.Now()
				d.plan = core.Analyze(res.trace, copts)
				d.phases.Analyze += time.Since(t0)
				d.prep = res.trace
				d.phases.Events = len(res.trace.Events)
				d.phases.Pairs = len(d.plan.Pairs)
			}
		case !admitRun(baseSeed, run, d.opts.SampleRate):
			// Sampled out: the body runs plain — no hook, no recording, no
			// injector, no RNG draw for the admission itself (it is a
			// deterministic hash of (baseSeed, run)). The run still counts
			// against maxRuns: sampling trades detection opportunities for
			// overhead, it does not extend the budget.
			sampledOut = true
			res = execRun(runSpec{
				label: s.Name, seed: seed, body: s.Body,
				timeout: d.opts.RunTimeout, metrics: m,
			})
			d.phases.Detect += res.wallDur
			m.Counter("session.runs_sampled_out").Inc()
		default:
			// Each detection run injects from a private clone of the plan:
			// a timed-out run leaks its goroutines (Go cannot kill them),
			// and the leaked threads keep calling this run's injector,
			// which decays its plan's Probs map under the injector's own
			// mutex. The clone keeps those writes off d.plan — which later
			// runs' injectors and direct readers (PairsAt, WriteJSON)
			// access with no lock in common with the abandoned injector —
			// and the decayed state merges back only when the run completes
			// normally, after every one of its goroutines has finished.
			runPlan := d.plan.Clone()
			inj := core.NewInjector(runPlan, copts)
			hook := func(t *Thread, site trace.SiteID, obj trace.ObjID, kind trace.Kind) {
				inj.Access(t.ex, site, obj, kind, 0)
			}
			if d.opts.ObjectRate < 1 {
				// Per-object admission wraps the hook only when active, so
				// the full-rate path stays literally the same code.
				inner := hook
				hook = func(t *Thread, site trace.SiteID, obj trace.ObjID, kind trace.Kind) {
					if admitObj(baseSeed, uint64(obj), d.opts.ObjectRate) {
						inner(t, site, obj, kind)
					}
				}
			}
			res = execRun(runSpec{
				label: s.Name, seed: seed, body: s.Body,
				access: hook, timeout: d.opts.RunTimeout, metrics: m,
			})
			stats = inj.Stats()
			d.phases.Detect += res.wallDur
			d.phases.DetectRuns++
			m.Span("phase.detect").Observe(res.wallDur)
			if !res.timedOut {
				d.plan.MergeFrom(runPlan)
			}
		}

		rep := core.RunReport{
			Run: run, Seed: seed, End: res.end,
			TimedOut: res.timedOut, Fault: res.fault, Stats: stats,
			WallStart: res.wallStart, WallDur: res.wallDur,
			SampledOut: sampledOut,
		}
		if res.fault == nil && !res.timedOut {
			rep.Err = res.err
		}
		switch {
		case res.fault != nil:
			rep.Outcome = core.RunFaultOther // refined below for NullRef faults
		case res.timedOut:
			rep.Outcome = core.RunTimedOut
		case rep.Err != nil:
			rep.Outcome = core.RunError
		}

		if res.fault != nil {
			var nre *memmodel.NullRefError
			if errors.As(res.fault.Err, &nre) {
				// Zero-false-positive contract (§5): a NullRef fault is
				// reported as a bug only when the run actually injected a
				// delay it could be a consequence of. A fault in a delay-free
				// run — the preparation run, or a detection run whose
				// injections all decayed or skipped — is the program failing
				// on its own; claiming it would be a false positive.
				if stats.Count > 0 {
					rep.Outcome = core.RunFaultBug
					var cands []core.Pair
					if d.plan != nil {
						cands = d.plan.PairsAt(nre.Site)
					}
					out.Bug = &core.BugReport{
						Program: s.Name, Tool: out.Tool,
						Run: run, Seed: seed,
						Fault: res.fault, NullRef: nre,
						Candidates: cands, Delays: stats,
					}
				} else {
					rep.Outcome = core.RunFaultDelayFree
					out.DelayFreeFaults = append(out.DelayFreeFaults, run)
				}
			}
			out.Runs = append(out.Runs, rep)
			out.TotalTime += sim.Duration(res.end)
			d.meterRun(out, &rep)
			return out
		}
		out.Runs = append(out.Runs, rep)
		out.TotalTime += sim.Duration(res.end)
		d.meterRun(out, &rep)
		prevRep = &out.Runs[len(out.Runs)-1]
		prevDetection = isDetection
	}
	return out
}

// liveSites counts plan sites whose probability is still above zero —
// the signal the adaptive controller's scale-to-zero policy reads.
// Returns -1 before the plan exists.
func (d *Detector) liveSites() int {
	if d.plan == nil {
		return -1
	}
	n := 0
	for _, p := range d.plan.Probs {
		if p > 0 {
			n++
		}
	}
	return n
}

// meterRun publishes one completed run to the detector's registry, using
// the same counter names and JSONL event shape as core.Session so a mixed
// sim+live campaign aggregates into one snapshot.
func (d *Detector) meterRun(out *core.Outcome, rep *core.RunReport) {
	m := d.opts.Metrics
	if m == nil {
		return
	}
	m.Counter("session.runs").Inc()
	switch rep.Outcome {
	case core.RunFaultBug:
		m.Counter("session.faults").Inc()
		m.Counter("session.bugs_exposed").Inc()
		m.Histogram("session.runs_to_exposure", obs.RunBuckets).Observe(int64(rep.Run))
	case core.RunFaultDelayFree:
		m.Counter("session.faults").Inc()
		m.Counter("session.delay_free_faults").Inc()
	case core.RunFaultOther:
		m.Counter("session.faults").Inc()
	case core.RunTimedOut:
		m.Counter("session.runs_timed_out").Inc()
	case core.RunError:
		m.Counter("session.run_errors").Inc()
	}
	m.EmitRun(obs.RunEvent{
		Program:    out.Program,
		Tool:       out.Tool,
		Run:        rep.Run,
		Seed:       rep.Seed,
		EndTicks:   int64(rep.End),
		Delays:     rep.Stats.Count,
		DelayTicks: int64(rep.Stats.Total),
		Skipped:    rep.Stats.Skipped,
		Outcome:    rep.Outcome.String(),
	})
}

// trackRate returns a stop function publishing wall-clock run throughput
// to the session.runs_per_sec gauge; a no-op without a registry.
func (d *Detector) trackRate(out *core.Outcome) func() {
	if d.opts.Metrics == nil {
		return func() {}
	}
	g := d.opts.Metrics.Gauge("session.runs_per_sec")
	t0 := time.Now()
	return func() {
		if el := time.Since(t0).Seconds(); el > 0 {
			g.Set(float64(len(out.Runs)) / el)
		}
	}
}

// Prepare performs only the delay-free preparation run and analysis,
// returning the resulting plan (nil if the run faulted or timed out).
// Useful for measuring the preparation phase in isolation and for the
// "prep alone does not expose" control runs.
func (d *Detector) Prepare(s Scenario, seed int64) (*core.Plan, *core.RunReport) {
	res := execRun(runSpec{
		label: s.Name, seed: seed, body: s.Body,
		access: recordAccess, recording: true,
		timeout: d.opts.RunTimeout, metrics: d.opts.Metrics,
	})
	d.phases.Prepare += res.wallDur
	d.phases.PrepRuns++
	rep := &core.RunReport{
		Run: 1, Seed: seed, End: res.end,
		TimedOut: res.timedOut, Fault: res.fault,
		WallStart: res.wallStart, WallDur: res.wallDur,
	}
	if res.fault == nil && !res.timedOut {
		rep.Err = res.err
	}
	if res.trace == nil || res.fault != nil {
		return nil, rep
	}
	t0 := time.Now()
	d.plan = core.Analyze(res.trace, d.opts.coreOptions())
	d.phases.Analyze += time.Since(t0)
	d.prep = res.trace
	d.phases.Events = len(res.trace.Events)
	d.phases.Pairs = len(d.plan.Pairs)
	return d.plan, rep
}
