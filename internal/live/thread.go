package live

import (
	"sync/atomic"
	"time"

	"waffle/internal/core"
	"waffle/internal/obs"
	"waffle/internal/sim"
	"waffle/internal/trace"
	"waffle/internal/vclock"
)

// Thread is a live goroutine participating in one run. Each Thread is
// owned by exactly one goroutine: scenario bodies receive their Thread as
// an argument and must not share it. The fork vector clock, the current-op
// label, and the event shard are all single-writer for that reason — the
// hot path records with no synchronization at all.
type Thread struct {
	rt    *runState
	id    int
	name  string
	clock *vclock.Clock

	// op labels the in-flight operation for fault reports.
	op string

	// events is this thread's chunked trace shard (preparation runs only):
	// single-writer, so the record hot path stays lock-free, and chunked, so
	// it never re-copies recorded history while the run is live.
	events trace.Shard

	// ex is the core.Exec view of this thread, built once to keep the
	// per-access hook call allocation-free.
	ex core.Exec

	// bex caches the budget-capped Exec the Monitor wraps around ex, for
	// the same reason: built on first use by the owning goroutine, then
	// reused for every later access of the request.
	bex core.Exec
}

func newThread(rt *runState, id int, name string) *Thread {
	t := &Thread{rt: rt, id: id, name: name, clock: vclock.New(id)}
	t.ex = execView{t}
	rt.register(t)
	return t
}

// ID returns the thread's id (the root thread is 1).
func (t *Thread) ID() int { return t.id }

// Name returns the thread's debugging label.
func (t *Thread) Name() string { return t.name }

// Sleep pauses the goroutine for a physical duration — application think
// time, as opposed to injected delays (which the engines issue themselves
// through the core.Exec seam).
func (t *Thread) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Elapsed reports the time since the run started.
func (t *Thread) Elapsed() time.Duration {
	return time.Duration(t.rt.now())
}

// Handle tracks a spawned thread until it finishes.
type Handle struct {
	t    *Thread
	done chan struct{}
}

// Join blocks until the spawned thread's body has returned (or panicked
// and been recovered into the run's fault).
func (h *Handle) Join() { <-h.done }

// Spawn launches body on a fresh goroutine as a child thread. The fork
// vector clocks propagate exactly as through the simulator's TLS fork
// hook: the child starts with a copy of the parent's clock plus its own
// (childID, 1) entry, and the parent's own counter is bumped so its
// subsequent events are concurrent with the child (§4.1).
func (t *Thread) Spawn(name string, body func(*Thread)) *Handle {
	rt := t.rt
	childID := int(rt.nextTID.Add(1))
	child := newThread(rt, childID, name)
	child.clock, t.clock = vclock.Fork(t.clock, childID)

	h := &Handle{t: child, done: make(chan struct{})}
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		defer close(h.done)
		defer rt.recoverFault(child)
		body(child)
	}()
	return h
}

// Join blocks until h's thread finishes — symmetric with the simulator's
// t.Join(handle) shape so scenario bodies port across runtimes.
func (t *Thread) Join(h *Handle) { h.Join() }

// execView adapts a Thread to core.Exec: one engine tick is one
// wall-clock nanosecond, Sleep is a real time.Sleep, and the random
// stream is the run's seeded source. It also implements core.ClockedExec
// so the online engine can read fork clocks without sim TLS.
type execView struct{ t *Thread }

func (e execView) ID() int       { return e.t.id }
func (e execView) Now() sim.Time { return e.t.rt.now() }

func (e execView) Sleep(d sim.Duration) {
	if d > 0 {
		time.Sleep(time.Duration(d))
	}
}

func (e execView) Rand() float64 { return e.t.rt.randFloat() }

// ForkClock implements core.ClockedExec.
func (e execView) ForkClock() *vclock.Clock { return e.t.clock }

// budgeted returns this thread's budget-capped Exec: identical to the
// plain view except that Sleep draws down the request-wide budget and
// truncates at zero. Cached on the thread (single-writer: only the owning
// goroutine calls this), so the per-access cost after the first call is
// one nil-check.
func (t *Thread) budgeted(left *atomic.Int64, trunc *obs.Counter) core.Exec {
	if t.bex == nil {
		t.bex = &budgetExec{t: t, left: left, trunc: trunc}
	}
	return t.bex
}

// budgetExec caps a request's total injected delay at its SLO budget. The
// budget is one atomic shared by every thread of the request: each
// injected Sleep CASes its length out of the remainder and sleeps only
// what it got; a Sleep arriving after exhaustion is skipped entirely.
// Truncations and skips are counted (live.truncated_delays) — they are
// the price of the overhead bound, visible in the status payload.
type budgetExec struct {
	t     *Thread
	left  *atomic.Int64
	trunc *obs.Counter
}

func (b *budgetExec) ID() int                  { return b.t.id }
func (b *budgetExec) Now() sim.Time            { return b.t.rt.now() }
func (b *budgetExec) Rand() float64            { return b.t.rt.randFloat() }
func (b *budgetExec) ForkClock() *vclock.Clock { return b.t.clock }

func (b *budgetExec) Sleep(d sim.Duration) {
	if d <= 0 {
		return
	}
	want := int64(d) // live ticks are nanoseconds
	for {
		cur := b.left.Load()
		if cur <= 0 {
			b.trunc.Inc()
			return
		}
		take := want
		if take > cur {
			take = cur
		}
		if b.left.CompareAndSwap(cur, cur-take) {
			if take < want {
				b.trunc.Inc()
			}
			time.Sleep(time.Duration(take))
			return
		}
	}
}
