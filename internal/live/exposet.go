package live

import (
	"testing"
	"time"

	"waffle/internal/core"
)

// ExposeT runs the full live pipeline against body inside a Go test: one
// delay-free preparation run, trace analysis, then up to runs-1 detection
// runs with real injected sleeps. If a MemOrder bug manifests the test
// fails with the bug report; the outcome is returned either way so tests
// can assert on runs, delays, or candidate counts.
//
// Use it as a concurrency regression gate:
//
//	func TestNoMemOrderBugs(t *testing.T) {
//	    live.ExposeT(t, func(root *live.Thread, h *live.Heap) {
//	        // spawn goroutines, Init/Use/Dispose refs ...
//	    }, 10)
//	}
//
// runs <= 0 uses the default run budget. Each run executes body afresh
// with a new Heap; allocate all refs inside body.
func ExposeT(tb testing.TB, body func(*Thread, *Heap), runs int) *core.Outcome {
	tb.Helper()
	d := NewDetector(Options{})
	out := d.Expose(Scenario{Name: tb.Name(), Body: body}, runs, 1)
	if out.Bug != nil {
		tb.Errorf("live: MemOrder bug exposed: %v\n  fault: %v\n  delays in exposing run: %d (%v total)",
			out.Bug, out.Bug.Fault.Err, out.Bug.Delays.Count, time.Duration(out.Bug.Delays.Total))
	}
	for _, err := range out.RunErrs() {
		tb.Errorf("live: %v", err)
	}
	if out.BaseErr != nil {
		tb.Logf("live: %v (overhead ratio unavailable)", out.BaseErr)
	}
	return out
}
