package live

import (
	"time"

	"waffle/internal/core"
	"waffle/internal/obs"
	"waffle/internal/sim"
)

// Live-mode defaults. Window, Alpha, and Decay keep the paper's values;
// MinDelay and RunTimeout are wall-clock choices: a simulated run can
// afford a 100 ms near-miss window because virtual time is free, and so
// can a live run — the window is an analysis parameter, not a cost.
const (
	DefaultWindow     = 100 * time.Millisecond
	DefaultAlpha      = 1.15
	DefaultDecay      = 0.1
	DefaultFixedDelay = 100 * time.Millisecond
	DefaultMinDelay   = 100 * time.Microsecond
	DefaultRunTimeout = 30 * time.Second
	DefaultMaxRuns    = 50
)

// Options configures a live Detector. All durations are physical
// time.Durations; they are converted to the engines' tick space (one tick
// = one nanosecond on the wall clock) internally. The zero value means
// live defaults.
type Options struct {
	// Window is the near-miss window δ applied to the recorded wall-clock
	// trace.
	Window time.Duration

	// Alpha scales observed gaps into injected delay lengths (§4.3).
	Alpha float64

	// Decay is the per-unproductive-delay probability decay λ (§4.4).
	Decay float64

	// FixedDelay substitutes for variable lengths when FixedDelays is set.
	FixedDelay time.Duration

	// FixedDelays disables §4.3's variable delay lengths (the Table 7
	// ablation) — every injection sleeps FixedDelay.
	FixedDelays bool

	// NoInterferenceControl disables §4.4's interference-aware skipping.
	NoInterferenceControl bool

	// MinDelay floors computed variable delays.
	MinDelay time.Duration

	// MaxRuns bounds Detector.Expose when its maxRuns argument is <= 0.
	MaxRuns int

	// AnalyzeWorkers shards trace analysis (core.AnalyzeParallel) across
	// this many workers; zero or one analyzes sequentially. The plan is
	// bit-identical either way.
	AnalyzeWorkers int

	// RunTimeout bounds each run's wall-clock time. A timed-out run leaks
	// its goroutines (Go cannot kill them); the detector records the run
	// as timed out and abandons its state: every shard is sealed so the
	// leaked writers' later events are dropped (counted by the
	// live.abandoned_events counter) instead of written into state the
	// detector has walked away from.
	RunTimeout time.Duration

	// SampleRate is the fraction of detection runs (requests, under the
	// Monitor) that execute instrumented; the rest run the plain body
	// uninstrumented and are marked RunReport.SampledOut. Admission is a
	// deterministic hash of (seed, run index) and never consumes injector
	// randomness, so 1.0 — the default, and the meaning of the zero value
	// — is bit-identical to an unsampled build. Values outside (0, 1] mean
	// 1.0.
	SampleRate float64

	// ObjectRate sub-samples objects within admitted runs: an accessed
	// object is instrumented only if its id passes a second deterministic
	// hash at this rate. 1.0 (and the zero value) instruments every
	// object.
	ObjectRate float64

	// SLO is the Monitor's overhead budget as a fraction of the baseline
	// p99 request latency: per admitted request, injected delays are
	// capped at SLO × p99(uninstrumented latency), so detection provably
	// cannot push the sampled p99 past (1 + SLO) × baseline p99 plus
	// scheduler noise. <= 0 disables the budget (unbounded injection).
	// Detector.Expose ignores SLO; it is enforced by the Monitor.
	SLO float64

	// Metrics receives campaign observability counters from the detector
	// and the engines it drives; the Registry's HTTP handler makes them
	// scrapeable mid-campaign. Nil disables all instrumentation.
	Metrics *obs.Registry

	// Tuner, when non-nil, is consulted at every run boundary exactly like
	// core.Session.Tuner: it can stop the search, shrink the budget, or
	// retune Alpha/Decay for subsequent runs. Retunes are race-free by
	// construction — each detection run's injector copies the options at
	// NewInjector, so goroutines leaked by a timed-out run keep the
	// options their run started with and never observe a retune.
	Tuner core.Tuner
}

// withDefaults fills unset fields with the live defaults.
func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	if o.Alpha <= 0 {
		o.Alpha = DefaultAlpha
	}
	if o.Decay <= 0 {
		o.Decay = DefaultDecay
	}
	if o.FixedDelay <= 0 {
		o.FixedDelay = DefaultFixedDelay
	}
	if o.MinDelay <= 0 {
		o.MinDelay = DefaultMinDelay
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = DefaultMaxRuns
	}
	if o.AnalyzeWorkers < 0 {
		o.AnalyzeWorkers = 0
	}
	if o.RunTimeout <= 0 {
		o.RunTimeout = DefaultRunTimeout
	}
	if o.SampleRate <= 0 || o.SampleRate > 1 {
		o.SampleRate = 1
	}
	if o.ObjectRate <= 0 || o.ObjectRate > 1 {
		o.ObjectRate = 1
	}
	return o
}

// coreOptions maps live options into the clock-agnostic engines' tick
// space. Every duration field is set explicitly — core's defaults are
// denominated in virtual microseconds and would be three orders of
// magnitude off here. Instrumentation and trace-logging costs are
// disabled (-1 → 0 in WithDefaults): on the wall clock the overhead of
// the hook is physical and needs no modeling.
func (o Options) coreOptions() core.Options {
	return core.Options{
		Window:                     sim.Duration(o.Window.Nanoseconds()),
		Alpha:                      o.Alpha,
		Decay:                      o.Decay,
		FixedDelay:                 sim.Duration(o.FixedDelay.Nanoseconds()),
		MinDelay:                   sim.Duration(o.MinDelay.Nanoseconds()),
		InstrCost:                  -1,
		TraceCost:                  -1,
		MaxDetectionRuns:           o.MaxRuns,
		AnalyzeWorkers:             o.AnalyzeWorkers,
		DisableCustomLengths:       o.FixedDelays,
		DisableInterferenceControl: o.NoInterferenceControl,
		Metrics:                    o.Metrics,
	}
}
