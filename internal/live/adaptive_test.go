package live

import (
	"sync/atomic"
	"testing"
	"time"

	"waffle/internal/core"
)

// escalatingTuner retunes Alpha/Decay at every boundary and records what
// it saw — the most hostile well-formed controller for race purposes.
type escalatingTuner struct {
	boundaries atomic.Int32
	stopAt     int
	shrinkTo   int
}

func (et *escalatingTuner) TuneRun(ctx core.TuneContext) core.TuneDecision {
	et.boundaries.Add(1)
	if et.stopAt > 0 && ctx.Run >= et.stopAt {
		return core.TuneDecision{Stop: true}
	}
	opts := ctx.Opts
	opts.Alpha *= 1.01
	opts.Decay *= 1.1
	d := core.TuneDecision{Opts: &opts}
	if et.shrinkTo > 0 {
		d.MaxRuns = et.shrinkTo
	}
	return d
}

// A stop decision ends the live search at the boundary, before the run
// it gates executes.
func TestLiveTunerStopEndsSearch(t *testing.T) {
	body := func(root *Thread, h *Heap) {
		r := h.NewRef("r")
		r.Init(root, "adapt.init")
		w := root.Spawn("w", func(th *Thread) {
			th.Sleep(100 * time.Microsecond)
			r.UseIfLive(th, "adapt.use")
		})
		root.Join(w)
	}
	et := &escalatingTuner{stopAt: 3}
	d := NewDetector(Options{RunTimeout: 5 * time.Second, Tuner: et})
	out := d.Expose(Scenario{Name: "adapt-stop", Body: body}, 10, 1)
	if len(out.Runs) != 2 {
		t.Fatalf("performed %d runs, want 2 (stopped before run 3)", len(out.Runs))
	}
	if et.boundaries.Load() != 3 {
		t.Fatalf("tuner consulted %d times, want 3", et.boundaries.Load())
	}
}

// A budget shrink bounds the live search like a smaller maxRuns argument.
func TestLiveTunerShrinksBudget(t *testing.T) {
	body := func(root *Thread, h *Heap) {
		r := h.NewRef("r")
		r.Init(root, "shrink.init")
		r.Use(root, "shrink.use")
	}
	d := NewDetector(Options{RunTimeout: 5 * time.Second, Tuner: &escalatingTuner{shrinkTo: 4}})
	out := d.Expose(Scenario{Name: "adapt-shrink", Body: body}, 20, 1)
	if len(out.Runs) != 4 {
		t.Fatalf("performed %d runs, want 4 after budget shrink", len(out.Runs))
	}
}

// Run-boundary retuning must not race goroutines leaked by a timed-out
// run. A timed-out detection run abandons its injector, but Go cannot
// kill its goroutines: they keep calling the abandoned injector — which
// captured its own copy of the options at NewInjector — while the
// detector applies the tuner's new options for the next run. With
// options shared by reference instead of copied, every boundary retune
// here would race the leaked workers' delay computations; under -race
// this test would fail. Modeled on TestTimedOutRunStatsAreRaceFreeSnapshots.
func TestRetuneDoesNotRaceLeakedGoroutines(t *testing.T) {
	var calls atomic.Int32
	release := make(chan struct{})
	defer close(release)
	body := func(root *Thread, h *Heap) {
		n := calls.Add(1) // 1 = baseline, 2 = preparation, 3+ = detection
		conn := h.NewRef("conn")
		conn.Init(root, "retune.Open")
		w := root.Spawn("worker", func(w *Thread) {
			w.Sleep(200 * time.Microsecond)
			conn.UseIfLive(w, "retune.worker.Send")
			if n < 3 {
				return
			}
			// Detection runs: outlive the run timeout and keep hitting the
			// instrumented site, so the leaked goroutine keeps exercising
			// the abandoned injector's options while the detector retunes
			// at each subsequent boundary.
			for {
				select {
				case <-release:
					return
				default:
					conn.UseIfLive(w, "retune.worker.Send")
					time.Sleep(50 * time.Microsecond)
				}
			}
		})
		root.Sleep(time.Millisecond)
		conn.Dispose(root, "retune.Close")
		root.Join(w)
	}

	// Near-zero decay keeps the leaked goroutines injecting for the whole
	// test; the escalating tuner retunes at every boundary in between.
	et := &escalatingTuner{}
	d := NewDetector(Options{RunTimeout: 25 * time.Millisecond, Decay: 1e-9, Tuner: et})
	out := d.Expose(Scenario{Name: "retune", Body: body}, 5, 1)
	if out.Bug != nil {
		t.Fatalf("guarded scenario exposed a bug: %v", out.Bug)
	}
	if et.boundaries.Load() < 3 {
		t.Fatalf("tuner consulted %d times, want >= 3", et.boundaries.Load())
	}
	// Hold the leaked goroutines alive past the last retune so the race
	// window stays open while the test tears down.
	time.Sleep(30 * time.Millisecond)
}
