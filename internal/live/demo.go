package live

import (
	"time"

	"waffle/internal/core"
)

// Demo is a built-in live scenario with a planted MemOrder bug, shared by
// the examples, cmd/waffle -live, and the live smoke tests. The timings
// are chosen so the natural order holds by a wide margin (tens of
// milliseconds — far above scheduler noise) while the analyzed gap stays
// inside the near-miss window, so only an injected delay flips the order.
type Demo struct {
	Name  string
	About string
	Kind  core.BugKind
	Scenario
}

// Demos lists the built-in live scenarios.
func Demos() []Demo {
	return []Demo{
		{
			Name: "disposer",
			About: "a worker goroutine sends on a connection " +
				"~5ms in; main disposes it at ~40ms. Delaying the worker's use " +
				"past the disposal faults.",
			Kind:     core.UseAfterFree,
			Scenario: Scenario{Name: "live/disposer", Body: disposerBody},
		},
		{
			Name: "lazyinit",
			About: "main loads a config ~5ms in; a reader " +
				"goroutine consumes it at ~40ms. Delaying the load past the " +
				"read faults.",
			Kind:     core.UseBeforeInit,
			Scenario: Scenario{Name: "live/lazyinit", Body: lazyInitBody},
		},
	}
}

// FindDemo looks a built-in demo up by name.
func FindDemo(name string) (Demo, bool) {
	for _, d := range Demos() {
		if d.Name == name {
			return d, true
		}
	}
	return Demo{}, false
}

// disposerBody plants a use-after-free: the worker's send races the main
// thread's dispose. Naturally the send wins by ~35ms; the analyzed pair
// delays the send site by 1.15x the observed gap, pushing it past the
// dispose.
func disposerBody(t *Thread, h *Heap) {
	conn := h.NewRef("conn")
	conn.Init(t, "disposer.Open")
	w := t.Spawn("worker", func(w *Thread) {
		w.Sleep(5 * time.Millisecond) // prepare the payload
		conn.Use(w, "disposer.worker.Send")
	})
	t.Sleep(40 * time.Millisecond) // serve for a while
	conn.Dispose(t, "disposer.Close")
	t.Join(w)
}

// lazyInitBody plants a use-before-init: a reader consumes a config the
// main thread initializes concurrently. Naturally the load wins by ~35ms;
// the analyzed pair delays the load site past the read.
func lazyInitBody(t *Thread, h *Heap) {
	cfg := h.NewRef("config")
	w := t.Spawn("reader", func(w *Thread) {
		w.Sleep(40 * time.Millisecond) // unrelated warm-up work
		cfg.Use(w, "lazyinit.reader.Get")
	})
	t.Sleep(5 * time.Millisecond)
	cfg.Init(t, "lazyinit.Load")
	t.Join(w)
}
