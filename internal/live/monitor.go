package live

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"waffle/internal/core"
	"waffle/internal/memmodel"
	"waffle/internal/obs"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// Monitor is the always-on deployment of the live pipeline: instead of a
// Detector looping one scenario to a run budget, a Monitor sits inside a
// serving process and treats each incoming request as one (potential) run
// against the per-path target it belongs to. Per ROADMAP item 4 and the
// paper's production framing (TSVD's always-on sampling, PAPER.md §5),
// three mechanisms keep it cheap enough to never turn off:
//
//   - Sampling admission (Options.SampleRate): only a deterministic-hash
//     fraction of requests run instrumented; the rest execute the plain
//     body and double as the baseline latency population.
//   - SLO delay budgets: each admitted request's injected delays are
//     capped at Options.SLO × p99(baseline latency), derived from the
//     live.base_latency_us histogram (saturating quantile — see
//     obs.HistView.Quantile), so injection provably cannot push the
//     sampled p99 past (1 + SLO) × baseline p99 plus scheduler noise.
//   - Streaming merge: recording requests stream their shards through the
//     lock-free chunk ring (see merger), so even the trace-building
//     request does a single sort at the end, not a stop-the-world merge.
//
// Per path, the Monitor runs the standard three-phase pipeline across
// requests: the first admitted request records (streaming) and analyzes
// into the path's plan; every later admitted request injects from a
// private plan clone and merges the decayed probabilities back on clean
// completion. The zero-false-positive contract is unchanged: a bug is
// reported only when a NULL-reference fault coincides with at least one
// injected delay.
//
// Stop and Start toggle detection without discarding state: plans, decay
// probabilities, and bug reports survive a stop/start cycle, so results
// collected before a stop remain consistent afterwards.
type Monitor struct {
	seed int64

	mu    sync.Mutex // guards opts/copts swaps and the targets map
	opts  Options
	copts core.Options

	targets map[string]*target

	enabled atomic.Bool
	seq     atomic.Int64 // request index: the sampling-admission stream
	budget  atomic.Int64 // per-request injected-delay budget, ns; 0 = none derived
	baseN   atomic.Int64 // baseline observations since the last budget refresh

	reg *obs.Registry

	// Instrument handles resolved once (the request path must not touch
	// the registry mutex).
	reqs, admitted, recorded, sampledOut *obs.Counter
	bugsCtr, dfFaults, truncated         *obs.Counter
	baseHist, sampHist                   *obs.Histogram
}

// target is one request path's detection state.
type target struct {
	path string

	mu   sync.Mutex
	plan *core.Plan
	prep *trace.Trace
	bugs []*core.BugReport

	recording atomic.Bool // claim flag: at most one recorder per path
	hasPlan   atomic.Bool // lock-free fast check on the request path
}

// budgetRefreshEvery is how many baseline observations elapse between
// p99-budget recomputations.
const budgetRefreshEvery = 64

// NewMonitor returns an enabled monitor. The seed drives sampling
// admission and per-request injector seeds. A nil Options.Metrics gets a
// private registry — the budget derivation needs the latency histograms
// regardless of whether anyone scrapes them.
func NewMonitor(seed int64, opts Options) *Monitor {
	opts = opts.withDefaults()
	if opts.Metrics == nil {
		opts.Metrics = obs.New()
	}
	m := &Monitor{
		seed:    seed,
		opts:    opts,
		copts:   opts.coreOptions(),
		targets: make(map[string]*target),
		reg:     opts.Metrics,
	}
	m.reqs = m.reg.Counter("live.requests")
	m.admitted = m.reg.Counter("live.requests_admitted")
	m.recorded = m.reg.Counter("live.requests_recorded")
	m.sampledOut = m.reg.Counter("live.requests_sampled_out")
	m.bugsCtr = m.reg.Counter("live.bugs_exposed")
	m.dfFaults = m.reg.Counter("live.delay_free_faults")
	m.truncated = m.reg.Counter("live.truncated_delays")
	m.baseHist = m.reg.Histogram("live.base_latency_us", obs.LatencyBuckets)
	m.sampHist = m.reg.Histogram("live.sampled_latency_us", obs.LatencyBuckets)
	m.enabled.Store(true)
	return m
}

// Metrics returns the monitor's registry (never nil).
func (m *Monitor) Metrics() *obs.Registry { return m.reg }

// RequestReport is the monitor's verdict on one request.
type RequestReport struct {
	Path       string
	Seq        int64
	Admitted   bool // ran instrumented (recording or injecting)
	Recorded   bool // this request produced the path's preparation trace
	SampledOut bool // enabled but not admitted by sampling
	Delays     int  // delays injected into this request
	Fault      *sim.Fault
	Bug        *core.BugReport
	Dur        time.Duration
}

// Failed reports whether the request's body faulted (the handler maps
// this to its error response).
func (r *RequestReport) Failed() bool { return r.Fault != nil }

// Do executes one request body under the monitor. Panics in the body are
// recovered into the report's Fault (the serving goroutine never sees
// them); whether the request records, injects, or runs plain is decided
// here per the pipeline phase and sampling admission.
func (m *Monitor) Do(path string, body func(*Thread, *Heap)) RequestReport {
	seq := m.seq.Add(1)
	m.reqs.Inc()
	m.mu.Lock()
	opts, copts := m.opts, m.copts
	m.mu.Unlock()

	if !m.enabled.Load() {
		return m.runPlain(path, seq, body, opts, false)
	}
	if !admitRun(m.seed, int(seq), opts.SampleRate) {
		m.sampledOut.Inc()
		return m.runPlain(path, seq, body, opts, true)
	}

	tgt := m.target(path)
	if !tgt.hasPlan.Load() {
		if tgt.recording.CompareAndSwap(false, true) {
			return m.runRecord(tgt, seq, body, opts, copts)
		}
		// Another request is recording this path right now; run plain
		// (and feed the baseline) rather than wait.
		return m.runPlain(path, seq, body, opts, false)
	}
	return m.runDetect(tgt, seq, body, opts, copts)
}

// target returns (or creates) the path's detection state.
func (m *Monitor) target(path string) *target {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.targets[path]
	if !ok {
		t = &target{path: path}
		m.targets[path] = t
	}
	return t
}

// runPlain executes the body uninstrumented and feeds the baseline
// latency histogram — the denominator of the SLO budget.
func (m *Monitor) runPlain(path string, seq int64, body func(*Thread, *Heap), opts Options, sampled bool) RequestReport {
	res := execRun(runSpec{
		label: path, seed: m.seed + seq, body: body,
		timeout: opts.RunTimeout, metrics: m.reg,
	})
	m.baseHist.Observe(res.wallDur.Microseconds())
	if m.baseN.Add(1)%budgetRefreshEvery == 0 {
		m.refreshBudget(opts.SLO)
	}
	rep := RequestReport{Path: path, Seq: seq, SampledOut: sampled, Fault: res.fault, Dur: res.wallDur}
	if res.fault != nil {
		m.noteDelayFreeFault(res.fault)
	}
	return rep
}

// runRecord executes the path's preparation run: record through the
// streaming merge, analyze, install the plan. The recording claim is
// always released; a faulted or timed-out recording yields no plan and
// the next admitted request tries again.
func (m *Monitor) runRecord(tgt *target, seq int64, body func(*Thread, *Heap), opts Options, copts core.Options) RequestReport {
	defer tgt.recording.Store(false)
	res := execRun(runSpec{
		label: tgt.path, seed: m.seed + seq, body: body,
		access: recordAccess, recording: true,
		timeout: opts.RunTimeout, metrics: m.reg,
	})
	m.sampHist.Observe(res.wallDur.Microseconds())
	m.admitted.Inc()
	rep := RequestReport{Path: tgt.path, Seq: seq, Admitted: true, Fault: res.fault, Dur: res.wallDur}
	if res.trace != nil && res.fault == nil && !res.timedOut {
		plan := core.Analyze(res.trace, copts)
		tgt.mu.Lock()
		tgt.plan, tgt.prep = plan, res.trace
		tgt.mu.Unlock()
		tgt.hasPlan.Store(true)
		m.recorded.Inc()
		rep.Recorded = true
	}
	if res.fault != nil {
		m.noteDelayFreeFault(res.fault)
	}
	return rep
}

// runDetect executes one injecting request against the path's plan. The
// injector works on a private clone (identical reasoning to
// Detector.Expose: a timed-out request's leaked goroutines keep decaying
// the clone, never the shared plan) and its delays flow through a
// budget-capped Exec so the request's total injected sleep cannot exceed
// the SLO budget.
func (m *Monitor) runDetect(tgt *target, seq int64, body func(*Thread, *Heap), opts Options, copts core.Options) RequestReport {
	// Run-boundary tuning, reusing the core.Tuner seam: the tuner can
	// retune Alpha/Decay for subsequent requests or stop detection
	// entirely (a Stop maps to Monitor.Stop — sampling admission keeps
	// running, injection ceases until Start).
	if opts.Tuner != nil {
		dec := opts.Tuner.TuneRun(core.TuneContext{
			Program: tgt.path, Tool: "waffle-live-monitor",
			Run: int(seq), MaxRuns: 0,
			LiveSites: tgt.liveSites(), Opts: copts, Retunable: true,
		})
		if dec.Opts != nil {
			m.mu.Lock()
			m.opts.Alpha, m.opts.Decay = dec.Opts.Alpha, dec.Opts.Decay
			m.copts = m.opts.coreOptions()
			copts = m.copts
			m.mu.Unlock()
		}
		if dec.Stop {
			m.enabled.Store(false)
			return m.runPlain(tgt.path, seq, body, opts, false)
		}
	}
	m.admitted.Inc()

	tgt.mu.Lock()
	runPlan := tgt.plan.Clone()
	tgt.mu.Unlock()
	inj := core.NewInjector(runPlan, copts)

	// The delay budget is shared by every goroutine of this request:
	// injected sleeps atomically draw it down and truncate at zero.
	var left atomic.Int64
	if b := m.budget.Load(); b > 0 && opts.SLO > 0 {
		left.Store(b)
	} else {
		left.Store(math.MaxInt64)
	}
	objRate, seed := opts.ObjectRate, m.seed
	trunc := m.truncated
	hook := func(t *Thread, site trace.SiteID, obj trace.ObjID, kind trace.Kind) {
		if objRate < 1 && !admitObj(seed, uint64(obj), objRate) {
			return
		}
		inj.Access(t.budgeted(&left, trunc), site, obj, kind, 0)
	}

	res := execRun(runSpec{
		label: tgt.path, seed: m.seed + seq, body: body,
		access: hook, timeout: opts.RunTimeout, metrics: m.reg,
	})
	stats := inj.Stats()
	m.sampHist.Observe(res.wallDur.Microseconds())
	if !res.timedOut {
		tgt.mu.Lock()
		tgt.plan.MergeFrom(runPlan)
		tgt.mu.Unlock()
	}

	rep := RequestReport{
		Path: tgt.path, Seq: seq, Admitted: true,
		Delays: stats.Count, Fault: res.fault, Dur: res.wallDur,
	}
	if res.fault != nil {
		var nre *memmodel.NullRefError
		if errors.As(res.fault.Err, &nre) && stats.Count > 0 {
			// Zero-false-positive contract: a NULL-reference fault is a
			// bug only when this request actually injected a delay it
			// could be a consequence of.
			bug := &core.BugReport{
				Program: tgt.path, Tool: "waffle-live-monitor",
				Run: int(seq), Seed: m.seed + seq,
				Fault: res.fault, NullRef: nre,
				Candidates: runPlan.PairsAt(nre.Site), Delays: stats,
			}
			tgt.mu.Lock()
			tgt.bugs = append(tgt.bugs, bug)
			tgt.mu.Unlock()
			m.bugsCtr.Inc()
			rep.Bug = bug
		} else {
			m.noteDelayFreeFault(res.fault)
		}
	}
	return rep
}

// noteDelayFreeFault counts a fault that manifested with no delays
// injected — the program failing on its own, never claimed as a bug.
func (m *Monitor) noteDelayFreeFault(f *sim.Fault) {
	var nre *memmodel.NullRefError
	if errors.As(f.Err, &nre) {
		m.dfFaults.Inc()
	}
}

// refreshBudget rederives the per-request delay budget from the baseline
// latency p99. The quantile saturates at the histogram's last finite
// bound rather than reporting +Inf (obs.HistView.Quantile), so the budget
// is always finite — an overflow-bucket p99 under-budgets instead of
// disabling the cap.
func (m *Monitor) refreshBudget(slo float64) {
	if slo <= 0 {
		m.budget.Store(0)
		return
	}
	p99us, ok := m.reg.Snapshot().HistogramQuantile("live.base_latency_us", 99)
	if !ok {
		return
	}
	ns := int64(slo * p99us * 1e3)
	if ns < int64(time.Millisecond) {
		// Floor: a sub-millisecond budget can't displace anything the
		// scheduler wouldn't, and early noisy p99 estimates would
		// otherwise strangle detection permanently.
		ns = int64(time.Millisecond)
	}
	m.budget.Store(ns)
	m.reg.Gauge("live.budget_ns").Set(float64(ns))
}

// BudgetNS returns the current per-request injected-delay budget in
// nanoseconds (0 before the first derivation or with SLO disabled).
func (m *Monitor) BudgetNS() int64 { return m.budget.Load() }

// Start enables detection. Plans, probabilities, and bug reports from
// before a Stop are retained — Start resumes, it does not reset.
func (m *Monitor) Start() { m.enabled.Store(true) }

// Stop disables detection: subsequent requests run plain (still feeding
// the baseline histogram) until Start. All per-path state is retained.
func (m *Monitor) Stop() { m.enabled.Store(false) }

// Enabled reports whether detection is on.
func (m *Monitor) Enabled() bool { return m.enabled.Load() }

// liveSites counts the target's plan sites with probability still above
// zero (-1 before the plan exists) — the TuneContext signal.
func (t *target) liveSites() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.plan == nil {
		return -1
	}
	n := 0
	for _, p := range t.plan.Probs {
		if p > 0 {
			n++
		}
	}
	return n
}

// TuneRequest is a partial options update applied by Tune; nil fields are
// left unchanged.
type TuneRequest struct {
	SampleRate *float64 `json:"sample_rate,omitempty"`
	ObjectRate *float64 `json:"object_rate,omitempty"`
	SLO        *float64 `json:"slo,omitempty"`
	Alpha      *float64 `json:"alpha,omitempty"`
	Decay      *float64 `json:"decay,omitempty"`
}

// Tune applies a partial retune. Validation is strict — an out-of-range
// field rejects the whole request and changes nothing. In-flight requests
// keep the options they started with (they copied them at entry; their
// injectors copied core options at NewInjector); the retune governs
// subsequent requests.
func (m *Monitor) Tune(req TuneRequest) error {
	check := func(name string, v *float64, lo, hi float64) error {
		if v != nil && (math.IsNaN(*v) || *v < lo || *v > hi) {
			return fmt.Errorf("live: %s %g out of range [%g, %g]", name, *v, lo, hi)
		}
		return nil
	}
	if err := errors.Join(
		check("sample_rate", req.SampleRate, 0, 1),
		check("object_rate", req.ObjectRate, 0, 1),
		check("slo", req.SLO, 0, 100),
		check("alpha", req.Alpha, 1, 1000),
		check("decay", req.Decay, 0, 1),
	); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if req.SampleRate != nil {
		m.opts.SampleRate = *req.SampleRate
	}
	if req.ObjectRate != nil {
		m.opts.ObjectRate = *req.ObjectRate
	}
	if req.SLO != nil {
		m.opts.SLO = *req.SLO
	}
	if req.Alpha != nil {
		m.opts.Alpha = *req.Alpha
	}
	if req.Decay != nil {
		m.opts.Decay = *req.Decay
	}
	m.copts = m.opts.coreOptions()
	if req.SLO != nil {
		go m.refreshBudget(*req.SLO) // off the lock; racing an in-flight refresh is benign
	}
	return nil
}

// Options returns a copy of the monitor's current options.
func (m *Monitor) Options() Options {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.opts
}

// Bugs returns every bug report collected so far, across all paths.
func (m *Monitor) Bugs() []*core.BugReport {
	m.mu.Lock()
	targets := make([]*target, 0, len(m.targets))
	for _, t := range m.targets {
		targets = append(targets, t)
	}
	m.mu.Unlock()
	var bugs []*core.BugReport
	for _, t := range targets {
		t.mu.Lock()
		bugs = append(bugs, t.bugs...)
		t.mu.Unlock()
	}
	return bugs
}

// TargetStatus is one path's entry in MonitorStatus.
type TargetStatus struct {
	Path  string `json:"path"`
	Phase string `json:"phase"` // awaiting-plan | recording | detecting
	Pairs int    `json:"pairs"` // candidate pairs in the plan
	Bugs  int    `json:"bugs"`
}

// MonitorStatus is the control plane's status payload.
type MonitorStatus struct {
	Enabled         bool           `json:"enabled"`
	SampleRate      float64        `json:"sample_rate"`
	ObjectRate      float64        `json:"object_rate"`
	SLO             float64        `json:"slo"`
	BudgetNS        int64          `json:"budget_ns"`
	Requests        int64          `json:"requests"`
	Admitted        int64          `json:"admitted"`
	Recorded        int64          `json:"recorded"`
	SampledOut      int64          `json:"sampled_out"`
	Bugs            int64          `json:"bugs"`
	DelayFreeFaults int64          `json:"delay_free_faults"`
	TruncatedDelays int64          `json:"truncated_delays"`
	AbandonedEvents int64          `json:"abandoned_events"`
	BaseP99US       float64        `json:"base_p99_us"`
	SampledP99US    float64        `json:"sampled_p99_us"`
	Targets         []TargetStatus `json:"targets"`
}

// Status snapshots the monitor for the control plane.
func (m *Monitor) Status() MonitorStatus {
	m.mu.Lock()
	opts := m.opts
	targets := make([]*target, 0, len(m.targets))
	for _, t := range m.targets {
		targets = append(targets, t)
	}
	m.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].path < targets[j].path })

	st := MonitorStatus{
		Enabled:         m.enabled.Load(),
		SampleRate:      opts.SampleRate,
		ObjectRate:      opts.ObjectRate,
		SLO:             opts.SLO,
		BudgetNS:        m.budget.Load(),
		Requests:        m.reqs.Value(),
		Admitted:        m.admitted.Value(),
		Recorded:        m.recorded.Value(),
		SampledOut:      m.sampledOut.Value(),
		Bugs:            m.bugsCtr.Value(),
		DelayFreeFaults: m.dfFaults.Value(),
		TruncatedDelays: m.truncated.Value(),
		AbandonedEvents: m.reg.Counter("live.abandoned_events").Value(),
	}
	snap := m.reg.Snapshot()
	st.BaseP99US, _ = snap.HistogramQuantile("live.base_latency_us", 99)
	st.SampledP99US, _ = snap.HistogramQuantile("live.sampled_latency_us", 99)
	for _, t := range targets {
		t.mu.Lock()
		ts := TargetStatus{Path: t.path, Bugs: len(t.bugs)}
		switch {
		case t.plan != nil:
			ts.Phase = "detecting"
			ts.Pairs = len(t.plan.Pairs)
		case t.recording.Load():
			ts.Phase = "recording"
		default:
			ts.Phase = "awaiting-plan"
		}
		t.mu.Unlock()
		st.Targets = append(st.Targets, ts)
	}
	return st
}
