package live

import (
	"sync/atomic"
	"testing"
	"time"

	"waffle/internal/obs"
)

// TestAbandonedRunSealsShards is the regression test for leaked-goroutine
// shard writes: a timed-out recording run leaks goroutines Go cannot
// kill, and before the fix they kept Appending to trace shards the
// detector had walked away from — with the streaming merge, straight into
// a merge pipeline nobody would ever read, and racing any later reader of
// that state. Abandonment must seal every shard: post-seal appends are
// dropped and counted by the live.abandoned_events counter. The scenario
// deliberately leaks a writer that hammers an instrumented site past the
// run budget; run under -race, the leaked writer and the abandoning
// detector share only the seal atomics.
func TestAbandonedRunSealsShards(t *testing.T) {
	var calls atomic.Int32
	release := make(chan struct{})
	defer close(release)
	body := func(root *Thread, h *Heap) {
		n := calls.Add(1) // 1 = baseline, 2 = preparation
		conn := h.NewRef("conn")
		conn.Init(root, "leak.Open")
		w := root.Spawn("writer", func(w *Thread) {
			if n < 2 {
				return // baseline completes cleanly
			}
			// Preparation run: outlive the run budget and keep recording,
			// so the leaked goroutine is still appending to its shard
			// when the detector abandons the run.
			for {
				select {
				case <-release:
					return
				default:
					conn.UseIfLive(w, "leak.writer.Poll")
					time.Sleep(50 * time.Microsecond)
				}
			}
		})
		root.Sleep(time.Millisecond)
		conn.UseIfLive(root, "leak.Check")
		root.Join(w)
	}

	m := obs.New()
	d := NewDetector(Options{RunTimeout: 20 * time.Millisecond, Metrics: m})
	out := d.Expose(Scenario{Name: "leak", Body: body}, 1, 1)

	if out.Bug != nil {
		t.Fatalf("guarded scenario exposed a bug: %v", out.Bug)
	}
	if len(out.Runs) != 1 || !out.Runs[0].TimedOut {
		t.Fatalf("runs = %+v, want one timed-out preparation run", out.Runs)
	}
	if d.Plan() != nil {
		t.Fatal("abandoned preparation run produced a plan")
	}

	// The leaked writer is still running; its appends must now be hitting
	// the sealed shard and landing in the abandonment counter.
	ctr := m.Counter("live.abandoned_events")
	deadline := time.Now().Add(5 * time.Second)
	for ctr.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := ctr.Value(); got == 0 {
		t.Fatal("live.abandoned_events stayed 0: leaked writer's post-abandonment appends were not dropped/counted")
	}
}
