package live

// Sampling admission: the always-on deployment story (ROADMAP item 4,
// mirroring TSVD's production sampling) instruments only a budgeted
// fraction of requests. Admission must satisfy three properties:
//
//  1. Deterministic in (seed, index): the same campaign replays the same
//     admission schedule, so a sampled run's report can name the exact
//     requests that were instrumented.
//  2. Independent of the injector's random stream: admission NEVER draws
//     from the run RNG, so a SampleRate of 1.0 is not merely "admits
//     everything" — it executes the exact same code path, RNG state and
//     all, as a build without sampling (property-tested in
//     sample_test.go).
//  3. Uniform: admitted indices are spread evenly, not clustered, so the
//     instrumented fraction of a load window converges to the rate.
//
// A splitmix64 hash of the (seed, index) pair provides all three: it is a
// stateless bijection with full avalanche, so consecutive indices map to
// independent-looking uniform points in [0, 1).

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap
// stateless bijection on uint64 with full avalanche.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashUnit maps (seed, index) to a uniform point in [0, 1).
func hashUnit(seed int64, index uint64) float64 {
	h := splitmix64(uint64(seed)*0x9e3779b97f4a7c15 ^ index)
	return float64(h>>11) / (1 << 53) // top 53 bits → [0,1) exactly
}

// admitRun decides whether run index `run` under `seed` is instrumented at
// `rate`. rate >= 1 admits unconditionally WITHOUT hashing — the rate-1.0
// path must be bit-identical to an unsampled build; rate <= 0 never
// admits.
func admitRun(seed int64, run int, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	return hashUnit(seed, uint64(run)) < rate
}

// admitObj decides whether object obj is instrumented within an admitted
// run — the second, finer admission layer: at high request rates even an
// admitted request may only afford instrumenting a fraction of its
// objects. Same contract as admitRun: rate >= 1 admits without hashing.
func admitObj(seed int64, obj uint64, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	// A different stream than admitRun's (obj indices and run indices
	// overlap numerically): offset the seed so the two hash families are
	// independent.
	return hashUnit(seed^0x5851f42d4c957f2d, obj) < rate
}
