package live

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"waffle/internal/core"
	"waffle/internal/memmodel"
	"waffle/internal/trace"
	"waffle/internal/vclock"
)

// TestDemosExposedWithinTenDetectionRuns is the live-mode acceptance
// criterion: each planted bug must be exposed by the detector within 10
// detection runs (11 runs total including preparation), with real
// goroutines and real injected sleeps, clean under -race.
func TestDemosExposedWithinTenDetectionRuns(t *testing.T) {
	for _, demo := range Demos() {
		demo := demo
		t.Run(demo.Name, func(t *testing.T) {
			t.Parallel()
			d := NewDetector(Options{RunTimeout: 10 * time.Second})
			out := d.Expose(demo.Scenario, 11, 42)
			if out.Bug == nil {
				t.Fatalf("%s: no bug exposed in %d runs", demo.Name, len(out.Runs))
			}
			if out.Bug.Run > 11 {
				t.Fatalf("%s: exposed in run %d, want <= 11", demo.Name, out.Bug.Run)
			}
			if got := out.Bug.Kind(); got != demo.Kind {
				t.Fatalf("%s: exposed %v, want %v", demo.Name, got, demo.Kind)
			}
			if out.Bug.Delays.Count == 0 {
				t.Fatalf("%s: bug attributed to a run with zero injected delays", demo.Name)
			}
			if len(out.Bug.Candidates) == 0 {
				t.Fatalf("%s: bug report carries no candidate pairs", demo.Name)
			}
		})
	}
}

// TestPrepAloneDoesNotExpose is the control half of the acceptance
// criterion: 20 delay-free preparation runs must complete without a
// fault — the bugs are ordering bugs that need active delays, not crashes
// the natural schedule produces.
func TestPrepAloneDoesNotExpose(t *testing.T) {
	for _, demo := range Demos() {
		demo := demo
		t.Run(demo.Name, func(t *testing.T) {
			t.Parallel()
			for i := 0; i < 20; i++ {
				d := NewDetector(Options{RunTimeout: 10 * time.Second})
				plan, rep := d.Prepare(demo.Scenario, int64(i))
				if rep.Fault != nil {
					t.Fatalf("prep repeat %d faulted: %v", i, rep.Fault.Err)
				}
				if rep.TimedOut {
					t.Fatalf("prep repeat %d timed out", i)
				}
				if plan == nil || len(plan.Pairs) == 0 {
					t.Fatalf("prep repeat %d produced no candidate pairs", i)
				}
			}
		})
	}
}

// TestDisposerPlanShape checks the analyzed plan end to end: exactly the
// planted use-after-free pair survives, the init→use pair is pruned by
// the fork clocks, and the delay length tracks the observed ~35ms gap.
func TestDisposerPlanShape(t *testing.T) {
	demo, _ := FindDemo("disposer")
	d := NewDetector(Options{})
	plan, rep := d.Prepare(demo.Scenario, 1)
	if rep.Fault != nil {
		t.Fatalf("prep faulted: %v", rep.Fault.Err)
	}
	if len(plan.Pairs) != 1 {
		t.Fatalf("plan has %d pairs, want 1 (init→use must be fork-clock pruned): %+v", len(plan.Pairs), plan.Pairs)
	}
	p := plan.Pairs[0]
	if p.Kind != core.UseAfterFree {
		t.Errorf("pair kind = %v, want use-after-free", p.Kind)
	}
	if p.Delay != "disposer.worker.Send" || p.Target != "disposer.Close" {
		t.Errorf("pair sites = %s → %s, want disposer.worker.Send → disposer.Close", p.Delay, p.Target)
	}
	gap := time.Duration(p.Gap)
	if gap < 10*time.Millisecond || gap > 90*time.Millisecond {
		t.Errorf("observed gap %v implausible for a ~35ms planted gap", gap)
	}
	if plan.Probs[p.Delay] != 1.0 {
		t.Errorf("fresh plan probability = %v, want 1.0", plan.Probs[p.Delay])
	}
}

// TestPrepTraceSorted checks the shard merge: wall-clock timestamps from
// concurrent goroutines come out time-sorted with dense Seq, as the
// analyzer and codec require.
func TestPrepTraceSorted(t *testing.T) {
	demo, _ := FindDemo("disposer")
	d := NewDetector(Options{})
	if _, rep := d.Prepare(demo.Scenario, 1); rep.Fault != nil {
		t.Fatalf("prep faulted: %v", rep.Fault.Err)
	}
	tr := d.PrepTrace()
	if tr == nil || len(tr.Events) != 3 {
		t.Fatalf("trace = %+v, want 3 events (init, use, dispose)", tr)
	}
	if !tr.TimeSorted() {
		t.Fatal("merged trace not time-sorted")
	}
	for i, ev := range tr.Events {
		if ev.Seq != i {
			t.Fatalf("event %d has Seq %d", i, ev.Seq)
		}
		if ev.Clock == nil {
			t.Fatalf("event %d has no fork clock", i)
		}
	}
}

// TestSpawnClockProtocol checks the copy-append-bump protocol across a
// real goroutine spawn: pre-fork parent events order before the child,
// post-fork parent events are concurrent with it.
func TestSpawnClockProtocol(t *testing.T) {
	var preFork, child, postFork *vclock.Clock
	res := runOnce("clocks", 1, func(root *Thread, h *Heap) {
		preFork = root.clock
		w := root.Spawn("w", func(w *Thread) {
			child = w.clock
		})
		postFork = root.clock
		w.Join()
	}, nil, false, time.Second)
	if res.fault != nil {
		t.Fatalf("run faulted: %v", res.fault.Err)
	}
	if !vclock.Ordered(preFork, child) {
		t.Errorf("pre-fork parent clock %v not ordered with child %v", preFork, child)
	}
	if !vclock.Concurrent(postFork, child) {
		t.Errorf("post-fork parent clock %v not concurrent with child %v", postFork, child)
	}
}

// TestOracle covers the lifecycle oracle against real goroutines: faults
// carry typed NullRefErrors, double-dispose resolves via CAS, and the
// guarded use does not fault.
func TestOracle(t *testing.T) {
	res := runOnce("uaf", 1, func(root *Thread, h *Heap) {
		r := h.NewRef("r")
		r.Init(root, "init")
		r.Dispose(root, "dispose")
		r.Use(root, "use")
	}, nil, false, time.Second)
	if res.fault == nil {
		t.Fatal("use after dispose did not fault")
	}
	nre, ok := res.fault.Err.(*memmodel.NullRefError)
	if !ok {
		t.Fatalf("fault error is %T, want *memmodel.NullRefError", res.fault.Err)
	}
	if nre.State != memmodel.StateDisposed || nre.Site != "use" {
		t.Errorf("fault = %+v, want disposed state at site use", nre)
	}

	res = runOnce("double-dispose", 1, func(root *Thread, h *Heap) {
		r := h.NewRef("r")
		r.Init(root, "init")
		r.Dispose(root, "d1")
		r.Dispose(root, "d2")
	}, nil, false, time.Second)
	if res.fault == nil {
		t.Fatal("double dispose did not fault")
	}

	res = runOnce("guarded", 1, func(root *Thread, h *Heap) {
		r := h.NewRef("r")
		if r.UseIfLive(root, "guarded") {
			t.Error("uninitialized ref reported live")
		}
	}, nil, false, time.Second)
	if res.fault != nil {
		t.Fatalf("guarded use faulted: %v", res.fault.Err)
	}
}

// TestNonLifecyclePanicBecomesFault checks that an arbitrary scenario
// panic (a genuine nil deref, say) surfaces as a run fault rather than
// crashing the test process — and does NOT become a BugReport.
func TestNonLifecyclePanicBecomesFault(t *testing.T) {
	d := NewDetector(Options{})
	out := d.Expose(Scenario{Name: "panicky", Body: func(root *Thread, h *Heap) {
		var m map[string]int
		m["boom"] = 1 // assignment to nil map: real runtime panic
	}}, 3, 1)
	if out.Bug != nil {
		t.Fatalf("non-lifecycle panic produced a BugReport: %v", out.Bug)
	}
	if len(out.Runs) == 0 || out.Runs[0].Fault == nil {
		t.Fatal("panic did not surface as a run fault")
	}
}

// TestRunTimeout checks that a stuck run is abandoned at its wall-clock
// budget and reported as timed out.
func TestRunTimeout(t *testing.T) {
	d := NewDetector(Options{RunTimeout: 50 * time.Millisecond})
	out := d.Expose(Scenario{Name: "stuck", Body: func(root *Thread, h *Heap) {
		time.Sleep(10 * time.Second)
	}, // leaks its goroutine by design
	}, 1, 1)
	if len(out.Runs) != 1 || !out.Runs[0].TimedOut {
		t.Fatalf("runs = %+v, want one timed-out run", out.Runs)
	}
}

// TestTimedOutDetectionRunIsolatesPlan is the regression test for the
// plan-isolation fix: a timed-out detection run leaks goroutines that
// keep calling the abandoned run's injector, decaying its plan's Probs
// under that injector's own mutex. Each detection run must therefore
// inject from a private plan clone — otherwise those leaked writes race
// with the next run's injector (a different mutex) on the shared map,
// which the race detector flags and which corrupts decay state. The
// scenario's detection runs outlive the run budget while hammering an
// instrumented site; the assertion is simply that two such runs back to
// back stay -race-clean and the detector's plan survives intact.
func TestTimedOutDetectionRunIsolatesPlan(t *testing.T) {
	var calls atomic.Int32
	release := make(chan struct{})
	defer close(release)
	body := func(root *Thread, h *Heap) {
		n := calls.Add(1) // 1 = baseline, 2 = preparation, 3+ = detection
		conn := h.NewRef("conn")
		conn.Init(root, "iso.Open")
		w := root.Spawn("worker", func(w *Thread) {
			w.Sleep(2 * time.Millisecond)
			conn.UseIfLive(w, "iso.worker.Send")
			if n < 3 {
				return
			}
			// Detection runs: outlive the run budget and keep hitting the
			// instrumented site, so the leaked goroutine drives the
			// abandoned injector while the detector is in later runs.
			for {
				select {
				case <-release:
					return
				default:
					conn.UseIfLive(w, "iso.worker.Send")
					time.Sleep(100 * time.Microsecond)
				}
			}
		})
		root.Sleep(8 * time.Millisecond)
		conn.Dispose(root, "iso.Close")
		root.Join(w)
	}

	d := NewDetector(Options{RunTimeout: 25 * time.Millisecond})
	out := d.Expose(Scenario{Name: "iso", Body: body}, 3, 1)
	if out.Bug != nil {
		t.Fatalf("guarded scenario exposed a bug: %v", out.Bug)
	}
	if len(out.Runs) != 3 || !out.Runs[1].TimedOut || !out.Runs[2].TimedOut {
		t.Fatalf("runs = %+v, want prep + two timed-out detection runs", out.Runs)
	}
	plan := d.Plan()
	if plan == nil || len(plan.Probs) == 0 {
		t.Fatal("detector lost its plan")
	}
	for site, p := range plan.Probs {
		if p < 0 || p > 1 {
			t.Errorf("plan probability for %s corrupted: %v", site, p)
		}
	}
}

// TestWallClockReporting checks the satellite: live runs stamp physical
// start time and duration into their RunReports, and run End is the
// nanosecond duration of the run.
func TestWallClockReporting(t *testing.T) {
	demo, _ := FindDemo("disposer")
	d := NewDetector(Options{})
	before := time.Now()
	out := d.Expose(demo.Scenario, 2, 1)
	after := time.Now()
	if len(out.Runs) == 0 {
		t.Fatal("no runs recorded")
	}
	for i, r := range out.Runs {
		if r.WallStart.Before(before) || r.WallStart.After(after) {
			t.Errorf("run %d WallStart %v outside [%v, %v]", i, r.WallStart, before, after)
		}
		if r.WallDur < 40*time.Millisecond {
			t.Errorf("run %d WallDur %v shorter than the scenario's 40ms floor", i, r.WallDur)
		}
		if got, want := time.Duration(r.End), r.WallDur; got > want+20*time.Millisecond || got < want-20*time.Millisecond {
			t.Errorf("run %d End %v disagrees with WallDur %v", i, got, want)
		}
	}
}

// TestExposeTCleanBody checks the test-helper entry point on a bug-free
// body: it must not fail the test and must perform the requested runs.
func TestExposeTCleanBody(t *testing.T) {
	out := ExposeT(t, func(root *Thread, h *Heap) {
		r := h.NewRef("r")
		r.Init(root, "init")
		w := root.Spawn("w", func(w *Thread) {
			r.Use(w, "use")
		})
		w.Join()
		r.Dispose(root, "dispose")
	}, 3)
	if out.Bug != nil {
		t.Fatalf("clean body exposed a bug: %v", out.Bug)
	}
	if len(out.Runs) != 3 {
		t.Fatalf("performed %d runs, want 3", len(out.Runs))
	}
}

// TestDetectionRecordsIntervals checks injector accounting on the wall
// clock: the exposing run's intervals are real sleeps at the planned
// site, clamped within the planned duration.
func TestDetectionRecordsIntervals(t *testing.T) {
	demo, _ := FindDemo("disposer")
	d := NewDetector(Options{})
	out := d.Expose(demo.Scenario, 11, 7)
	if out.Bug == nil {
		t.Fatal("no bug exposed")
	}
	ivs := out.Bug.Delays.Intervals
	if len(ivs) == 0 {
		t.Fatal("exposing run recorded no delay intervals")
	}
	for _, iv := range ivs {
		if iv.Site != "disposer.worker.Send" {
			t.Errorf("delay injected at %s, want disposer.worker.Send", iv.Site)
		}
		if dur := time.Duration(iv.Dur()); dur <= 0 || dur > 500*time.Millisecond {
			t.Errorf("interval duration %v implausible", dur)
		}
	}
}

// TestTraceRoundTripsThroughCodec checks that a live wall-clock trace
// survives the binary codec byte-for-byte semantically: analysis of the
// decoded trace yields the same plan as the original.
func TestTraceRoundTripsThroughCodec(t *testing.T) {
	demo, _ := FindDemo("disposer")
	d := NewDetector(Options{})
	plan, rep := d.Prepare(demo.Scenario, 1)
	if rep.Fault != nil {
		t.Fatalf("prep faulted: %v", rep.Fault.Err)
	}
	tr := d.PrepTrace()

	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatalf("encode live trace: %v", err)
	}
	back, err := trace.ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode live trace: %v", err)
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatalf("round trip lost events: %d != %d", len(back.Events), len(tr.Events))
	}
	for i := range tr.Events {
		if back.Events[i].T != tr.Events[i].T {
			t.Fatalf("event %d timestamp %d != %d after round trip", i, back.Events[i].T, tr.Events[i].T)
		}
	}
	plan2 := core.Analyze(back, NewDetector(Options{}).opts.coreOptions())
	if len(plan2.Pairs) != len(plan.Pairs) {
		t.Fatalf("decoded trace analyzed to %d pairs, want %d", len(plan2.Pairs), len(plan.Pairs))
	}
}
