package live

import (
	"sync/atomic"
	"testing"
	"time"

	"waffle/internal/core"
)

// The zero-false-positive contract (§5) on the wall clock: a NULL
// reference fault in a run that injected no delays — here the preparation
// run, which never injects — must not produce a BugReport. The fault is
// surfaced through RunReport.Fault, classified RunFaultDelayFree, and
// listed in Outcome.DelayFreeFaults.
func TestLiveDelayFreeFaultYieldsNoBugReport(t *testing.T) {
	body := func(root *Thread, h *Heap) {
		r := h.NewRef("cfg")
		w := root.Spawn("boot", func(th *Thread) {
			th.Sleep(time.Millisecond)
			r.Use(th, "zfp.boot.use") // never initialized: faults unaided
		})
		root.Join(w)
	}
	d := NewDetector(Options{RunTimeout: 5 * time.Second})
	out := d.Expose(Scenario{Name: "zfp", Body: body}, 4, 1)
	if out.Bug != nil {
		t.Fatalf("delay-free fault reported as a bug: %v", out.Bug)
	}
	if len(out.Runs) == 0 {
		t.Fatal("no runs recorded")
	}
	last := out.Runs[len(out.Runs)-1]
	if last.Fault == nil {
		t.Fatal("faulting run lost its Fault record")
	}
	if last.Stats.Count != 0 {
		t.Fatalf("run injected %d delays — scenario not delay-free", last.Stats.Count)
	}
	if last.Outcome != core.RunFaultDelayFree {
		t.Fatalf("run outcome = %v, want %v", last.Outcome, core.RunFaultDelayFree)
	}
	if len(out.DelayFreeFaults) != 1 || out.DelayFreeFaults[0] != last.Run {
		t.Fatalf("DelayFreeFaults = %v, want [%d]", out.DelayFreeFaults, last.Run)
	}
}

// The stats-aliasing regression: Injector.Stats used to return a shallow
// copy whose Intervals slice aliased the live backing array. A timed-out
// detection run leaks its goroutines (Go cannot kill them), and the leaked
// threads keep driving the abandoned injector — which keeps appending to
// that same array while the detector reads the captured copy. With the
// deep copy this passes under -race; with the shallow copy it is a data
// race and the copy can even surface intervals injected after the capture.
func TestTimedOutRunStatsAreRaceFreeSnapshots(t *testing.T) {
	var calls atomic.Int32
	release := make(chan struct{})
	defer close(release)
	body := func(root *Thread, h *Heap) {
		n := calls.Add(1) // 1 = baseline, 2 = preparation, 3+ = detection
		conn := h.NewRef("conn")
		conn.Init(root, "snap.Open")
		w := root.Spawn("worker", func(w *Thread) {
			w.Sleep(200 * time.Microsecond)
			conn.UseIfLive(w, "snap.worker.Send")
			if n < 3 {
				return
			}
			// Detection runs: outlive the run budget and keep hitting the
			// instrumented site, so the leaked goroutine keeps appending
			// intervals to the abandoned injector's stats while this test
			// reads the snapshots captured at timeout. The sub-millisecond
			// gap keeps each injected delay short, so dozens of intervals
			// accumulate before the timeout and the appends continue at a
			// high rate throughout the read window below.
			for {
				select {
				case <-release:
					return
				default:
					conn.UseIfLive(w, "snap.worker.Send")
					time.Sleep(50 * time.Microsecond)
				}
			}
		})
		root.Sleep(time.Millisecond)
		conn.Dispose(root, "snap.Close")
		root.Join(w)
	}

	// A near-zero decay keeps the leaked goroutines injecting (and thus
	// appending intervals) for the whole test instead of flooring the
	// site's probability after its first few delays.
	d := NewDetector(Options{RunTimeout: 25 * time.Millisecond, Decay: 1e-9})
	out := d.Expose(Scenario{Name: "snap", Body: body}, 3, 1)
	if out.Bug != nil {
		t.Fatalf("guarded scenario exposed a bug: %v", out.Bug)
	}

	// Work with every captured snapshot while the leaked goroutines are
	// still injecting. A snapshot must own its memory: reading it and
	// appending to it (the natural aggregation pattern) must neither trip
	// -race nor observe intervals injected after the capture. With the old
	// shallow copy the sentinel append below lands in the abandoned
	// injector's live backing array — the exact slot its next append
	// writes — which -race reports and which corrupts the sentinel.
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, rep := range out.Runs {
			if len(rep.Stats.Intervals) != rep.Stats.Count {
				t.Fatalf("run %d snapshot inconsistent: %d intervals, count %d",
					rep.Run, len(rep.Stats.Intervals), rep.Stats.Count)
			}
			ivs := append(rep.Stats.Intervals, core.Interval{Site: "snap.sentinel"})
			if got := ivs[len(ivs)-1].Site; got != "snap.sentinel" {
				t.Fatalf("run %d snapshot aliases live stats: sentinel overwritten with %q", rep.Run, got)
			}
		}
		time.Sleep(time.Millisecond)
	}
}
