package live

import (
	"fmt"
	"sync/atomic"

	"waffle/internal/memmodel"
	"waffle/internal/trace"
)

// Heap allocates live reference cells. Unlike memmodel.Heap it is shared
// between real goroutines, so allocation and lifecycle state use atomics;
// the instrumentation seam itself stays lock-free on the access path.
type Heap struct {
	rt     *runState
	nextID atomic.Int64
}

// NewRef allocates a reference cell in the nil state. Safe to call from
// any thread of the run.
func (h *Heap) NewRef(name string) *Ref {
	return &Ref{rt: h.rt, id: trace.ObjID(h.nextID.Add(1)), name: name}
}

// Ref is one heap reference cell shared between real goroutines. Its
// lifecycle state is an atomic so the oracle itself never introduces a
// data race under -race — the races it exposes are the scenario's
// ordering bugs, manifested as lifecycle faults, not memory races in the
// instrumentation.
type Ref struct {
	rt    *runState
	id    trace.ObjID
	name  string
	state atomic.Int32 // holds a memmodel.State
}

// ID returns the cell's object id.
func (r *Ref) ID() trace.ObjID { return r.id }

// Name returns the debugging label.
func (r *Ref) Name() string { return r.name }

// State returns the current lifecycle state.
func (r *Ref) State() memmodel.State { return memmodel.State(r.state.Load()) }

// IsLive reports whether the reference currently points to a live object.
func (r *Ref) IsLive() bool { return r.State() == memmodel.StateLive }

// enter runs the active hook in the accessing goroutine before the access
// executes — the same chokepoint memmodel.Ref.enter provides under the
// simulator. During preparation runs the hook records into t's shard;
// during detection runs it is the injector, and the goroutine really
// sleeps here.
func (r *Ref) enter(t *Thread, site trace.SiteID, kind trace.Kind) {
	t.op = fmt.Sprintf("%s %s @ %s", kind, r.name, site)
	if fn := r.rt.access; fn != nil {
		fn(t, site, r.id, kind)
	}
}

// throw raises the NULL-reference fault: the panic unwinds the goroutine
// to its recoverFault frame, which maps it to a sim.Fault — the live
// analog of sim.Thread.Throw.
func (r *Ref) throw(site trace.SiteID, kind trace.Kind, st memmodel.State) {
	panic(&memmodel.NullRefError{Obj: r.id, Name: r.name, Site: site, Kind: kind, State: st})
}

// Init executes an object initialization at site: nil (or disposed) → live.
func (r *Ref) Init(t *Thread, site trace.SiteID) {
	r.enter(t, site, trace.KindInit)
	r.state.Store(int32(memmodel.StateLive))
}

// Use executes a member access at site; a non-live reference faults —
// use-before-init when nil, use-after-free when disposed.
func (r *Ref) Use(t *Thread, site trace.SiteID) {
	r.enter(t, site, trace.KindUse)
	if st := r.State(); st != memmodel.StateLive {
		r.throw(site, trace.KindUse, st)
	}
}

// UseIfLive is the guarded variant: the access is still instrumented (and
// thus a candidate location), but a non-live reference returns false
// instead of faulting.
func (r *Ref) UseIfLive(t *Thread, site trace.SiteID) bool {
	r.enter(t, site, trace.KindUse)
	return r.IsLive()
}

// Dispose executes an object disposal at site. The live→disposed edge is
// a compare-and-swap: two goroutines racing to dispose resolve to exactly
// one winner, and the loser faults like a double-dispose.
func (r *Ref) Dispose(t *Thread, site trace.SiteID) {
	r.enter(t, site, trace.KindDispose)
	if !r.state.CompareAndSwap(int32(memmodel.StateLive), int32(memmodel.StateDisposed)) {
		r.throw(site, trace.KindDispose, r.State())
	}
}
