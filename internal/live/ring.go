package live

import (
	"sync"
	"sync/atomic"
	"time"

	"waffle/internal/trace"
)

// chunk is one sealed shard chunk in flight from a writer goroutine to the
// merger: the owning thread id plus the events, still in that thread's
// append order.
type chunk struct {
	tid int
	evs []trace.Event
}

// ringSize is the chunk ring capacity (must be a power of two). 256 slots
// of 1024-event chunks buffer ~256k events of merger lag before producers
// fall back to the spill path — far beyond what a recording run emits
// between two merger wakeups.
const ringSize = 256

// chunkRing is a bounded lock-free MPMC queue of chunks (Vyukov's array
// queue): each slot carries a sequence number that tickets producers and
// consumers, so a push and a pop touch only their own slot plus one shared
// cursor CAS each — no locks anywhere on the handoff path.
type chunkRing struct {
	slots [ringSize]ringSlot
	_     [64]byte // keep the cursors off the slots' cache lines
	enq   atomic.Uint64
	_     [64]byte // and off each other's
	deq   atomic.Uint64
}

type ringSlot struct {
	seq atomic.Uint64
	c   chunk
}

func newChunkRing() *chunkRing {
	r := &chunkRing{}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// push enqueues c, returning false when the ring is full (the producer
// then takes the spill path; it must NOT retry, or chunk order within its
// thread would invert).
func (r *chunkRing) push(c chunk) bool {
	pos := r.enq.Load()
	for {
		slot := &r.slots[pos&(ringSize-1)]
		dif := int64(slot.seq.Load()) - int64(pos)
		switch {
		case dif == 0: // slot free for this ticket
			if r.enq.CompareAndSwap(pos, pos+1) {
				slot.c = c
				slot.seq.Store(pos + 1) // publish
				return true
			}
			pos = r.enq.Load()
		case dif < 0: // consumer hasn't freed the slot: full
			return false
		default: // another producer took this ticket
			pos = r.enq.Load()
		}
	}
}

// pop dequeues the oldest chunk, returning ok == false when the ring is
// empty.
func (r *chunkRing) pop() (chunk, bool) {
	pos := r.deq.Load()
	for {
		slot := &r.slots[pos&(ringSize-1)]
		dif := int64(slot.seq.Load()) - int64(pos+1)
		switch {
		case dif == 0: // slot published for this ticket
			if r.deq.CompareAndSwap(pos, pos+1) {
				c := slot.c
				slot.c = chunk{} // release the events for GC
				slot.seq.Store(pos + ringSize)
				return c, true
			}
			pos = r.deq.Load()
		case dif < 0: // producer hasn't published yet: empty
			return chunk{}, false
		default: // another consumer took this ticket
			pos = r.deq.Load()
		}
	}
}

// merger is the continuous streaming merge of a recording run: shard
// writers hand sealed chunks through the lock-free ring, and one merger
// goroutine folds them into per-thread event sequences while the run is
// still executing. By the time the run joins, almost all of the merge work
// has already happened — finalization only flushes the partial tail
// chunks, drains whatever is left, and sorts.
//
// Ordering argument: within one thread, chunks are emitted in append order
// from a single goroutine, and both the ring (FIFO) and the spill list
// (append-order, and a spilled shard never returns to the ring) preserve
// that order per tid; the merger buckets strictly per tid, so each
// perTID[t] is exactly that thread's shard content in append order —
// identical to what a post-join batch AppendTo would have produced. The
// final stable sort by (T, TID) then reproduces the batch merge
// byte-for-byte.
type merger struct {
	ring *chunkRing

	perTID map[int][]trace.Event // merger-goroutine-owned until done closes

	spillMu sync.Mutex
	spill   []chunk

	closing atomic.Bool
	done    chan struct{}
}

func newMerger() *merger {
	m := &merger{
		ring:   newChunkRing(),
		perTID: make(map[int][]trace.Event),
		done:   make(chan struct{}),
	}
	go m.run()
	return m
}

// offer hands one chunk to the merger from a writer goroutine. spilled is
// the caller's per-shard sticky flag: once a shard's chunk misses the ring,
// every later chunk of that shard must also spill, or the merger could
// observe them out of append order.
func (m *merger) offer(c chunk, spilled *bool) {
	if !*spilled && m.ring.push(c) {
		return
	}
	*spilled = true
	m.spillMu.Lock()
	m.spill = append(m.spill, c)
	m.spillMu.Unlock()
}

// run is the merger goroutine: drain the ring into perTID until closed,
// then drain once more (entries can land between a failed pop and the
// closing check) and exit.
func (m *merger) run() {
	defer close(m.done)
	for {
		if c, ok := m.ring.pop(); ok {
			m.perTID[c.tid] = append(m.perTID[c.tid], c.evs...)
			continue
		}
		if m.closing.Load() {
			for {
				c, ok := m.ring.pop()
				if !ok {
					return
				}
				m.perTID[c.tid] = append(m.perTID[c.tid], c.evs...)
			}
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// stop shuts the merger down and waits for its goroutine to exit. After
// stop returns, perTID (plus the spill list) is safe to read from the
// caller's goroutine.
func (m *merger) stop() {
	m.closing.Store(true)
	<-m.done
}

// abandon shuts the merger down without waiting: the abandonment path of a
// timed-out run must not block on anything, and the merger goroutine will
// observe the flag and exit on its own. Chunks still offered by leaked
// writers after this land in the spill list (or a dead ring) and are
// simply garbage-collected with the run state.
func (m *merger) abandon() { m.closing.Store(true) }

// collected returns the merged per-thread sequences after stop: ring
// deliveries first (all of them arrived before any spill for a given tid —
// the spill flag is sticky), then the spilled chunks in emission order.
func (m *merger) collected() map[int][]trace.Event {
	m.spillMu.Lock()
	spill := m.spill
	m.spill = nil
	m.spillMu.Unlock()
	for _, c := range spill {
		m.perTID[c.tid] = append(m.perTID[c.tid], c.evs...)
	}
	return m.perTID
}
