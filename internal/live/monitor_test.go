package live

import (
	"testing"
	"time"
)

// plantedUAF is a fast live-disposer body: the worker's use naturally
// beats the dispose by ~8ms; an injected delay at the use site flips the
// order into a use-after-free.
func plantedUAF(t *Thread, h *Heap) {
	conn := h.NewRef("conn")
	conn.Init(t, "mon.Open")
	w := t.Spawn("worker", func(w *Thread) {
		w.Sleep(2 * time.Millisecond)
		conn.Use(w, "mon.worker.Send")
	})
	t.Sleep(10 * time.Millisecond)
	conn.Dispose(t, "mon.Close")
	t.Join(w)
}

// cleanBody has the same shape with a guarded use: instrumented, never
// faulting — the false-positive control.
func cleanBody(t *Thread, h *Heap) {
	conn := h.NewRef("conn")
	conn.Init(t, "clean.Open")
	w := t.Spawn("worker", func(w *Thread) {
		w.Sleep(time.Millisecond)
		conn.UseIfLive(w, "clean.worker.Send")
	})
	t.Sleep(3 * time.Millisecond)
	conn.Dispose(t, "clean.Close")
	t.Join(w)
}

func TestMonitorExposesPlantedBug(t *testing.T) {
	mon := NewMonitor(11, Options{SampleRate: 1.0})

	var bug RequestReport
	recorded := false
	for i := 0; i < 120; i++ {
		rep := mon.Do("/checkout", plantedUAF)
		recorded = recorded || rep.Recorded
		if rep.Bug != nil {
			bug = rep
			break
		}
	}
	if bug.Bug == nil {
		t.Fatal("monitor never exposed the planted use-after-free")
	}
	if !recorded {
		t.Fatal("no request was marked Recorded")
	}
	if bug.Bug.Delays.Count == 0 {
		t.Fatal("bug reported without injected delays (zero-FP contract)")
	}
	if bug.Bug.NullRef == nil || bug.Bug.NullRef.Site != "mon.worker.Send" {
		t.Fatalf("bug at %+v, want the planted use site", bug.Bug.NullRef)
	}

	st := mon.Status()
	if st.Bugs != 1 || len(st.Targets) != 1 || st.Targets[0].Phase != "detecting" {
		t.Fatalf("status = %+v", st)
	}
	if got := mon.Bugs(); len(got) != 1 {
		t.Fatalf("Bugs() returned %d reports, want 1", len(got))
	}
}

func TestMonitorNoFalsePositives(t *testing.T) {
	mon := NewMonitor(3, Options{SampleRate: 1.0})
	for i := 0; i < 40; i++ {
		rep := mon.Do("/browse", cleanBody)
		if rep.Bug != nil {
			t.Fatalf("clean body produced a bug report on request %d: %+v", i, rep.Bug)
		}
		if rep.Fault != nil {
			t.Fatalf("clean body faulted on request %d: %v", i, rep.Fault)
		}
	}
}

// Stop/start mid-stream: detection pauses (requests run plain), state is
// retained, and results from before the stop stay consistent after the
// restart — the acceptance criterion of the load-smoke e2e, pinned here
// at unit scope.
func TestMonitorStopStartRetainsState(t *testing.T) {
	mon := NewMonitor(11, Options{SampleRate: 1.0})
	var exposed bool
	for i := 0; i < 120 && !exposed; i++ {
		exposed = mon.Do("/checkout", plantedUAF).Bug != nil
	}
	if !exposed {
		t.Fatal("setup: bug not exposed before stop")
	}
	bugsBefore := len(mon.Bugs())
	pairsBefore := mon.Status().Targets[0].Pairs

	mon.Stop()
	if mon.Enabled() {
		t.Fatal("Enabled() after Stop")
	}
	for i := 0; i < 10; i++ {
		rep := mon.Do("/checkout", plantedUAF)
		if rep.Admitted || rep.Bug != nil || rep.Fault != nil {
			t.Fatalf("stopped monitor still detecting: %+v", rep)
		}
	}
	if len(mon.Bugs()) != bugsBefore {
		t.Fatal("stop lost bug reports")
	}

	mon.Start()
	st := mon.Status()
	if !st.Enabled || st.Bugs != int64(bugsBefore) || st.Targets[0].Pairs != pairsBefore {
		t.Fatalf("state not retained across stop/start: %+v", st)
	}
	// The plan survived: the next admitted request goes straight to
	// detection, no re-recording.
	rep := mon.Do("/checkout", plantedUAF)
	if rep.Recorded {
		t.Fatal("restart re-recorded instead of resuming the existing plan")
	}
	if !rep.Admitted {
		t.Fatal("restarted monitor did not admit at SampleRate=1.0")
	}
}

func TestMonitorTuneValidation(t *testing.T) {
	mon := NewMonitor(1, Options{})
	f := func(v float64) *float64 { return &v }

	for _, bad := range []TuneRequest{
		{SampleRate: f(-0.1)},
		{SampleRate: f(1.5)},
		{Alpha: f(0.5)},
		{Decay: f(2)},
		{SLO: f(-1)},
	} {
		if err := mon.Tune(bad); err == nil {
			t.Fatalf("Tune(%+v) accepted an out-of-range value", bad)
		}
	}
	before := mon.Options()
	if err := mon.Tune(TuneRequest{SampleRate: f(0.5), Alpha: f(2.0), Decay: f(0.2), SLO: f(1.0)}); err != nil {
		t.Fatal(err)
	}
	after := mon.Options()
	if after.SampleRate != 0.5 || after.Alpha != 2.0 || after.Decay != 0.2 || after.SLO != 1.0 {
		t.Fatalf("tune not applied: %+v", after)
	}
	if before.SampleRate == after.SampleRate {
		t.Fatal("options copy aliasing: before-snapshot changed")
	}
	// A rejected request changes nothing.
	if err := mon.Tune(TuneRequest{SampleRate: f(0.9), Alpha: f(-3)}); err == nil {
		t.Fatal("partial-invalid request accepted")
	}
	if got := mon.Options().SampleRate; got != 0.5 {
		t.Fatalf("rejected request partially applied: sample_rate = %g", got)
	}
}

// The SLO budget derives from the baseline p99: after enough
// uninstrumented requests, the budget is finite and positive, and an
// admitted request's injected delays never exceed it.
func TestMonitorBudgetDerivation(t *testing.T) {
	mon := NewMonitor(5, Options{SampleRate: 0.25, SLO: 1.0})
	for i := 0; i < 3*budgetRefreshEvery; i++ {
		mon.Do("/browse", cleanBody)
	}
	b := mon.BudgetNS()
	if b <= 0 {
		t.Fatal("budget never derived from the baseline histogram")
	}
	// Baseline p99 for cleanBody is ~3-4ms; at SLO 1.0 the budget must be
	// in the same range — far below a second.
	if b > int64(time.Second) {
		t.Fatalf("budget %v implausibly large", time.Duration(b))
	}
	st := mon.Status()
	if st.BudgetNS != b || st.BaseP99US <= 0 {
		t.Fatalf("status budget fields inconsistent: %+v", st)
	}
}
