// Package live runs the WAFFLE pipeline against real goroutines on the
// monotonic wall clock — the counterpart of the virtual-time simulator in
// internal/sim, and the first runtime in this repository where the
// detector's latencies are physical rather than simulated.
//
// The paper's tool instruments real C# applications and injects delays as
// actual Thread.Sleep calls on physical time; everything else in this
// repository replaces that physical substrate with a deterministic
// virtual-time world. This package closes the gap: a live Scenario body
// spawns real goroutines via Thread.Spawn, performs instrumented heap
// operations (Ref.Init / Use / Dispose) against a lock-free-on-the-hot-path
// Heap, and a Detector drives the same three-phase pipeline as the
// simulator — a delay-free preparation run recorded into the standard
// trace model, offline analysis via core.Analyze (sharded when configured),
// then repeated detection runs where core.Injector issues real time.Sleep
// delays gated by the interference counters and decaying probabilities.
//
// Differences from the simulator, by construction:
//
//   - One engine tick is one wall-clock nanosecond (the simulator's is one
//     virtual microsecond). Timestamps are monotonic nanoseconds since run
//     start; the physical start time is reported in RunReport.WallStart.
//   - Runs are nondeterministic: a seed drives only the injector's random
//     stream, not goroutine scheduling. Exposure is therefore
//     probabilistic per run — exactly the paper's setting — while reports
//     remain zero-false-positive: a bug is reported only when the program
//     actually raises a NULL-reference fault.
//   - Fork vector clocks propagate through Spawn by explicit
//     vclock.Fork calls (there is no TLS to ride), giving the same
//     parent-child pruning as the simulator.
//   - The bug oracle is panic/recover: lifecycle violations panic with
//     *memmodel.NullRefError, and any goroutine panic (including genuine
//     nil dereferences in scenario code) is recovered, mapped to a
//     sim.Fault, and — for NULL-reference faults — to a core.BugReport.
package live

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"waffle/internal/obs"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// accessFn is the live instrumentation seam: the per-run hook invoked in
// the accessing goroutine before the access executes.
type accessFn func(t *Thread, site trace.SiteID, obj trace.ObjID, kind trace.Kind)

// runState is the shared state of one live run: the clock anchor, the
// seeded random stream, the active hook, the fault slot, and the thread
// registry whose per-thread event shards become the preparation trace.
type runState struct {
	label string
	start time.Time // run start; monotonic anchor for now()

	access    accessFn // nil for uninstrumented baseline runs
	recording bool     // preparation run: threads buffer event shards

	// merge streams sealed shard chunks into per-thread sequences while
	// the run executes; non-nil only on recording runs.
	merge *merger

	// abandonedCtr counts events dropped after abandonment (the
	// live.abandoned_events counter); resolved once so leaked goroutines
	// never touch the registry's mutex. Nil-safe.
	abandonedCtr *obs.Counter

	// abandoned marks a timed-out, walked-away-from run: threads
	// registered after the fence seal their shards immediately.
	abandoned atomic.Bool

	rngMu sync.Mutex
	rng   *rand.Rand

	faultMu sync.Mutex
	fault   *sim.Fault

	nextTID atomic.Int64
	wg      sync.WaitGroup // every spawned goroutine

	threadMu sync.Mutex
	threads  []*Thread
}

func newRunState(spec runSpec) *runState {
	rt := &runState{
		label:        spec.label,
		start:        time.Now(),
		access:       spec.access,
		recording:    spec.recording,
		abandonedCtr: spec.metrics.Counter("live.abandoned_events"),
		rng:          rand.New(rand.NewSource(spec.seed)),
	}
	if spec.recording {
		rt.merge = newMerger()
	}
	return rt
}

// now reads the run clock: monotonic nanoseconds since run start.
func (rt *runState) now() sim.Time {
	return sim.Time(time.Since(rt.start).Nanoseconds())
}

// rand draws from the run's seeded stream. Threads share one stream under
// a mutex: the draw order is scheduling-dependent, which is fine — on real
// time the seed parameterizes the search, it does not replay it.
func (rt *runState) randFloat() float64 {
	rt.rngMu.Lock()
	defer rt.rngMu.Unlock()
	return rt.rng.Float64()
}

// register adds a thread to the run's registry and wires its shard into
// the streaming merge (recording runs). A thread registered after the run
// was abandoned — a leaked goroutine spawning — starts sealed: its events
// would never be collected, so they are dropped and counted instead of
// buffered forever.
func (rt *runState) register(t *Thread) {
	if rt.recording {
		t.events.OnDrop = rt.abandonedCtr.Inc
		if rt.merge != nil {
			spilled := false
			tid, mg := t.id, rt.merge
			t.events.OnChunk = func(c []trace.Event) {
				mg.offer(chunk{tid: tid, evs: c}, &spilled)
			}
		}
	}
	rt.threadMu.Lock()
	rt.threads = append(rt.threads, t)
	rt.threadMu.Unlock()
	// Checked after the registry append: a concurrent abandon either sees
	// this thread in the list and seals it there, or set the flag first
	// and it is sealed here — no interleaving leaves it unsealed.
	if rt.abandoned.Load() {
		t.events.Seal()
	}
}

// abandon fences off a timed-out run the detector is walking away from:
// every registered shard is sealed (leaked writers' later appends are
// dropped and counted via live.abandoned_events), and the merger — whose
// output no one will read — is told to exit. Never blocks: it runs on the
// detector's goroutine while the run's goroutines are still live.
func (rt *runState) abandon() {
	rt.abandoned.Store(true)
	rt.threadMu.Lock()
	threads := rt.threads
	rt.threadMu.Unlock()
	for _, t := range threads {
		t.events.Seal()
	}
	if rt.merge != nil {
		rt.merge.abandon()
	}
}

// recoverFault converts a goroutine panic into the run's fault, keeping
// the first one — the same "unhandled exception ends the run" semantics
// the simulator implements, via recover instead of a scheduler.
func (rt *runState) recoverFault(t *Thread) {
	r := recover()
	if r == nil {
		return
	}
	err, ok := r.(error)
	if !ok {
		err = fmt.Errorf("panic: %v", r)
	}
	rt.faultMu.Lock()
	if rt.fault == nil {
		rt.fault = &sim.Fault{
			Err:    err,
			Thread: t.id,
			Name:   t.name,
			T:      rt.now(),
			Op:     t.op,
			Stacks: []string{fmt.Sprintf("%s@%s", t.name, t.op)},
		}
	}
	rt.faultMu.Unlock()
}

// collectTrace finalizes the streaming merge into one time-sorted trace.
// While the run executed, shard writers emitted every filled chunk through
// the lock-free ring to the merger goroutine, which folded them into
// per-thread sequences concurrently with the run — the continuous
// counterpart of the old post-join batch merge. Here, strictly after every
// shard writer has finished, the partial tail chunks are flushed, the
// merger is stopped and drained, and the per-thread sequences (in thread
// registration order, exactly as the batch AppendTo loop walked them) are
// stably sorted into the analyzer's global order.
func (rt *runState) collectTrace(seed int64, end sim.Time) *trace.Trace {
	rt.threadMu.Lock()
	threads := rt.threads
	rt.threadMu.Unlock()
	var evs []trace.Event
	if rt.merge != nil {
		for _, t := range threads {
			t.events.Flush() // writers joined: the tail chunk is safe to emit
		}
		rt.merge.stop()
		perTID := rt.merge.collected()
		for _, t := range threads {
			evs = append(evs, perTID[t.id]...)
		}
	} else {
		for _, t := range threads {
			evs = t.events.AppendTo(evs)
		}
	}
	// The analyzer requires nondecreasing timestamps; shards are merged by
	// wall-clock stamp with thread id as the (stable) tiebreaker.
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].T != evs[j].T {
			return evs[i].T < evs[j].T
		}
		return evs[i].TID < evs[j].TID
	})
	for i := range evs {
		evs[i].Seq = i
	}
	return &trace.Trace{Label: rt.label, Seed: seed, End: end, Events: evs}
}

// errRunTimeout marks a run that exceeded Options.RunTimeout.
var errRunTimeout = fmt.Errorf("live: run exceeded its wall-clock budget")

// runResult is the outcome of one live run.
type runResult struct {
	end       sim.Time   // run duration in nanosecond ticks
	fault     *sim.Fault // first goroutine panic, if any
	timedOut  bool       // run exceeded its wall-clock budget
	err       error      // abnormal termination without a fault
	wallStart time.Time  // physical start time
	wallDur   time.Duration
	trace     *trace.Trace // recorded trace (preparation runs only)
}

// runSpec parameterizes one live run.
type runSpec struct {
	label     string
	seed      int64
	body      func(*Thread, *Heap)
	access    accessFn      // nil for uninstrumented runs
	recording bool          // stream event shards into a preparation trace
	timeout   time.Duration // wall-clock budget; <= 0 means DefaultRunTimeout
	metrics   *obs.Registry // abandonment accounting; nil disables
}

// runOnce executes one live run with the positional signature the package
// has always had; execRun is the full-spec form.
func runOnce(label string, seed int64, body func(*Thread, *Heap), access accessFn, recording bool, timeout time.Duration) runResult {
	return execRun(runSpec{
		label: label, seed: seed, body: body,
		access: access, recording: recording, timeout: timeout,
	})
}

// execRun executes one live run: the root body on a fresh goroutine plus
// everything it spawns, bounded by the spec's timeout. A timed-out run
// leaks its goroutines — they cannot be killed in Go — so its state is
// abandoned: every shard is sealed (later appends from leaked writers are
// dropped and counted, never merged) and no trace is collected.
func execRun(spec runSpec) runResult {
	rt := newRunState(spec)
	root := newThread(rt, int(rt.nextTID.Add(1)), "main")
	heap := &Heap{rt: rt}

	done := make(chan struct{})
	go func() {
		defer close(done)
		defer rt.wg.Wait()
		defer rt.recoverFault(root)
		spec.body(root, heap)
	}()

	timeout := spec.timeout
	if timeout <= 0 {
		timeout = DefaultRunTimeout
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		rt.abandon()
		return runResult{
			end: rt.now(), timedOut: true, err: errRunTimeout,
			wallStart: rt.start, wallDur: time.Since(rt.start),
		}
	}

	end := rt.now()
	res := runResult{
		end:       end,
		fault:     rt.fault,
		wallStart: rt.start,
		wallDur:   time.Since(rt.start),
	}
	if spec.recording {
		res.trace = rt.collectTrace(spec.seed, end)
	}
	return res
}
