package live

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// Sampling admission property tests. The load-bearing invariant is that
// SampleRate = 1.0 is not merely "admits every run" but the SAME code
// path as an unsampled build: admitRun returns before hashing, the
// detector's switch takes the identical branch with the identical hook,
// and no RNG state is touched — so schedules, plans, and bug reports are
// byte-identical by construction. (A literal byte-comparison of two live
// executions is impossible — wall-clock scheduling is nondeterministic
// between ANY two runs, sampled or not — so the test pins the property
// at the seams that feed the execution instead.)
func TestAdmitRunProperties(t *testing.T) {
	// Rate 1 admits everything; rate 0 admits nothing; for any rate the
	// decision is a pure function of (seed, run).
	if err := quick.Check(func(seed int64, run int) bool {
		if run < 0 {
			run = -run
		}
		return admitRun(seed, run, 1.0) &&
			!admitRun(seed, run, 0) &&
			!admitRun(seed, run, -0.5) &&
			admitRun(seed, run, 1.5) && // >1 clamps to always-admit
			admitRun(seed, run, 0.25) == admitRun(seed, run, 0.25)
	}, nil); err != nil {
		t.Fatal(err)
	}

	// Object admission has the same contract on its own hash family.
	if err := quick.Check(func(seed int64, obj uint64) bool {
		return admitObj(seed, obj, 1.0) &&
			!admitObj(seed, obj, 0) &&
			admitObj(seed, obj, 0.5) == admitObj(seed, obj, 0.5)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// The admitted fraction converges to the rate: splitmix64 admission is
// uniform, not clustered, so a load window's instrumented share tracks
// SampleRate.
func TestAdmitRunFraction(t *testing.T) {
	for _, rate := range []float64{0.1, 0.25, 0.5, 0.9} {
		for _, seed := range []int64{1, 42, -7, 1 << 40} {
			admitted := 0
			const n = 20000
			for run := 1; run <= n; run++ {
				if admitRun(seed, run, rate) {
					admitted++
				}
			}
			got := float64(admitted) / n
			if math.Abs(got-rate) > 0.02 {
				t.Errorf("seed %d rate %g: admitted fraction %g", seed, rate, got)
			}
		}
	}
}

// Admission streams are deterministic and seed-dependent: the same seed
// replays the same schedule, different seeds give different schedules.
func TestAdmitRunDeterministic(t *testing.T) {
	pattern := func(seed int64) (p [64]bool) {
		for i := range p {
			p[i] = admitRun(seed, i+1, 0.5)
		}
		return p
	}
	if pattern(7) != pattern(7) {
		t.Fatal("same seed produced different admission schedules")
	}
	if pattern(7) == pattern(8) {
		t.Fatal("adjacent seeds produced identical admission schedules (hash not mixing)")
	}
}

// SampleRate = 1.0 through the Detector: no run is ever SampledOut, and
// the built-in demo exposes exactly as the default (unsampled) options do
// — the explicit 1.0 and the zero value resolve to the same branch.
func TestDetectorFullRateMatchesDefault(t *testing.T) {
	demo, ok := FindDemo("disposer")
	if !ok {
		t.Fatal("disposer demo missing")
	}
	d := NewDetector(Options{SampleRate: 1.0})
	out := d.Expose(demo.Scenario, 12, 42)
	if out.Bug == nil {
		t.Fatalf("SampleRate=1.0 failed to expose the demo in %d runs", len(out.Runs))
	}
	for _, r := range out.Runs {
		if r.SampledOut {
			t.Fatalf("run %d SampledOut at SampleRate=1.0", r.Run)
		}
	}
	if d.opts.SampleRate != NewDetector(Options{}).opts.SampleRate {
		t.Fatal("explicit 1.0 and zero-value SampleRate resolved differently")
	}
}

// A sampled campaign still exposes the planted bug within the MaxRuns
// budget: at SampleRate = 0.25 only ~a quarter of detection runs inject,
// but those that do carry the full plan, so the disposer demo's bug
// surfaces well within 50 runs — while the sampled-out majority runs
// demonstrably uninstrumented (no delays, no reports).
func TestDetectorSampledCampaignExposes(t *testing.T) {
	fast := Scenario{Name: "sampled/disposer", Body: func(t *Thread, h *Heap) {
		conn := h.NewRef("conn")
		conn.Init(t, "sampled.Open")
		w := t.Spawn("worker", func(w *Thread) {
			w.Sleep(2 * time.Millisecond)
			conn.Use(w, "sampled.worker.Send")
		})
		t.Sleep(10 * time.Millisecond)
		conn.Dispose(t, "sampled.Close")
		t.Join(w)
	}}

	d := NewDetector(Options{SampleRate: 0.25, MaxRuns: 50})
	out := d.Expose(fast, 50, 7)
	if out.Bug == nil {
		t.Fatalf("sampled campaign failed to expose within %d runs", len(out.Runs))
	}
	sampledOut := 0
	for _, r := range out.Runs {
		if r.SampledOut {
			sampledOut++
			if r.Stats.Count != 0 || r.Stats.Skipped != 0 {
				t.Fatalf("sampled-out run %d has delay activity: %+v", r.Run, r.Stats)
			}
		}
	}
	// The exposing run ended the campaign early; just require that
	// sampling demonstrably happened unless the bug surfaced on the very
	// first admitted detection run.
	if len(out.Runs) > 4 && sampledOut == 0 {
		t.Fatalf("no run was sampled out across %d runs at rate 0.25", len(out.Runs))
	}
	if out.Bug.Delays.Count == 0 {
		t.Fatal("bug reported without injected delays (zero-FP contract)")
	}
}
