// Package workload synthesizes multithreaded test bodies with controllable
// concurrency characteristics: instrumentation-site density, near-miss
// (injection-site) density, thread-unsafe API traffic, fork-ordered object
// populations, and base running time.
//
// The generated bodies stand in for the multithreaded unit tests of the
// paper's 11 benchmark applications. They are carefully fault-free: shared
// objects are only ever accessed through guarded uses (UseIfLive) or under
// orderings no delay can invert, so a generated test never manifests a
// MemOrder bug — it only contributes instrumentation sites, near-miss
// candidates, and delay-injection overhead, exactly like the overwhelmingly
// bug-free test inputs of the real evaluation (Tables 2, 5, 6).
package workload

import (
	"fmt"

	"waffle/internal/memmodel"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// Spec describes one synthetic multithreaded test.
type Spec struct {
	// Prefix namespaces the test's static site labels (they play the role
	// of source locations, so they must be stable across runs).
	Prefix string

	// Threads is the number of worker threads.
	Threads int

	// LocalObjs is the number of thread-private objects per thread. Each
	// contributes an init site, use sites, and a dispose site that never
	// form cross-thread pairs — pure instrumentation-site volume.
	LocalObjs int

	// LocalOps is the number of uses of each private object.
	LocalOps int

	// SharedObjs is the number of objects initialized inside one worker
	// and used (guarded) by the others — the near-miss generators whose
	// sites become delay-injection candidates.
	SharedObjs int

	// SharedUses is the number of guarded uses of each shared object per
	// non-owner thread.
	SharedUses int

	// PreForkObjs is the number of objects initialized by the root thread
	// before the workers fork. Their init→use pairs are causally ordered
	// by the fork; Waffle prunes them, WaffleBasic does not (§4.1).
	PreForkObjs int

	// SyncedObjs is the number of shared objects whose disposal is
	// genuinely synchronized with the cross-thread uses (a per-object
	// WaitGroup): the use→dispose near misses are real but causally
	// ordered through the waits. Fork-only analysis cannot see the order
	// (false candidates, wasted delays); full happens-before analysis
	// prunes them — the material for internal/eval's full-HB experiment.
	SyncedObjs int

	// SiteFanout spreads each object's uses over this many distinct
	// static sites (≥1).
	SiteFanout int

	// Spacing is the think time between consecutive operations of one
	// thread; it is the dominant contributor to base running time.
	Spacing sim.Duration

	// APIObjs and APICalls add thread-unsafe API traffic: each thread
	// performs APICalls calls spread over the shared APIObjs. APISites
	// distinct static labels are used per thread. TSVD's domain.
	APIObjs  int
	APICalls int
	APISites int
	APIDur   sim.Duration

	// APIShared routes every thread's API calls through the same objects,
	// creating cross-thread near misses (TSV injection-site material).
	// When false each thread sticks to its own object and TSVD finds no
	// candidates — most tests in Table 2 have near-zero TSV injection
	// sites despite dozens of instrumented call sites.
	APIShared bool
}

// withDefaults fills the structural minimums.
func (s Spec) withDefaults() Spec {
	if s.Threads <= 0 {
		s.Threads = 2
	}
	if s.SiteFanout <= 0 {
		s.SiteFanout = 1
	}
	if s.Spacing <= 0 {
		s.Spacing = 500 * sim.Microsecond
	}
	if s.APIDur <= 0 {
		s.APIDur = 50 * sim.Microsecond
	}
	return s
}

// Body materializes the spec as a runnable scenario body.
//
// Layout: the root thread allocates all reference cells, initializes the
// pre-fork population, forks Threads workers, and joins them. Worker i owns
// LocalObjs private objects and the shared objects with index ≡ i mod
// Threads; it initializes its shared objects first (so other workers'
// guarded uses race against them within the near-miss window), then churns
// its private objects, peppers guarded uses of everyone's shared objects
// and plain uses of the pre-fork population, performs its API calls, and
// finally disposes what it owns.
func (s Spec) Body() func(*sim.Thread, *memmodel.Heap) {
	s = s.withDefaults()
	return func(root *sim.Thread, h *memmodel.Heap) {
		site := func(parts ...any) string {
			label := s.Prefix
			for _, p := range parts {
				label += fmt.Sprintf("/%v", p)
			}
			return label
		}

		preFork := make([]*memmodel.Ref, s.PreForkObjs)
		for i := range preFork {
			preFork[i] = h.NewRef(fmt.Sprintf("prefork%d", i))
			preFork[i].Init(root, trace.SiteID(site("prefork", i, "init")))
		}
		shared := make([]*memmodel.Ref, s.SharedObjs)
		for i := range shared {
			shared[i] = h.NewRef(fmt.Sprintf("shared%d", i))
		}
		synced := make([]*memmodel.Ref, s.SyncedObjs)
		syncedWGs := make([]*sim.WaitGroup, s.SyncedObjs)
		for i := range synced {
			synced[i] = h.NewRef(fmt.Sprintf("synced%d", i))
			syncedWGs[i] = &sim.WaitGroup{}
			syncedWGs[i].Add(root, s.Threads-1) // one Done per non-owner
		}
		apiObjs := make([]*memmodel.Ref, s.APIObjs)
		for i := range apiObjs {
			apiObjs[i] = h.NewRef(fmt.Sprintf("api%d", i))
		}

		var wg sim.WaitGroup
		for ti := 0; ti < s.Threads; ti++ {
			ti := ti
			wg.Add(root, 1)
			root.Spawn(fmt.Sprintf("worker%d", ti), func(t *sim.Thread) {
				defer wg.Done(t)

				// Plain uses of the fork-ordered population, right after
				// the fork so they near-miss the pre-fork inits: the exact
				// candidate class §4.1's parent-child pruning removes.
				for pi := range preFork {
					t.Work(s.Spacing)
					preFork[pi].Use(t, trace.SiteID(site("prefork", pi, "use", ti)))
				}

				// Private object churn: instrumentation-site volume with
				// no cross-thread pairs.
				locals := make([]*memmodel.Ref, s.LocalObjs)
				for li := range locals {
					locals[li] = h.NewRef(fmt.Sprintf("w%d-local%d", ti, li))
					locals[li].Init(t, trace.SiteID(site("w", ti, "local", li, "init")))
					for op := 0; op < s.LocalOps; op++ {
						t.Work(s.Spacing)
						locals[li].Use(t, trace.SiteID(site("w", ti, "local", li, "use", op%s.SiteFanout)))
					}
					t.Work(s.Spacing)
					locals[li].Dispose(t, trace.SiteID(site("w", ti, "local", li, "disp")))
				}

				// Thread-unsafe API traffic (threads are still roughly in
				// phase here, so shared-object configurations near-miss).
				for c := 0; s.APIObjs > 0 && c < s.APICalls; c++ {
					t.Work(s.Spacing)
					obj := apiObjs[ti%s.APIObjs]
					if s.APIShared {
						obj = apiObjs[c%s.APIObjs]
					}
					write := c%3 != 0
					obj.APICall(t, trace.SiteID(site("api", ti, c%max(1, s.APISites))), write, s.APIDur)
				}

				// Synchronized-disposal objects: the owner initializes, the
				// other threads use and Done a per-object WaitGroup, and the
				// owner Waits before disposing — near-miss use→dispose pairs
				// that are genuinely ordered.
				for oi := 0; oi < s.SyncedObjs; oi++ {
					owner := oi % s.Threads
					if ti == owner {
						t.Work(s.Spacing)
						synced[oi].Init(t, trace.SiteID(site("synced", oi, "init")))
						syncedWGs[oi].Wait(t)
						t.Work(s.Spacing)
						synced[oi].Dispose(t, trace.SiteID(site("synced", oi, "disp")))
					} else {
						t.Work(s.Spacing)
						synced[oi].UseIfLive(t, trace.SiteID(site("synced", oi, "use", ti)))
						syncedWGs[oi].Done(t)
					}
				}

				// Round-based shared-object lifecycles: every thread walks
				// the objects in the same order, so each object's init,
				// cross-thread guarded uses, and dispose cluster within a
				// bounded window — the near-miss (injection-site) material.
				// Owners perform init+dispose (2 ops), non-owners perform
				// SharedUses guarded uses; with SharedUses ≈ 2 the threads
				// stay in lockstep across rounds.
				for oi := 0; oi < s.SharedObjs; oi++ {
					owner := oi % s.Threads
					if ti == owner {
						t.Work(s.Spacing)
						shared[oi].Init(t, trace.SiteID(site("shared", oi, "init")))
						t.Work(s.Spacing * sim.Duration(max(1, s.SharedUses-1)))
						shared[oi].Dispose(t, trace.SiteID(site("shared", oi, "disp")))
					} else {
						for u := 0; u < s.SharedUses; u++ {
							t.Work(s.Spacing)
							shared[oi].UseIfLive(t, trace.SiteID(site("shared", oi, "use", ti, u%s.SiteFanout)))
						}
					}
				}
			})
		}
		wg.Wait(root)
		for i := range preFork {
			preFork[i].Dispose(root, trace.SiteID(site("prefork", i, "disp")))
		}
	}
}
