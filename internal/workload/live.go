package workload

import (
	"fmt"
	"sync"
	"time"

	"waffle/internal/live"
	"waffle/internal/trace"
)

// LiveBody materializes the spec as a live scenario body — the wall-clock
// mirror of Body, for driving the live runtime (and the example HTTP
// service's clean handlers) with the same controllable concurrency
// characteristics. The structure and site labels match Body exactly, with
// the substrate translated:
//
//   - sim.Thread.Work(d) becomes a real Sleep of d microseconds: one
//     simulator tick is one virtual microsecond (sim.Microsecond == 1),
//     so a Spacing of 500 ticks is 500µs of physical think time.
//   - The sim.WaitGroup joins become live Handle joins (worker fan-in)
//     and a plain sync.WaitGroup (the synced-disposal ordering): real
//     goroutines synchronize with real primitives.
//   - API traffic (APIObjs/APICalls) is omitted: the live heap models
//     lifecycle state only — it has no thread-unsafe API call surface —
//     and the fields exist to exercise the simulator's TSV oracle, which
//     has no live counterpart yet.
//
// Like Body, the result is carefully fault-free: every cross-thread use
// is guarded or ordered, so a LiveBody handler contributes
// instrumentation sites, near-miss candidates, and injection overhead,
// never a fault — the false-positive control population of the load test.
func (s Spec) LiveBody() func(*live.Thread, *live.Heap) {
	s = s.withDefaults()
	pause := func(t *live.Thread, d int) {
		t.Sleep(time.Duration(d) * time.Microsecond)
	}
	return func(root *live.Thread, h *live.Heap) {
		site := func(parts ...any) trace.SiteID {
			label := s.Prefix
			for _, p := range parts {
				label += fmt.Sprintf("/%v", p)
			}
			return trace.SiteID(label)
		}
		spacing := int(s.Spacing)

		preFork := make([]*live.Ref, s.PreForkObjs)
		for i := range preFork {
			preFork[i] = h.NewRef(fmt.Sprintf("prefork%d", i))
			preFork[i].Init(root, site("prefork", i, "init"))
		}
		shared := make([]*live.Ref, s.SharedObjs)
		for i := range shared {
			shared[i] = h.NewRef(fmt.Sprintf("shared%d", i))
		}
		synced := make([]*live.Ref, s.SyncedObjs)
		syncedWGs := make([]*sync.WaitGroup, s.SyncedObjs)
		for i := range synced {
			synced[i] = h.NewRef(fmt.Sprintf("synced%d", i))
			syncedWGs[i] = &sync.WaitGroup{}
			syncedWGs[i].Add(s.Threads - 1) // one Done per non-owner
		}

		handles := make([]*live.Handle, 0, s.Threads)
		for ti := 0; ti < s.Threads; ti++ {
			ti := ti
			handles = append(handles, root.Spawn(fmt.Sprintf("worker%d", ti), func(t *live.Thread) {
				// Plain uses of the fork-ordered population, right after
				// the fork so they near-miss the pre-fork inits — the
				// candidate class fork-clock pruning removes.
				for pi := range preFork {
					pause(t, spacing)
					preFork[pi].Use(t, site("prefork", pi, "use", ti))
				}

				// Private object churn: instrumentation-site volume with
				// no cross-thread pairs.
				locals := make([]*live.Ref, s.LocalObjs)
				for li := range locals {
					locals[li] = h.NewRef(fmt.Sprintf("w%d-local%d", ti, li))
					locals[li].Init(t, site("w", ti, "local", li, "init"))
					for op := 0; op < s.LocalOps; op++ {
						pause(t, spacing)
						locals[li].Use(t, site("w", ti, "local", li, "use", op%s.SiteFanout))
					}
					pause(t, spacing)
					locals[li].Dispose(t, site("w", ti, "local", li, "disp"))
				}

				// Synchronized-disposal objects: genuinely ordered
				// use→dispose near misses.
				for oi := 0; oi < s.SyncedObjs; oi++ {
					owner := oi % s.Threads
					if ti == owner {
						pause(t, spacing)
						synced[oi].Init(t, site("synced", oi, "init"))
						syncedWGs[oi].Wait()
						pause(t, spacing)
						synced[oi].Dispose(t, site("synced", oi, "disp"))
					} else {
						pause(t, spacing)
						synced[oi].UseIfLive(t, site("synced", oi, "use", ti))
						syncedWGs[oi].Done()
					}
				}

				// Round-based shared-object lifecycles: the near-miss
				// (injection-site) material, guarded so no delay can fault
				// them.
				for oi := 0; oi < s.SharedObjs; oi++ {
					owner := oi % s.Threads
					if ti == owner {
						pause(t, spacing)
						shared[oi].Init(t, site("shared", oi, "init"))
						pause(t, spacing*max(1, s.SharedUses-1))
						shared[oi].Dispose(t, site("shared", oi, "disp"))
					} else {
						for u := 0; u < s.SharedUses; u++ {
							pause(t, spacing)
							shared[oi].UseIfLive(t, site("shared", oi, "use", ti, u%s.SiteFanout))
						}
					}
				}
			}))
		}
		for _, hnd := range handles {
			root.Join(hnd)
		}
		for i := range preFork {
			preFork[i].Dispose(root, site("prefork", i, "disp"))
		}
	}
}
