package workload

import (
	"fmt"

	"waffle/internal/memmodel"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// TaskSpec describes a synthetic test whose concurrency comes from a task
// pool rather than dedicated threads — the .NET task-oriented style the
// paper's §4.1 note covers. Object lifecycles flow through async-local
// contexts: inits performed before a task is submitted are causally
// ordered with the task's accesses (and pruned by Waffle), while accesses
// from sibling tasks race.
type TaskSpec struct {
	// Prefix namespaces the static site labels.
	Prefix string
	// Workers is the pool size.
	Workers int
	// PreSubmitObjs are initialized by the root before any submission:
	// every task use is fork-ordered through the async-local context.
	PreSubmitObjs int
	// SharedObjs are initialized inside one task and guard-used by
	// sibling tasks — near-miss material across tasks.
	SharedObjs int
	// UsesPerObj is the number of guarded uses per shared object.
	UsesPerObj int
	// Spacing is the think time inside tasks.
	Spacing sim.Duration
}

func (s TaskSpec) withDefaults() TaskSpec {
	if s.Workers <= 0 {
		s.Workers = 2
	}
	if s.UsesPerObj <= 0 {
		s.UsesPerObj = 1
	}
	if s.Spacing <= 0 {
		s.Spacing = 500 * sim.Microsecond
	}
	return s
}

// Body materializes the spec. Per shared object the root submits one init
// task, UsesPerObj guarded-use tasks, and — after waiting for all of them —
// one dispose task. The waits order dispose after the uses in real time
// (so the generated test is fault-free even under delays: uses are
// guarded, disposes follow completed uses), but fork clocks do not track
// waits, so the use→dispose near misses stay in the candidate set exactly
// like thread-based false candidates do.
func (s TaskSpec) Body() func(*sim.Thread, *memmodel.Heap) {
	s = s.withDefaults()
	return func(root *sim.Thread, h *memmodel.Heap) {
		site := func(parts ...any) trace.SiteID {
			label := s.Prefix
			for _, p := range parts {
				label += fmt.Sprintf("/%v", p)
			}
			return trace.SiteID(label)
		}
		pool := sim.NewTaskPool(root, s.Workers, s.Prefix)

		preSubmit := make([]*memmodel.Ref, s.PreSubmitObjs)
		for i := range preSubmit {
			preSubmit[i] = h.NewRef(fmt.Sprintf("pre%d", i))
			preSubmit[i].Init(root, site("pre", i, "init"))
		}

		for oi := 0; oi < s.SharedObjs; oi++ {
			obj := h.NewRef(fmt.Sprintf("obj%d", oi))
			oi := oi
			initTask := pool.Submit(root, "init", func(t *sim.Thread) {
				t.Work(s.Spacing)
				obj.Init(t, site("obj", oi, "init"))
			})
			var useTasks []*sim.TaskHandle
			for u := 0; u < s.UsesPerObj; u++ {
				u := u
				useTasks = append(useTasks, pool.Submit(root, "use", func(t *sim.Thread) {
					t.Work(s.Spacing)
					obj.UseIfLive(t, site("obj", oi, "use", u))
					for pi := range preSubmit {
						preSubmit[pi].Use(t, site("pre", pi, "use"))
					}
				}))
			}
			initTask.Wait(root)
			for _, ut := range useTasks {
				ut.Wait(root)
			}
			dispose := pool.Submit(root, "dispose", func(t *sim.Thread) {
				t.Work(s.Spacing)
				obj.Dispose(t, site("obj", oi, "disp"))
			})
			dispose.Wait(root)
		}

		for i := range preSubmit {
			preSubmit[i].Dispose(root, site("pre", i, "disp"))
		}
		pool.Shutdown(root)
		pool.Join(root)
	}
}
