package workload

import (
	"testing"

	"waffle/internal/core"
	"waffle/internal/live"
	"waffle/internal/trace"
)

// record runs the spec once under a recording hook and returns the trace.
func record(t *testing.T, spec Spec, seed int64) *trace.Trace {
	t.Helper()
	rec := trace.NewRecorder(spec.Prefix, seed)
	prog := &core.SimProgram{Label: spec.Prefix, Jitter: 0.05, Body: spec.Body()}
	res := prog.Execute(seed, core.NewPrepHook(rec, core.Options{}))
	if res.Fault != nil {
		t.Fatalf("generated workload faulted: %v", res.Fault)
	}
	if res.Err != nil {
		t.Fatalf("generated workload failed: %v", res.Err)
	}
	return rec.Finish(res.End)
}

func TestGeneratedWorkloadIsFaultFreeAcrossSeeds(t *testing.T) {
	spec := Spec{
		Prefix: "app", Threads: 3, LocalObjs: 4, LocalOps: 3,
		SharedObjs: 3, SharedUses: 2, PreForkObjs: 2, SiteFanout: 2,
	}
	for seed := int64(0); seed < 10; seed++ {
		record(t, spec, seed)
	}
}

func TestSiteDensityScalesWithSpec(t *testing.T) {
	small := record(t, Spec{Prefix: "s", Threads: 2, LocalObjs: 2, LocalOps: 2, SharedObjs: 1, SharedUses: 1}, 1)
	big := record(t, Spec{Prefix: "b", Threads: 4, LocalObjs: 10, LocalOps: 4, SharedObjs: 6, SharedUses: 3, SiteFanout: 3}, 1)
	ss, bs := small.ComputeStats(), big.ComputeStats()
	if bs.MemSites <= ss.MemSites {
		t.Fatalf("big spec sites %d ≤ small spec sites %d", bs.MemSites, ss.MemSites)
	}
}

func TestSharedObjectsCreateInjectionCandidates(t *testing.T) {
	tr := record(t, Spec{
		Prefix: "x", Threads: 3, SharedObjs: 4, SharedUses: 3,
		LocalObjs: 2, LocalOps: 2,
	}, 7)
	plan := core.Analyze(tr, core.Options{})
	if len(plan.Pairs) == 0 {
		t.Fatal("no near-miss candidates from shared objects")
	}
	if len(plan.InjectionSites()) == 0 {
		t.Fatal("no injection sites")
	}
}

func TestPreForkPairsPrunedByWaffleKeptByAblation(t *testing.T) {
	spec := Spec{Prefix: "pf", Threads: 2, PreForkObjs: 5, LocalObjs: 1, LocalOps: 1}
	tr := record(t, spec, 3)
	pruned := core.Analyze(tr, core.Options{})
	kept := core.Analyze(tr, core.Options{DisableParentChild: true})
	prunedUBI, keptUBI := 0, 0
	for _, p := range pruned.Pairs {
		if p.Kind == core.UseBeforeInit {
			prunedUBI++
		}
	}
	for _, p := range kept.Pairs {
		if p.Kind == core.UseBeforeInit {
			keptUBI++
		}
	}
	if prunedUBI != 0 {
		t.Fatalf("fork-ordered init/use pairs survived pruning: %d", prunedUBI)
	}
	if keptUBI == 0 {
		t.Fatal("ablation found no fork-ordered pairs to keep")
	}
}

func TestAPITrafficVisibleToTSVDOnly(t *testing.T) {
	tr := record(t, Spec{
		Prefix: "api", Threads: 2, APIObjs: 2, APICalls: 6, APISites: 3,
	}, 5)
	st := tr.ComputeStats()
	if st.APISites == 0 || st.APIEvents == 0 {
		t.Fatalf("no API traffic recorded: %+v", st)
	}
	plan := core.Analyze(tr, core.Options{})
	for _, p := range plan.Pairs {
		t.Fatalf("API traffic leaked into MemOrder candidates: %+v", p)
	}
}

func TestGeneratedWorkloadSurvivesWaffleDetection(t *testing.T) {
	// A pure-noise workload must stay fault-free under full Waffle
	// detection — delays at its candidate sites hit guarded uses only.
	spec := Spec{
		Prefix: "noise", Threads: 3, LocalObjs: 3, LocalOps: 2,
		SharedObjs: 4, SharedUses: 3, PreForkObjs: 2,
	}
	prog := &core.SimProgram{Label: "noise", Jitter: 0.05, Body: spec.Body()}
	s := &core.Session{Prog: prog, Tool: core.NewWaffle(core.Options{}), MaxRuns: 6, BaseSeed: 11}
	out := s.Expose()
	if out.Bug != nil {
		t.Fatalf("noise workload produced a bug: %v", out.Bug)
	}
	injected := 0
	for _, r := range out.Runs {
		injected += r.Stats.Count
	}
	if injected == 0 {
		t.Fatal("detection runs injected nothing — the workload generates no candidates")
	}
}

func TestBaseTimeScalesWithSpacing(t *testing.T) {
	slow := record(t, Spec{Prefix: "slow", Threads: 2, LocalObjs: 3, LocalOps: 5, Spacing: 2000}, 1)
	fast := record(t, Spec{Prefix: "fast", Threads: 2, LocalObjs: 3, LocalOps: 5, Spacing: 500}, 1)
	if slow.End <= fast.End {
		t.Fatalf("spacing did not scale time: slow %v ≤ fast %v", slow.End, fast.End)
	}
}

func TestLiveBodyFaultFreeUnderMonitor(t *testing.T) {
	// The live mirror of the generated workload must survive the full
	// monitor lifecycle — record, analyze, inject — without a fault: it is
	// the false-positive control population of the load test, so any bug
	// report here is a detector bug.
	spec := Spec{
		Prefix: "lw", Threads: 2, LocalObjs: 1, LocalOps: 1,
		SharedObjs: 2, SharedUses: 2, PreForkObjs: 1, SyncedObjs: 1,
		Spacing: 50, // 50µs think time keeps the request ~ms-scale
	}
	mon := live.NewMonitor(7, live.Options{SampleRate: 1})
	body := spec.LiveBody()
	sawDelays := false
	for i := 0; i < 15; i++ {
		rep := mon.Do("/workload", body)
		if rep.Fault != nil || rep.Bug != nil {
			t.Fatalf("live workload faulted on request %d: fault=%v bug=%+v", i, rep.Fault, rep.Bug)
		}
		sawDelays = sawDelays || rep.Delays > 0
	}
	if !sawDelays {
		t.Fatal("no request injected delays — the live workload generates no candidates")
	}
}

func TestTaskWorkloadFaultFree(t *testing.T) {
	spec := TaskSpec{
		Prefix: "taskapp", Workers: 3, PreSubmitObjs: 2,
		SharedObjs: 4, UsesPerObj: 2,
	}
	for seed := int64(0); seed < 8; seed++ {
		prog := &core.SimProgram{Label: "taskapp", Jitter: 0.05, Body: spec.Body()}
		res := prog.Execute(seed, nil)
		if res.Fault != nil || res.Err != nil {
			t.Fatalf("task workload failed (seed %d): fault=%v err=%v", seed, res.Fault, res.Err)
		}
	}
}

func TestTaskWorkloadPreSubmitPairsPruned(t *testing.T) {
	spec := TaskSpec{
		Prefix: "taskpfx", Workers: 2, PreSubmitObjs: 3,
		SharedObjs: 2, UsesPerObj: 2,
	}
	rec := trace.NewRecorder("taskpfx", 1)
	prog := &core.SimProgram{Label: "taskpfx", Jitter: 0.05, Body: spec.Body()}
	res := prog.Execute(1, core.NewPrepHook(rec, core.Options{}))
	if res.Fault != nil {
		t.Fatalf("fault: %v", res.Fault)
	}
	tr := rec.Finish(res.End)
	pruned := core.Analyze(tr, core.Options{})
	for _, p := range pruned.Pairs {
		if p.Kind == core.UseBeforeInit && p.Target == "taskpfx/pre/0/use" {
			t.Fatalf("pre-submit pair survived async-local pruning: %+v", p)
		}
	}
	unpruned := core.Analyze(tr, core.Options{DisableParentChild: true})
	if len(unpruned.Pairs) <= len(pruned.Pairs) {
		t.Fatalf("pruning removed nothing: %d vs %d", len(unpruned.Pairs), len(pruned.Pairs))
	}
}

func TestTaskWorkloadSurvivesWaffleDetection(t *testing.T) {
	spec := TaskSpec{
		Prefix: "tasknoise", Workers: 2, PreSubmitObjs: 1,
		SharedObjs: 3, UsesPerObj: 2,
	}
	prog := &core.SimProgram{Label: "tasknoise", Jitter: 0.05, Body: spec.Body()}
	s := &core.Session{Prog: prog, Tool: core.NewWaffle(core.Options{}), MaxRuns: 5, BaseSeed: 3}
	if out := s.Expose(); out.Bug != nil {
		t.Fatalf("task noise workload produced a bug: %v", out.Bug)
	}
}
