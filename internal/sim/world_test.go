package sim

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestRunEmptyMain(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	if err := w.Run(func(*Thread) {}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if w.Now() != 0 {
		t.Fatalf("time advanced to %v with no work", w.Now())
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	err := w.Run(func(th *Thread) {
		th.Sleep(5 * Millisecond)
		if th.Now() != Time(5*Millisecond) {
			t.Errorf("Now = %v, want 5ms", th.Now())
		}
		th.Sleep(2500 * Microsecond)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got, want := w.Now(), Time(7500*Microsecond); got != want {
		t.Fatalf("final time = %v, want %v", got, want)
	}
}

func TestSleepNegativeIsZero(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	if err := w.Run(func(th *Thread) { th.Sleep(-Millisecond) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if w.Now() != 0 {
		t.Fatalf("negative sleep advanced time to %v", w.Now())
	}
}

func TestSpawnRunsConcurrentlyInVirtualTime(t *testing.T) {
	w := NewWorld(Config{Seed: 42})
	var order []string
	err := w.Run(func(main *Thread) {
		child := main.Spawn("child", func(c *Thread) {
			c.Sleep(1 * Millisecond)
			order = append(order, "child@1ms")
		})
		main.Sleep(2 * Millisecond)
		order = append(order, "main@2ms")
		main.Join(child)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != "child@1ms" || order[1] != "main@2ms" {
		t.Fatalf("order = %v", order)
	}
	// Concurrent sleeps overlap: total virtual time is max, not sum.
	if got, want := w.Now(), Time(2*Millisecond); got != want {
		t.Fatalf("final time = %v, want %v", got, want)
	}
}

func TestJoinWaitsForChild(t *testing.T) {
	w := NewWorld(Config{Seed: 7})
	done := false
	err := w.Run(func(main *Thread) {
		c := main.Spawn("slow", func(c *Thread) {
			c.Sleep(10 * Millisecond)
			done = true
		})
		main.Join(c)
		if !done {
			t.Error("Join returned before child finished")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestJoinFinishedChildReturnsImmediately(t *testing.T) {
	w := NewWorld(Config{Seed: 7})
	err := w.Run(func(main *Thread) {
		c := main.Spawn("fast", func(*Thread) {})
		main.Sleep(Millisecond) // let the child finish
		main.Join(c)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestThrowProducesFault(t *testing.T) {
	boom := errors.New("boom")
	w := NewWorld(Config{Seed: 1})
	err := w.Run(func(main *Thread) {
		main.SetOp("detonating")
		main.Throw(boom)
	})
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("Run error = %v, want *Fault", err)
	}
	if !errors.Is(f.Err, boom) {
		t.Fatalf("fault err = %v, want boom", f.Err)
	}
	if f.Op != "detonating" || f.Thread != 1 {
		t.Fatalf("fault = %+v", f)
	}
	if len(f.Stacks) == 0 {
		t.Fatal("fault has no stacks")
	}
}

func TestFaultStopsOtherThreads(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	reached := false
	err := w.Run(func(main *Thread) {
		main.Spawn("victim", func(c *Thread) {
			c.Sleep(100 * Millisecond)
			reached = true
		})
		main.Sleep(Millisecond)
		main.Throw(errors.New("crash"))
	})
	if err == nil {
		t.Fatal("expected fault")
	}
	if reached {
		t.Fatal("other thread kept running after fault")
	}
}

func TestPanicBecomesFault(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	err := w.Run(func(main *Thread) { panic("kaboom") })
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("Run error = %v, want *Fault", err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	var m1, m2 Mutex
	err := w.Run(func(main *Thread) {
		a := main.Spawn("a", func(t *Thread) {
			m1.Lock(t)
			t.Sleep(Millisecond)
			m2.Lock(t)
		})
		b := main.Spawn("b", func(t *Thread) {
			m2.Lock(t)
			t.Sleep(Millisecond)
			m1.Lock(t)
		})
		main.Join(a)
		main.Join(b)
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run error = %v, want ErrDeadlock", err)
	}
}

func TestTimeout(t *testing.T) {
	w := NewWorld(Config{Seed: 1, MaxTime: 10 * Millisecond})
	err := w.Run(func(main *Thread) {
		for {
			main.Sleep(5 * Millisecond)
		}
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Run error = %v, want ErrTimeout", err)
	}
}

func TestEventLimit(t *testing.T) {
	w := NewWorld(Config{Seed: 1, MaxEvents: 100})
	err := w.Run(func(main *Thread) {
		for {
			main.Yield()
		}
	})
	if !errors.Is(err, ErrEventLimit) {
		t.Fatalf("Run error = %v, want ErrEventLimit", err)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	trace := func(seed int64) []int {
		var got []int
		w := NewWorld(Config{Seed: seed, Jitter: 0.1})
		err := w.Run(func(main *Thread) {
			var wg WaitGroup
			for i := 0; i < 8; i++ {
				i := i
				wg.Add(main, 1)
				main.Spawn("t", func(t *Thread) {
					t.Work(Duration(100+i) * Microsecond)
					got = append(got, i)
					wg.Done(t)
				})
			}
			wg.Wait(main)
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return got
	}
	a, b := trace(99), trace(99)
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("lengths: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
}

func TestDifferentSeedsUsuallyDiffer(t *testing.T) {
	run := func(seed int64) []int {
		var got []int
		w := NewWorld(Config{Seed: seed})
		_ = w.Run(func(main *Thread) {
			var wg WaitGroup
			for i := 0; i < 10; i++ {
				i := i
				wg.Add(main, 1)
				main.Spawn("t", func(t *Thread) {
					t.Yield() // same wake time: order is seed-dependent
					got = append(got, i)
					wg.Done(t)
				})
			}
			wg.Wait(main)
		})
		return got
	}
	base := run(1)
	diff := false
	for seed := int64(2); seed < 8; seed++ {
		other := run(seed)
		for i := range base {
			if base[i] != other[i] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("six different seeds produced identical interleavings")
	}
}

func TestTLSInheritance(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	err := w.Run(func(main *Thread) {
		main.SetTLS("k", "parent-value")
		c := main.Spawn("child", func(c *Thread) {
			if got := c.TLS("k"); got != "parent-value" {
				t.Errorf("child TLS = %v", got)
			}
			c.SetTLS("k", "child-value")
		})
		main.Join(c)
		if got := main.TLS("k"); got != "parent-value" {
			t.Errorf("parent TLS mutated to %v", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

type forkCounter struct{ forks int }

func (f *forkCounter) ForkTLS(parent, child *Thread) any {
	f.forks++
	return &forkCounter{}
}

func TestTLSForkerHookRuns(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	fc := &forkCounter{}
	err := w.Run(func(main *Thread) {
		main.SetTLS("vc", fc)
		c1 := main.Spawn("c1", func(c *Thread) {
			if c.TLS("vc") == fc {
				t.Error("child shares parent's TLS value despite ForkTLS")
			}
		})
		c2 := main.Spawn("c2", func(*Thread) {})
		main.Join(c1)
		main.Join(c2)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fc.forks != 2 {
		t.Fatalf("ForkTLS ran %d times, want 2", fc.forks)
	}
}

func TestThreadInfoSnapshot(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	err := w.Run(func(main *Thread) {
		c := main.Spawn("worker", func(c *Thread) { c.SetOp("grinding") })
		main.Join(c)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	infos := w.Threads()
	if len(infos) != 2 {
		t.Fatalf("Threads() = %d entries, want 2", len(infos))
	}
	if infos[0].ID != 1 || infos[0].Parent != 0 {
		t.Fatalf("root info = %+v", infos[0])
	}
	if infos[1].Name != "worker" || infos[1].Parent != 1 || !infos[1].Done {
		t.Fatalf("child info = %+v", infos[1])
	}
}

func TestJitterBounds(t *testing.T) {
	w := NewWorld(Config{Seed: 3, Jitter: 0.05})
	err := quick.Check(func(raw int32) bool {
		d := Duration(raw)
		if d < 0 {
			d = -d
		}
		j := w.Jitter(d)
		lo := Duration(float64(d) * 0.94)
		hi := Duration(float64(d)*1.06) + 1
		return j >= lo && j <= hi
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestJitterZeroConfigIsIdentity(t *testing.T) {
	w := NewWorld(Config{Seed: 3})
	for _, d := range []Duration{0, 1, Millisecond, Second} {
		if got := w.Jitter(d); got != d {
			t.Fatalf("Jitter(%v) = %v without configured jitter", d, got)
		}
	}
}

func TestRunTwiceErrors(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	if err := w.Run(func(*Thread) {}); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if err := w.Run(func(*Thread) {}); err == nil {
		t.Fatal("second Run succeeded, want error")
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Microsecond, "500µs"},
		{1500 * Microsecond, "1.500ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

// Property: total virtual time of N sequential sleeps equals their sum.
func TestSequentialSleepSumProperty(t *testing.T) {
	err := quick.Check(func(raw []uint16) bool {
		w := NewWorld(Config{Seed: 5})
		var want Time
		runErr := w.Run(func(main *Thread) {
			for _, r := range raw {
				d := Duration(r)
				want = want.Add(d)
				main.Sleep(d)
			}
		})
		return runErr == nil && w.Now() == want
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: virtual time never runs backwards across scheduler events.
func TestMonotonicTimeProperty(t *testing.T) {
	w := NewWorld(Config{Seed: 11, Jitter: 0.2})
	var stamps []Time
	err := w.Run(func(main *Thread) {
		var wg WaitGroup
		for i := 0; i < 5; i++ {
			wg.Add(main, 1)
			main.Spawn("t", func(t *Thread) {
				for j := 0; j < 20; j++ {
					t.Work(Duration(50+10*j) * Microsecond)
					stamps = append(stamps, t.Now())
				}
				wg.Done(t)
			})
		}
		wg.Wait(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 1; i < len(stamps); i++ {
		if stamps[i] < stamps[i-1] {
			t.Fatalf("time went backwards: %v then %v", stamps[i-1], stamps[i])
		}
	}
}

func TestNoGoroutineLeakAfterFault(t *testing.T) {
	// Many worlds that fault with live threads must not accumulate stuck
	// goroutines; killAll unwinds them. A leak would make this test hang
	// under -race or blow up memory, so simply running it is the check.
	for i := 0; i < 100; i++ {
		w := NewWorld(Config{Seed: int64(i)})
		_ = w.Run(func(main *Thread) {
			for j := 0; j < 5; j++ {
				main.Spawn("stuck", func(t *Thread) {
					var blocked Event
					blocked.Wait(t) // never set
				})
			}
			main.Sleep(Millisecond)
			main.Throw(errors.New("end"))
		})
	}
}
