package sim

import (
	"errors"
	"testing"
)

func TestRunStopsWhenCancelFires(t *testing.T) {
	cancel := make(chan struct{})
	w := NewWorld(Config{Seed: 1, Cancel: cancel})
	var progressed int
	err := w.Run(func(root *Thread) {
		for i := 0; i < 1000; i++ {
			root.Sleep(Millisecond)
			progressed++
			if i == 3 {
				close(cancel)
			}
		}
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if progressed >= 1000 {
		t.Fatal("run completed despite cancellation")
	}
	// Teardown must have unwound every thread.
	for _, ti := range w.Threads() {
		if !ti.Done {
			t.Fatalf("thread %d (%s) still live after cancel", ti.ID, ti.Name)
		}
	}
}

func TestRunPreCanceledDoesNoWork(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	w := NewWorld(Config{Seed: 1, Cancel: cancel})
	var ran bool
	err := w.Run(func(root *Thread) {
		root.Sleep(Millisecond) // first park: the loop checks cancel before resuming
		ran = true
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if ran {
		t.Fatal("body progressed past first park despite pre-canceled world")
	}
}

func TestRunNilCancelCompletes(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	if err := w.Run(func(root *Thread) { root.Sleep(Millisecond) }); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
}
