package sim

import (
	"errors"
	"testing"
)

func TestMutexExcludes(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	var m Mutex
	inCrit := 0
	maxIn := 0
	err := w.Run(func(main *Thread) {
		var wg WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(main, 1)
			main.Spawn("t", func(t *Thread) {
				m.Lock(t)
				inCrit++
				if inCrit > maxIn {
					maxIn = inCrit
				}
				t.Sleep(Millisecond)
				inCrit--
				m.Unlock(t)
				wg.Done(t)
			})
		}
		wg.Wait(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if maxIn != 1 {
		t.Fatalf("max threads in critical section = %d", maxIn)
	}
	if got, want := w.Now(), Time(4*Millisecond); got != want {
		t.Fatalf("serialized time = %v, want %v", got, want)
	}
}

func TestMutexTryLock(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	var m Mutex
	err := w.Run(func(main *Thread) {
		if !m.TryLock(main) {
			t.Error("TryLock on free mutex failed")
		}
		if m.TryLock(main) {
			t.Error("TryLock on held mutex succeeded")
		}
		m.Unlock(main)
		if !m.TryLock(main) {
			t.Error("TryLock after Unlock failed")
		}
		m.Unlock(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMutexRecursiveLockFaults(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	var m Mutex
	err := w.Run(func(main *Thread) {
		m.Lock(main)
		m.Lock(main)
	})
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want fault", err)
	}
}

func TestMutexUnlockNotOwnerFaults(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	var m Mutex
	err := w.Run(func(main *Thread) { m.Unlock(main) })
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want fault", err)
	}
}

func TestQueueFIFO(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	var q Queue
	var got []int
	err := w.Run(func(main *Thread) {
		c := main.Spawn("consumer", func(t *Thread) {
			for {
				v, ok := q.Recv(t)
				if !ok {
					return
				}
				got = append(got, v.(int))
			}
		})
		for i := 0; i < 5; i++ {
			q.Send(main, i)
			main.Sleep(100 * Microsecond)
		}
		q.Close(main)
		main.Join(c)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("received %d items, want 5", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken: %v", got)
		}
	}
}

func TestQueueRecvBlocksUntilSend(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	var q Queue
	err := w.Run(func(main *Thread) {
		c := main.Spawn("consumer", func(th *Thread) {
			v, ok := q.Recv(th)
			if !ok || v.(string) != "late" {
				t.Errorf("Recv = %v, %v", v, ok)
			}
			if th.Now() < Time(3*Millisecond) {
				t.Errorf("Recv returned at %v, before the send", th.Now())
			}
		})
		main.Sleep(3 * Millisecond)
		q.Send(main, "late")
		main.Join(c)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestQueueSendOnClosedFaults(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	var q Queue
	err := w.Run(func(main *Thread) {
		q.Close(main)
		q.Send(main, 1)
	})
	var f *Fault
	if !errors.As(err, &f) || !errors.Is(f.Err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed fault", err)
	}
}

func TestQueueTryRecv(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	var q Queue
	err := w.Run(func(main *Thread) {
		if _, ok := q.TryRecv(); ok {
			t.Error("TryRecv on empty queue succeeded")
		}
		q.Send(main, 7)
		v, ok := q.TryRecv()
		if !ok || v.(int) != 7 {
			t.Errorf("TryRecv = %v, %v", v, ok)
		}
		if q.Len() != 0 {
			t.Errorf("Len = %d after drain", q.Len())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEventBroadcast(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	var e Event
	woke := 0
	err := w.Run(func(main *Thread) {
		var wg WaitGroup
		for i := 0; i < 3; i++ {
			wg.Add(main, 1)
			main.Spawn("waiter", func(t *Thread) {
				e.Wait(t)
				woke++
				wg.Done(t)
			})
		}
		main.Sleep(Millisecond)
		e.Set(main)
		wg.Wait(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if woke != 3 {
		t.Fatalf("woke %d waiters, want 3", woke)
	}
	if !e.IsSet() {
		t.Fatal("event not set")
	}
	e.Reset()
	if e.IsSet() {
		t.Fatal("event still set after Reset")
	}
}

func TestEventWaitAfterSetReturnsImmediately(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	var e Event
	err := w.Run(func(main *Thread) {
		e.Set(main)
		e.Wait(main) // must not block
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	s := NewSemaphore(2)
	in, maxIn := 0, 0
	err := w.Run(func(main *Thread) {
		var wg WaitGroup
		for i := 0; i < 6; i++ {
			wg.Add(main, 1)
			main.Spawn("t", func(t *Thread) {
				s.Acquire(t)
				in++
				if in > maxIn {
					maxIn = in
				}
				t.Sleep(Millisecond)
				in--
				s.Release(t)
				wg.Done(t)
			})
		}
		wg.Wait(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if maxIn != 2 {
		t.Fatalf("max concurrent holders = %d, want 2", maxIn)
	}
}

func TestWaitGroupZeroWaitReturns(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	err := w.Run(func(main *Thread) {
		var wg WaitGroup
		wg.Wait(main) // counter already zero
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestWaitGroupNegativeFaults(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	err := w.Run(func(main *Thread) {
		var wg WaitGroup
		wg.Done(main)
	})
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want fault", err)
	}
}
