package sim

import "testing"

func TestSelectImmediate(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	err := w.Run(func(main *Thread) {
		var a, b Queue
		b.Send(main, "from-b")
		idx, v, ok := Select(main, 0, &a, &b)
		if !ok || idx != 1 || v.(string) != "from-b" {
			t.Errorf("Select = %d, %v, %v", idx, v, ok)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSelectTieBreaksByArgumentOrder(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	err := w.Run(func(main *Thread) {
		var a, b Queue
		a.Send(main, "a")
		b.Send(main, "b")
		idx, v, ok := Select(main, 0, &a, &b)
		if !ok || idx != 0 || v.(string) != "a" {
			t.Errorf("Select = %d, %v, %v (want queue 0)", idx, v, ok)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSelectBlocksUntilAnySend(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	err := w.Run(func(main *Thread) {
		var a, b Queue
		c := main.Spawn("selector", func(th *Thread) {
			idx, v, ok := Select(th, 0, &a, &b)
			if !ok || idx != 1 || v.(int) != 7 {
				t.Errorf("Select = %d, %v, %v", idx, v, ok)
			}
			if th.Now() < Time(4*Millisecond) {
				t.Errorf("woke early at %v", th.Now())
			}
		})
		main.Sleep(4 * Millisecond)
		b.Send(main, 7)
		main.Join(c)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSelectTimeout(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	err := w.Run(func(main *Thread) {
		var a, b Queue
		_, _, ok := Select(main, 3*Millisecond, &a, &b)
		if ok {
			t.Error("empty select succeeded")
		}
		if got, want := main.Now(), Time(3*Millisecond); got != want {
			t.Errorf("timed out at %v, want %v", got, want)
		}
		// Thread remains healthy after the timed select.
		main.Sleep(10 * Millisecond)
		if main.Now() != Time(13*Millisecond) {
			t.Errorf("stale wake after select: %v", main.Now())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSelectAllClosed(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	err := w.Run(func(main *Thread) {
		var a, b Queue
		c := main.Spawn("selector", func(th *Thread) {
			if _, _, ok := Select(th, 0, &a, &b); ok {
				t.Error("select on closed queues succeeded")
			}
		})
		main.Sleep(Millisecond)
		a.Close(main)
		b.Close(main)
		main.Join(c)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSelectNoQueues(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	err := w.Run(func(main *Thread) {
		if _, _, ok := Select(main, Millisecond); ok {
			t.Error("select with no queues succeeded")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSelectDoesNotStealFromPlainReceivers(t *testing.T) {
	// A selector and a plain receiver share a queue: every message goes to
	// exactly one of them, none is lost or doubled.
	w := NewWorld(Config{Seed: 1})
	total := 0
	err := w.Run(func(main *Thread) {
		var q Queue
		var other Queue
		var wg WaitGroup
		wg.Add(main, 2)
		main.Spawn("selector", func(th *Thread) {
			defer wg.Done(th)
			for {
				_, _, ok := Select(th, 0, &q, &other)
				if !ok {
					return
				}
				total++
			}
		})
		main.Spawn("receiver", func(th *Thread) {
			defer wg.Done(th)
			for {
				if _, ok := q.Recv(th); !ok {
					return
				}
				total++
			}
		})
		for i := 0; i < 10; i++ {
			main.Sleep(Millisecond)
			q.Send(main, i)
		}
		q.Close(main)
		other.Close(main)
		wg.Wait(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if total != 10 {
		t.Fatalf("delivered %d messages, want 10", total)
	}
}
