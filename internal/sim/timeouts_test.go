package sim

import "testing"

func TestEventWaitTimeoutExpires(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	err := w.Run(func(main *Thread) {
		var e Event
		if e.WaitTimeout(main, 5*Millisecond) {
			t.Error("timeout wait reported signaled")
		}
		if got, want := main.Now(), Time(5*Millisecond); got != want {
			t.Errorf("woke at %v, want %v", got, want)
		}
		// The thread must be fully functional afterwards: a later Sleep
		// must not be cut short by any stale deadline wake.
		main.Sleep(10 * Millisecond)
		if got, want := main.Now(), Time(15*Millisecond); got != want {
			t.Errorf("post-timeout sleep ended at %v, want %v", got, want)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEventWaitTimeoutSignaledEarly(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	err := w.Run(func(main *Thread) {
		var e Event
		waiter := main.Spawn("waiter", func(th *Thread) {
			if !e.WaitTimeout(th, 50*Millisecond) {
				t.Error("early signal reported as timeout")
			}
			if th.Now() > Time(3*Millisecond) {
				t.Errorf("woke at %v, want ~2ms", th.Now())
			}
			// No stale deadline wake may shorten later blocking.
			th.Sleep(100 * Millisecond)
			if th.Now() < Time(100*Millisecond) {
				t.Errorf("stale wake cut sleep short: %v", th.Now())
			}
		})
		main.Sleep(2 * Millisecond)
		e.Set(main)
		main.Join(waiter)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestQueueRecvTimeout(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	err := w.Run(func(main *Thread) {
		var q Queue
		if _, ok := q.RecvTimeout(main, 3*Millisecond); ok {
			t.Error("empty queue recv succeeded")
		}
		if got, want := main.Now(), Time(3*Millisecond); got != want {
			t.Errorf("timeout at %v, want %v", got, want)
		}
		// Early delivery.
		c := main.Spawn("consumer", func(th *Thread) {
			v, ok := q.RecvTimeout(th, 60*Millisecond)
			if !ok || v.(string) != "msg" {
				t.Errorf("RecvTimeout = %v, %v", v, ok)
			}
			if th.Now() > Time(10*Millisecond) {
				t.Errorf("delivery late: %v", th.Now())
			}
		})
		main.Sleep(2 * Millisecond)
		q.Send(main, "msg")
		main.Join(c)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestQueueRecvTimeoutClosed(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	err := w.Run(func(main *Thread) {
		var q Queue
		c := main.Spawn("consumer", func(th *Thread) {
			if _, ok := q.RecvTimeout(th, 50*Millisecond); ok {
				t.Error("closed queue recv succeeded")
			}
			if th.Now() > Time(5*Millisecond) {
				t.Errorf("close not honored promptly: %v", th.Now())
			}
		})
		main.Sleep(Millisecond)
		q.Close(main)
		main.Join(c)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSemaphoreAcquireTimeout(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	err := w.Run(func(main *Thread) {
		s := NewSemaphore(1)
		s.Acquire(main)
		if s.AcquireTimeout(main, 2*Millisecond) {
			t.Error("second permit acquired")
		}
		c := main.Spawn("waiter", func(th *Thread) {
			if !s.AcquireTimeout(th, 50*Millisecond) {
				t.Error("released permit not acquired")
			}
		})
		main.Sleep(3 * Millisecond)
		s.Release(main)
		main.Join(c)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestTimedWaitsDoNotCorruptOtherBlocking(t *testing.T) {
	// A thread that timed out on one primitive must block correctly on a
	// different one: no stale run-queue entry or stale waiter-list entry may
	// wake it spuriously.
	w := NewWorld(Config{Seed: 1})
	err := w.Run(func(main *Thread) {
		var e Event
		var q Queue
		c := main.Spawn("mixed", func(th *Thread) {
			e.WaitTimeout(th, Millisecond) // times out
			v, ok := q.Recv(th)            // must block until the real send
			if !ok || v.(int) != 42 {
				t.Errorf("Recv = %v, %v", v, ok)
			}
			if th.Now() < Time(20*Millisecond) {
				t.Errorf("spurious wake at %v", th.Now())
			}
		})
		main.Sleep(20 * Millisecond)
		q.Send(main, 42)
		main.Join(c)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
