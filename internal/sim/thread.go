package sim

import (
	"errors"
	"fmt"
)

type threadState uint8

const (
	stateNew threadState = iota
	stateRunnable
	stateRunning
	stateBlocked
	stateDone
)

type resumeMsg struct {
	kill bool
}

// killSentinel unwinds a thread goroutine when the world shuts down early.
type killSentinel struct{}

// TLSKey names a slot in a thread's inheritable thread-local storage.
type TLSKey string

// TLSForker lets a TLS value customize how it propagates from parent to
// child at thread creation — the analog of C#'s LogicalCallContext / Java's
// InheritableThreadLocal copy hook that Waffle's vector clocks ride on.
type TLSForker interface {
	// ForkTLS is invoked during Spawn, before the child runs. It returns
	// the value installed in the child's TLS and may update the parent's
	// TLS in place (e.g. bump a fork counter).
	ForkTLS(parent, child *Thread) any
}

// Thread is a cooperatively scheduled unit of execution inside a World.
// All methods must be called from the thread's own context (i.e. inside the
// function passed to Run or Spawn), except the read-only ID/Parent/Name.
type Thread struct {
	w       *World
	id      int
	parent  int
	name    string
	state   threadState
	resume  chan resumeMsg
	tls     map[TLSKey]any
	op      string
	wakeGen uint64

	joiners []*Thread
}

// ID reports the thread's unique id (root thread is 1).
func (t *Thread) ID() int { return t.id }

// Parent reports the spawning thread's id (0 for the root thread).
func (t *Thread) Parent() int { return t.parent }

// Name reports the label given at spawn.
func (t *Thread) Name() string { return t.name }

// World returns the owning world.
func (t *Thread) World() *World { return t.w }

// Now reports current virtual time.
func (t *Thread) Now() Time { return t.w.now }

// SetOp announces a human-readable label for the thread's current operation;
// it appears in fault stacks and thread snapshots.
func (t *Thread) SetOp(op string) { t.op = op }

// Op returns the last announced operation label.
func (t *Thread) Op() string { return t.op }

// TLS returns the thread-local value stored under key, or nil.
func (t *Thread) TLS(key TLSKey) any { return t.tls[key] }

// SetTLS stores a thread-local value under key. Values are copied to child
// threads at Spawn (via TLSForker when implemented).
func (t *Thread) SetTLS(key TLSKey, v any) { t.tls[key] = v }

// run is the goroutine body wrapping the user function.
func (t *Thread) run(fn func(*Thread)) {
	msg := <-t.resume
	if msg.kill {
		t.state = stateDone
		t.w.alive--
		t.w.parkCh <- struct{}{}
		return
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSentinel); !ok && t.w.fault == nil {
				// A user panic inside a thread is an unhandled exception.
				t.w.fault = &Fault{
					Err:    fmt.Errorf("panic: %v", r),
					Thread: t.id,
					Name:   t.name,
					T:      t.w.now,
					Op:     t.op,
					Stacks: t.w.stacks(t),
				}
			}
		}
		t.finish()
		t.w.parkCh <- struct{}{}
	}()
	fn(t)
}

// finish marks the thread done and wakes joiners.
func (t *Thread) finish() {
	if t.state == stateDone {
		return
	}
	if !t.w.stopping {
		t.w.noteSync(t, SyncRelease, t)
	}
	t.state = stateDone
	t.w.alive--
	if !t.w.stopping {
		for _, j := range t.joiners {
			t.w.schedule(j, t.w.now)
		}
	}
	t.joiners = nil
}

// park yields the baton to the scheduler and blocks until resumed.
// The caller must have arranged for the thread to be woken (scheduled or
// registered on a primitive's wait list) beforehand.
func (t *Thread) park() {
	t.w.parkCh <- struct{}{}
	msg := <-t.resume
	if msg.kill {
		panic(killSentinel{})
	}
}

// block parks without being on the run queue; some other thread must
// schedule t to wake it.
func (t *Thread) block() {
	t.state = stateBlocked
	t.park()
}

// Spawn creates a child thread running fn, inheriting this thread's TLS.
// The child becomes runnable at the current virtual time; the parent keeps
// running (matching fork semantics — the child is *not* executed inline).
func (t *Thread) Spawn(name string, fn func(*Thread)) *Thread {
	child := t.w.newThread(t, name, fn)
	t.w.schedule(child, t.w.now)
	return child
}

// Sleep suspends the thread for d of virtual time. Negative durations are
// treated as zero. This is the injection point for all delay-injection
// tools — the analog of Thread.Sleep in the paper.
func (t *Thread) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	t.w.schedule(t, t.w.now.Add(d))
	t.park()
}

// Rand returns a float64 in [0,1) from the world's seeded stream — the
// thread-context view of World.Rand, letting thread-agnostic consumers
// (core's injection engines) draw randomness without reaching through
// World. Must only be called from the running thread.
func (t *Thread) Rand() float64 { return t.w.Rand() }

// Yield reschedules the thread at the current time, giving equal-time
// threads a seeded-random chance to run first.
func (t *Thread) Yield() {
	t.w.schedule(t, t.w.now)
	t.park()
}

// Work advances virtual time by roughly d — the cost of a computation —
// applying the world's configured jitter. It is semantically Sleep with
// jitter and models instruction execution rather than intentional delay.
func (t *Thread) Work(d Duration) {
	t.Sleep(t.w.Jitter(d))
}

// Join blocks until other has finished, acquiring its causal past.
func (t *Thread) Join(other *Thread) {
	if other.state == stateDone {
		t.w.noteSync(t, SyncAcquire, other)
		return
	}
	other.joiners = append(other.joiners, t)
	t.block()
	t.w.noteSync(t, SyncAcquire, other)
}

// Throw raises an unhandled exception: the world records a Fault and the
// run terminates. Throw does not return.
func (t *Thread) Throw(err error) {
	if err == nil {
		err = errors.New("sim: Throw(nil)")
	}
	if t.w.fault == nil {
		t.w.fault = &Fault{
			Err:    err,
			Thread: t.id,
			Name:   t.name,
			T:      t.w.now,
			Op:     t.op,
			Stacks: t.w.stacks(t),
		}
	}
	panic(killSentinel{})
}
