package sim

import "errors"

// Mutex is a virtual-time mutual-exclusion lock. The zero value is unlocked.
// All methods must be called from thread context. Lock order among waiters
// is FIFO, which keeps runs deterministic for a given seed.
type Mutex struct {
	owner   *Thread
	waiters []*Thread
}

// Lock acquires the mutex, blocking the calling thread until available.
func (m *Mutex) Lock(t *Thread) {
	t.w.noteSync(t, SyncRequest, m)
	if m.owner == nil {
		m.owner = t
		t.w.noteSync(t, SyncAcquire, m)
		return
	}
	if m.owner == t {
		t.Throw(errors.New("sim: recursive Mutex.Lock"))
	}
	m.waiters = append(m.waiters, t)
	t.block()
	t.w.noteSync(t, SyncAcquire, m)
}

// TryLock acquires the mutex if it is free, reporting whether it did.
func (m *Mutex) TryLock(t *Thread) bool {
	if m.owner == nil {
		m.owner = t
		t.w.noteSync(t, SyncAcquire, m)
		return true
	}
	return false
}

// Unlock releases the mutex and hands it to the oldest waiter, if any.
func (m *Mutex) Unlock(t *Thread) {
	if m.owner != t {
		t.Throw(errors.New("sim: Unlock of mutex not held by caller"))
	}
	t.w.noteSync(t, SyncRelease, m)
	if len(m.waiters) == 0 {
		m.owner = nil
		return
	}
	next := m.waiters[0]
	m.waiters = m.waiters[0].w.trimFront(m.waiters)
	m.owner = next
	t.w.schedule(next, t.w.now)
}

// trimFront drops the first element, reusing the backing array.
func (w *World) trimFront(ts []*Thread) []*Thread {
	copy(ts, ts[1:])
	ts[len(ts)-1] = nil
	return ts[:len(ts)-1]
}

// WaitGroup waits for a collection of threads to finish, mirroring
// sync.WaitGroup semantics in virtual time.
type WaitGroup struct {
	count   int
	waiters []*Thread
}

// Add adds delta to the counter. Must not drive the counter negative.
func (wg *WaitGroup) Add(t *Thread, delta int) {
	wg.count += delta
	if wg.count < 0 {
		t.Throw(errors.New("sim: negative WaitGroup counter"))
	}
	if wg.count == 0 {
		wg.release(t)
	}
}

// Done decrements the counter by one, publishing the finishing thread's
// causal past to waiters.
func (wg *WaitGroup) Done(t *Thread) {
	t.w.noteSync(t, SyncRelease, wg)
	wg.Add(t, -1)
}

// Wait blocks until the counter is zero.
func (wg *WaitGroup) Wait(t *Thread) {
	if wg.count == 0 {
		t.w.noteSync(t, SyncAcquire, wg)
		return
	}
	wg.waiters = append(wg.waiters, t)
	t.block()
	t.w.noteSync(t, SyncAcquire, wg)
}

func (wg *WaitGroup) release(t *Thread) {
	for _, waiter := range wg.waiters {
		t.w.schedule(waiter, t.w.now)
	}
	wg.waiters = nil
}

// Event is a manual-reset event: threads Wait until some thread Sets it.
// Once set it stays set until Reset.
type Event struct {
	set     bool
	waiters []*Thread
}

// Set marks the event signaled and wakes all waiters.
func (e *Event) Set(t *Thread) {
	t.w.noteSync(t, SyncRelease, e)
	e.set = true
	for _, waiter := range e.waiters {
		t.w.schedule(waiter, t.w.now)
	}
	e.waiters = nil
}

// Reset clears the signaled state.
func (e *Event) Reset() { e.set = false }

// IsSet reports whether the event is signaled.
func (e *Event) IsSet() bool { return e.set }

// Wait blocks until the event is signaled (returns immediately if already).
func (e *Event) Wait(t *Thread) {
	if e.set {
		t.w.noteSync(t, SyncAcquire, e)
		return
	}
	e.waiters = append(e.waiters, t)
	t.block()
	t.w.noteSync(t, SyncAcquire, e)
}

// Queue is an unbounded FIFO channel between threads. A zero Queue is ready
// to use. Close wakes all blocked receivers.
type Queue struct {
	items   []any
	waiters []*Thread
	closed  bool
}

// ErrClosed is thrown by Send on a closed queue.
var ErrClosed = errors.New("sim: send on closed queue")

// Send enqueues v and wakes one blocked receiver.
func (q *Queue) Send(t *Thread, v any) {
	if q.closed {
		t.Throw(ErrClosed)
	}
	t.w.noteSync(t, SyncRelease, q)
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		next := q.waiters[0]
		q.waiters = t.w.trimFront(q.waiters)
		t.w.schedule(next, t.w.now)
	}
}

// Recv dequeues the oldest item, blocking while the queue is empty and open.
// ok is false when the queue is closed and drained.
func (q *Queue) Recv(t *Thread) (v any, ok bool) {
	for len(q.items) == 0 {
		if q.closed {
			return nil, false
		}
		q.waiters = append(q.waiters, t)
		t.block()
	}
	v = q.items[0]
	copy(q.items, q.items[1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	t.w.noteSync(t, SyncAcquire, q)
	return v, true
}

// TryRecv dequeues without blocking; ok is false if nothing was available.
func (q *Queue) TryRecv() (v any, ok bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v = q.items[0]
	copy(q.items, q.items[1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	return v, true
}

// Len reports the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Close marks the queue closed and wakes all blocked receivers.
func (q *Queue) Close(t *Thread) {
	if q.closed {
		return
	}
	t.w.noteSync(t, SyncRelease, q)
	q.closed = true
	for _, waiter := range q.waiters {
		t.w.schedule(waiter, t.w.now)
	}
	q.waiters = nil
}

// Semaphore is a counting semaphore in virtual time.
type Semaphore struct {
	permits int
	waiters []*Thread
}

// NewSemaphore returns a semaphore holding n permits.
func NewSemaphore(n int) *Semaphore { return &Semaphore{permits: n} }

// Acquire takes one permit, blocking until available.
func (s *Semaphore) Acquire(t *Thread) {
	for s.permits == 0 {
		s.waiters = append(s.waiters, t)
		t.block()
	}
	s.permits--
	t.w.noteSync(t, SyncAcquire, s)
}

// Release returns one permit and wakes one waiter.
func (s *Semaphore) Release(t *Thread) {
	t.w.noteSync(t, SyncRelease, s)
	s.permits++
	if len(s.waiters) > 0 {
		next := s.waiters[0]
		s.waiters = t.w.trimFront(s.waiters)
		t.w.schedule(next, t.w.now)
	}
}
