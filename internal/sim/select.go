package sim

// Select waits on several queues at once, returning the index of the queue
// that delivered, the value, and ok=true — or ok=false when every queue is
// closed-and-drained or the optional timeout elapses (d ≤ 0 means wait
// forever). Ties at the same instant resolve in argument order, keeping
// runs deterministic. This is the substrate's analog of a multi-channel
// select for broker- and proxy-shaped scenarios.
func Select(t *Thread, d Duration, queues ...*Queue) (idx int, v any, ok bool) {
	if len(queues) == 0 {
		return -1, nil, false
	}
	var deadline Time
	if d > 0 {
		deadline = t.w.now.Add(d)
	}
	for {
		allClosed := true
		for i, q := range queues {
			if v, ok := q.TryRecv(); ok {
				t.w.noteSync(t, SyncAcquire, q)
				return i, v, true
			}
			if !q.closed {
				allClosed = false
			}
		}
		if allClosed {
			return -1, nil, false
		}
		if d > 0 && t.w.now >= deadline {
			return -1, nil, false
		}

		// Park as a waiter on every open queue; any Send (or Close) wakes
		// us, and the deadline wake supersedes nothing if a signal lands
		// first (newest-wake-wins scheduling).
		for _, q := range queues {
			if !q.closed {
				q.waiters = append(q.waiters, t)
			}
		}
		if d > 0 {
			t.w.schedule(t, deadline)
		} else {
			t.block()
			for _, q := range queues {
				q.waiters = removeWaiter(q.waiters, t)
			}
			continue
		}
		t.park()
		for _, q := range queues {
			q.waiters = removeWaiter(q.waiters, t)
		}
	}
}
