package sim

// Synchronization observation: an optional world-level observer sees every
// release/acquire edge the primitives create, enabling full happens-before
// analysis — the expensive road §4.1 of the paper deliberately avoids
// (annotating and tracking every synchronization operation, with the 5-10×
// slowdowns prior work reports). The substrate knows its own primitives,
// so the "annotation" is exact here; the repository uses it to quantify
// the trade-off Waffle's partial (fork-only) analysis makes.

// SyncOp classifies one synchronization event.
type SyncOp uint8

const (
	// SyncRelease publishes the thread's causal past into a sync object
	// (unlock, send, set, done, thread/task completion).
	SyncRelease SyncOp = iota
	// SyncAcquire absorbs a sync object's causal past into the thread
	// (lock, recv, wait-return, join-return).
	SyncAcquire
	// SyncRequest announces intent to acquire an exclusive lock, emitted
	// before any blocking — the injection point for lock-order tools
	// (a delay here extends the hold of already-held locks while the
	// requested one is still free for others to take).
	SyncRequest
)

// SyncObserver receives one call per release/acquire edge. The key
// identifies the synchronization object (pointer identity). Observers run
// in the acting thread's context, under the scheduler baton.
type SyncObserver func(t *Thread, op SyncOp, key any)

// SetSyncObserver installs the observer (nil disables). Install before
// Run; primitives consult it on every operation.
func (w *World) SetSyncObserver(obs SyncObserver) { w.syncObs = obs }

// noteSync dispatches one edge to the observer, if any.
func (w *World) noteSync(t *Thread, op SyncOp, key any) {
	if w.syncObs != nil {
		w.syncObs(t, op, key)
	}
}
