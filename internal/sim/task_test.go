package sim

import (
	"errors"
	"testing"
)

func TestTaskPoolRunsTasks(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	ran := 0
	err := w.Run(func(main *Thread) {
		pool := NewTaskPool(main, 2, "pool")
		var handles []*TaskHandle
		for i := 0; i < 6; i++ {
			handles = append(handles, pool.Submit(main, "t", func(th *Thread) {
				th.Work(Millisecond)
				ran++
			}))
		}
		for _, h := range handles {
			h.Wait(main)
			if !h.Done() {
				t.Error("Wait returned before Done")
			}
		}
		pool.Shutdown(main)
		pool.Join(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran != 6 {
		t.Fatalf("ran %d tasks, want 6", ran)
	}
}

func TestTaskPoolParallelism(t *testing.T) {
	// Two workers: six 1ms tasks should take ~3ms, not ~6ms.
	w := NewWorld(Config{Seed: 1})
	err := w.Run(func(main *Thread) {
		pool := NewTaskPool(main, 2, "pool")
		var handles []*TaskHandle
		for i := 0; i < 6; i++ {
			handles = append(handles, pool.Submit(main, "t", func(th *Thread) {
				th.Sleep(Millisecond)
			}))
		}
		for _, h := range handles {
			h.Wait(main)
		}
		pool.Shutdown(main)
		pool.Join(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := w.Now(); got < Time(3*Millisecond) || got > Time(4*Millisecond) {
		t.Fatalf("6 tasks on 2 workers took %v, want ~3ms", got)
	}
}

func TestTaskRunsOnWorkerThreadIdentity(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	var taskTID int
	var workerIDs []int
	err := w.Run(func(main *Thread) {
		pool := NewTaskPool(main, 1, "pool")
		for _, wk := range pool.Workers() {
			workerIDs = append(workerIDs, wk.ID())
		}
		h := pool.Submit(main, "t", func(th *Thread) { taskTID = th.ID() })
		h.Wait(main)
		pool.Shutdown(main)
		pool.Join(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(workerIDs) != 1 || taskTID != workerIDs[0] {
		t.Fatalf("task ran on thread %d, workers %v", taskTID, workerIDs)
	}
}

func TestTaskAsyncLocalContextFlows(t *testing.T) {
	// A plain TLS value is visible inside the task even though the task
	// runs on a worker thread that never set it.
	w := NewWorld(Config{Seed: 1})
	var seen any
	var workerOwn any
	err := w.Run(func(main *Thread) {
		pool := NewTaskPool(main, 1, "pool")
		main.SetTLS("request-id", "r-42")
		h := pool.Submit(main, "t", func(th *Thread) { seen = th.TLS("request-id") })
		h.Wait(main)
		// Outside a task, the worker's own TLS must be untouched.
		h2 := pool.Submit(main, "probe", func(th *Thread) {})
		h2.Wait(main)
		for _, wk := range pool.Workers() {
			_ = wk
		}
		workerOwn = nil
		pool.Shutdown(main)
		pool.Join(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if seen != "r-42" {
		t.Fatalf("async-local value = %v", seen)
	}
	if workerOwn != nil {
		t.Fatalf("worker TLS polluted: %v", workerOwn)
	}
}

type taskForkCounter struct{ forks int }

func (f *taskForkCounter) ForkTask(_ *Thread, taskID int) any {
	f.forks++
	return &taskForkCounter{}
}

func TestTaskForkerHookRunsPerSubmit(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	fc := &taskForkCounter{}
	err := w.Run(func(main *Thread) {
		main.SetTLS("vc", fc)
		pool := NewTaskPool(main, 2, "pool")
		var handles []*TaskHandle
		for i := 0; i < 3; i++ {
			handles = append(handles, pool.Submit(main, "t", func(th *Thread) {
				if th.TLS("vc") == fc {
					t.Error("task shares submitter's value despite TaskForker")
				}
			}))
		}
		for _, h := range handles {
			h.Wait(main)
		}
		pool.Shutdown(main)
		pool.Join(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fc.forks != 3 {
		t.Fatalf("ForkTask ran %d times, want 3", fc.forks)
	}
}

func TestTaskIDsUniqueVsThreads(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	ids := map[int]bool{}
	err := w.Run(func(main *Thread) {
		ids[main.ID()] = true
		pool := NewTaskPool(main, 2, "pool")
		for _, wk := range pool.Workers() {
			if ids[wk.ID()] {
				t.Errorf("duplicate id %d", wk.ID())
			}
			ids[wk.ID()] = true
		}
		for i := 0; i < 4; i++ {
			h := pool.Submit(main, "t", func(*Thread) {})
			if ids[h.ID()] {
				t.Errorf("task id %d collides", h.ID())
			}
			ids[h.ID()] = true
			h.Wait(main)
		}
		pool.Shutdown(main)
		pool.Join(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestTaskFaultPropagates(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	err := w.Run(func(main *Thread) {
		pool := NewTaskPool(main, 1, "pool")
		h := pool.Submit(main, "boom", func(th *Thread) {
			th.Throw(errors.New("task exploded"))
		})
		h.Wait(main)
	})
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want fault", err)
	}
}

func TestSubmitFromWorkerThread(t *testing.T) {
	// A task can submit a child task to the same pool (nested submission).
	w := NewWorld(Config{Seed: 1})
	childRan := false
	err := w.Run(func(main *Thread) {
		pool := NewTaskPool(main, 2, "pool")
		var child *TaskHandle
		parent := pool.Submit(main, "parent", func(th *Thread) {
			child = pool.Submit(th, "child", func(*Thread) { childRan = true })
		})
		parent.Wait(main)
		child.Wait(main)
		pool.Shutdown(main)
		pool.Join(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !childRan {
		t.Fatal("nested task never ran")
	}
}
