package sim

import (
	"errors"
	"testing"
)

func TestRWMutexSharedReaders(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	var m RWMutex
	concurrent, maxConcurrent := 0, 0
	err := w.Run(func(main *Thread) {
		var wg WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(main, 1)
			main.Spawn("reader", func(th *Thread) {
				m.RLock(th)
				concurrent++
				if concurrent > maxConcurrent {
					maxConcurrent = concurrent
				}
				th.Sleep(Millisecond)
				concurrent--
				m.RUnlock(th)
				wg.Done(th)
			})
		}
		wg.Wait(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if maxConcurrent != 4 {
		t.Fatalf("readers did not share: max %d", maxConcurrent)
	}
	if got := w.Now(); got > Time(2*Millisecond) {
		t.Fatalf("shared reads serialized: %v", got)
	}
}

func TestRWMutexWriterExcludes(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	var m RWMutex
	inWrite := false
	err := w.Run(func(main *Thread) {
		var wg WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(main, 1)
			main.Spawn("writer", func(th *Thread) {
				m.Lock(th)
				if inWrite {
					t.Error("two writers inside")
				}
				inWrite = true
				th.Sleep(Millisecond)
				inWrite = false
				m.Unlock(th)
				wg.Done(th)
			})
			wg.Add(main, 1)
			main.Spawn("reader", func(th *Thread) {
				m.RLock(th)
				if inWrite {
					t.Error("reader inside while writing")
				}
				th.Sleep(500 * Microsecond)
				m.RUnlock(th)
				wg.Done(th)
			})
		}
		wg.Wait(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRWMutexWriterPreference(t *testing.T) {
	// A waiting writer blocks newly arriving readers.
	w := NewWorld(Config{Seed: 1})
	var m RWMutex
	var order []string
	err := w.Run(func(main *Thread) {
		m.RLock(main) // hold a read lock
		writer := main.Spawn("writer", func(th *Thread) {
			m.Lock(th)
			order = append(order, "writer")
			m.Unlock(th)
		})
		main.Sleep(Millisecond) // writer is now queued
		lateReader := main.Spawn("late-reader", func(th *Thread) {
			m.RLock(th)
			order = append(order, "late-reader")
			m.RUnlock(th)
		})
		main.Sleep(Millisecond)
		m.RUnlock(main) // release: writer must go first
		main.Join(writer)
		main.Join(lateReader)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != "writer" {
		t.Fatalf("order = %v, want writer first", order)
	}
}

func TestRWMutexMisuseFaults(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	var m RWMutex
	err := w.Run(func(main *Thread) { m.RUnlock(main) })
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("RUnlock misuse err = %v", err)
	}
	w2 := NewWorld(Config{Seed: 1})
	var m2 RWMutex
	err2 := w2.Run(func(main *Thread) { m2.Unlock(main) })
	if !errors.As(err2, &f) {
		t.Fatalf("Unlock misuse err = %v", err2)
	}
}

func TestCondSignalAndBroadcast(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	var mu Mutex
	cond := Cond{L: &mu}
	ready := 0
	err := w.Run(func(main *Thread) {
		var wg WaitGroup
		for i := 0; i < 3; i++ {
			wg.Add(main, 1)
			main.Spawn("waiter", func(th *Thread) {
				mu.Lock(th)
				for ready == 0 {
					cond.Wait(th)
				}
				ready--
				mu.Unlock(th)
				wg.Done(th)
			})
		}
		main.Sleep(Millisecond)
		mu.Lock(main)
		ready = 1
		cond.Signal(main)
		mu.Unlock(main)
		main.Sleep(Millisecond)
		mu.Lock(main)
		ready += 2
		cond.Broadcast(main)
		mu.Unlock(main)
		wg.Wait(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ready != 0 {
		t.Fatalf("ready = %d after all waiters", ready)
	}
}

func TestCondWaitWithoutLockFaults(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	var mu Mutex
	cond := Cond{L: &mu}
	err := w.Run(func(main *Thread) { cond.Wait(main) })
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want fault", err)
	}
}
