package sim

import (
	"fmt"
	"testing"
)

// chaosRun exercises every primitive at once — threads, tasks, mutexes,
// reader/writer locks, queues, events, semaphores, timed waits, jitter —
// and returns a full execution fingerprint: the interleaving of labeled
// checkpoints plus the final virtual time.
func chaosRun(seed int64) (fingerprint []string, end Time, err error) {
	w := NewWorld(Config{Seed: seed, Jitter: 0.1})
	note := func(s string) { fingerprint = append(fingerprint, s) }
	err = w.Run(func(main *Thread) {
		var (
			mu   Mutex
			rw   RWMutex
			ev   Event
			q    Queue
			wg   WaitGroup
			sem  = NewSemaphore(2)
			pool = NewTaskPool(main, 2, "chaos")
		)
		for i := 0; i < 4; i++ {
			i := i
			wg.Add(main, 1)
			main.Spawn(fmt.Sprintf("worker%d", i), func(t *Thread) {
				defer wg.Done(t)
				t.Work(Duration(100+37*i) * Microsecond)
				sem.Acquire(t)
				mu.Lock(t)
				note(fmt.Sprintf("crit-%d", i))
				mu.Unlock(t)
				sem.Release(t)
				if i%2 == 0 {
					rw.RLock(t)
					note(fmt.Sprintf("read-%d", i))
					rw.RUnlock(t)
				} else {
					rw.Lock(t)
					note(fmt.Sprintf("write-%d", i))
					rw.Unlock(t)
				}
				if ev.WaitTimeout(t, Duration(200+i*50)*Microsecond) {
					note(fmt.Sprintf("signaled-%d", i))
				} else {
					note(fmt.Sprintf("timeout-%d", i))
				}
				q.Send(t, i)
			})
		}
		var handles []*TaskHandle
		for i := 0; i < 3; i++ {
			i := i
			handles = append(handles, pool.Submit(main, "task", func(t *Thread) {
				t.Work(Duration(80+29*i) * Microsecond)
				note(fmt.Sprintf("task-%d", i))
			}))
		}
		main.Sleep(400 * Microsecond)
		ev.Set(main)
		for range [4]int{} {
			v, ok := q.RecvTimeout(main, 10*Millisecond)
			if !ok {
				note("drain-timeout")
				break
			}
			note(fmt.Sprintf("drained-%d", v))
		}
		for _, h := range handles {
			h.Wait(main)
		}
		pool.Shutdown(main)
		pool.Join(main)
		wg.Wait(main)
	})
	return fingerprint, w.Now(), err
}

// TestChaosDeterminism: identical seeds yield identical interleavings and
// end times over the full primitive surface; different seeds diverge.
func TestChaosDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		f1, e1, err1 := chaosRun(seed)
		f2, e2, err2 := chaosRun(seed)
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d: errors %v / %v", seed, err1, err2)
		}
		if e1 != e2 {
			t.Fatalf("seed %d: end times diverged: %v vs %v", seed, e1, e2)
		}
		if len(f1) != len(f2) {
			t.Fatalf("seed %d: fingerprint lengths diverged: %d vs %d", seed, len(f1), len(f2))
		}
		for i := range f1 {
			if f1[i] != f2[i] {
				t.Fatalf("seed %d: fingerprints diverged at %d: %q vs %q", seed, i, f1[i], f2[i])
			}
		}
	}

	// Across seeds, at least some interleavings must differ.
	base, _, _ := chaosRun(1)
	diverged := false
	for seed := int64(2); seed <= 6 && !diverged; seed++ {
		other, _, _ := chaosRun(seed)
		if len(other) != len(base) {
			diverged = true
			break
		}
		for i := range base {
			if base[i] != other[i] {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Fatal("six seeds produced identical chaos interleavings")
	}
}

// TestChaosNoLeaksAcrossManyWorlds: repeated chaos worlds must not strand
// goroutines (the killAll/park protocol covers every primitive).
func TestChaosNoLeaksAcrossManyWorlds(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		if _, _, err := chaosRun(seed); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
