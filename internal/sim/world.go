package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Config parameterizes a World.
type Config struct {
	// Seed drives all scheduling tie-breaks and duration jitter. Two runs
	// with equal seeds and equal thread programs are identical.
	Seed int64

	// Jitter is the relative spread applied to Work durations, e.g. 0.05
	// scales each duration by a uniform factor in [0.95, 1.05]. Zero means
	// fully deterministic durations.
	Jitter float64

	// MaxTime aborts the run with ErrTimeout once virtual time would pass
	// it. Zero means no limit.
	MaxTime Duration

	// MaxEvents aborts the run with ErrEventLimit after that many scheduler
	// events (a runaway-loop backstop). Zero means a generous default.
	MaxEvents int

	// Cancel, when non-nil, aborts the run with ErrCanceled once the
	// channel is closed. The check happens between scheduler events, so a
	// cancelled world stops at the next event boundary and unwinds its
	// threads cleanly — this is how wall-clock run budgets cut short a
	// detection run that virtual-time limits cannot bound.
	Cancel <-chan struct{}
}

// DefaultMaxEvents bounds scheduler events when Config.MaxEvents is zero.
const DefaultMaxEvents = 20_000_000

// Errors reported by World.Run.
var (
	// ErrTimeout reports that virtual time exceeded Config.MaxTime.
	ErrTimeout = errors.New("sim: virtual time limit exceeded")
	// ErrDeadlock reports that live threads remain but none is runnable.
	ErrDeadlock = errors.New("sim: deadlock: all live threads blocked")
	// ErrEventLimit reports that the scheduler event budget was exhausted.
	ErrEventLimit = errors.New("sim: event limit exceeded")
	// ErrCanceled reports that Config.Cancel fired before the run finished.
	ErrCanceled = errors.New("sim: run canceled")
)

// Fault describes an unhandled failure raised by a thread — the analog of
// the unhandled exception that is Waffle's bug oracle.
type Fault struct {
	Err    error    // what went wrong
	Thread int      // faulting thread id
	Name   string   // faulting thread name
	T      Time     // virtual time of the fault
	Op     string   // the thread's last announced operation label
	Stacks []string // one "name@op" line per live thread, faulting first
}

func (f *Fault) Error() string {
	return fmt.Sprintf("fault at %v in thread %d (%s) during %q: %v", f.T, f.Thread, f.Name, f.Op, f.Err)
}

// World is a deterministic virtual-time scheduler. Create one with NewWorld,
// populate it via Run's root thread, and inspect the outcome afterwards.
// A World must not be reused after Run returns.
type World struct {
	cfg     Config
	rng     *rand.Rand
	now     Time
	nextTID int
	events  int

	queue    eventQueue
	threads  map[int]*Thread
	alive    int
	current  *Thread
	fault    *Fault
	stopping bool
	syncObs  SyncObserver

	parkCh chan struct{}
}

// NewWorld returns a World configured by cfg.
func NewWorld(cfg Config) *World {
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = DefaultMaxEvents
	}
	return &World{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		threads: make(map[int]*Thread),
		parkCh:  make(chan struct{}),
	}
}

// Now reports the current virtual time. Safe to call from thread context or
// after Run returns.
func (w *World) Now() Time { return w.now }

// Seed reports the seed the world was created with.
func (w *World) Seed() int64 { return w.cfg.Seed }

// Fault returns the fault that ended the run, or nil.
func (w *World) Fault() *Fault { return w.fault }

// Rand returns a float64 in [0,1) from the world's seeded stream. Must only
// be called from thread context (under the scheduler baton).
func (w *World) Rand() float64 { return w.rng.Float64() }

// Jitter scales d by the configured jitter spread.
func (w *World) Jitter(d Duration) Duration {
	if w.cfg.Jitter <= 0 || d <= 0 {
		return d
	}
	f := 1 + w.cfg.Jitter*(2*w.rng.Float64()-1)
	j := Duration(float64(d) * f)
	if j < 0 {
		j = 0
	}
	return j
}

// Run creates the root thread executing main and drives the world until all
// threads finish, a thread faults, the world deadlocks, or a limit trips.
// It returns nil on clean completion; a *Fault satisfies errors.As.
func (w *World) Run(main func(*Thread)) error {
	if w.nextTID != 0 {
		return errors.New("sim: World.Run called twice")
	}
	root := w.newThread(nil, "main", main)
	w.schedule(root, 0)

	var err error
	for {
		if w.fault != nil {
			err = w.fault
			break
		}
		if w.events >= w.cfg.MaxEvents {
			err = ErrEventLimit
			break
		}
		if w.canceled() {
			err = ErrCanceled
			break
		}
		if w.queue.Len() == 0 {
			if w.alive > 0 {
				err = ErrDeadlock
			}
			break
		}
		it := heap.Pop(&w.queue).(*eventItem)
		if it.t.state == stateDone || it.gen != it.t.wakeGen {
			// Stale entry: the thread finished, or was rescheduled after
			// this entry was pushed (timed waits push a deadline wake that
			// an early signal supersedes).
			continue
		}
		w.events++
		if it.wake > w.now {
			w.now = it.wake
		}
		if w.cfg.MaxTime > 0 && w.now > Time(w.cfg.MaxTime) {
			err = ErrTimeout
			break
		}
		w.resume(it.t, resumeMsg{})
	}
	w.killAll()
	return err
}

// canceled reports whether Config.Cancel has fired.
func (w *World) canceled() bool {
	if w.cfg.Cancel == nil {
		return false
	}
	select {
	case <-w.cfg.Cancel:
		return true
	default:
		return false
	}
}

// resume hands the baton to t and waits until it parks again.
func (w *World) resume(t *Thread, msg resumeMsg) {
	w.current = t
	t.state = stateRunning
	t.resume <- msg
	<-w.parkCh
	w.current = nil
}

// killAll unwinds every live thread so Run leaks no goroutines.
func (w *World) killAll() {
	w.stopping = true
	ids := make([]int, 0, len(w.threads))
	for id, t := range w.threads {
		if t.state != stateDone {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		t := w.threads[id]
		if t.state == stateDone {
			continue
		}
		w.resume(t, resumeMsg{kill: true})
	}
}

// schedule makes t runnable at wake (clamped to now). Rescheduling a
// thread invalidates any earlier pending entry for it: only the newest
// wake counts (timed waits rely on this to let a signal supersede the
// deadline wake).
func (w *World) schedule(t *Thread, wake Time) {
	if wake < w.now {
		wake = w.now
	}
	t.state = stateRunnable
	t.wakeGen++
	heap.Push(&w.queue, &eventItem{wake: wake, prio: w.rng.Uint64(), seq: w.queue.nextSeq(), gen: t.wakeGen, t: t})
}

func (w *World) newThread(parent *Thread, name string, fn func(*Thread)) *Thread {
	w.nextTID++
	t := &Thread{
		w:      w,
		id:     w.nextTID,
		name:   name,
		resume: make(chan resumeMsg),
		tls:    make(map[TLSKey]any),
	}
	if parent != nil {
		t.parent = parent.id
		for k, v := range parent.tls {
			if f, ok := v.(TLSForker); ok {
				t.tls[k] = f.ForkTLS(parent, t)
			} else {
				t.tls[k] = v
			}
		}
	}
	w.threads[t.id] = t
	w.alive++
	go t.run(fn)
	return t
}

// stacks renders one line per live thread, the faulting thread first.
func (w *World) stacks(first *Thread) []string {
	var out []string
	add := func(t *Thread) {
		out = append(out, fmt.Sprintf("thread %d (%s) @ %s", t.id, t.name, t.op))
	}
	add(first)
	ids := make([]int, 0, len(w.threads))
	for id := range w.threads {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		t := w.threads[id]
		if t != first && t.state != stateDone {
			add(t)
		}
	}
	return out
}

// Threads reports a snapshot of all threads ever created, ordered by id.
// Intended for post-run inspection and reports.
func (w *World) Threads() []ThreadInfo {
	ids := make([]int, 0, len(w.threads))
	for id := range w.threads {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]ThreadInfo, 0, len(ids))
	for _, id := range ids {
		t := w.threads[id]
		out = append(out, ThreadInfo{ID: t.id, Parent: t.parent, Name: t.name, Done: t.state == stateDone, LastOp: t.op})
	}
	return out
}

// ThreadInfo is a read-only snapshot of one thread's identity and progress.
type ThreadInfo struct {
	ID     int
	Parent int
	Name   string
	Done   bool
	LastOp string
}

// eventItem orders runnable threads by (wake time, seeded priority, seq).
type eventItem struct {
	wake Time
	prio uint64
	seq  uint64
	gen  uint64
	t    *Thread
}

type eventQueue struct {
	items []*eventItem
	seq   uint64
}

func (q *eventQueue) nextSeq() uint64 { q.seq++; return q.seq }

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.wake != b.wake {
		return a.wake < b.wake
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

func (q *eventQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *eventQueue) Push(x any) { q.items = append(q.items, x.(*eventItem)) }

func (q *eventQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return it
}
