package sim

// Timed variants of the blocking primitives. Network-flavored application
// code (brokers, keep-alive monitors, RPC clients) waits with deadlines;
// these variants let scenarios model that without hand-rolled timer
// threads. A timed-out waiter simply gives up its slot — no fault.

// WaitTimeout blocks until the event is signaled or d elapses, reporting
// whether the event was signaled.
func (e *Event) WaitTimeout(t *Thread, d Duration) bool {
	if e.set {
		t.w.noteSync(t, SyncAcquire, e)
		return true
	}
	if d <= 0 {
		return false
	}
	deadline := t.w.now.Add(d)
	// Push a deadline wake; a Set reschedules us earlier and supersedes it
	// (the scheduler honors only a thread's newest wake). After waking we
	// decide by state and scrub our waiter entry.
	e.waiters = append(e.waiters, t)
	t.w.schedule(t, deadline)
	t.park()
	e.waiters = removeWaiter(e.waiters, t)
	if e.set {
		t.w.noteSync(t, SyncAcquire, e)
		return true
	}
	return false
}

// RecvTimeout dequeues the oldest item, giving up after d. ok is false on
// timeout or when the queue is closed and drained.
func (q *Queue) RecvTimeout(t *Thread, d Duration) (v any, ok bool) {
	if v, ok := q.TryRecv(); ok {
		t.w.noteSync(t, SyncAcquire, q)
		return v, true
	}
	if q.closed || d <= 0 {
		return nil, false
	}
	deadline := t.w.now.Add(d)
	for {
		q.waiters = append(q.waiters, t)
		t.w.schedule(t, deadline)
		t.park()
		q.waiters = removeWaiter(q.waiters, t)
		if v, ok := q.TryRecv(); ok {
			t.w.noteSync(t, SyncAcquire, q)
			return v, true
		}
		if q.closed || t.w.now >= deadline {
			return nil, false
		}
	}
}

// AcquireTimeout takes one permit, giving up after d. It reports whether a
// permit was acquired.
func (s *Semaphore) AcquireTimeout(t *Thread, d Duration) bool {
	if s.permits > 0 {
		s.permits--
		t.w.noteSync(t, SyncAcquire, s)
		return true
	}
	if d <= 0 {
		return false
	}
	deadline := t.w.now.Add(d)
	for {
		s.waiters = append(s.waiters, t)
		t.w.schedule(t, deadline)
		t.park()
		s.waiters = removeWaiter(s.waiters, t)
		if s.permits > 0 {
			s.permits--
			t.w.noteSync(t, SyncAcquire, s)
			return true
		}
		if t.w.now >= deadline {
			return false
		}
	}
}

// removeWaiter deletes t from a waiter list (no-op when absent).
func removeWaiter(list []*Thread, t *Thread) []*Thread {
	for i, w := range list {
		if w == t {
			copy(list[i:], list[i+1:])
			list[len(list)-1] = nil
			return list[:len(list)-1]
		}
	}
	return list
}
