package sim

import "fmt"

// Task-oriented programming support: a TaskPool schedules submitted tasks
// onto a fixed set of worker threads, and each task carries an async-local
// context captured from its submitter — the analog of .NET's async-local
// storage, which "supports state propagation from a parent to a child task
// irrespective of which thread these tasks are scheduled to run on" (§4.1,
// Note). Waffle's vector clocks ride this propagation exactly as they ride
// thread-local storage: a TLS value implementing TaskForker is forked at
// Submit with the task's fresh id, so parent-before-submit events stay
// causally ordered with everything the task does, no matter which worker
// runs it.

// TaskForker lets a TLS value customize propagation into a submitted
// task's async-local context (the task analog of TLSForker). Values that
// implement only TLSForker (or neither) are copied by reference.
type TaskForker interface {
	// ForkTask runs during Submit, in the submitter's context. It returns
	// the value installed in the task's async-local context and may update
	// the submitter's TLS in place.
	ForkTask(submitter *Thread, taskID int) any
}

// TaskHandle tracks one submitted task.
type TaskHandle struct {
	id   int
	name string
	done Event
}

// ID returns the task's unique id (drawn from the same id space as thread
// ids, so vector-clock components never collide).
func (h *TaskHandle) ID() int { return h.id }

// Name returns the label given at Submit.
func (h *TaskHandle) Name() string { return h.name }

// Wait blocks the calling thread until the task has finished.
func (h *TaskHandle) Wait(t *Thread) { h.done.Wait(t) }

// Done reports whether the task has finished.
func (h *TaskHandle) Done() bool { return h.done.IsSet() }

type taskItem struct {
	handle *TaskHandle
	ctx    map[TLSKey]any
	fn     func(*Thread)
}

// TaskPool runs submitted tasks on a fixed set of worker threads. Tasks
// execute under the worker thread's identity (as on real thread pools) but
// under their own async-local context: the worker's TLS is swapped for the
// task's context for the duration of the task and restored afterwards —
// the ExecutionContext flow of .NET.
type TaskPool struct {
	queue   Queue
	workers []*Thread
}

// NewTaskPool spawns n worker threads owned by t and returns the pool.
func NewTaskPool(t *Thread, n int, name string) *TaskPool {
	if n <= 0 {
		n = 1
	}
	p := &TaskPool{}
	for i := 0; i < n; i++ {
		p.workers = append(p.workers, t.Spawn(fmt.Sprintf("%s-worker%d", name, i), p.work))
	}
	return p
}

// work is each worker's loop: pull a task, install its context, run it.
func (p *TaskPool) work(t *Thread) {
	for {
		v, ok := p.queue.Recv(t)
		if !ok {
			return
		}
		item := v.(*taskItem)
		saved := t.tls
		t.tls = item.ctx
		t.SetOp("task " + item.handle.name)
		item.fn(t)
		t.tls = saved
		item.handle.done.Set(t)
	}
}

// Submit enqueues fn as a task. The task's async-local context is forked
// from the submitting thread's TLS at this moment: TaskForker values run
// their fork protocol with the task's fresh id; everything else is copied
// by reference. Returns a handle to Wait on.
func (p *TaskPool) Submit(t *Thread, name string, fn func(*Thread)) *TaskHandle {
	t.w.nextTID++
	handle := &TaskHandle{id: t.w.nextTID, name: name}
	ctx := make(map[TLSKey]any, len(t.tls))
	for k, v := range t.tls {
		if f, ok := v.(TaskForker); ok {
			ctx[k] = f.ForkTask(t, handle.id)
		} else {
			ctx[k] = v
		}
	}
	p.queue.Send(t, &taskItem{handle: handle, ctx: ctx, fn: fn})
	return handle
}

// Shutdown closes the queue; workers exit after draining it. Join the pool
// afterwards to synchronize.
func (p *TaskPool) Shutdown(t *Thread) { p.queue.Close(t) }

// Join waits for every worker thread to exit (call Shutdown first).
func (p *TaskPool) Join(t *Thread) {
	for _, w := range p.workers {
		t.Join(w)
	}
}

// Workers returns the pool's worker threads (for inspection in tests).
func (p *TaskPool) Workers() []*Thread { return p.workers }
