// Package sim implements a deterministic, virtual-time execution substrate
// for concurrency experiments.
//
// A World owns a discrete-event clock and a set of cooperatively scheduled
// Threads (each backed by a goroutine, but only one ever runs at a time — a
// scheduler "baton" is handed back and forth over channels). Virtual time
// advances only when every runnable thread has parked, which makes runs with
// the same seed bit-for-bit reproducible while still exhibiting realistic
// interleavings: ties at equal virtual time are broken by a seeded RNG, and
// operation durations carry seeded jitter.
//
// The substrate replaces the physical time that the Waffle paper depends on
// (near-miss windows, delay lengths, overhead ratios are all functions of
// timestamps); every algorithm in this repository consumes sim.Time exactly
// where the paper consumes wall-clock milliseconds.
package sim

import "fmt"

// Time is a point in virtual time, in microseconds since World start.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration int64

// Convenient virtual-time units.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Milliseconds reports the duration in (possibly fractional) milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Seconds reports the duration in (possibly fractional) seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String renders the duration in a compact human-readable unit.
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	default:
		return fmt.Sprintf("%dµs", int64(d))
	}
}

// String renders the time as a duration offset from world start.
func (t Time) String() string { return Duration(t).String() }
