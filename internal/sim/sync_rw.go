package sim

import "errors"

// RWMutex is a virtual-time readers-writer lock with writer preference:
// once a writer is waiting, new readers queue behind it. The zero value is
// unlocked.
type RWMutex struct {
	readers     int
	writer      *Thread
	waitWriters []*Thread
	waitReaders []*Thread
}

// RLock acquires a shared (read) lock.
func (m *RWMutex) RLock(t *Thread) {
	for m.writer != nil || len(m.waitWriters) > 0 {
		m.waitReaders = append(m.waitReaders, t)
		t.block()
	}
	m.readers++
	t.w.noteSync(t, SyncAcquire, m)
}

// RUnlock releases a shared lock.
func (m *RWMutex) RUnlock(t *Thread) {
	if m.readers <= 0 {
		t.Throw(errors.New("sim: RUnlock without RLock"))
	}
	t.w.noteSync(t, SyncRelease, m)
	m.readers--
	if m.readers == 0 {
		m.wakeNext(t)
	}
}

// Lock acquires the exclusive (write) lock.
func (m *RWMutex) Lock(t *Thread) {
	t.w.noteSync(t, SyncRequest, m)
	for m.writer != nil || m.readers > 0 {
		m.waitWriters = append(m.waitWriters, t)
		t.block()
	}
	m.writer = t
	t.w.noteSync(t, SyncAcquire, m)
}

// Unlock releases the exclusive lock.
func (m *RWMutex) Unlock(t *Thread) {
	if m.writer != t {
		t.Throw(errors.New("sim: Unlock of RWMutex not held by caller"))
	}
	t.w.noteSync(t, SyncRelease, m)
	m.writer = nil
	m.wakeNext(t)
}

// wakeNext hands the lock opportunity to a waiting writer (preferred) or
// all waiting readers.
func (m *RWMutex) wakeNext(t *Thread) {
	if len(m.waitWriters) > 0 {
		next := m.waitWriters[0]
		m.waitWriters = t.w.trimFront(m.waitWriters)
		t.w.schedule(next, t.w.now)
		return
	}
	for _, r := range m.waitReaders {
		t.w.schedule(r, t.w.now)
	}
	m.waitReaders = m.waitReaders[:0]
}

// Cond is a virtual-time condition variable bound to a Mutex.
type Cond struct {
	// L is the mutex that guards the condition; must be set before use.
	L       *Mutex
	waiters []*Thread
}

// Wait atomically releases the mutex, blocks until Signal or Broadcast,
// and reacquires the mutex before returning. As with sync.Cond, callers
// must re-check their condition in a loop.
func (c *Cond) Wait(t *Thread) {
	if c.L == nil || c.L.owner != t {
		t.Throw(errors.New("sim: Cond.Wait without held mutex"))
	}
	c.waiters = append(c.waiters, t)
	c.L.Unlock(t)
	t.block()
	c.L.Lock(t)
}

// Signal wakes one waiter, if any.
func (c *Cond) Signal(t *Thread) {
	if len(c.waiters) == 0 {
		return
	}
	next := c.waiters[0]
	c.waiters = t.w.trimFront(c.waiters)
	t.w.schedule(next, t.w.now)
}

// Broadcast wakes every waiter.
func (c *Cond) Broadcast(t *Thread) {
	for _, waiter := range c.waiters {
		t.w.schedule(waiter, t.w.now)
	}
	c.waiters = c.waiters[:0]
}
