package control

import (
	"encoding/json"
	"net/http"

	"waffle/internal/live"
)

// LivePlane is the HTTP control plane for an embedded live.Monitor: it
// mounts toggle/retune/status endpoints on the same mux that already
// serves /metrics (the -metrics-addr listener), so a deployed service's
// detection is operable without a restart:
//
//	POST /v1/live/start   enable detection (resumes retained state)
//	POST /v1/live/stop    disable detection (plans and bugs retained)
//	POST /v1/live/tune    partial retune {"sample_rate","object_rate","slo","alpha","decay"}
//	GET  /v1/live/status  full MonitorStatus JSON
//
// Tune rides the same seam as core.Tuner-driven retunes: options swap at
// a request boundary, in-flight requests keep the options (and injector
// option copies) they started with, so a retune can never race a running
// injection. Every response is JSON; validation failures return 400 with
// {"error": "..."}.
type LivePlane struct {
	Mon *live.Monitor
}

// Mount registers the control-plane routes on mux.
func (p *LivePlane) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/live/start", func(w http.ResponseWriter, r *http.Request) {
		p.Mon.Start()
		planeJSON(w, http.StatusOK, p.Mon.Status())
	})
	mux.HandleFunc("POST /v1/live/stop", func(w http.ResponseWriter, r *http.Request) {
		p.Mon.Stop()
		planeJSON(w, http.StatusOK, p.Mon.Status())
	})
	mux.HandleFunc("POST /v1/live/tune", func(w http.ResponseWriter, r *http.Request) {
		var req live.TuneRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			planeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad tune request: " + err.Error()})
			return
		}
		if err := p.Mon.Tune(req); err != nil {
			planeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		planeJSON(w, http.StatusOK, p.Mon.Status())
	})
	mux.HandleFunc("GET /v1/live/status", func(w http.ResponseWriter, r *http.Request) {
		planeJSON(w, http.StatusOK, p.Mon.Status())
	})
}

func planeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
