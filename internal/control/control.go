// Package control is the adaptive campaign controller: it closes the
// loop from the obs layer back into the search. A campaign over many
// targets (program × bug × tool sessions) spends most of its budget on
// sessions that will never expose anything — disarmed programs whose
// probabilities have decayed to the floor, tools whose candidate sets
// went quiet, stragglers burning runs long past the point where every
// comparable exposure has already happened. The controller watches the
// signals the observability layer already collects and retunes, per
// target, at run boundaries only:
//
//   - Scale to zero: a target whose injection sites have all decayed to
//     probability zero (core.SiteProber), or that has hit the decay
//     floor (inject.decay_floor_hits) and then gone an extended dry
//     spell without a single injected or even skipped delay, stops
//     consuming runs. Under §5's zero-false-positive contract a run
//     without delays can never report a bug, so stopping such a session
//     forfeits nothing.
//   - Budget reallocation: once enough same-tool exposures have been
//     observed campaign-wide, an unexposed session's budget is capped
//     at a margin above the observed p99 runs-to-exposure — sessions
//     far beyond where every comparable exposure landed are almost
//     certainly misses.
//   - Parameter escalation: a session injecting run after run without
//     exposing gets its Alpha (delay length multiplier, §4.3) raised to
//     widen the displacement window and its Decay (§4.4) raised to
//     quiesce dead sites faster — multiplicative steps, clamped, and
//     guarded by the campaign-wide delay-overhead histogram so delay
//     lengths are not escalated when runs are already delay-dominated.
//   - Pool shrinking: sched worker caps shrink proportionally to the
//     fraction of campaign targets still live (Controller.PoolTune).
//
// All retuning happens through core.Session's run-boundary Tuner seam
// (see core/tune.go): options are copied at injector construction, so an
// in-flight run is never mutated; a nil or Disabled controller hands the
// session a nil Tuner and the search is byte-identical to an untuned one.
package control

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"waffle/internal/core"
	"waffle/internal/obs"
)

// Config tunes the controller itself. Zero values take the defaults
// below; they are deliberately conservative — the controller must never
// cost an exposure the fixed campaign would have found.
type Config struct {
	// DrySpellRuns is how many consecutive detection runs with zero
	// injected and zero skipped delays a quiet target must accumulate
	// before it is stopped. Default 2.
	DrySpellRuns int
	// UnproductiveRuns is how many consecutive clean delay-injecting
	// detection runs trigger a parameter escalation. Default 4.
	UnproductiveRuns int
	// AlphaStep multiplies Options.Alpha at each escalation, clamped to
	// MaxAlpha. Defaults 1.25 and 2.5.
	AlphaStep float64
	MaxAlpha  float64
	// DecayStep multiplies Options.Decay at each escalation, clamped to
	// MaxDecay. Defaults 2.0 and 0.5.
	DecayStep float64
	MaxDecay  float64
	// BudgetQuantile is the runs-to-exposure percentile the budget cap
	// derives from; BudgetMargin multiplies it. Defaults 99 and 2.0.
	BudgetQuantile float64
	BudgetMargin   float64
	// MinExposures is how many same-tool exposures the campaign must have
	// observed before budget caps apply. Default 5.
	MinExposures int
	// MinBudget floors any budget cap. Default 8.
	MinBudget int
	// Log, when non-nil, receives one JSON line per retune event.
	Log io.Writer
	// Disabled makes Target return nil, handing sessions a nil Tuner:
	// the -adaptive=false escape hatch that keeps searches byte-identical
	// to controller-free ones.
	Disabled bool
}

func (c Config) withDefaults() Config {
	if c.DrySpellRuns <= 0 {
		c.DrySpellRuns = 2
	}
	if c.UnproductiveRuns <= 0 {
		c.UnproductiveRuns = 4
	}
	if c.AlphaStep <= 1 {
		c.AlphaStep = 1.25
	}
	if c.MaxAlpha <= 0 {
		c.MaxAlpha = 2.5
	}
	if c.DecayStep <= 1 {
		c.DecayStep = 2.0
	}
	if c.MaxDecay <= 0 {
		c.MaxDecay = 0.5
	}
	if c.BudgetQuantile <= 0 || c.BudgetQuantile > 100 {
		c.BudgetQuantile = 99
	}
	if c.BudgetMargin <= 1 {
		c.BudgetMargin = 2.0
	}
	if c.MinExposures <= 0 {
		c.MinExposures = 5
	}
	if c.MinBudget <= 0 {
		c.MinBudget = 8
	}
	return c
}

// RetuneEvent records one controller decision, for the -adaptive-log
// JSONL stream and the BENCH_adaptive.json report.
type RetuneEvent struct {
	Target  string  `json:"target"`
	Tool    string  `json:"tool"`
	Run     int     `json:"run"`
	Action  string  `json:"action"` // "stop", "budget", "retune"
	Detail  string  `json:"detail"`
	Alpha   float64 `json:"alpha,omitempty"`
	Decay   float64 `json:"decay,omitempty"`
	MaxRuns int     `json:"max_runs,omitempty"`
	Saved   int     `json:"saved_runs,omitempty"`
}

// TargetState is a target's final per-campaign summary.
type TargetState struct {
	Name         string  `json:"name"`
	Tool         string  `json:"tool"`
	Runs         int     `json:"runs"`
	Exposed      bool    `json:"exposed"`
	ExposedRun   int     `json:"exposed_run,omitempty"`
	Stopped      bool    `json:"stopped"`
	StoppedAtRun int     `json:"stopped_at_run,omitempty"`
	SavedRuns    int     `json:"saved_runs,omitempty"`
	Alpha        float64 `json:"alpha,omitempty"`
	Decay        float64 `json:"decay,omitempty"`
	MaxRuns      int     `json:"max_runs"`
}

// Controller coordinates a campaign's targets. Create with New; hand
// each session a Target (as its core.Tuner) and report its Outcome back
// via Target.ObserveOutcome. Safe for concurrent use — campaign-level
// state is a Registry (internally synchronized) plus small mutexed maps.
type Controller struct {
	cfg  Config
	camp *obs.Registry // campaign-wide signals (per-tool exposure histograms, overhead)

	mu      sync.Mutex // guards targets
	targets map[string]*Target

	evmu   sync.Mutex // guards events + Log; never held with a Target's mu acquired after it
	events []RetuneEvent
}

// New returns a controller with cfg's zero values defaulted.
func New(cfg Config) *Controller {
	return &Controller{
		cfg:     cfg.withDefaults(),
		camp:    obs.New(),
		targets: make(map[string]*Target),
	}
}

// Target returns (creating on first use) the named target, backed by a
// fresh per-target registry. Nil — a no-op Tuner — on a nil or Disabled
// controller; callers must then leave Session.Tuner unset (a typed nil
// in the interface field would still short-circuit, but the nil check in
// Session is cheaper).
func (c *Controller) Target(name string) *Target {
	return c.TargetWithRegistry(name, obs.New())
}

// TargetWithRegistry is Target with a caller-supplied per-target
// registry — wire the same registry into the engine's Options.Metrics so
// the controller can read the target's injection counters
// (inject.decay_floor_hits in particular).
func (c *Controller) TargetWithRegistry(name string, reg *obs.Registry) *Target {
	if c == nil || c.cfg.Disabled {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.targets[name]; ok {
		return t
	}
	t := &Target{c: c, name: name, reg: reg}
	c.targets[name] = t
	return t
}

// Events returns a copy of all retune events so far, in decision order.
func (c *Controller) Events() []RetuneEvent {
	if c == nil {
		return nil
	}
	c.evmu.Lock()
	defer c.evmu.Unlock()
	return append([]RetuneEvent(nil), c.events...)
}

// Targets returns every target's state, sorted by name.
func (c *Controller) Targets() []TargetState {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	ts := make([]*Target, 0, len(c.targets))
	for _, t := range c.targets {
		ts = append(ts, t)
	}
	c.mu.Unlock()
	out := make([]TargetState, 0, len(ts))
	for _, t := range ts {
		out = append(out, t.state())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CampaignSnapshot snapshots the controller's campaign-wide registry:
// per-tool runs-to-exposure histograms, the delay-overhead histogram,
// and the control.* decision counters.
func (c *Controller) CampaignSnapshot() *obs.Snapshot {
	if c == nil {
		return nil
	}
	return c.camp.Snapshot()
}

// PoolTune returns a sched.Pool.Tune hook that shrinks the worker cap
// proportionally to the fraction of campaign targets still live, never
// below 1 and never above initial. Nil on a nil or Disabled controller
// (sched treats a nil Tune as a static pool).
func (c *Controller) PoolTune(initial int) func(wave, committed int) int {
	if c == nil || c.cfg.Disabled {
		return nil
	}
	if initial <= 0 {
		initial = 1
	}
	return func(wave, committed int) int {
		total, stopped := c.counts()
		if total == 0 {
			return initial
		}
		w := int(math.Ceil(float64(initial) * float64(total-stopped) / float64(total)))
		if w < 1 {
			w = 1
		}
		if w > initial {
			w = initial
		}
		return w
	}
}

func (c *Controller) counts() (total, stopped int) {
	c.mu.Lock()
	ts := make([]*Target, 0, len(c.targets))
	for _, t := range c.targets {
		ts = append(ts, t)
	}
	c.mu.Unlock()
	for _, t := range ts {
		t.mu.Lock()
		if t.stopped {
			stopped++
		}
		t.mu.Unlock()
	}
	return len(ts), stopped
}

func (c *Controller) emit(ev RetuneEvent) {
	c.evmu.Lock()
	defer c.evmu.Unlock()
	c.events = append(c.events, ev)
	if c.cfg.Log != nil {
		if b, err := json.Marshal(ev); err == nil {
			fmt.Fprintf(c.cfg.Log, "%s\n", b)
		}
	}
}

// Target is one session's controller endpoint. It implements core.Tuner;
// all methods are safe on a nil receiver (the disabled mode).
type Target struct {
	c    *Controller
	name string
	reg  *obs.Registry

	mu           sync.Mutex
	tool         string
	runs         int
	dryRuns      int
	unproductive int
	budgetCapped bool
	stopped      bool
	stoppedAt    int
	saved        int
	exposed      bool
	exposedRun   int
	alpha, decay float64
	maxRuns      int
}

// Registry returns the target's per-target registry (nil on nil).
func (t *Target) Registry() *obs.Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// TuneRun implements core.Tuner: one decision per run boundary.
func (t *Target) TuneRun(ctx core.TuneContext) core.TuneDecision {
	if t == nil {
		return core.TuneDecision{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cfg := t.c.cfg
	t.tool = ctx.Tool
	t.runs = ctx.Run - 1
	t.maxRuns = ctx.MaxRuns
	if ctx.Retunable {
		t.alpha, t.decay = ctx.Opts.Alpha, ctx.Opts.Decay
	}
	var d core.TuneDecision

	// Fold the previous detection run into the dry-spell and
	// unproductivity accounting. Preparation runs are skipped: they
	// inject nothing by design, which says nothing about liveness.
	if ctx.PrevDetection && ctx.Prev != nil {
		st := ctx.Prev.Stats
		t.c.camp.Histogram("control.delay_ticks", obs.DelayBuckets).Observe(int64(st.Total))
		if st.Count == 0 && st.Skipped == 0 {
			t.dryRuns++
		} else {
			t.dryRuns = 0
			if ctx.Prev.Outcome == core.RunClean {
				t.unproductive++
			}
		}
	}

	// Scale to zero. LiveSites == 0 means every known injection site has
	// decayed to probability zero; combined with a dry spell (no new
	// sites coming online either) the session cannot inject again, and a
	// delay-free run can never report a bug (§5) — its remaining budget
	// is pure waste. Tools that cannot report live sites fall back to the
	// decay-floor counter plus a doubled dry-spell window.
	quiet := ctx.LiveSites == 0
	if ctx.LiveSites < 0 && t.reg.Counter("inject.decay_floor_hits").Value() > 0 {
		quiet = t.dryRuns >= 2*cfg.DrySpellRuns
	}
	if quiet && t.dryRuns >= cfg.DrySpellRuns && !t.stopped {
		t.stopped = true
		t.stoppedAt = ctx.Run
		t.saved = ctx.MaxRuns - ctx.Run + 1
		t.c.camp.Counter("control.sessions_stopped").Inc()
		t.c.camp.Counter("control.runs_saved").Add(int64(t.saved))
		t.c.emit(RetuneEvent{
			Target: t.name, Tool: ctx.Tool, Run: ctx.Run, Action: "stop",
			Detail: fmt.Sprintf("live_sites=%d dry_runs=%d", ctx.LiveSites, t.dryRuns),
			Saved:  t.saved,
		})
		return core.TuneDecision{Stop: true}
	}

	// Budget reallocation: once the campaign has seen enough same-tool
	// exposures, cap this still-searching session's budget at a margin
	// above the observed tail. A saturated quantile (exposures in the
	// histogram's overflow bucket) disables the cap — the saturated
	// value is only a lower bound, and the tail is not actually known.
	if !t.budgetCapped {
		hname := "control.runs_to_exposure." + ctx.Tool
		if h := t.c.camp.Histogram(hname, obs.RunBuckets); h.Count() >= int64(cfg.MinExposures) {
			if q, sat, ok := t.c.camp.Snapshot().HistogramQuantileInfo(hname, cfg.BudgetQuantile); ok && !sat {
				budget := int(math.Ceil(q * cfg.BudgetMargin))
				if budget < cfg.MinBudget {
					budget = cfg.MinBudget
				}
				if budget < ctx.MaxRuns && budget >= ctx.Run {
					d.MaxRuns = budget
					t.budgetCapped = true
					t.maxRuns = budget
					t.c.camp.Counter("control.budget_caps").Inc()
					t.c.emit(RetuneEvent{
						Target: t.name, Tool: ctx.Tool, Run: ctx.Run, Action: "budget",
						Detail:  fmt.Sprintf("p%g=%g margin=%g", cfg.BudgetQuantile, q, cfg.BudgetMargin),
						MaxRuns: budget,
					})
				}
			}
		}
	}

	// Parameter escalation: runs keep injecting but nothing manifests.
	// Longer delays (higher Alpha) widen the displacement each injection
	// achieves (§4.3); faster decay (higher Decay) quiesces the sites
	// that were never going to expose (§4.4). When the campaign-wide
	// per-run delay overhead has already saturated the histogram's top
	// bucket, Alpha holds — making delay-dominated runs longer buys
	// displacement the schedule already has.
	if ctx.Retunable && t.unproductive >= cfg.UnproductiveRuns {
		t.unproductive = 0
		opts := ctx.Opts
		newAlpha := math.Min(opts.Alpha*cfg.AlphaStep, cfg.MaxAlpha)
		newDecay := math.Min(opts.Decay*cfg.DecayStep, cfg.MaxDecay)
		if _, sat, ok := t.c.camp.Snapshot().HistogramQuantileInfo("control.delay_ticks", 99); ok && sat {
			newAlpha = opts.Alpha
		}
		if newAlpha != opts.Alpha || newDecay != opts.Decay {
			opts.Alpha, opts.Decay = newAlpha, newDecay
			d.Opts = &opts
			t.alpha, t.decay = newAlpha, newDecay
			t.c.camp.Counter("control.retunes").Inc()
			t.c.emit(RetuneEvent{
				Target: t.name, Tool: ctx.Tool, Run: ctx.Run, Action: "retune",
				Detail: "unproductive detection runs",
				Alpha:  newAlpha, Decay: newDecay,
			})
		}
	}
	return d
}

// ObserveOutcome folds a finished session's outcome into the campaign
// signals: exposures feed the per-tool runs-to-exposure histogram that
// budget caps derive from. Call it once per session, after Expose
// returns. Safe on nil.
func (t *Target) ObserveOutcome(out *core.Outcome) {
	if t == nil || out == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.runs = len(out.Runs)
	t.c.camp.Counter("control.runs_total").Add(int64(len(out.Runs)))
	if r := out.RunsToExpose(); r > 0 {
		t.exposed = true
		t.exposedRun = r
		t.c.camp.Histogram("control.runs_to_exposure."+out.Tool, obs.RunBuckets).Observe(int64(r))
	}
}

func (t *Target) state() TargetState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TargetState{
		Name: t.name, Tool: t.tool, Runs: t.runs,
		Exposed: t.exposed, ExposedRun: t.exposedRun,
		Stopped: t.stopped, StoppedAtRun: t.stoppedAt, SavedRuns: t.saved,
		Alpha: t.alpha, Decay: t.decay, MaxRuns: t.maxRuns,
	}
}
