package control

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"waffle/internal/core"
	"waffle/internal/memmodel"
	"waffle/internal/obs"
	"waffle/internal/sim"
)

func detCtx(run, maxRuns, liveSites int, prev *core.RunReport) core.TuneContext {
	return core.TuneContext{
		Program: "p", Tool: "waffle", Run: run, MaxRuns: maxRuns,
		Prev: prev, PrevDetection: prev != nil, LiveSites: liveSites,
		Opts: core.Options{}.WithDefaults(), Retunable: true,
	}
}

func dryRun(run int) *core.RunReport {
	return &core.RunReport{Run: run, Outcome: core.RunClean}
}

func wetRun(run int) *core.RunReport {
	return &core.RunReport{Run: run, Outcome: core.RunClean,
		Stats: core.DelayStats{Count: 3, Total: 5000}}
}

func TestDisabledControllerHandsOutNilTargets(t *testing.T) {
	c := New(Config{Disabled: true})
	if tgt := c.Target("x"); tgt != nil {
		t.Fatal("disabled controller returned a non-nil target")
	}
	var nilC *Controller
	if tgt := nilC.Target("x"); tgt != nil {
		t.Fatal("nil controller returned a non-nil target")
	}
	// The nil Target is a usable no-op Tuner.
	var tgt *Target
	if d := tgt.TuneRun(detCtx(2, 25, 0, dryRun(1))); d.Stop || d.Opts != nil || d.MaxRuns != 0 {
		t.Fatal("nil target made a decision")
	}
	tgt.ObserveOutcome(&core.Outcome{})
	if tgt.Registry() != nil {
		t.Fatal("nil target returned a registry")
	}
	if nilC.PoolTune(4) != nil {
		t.Fatal("nil controller returned a pool tuner")
	}
}

func TestScaleToZeroOnDeadSitesAfterDrySpell(t *testing.T) {
	var log bytes.Buffer
	c := New(Config{DrySpellRuns: 2, Log: &log})
	tgt := c.Target("p/waffle")

	// Sites live, injecting: no stop.
	if d := tgt.TuneRun(detCtx(3, 25, 4, wetRun(2))); d.Stop {
		t.Fatal("stopped a live target")
	}
	// Sites dead but only one dry run so far: not yet.
	if d := tgt.TuneRun(detCtx(4, 25, 0, dryRun(3))); d.Stop {
		t.Fatal("stopped before the dry spell completed")
	}
	// Second dry run with zero live sites: stop, and account the savings.
	d := tgt.TuneRun(detCtx(5, 25, 0, dryRun(4)))
	if !d.Stop {
		t.Fatal("no stop after dry spell with zero live sites")
	}
	ev := c.Events()
	if len(ev) != 1 || ev[0].Action != "stop" || ev[0].Saved != 21 {
		t.Fatalf("events = %+v, want one stop saving 21 runs", ev)
	}
	snap := c.CampaignSnapshot()
	if snap.Counters["control.sessions_stopped"] != 1 || snap.Counters["control.runs_saved"] != 21 {
		t.Fatalf("campaign counters = %v", snap.Counters)
	}
	// The JSONL log carries the event.
	var got RetuneEvent
	if err := json.Unmarshal([]byte(strings.TrimSpace(log.String())), &got); err != nil || got.Action != "stop" {
		t.Fatalf("log line %q: %v", log.String(), err)
	}
}

// A tool that cannot report live sites (LiveSites == -1) is stopped only
// on the decay-floor counter plus a doubled dry spell.
func TestScaleToZeroUnknownSitesNeedsFloorAndLongSpell(t *testing.T) {
	c := New(Config{DrySpellRuns: 2})
	reg := obs.New()
	tgt := c.TargetWithRegistry("p/tsvd", reg)

	// Dry spell without any floor hit: never stop (the tool may simply
	// have no candidates yet).
	for run := 2; run <= 8; run++ {
		if d := tgt.TuneRun(core.TuneContext{Tool: "tsvd", Run: run, MaxRuns: 25,
			Prev: dryRun(run - 1), PrevDetection: true, LiveSites: -1}); d.Stop {
			t.Fatalf("stopped at run %d with no floor hits", run)
		}
	}
	// Floor hit recorded in the per-target registry: the doubled spell
	// (4 here) applies from now on.
	reg.Counter("inject.decay_floor_hits").Inc()
	tgt2 := c.TargetWithRegistry("p2/tsvd", reg)
	stoppedAt := 0
	for run := 2; run <= 10; run++ {
		if d := tgt2.TuneRun(core.TuneContext{Tool: "tsvd", Run: run, MaxRuns: 25,
			Prev: dryRun(run - 1), PrevDetection: true, LiveSites: -1}); d.Stop {
			stoppedAt = run
			break
		}
	}
	// Dry runs accumulate starting at run 2's boundary (prev = run 1);
	// the 4th dry run is seen at the run-5 boundary.
	if stoppedAt != 5 {
		t.Fatalf("stopped at run %d, want 5 (2×DrySpellRuns dry runs)", stoppedAt)
	}
}

func TestBudgetCapFromCampaignQuantile(t *testing.T) {
	c := New(Config{MinExposures: 3, BudgetQuantile: 99, BudgetMargin: 2, MinBudget: 6})
	// Three same-tool exposures at runs 2, 2, 3 → p99 = 3, cap = 6.
	for i, r := range []int{2, 2, 3} {
		tgt := c.Target("done/" + string(rune('a'+i)))
		out := &core.Outcome{Tool: "waffle",
			Runs: make([]core.RunReport, r),
			Bug:  &core.BugReport{Run: r}}
		tgt.ObserveOutcome(out)
	}
	tgt := c.Target("searching")
	d := tgt.TuneRun(detCtx(4, 25, 4, wetRun(3)))
	if d.MaxRuns != 6 {
		t.Fatalf("budget cap = %d, want 6 (max(ceil(3*2), MinBudget=6))", d.MaxRuns)
	}
	// The cap is issued once per target.
	if d2 := tgt.TuneRun(detCtx(5, 6, 4, wetRun(4))); d2.MaxRuns != 0 {
		t.Fatalf("second budget cap issued: %d", d2.MaxRuns)
	}
	// A different tool's exposures must not leak into this tool's cap.
	other := c.Target("searching-other-tool")
	od := other.TuneRun(core.TuneContext{Tool: "tsvd", Run: 4, MaxRuns: 25,
		Prev: wetRun(3), PrevDetection: true, LiveSites: 2})
	if od.MaxRuns != 0 {
		t.Fatalf("tsvd target capped from waffle exposures: %d", od.MaxRuns)
	}
}

func TestBudgetCapNeedsMinExposures(t *testing.T) {
	c := New(Config{MinExposures: 5})
	for i := 0; i < 4; i++ {
		c.Target("done/"+string(rune('a'+i))).ObserveOutcome(&core.Outcome{
			Tool: "waffle", Runs: make([]core.RunReport, 2), Bug: &core.BugReport{Run: 2}})
	}
	if d := c.Target("searching").TuneRun(detCtx(10, 25, 4, wetRun(9))); d.MaxRuns != 0 {
		t.Fatalf("capped with only 4 of 5 required exposures: %d", d.MaxRuns)
	}
}

func TestParameterEscalationAfterUnproductiveRuns(t *testing.T) {
	c := New(Config{UnproductiveRuns: 3, AlphaStep: 1.5, MaxAlpha: 2.0, DecayStep: 2, MaxDecay: 0.5})
	tgt := c.Target("p/waffle")
	// Unproductive injecting runs 1, 2, 3 are folded in at the boundaries
	// before runs 2, 3, 4 — the run-4 boundary is where the third lands
	// and the escalation fires.
	var d core.TuneDecision
	for run := 2; run <= 4; run++ {
		d = tgt.TuneRun(detCtx(run, 25, 4, wetRun(run-1)))
		if run < 4 && d.Opts != nil {
			t.Fatalf("escalated at run %d, before %d unproductive runs", run, 3)
		}
	}
	if d.Opts == nil {
		t.Fatal("no escalation after 3 unproductive injecting runs")
	}
	base := core.Options{}.WithDefaults()
	if got, want := d.Opts.Alpha, base.Alpha*1.5; got != want {
		t.Errorf("alpha = %v, want %v", got, want)
	}
	if got, want := d.Opts.Decay, base.Decay*2; got != want {
		t.Errorf("decay = %v, want %v", got, want)
	}
	// Counter reset: the very next boundary must not escalate again.
	if d2 := tgt.TuneRun(detCtx(5, 25, 4, wetRun(4))); d2.Opts != nil {
		t.Fatal("escalated again immediately after a retune")
	}
	// Clamps: repeated escalation saturates at MaxAlpha / MaxDecay, after
	// which no further retune events are issued.
	opts := *d.Opts
	for i := 0; i < 10; i++ {
		for run := 0; run < 3; run++ {
			ctx := detCtx(6+3*i+run, 25, 4, wetRun(5+3*i+run))
			ctx.Opts = opts
			if nd := tgt.TuneRun(ctx); nd.Opts != nil {
				opts = *nd.Opts
			}
		}
	}
	if opts.Alpha > 2.0 || opts.Decay > 0.5 {
		t.Fatalf("escalation exceeded clamps: alpha=%v decay=%v", opts.Alpha, opts.Decay)
	}
}

func TestPoolTuneShrinksWithStoppedTargets(t *testing.T) {
	c := New(Config{DrySpellRuns: 1})
	a, b := c.Target("a"), c.Target("b")
	tune := c.PoolTune(8)
	if w := tune(1, 0); w != 8 {
		t.Fatalf("initial pool = %d, want 8", w)
	}
	// Stop one of two targets: the pool halves.
	if d := a.TuneRun(detCtx(3, 25, 0, dryRun(2))); !d.Stop {
		t.Fatal("target a did not stop")
	}
	if w := tune(2, 4); w != 4 {
		t.Fatalf("pool after 1/2 stopped = %d, want 4", w)
	}
	if d := b.TuneRun(detCtx(3, 25, 0, dryRun(2))); !d.Stop {
		t.Fatal("target b did not stop")
	}
	if w := tune(3, 8); w != 1 {
		t.Fatalf("pool after all stopped = %d, want 1 (floor)", w)
	}
}

// End-to-end on a real session: a program whose plan has no candidate
// pairs never injects, so the controller stops the session after the dry
// spell instead of burning the whole budget.
func TestControllerStopsQuietSessionEndToEnd(t *testing.T) {
	prog := &core.SimProgram{
		Label: "quiet",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			r := h.NewRef("r")
			r.Init(root, "init.go:1")
			// Same-thread, widely spaced: no near miss, no candidates.
			root.Sleep(500 * sim.Millisecond)
			r.Use(root, "use.go:1")
		},
	}
	c := New(Config{DrySpellRuns: 2})
	tgt := c.Target("quiet/waffle")
	s := &core.Session{Prog: prog, Tool: core.NewWaffle(core.Options{Metrics: tgt.Registry()}),
		MaxRuns: 30, BaseSeed: 7, Tuner: tgt}
	out := s.Expose()
	tgt.ObserveOutcome(out)
	if out.Bug != nil {
		t.Fatal("quiet program exposed a bug")
	}
	if len(out.Runs) >= 30 {
		t.Fatalf("controller did not stop the quiet session (%d runs)", len(out.Runs))
	}
	st := c.Targets()
	if len(st) != 1 || !st[0].Stopped {
		t.Fatalf("target state = %+v, want stopped", st)
	}
	if st[0].Runs != len(out.Runs) {
		t.Fatalf("target runs = %d, outcome runs = %d", st[0].Runs, len(out.Runs))
	}
}
