package control

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"waffle/internal/live"
)

func planeServer(t *testing.T) (*live.Monitor, *httptest.Server) {
	t.Helper()
	mon := live.NewMonitor(1, live.Options{SampleRate: 0.5})
	mux := http.NewServeMux()
	(&LivePlane{Mon: mon}).Mount(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return mon, ts
}

func planeDo(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestLivePlaneStartStopStatus(t *testing.T) {
	mon, ts := planeServer(t)

	var st live.MonitorStatus
	if code := planeDo(t, "GET", ts.URL+"/v1/live/status", nil, &st); code != 200 || !st.Enabled {
		t.Fatalf("status = %d, enabled %v", code, st.Enabled)
	}
	if st.SampleRate != 0.5 {
		t.Fatalf("sample_rate = %g, want 0.5", st.SampleRate)
	}

	if code := planeDo(t, "POST", ts.URL+"/v1/live/stop", nil, &st); code != 200 || st.Enabled {
		t.Fatalf("stop = %d, enabled %v", code, st.Enabled)
	}
	if mon.Enabled() {
		t.Fatal("monitor still enabled after /v1/live/stop")
	}
	if code := planeDo(t, "POST", ts.URL+"/v1/live/start", nil, &st); code != 200 || !st.Enabled {
		t.Fatalf("start = %d, enabled %v", code, st.Enabled)
	}
	if !mon.Enabled() {
		t.Fatal("monitor not enabled after /v1/live/start")
	}
}

func TestLivePlaneTune(t *testing.T) {
	mon, ts := planeServer(t)

	var st live.MonitorStatus
	code := planeDo(t, "POST", ts.URL+"/v1/live/tune",
		map[string]float64{"sample_rate": 0.25, "slo": 2.0, "alpha": 1.5}, &st)
	if code != 200 {
		t.Fatalf("tune = %d", code)
	}
	if got := mon.Options(); got.SampleRate != 0.25 || got.SLO != 2.0 || got.Alpha != 1.5 {
		t.Fatalf("tune not applied: %+v", got)
	}
	if st.SampleRate != 0.25 || st.SLO != 2.0 {
		t.Fatalf("tune response stale: %+v", st)
	}

	var errResp map[string]string
	if code := planeDo(t, "POST", ts.URL+"/v1/live/tune",
		map[string]float64{"sample_rate": 7}, &errResp); code != 400 || errResp["error"] == "" {
		t.Fatalf("out-of-range tune = %d, %v; want 400 with error", code, errResp)
	}
	if code := planeDo(t, "POST", ts.URL+"/v1/live/tune",
		map[string]float64{"bogus_knob": 1}, &errResp); code != 400 {
		t.Fatalf("unknown-field tune = %d, want 400", code)
	}
	if got := mon.Options().SampleRate; got != 0.25 {
		t.Fatalf("failed tunes mutated options: sample_rate = %g", got)
	}
}
