package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"
)

// maxWait caps the long-poll hold so a proxy timeout never races the
// server's own response.
const maxWait = 60 * time.Second

// Handler returns the campaign API:
//
//	POST   /v1/jobs               submit a JobSpec, 201 + JobStatus
//	GET    /v1/jobs               list all jobs
//	GET    /v1/jobs/{id}          one job's status
//	GET    /v1/jobs/{id}/results  incremental results; ?after=N&wait=30s long-polls
//	DELETE /v1/jobs/{id}          cancel (queued: immediate; running: next wave)
//	GET    /healthz               {"status":"ok"|"draining"}
//
// Every response is JSON. Errors use {"error": "..."} with a matching
// status code.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", m.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": m.List()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Status(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/results", m.handleResults)
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := m.Cancel(id); err != nil {
			writeErr(w, err)
			return
		}
		st, err := m.Status(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		status := "ok"
		if m.Draining() {
			status = "draining"
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": status})
	})
	return mux
}

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad job spec: " + err.Error()})
		return
	}
	st, err := m.Submit(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	writeJSON(w, http.StatusCreated, st)
}

// handleResults validates the long-poll parameters strictly: a negative
// `after` or a negative `wait` is a caller bug (most often a sign error
// in cursor arithmetic), and silently clamping either to zero would turn
// that bug into a surprise full-replay or busy-poll. Both are rejected
// with 400 so the caller sees the mistake.
func (m *Manager) handleResults(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	after := 0
	if s := q.Get("after"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad after: " + err.Error()})
			return
		}
		if n < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad after: must be >= 0, got " + s})
			return
		}
		after = n
	}
	var wait time.Duration
	if s := q.Get("wait"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad wait: " + err.Error()})
			return
		}
		if d < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad wait: must be >= 0, got " + s})
			return
		}
		wait = min(d, maxWait)
	}
	page, err := m.Results(r.Context(), r.PathValue("id"), after, wait)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, page)
}

// writeErr maps manager errors onto HTTP statuses.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrTerminal):
		code = http.StatusConflict
	default:
		// Validation failures are client errors.
		code = http.StatusBadRequest
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
