package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"waffle/internal/control"
	"waffle/internal/obs"
	"waffle/internal/sched"
)

// Errors the manager returns to the API layer.
var (
	ErrNotFound = errors.New("server: no such job")
	ErrDraining = errors.New("server: draining, not accepting jobs")
	ErrTerminal = errors.New("server: job already finished")
)

// Options configures a Manager.
type Options struct {
	// Journal is the JSONL journal path. Empty runs in-memory only (no
	// restart resume).
	Journal string
	// Workers bounds the per-job corpus parallelism AND, via a shared
	// semaphore, the global number of programs in flight across all
	// active jobs. <= 0 means GOMAXPROCS.
	Workers int
	// MaxActive bounds concurrently running jobs; queued jobs wait in
	// priority order. <= 0 means 2.
	MaxActive int
	// Metrics receives campaign counters from every session the manager
	// drives, plus the manager's own job gauges. Nil disables.
	Metrics *obs.Registry
	// Now stamps job submission times; nil means time.Now. Tests inject
	// a fixed clock.
	Now func() time.Time

	// hook, when set (tests only), runs at the start of every program
	// execution — the seam tests use to observe dispatch order and to
	// hold programs in flight. It must be set before New so jobs
	// replayed from the journal see it too.
	hook func(jobID string, index int)
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxActive <= 0 {
		o.MaxActive = 2
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// job is the manager's internal job record. The manager's mutex guards
// every field; results grow append-only so snapshot slices stay valid.
type job struct {
	id        string
	seq       int // admission order, breaks priority ties
	spec      JobSpec
	state     JobState
	results   []*ProgramResult
	exposed   int
	violation int
	resumed   bool
	errmsg    string
	submitted time.Time

	cancel        context.CancelFunc
	userCancelled bool
	// notify is closed-and-replaced on every commit and state change:
	// the long-poll edge trigger.
	notify chan struct{}
	// ctl is the job's adaptive controller, nil unless Spec.Adaptive.
	ctl *control.Controller
}

func (j *job) cursor() int { return len(j.results) }

// Manager admits, schedules, journals, and serves campaign jobs. All
// jobs share one sched lifecycle and one global worker semaphore, so a
// Drain atomically fences new waves across every job.
type Manager struct {
	opts    Options
	journal *Journal
	life    *sched.Lifecycle
	shared  chan struct{}

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // admission order, for listing
	active   int
	draining bool
	nextSeq  int

	wg sync.WaitGroup
}

// New builds a Manager, replaying the journal when Options.Journal is
// set: terminal jobs come back queryable, interrupted jobs re-queue at
// their committed cursor and resume as soon as a slot frees.
func New(opts Options) (*Manager, error) {
	opts = opts.withDefaults()
	m := &Manager{
		opts:   opts,
		life:   sched.NewLifecycle(),
		shared: make(chan struct{}, opts.Workers),
		jobs:   make(map[string]*job),
	}
	if opts.Journal != "" {
		jr, recs, err := OpenJournal(opts.Journal)
		if err != nil {
			return nil, err
		}
		m.journal = jr
		if err := m.replay(recs); err != nil {
			jr.Close()
			return nil, err
		}
	}
	m.mu.Lock()
	m.dispatchLocked()
	m.mu.Unlock()
	return m, nil
}

// replay rebuilds job state from journal records. Commit order in the
// journal is ascending and contiguous per job, which replay verifies —
// a gap means the journal was edited or the commit contract broke.
func (m *Manager) replay(recs []Record) error {
	for _, r := range recs {
		switch r.Type {
		case "job":
			if r.Spec == nil {
				return fmt.Errorf("server: journal job record %s has no spec", r.Job)
			}
			j := &job{
				id:        r.Job,
				seq:       m.nextSeq,
				spec:      *r.Spec,
				state:     StateQueued,
				notify:    make(chan struct{}),
				submitted: m.opts.Now(),
			}
			m.nextSeq++
			if j.spec.Adaptive {
				j.ctl = control.New(control.Config{})
			}
			m.jobs[j.id] = j
			m.order = append(m.order, j.id)
		case "result":
			j := m.jobs[r.Job]
			if j == nil {
				return fmt.Errorf("server: journal result for unknown job %s", r.Job)
			}
			if r.Result == nil || r.Result.Index != j.cursor() {
				return fmt.Errorf("server: journal for %s not contiguous at index %d", r.Job, j.cursor())
			}
			j.results = append(j.results, r.Result)
			j.tally(r.Result)
		case "state":
			j := m.jobs[r.Job]
			if j == nil {
				return fmt.Errorf("server: journal state for unknown job %s", r.Job)
			}
			j.state = r.State
			j.errmsg = r.Error
		default:
			return fmt.Errorf("server: journal record of unknown type %q", r.Type)
		}
	}
	for _, id := range m.order {
		if j := m.jobs[id]; !j.state.terminal() {
			j.state = StateQueued
			j.resumed = j.cursor() > 0
		}
	}
	return nil
}

// tally folds a committed result into the job's aggregates.
func (j *job) tally(pr *ProgramResult) {
	for _, oc := range pr.Outcomes {
		if oc.Runs > 0 {
			j.exposed++
		}
	}
	j.violation += len(pr.Violations)
}

// Submit admits a job: validates, journals, enqueues, dispatches.
func (m *Manager) Submit(spec JobSpec) (JobStatus, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return JobStatus{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return JobStatus{}, ErrDraining
	}
	j := &job{
		id:        fmt.Sprintf("job-%d", m.nextSeq+1),
		seq:       m.nextSeq,
		spec:      spec,
		state:     StateQueued,
		notify:    make(chan struct{}),
		submitted: m.opts.Now(),
	}
	m.nextSeq++
	if spec.Adaptive {
		j.ctl = control.New(control.Config{})
	}
	if err := m.journal.Append(Record{Type: "job", Job: j.id, Spec: &spec}); err != nil {
		return JobStatus{}, err
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.dispatchLocked()
	return m.statusLocked(j), nil
}

// dispatchLocked starts queued jobs while active slots remain, highest
// priority first, admission order within a priority. Caller holds mu.
func (m *Manager) dispatchLocked() {
	if m.draining {
		return
	}
	for m.active < m.opts.MaxActive {
		var pick *job
		for _, id := range m.order {
			j := m.jobs[id]
			if j.state != StateQueued {
				continue
			}
			if pick == nil || j.spec.Priority > pick.spec.Priority ||
				(j.spec.Priority == pick.spec.Priority && j.seq < pick.seq) {
				pick = j
			}
		}
		if pick == nil {
			return
		}
		ctx, cancel := context.WithCancel(context.Background())
		pick.state = StateRunning
		pick.cancel = cancel
		m.active++
		m.gauge()
		m.wg.Add(1)
		go m.runJob(ctx, pick)
	}
}

// runJob sweeps one job's remaining corpus on the shared pool. Programs
// commit in index order; each commit journals first, then publishes.
func (m *Manager) runJob(ctx context.Context, j *job) {
	defer m.wg.Done()
	pool := sched.Pool{
		Workers: m.opts.Workers,
		Life:    m.life,
		Shared:  m.shared,
		Metrics: m.opts.Metrics,
	}
	m.mu.Lock()
	first, last := j.cursor(), j.spec.Corpus.Programs-1
	spec, ctl := j.spec, j.ctl
	m.mu.Unlock()

	var commitErr error
	_, runErr := sched.RunCtx(ctx, pool, first, last,
		func(jctx context.Context, i int) (*ProgramResult, error) {
			if m.opts.hook != nil {
				m.opts.hook(j.id, i)
			}
			return runProgram(jctx, spec, i, ctl, m.opts.Metrics), nil
		},
		func(r sched.Result[*ProgramResult]) bool {
			if r.Err != nil {
				// A per-program budget kill or recovered panic: record it
				// as a violation-bearing placeholder so the cursor stays
				// contiguous and the breach is visible in the results.
				r.Value = &ProgramResult{
					Index:      r.Index,
					Violations: []string{fmt.Sprintf("program %d aborted: %v", r.Index, r.Err)},
				}
			}
			if err := m.commit(j, r.Value); err != nil {
				commitErr = err
				return false
			}
			return true
		})

	m.mu.Lock()
	defer m.mu.Unlock()
	switch {
	case commitErr != nil:
		m.finishLocked(j, StateFailed, commitErr.Error())
	case runErr == nil:
		m.finishLocked(j, StateCompleted, "")
	case j.userCancelled:
		m.finishLocked(j, StateCancelled, "")
	default:
		// Drain (or manager shutdown): the run stopped at a wave
		// boundary with only committed work journaled. Park the job as
		// queued — in-memory it could re-dispatch after a resume, and
		// in the journal it has no terminal state, so a restarted
		// server picks it up at the cursor.
		j.state = StateQueued
		j.cancel = nil
		j.bump()
	}
	m.active--
	m.gauge()
	m.dispatchLocked()
}

// commit journals one program result, then publishes it to pollers. The
// journal write comes first: a result a client has seen can never be
// lost to a crash.
func (m *Manager) commit(j *job, pr *ProgramResult) error {
	if err := m.journal.Append(Record{Type: "result", Job: j.id, Index: pr.Index, Result: pr}); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if pr.Index != j.cursor() {
		return fmt.Errorf("server: commit out of order: index %d at cursor %d", pr.Index, j.cursor())
	}
	j.results = append(j.results, pr)
	j.tally(pr)
	j.bump()
	return nil
}

// finishLocked journals and publishes a terminal transition. mu held.
func (m *Manager) finishLocked(j *job, s JobState, errmsg string) {
	j.state = s
	j.errmsg = errmsg
	j.cancel = nil
	// Journal failures on the terminal record are unrecoverable but must
	// not wedge the job in memory; the restart will redo the tail.
	_ = m.journal.Append(Record{Type: "state", Job: j.id, State: s, Error: errmsg})
	j.bump()
}

// bump wakes every long-poller: close the edge channel, arm a new one.
func (j *job) bump() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// gauge publishes the manager's job-state gauges. mu held.
func (m *Manager) gauge() {
	if m.opts.Metrics == nil {
		return
	}
	queued := 0
	for _, j := range m.jobs {
		if j.state == StateQueued {
			queued++
		}
	}
	m.opts.Metrics.Gauge("server.jobs_active").Set(float64(m.active))
	m.opts.Metrics.Gauge("server.jobs_queued").Set(float64(queued))
}

// Cancel stops a job. A queued job cancels immediately; a running job's
// context is cancelled and the in-flight wave is discarded (the sched
// contract), so the journal keeps only fully committed programs.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return ErrNotFound
	}
	switch j.state {
	case StateQueued:
		m.finishLocked(j, StateCancelled, "")
		return nil
	case StateRunning:
		j.userCancelled = true
		j.cancel()
		return nil
	default:
		return ErrTerminal
	}
}

// Status returns one job's API view.
func (m *Manager) Status(id string) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return JobStatus{}, ErrNotFound
	}
	return m.statusLocked(j), nil
}

// List returns every job in admission order.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.statusLocked(m.jobs[id]))
	}
	return out
}

func (m *Manager) statusLocked(j *job) JobStatus {
	return JobStatus{
		ID:         j.id,
		State:      j.state,
		Spec:       j.spec,
		Cursor:     j.cursor(),
		Programs:   j.spec.Corpus.Programs,
		Exposed:    j.exposed,
		Violations: j.violation,
		Resumed:    j.resumed,
		Error:      j.errmsg,
		Submitted:  j.submitted,
	}
}

// ResultsPage is one long-poll response: the results after the client's
// cursor plus the state needed to decide whether to poll again.
type ResultsPage struct {
	Job   string   `json:"job"`
	State JobState `json:"state"`
	// After echoes the request cursor; Next is the cursor to pass on the
	// next poll (After + len(Results)).
	After   int              `json:"after"`
	Next    int              `json:"next"`
	Results []*ProgramResult `json:"results"`
	// Done means no further results will ever arrive: stop polling.
	Done bool `json:"done"`
}

// Results returns the job's results after the given cursor, blocking up
// to wait for new commits when none are ready (long-poll). wait <= 0
// returns immediately.
func (m *Manager) Results(ctx context.Context, id string, after int, wait time.Duration) (ResultsPage, error) {
	if after < 0 {
		after = 0
	}
	deadline := m.opts.Now().Add(wait)
	for {
		m.mu.Lock()
		j := m.jobs[id]
		if j == nil {
			m.mu.Unlock()
			return ResultsPage{}, ErrNotFound
		}
		page := ResultsPage{Job: id, State: j.state, After: after, Next: after}
		if after < j.cursor() {
			page.Results = j.results[after:j.cursor():j.cursor()]
			page.Next = after + len(page.Results)
		}
		page.Done = j.state.terminal() && page.Next >= j.cursor()
		ch := j.notify
		m.mu.Unlock()

		if len(page.Results) > 0 || page.Done || wait <= 0 {
			return page, nil
		}
		remain := deadline.Sub(m.opts.Now())
		if remain <= 0 {
			return page, nil
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
			return page, nil
		case <-ctx.Done():
			t.Stop()
			return page, nil
		}
	}
}

// Drain stops the manager for shutdown: no new submissions, no new
// dispatches, every running job is interrupted at its next wave boundary
// and parked resumable (journaled as non-terminal at its cursor). Drain
// returns when every job goroutine has exited or ctx expires.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	for _, j := range m.jobs {
		if j.state == StateRunning && j.cancel != nil {
			j.cancel()
		}
	}
	m.mu.Unlock()

	// Fence the scheduler: after this no new wave starts anywhere.
	m.life.Drain()

	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	return m.journal.Close()
}

// Draining reports whether Drain has begun (health endpoint).
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Snapshot returns the jobs sorted by ID for deterministic test output.
func (m *Manager) Snapshot() []JobStatus {
	out := m.List()
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}
