package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Record is one JSONL journal line. Three record types cover the whole
// job lifecycle:
//
//	{"type":"job","job":"job-1","spec":{...}}        job admitted
//	{"type":"result","job":"job-1","index":3,...}    program 3 committed
//	{"type":"state","job":"job-1","state":"..."}     terminal transition
//
// Result records for one job appear in strictly ascending contiguous
// index order (the scheduler commits in order), so replay recovers the
// cursor as the count of result lines. A job with no terminal state
// record was queued or running when the process died; replay re-queues
// it at its cursor. Nothing is ever rewritten: the journal is
// append-only and one Write call per line, so a SIGKILL can lose at most
// the final, partially written line — which replay tolerates and
// discards.
type Record struct {
	Type   string         `json:"type"`
	Job    string         `json:"job"`
	Spec   *JobSpec       `json:"spec,omitempty"`
	Index  int            `json:"index,omitempty"`
	Result *ProgramResult `json:"result,omitempty"`
	State  JobState       `json:"state,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// Journal is the append-only JSONL persistence layer. A nil *Journal is
// valid and drops every append — the in-memory-only manager mode.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// OpenJournal opens (creating if absent) the journal at path for
// appending and replays the records already present. Every record is
// written newline-terminated in one Write, so a kill mid-write leaves at
// most a torn tail after the last newline: that tail is truncated away
// before replay. A line that survives truncation but does not parse is a
// real integrity failure and errors out.
func OpenJournal(path string) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (*Journal, []Record, error) {
		f.Close()
		return nil, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return fail(err)
	}
	// Drop the torn tail: anything after the final newline was never
	// fully appended. The newline is each record's last byte, so no
	// partially written record can survive this cut.
	if cut := bytes.LastIndexByte(data, '\n') + 1; cut < len(data) {
		data = data[:cut]
		if err := f.Truncate(int64(cut)); err != nil {
			return fail(err)
		}
	}
	var recs []Record
	for lineno, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			return fail(fmt.Errorf("server: journal %s line %d corrupt: %w", path, lineno+1, err))
		}
		recs = append(recs, r)
	}
	// Reposition for appends: O_APPEND is not used so truncation and
	// writes share one descriptor; seek to the (possibly cut) end.
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		return fail(err)
	}
	return &Journal{f: f}, recs, nil
}

// Append writes one record as a single line + write syscall, so a crash
// between appends never leaves a half-record followed by more data.
func (j *Journal) Append(r Record) error {
	if j == nil {
		return nil
	}
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("server: journal closed")
	}
	_, err = j.f.Write(b)
	return err
}

// Close flushes nothing (every Append is already durable in the page
// cache) and releases the descriptor.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
