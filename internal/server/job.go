// Package server is the long-running campaign daemon: a job manager
// that accepts detection-campaign jobs over HTTP, fans each job's
// generated corpus over the shared internal/sched pool through a
// pluggable internal/engine detection engine, streams incremental
// results, and journals every committed program to a JSONL file so a
// killed server resumes mid-corpus on restart.
//
// The layering mirrors the engine/executor split: engines own detection
// logic for one search; the manager here owns admission, priority,
// budgets, persistence, and cancellation. Program results commit in
// corpus order (internal/sched's in-order commit contract), so the
// journal cursor is always a contiguous prefix and resume is exact —
// no program reruns, none are skipped.
package server

import (
	"fmt"
	"time"

	"waffle/internal/engine"
	"waffle/internal/genprog"
)

// CorpusSpec names a generated ground-truth corpus: program i is
// genprog.Generate(SizeConfig(Seed+i, Size)).
type CorpusSpec struct {
	// Seed is the corpus base seed.
	Seed int64 `json:"seed"`
	// Programs is the corpus size. <= 0 means 25.
	Programs int `json:"programs"`
	// Size is the per-program scale: small | medium | large | mixed
	// (mixed cycles the three). Empty means small.
	Size string `json:"size,omitempty"`
	// TSO generates store-buffer corpora (genprog.TSOSizeConfig): programs
	// run under TSO semantics with planted stale-read bugs, and the job's
	// core engine options get TSO analysis enabled so exposures carry
	// fence-repair proposals.
	TSO bool `json:"tso,omitempty"`
}

// sizeFor resolves the scale for corpus index i.
func (c CorpusSpec) sizeFor(i int) (genprog.Size, error) {
	switch c.Size {
	case "", "small":
		return genprog.SizeSmall, nil
	case "medium":
		return genprog.SizeMedium, nil
	case "large":
		return genprog.SizeLarge, nil
	case "mixed":
		return genprog.Size(i % 3), nil
	}
	return 0, fmt.Errorf("server: unknown corpus size %q (want small|medium|large|mixed)", c.Size)
}

// JobSpec is one campaign job as submitted over the API.
type JobSpec struct {
	// Corpus selects the generated programs the job sweeps.
	Corpus CorpusSpec `json:"corpus"`
	// Engine selects and parameterizes the detection engine. An empty
	// Kind means waffle. The live engine is rejected: live scenarios are
	// in-process closures and cannot be described in a JSON job.
	Engine engine.Config `json:"engine"`
	// MaxRuns bounds each armed session (preparation included). <= 0
	// means 25.
	MaxRuns int `json:"max_runs,omitempty"`
	// DisarmRuns bounds the disarmed zero-FP control session per program.
	// <= 0 means 12; negative disables the control entirely.
	DisarmRuns int `json:"disarm_runs,omitempty"`
	// Priority orders queued jobs: higher runs first, ties run in
	// submission order.
	Priority int `json:"priority,omitempty"`
	// Adaptive attaches the campaign controller: each session gets a
	// per-target tuner and the job reallocates budget as exposures
	// accumulate.
	Adaptive bool `json:"adaptive,omitempty"`
}

// withDefaults fills the documented defaults in.
func (s JobSpec) withDefaults() JobSpec {
	if s.Corpus.Programs <= 0 {
		s.Corpus.Programs = 25
	}
	if s.MaxRuns <= 0 {
		s.MaxRuns = 25
	}
	if s.DisarmRuns == 0 {
		s.DisarmRuns = 12
	}
	if s.Engine.Kind == "" {
		s.Engine.Kind = engine.KindWaffle
	}
	if s.Corpus.TSO {
		// A TSO corpus implies TSO analysis for the core-driven engines;
		// the flag is a no-op for tsvd (its options are separate).
		s.Engine.Core.TSO = true
	}
	return s
}

// Validate rejects specs the manager cannot run. It is called on the
// defaulted spec, so callers see the effective configuration's errors.
func (s JobSpec) Validate() error {
	if _, err := s.Corpus.sizeFor(0); err != nil {
		return err
	}
	if s.Engine.Kind == engine.KindLive {
		return fmt.Errorf("server: the live engine needs an in-process scenario and cannot run corpus jobs")
	}
	if _, err := engine.New(s.Engine); err != nil {
		return err
	}
	if s.Corpus.Programs > 100000 {
		return fmt.Errorf("server: corpus of %d programs exceeds the 100000 cap", s.Corpus.Programs)
	}
	return nil
}

// JobState is a job's lifecycle state. Transitions:
//
//	queued → running → completed
//	queued → cancelled            (cancel before dispatch)
//	running → cancelled           (cancel mid-corpus)
//	running → failed              (internal error)
//	running → queued              (server drain; the job resumes on restart)
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateCompleted JobState = "completed"
	StateCancelled JobState = "cancelled"
	StateFailed    JobState = "failed"
)

// terminal reports whether the state is final (no resume, no restart).
func (s JobState) terminal() bool {
	return s == StateCompleted || s == StateCancelled || s == StateFailed
}

// BugResult is one (planted bug, engine) outcome inside a program.
type BugResult struct {
	Bug  int    `json:"bug"`
	Kind string `json:"kind"`
	// Runs is the 1-based run that exposed the bug, 0 on a miss.
	Runs int `json:"runs"`
	// Delays counts delays injected in the exposing run.
	Delays int `json:"delays,omitempty"`
	// FenceAfter and FenceBefore carry the exposure's fence-repair
	// proposal (stale-read bugs only): insert a store-buffer fence after
	// the write at FenceAfter to order it before the read at FenceBefore.
	FenceAfter  string `json:"fence_after,omitempty"`
	FenceBefore string `json:"fence_before,omitempty"`
}

// ProgramResult is one committed corpus program: the unit of incremental
// progress the journal persists and the results endpoint streams.
type ProgramResult struct {
	// Index is the program's corpus position; results commit in index
	// order, so a job's results are always the contiguous prefix [0, N).
	Index   int    `json:"index"`
	Program string `json:"program"`
	Seed    int64  `json:"seed"`
	Size    string `json:"size"`
	Bugs    int    `json:"bugs"`
	// Outcomes has one entry per planted bug.
	Outcomes []BugResult `json:"outcomes,omitempty"`
	// RunsUsed totals the runs the engine consumed on this program,
	// armed and disarmed sessions included.
	RunsUsed int `json:"runs_used"`
	// Violations lists oracle breaches: a report outside the manifest, a
	// fault in the disarmed control, or an abnormal run. Empty on a
	// healthy engine.
	Violations []string `json:"violations,omitempty"`
}

// JobStatus is the API view of a job.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Spec  JobSpec  `json:"spec"`
	// Cursor counts committed programs; the job's next program is
	// Cursor. Equals Spec.Corpus.Programs on completion.
	Cursor   int `json:"cursor"`
	Programs int `json:"programs"`
	// Exposed counts (bug, program) cells the engine exposed so far.
	Exposed int `json:"exposed"`
	// Violations counts oracle breaches so far (details ride on each
	// ProgramResult).
	Violations int `json:"violations"`
	// Resumed reports the job was recovered from the journal after a
	// restart with Cursor programs already committed.
	Resumed bool `json:"resumed,omitempty"`
	// Error is set when State is failed.
	Error     string    `json:"error,omitempty"`
	Submitted time.Time `json:"submitted"`
}
