package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "j.jsonl")
}

func TestJournalRoundTrip(t *testing.T) {
	path := tmpJournal(t)
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	spec := smallSpec(1, 2)
	want := []Record{
		{Type: "job", Job: "job-1", Spec: &spec},
		{Type: "result", Job: "job-1", Index: 0, Result: &ProgramResult{Index: 0, Program: "p0"}},
		{Type: "result", Job: "job-1", Index: 1, Result: &ProgramResult{Index: 1, Program: "p1"}},
		{Type: "state", Job: "job-1", State: StateCompleted},
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, got, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.Type != want[i].Type || r.Job != want[i].Job || r.Index != want[i].Index || r.State != want[i].State {
			t.Fatalf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
	if got[1].Result == nil || got[1].Result.Program != "p0" {
		t.Fatal("result payload lost in round trip")
	}
}

// A torn final line — the signature of a SIGKILL mid-write — is cut away
// and the journal stays usable; fully written records survive.
func TestJournalTornTailTruncated(t *testing.T) {
	path := tmpJournal(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSpec(1, 2)
	if err := j.Append(Record{Type: "job", Job: "job-1", Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Simulate the torn write: half a record, no trailing newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"type":"result","job":"job-1","ind`)
	f.Close()

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if len(recs) != 1 || recs[0].Type != "job" {
		t.Fatalf("replayed %+v, want the one intact job record", recs)
	}
	// The journal must append cleanly after the cut.
	if err := j2.Append(Record{Type: "state", Job: "job-1", State: StateCancelled}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, recs, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].State != StateCancelled {
		t.Fatalf("post-truncation append lost: %+v", recs)
	}
}

// Corruption before the final newline is an integrity failure, not
// something to silently skip.
func TestJournalMidFileCorruptionErrors(t *testing.T) {
	path := tmpJournal(t)
	if err := os.WriteFile(path, []byte("not json\n{\"type\":\"job\",\"job\":\"job-1\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenJournal(path)
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt journal opened: %v", err)
	}
}

// A nil journal (in-memory mode) accepts appends and closes as no-ops.
func TestNilJournalIsNoOp(t *testing.T) {
	var j *Journal
	if err := j.Append(Record{Type: "state"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}
