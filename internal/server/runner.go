package server

import (
	"context"
	"fmt"

	"waffle/internal/control"
	"waffle/internal/core"
	"waffle/internal/engine"
	"waffle/internal/genprog"
	"waffle/internal/obs"
)

// runProgram executes the full oracle for one corpus program: every
// planted bug armed in isolation under a fresh engine, then a disarmed
// zero-FP control. It mirrors the eval diff harness program-for-program
// so campaign results and benchmark results agree, but drives the
// pluggable engine layer instead of a hard-coded tool set.
//
// Engines are stateful (probabilities decay across Expose calls), so
// every session gets a fresh engine: that is what a direct caller
// running independent searches would do, and what keeps sessions
// independent of corpus scheduling order.
func runProgram(ctx context.Context, spec JobSpec, i int, ctl *control.Controller, metrics *obs.Registry) *ProgramResult {
	size, err := spec.Corpus.sizeFor(i)
	if err != nil {
		// Validate() rejects bad sizes at admission; reaching here is a bug.
		panic(err)
	}
	cfg := genprog.SizeConfig(spec.Corpus.Seed+int64(i), size)
	if spec.Corpus.TSO {
		cfg = genprog.TSOSizeConfig(spec.Corpus.Seed+int64(i), size)
	}
	p := genprog.Generate(cfg)
	m := p.Manifest()
	pr := &ProgramResult{
		Index:   i,
		Program: p.Name(),
		Seed:    cfg.Seed,
		Size:    size.String(),
		Bugs:    len(m.Bugs),
	}
	fail := func(format string, args ...any) {
		pr.Violations = append(pr.Violations, fmt.Sprintf("%s: ", p.Name())+fmt.Sprintf(format, args...))
	}

	// newEngine builds a fresh engine for one session, wiring the
	// adaptive controller's per-target tuner when the job asked for one:
	// the engine's own metrics divert to the target's registry (the
	// controller reads per-session decay counters there) while
	// session-level metrics stay on the campaign registry.
	newEngine := func(target string) (engine.Engine, *control.Target, error) {
		ecfg := spec.Engine
		var tgt *control.Target
		if ctl != nil {
			if tgt = ctl.TargetWithRegistry(target, obs.New()); tgt != nil {
				ecfg.Core.Metrics = tgt.Registry()
			}
		}
		eng, err := engine.New(ecfg)
		return eng, tgt, err
	}

	runSession := func(target string, prog *genprog.Program, budget int, seed int64) (*core.Outcome, error) {
		eng, tgt, err := newEngine(target)
		if err != nil {
			return nil, err
		}
		t := engine.Target{
			Prog:     prog.Prog(),
			MaxRuns:  budget,
			BaseSeed: seed,
			Metrics:  metrics,
		}
		if tgt != nil {
			t.Tuner = tgt
		}
		if err := eng.Prepare(t); err != nil {
			return nil, err
		}
		out, err := eng.Expose(ctx)
		if err != nil {
			return nil, err
		}
		tgt.ObserveOutcome(out)
		return out, nil
	}

	// Armed sessions: each planted bug in isolation.
	for _, bug := range m.Bugs {
		seed := spec.Corpus.Seed + int64(i)*1_000_003 + int64(bug.Index)*1009 + 1
		out, err := runSession(fmt.Sprintf("%s/bug%d", p.Name(), bug.Index), p.ArmOnly(bug.Index), spec.MaxRuns, seed)
		if err != nil {
			fail("bug %d armed: %v", bug.Index, err)
			continue
		}
		pr.RunsUsed += len(out.Runs)
		br := BugResult{Bug: bug.Index, Kind: bug.Kind.String()}
		if out.Bug != nil {
			if err := m.Check(out.Bug); err != nil {
				fail("bug %d armed: %v", bug.Index, err)
			} else if out.Bug.ObjName() != bug.Obj {
				fail("bug %d armed: exposed %s, want %s", bug.Index, out.Bug.ObjName(), bug.Obj)
			} else {
				br.Runs = out.Bug.Run
				br.Delays = out.Bug.Delays.Count
				if out.Bug.Fence != nil {
					br.FenceAfter = string(out.Bug.Fence.After)
					br.FenceBefore = string(out.Bug.Fence.Before)
				}
			}
		}
		for _, err := range out.RunErrs() {
			if ctx.Err() != nil {
				break // cancellation noise, not an oracle breach
			}
			fail("bug %d armed: %v", bug.Index, err)
		}
		pr.Outcomes = append(pr.Outcomes, br)
	}

	// Disarmed control: the zero-false-positive invariant. No delay
	// schedule the engine can produce may fault a fully guarded program.
	if spec.DisarmRuns > 0 && ctx.Err() == nil {
		seed := spec.Corpus.Seed + int64(i)*1_000_003 + 500_009
		out, err := runSession(p.Name()+"/disarmed", p.DisarmAll(), spec.DisarmRuns, seed)
		if err != nil {
			fail("disarmed: %v", err)
		} else {
			pr.RunsUsed += len(out.Runs)
			if out.Bug != nil {
				fail("disarmed control reported a bug at %s — false positive", out.Bug.FaultSite())
			}
			if n := len(out.DelayFreeFaults); n > 0 {
				fail("disarmed control faulted delay-free in %d runs", n)
			}
			for _, err := range out.RunErrs() {
				if ctx.Err() != nil {
					break
				}
				fail("disarmed: %v", err)
			}
		}
	}
	return pr
}
