package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// api wraps an httptest server around a Manager.
func api(t *testing.T, opts Options) (*Manager, *httptest.Server) {
	t.Helper()
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(m.Handler())
	t.Cleanup(func() {
		ts.Close()
		m.Drain(t.Context())
	})
	return m, ts
}

func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

// The full API round trip: submit, status, long-poll to done, list,
// health.
func TestHTTPSubmitPollComplete(t *testing.T) {
	_, ts := api(t, Options{Workers: 2})

	var st JobStatus
	code := doJSON(t, "POST", ts.URL+"/v1/jobs", smallSpec(400, 3), &st)
	if code != http.StatusCreated {
		t.Fatalf("submit status %d", code)
	}
	if st.ID == "" || st.Programs != 3 {
		t.Fatalf("submit returned %+v", st)
	}

	// Long-poll the results to completion.
	next, got := 0, 0
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("poll never finished")
		}
		var page ResultsPage
		url := fmt.Sprintf("%s/v1/jobs/%s/results?after=%d&wait=5s", ts.URL, st.ID, next)
		if code := doJSON(t, "GET", url, nil, &page); code != http.StatusOK {
			t.Fatalf("results status %d", code)
		}
		for _, pr := range page.Results {
			if pr.Index != got {
				t.Fatalf("streamed index %d, want %d", pr.Index, got)
			}
			got++
		}
		next = page.Next
		if page.Done {
			break
		}
	}
	if got != 3 {
		t.Fatalf("streamed %d results, want 3", got)
	}

	var fin JobStatus
	if code := doJSON(t, "GET", ts.URL+"/v1/jobs/"+st.ID, nil, &fin); code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	if fin.State != StateCompleted || fin.Cursor != 3 {
		t.Fatalf("final status %+v", fin)
	}

	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/jobs", nil, &list); code != http.StatusOK || len(list.Jobs) != 1 {
		t.Fatalf("list code=%d jobs=%d", code, len(list.Jobs))
	}

	var health map[string]string
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &health); code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("health code=%d %v", code, health)
	}
}

// DELETE cancels; API errors map to their status codes.
func TestHTTPCancelAndErrors(t *testing.T) {
	_, ts := api(t, Options{Workers: 1, MaxActive: 1, hook: func(id string, i int) {
		time.Sleep(5 * time.Millisecond) // keep job-1 running long enough to cancel
	}})

	var st JobStatus
	if code := doJSON(t, "POST", ts.URL+"/v1/jobs", smallSpec(410, 50), &st); code != http.StatusCreated {
		t.Fatalf("submit status %d", code)
	}
	var cancelled JobStatus
	if code := doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+st.ID, nil, &cancelled); code != http.StatusOK {
		t.Fatalf("cancel status %d", code)
	}
	// Cancellation lands at the next wave boundary.
	deadline := time.Now().Add(30 * time.Second)
	for cancelled.State != StateCancelled {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s after cancel", cancelled.State)
		}
		time.Sleep(5 * time.Millisecond)
		doJSON(t, "GET", ts.URL+"/v1/jobs/"+st.ID, nil, &cancelled)
	}
	if cancelled.Cursor >= 50 {
		t.Fatal("cancelled job ran the whole corpus")
	}

	// Terminal job: DELETE again → 409.
	if code := doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+st.ID, nil, nil); code != http.StatusConflict {
		t.Fatalf("re-cancel status %d, want 409", code)
	}
	// Unknown job → 404.
	if code := doJSON(t, "GET", ts.URL+"/v1/jobs/nope", nil, nil); code != http.StatusNotFound {
		t.Fatal("unknown job not 404")
	}
	// Malformed spec → 400.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader("{"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec status %d", resp.StatusCode)
	}
	// Invalid spec (live engine) → 400.
	bad := smallSpec(411, 1)
	bad.Engine.Kind = "live"
	if code := doJSON(t, "POST", ts.URL+"/v1/jobs", bad, nil); code != http.StatusBadRequest {
		t.Fatal("live-engine spec not rejected with 400")
	}
}

// Draining: health reports it and submissions get 503.
func TestHTTPDraining(t *testing.T) {
	m, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()
	if err := m.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	var health map[string]string
	doJSON(t, "GET", ts.URL+"/healthz", nil, &health)
	if health["status"] != "draining" {
		t.Fatalf("health %v, want draining", health)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/jobs", smallSpec(420, 1), nil); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", code)
	}
}

// Long-poll parameter validation: negative wait and negative or
// non-numeric after must be rejected with 400, never silently clamped —
// a negative cursor usually means sign-error arithmetic in the caller,
// and clamping it to zero would replay every result as if nothing had
// been consumed.
func TestHTTPResultsParamValidation(t *testing.T) {
	_, ts := api(t, Options{Workers: 1})

	var st JobStatus
	if code := doJSON(t, "POST", ts.URL+"/v1/jobs", smallSpec(401, 1), &st); code != http.StatusCreated {
		t.Fatalf("submit status %d", code)
	}
	base := ts.URL + "/v1/jobs/" + st.ID + "/results"

	cases := []struct {
		name  string
		query string
		code  int
	}{
		{"no params", "", http.StatusOK},
		{"zero after", "?after=0", http.StatusOK},
		{"positive after", "?after=3", http.StatusOK},
		{"zero wait", "?wait=0s", http.StatusOK},
		{"positive wait", "?wait=10ms", http.StatusOK},
		{"negative after", "?after=-1", http.StatusBadRequest},
		{"very negative after", "?after=-999999", http.StatusBadRequest},
		{"non-numeric after", "?after=abc", http.StatusBadRequest},
		{"float after", "?after=1.5", http.StatusBadRequest},
		{"empty-ish after", "?after=%20", http.StatusBadRequest},
		{"negative wait", "?wait=-1s", http.StatusBadRequest},
		{"negative sub-second wait", "?wait=-5ms", http.StatusBadRequest},
		{"malformed wait", "?wait=banana", http.StatusBadRequest},
		{"unitless wait", "?wait=5", http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var body map[string]any
			code := doJSON(t, "GET", base+c.query, nil, &body)
			if code != c.code {
				t.Fatalf("GET %s = %d, want %d (body %v)", c.query, code, c.code, body)
			}
			if c.code == http.StatusBadRequest {
				if msg, _ := body["error"].(string); msg == "" {
					t.Fatalf("GET %s: 400 without error message (body %v)", c.query, body)
				}
			}
		})
	}

	// Unknown job with a *valid* negative param still 400s: parameter
	// validation happens before the job lookup, so the error a broken
	// client sees is stable regardless of job lifecycle.
	var body map[string]any
	if code := doJSON(t, "GET", ts.URL+"/v1/jobs/nope/results?after=-1", nil, &body); code != http.StatusBadRequest {
		t.Fatalf("unknown job + negative after = %d, want 400", code)
	}
}
