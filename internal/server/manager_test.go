package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"waffle/internal/engine"
	"waffle/internal/obs"
)

// smallSpec is a quick single-program-scale job for manager tests.
func smallSpec(seed int64, programs int) JobSpec {
	return JobSpec{
		Corpus:     CorpusSpec{Seed: seed, Programs: programs, Size: "small"},
		Engine:     engine.Config{Kind: engine.KindWaffle},
		MaxRuns:    15,
		DisarmRuns: 4,
	}
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, m *Manager, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Status(id)
		if err != nil {
			t.Fatalf("Status(%s): %v", id, err)
		}
		if st.State == want {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, _ := m.Status(id)
	t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
	return JobStatus{}
}

// waitCursor polls until the job has committed at least n programs.
func waitCursor(t *testing.T, m *Manager, id string, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Status(id)
		if err != nil {
			t.Fatalf("Status(%s): %v", id, err)
		}
		if st.Cursor >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached cursor %d", id, n)
}

// checkResult asserts one committed program against the ground-truth
// oracle's expectations: bug count matches the manifest, no violations.
func checkResult(t *testing.T, pr *ProgramResult, index int, wantSeed int64) {
	t.Helper()
	if pr.Index != index {
		t.Errorf("result %d has index %d", index, pr.Index)
	}
	if pr.Seed != wantSeed {
		t.Errorf("result %d has seed %d, want %d", index, pr.Seed, wantSeed)
	}
	if len(pr.Outcomes) != pr.Bugs {
		t.Errorf("result %d: %d outcomes for %d planted bugs", index, len(pr.Outcomes), pr.Bugs)
	}
	for _, v := range pr.Violations {
		t.Errorf("result %d violation: %s", index, v)
	}
}

// A job sweeps its corpus to completion: contiguous results, oracle
// clean, status aggregates matching the per-program results.
func TestJobRunsToCompletion(t *testing.T) {
	m, err := New(Options{Workers: 2, Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain(context.Background())
	st, err := m.Submit(smallSpec(300, 4))
	if err != nil {
		t.Fatal(err)
	}
	st = waitState(t, m, st.ID, StateCompleted)
	if st.Cursor != 4 || st.Programs != 4 {
		t.Fatalf("completed status cursor=%d programs=%d", st.Cursor, st.Programs)
	}
	page, err := m.Results(context.Background(), st.ID, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !page.Done || len(page.Results) != 4 {
		t.Fatalf("results done=%v n=%d", page.Done, len(page.Results))
	}
	exposed := 0
	for i, pr := range page.Results {
		checkResult(t, pr, i, 300+int64(i))
		for _, oc := range pr.Outcomes {
			if oc.Runs > 0 {
				exposed++
			}
		}
	}
	if st.Exposed != exposed {
		t.Errorf("status exposed=%d, results say %d", st.Exposed, exposed)
	}
	if exposed == 0 {
		t.Error("waffle exposed nothing across 4 small programs")
	}
	if st.Violations != 0 {
		t.Errorf("violations=%d", st.Violations)
	}
}

// Queued jobs dispatch in priority order, admission order within a
// priority tier.
func TestPriorityOrdersDispatch(t *testing.T) {
	var mu sync.Mutex
	var started []string
	block := make(chan struct{})
	m, err := New(Options{Workers: 1, MaxActive: 1, hook: func(id string, i int) {
		mu.Lock()
		if len(started) == 0 || started[len(started)-1] != id {
			started = append(started, id)
		}
		mu.Unlock()
		if id == "job-1" {
			<-block
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain(context.Background())
	a, err := m.Submit(smallSpec(310, 1))
	if err != nil {
		t.Fatal(err)
	}
	low, err := m.Submit(smallSpec(311, 1)) // priority 0
	if err != nil {
		t.Fatal(err)
	}
	hi1spec := smallSpec(312, 1)
	hi1spec.Priority = 5
	hi1, err := m.Submit(hi1spec)
	if err != nil {
		t.Fatal(err)
	}
	hi2spec := smallSpec(313, 1)
	hi2spec.Priority = 5
	hi2, err := m.Submit(hi2spec)
	if err != nil {
		t.Fatal(err)
	}
	close(block) // release job a; the queue drains in priority order
	for _, id := range []string{a.ID, low.ID, hi1.ID, hi2.ID} {
		waitState(t, m, id, StateCompleted)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{a.ID, hi1.ID, hi2.ID, low.ID}
	if fmt.Sprint(started) != fmt.Sprint(want) {
		t.Fatalf("dispatch order %v, want %v", started, want)
	}
}

// Cancelling a running job discards the wave in flight: no further
// programs commit, the state lands cancelled.
func TestCancelRunningJob(t *testing.T) {
	block := make(chan struct{})
	release := sync.OnceFunc(func() { close(block) })
	m, err := New(Options{Workers: 1, MaxActive: 1, hook: func(id string, i int) {
		if i == 1 {
			<-block
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain(context.Background())
	st, err := m.Submit(smallSpec(320, 5))
	if err != nil {
		t.Fatal(err)
	}
	waitCursor(t, m, st.ID, 1) // program 0 committed, program 1 held
	if err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	release()
	st = waitState(t, m, st.ID, StateCancelled)
	if st.Cursor != 1 {
		t.Fatalf("cancelled job committed %d programs, want 1", st.Cursor)
	}
	// Terminal: a second cancel is rejected, results are final.
	if err := m.Cancel(st.ID); err != ErrTerminal {
		t.Fatalf("re-cancel: %v, want ErrTerminal", err)
	}
	page, err := m.Results(context.Background(), st.ID, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !page.Done || len(page.Results) != 1 {
		t.Fatalf("cancelled results done=%v n=%d", page.Done, len(page.Results))
	}
}

// Cancelling a queued job never runs it.
func TestCancelQueuedJob(t *testing.T) {
	block := make(chan struct{})
	release := sync.OnceFunc(func() { close(block) })
	defer release()
	var mu sync.Mutex
	ran := map[string]bool{}
	m, err := New(Options{Workers: 1, MaxActive: 1, hook: func(id string, i int) {
		mu.Lock()
		ran[id] = true
		mu.Unlock()
		if id == "job-1" {
			<-block
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain(context.Background())
	a, err := m.Submit(smallSpec(330, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Submit(smallSpec(331, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(b.ID); err != nil {
		t.Fatal(err)
	}
	bs, _ := m.Status(b.ID)
	if bs.State != StateCancelled {
		t.Fatalf("queued cancel left state %s", bs.State)
	}
	release()
	waitState(t, m, a.ID, StateCompleted)
	mu.Lock()
	defer mu.Unlock()
	if ran[b.ID] {
		t.Fatal("cancelled queued job still ran")
	}
}

// Submissions are validated and drain fences new jobs.
func TestSubmitValidatesAndDrainRejects(t *testing.T) {
	m, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := smallSpec(340, 1)
	bad.Corpus.Size = "jumbo"
	if _, err := m.Submit(bad); err == nil {
		t.Fatal("bad size accepted")
	}
	bad = smallSpec(340, 1)
	bad.Engine.Kind = engine.KindLive
	if _, err := m.Submit(bad); err == nil {
		t.Fatal("live engine accepted for a corpus job")
	}
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(smallSpec(340, 1)); err != ErrDraining {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}
}

// Long-poll wakes on commit rather than timing out.
func TestResultsLongPoll(t *testing.T) {
	block := make(chan struct{})
	release := sync.OnceFunc(func() { close(block) })
	defer release()
	m, err := New(Options{Workers: 1, MaxActive: 1, hook: func(id string, i int) { <-block }})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain(context.Background())
	st, err := m.Submit(smallSpec(350, 1))
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan ResultsPage, 1)
	go func() {
		page, err := m.Results(context.Background(), st.ID, 0, 25*time.Second)
		if err != nil {
			t.Errorf("Results: %v", err)
		}
		got <- page
	}()
	// The poller is parked (no results yet); the commit must wake it.
	time.Sleep(20 * time.Millisecond)
	release()
	select {
	case page := <-got:
		if len(page.Results) != 1 || page.Next != 1 {
			t.Fatalf("long-poll page results=%d next=%d", len(page.Results), page.Next)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("long-poll never woke on commit")
	}
}

// Drain parks a running job resumable, and a new manager over the same
// journal finishes the corpus with every program run exactly once.
func TestDrainThenRestartResumesMidCorpus(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	const programs = 5

	block := make(chan struct{})
	release := sync.OnceFunc(func() { close(block) })
	m1, err := New(Options{Journal: path, Workers: 1, MaxActive: 1, hook: func(id string, i int) {
		if i == 2 {
			<-block
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(smallSpec(360, programs))
	if err != nil {
		t.Fatal(err)
	}
	waitCursor(t, m1, st.ID, 2) // 0 and 1 committed, 2 held in flight
	drained := make(chan error, 1)
	go func() { drained <- m1.Drain(context.Background()) }()
	release() // the held wave finishes and is discarded (ctx cancelled)
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	if got, _ := m1.Status(st.ID); got.State != StateQueued || got.Cursor != 2 {
		t.Fatalf("drained job state=%s cursor=%d, want queued/2", got.State, got.Cursor)
	}

	// Restart: the job resumes at its cursor and runs only the tail.
	var mu sync.Mutex
	var resumedIdx []int
	m2, err := New(Options{Journal: path, Workers: 1, MaxActive: 1, hook: func(id string, i int) {
		mu.Lock()
		resumedIdx = append(resumedIdx, i)
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Drain(context.Background())
	fin := waitState(t, m2, st.ID, StateCompleted)
	if !fin.Resumed {
		t.Error("resumed job not flagged Resumed")
	}
	if fin.Cursor != programs {
		t.Fatalf("resumed job cursor=%d, want %d", fin.Cursor, programs)
	}
	mu.Lock()
	if fmt.Sprint(resumedIdx) != fmt.Sprint([]int{2, 3, 4}) {
		t.Fatalf("resume ran programs %v, want [2 3 4] — rerun or skip detected", resumedIdx)
	}
	mu.Unlock()
	page, err := m2.Results(context.Background(), st.ID, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Results) != programs {
		t.Fatalf("final results %d, want %d", len(page.Results), programs)
	}
	for i, pr := range page.Results {
		checkResult(t, pr, i, 360+int64(i))
	}
}

// A restart with terminal jobs in the journal keeps them queryable and
// does not rerun them.
func TestRestartKeepsTerminalJobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	m1, err := New(Options{Journal: path, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(smallSpec(370, 2))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, st.ID, StateCompleted)
	if err := m1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	var ran atomic.Bool
	m2, err := New(Options{Journal: path, Workers: 2, hook: func(string, int) { ran.Store(true) }})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Drain(context.Background())
	got, err := m2.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCompleted || got.Cursor != 2 {
		t.Fatalf("replayed terminal job state=%s cursor=%d", got.State, got.Cursor)
	}
	time.Sleep(50 * time.Millisecond)
	if ran.Load() {
		t.Fatal("terminal job was re-dispatched after restart")
	}
}

// The adaptive flag threads a controller through without breaking the
// oracle.
func TestAdaptiveJobCompletesClean(t *testing.T) {
	m, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain(context.Background())
	spec := smallSpec(380, 2)
	spec.Adaptive = true
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st = waitState(t, m, st.ID, StateCompleted)
	if st.Violations != 0 {
		t.Fatalf("adaptive job recorded %d violations", st.Violations)
	}
}

// A hard kill leaves no Drain behind it — just the journal bytes as of
// an arbitrary instant. Snapshotting the live journal mid-corpus and
// opening a second manager over the copy models exactly that: the job
// must resume at the committed prefix and finish the tail, no program
// rerun or skipped.
func TestHardKillJournalSnapshotResumes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	const programs = 5

	block := make(chan struct{})
	release := sync.OnceFunc(func() { close(block) })
	defer release()
	m1, err := New(Options{Journal: path, Workers: 1, MaxActive: 1, hook: func(id string, i int) {
		if i == 3 {
			<-block
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(smallSpec(390, programs))
	if err != nil {
		t.Fatal(err)
	}
	waitCursor(t, m1, st.ID, 3) // 0..2 committed, 3 held in flight

	// "SIGKILL": the journal as it exists this instant, nothing flushed,
	// no terminal records, the in-flight program never committed.
	snap, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	killed := filepath.Join(dir, "killed.jsonl")
	if err := os.WriteFile(killed, snap, 0o644); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var resumedIdx []int
	m2, err := New(Options{Journal: killed, Workers: 1, MaxActive: 1, hook: func(id string, i int) {
		mu.Lock()
		resumedIdx = append(resumedIdx, i)
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Drain(context.Background())
	fin := waitState(t, m2, st.ID, StateCompleted)
	if !fin.Resumed || fin.Cursor != programs {
		t.Fatalf("resumed=%v cursor=%d, want true/%d", fin.Resumed, fin.Cursor, programs)
	}
	mu.Lock()
	if fmt.Sprint(resumedIdx) != fmt.Sprint([]int{3, 4}) {
		t.Fatalf("resume ran %v, want [3 4]", resumedIdx)
	}
	mu.Unlock()
	page, err := m2.Results(context.Background(), st.ID, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, pr := range page.Results {
		if seen[pr.Index] {
			t.Fatalf("index %d committed twice", pr.Index)
		}
		seen[pr.Index] = true
	}
	if len(seen) != programs {
		t.Fatalf("final corpus has %d unique programs, want %d", len(seen), programs)
	}

	// Let the first manager unwind cleanly.
	release()
	m1.Drain(context.Background())
}
