package baselines

import (
	"fmt"
	"testing"

	"waffle/internal/core"
	"waffle/internal/memmodel"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// racyUAF is a single clean use-after-free candidate with a 2ms gap.
func racyUAF() *core.SimProgram {
	return &core.SimProgram{
		Label: "racy-uaf",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			r := h.NewRef("conn")
			r.Init(root, "init")
			w := root.Spawn("w", func(t *sim.Thread) {
				t.Sleep(1 * sim.Millisecond)
				r.Use(t, "use")
			})
			root.Sleep(3 * sim.Millisecond)
			r.Dispose(root, "disp")
			root.Join(w)
		},
	}
}

func TestSingleDelayValidatesOneCandidatePerRun(t *testing.T) {
	tool := NewSingleDelay(core.Options{})
	s := &core.Session{Prog: racyUAF(), Tool: tool, MaxRuns: 20, BaseSeed: 1}
	out := s.Expose()
	if out.Bug == nil {
		t.Fatal("single-delay never exposed the bug")
	}
	for _, r := range out.Runs[1:] {
		if r.Stats.Count > 1 {
			t.Fatalf("run %d injected %d delays, want ≤1", r.Run, r.Stats.Count)
		}
	}
	if tool.Plan() == nil {
		t.Fatal("no analysis plan")
	}
}

func TestSingleDelayRunsScaleWithCandidates(t *testing.T) {
	// With several candidate pairs but only one real bug, single-delay
	// needs roughly one run per candidate until it hits the right one,
	// while Waffle exposes in its first detection run.
	prog := &core.SimProgram{
		Label: "many-candidates",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			// Four decoy near-miss pairs that never manifest.
			for i := 0; i < 4; i++ {
				d := h.NewRef("decoy")
				var done sim.Event
				i := i
				w := root.Spawn("dw", func(t *sim.Thread) {
					t.Sleep(sim.Duration(1+i) * sim.Millisecond)
					d.UseIfLive(t, siteN("decoy-use", i))
					done.Set(t)
				})
				d.Init(root, siteN("decoy-init", i))
				done.Wait(root)
				d.Dispose(root, siteN("decoy-disp", i))
				root.Join(w)
			}
			// The real bug.
			r := h.NewRef("conn")
			r.Init(root, "init")
			w := root.Spawn("w", func(t *sim.Thread) {
				t.Sleep(1 * sim.Millisecond)
				r.Use(t, "use")
			})
			root.Sleep(3 * sim.Millisecond)
			r.Dispose(root, "disp")
			root.Join(w)
		},
	}
	single := &core.Session{Prog: prog, Tool: NewSingleDelay(core.Options{}), MaxRuns: 30, BaseSeed: 1}
	so := single.Expose()
	waffle := &core.Session{Prog: prog, Tool: core.NewWaffle(core.Options{}), MaxRuns: 30, BaseSeed: 1}
	wo := waffle.Expose()
	if so.Bug == nil || wo.Bug == nil {
		t.Fatalf("exposure failed: single=%v waffle=%v", so.Bug, wo.Bug)
	}
	if so.Bug.Run <= wo.Bug.Run {
		t.Fatalf("single-delay (%d runs) not slower than Waffle (%d runs)", so.Bug.Run, wo.Bug.Run)
	}
}

func siteN(prefix string, i int) trace.SiteID {
	return trace.SiteID(fmt.Sprintf("%s-%d", prefix, i))
}

func TestDataColliderEventuallyExposes(t *testing.T) {
	// Sampling 5% of sites per run with 10ms pauses finds the one-site
	// bug eventually, across many runs.
	tool := NewDataCollider()
	tool.SampleRate = 0.3 // speed the test up: fewer sites to hit
	s := &core.Session{Prog: racyUAF(), Tool: tool, MaxRuns: 80, BaseSeed: 5}
	out := s.Expose()
	if out.Bug == nil {
		t.Fatal("datacollider never exposed the bug in 80 runs")
	}
	// Unlike Waffle, DataCollider has no preparation run: it may get lucky
	// in run 1 or need dozens of runs — any exposing run is acceptable.
}

func TestDataColliderIgnoresAPIKinds(t *testing.T) {
	tool := NewDataCollider()
	tool.SampleRate = 1.0
	prog := &core.SimProgram{
		Label: "api-only",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			d := h.NewRef("dict")
			d.APICall(root, "api", true, 100*sim.Microsecond)
		},
	}
	s := &core.Session{Prog: prog, Tool: tool, MaxRuns: 1, BaseSeed: 1}
	out := s.Expose()
	if out.Runs[0].Stats.Count != 0 {
		t.Fatal("API call was delayed by the MemOrder sampler")
	}
}

func TestDataColliderSamplingIsPerRun(t *testing.T) {
	tool := NewDataCollider()
	tool.SampleRate = 0.5
	prog := racyUAF()
	counts := map[int]int{}
	var prev *core.RunReport
	for run := 1; run <= 6; run++ {
		hook := tool.HookForRun(run, prev)
		res := prog.Execute(int64(run)*13, hook)
		counts[tool.RunStats().Count]++
		prev = &core.RunReport{Run: run, End: res.End}
		if res.Fault != nil {
			break
		}
	}
	if len(counts) < 2 {
		t.Fatalf("sampling identical across runs: %v", counts)
	}
}
