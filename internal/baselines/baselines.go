// Package baselines implements simplified versions of the two remaining
// design points of Table 1 — DataCollider's random location sampling and
// the RaceFuzzer/CTrigger single-candidate validation strategy — so the
// design-decision matrix can be compared empirically, not just cited.
// Both implement core.Tool and plug into the same sessions and benchmarks
// as Waffle and WaffleBasic.
package baselines

import (
	"waffle/internal/core"
	"waffle/internal/memmodel"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// DataCollider adapts the OSDI '10 kernel race detector's strategy to
// MemOrder sites: no synchronization analysis and no inference — each run
// independently samples a small random fraction of the instrumentation
// sites and injects short fixed delays there (Table 1: sampled candidate
// locations, fixed-length delay, probabilistic injection). Coverage per
// run is low by design; many runs substitute for analysis.
type DataCollider struct {
	// SampleRate is the per-site probability of being sampled this run.
	SampleRate float64
	// Delay is the fixed pause length (DataCollider used short pauses).
	Delay sim.Duration
	// InstrCost is the per-access instrumentation overhead.
	InstrCost sim.Duration

	sampled map[trace.SiteID]bool // this run's sampling decisions
	stats   core.DelayStats
}

// NewDataCollider returns the sampler with defaults: 5% of sites per run,
// 10ms pauses.
func NewDataCollider() *DataCollider {
	return &DataCollider{SampleRate: 0.05, Delay: 10 * sim.Millisecond, InstrCost: core.DefaultInstrCost}
}

// Name implements core.Tool.
func (d *DataCollider) Name() string { return "datacollider" }

// HookForRun implements core.Tool: every run resamples independently.
func (d *DataCollider) HookForRun(run int, prev *core.RunReport) memmodel.Hook {
	d.sampled = make(map[trace.SiteID]bool)
	d.stats = core.DelayStats{}
	return d
}

// RunStats implements core.Tool.
func (d *DataCollider) RunStats() core.DelayStats { return d.stats }

// Candidates implements core.Tool: sampling has no candidate model.
func (d *DataCollider) Candidates(site trace.SiteID) []core.Pair { return nil }

// OnAccess implements memmodel.Hook.
func (d *DataCollider) OnAccess(t *sim.Thread, site trace.SiteID, obj trace.ObjID, kind trace.Kind, dur sim.Duration) {
	if d.InstrCost > 0 {
		t.Sleep(d.InstrCost)
	}
	if !kind.IsMemOrder() {
		return
	}
	chosen, decided := d.sampled[site]
	if !decided {
		chosen = t.World().Rand() < d.SampleRate
		d.sampled[site] = chosen
	}
	if !chosen {
		return
	}
	start := t.Now()
	d.stats.Count++
	d.stats.Total += d.Delay
	d.stats.Intervals = append(d.stats.Intervals, core.Interval{Site: site, Start: start, End: start.Add(d.Delay)})
	t.Sleep(d.Delay)
}

// SingleDelay models the RaceFuzzer/CTrigger family: a full analysis pass
// first (here: Waffle's trace analyzer standing in for their
// synchronization analysis), then one candidate pair is validated per
// detection run with a deterministic fixed-length delay at its delay site
// (Table 1: synchronization analysis, identification outside injection
// runs, fixed delay, non-probabilistic, one sampled candidate at a time).
// With tens or hundreds of candidates, runs-to-expose scales linearly —
// the cost §4.4 refuses to pay.
type SingleDelay struct {
	// Delay is the fixed validation delay.
	Delay sim.Duration
	// InstrCost is the per-access instrumentation overhead.
	InstrCost sim.Duration
	// Opts feeds the analyzer (window, pruning).
	Opts core.Options

	rec    *trace.Recorder
	plan   *core.Plan
	target trace.SiteID
	fired  bool
	stats  core.DelayStats
}

// NewSingleDelay returns the validator with the paper's fixed delay.
func NewSingleDelay(opts core.Options) *SingleDelay {
	return &SingleDelay{Delay: core.DefaultFixedDelay, InstrCost: core.DefaultInstrCost, Opts: opts}
}

// Name implements core.Tool.
func (s *SingleDelay) Name() string { return "single-delay" }

// Plan exposes the analysis result (nil before run 2).
func (s *SingleDelay) Plan() *core.Plan { return s.plan }

// HookForRun implements core.Tool: run 1 records; run k validates
// candidate (k−2) mod |S|.
func (s *SingleDelay) HookForRun(run int, prev *core.RunReport) memmodel.Hook {
	s.stats = core.DelayStats{}
	if run == 1 {
		s.rec = trace.NewRecorder("single-delay", 0)
		return core.NewPrepHook(s.rec, s.Opts)
	}
	if s.plan == nil {
		var end sim.Time
		if prev != nil {
			end = prev.End
		}
		s.plan = core.Analyze(s.rec.Finish(end), s.Opts)
	}
	s.target = ""
	s.fired = false
	if n := len(s.plan.Pairs); n > 0 {
		s.target = s.plan.Pairs[(run-2)%n].Delay
	}
	return s
}

// RunStats implements core.Tool.
func (s *SingleDelay) RunStats() core.DelayStats { return s.stats }

// Candidates implements core.Tool.
func (s *SingleDelay) Candidates(site trace.SiteID) []core.Pair {
	if s.plan == nil {
		return nil
	}
	return s.plan.PairsAt(site)
}

// OnAccess implements memmodel.Hook: exactly one delay per run, at the
// first dynamic instance of the targeted site.
func (s *SingleDelay) OnAccess(t *sim.Thread, site trace.SiteID, obj trace.ObjID, kind trace.Kind, dur sim.Duration) {
	if s.InstrCost > 0 {
		t.Sleep(s.InstrCost)
	}
	if s.fired || site != s.target {
		return
	}
	s.fired = true
	start := t.Now()
	s.stats.Count++
	s.stats.Total += s.Delay
	s.stats.Intervals = append(s.stats.Intervals, core.Interval{Site: site, Start: start, End: start.Add(s.Delay)})
	t.Sleep(s.Delay)
}
