package engine

import (
	"context"
	"strings"
	"testing"

	"waffle/internal/core"
	"waffle/internal/genprog"
	"waffle/internal/live"
	"waffle/internal/tsvd"
)

func armedTarget(t *testing.T, seed int64, maxRuns int) Target {
	t.Helper()
	p := genprog.Generate(genprog.SizeConfig(seed, genprog.SizeSmall))
	return Target{Prog: p.ArmOnly(0).Prog(), MaxRuns: maxRuns, BaseSeed: 7}
}

func TestNewSelectsEveryKind(t *testing.T) {
	for _, kind := range Kinds() {
		eng, err := New(Config{Kind: kind})
		if err != nil {
			t.Fatalf("New(%q): %v", kind, err)
		}
		want := kind
		if kind == KindLive {
			want = "waffle-live"
		}
		if eng.Name() != want {
			t.Fatalf("New(%q).Name() = %q, want %q", kind, eng.Name(), want)
		}
	}
}

func TestNewRejectsBadKinds(t *testing.T) {
	for _, kind := range []string{"", "bogus"} {
		if _, err := New(Config{Kind: kind}); err == nil {
			t.Fatalf("New(%q) succeeded, want error", kind)
		}
	}
}

func TestExposeBeforePrepareFails(t *testing.T) {
	for _, kind := range Kinds() {
		eng, err := New(Config{Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Expose(context.Background()); err == nil {
			t.Fatalf("%s: Expose before Prepare succeeded", kind)
		} else if !strings.Contains(err.Error(), "before Prepare") {
			t.Fatalf("%s: unexpected error %v", kind, err)
		}
	}
}

func TestPrepareValidatesTargetShape(t *testing.T) {
	eng, _ := New(Config{Kind: KindWaffle})
	if err := eng.Prepare(Target{}); err == nil {
		t.Fatal("waffle: Prepare with no program succeeded")
	}
	lv, _ := New(Config{Kind: KindLive})
	if err := lv.Prepare(Target{}); err == nil {
		t.Fatal("live: Prepare with no scenario succeeded")
	}
}

// Stats accumulate across Expose calls and re-Prepare keeps the tool
// (continuation semantics: candidate probabilities persist, so the run
// counter only ever grows).
func TestStatsAggregateAcrossExposes(t *testing.T) {
	eng, err := New(Config{Kind: KindWaffle})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Prepare(armedTarget(t, 42, 12)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Expose(context.Background()); err != nil {
		t.Fatal(err)
	}
	first := eng.Stats()
	if first.Engine != KindWaffle {
		t.Fatalf("Stats.Engine = %q, want %q", first.Engine, KindWaffle)
	}
	if first.Runs == 0 {
		t.Fatal("no runs recorded after Expose")
	}
	if err := eng.Prepare(armedTarget(t, 43, 12)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Expose(context.Background()); err != nil {
		t.Fatal(err)
	}
	second := eng.Stats()
	if second.Runs <= first.Runs {
		t.Fatalf("Stats.Runs did not grow across Expose calls: %d -> %d", first.Runs, second.Runs)
	}
}

// A disarmed program never yields a bug nor a delay-free fault through
// any simulated engine — the zero-FP contract holds through the adapter.
func TestDisarmedProgramExposesNothing(t *testing.T) {
	p := genprog.Generate(genprog.SizeConfig(99, genprog.SizeSmall)).DisarmAll()
	for _, kind := range []string{KindWaffle, KindWaffleBasic, KindTSVD} {
		eng, err := New(Config{Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Prepare(Target{Prog: p.Prog(), MaxRuns: 10, BaseSeed: 3}); err != nil {
			t.Fatal(err)
		}
		out, err := eng.Expose(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if out.Bug != nil {
			t.Fatalf("%s: disarmed program exposed a bug", kind)
		}
		st := eng.Stats()
		if st.Exposed != 0 || st.DelayFreeFaults != 0 {
			t.Fatalf("%s: disarmed stats %+v", kind, st)
		}
	}
}

// The live adapter forwards to a real Detector: same scenario, budget,
// and seed a direct caller would pass, and the Detector accessor exposes
// the phases/plan surface.
func TestLiveEngineForwardsToDetector(t *testing.T) {
	p := genprog.Generate(genprog.SizeConfig(7, genprog.SizeSmall)).DisarmAll()
	sc := live.Scenario{Name: "gen-live", Body: p.LiveBody()}
	eng, err := New(Config{Kind: KindLive, Live: live.Options{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Prepare(Target{Scenario: &sc, MaxRuns: 3, BaseSeed: 1}); err != nil {
		t.Fatal(err)
	}
	out, err := eng.Expose(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Program != "gen-live" || out.Tool == "" {
		t.Fatalf("unexpected outcome header: program=%q tool=%q", out.Program, out.Tool)
	}
	if out.Bug != nil {
		t.Fatal("disarmed live scenario exposed a bug")
	}
	le, ok := eng.(*liveEngine)
	if !ok || le.Detector() == nil {
		t.Fatal("live engine has no detector after Prepare")
	}
	if eng.Stats().Runs == 0 {
		t.Fatal("live engine recorded no runs")
	}
}

// A pre-cancelled context returns an empty outcome without starting the
// wall-clock search.
func TestLiveEnginePreCancelled(t *testing.T) {
	p := genprog.Generate(genprog.SizeConfig(7, genprog.SizeSmall)).DisarmAll()
	sc := live.Scenario{Name: "gen-live", Body: p.LiveBody()}
	eng, _ := New(Config{Kind: KindLive})
	if err := eng.Prepare(Target{Scenario: &sc, MaxRuns: 3, BaseSeed: 1}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := eng.Expose(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Runs) != 0 {
		t.Fatalf("cancelled live Expose still ran %d runs", len(out.Runs))
	}
}

// The TSVD adapter satisfies the tool-side interfaces the session driver
// and the adaptive controller rely on.
func TestTSVDToolInterfaces(t *testing.T) {
	var tool core.Tool = NewTSVDTool(tsvd.New(tsvd.Options{}))
	if tool.Name() != "tsvd" {
		t.Fatalf("Name() = %q", tool.Name())
	}
	if _, ok := tool.(core.SiteProber); !ok {
		t.Fatal("TSVDTool does not implement core.SiteProber")
	}
}
