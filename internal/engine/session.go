package engine

import (
	"context"
	"fmt"

	"waffle/internal/core"
	"waffle/internal/memmodel"
	"waffle/internal/trace"
	"waffle/internal/tsvd"
)

// sessionEngine adapts any core.Tool-shaped detector (Waffle,
// WaffleBasic, TSVD) to the Engine interface by building exactly the
// core.Session a direct caller would: same field-for-field session, same
// Expose/ExposeParallel entry points. The adapter adds no logic of its
// own, which is what makes the byte-identity property testable.
type sessionEngine struct {
	name string
	mk   func() core.Tool

	tool    core.Tool
	sess    *core.Session
	workers int
	agg     Stats
}

func (e *sessionEngine) Name() string { return e.name }

// Prepare builds the tool (once — a re-Prepare retargets the same tool,
// preserving its cross-run state, exactly like pointing an existing
// core.Session at a new program) and the session around it.
func (e *sessionEngine) Prepare(t Target) error {
	if t.Prog == nil {
		return fmt.Errorf("engine %s: target has no program", e.name)
	}
	if e.tool == nil {
		e.tool = e.mk()
	}
	e.sess = &core.Session{
		Prog:      t.Prog,
		Tool:      e.tool,
		MaxRuns:   t.MaxRuns,
		BaseSeed:  t.BaseSeed,
		RunBudget: t.RunBudget,
		Metrics:   t.Metrics,
		Tuner:     t.Tuner,
	}
	e.workers = t.Workers
	return nil
}

func (e *sessionEngine) Expose(ctx context.Context) (*core.Outcome, error) {
	if e.sess == nil {
		return nil, fmt.Errorf("engine %s: Expose before Prepare", e.name)
	}
	var out *core.Outcome
	if e.workers > 1 {
		out = e.sess.ExposeParallelCtx(ctx, e.workers)
	} else {
		out = e.sess.ExposeCtx(ctx)
	}
	e.agg.Engine = e.name
	e.agg.observe(out)
	return out, nil
}

func (e *sessionEngine) Stats() Stats {
	s := e.agg
	s.Engine = e.name
	return s
}

// Tool exposes the wrapped core.Tool (for equivalence tests and callers
// that need the tool's own surface, e.g. Waffle's Plan).
func (e *sessionEngine) Tool() core.Tool { return e.tool }

// Plan returns the wrapped tool's analysis plan when it has one (the
// Waffle adapter), nil otherwise.
func (e *sessionEngine) Plan() *core.Plan {
	if p, ok := e.tool.(interface{ Plan() *core.Plan }); ok {
		return p.Plan()
	}
	return nil
}

// TSVDTool adapts the TSVD baseline — a memmodel.Hook with its own
// BeginRun/Stats surface — to the core.Tool interface the session driver
// expects. TSVD has no MemOrder candidate notion, so Candidates maps its
// unordered TSV site pairs through core.Pair for report display only.
// (This is the one adapter the diff harness also uses; it lives here so
// eval and the server drive the identical code.)
type TSVDTool struct{ t *tsvd.Tool }

// NewTSVDTool wraps t for core.Session.
func NewTSVDTool(t *tsvd.Tool) *TSVDTool { return &TSVDTool{t: t} }

// Name implements core.Tool.
func (a *TSVDTool) Name() string { return "tsvd" }

// HookForRun implements core.Tool: every run identifies and injects.
func (a *TSVDTool) HookForRun(run int, prev *core.RunReport) memmodel.Hook {
	a.t.BeginRun()
	return a.t
}

// RunStats implements core.Tool.
func (a *TSVDTool) RunStats() core.DelayStats { return a.t.Stats() }

// LiveSites implements core.SiteProber so the adaptive controller can
// scale a quiet TSVD session to zero.
func (a *TSVDTool) LiveSites() int { return a.t.LiveSiteCount() }

// Candidates implements core.Tool.
func (a *TSVDTool) Candidates(site trace.SiteID) []core.Pair {
	var out []core.Pair
	for _, pr := range a.t.Pairs() {
		if pr[0] == site || pr[1] == site {
			out = append(out, core.Pair{Delay: pr[0], Target: pr[1]})
		}
	}
	return out
}
