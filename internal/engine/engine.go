// Package engine puts a common face on the repo's detection tools so a
// long-running campaign service can drive any of them interchangeably:
// Waffle (prepare → analyze → inject), WaffleBasic (online
// identification), TSVD (thread-unsafe-API near-miss injection), and the
// live wall-clock detector all become Engines selected by Config.
//
// The split mirrors the engine/executor architecture the roadmap points
// at: an Engine owns the *detection logic* for one search (one program,
// one budget); the executor — core.Session under the simulator, the job
// manager in internal/server above it — owns scheduling, budgets, and
// persistence. Adapters add nothing to the wrapped tools: an Engine's
// outcome is byte-identical to constructing the tool and session by hand,
// which the engine-equivalence property tests pin over every built-in
// bug.
package engine

import (
	"context"
	"fmt"
	"time"

	"waffle/internal/core"
	"waffle/internal/live"
	"waffle/internal/obs"
	"waffle/internal/tsvd"
	"waffle/internal/wafflebasic"
)

// Target is one unit of detection work: a program under test plus the
// search parameters the executor grants it.
type Target struct {
	// Prog is the program under test (simulator-backed engines). Live
	// engines take Scenario instead.
	Prog core.Program
	// Scenario is the live (real-goroutine) program under test; required
	// by the live engine, ignored by the others.
	Scenario *live.Scenario
	// MaxRuns is the total run budget, preparation included. <= 0 means
	// the engine's default.
	MaxRuns int
	// BaseSeed seeds run i with BaseSeed+i-1, exactly like core.Session.
	BaseSeed int64
	// RunBudget bounds each detection run's wall-clock time in parallel
	// searches (core.Session.RunBudget). Zero means no budget.
	RunBudget time.Duration
	// Workers fans detection runs over a worker pool when the engine is
	// plan-driven; <= 1 searches sequentially.
	Workers int
	// Metrics receives session-level campaign counters. Nil disables
	// session instrumentation.
	Metrics *obs.Registry
	// Tuner, when non-nil, is consulted at run boundaries (the adaptive
	// controller's seam).
	Tuner core.Tuner
}

// Stats summarizes an engine's activity across the searches it ran —
// the campaign-facing aggregate a job manager reports per session.
type Stats struct {
	Engine     string `json:"engine"`
	Runs       int    `json:"runs"`
	Delays     int    `json:"delays"`
	DelayTicks int64  `json:"delay_ticks"`
	Skipped    int    `json:"skipped"`
	Exposed    int    `json:"exposed"`
	// DelayFreeFaults counts runs that faulted with zero injected delays
	// (surfaced, never reported as bugs — the zero-FP contract).
	DelayFreeFaults int `json:"delay_free_faults"`
	// FenceProposals counts exposed bugs that carried a fence-repair
	// proposal (stale reads under TSO mode).
	FenceProposals int `json:"fence_proposals,omitempty"`
	RunErrs        int `json:"run_errs"`
}

// observe folds one finished outcome into the aggregate.
func (s *Stats) observe(out *core.Outcome) {
	s.Runs += len(out.Runs)
	for _, r := range out.Runs {
		s.Delays += r.Stats.Count
		s.DelayTicks += int64(r.Stats.Total)
		s.Skipped += r.Stats.Skipped
		if r.Err != nil {
			s.RunErrs++
		}
	}
	if out.Bug != nil {
		s.Exposed++
		if out.Bug.Fence != nil {
			s.FenceProposals++
		}
	}
	s.DelayFreeFaults += len(out.DelayFreeFaults)
}

// Engine is a pluggable detection engine driving one search at a time.
// The lifecycle is Prepare (bind a target, build tool state) then Expose
// (run the search); Stats aggregates across every Expose the engine ran.
// Engines are stateful exactly as the tools they wrap are: candidate
// sets and probabilities persist across Expose calls on one engine, so a
// fresh search wants a fresh engine.
type Engine interface {
	// Name identifies the engine for reports ("waffle", "wafflebasic",
	// "tsvd", "waffle-live").
	Name() string
	// Prepare binds the engine to a target and builds the tool state the
	// search needs. It must be called before Expose and may be called
	// again to point the engine at a new target (tool state persists —
	// the continuation semantics of reusing a core.Tool).
	Prepare(t Target) error
	// Expose runs the search until a bug manifests, the budget is
	// exhausted, or ctx is cancelled (the partial outcome is returned, not
	// an error — cancellation is an executor decision, not a failure).
	Expose(ctx context.Context) (*core.Outcome, error)
	// Stats aggregates the engine's activity over its lifetime.
	Stats() Stats
}

// Engine kind names accepted by Config.Kind.
const (
	KindWaffle      = "waffle"
	KindWaffleBasic = "wafflebasic"
	KindTSVD        = "tsvd"
	KindLive        = "live"
)

// Kinds lists the selectable engine kinds.
func Kinds() []string {
	return []string{KindWaffle, KindWaffleBasic, KindTSVD, KindLive}
}

// Config selects and parameterizes an engine. The zero value of each
// options struct means that tool's defaults, so {Kind: "waffle"} is a
// complete configuration.
type Config struct {
	// Kind selects the engine: waffle | wafflebasic | tsvd | live.
	Kind string `json:"kind"`
	// Core parameterizes the waffle and wafflebasic engines.
	Core core.Options `json:"core,omitempty"`
	// TSVD parameterizes the tsvd engine.
	TSVD tsvd.Options `json:"tsvd,omitempty"`
	// Live parameterizes the live engine.
	Live live.Options `json:"-"`
}

// New builds the configured engine. The returned engine has no target
// yet; call Prepare before Expose.
func New(cfg Config) (Engine, error) {
	switch cfg.Kind {
	case KindWaffle:
		opts := cfg.Core
		return &sessionEngine{
			name: KindWaffle,
			mk:   func() core.Tool { return core.NewWaffle(opts) },
		}, nil
	case KindWaffleBasic:
		opts := cfg.Core
		return &sessionEngine{
			name: KindWaffleBasic,
			mk:   func() core.Tool { return wafflebasic.New(opts) },
		}, nil
	case KindTSVD:
		opts := cfg.TSVD
		return &sessionEngine{
			name: KindTSVD,
			mk:   func() core.Tool { return NewTSVDTool(tsvd.New(opts)) },
		}, nil
	case KindLive:
		return &liveEngine{opts: cfg.Live}, nil
	case "":
		return nil, fmt.Errorf("engine: empty kind (want one of %v)", Kinds())
	default:
		return nil, fmt.Errorf("engine: unknown kind %q (want one of %v)", cfg.Kind, Kinds())
	}
}

