package engine

import (
	"context"
	"fmt"

	"waffle/internal/core"
	"waffle/internal/live"
)

// liveEngine adapts live.Detector to the Engine interface. Live searches
// run real goroutines on the wall clock, so unlike the simulated engines
// they are nondeterministic run to run; the adapter forwards to the
// detector unchanged (same Detector, same Expose arguments a direct
// caller would pass). Reusing one liveEngine across Expose calls
// continues the same search, exactly like reusing a Detector.
type liveEngine struct {
	opts live.Options
	det  *live.Detector

	sc      live.Scenario
	maxRuns int
	seed    int64
	agg     Stats
}

func (e *liveEngine) Name() string { return "waffle-live" }

// Prepare binds the engine to a live scenario. The Detector is built
// once; re-Prepare retargets it (continuation semantics — probabilities
// keep decaying).
func (e *liveEngine) Prepare(t Target) error {
	if t.Scenario == nil {
		return fmt.Errorf("engine waffle-live: target has no live scenario")
	}
	if e.det == nil {
		opts := e.opts
		if t.Metrics != nil && opts.Metrics == nil {
			opts.Metrics = t.Metrics
		}
		if t.Tuner != nil && opts.Tuner == nil {
			opts.Tuner = t.Tuner
		}
		e.det = live.NewDetector(opts)
	}
	e.sc = *t.Scenario
	e.maxRuns = t.MaxRuns
	e.seed = t.BaseSeed
	return nil
}

// Expose runs the live search. The context is honored between searches
// only: a live run in flight cannot be killed (Go offers no way to stop
// a goroutine), so cancellation takes effect at the per-run timeout the
// detector already enforces via Options.RunTimeout.
func (e *liveEngine) Expose(ctx context.Context) (*core.Outcome, error) {
	if e.det == nil {
		return nil, fmt.Errorf("engine waffle-live: Expose before Prepare")
	}
	if err := ctx.Err(); err != nil {
		return &core.Outcome{Program: e.sc.Name, Tool: e.Name()}, nil
	}
	out := e.det.Expose(e.sc, e.maxRuns, e.seed)
	e.agg.observe(out)
	return out, nil
}

func (e *liveEngine) Stats() Stats {
	s := e.agg
	s.Engine = e.Name()
	return s
}

// Detector exposes the wrapped live detector (plan, prep trace, phases).
func (e *liveEngine) Detector() *live.Detector { return e.det }
