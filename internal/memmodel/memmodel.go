// Package memmodel provides the managed-heap substrate that applications
// under test run against: reference cells with an explicit
// uninitialized → live → disposed lifecycle, a null-reference fault oracle,
// and the instrumentation seam every delay-injection tool in this
// repository plugs into.
//
// In the paper, Waffle's instrumenter rewrites a C# binary so that every
// member-field access and member-method call of a heap object transfers
// control to the runtime library before executing (§5). Here the seam is
// explicit instead of injected: applications perform object operations
// through Ref methods, and each operation first invokes the active Hook —
// which may record the access (preparation run) and/or inject a delay
// (detection run) — before the access executes and the lifecycle oracle
// checks it. Everything Waffle's algorithms consume (site, object, thread,
// timestamp, kind) flows through this one chokepoint, exactly as it does
// through the paper's proxy functions.
package memmodel

import (
	"fmt"

	"waffle/internal/sim"
	"waffle/internal/trace"
)

// State is a reference cell's lifecycle state.
type State uint8

const (
	// StateNil: the reference is NULL — allocated but not initialized,
	// or already disposed and nulled.
	StateNil State = iota
	// StateLive: the reference points to a constructed object.
	StateLive
	// StateDisposed: the object was explicitly disposed; member access
	// raises the same fault as a NULL dereference.
	StateDisposed
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateNil:
		return "nil"
	case StateLive:
		return "live"
	case StateDisposed:
		return "disposed"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Hook observes (and may perturb) every instrumented operation. It runs in
// the accessing thread's context *before* the access executes, so it may
// call t.Sleep to inject a delay or t.Work to model instrumentation
// overhead — precisely the capabilities of the paper's runtime library.
type Hook interface {
	OnAccess(t *sim.Thread, site trace.SiteID, obj trace.ObjID, kind trace.Kind, dur sim.Duration)
}

// HookFunc adapts a function to the Hook interface.
type HookFunc func(t *sim.Thread, site trace.SiteID, obj trace.ObjID, kind trace.Kind, dur sim.Duration)

// OnAccess implements Hook.
func (f HookFunc) OnAccess(t *sim.Thread, site trace.SiteID, obj trace.ObjID, kind trace.Kind, dur sim.Duration) {
	f(t, site, obj, kind, dur)
}

// MultiHook fans one access out to several hooks in order.
type MultiHook []Hook

// OnAccess implements Hook.
func (m MultiHook) OnAccess(t *sim.Thread, site trace.SiteID, obj trace.ObjID, kind trace.Kind, dur sim.Duration) {
	for _, h := range m {
		h.OnAccess(t, site, obj, kind, dur)
	}
}

// NullRefError is the unhandled NULL-reference exception — Waffle's bug
// oracle (§5: "Waffle reports a bug only when the target binary raises a
// NULL reference exception as a consequence of the delay injection").
type NullRefError struct {
	Obj   trace.ObjID
	Name  string       // the reference's declared name
	Site  trace.SiteID // where the faulting access happened
	Kind  trace.Kind   // what the access was
	State State        // the state the reference was found in
}

// Error implements error.
func (e *NullRefError) Error() string {
	return fmt.Sprintf("NullReferenceException: %s of %q (obj %d) at %s while reference is %s",
		e.Kind, e.Name, e.Obj, e.Site, e.State)
}

// TSV records one manifested thread-safety violation: two thread-unsafe
// API calls on the same object whose execution windows overlapped, at
// least one of them a write (§2). TSVs do not fault; internal/tsvd
// consumes them.
type TSV struct {
	Obj          trace.ObjID
	Site1, Site2 trace.SiteID
	TID1, TID2   int
	T            sim.Time
}

// Heap allocates reference cells and owns the active hook.
type Heap struct {
	hook     Hook
	nextID   trace.ObjID
	opCost   sim.Duration
	refs     []*Ref
	tso      *tsoState // non-nil after EnableTSO: store-buffer semantics
	accessed bool      // an instrumented access has executed

	active map[trace.ObjID][]apiWindow
	tsvs   []TSV
}

// Census summarizes the heap's reference population — the
// allocation-intensity view behind §6.4's "these three applications
// allocate a large number of objects at run time".
type Census struct {
	Allocated int // reference cells ever created
	Nil       int // never initialized (or nulled)
	Live      int
	Disposed  int
}

type apiWindow struct {
	tid   int
	site  trace.SiteID
	write bool
	end   sim.Time
}

// DefaultOpCost is the intrinsic virtual cost of one instrumented
// operation, applied whether or not a hook is installed (it is the
// application's own work, not instrumentation overhead).
const DefaultOpCost = 1 * sim.Microsecond

// NewHeap returns an empty heap with DefaultOpCost and no hook.
func NewHeap() *Heap {
	return &Heap{opCost: DefaultOpCost, active: make(map[trace.ObjID][]apiWindow)}
}

// SetHook installs the active instrumentation hook (nil for an
// uninstrumented baseline run). It panics once the first instrumented
// access has executed — the same install-before-use contract as
// trace.Recorder's post-Finish panic: a mid-run swap would silently drop
// accesses from whichever hook the caller thought was active, and in TSO
// mode would let an injector's flush bookkeeping vanish without a trace.
func (h *Heap) SetHook(hook Hook) {
	if h.accessed {
		panic("memmodel: SetHook after the first instrumented access")
	}
	h.hook = hook
}

// SetOpCost overrides the intrinsic per-operation cost.
func (h *Heap) SetOpCost(d sim.Duration) { h.opCost = d }

// TSVs returns the thread-safety violations manifested so far.
func (h *Heap) TSVs() []TSV { return h.tsvs }

// NewRef allocates a reference cell in StateNil. The name is a debugging
// label (e.g. "m_poller"); identity is the fresh ObjID.
func (h *Heap) NewRef(name string) *Ref {
	h.nextID++
	r := &Ref{heap: h, id: h.nextID, name: name}
	h.refs = append(h.refs, r)
	return r
}

// Census scans the reference population.
func (h *Heap) Census() Census {
	c := Census{Allocated: len(h.refs)}
	for _, r := range h.refs {
		switch r.state {
		case StateNil:
			c.Nil++
		case StateLive:
			c.Live++
		case StateDisposed:
			c.Disposed++
		}
	}
	return c
}

// Ref is one heap reference cell shared between threads of a World.
type Ref struct {
	heap  *Heap
	id    trace.ObjID
	name  string
	state State // shared-memory (committed) state
	// pending holds buffered-but-uncommitted state transitions in issue
	// order; always empty outside TSO mode.
	pending []pendingStore
}

// ID returns the cell's object id.
func (r *Ref) ID() trace.ObjID { return r.id }

// Name returns the debugging label.
func (r *Ref) Name() string { return r.name }

// State returns the current lifecycle state.
func (r *Ref) State() State { return r.state }

// IsLive reports whether the reference currently points to a live object —
// the analog of an application-level null/IsDisposed check.
func (r *Ref) IsLive() bool { return r.state == StateLive }

// enter runs the hook and charges the intrinsic op cost.
func (r *Ref) enter(t *sim.Thread, site trace.SiteID, kind trace.Kind, dur sim.Duration) {
	t.SetOp(fmt.Sprintf("%s %s @ %s", kind, r.name, site))
	r.heap.accessed = true
	if r.heap.hook != nil {
		r.heap.hook.OnAccess(t, site, r.id, kind, dur)
	}
	if r.heap.opCost > 0 {
		t.Sleep(r.heap.opCost)
	}
}

// view resolves the state an access by thread t reads: under TSO, mature
// buffered stores commit first, then store-to-load forwarding applies;
// under SC it is simply the cell's state.
func (r *Ref) view(t *sim.Thread) State {
	if r.heap.tso == nil {
		return r.state
	}
	r.commitMature(t.Now())
	return r.observed(t.ID())
}

// Init executes an object initialization at site: the reference goes from
// NULL (or disposed) to live. Initializations never fault; re-initializing
// a live reference models reassignment and is permitted. Under TSO the
// transition enters the thread's store buffer rather than shared memory.
func (r *Ref) Init(t *sim.Thread, site trace.SiteID) {
	r.enter(t, site, trace.KindInit, 0)
	if r.heap.tso != nil {
		r.commitMature(t.Now())
		r.buffer(t, site, trace.KindInit, StateLive)
		return
	}
	r.state = StateLive
}

// Use executes a member-field access or member-method call at site. If the
// reference is not live the thread raises a NullRefError — the
// manifestation of a MemOrder bug (use-before-init when StateNil and never
// initialized; use-after-free when StateDisposed or nulled). Under TSO the
// check runs against the thread's observed state (shared memory plus its
// own buffered stores).
func (r *Ref) Use(t *sim.Thread, site trace.SiteID) {
	r.enter(t, site, trace.KindUse, 0)
	if st := r.view(t); st != StateLive {
		t.Throw(&NullRefError{Obj: r.id, Name: r.name, Site: site, Kind: trace.KindUse, State: st})
	}
}

// UseIfLive is a guarded use: it performs the instrumented access but
// returns false instead of faulting when the reference is not live. It
// models defensive application code (IsDisposed checks); the access is
// still visible to tools as a candidate location.
func (r *Ref) UseIfLive(t *sim.Thread, site trace.SiteID) bool {
	r.enter(t, site, trace.KindUse, 0)
	return r.view(t) == StateLive
}

// Dispose executes an object disposal at site (explicit Dispose() or
// nulling the reference). Disposing a non-live reference raises the same
// NULL-reference fault a double-dispose raises in C#. Under TSO the check
// runs against the observed state and the transition is buffered.
func (r *Ref) Dispose(t *sim.Thread, site trace.SiteID) {
	r.enter(t, site, trace.KindDispose, 0)
	if st := r.view(t); st != StateLive {
		t.Throw(&NullRefError{Obj: r.id, Name: r.name, Site: site, Kind: trace.KindDispose, State: st})
	}
	if r.heap.tso != nil {
		r.buffer(t, site, trace.KindDispose, StateDisposed)
		return
	}
	r.state = StateDisposed
}

// APICall executes a thread-unsafe API call with an execution window of
// roughly dur. If the window overlaps another thread's in-flight call on
// the same object and at least one of the two is a write, a TSV is
// recorded (§2's bug condition). API calls do not require the reference to
// be live — TSVD's domain is orthogonal to the lifecycle oracle.
func (r *Ref) APICall(t *sim.Thread, site trace.SiteID, write bool, dur sim.Duration) {
	kind := trace.KindAPIRead
	if write {
		kind = trace.KindAPIWrite
	}
	r.enter(t, site, kind, dur)

	start := t.Now()
	end := start.Add(t.World().Jitter(dur))
	// Sweep out expired windows, then check the live ones for conflicts.
	live := r.heap.active[r.id][:0]
	for _, w := range r.heap.active[r.id] {
		if w.end > start {
			live = append(live, w)
		}
	}
	for _, w := range live {
		if w.tid != t.ID() && (w.write || write) {
			r.heap.tsvs = append(r.heap.tsvs, TSV{
				Obj: r.id, Site1: w.site, Site2: site, TID1: w.tid, TID2: t.ID(), T: start,
			})
		}
	}
	r.heap.active[r.id] = append(live, apiWindow{tid: t.ID(), site: site, write: write, end: end})

	if end > start {
		t.Sleep(end.Sub(start))
	}
}
