package memmodel

import (
	"errors"
	"testing"

	"waffle/internal/sim"
	"waffle/internal/trace"
)

// runTSO executes body in a fresh world over a TSO heap.
func runTSO(seed int64, cfg TSOConfig, body func(*sim.Thread, *Heap)) error {
	h := NewHeap()
	h.EnableTSO(cfg)
	w := sim.NewWorld(sim.Config{Seed: seed})
	return w.Run(func(root *sim.Thread) { body(root, h) })
}

// pinned returns a config with a fixed commit latency — every store takes
// exactly lat to drain, so tests can position reads deterministically.
func pinned(lat sim.Duration) TSOConfig {
	return TSOConfig{Seed: 1, FlushMin: lat, FlushMax: lat}
}

func staleReadOf(t *testing.T, err error) *StaleReadError {
	t.Helper()
	var f *sim.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want fault", err)
	}
	var sre *StaleReadError
	if !errors.As(f.Err, &sre) {
		t.Fatalf("fault err = %v, want StaleReadError", f.Err)
	}
	return sre
}

// The issuing thread reads its own buffered store (store-to-load
// forwarding): Use right after Init must not fault even though the store
// has not committed to shared memory yet.
func TestTSOForwardsOwnBufferedStore(t *testing.T) {
	err := runTSO(1, pinned(5*sim.Millisecond), func(root *sim.Thread, h *Heap) {
		r := h.NewRef("x")
		r.Init(root, "init")
		r.Use(root, "use") // forwarded: sees the pending Live
	})
	if err != nil {
		t.Fatalf("own buffered store not forwarded: %v", err)
	}
}

// Other threads keep observing the pre-store state until the commit
// deadline passes, then see the store.
func TestTSOForeignReadObservesCommitDeadline(t *testing.T) {
	err := runTSO(1, pinned(5*sim.Millisecond), func(root *sim.Thread, h *Heap) {
		r := h.NewRef("x")
		r.Init(root, "init") // commits at +5ms
		reader := root.Spawn("reader", func(th *sim.Thread) {
			th.Sleep(2 * sim.Millisecond)
			if r.UseIfLive(th, "early") { // 5ms latency still pending
				th.Throw(errors.New("read observed an uncommitted store"))
			}
			th.Sleep(4 * sim.Millisecond)
			if !r.UseIfLive(th, "late") { // past the deadline
				th.Throw(errors.New("committed store still invisible"))
			}
		})
		root.Join(reader)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Per-thread FIFO: a later store never drains ahead of an earlier one
// from the same thread, even when the earlier one's visibility was
// stretched past the later one's natural deadline.
func TestTSOStoresCommitInIssueOrder(t *testing.T) {
	err := runTSO(1, pinned(5*sim.Millisecond), func(root *sim.Thread, h *Heap) {
		r := h.NewRef("x")
		AddFlushDelay(root, 10*sim.Millisecond)
		r.Init(root, "init") // vis = +15ms
		root.Sleep(1 * sim.Millisecond)
		r.Dispose(root, "dispose") // natural vis +6ms, clamped to >= 15ms
		reader := root.Spawn("reader", func(th *sim.Thread) {
			th.Sleep(7 * sim.Millisecond) // past the dispose's natural deadline
			if r.UseIfLive(th, "mid") {
				th.Throw(errors.New("saw a state before both stores committed"))
			}
			th.Sleep(10 * sim.Millisecond) // past both deadlines
			if r.UseIfLive(th, "after") {
				// FIFO drain must leave the dispose last: Live here means the
				// init overwrote the dispose — commit order inverted.
				th.Throw(errors.New("stores committed out of issue order"))
			}
		})
		root.Join(reader)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// UseFresh faults on a stale view and blames the oldest foreign buffered
// store, carrying everything a fence proposal needs.
func TestUseFreshThrowsStaleReadWithBlame(t *testing.T) {
	var writerID int
	err := runTSO(1, pinned(5*sim.Millisecond), func(root *sim.Thread, h *Heap) {
		writerID = root.ID()
		r := h.NewRef("conn")
		r.Init(root, "writer.init")
		reader := root.Spawn("reader", func(th *sim.Thread) {
			th.Sleep(1 * sim.Millisecond)
			r.UseFresh(th, "reader.use")
		})
		root.Join(reader)
	})
	sre := staleReadOf(t, err)
	if sre.Name != "conn" || sre.Site != "reader.use" {
		t.Errorf("fault names %q at %s, want conn at reader.use", sre.Name, sre.Site)
	}
	if sre.Observed != StateNil || sre.Coherent != StateLive {
		t.Errorf("observed %s coherent %s, want nil/live", sre.Observed, sre.Coherent)
	}
	if sre.PendingSite != "writer.init" || sre.PendingKind != trace.KindInit {
		t.Errorf("blamed %s %s, want init at writer.init", sre.PendingKind, sre.PendingSite)
	}
	if sre.PendingTID != writerID {
		t.Errorf("blamed thread %d, want writer %d", sre.PendingTID, writerID)
	}
}

// A committed dispose is not staleness: UseFresh on a coherently disposed
// object is a guarded miss, never a fault.
func TestUseFreshToleratesCommittedDispose(t *testing.T) {
	err := runTSO(1, pinned(1*sim.Millisecond), func(root *sim.Thread, h *Heap) {
		r := h.NewRef("x")
		r.Init(root, "init")
		root.Sleep(2 * sim.Millisecond)
		r.Dispose(root, "dispose")
		reader := root.Spawn("reader", func(th *sim.Thread) {
			th.Sleep(2 * sim.Millisecond) // dispose committed
			if r.UseFresh(th, "use") {
				th.Throw(errors.New("UseFresh reported a disposed object live"))
			}
		})
		root.Join(reader)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Fence drains the calling thread's buffer: after it, other threads see
// the store immediately.
func TestFenceDrainsOwnBuffer(t *testing.T) {
	err := runTSO(1, pinned(50*sim.Millisecond), func(root *sim.Thread, h *Heap) {
		r := h.NewRef("x")
		r.Init(root, "init") // would commit at +50ms
		h.Fence(root)        // commits now
		reader := root.Spawn("reader", func(th *sim.Thread) {
			r.UseFresh(th, "use") // fresh: nothing buffered
		})
		root.Join(reader)
	})
	if err != nil {
		t.Fatalf("fenced store still stale: %v", err)
	}
}

// Zero-latency TSO (FlushMin < 0) applies stores immediately — no pending
// entries, raw state up to date: the degenerate store buffer the SC
// equivalence suite relies on.
func TestZeroLatencyTSOAppliesImmediately(t *testing.T) {
	err := runTSO(1, TSOConfig{Seed: 1, FlushMin: -1}, func(root *sim.Thread, h *Heap) {
		r := h.NewRef("x")
		r.Init(root, "init")
		if r.State() != StateLive {
			root.Throw(errors.New("zero-latency store left raw state behind"))
		}
		if len(r.pending) != 0 {
			root.Throw(errors.New("zero-latency store was buffered"))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// AddFlushDelay stretches only the next store's visibility, even under a
// zero-latency config — the injector's seam in isolation.
func TestAddFlushDelayStretchesNextStore(t *testing.T) {
	err := runTSO(1, TSOConfig{Seed: 1, FlushMin: -1}, func(root *sim.Thread, h *Heap) {
		r := h.NewRef("x")
		AddFlushDelay(root, 3*sim.Millisecond)
		AddFlushDelay(root, 2*sim.Millisecond) // accumulates: 5ms total
		r.Init(root, "init")                   // vis = +5ms despite zero latency
		reader := root.Spawn("reader", func(th *sim.Thread) {
			th.Sleep(1 * sim.Millisecond)
			if r.UseIfLive(th, "early") {
				th.Throw(errors.New("flush delay ignored"))
			}
			th.Sleep(5 * sim.Millisecond)
			if !r.UseIfLive(th, "late") {
				th.Throw(errors.New("delayed store never committed"))
			}
		})
		root.Join(reader)
		r.Dispose(root, "dispose") // the extra was consumed: applies instantly
		if r.State() != StateDisposed {
			root.Throw(errors.New("flush extra leaked into a second store"))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Without TSO mode UseFresh degenerates to UseIfLive exactly.
func TestUseFreshWithoutTSOIsUseIfLive(t *testing.T) {
	err := run(1, func(root *sim.Thread, h *Heap) {
		r := h.NewRef("x")
		if r.UseFresh(root, "before") {
			root.Throw(errors.New("uninitialized reported live"))
		}
		r.Init(root, "init")
		if !r.UseFresh(root, "after") {
			root.Throw(errors.New("live reported dead"))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// EnableTSO is a construction-time switch, like SetHook: flipping memory
// semantics after accesses were already performed under SC would corrupt
// the run, so it must panic.
func TestEnableTSOAfterAccessPanics(t *testing.T) {
	h := NewHeap()
	w := sim.NewWorld(sim.Config{Seed: 1})
	if err := w.Run(func(root *sim.Thread) {
		h.NewRef("x").Init(root, "init")
	}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EnableTSO after an access did not panic")
		}
	}()
	h.EnableTSO(TSOConfig{Seed: 1})
}
