package memmodel

import (
	"errors"
	"testing"
	"testing/quick"

	"waffle/internal/sim"
	"waffle/internal/trace"
)

// run executes body in a fresh world and returns the run error.
func run(seed int64, body func(*sim.Thread, *Heap)) error {
	h := NewHeap()
	w := sim.NewWorld(sim.Config{Seed: seed})
	return w.Run(func(root *sim.Thread) { body(root, h) })
}

func nullRefOf(t *testing.T, err error) *NullRefError {
	t.Helper()
	var f *sim.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want fault", err)
	}
	var nre *NullRefError
	if !errors.As(f.Err, &nre) {
		t.Fatalf("fault err = %v, want NullRefError", f.Err)
	}
	return nre
}

func TestLifecycleHappyPath(t *testing.T) {
	err := run(1, func(th *sim.Thread, h *Heap) {
		r := h.NewRef("conn")
		if r.State() != StateNil || r.IsLive() {
			t.Errorf("fresh ref state = %v", r.State())
		}
		r.Init(th, "a.go:1")
		if !r.IsLive() {
			t.Error("not live after Init")
		}
		r.Use(th, "a.go:2")
		r.Use(th, "a.go:3")
		r.Dispose(th, "a.go:4")
		if r.State() != StateDisposed {
			t.Errorf("state after Dispose = %v", r.State())
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestUseBeforeInitFaults(t *testing.T) {
	err := run(1, func(th *sim.Thread, h *Heap) {
		r := h.NewRef("lstnr")
		r.Use(th, "a.go:8")
	})
	nre := nullRefOf(t, err)
	if nre.State != StateNil || nre.Kind != trace.KindUse || nre.Site != "a.go:8" {
		t.Fatalf("fault = %+v", nre)
	}
}

func TestUseAfterDisposeFaults(t *testing.T) {
	err := run(1, func(th *sim.Thread, h *Heap) {
		r := h.NewRef("m_poller")
		r.Init(th, "a.go:1")
		r.Dispose(th, "a.go:2")
		r.Use(th, "a.go:3")
	})
	nre := nullRefOf(t, err)
	if nre.State != StateDisposed {
		t.Fatalf("fault state = %v, want disposed", nre.State)
	}
}

func TestDoubleDisposeFaults(t *testing.T) {
	err := run(1, func(th *sim.Thread, h *Heap) {
		r := h.NewRef("r")
		r.Init(th, "a.go:1")
		r.Dispose(th, "a.go:2")
		r.Dispose(th, "a.go:3")
	})
	nre := nullRefOf(t, err)
	if nre.Kind != trace.KindDispose {
		t.Fatalf("fault kind = %v", nre.Kind)
	}
}

func TestReinitAfterDisposeAllowed(t *testing.T) {
	err := run(1, func(th *sim.Thread, h *Heap) {
		r := h.NewRef("r")
		r.Init(th, "a.go:1")
		r.Dispose(th, "a.go:2")
		r.Init(th, "a.go:3") // reassignment
		r.Use(th, "a.go:4")
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestUseIfLiveNeverFaults(t *testing.T) {
	err := run(1, func(th *sim.Thread, h *Heap) {
		r := h.NewRef("r")
		if r.UseIfLive(th, "a.go:1") {
			t.Error("UseIfLive true on nil ref")
		}
		r.Init(th, "a.go:2")
		if !r.UseIfLive(th, "a.go:3") {
			t.Error("UseIfLive false on live ref")
		}
		r.Dispose(th, "a.go:4")
		if r.UseIfLive(th, "a.go:5") {
			t.Error("UseIfLive true on disposed ref")
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestHookSeesEveryAccessInOrder(t *testing.T) {
	var got []trace.Kind
	var sites []trace.SiteID
	h := NewHeap()
	h.SetHook(HookFunc(func(_ *sim.Thread, site trace.SiteID, _ trace.ObjID, kind trace.Kind, _ sim.Duration) {
		got = append(got, kind)
		sites = append(sites, site)
	}))
	w := sim.NewWorld(sim.Config{Seed: 1})
	err := w.Run(func(th *sim.Thread) {
		r := h.NewRef("r")
		r.Init(th, "s1")
		r.Use(th, "s2")
		r.APICall(th, "s3", true, 10*sim.Microsecond)
		r.Dispose(th, "s4")
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := []trace.Kind{trace.KindInit, trace.KindUse, trace.KindAPIWrite, trace.KindDispose}
	if len(got) != len(want) {
		t.Fatalf("hook saw %d accesses, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("access %d = %v, want %v (sites %v)", i, got[i], want[i], sites)
		}
	}
}

func TestHookDelayChangesOutcome(t *testing.T) {
	// The whole premise of active delay injection: a delay inserted by the
	// hook before the init flips a racy init/use pair into a fault.
	build := func(h *Heap) func(*sim.Thread) {
		return func(root *sim.Thread) {
			r := h.NewRef("obj")
			worker := root.Spawn("user", func(c *sim.Thread) {
				c.Sleep(2 * sim.Millisecond) // use naturally 2ms after spawn
				r.Use(c, "use-site")
			})
			root.Sleep(1 * sim.Millisecond) // init naturally at 1ms: init wins
			r.Init(root, "init-site")
			root.Join(worker)
		}
	}

	// Without a hook, no fault.
	h1 := NewHeap()
	w1 := sim.NewWorld(sim.Config{Seed: 1})
	if err := w1.Run(build(h1)); err != nil {
		t.Fatalf("delay-free run faulted: %v", err)
	}

	// With a 5ms delay before the init site, the use runs first: fault.
	h2 := NewHeap()
	h2.SetHook(HookFunc(func(th *sim.Thread, site trace.SiteID, _ trace.ObjID, kind trace.Kind, _ sim.Duration) {
		if site == "init-site" && kind == trace.KindInit {
			th.Sleep(5 * sim.Millisecond)
		}
	}))
	w2 := sim.NewWorld(sim.Config{Seed: 1})
	err := w2.Run(build(h2))
	nre := nullRefOf(t, err)
	if nre.Site != "use-site" {
		t.Fatalf("fault at %s, want use-site", nre.Site)
	}
}

func TestMultiHookOrder(t *testing.T) {
	// MultiHook.OnAccess must invoke its hooks in slice order, every one
	// exactly once per access, including the degenerate empty and
	// single-element forms.
	cases := []struct {
		name  string
		hooks []string
	}{
		{"empty", nil},
		{"single", []string{"only"}},
		{"pair", []string{"first", "second"}},
		{"triple", []string{"first", "second", "third"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var order []string
			mh := make(MultiHook, 0, len(tc.hooks))
			for _, name := range tc.hooks {
				name := name
				mh = append(mh, HookFunc(func(*sim.Thread, trace.SiteID, trace.ObjID, trace.Kind, sim.Duration) {
					order = append(order, name)
				}))
			}
			h := NewHeap()
			h.SetHook(mh)
			w := sim.NewWorld(sim.Config{Seed: 1})
			err := w.Run(func(th *sim.Thread) {
				r := h.NewRef("r")
				r.Init(th, "s")
			})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(order) != len(tc.hooks) {
				t.Fatalf("hooks fired %d times, want %d (%v)", len(order), len(tc.hooks), order)
			}
			for i, name := range tc.hooks {
				if order[i] != name {
					t.Fatalf("order = %v, want %v", order, tc.hooks)
				}
			}
		})
	}
}

func TestSetHookAfterAccessPanics(t *testing.T) {
	// The hook is part of a run's deterministic identity: installing one
	// after accesses were already performed un-instrumented would make the
	// trace and the schedule disagree, so SetHook must refuse.
	h := NewHeap()
	w := sim.NewWorld(sim.Config{Seed: 1})
	if err := w.Run(func(th *sim.Thread) {
		h.NewRef("r").Init(th, "s")
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetHook after the first access did not panic")
		}
	}()
	h.SetHook(HookFunc(func(*sim.Thread, trace.SiteID, trace.ObjID, trace.Kind, sim.Duration) {}))
}

func TestTSVDetectedOnOverlappingWrites(t *testing.T) {
	h := NewHeap()
	w := sim.NewWorld(sim.Config{Seed: 1})
	err := w.Run(func(root *sim.Thread) {
		r := h.NewRef("dict")
		c := root.Spawn("writer2", func(th *sim.Thread) {
			th.Sleep(50 * sim.Microsecond) // lands inside root's 200µs window
			r.APICall(th, "w2", true, 200*sim.Microsecond)
		})
		r.APICall(root, "w1", true, 200*sim.Microsecond)
		root.Join(c)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(h.TSVs()) == 0 {
		t.Fatal("overlapping writes produced no TSV")
	}
	tsv := h.TSVs()[0]
	if tsv.TID1 == tsv.TID2 {
		t.Fatalf("TSV within one thread: %+v", tsv)
	}
}

func TestNoTSVOnReadRead(t *testing.T) {
	h := NewHeap()
	w := sim.NewWorld(sim.Config{Seed: 1})
	err := w.Run(func(root *sim.Thread) {
		r := h.NewRef("dict")
		c := root.Spawn("reader2", func(th *sim.Thread) {
			r.APICall(th, "r2", false, 200*sim.Microsecond)
		})
		r.APICall(root, "r1", false, 200*sim.Microsecond)
		root.Join(c)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(h.TSVs()) != 0 {
		t.Fatalf("read/read overlap produced TSVs: %v", h.TSVs())
	}
}

func TestNoTSVWhenDisjoint(t *testing.T) {
	h := NewHeap()
	w := sim.NewWorld(sim.Config{Seed: 1})
	err := w.Run(func(root *sim.Thread) {
		r := h.NewRef("dict")
		c := root.Spawn("writer2", func(th *sim.Thread) {
			th.Sleep(5 * sim.Millisecond) // far after root's window
			r.APICall(th, "w2", true, 100*sim.Microsecond)
		})
		r.APICall(root, "w1", true, 100*sim.Microsecond)
		root.Join(c)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(h.TSVs()) != 0 {
		t.Fatalf("disjoint windows produced TSVs: %v", h.TSVs())
	}
}

func TestOpCostAdvancesTime(t *testing.T) {
	h := NewHeap()
	h.SetOpCost(10 * sim.Microsecond)
	w := sim.NewWorld(sim.Config{Seed: 1})
	err := w.Run(func(th *sim.Thread) {
		r := h.NewRef("r")
		r.Init(th, "s1")
		r.Use(th, "s2")
		r.Dispose(th, "s3")
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got, want := w.Now(), sim.Time(30*sim.Microsecond); got != want {
		t.Fatalf("time = %v, want %v", got, want)
	}
}

func TestRefIDsUnique(t *testing.T) {
	h := NewHeap()
	seen := map[trace.ObjID]bool{}
	for i := 0; i < 100; i++ {
		r := h.NewRef("x")
		if seen[r.ID()] {
			t.Fatalf("duplicate id %d", r.ID())
		}
		seen[r.ID()] = true
	}
}

// Property: a single-threaded random operation sequence faults exactly when
// the naive state machine says it should.
func TestLifecycleStateMachineProperty(t *testing.T) {
	err := quick.Check(func(ops []uint8) bool {
		state := StateNil
		wantFault := false
		for _, op := range ops {
			switch op % 3 {
			case 0: // init
				state = StateLive
			case 1: // use
				if state != StateLive {
					wantFault = true
				}
			case 2: // dispose
				if state != StateLive {
					wantFault = true
				} else {
					state = StateDisposed
				}
			}
			if wantFault {
				break
			}
		}
		runErr := run(9, func(th *sim.Thread, h *Heap) {
			r := h.NewRef("r")
			for _, op := range ops {
				switch op % 3 {
				case 0:
					r.Init(th, "s")
				case 1:
					r.Use(th, "s")
				case 2:
					r.Dispose(th, "s")
				}
			}
		})
		gotFault := runErr != nil
		return gotFault == wantFault
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHeapCensus(t *testing.T) {
	h := NewHeap()
	w := sim.NewWorld(sim.Config{Seed: 1})
	err := w.Run(func(th *sim.Thread) {
		a := h.NewRef("a")
		b := h.NewRef("b")
		_ = h.NewRef("c") // never initialized
		a.Init(th, "s1")
		b.Init(th, "s2")
		b.Dispose(th, "s3")
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	c := h.Census()
	if c.Allocated != 3 || c.Nil != 1 || c.Live != 1 || c.Disposed != 1 {
		t.Fatalf("census = %+v", c)
	}
}
